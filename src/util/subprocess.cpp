#include "util/subprocess.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#if !defined(_WIN32)
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace dtn::util {

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), reaped_(other.reaped_), last_(other.last_) {
  other.pid_ = -1;
  other.reaped_ = false;
  other.last_ = ProcessStatus{};
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    pid_ = other.pid_;
    reaped_ = other.reaped_;
    last_ = other.last_;
    other.pid_ = -1;
    other.reaped_ = false;
    other.last_ = ProcessStatus{};
  }
  return *this;
}

#if !defined(_WIN32)

namespace {

/// Translates a waitpid status word into a ProcessStatus.
ProcessStatus decode_status(int status) {
  ProcessStatus out;
  if (WIFEXITED(status)) {
    out.exited = true;
    out.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.signaled = true;
    out.term_signal = WTERMSIG(status);
  }
  return out;
}

}  // namespace

bool Subprocess::spawn(const std::vector<std::string>& argv, bool discard_stdout,
                       std::string* error) {
  if (pid_ > 0 && !reaped_) {
    if (error != nullptr) *error = "a child is already being supervised";
    return false;
  }
  if (argv.empty()) {
    if (error != nullptr) *error = "empty argv";
    return false;
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& arg : argv) cargv.push_back(const_cast<char*>(arg.c_str()));
  cargv.push_back(nullptr);

  const pid_t child = ::fork();
  if (child < 0) {
    if (error != nullptr) {
      *error = std::string("fork failed: ") + std::strerror(errno);
    }
    return false;
  }
  if (child == 0) {
    if (discard_stdout) {
      const int null_fd = ::open("/dev/null", O_WRONLY);
      if (null_fd >= 0) {
        ::dup2(null_fd, STDOUT_FILENO);
        ::close(null_fd);
      }
    }
    ::execv(cargv[0], cargv.data());
    // Exec failed; 127 is the shell's convention for "command not found"
    // and distinguishes spawn failure from any dtnsim exit code.
    _exit(127);
  }
  pid_ = child;
  reaped_ = false;
  last_ = ProcessStatus{};
  last_.running = true;
  return true;
}

ProcessStatus Subprocess::poll() {
  if (pid_ <= 0 || reaped_) return last_;
  int status = 0;
  const pid_t got = ::waitpid(static_cast<pid_t>(pid_), &status, WNOHANG);
  if (got == 0) return last_;  // still running
  if (got < 0) {
    // ECHILD etc: nothing left to reap — report a generic exit so the
    // supervisor does not spin forever on a vanished child.
    last_ = ProcessStatus{};
    last_.exited = true;
    reaped_ = true;
    return last_;
  }
  last_ = decode_status(status);
  reaped_ = true;
  return last_;
}

ProcessStatus Subprocess::wait() {
  if (pid_ <= 0 || reaped_) return last_;
  int status = 0;
  const pid_t got = ::waitpid(static_cast<pid_t>(pid_), &status, 0);
  if (got < 0) {
    last_ = ProcessStatus{};
    last_.exited = true;
    reaped_ = true;
    return last_;
  }
  last_ = decode_status(status);
  reaped_ = true;
  return last_;
}

void Subprocess::kill_hard() {
  if (pid_ > 0 && !reaped_) ::kill(static_cast<pid_t>(pid_), SIGKILL);
}

std::string self_exe_path(const std::string& argv0_fallback) {
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len > 0) {
    buf[len] = '\0';
    return buf;
  }
  if (argv0_fallback.empty()) return "";
  return resolve_executable(argv0_fallback);
}

std::string resolve_executable(const std::string& argv0) {
  if (argv0.empty()) return "";
  if (argv0.front() == '/') return argv0;
  if (argv0.find('/') != std::string::npos) {
    // Relative path: pin it down now — the supervisor may chdir later.
    char resolved[4096];
    if (::realpath(argv0.c_str(), resolved) != nullptr) return resolved;
    return "";
  }
  // Bare command name: walk $PATH like the shell that launched us did.
  const char* path_env = ::getenv("PATH");
  if (path_env == nullptr) return "";
  const std::string path(path_env);
  std::size_t at = 0;
  while (at <= path.size()) {
    std::size_t colon = path.find(':', at);
    if (colon == std::string::npos) colon = path.size();
    // An empty $PATH entry means the current directory, per POSIX.
    const std::string dir =
        colon > at ? path.substr(at, colon - at) : std::string(".");
    at = colon + 1;
    const std::string candidate = dir + "/" + argv0;
    if (::access(candidate.c_str(), X_OK) == 0) {
      char resolved[4096];
      if (::realpath(candidate.c_str(), resolved) != nullptr) return resolved;
      return candidate;
    }
  }
  return "";
}

#else  // _WIN32 stubs: the multi-process fabric is POSIX-gated.

bool Subprocess::spawn(const std::vector<std::string>&, bool, std::string* error) {
  if (error != nullptr) *error = "subprocess supervision is not supported on this platform";
  return false;
}

ProcessStatus Subprocess::poll() { return last_; }

ProcessStatus Subprocess::wait() { return last_; }

void Subprocess::kill_hard() {}

std::string self_exe_path(const std::string&) { return ""; }

std::string resolve_executable(const std::string&) { return ""; }

#endif

}  // namespace dtn::util
