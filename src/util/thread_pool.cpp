#include "util/thread_pool.hpp"

#include <algorithm>

namespace dtn::util {

namespace {
/// Pool this thread is currently running a chunked job of (nullptr when
/// none). A nested parallel_for on the SAME pool would self-deadlock on
/// dispatch_mutex_ (the outer job holds it for its whole duration), so
/// re-entrant calls detect themselves here and run inline instead.
thread_local const ThreadPool* t_inside_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_gen = 0;
  for (;;) {
    std::function<void()> task;
    Job* job = nullptr;
    std::size_t slot = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return stop_ || !queue_.empty() ||
               (job_ != nullptr && job_gen_ != seen_gen);
      });
      if (job_ != nullptr && job_gen_ != seen_gen) {
        // Join the chunked job at most once per generation; late wakers
        // beyond the entrant cap just remember the generation and re-wait.
        seen_gen = job_gen_;
        if (job_->entered < job_->max_entrants) {
          job = job_;
          slot = job->entered++;
          job->inside.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop();
      } else if (stop_) {
        return;
      }
    }
    if (job != nullptr) {
      t_inside_pool = this;
      run_chunks(*job, slot);
      t_inside_pool = nullptr;
      if (job->inside.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Acquire the mutex before notifying so the caller cannot check the
        // predicate, miss this decrement, and then sleep past the notify.
        { const std::lock_guard<std::mutex> lock(mutex_); }
        done_cv_.notify_all();
      }
    } else if (task) {
      task();
    }
  }
}

void ThreadPool::run_chunks(Job& job, std::size_t worker) {
  for (;;) {
    const std::size_t begin = job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.n) return;
    const std::size_t end = std::min(begin + job.chunk, job.n);
    try {
      for (std::size_t i = begin; i < end; ++i) (*job.fn)(worker, i);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
      }
      // Cancel every unclaimed index; chunks already claimed still finish.
      job.next.store(job.n, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t max_workers,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (max_workers == 0) max_workers = workers_.size() + 1;
  // Re-entrant calls (fn itself parallelizes on this pool) run inline:
  // the outer job owns dispatch_mutex_ for its whole duration, so joining
  // a second job from inside would deadlock.
  if (n == 1 || max_workers <= 1 || workers_.empty() || t_inside_pool == this) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  Job job;
  job.n = n;
  job.fn = &fn;
  // Chunks amortize the atomic cursor for large dense loops while keeping
  // per-index dispatch (best load balance) for the long-task small-n shape
  // sweeps have.
  job.chunk = std::max<std::size_t>(1, n / (max_workers * 8));
  job.max_entrants = max_workers;
  job.entered = 1;  // slot 0 is the caller
  job.inside.store(1, std::memory_order_relaxed);

  const std::lock_guard<std::mutex> dispatch_lock(dispatch_mutex_);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++job_gen_;
  }
  cv_.notify_all();
  const ThreadPool* const prev_inside = t_inside_pool;
  t_inside_pool = this;
  run_chunks(job, 0);
  t_inside_pool = prev_inside;
  job.inside.fetch_sub(1, std::memory_order_acq_rel);
  {
    // Wait under the mutex until no participant is inside the job, then
    // unpublish it in the same critical section. Joins also happen under
    // the mutex, so no worker can slip in between the final check and the
    // unpublish and touch the stack Job after it dies.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job.inside.load(std::memory_order_acquire) == 0; });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::parallel_for(std::size_t n, std::size_t threads,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (n == 1 || threads == 1) {
    // Small jobs run inline: no wakeups, no pool hand-off, no threads
    // spun up and torn down per call site (the seed behavior).
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  shared().parallel_for(n, threads,
                        [&fn](std::size_t /*worker*/, std::size_t i) { fn(i); });
}

}  // namespace dtn::util
