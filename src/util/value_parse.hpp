// Scalar <-> string conversions shared by the spec key-value layer (config
// parsing, serialization, sweep-axis overrides). Formatting uses the
// shortest round-tripping representation (std::to_chars), so
// parse(format(x)) == x bit for bit — the property the spec round-trip
// tests pin.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <system_error>

namespace dtn::util {

/// Outcome of applying one key = value assignment to a parameter block.
enum class KvResult { kOk, kUnknownKey, kBadValue };

inline bool parse_value(const std::string& text, double& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end) return false;
  out = v;
  return true;
}

inline bool parse_value(const std::string& text, std::int64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end) return false;
  out = v;
  return true;
}

inline bool parse_value(const std::string& text, std::uint64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end) return false;
  out = v;
  return true;
}

inline bool parse_value(const std::string& text, int& out) {
  std::int64_t wide = 0;
  if (!parse_value(text, wide)) return false;
  if (wide < INT32_MIN || wide > INT32_MAX) return false;
  out = static_cast<int>(wide);
  return true;
}

inline bool parse_value(const std::string& text, bool& out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    out = false;
    return true;
  }
  return false;
}

/// One registry `key = value` assignment into a typed field: kOk on
/// success, kBadValue when the text does not parse as the field's type
/// (the shared body of every registry's set() hook). Declared after every
/// parse_value overload so ordinary lookup finds them all.
template <typename T>
KvResult kv_set(T& field, const std::string& value) {
  T parsed{};
  if (!parse_value(value, parsed)) return KvResult::kBadValue;
  field = parsed;
  return KvResult::kOk;
}

inline std::string format_value(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

inline std::string format_value(std::int64_t v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

inline std::string format_value(std::uint64_t v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

inline std::string format_value(int v) { return format_value(static_cast<std::int64_t>(v)); }

inline std::string format_value(bool v) { return v ? "true" : "false"; }

}  // namespace dtn::util
