// Leveled logging with negligible cost when disabled. Simulation kernels
// log at kDebug only inside `#ifndef NDEBUG` blocks or behind level checks,
// so release benchmark runs pay a single branch per call site.
#pragma once

#include <sstream>
#include <string>

namespace dtn::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Thread-safe sink write (single global mutex; logging is not on the
/// simulation hot path).
void log_message(LogLevel level, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace dtn::util

#define DTN_LOG(level)                                    \
  if (static_cast<int>(level) < static_cast<int>(::dtn::util::log_level())) { \
  } else                                                  \
    ::dtn::util::detail::LogLine(level)

#define DTN_LOG_DEBUG DTN_LOG(::dtn::util::LogLevel::kDebug)
#define DTN_LOG_INFO DTN_LOG(::dtn::util::LogLevel::kInfo)
#define DTN_LOG_WARN DTN_LOG(::dtn::util::LogLevel::kWarn)
#define DTN_LOG_ERROR DTN_LOG(::dtn::util::LogLevel::kError)
