#include "util/checksum.hpp"

#include <array>

namespace dtn::util {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = kCrc32Table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

std::uint32_t crc32(std::string_view data) noexcept {
  return crc32_final(crc32_update(crc32_init(), data.data(), data.size()));
}

}  // namespace dtn::util
