#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dtn::util {

std::string format_double(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TablePrinter& TablePrinter::new_row() {
  rows_.emplace_back();
  return *this;
}

TablePrinter& TablePrinter::add_cell(std::string value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(value));
  return *this;
}

TablePrinter& TablePrinter::add_cell(double value, int precision) {
  return add_cell(format_double(value, precision));
}

TablePrinter& TablePrinter::add_cell(long long value) {
  return add_cell(std::to_string(value));
}

void TablePrinter::render(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t rule_len = 0;
  for (const auto w : widths) rule_len += w + 2;
  os << std::string(rule_len, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string TablePrinter::to_string() const {
  std::ostringstream oss;
  render(oss);
  return oss.str();
}

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(std::string path) : impl_(new Impl{std::ofstream(path)}) {
  ok_ = impl_->out.good();
}

CsvWriter::~CsvWriter() { delete impl_; }

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << escape(cells[i]);
  }
  impl_->out << '\n';
  ok_ = impl_->out.good();
}

}  // namespace dtn::util
