// Streaming statistics helpers used by the metrics pipeline and the
// experiment harness (per-seed aggregation of delivery ratio / latency /
// goodput series).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace dtn::util {

/// Single-pass accumulator using Welford's algorithm: numerically stable
/// mean / variance plus min / max, O(1) memory.
class StatAccumulator {
 public:
  void add(double x) noexcept;
  void merge(const StatAccumulator& other) noexcept;
  void reset() noexcept { *this = StatAccumulator{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// first / last bin. Used for latency distributions in EXPERIMENTS.md.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  /// Linear-interpolated quantile estimate, q in [0,1].
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dtn::util
