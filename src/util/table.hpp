// Aligned plain-text tables and CSV output. The benchmark harness prints
// one table per paper figure in the same row/series layout the paper uses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dtn::util {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with a fixed precision. Rendered with a header rule, suitable for logs.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_cell calls fill it left to right.
  TablePrinter& new_row();
  TablePrinter& add_cell(std::string value);
  TablePrinter& add_cell(double value, int precision = 4);
  TablePrinter& add_cell(long long value);

  /// Renders the table (header, rule, rows) to the stream.
  void render(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer (RFC-4180 quoting for cells containing , " or \n).
class CsvWriter {
 public:
  explicit CsvWriter(std::string path);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);
  [[nodiscard]] bool ok() const noexcept { return ok_; }

  static std::string escape(const std::string& cell);

 private:
  struct Impl;
  Impl* impl_;
  bool ok_ = false;
};

/// Formats a double with fixed precision (shared by table/CSV call sites).
std::string format_double(double v, int precision);

}  // namespace dtn::util
