// Minimal child-process supervision: fork/exec spawn, non-blocking status
// polls, SIGKILL, and self-executable resolution — the process-management
// substrate of the `dtnsim sweep --workers N` campaign fabric
// (tools/dtnsim.cpp), which spawns one `dtnsim sweep --shard i/N` child
// per shard and supervises it with a liveness timeout and
// exponential-backoff restarts.
//
// Deliberately tiny: no pipes, no ptys, no environment surgery. Children
// inherit the parent's stderr (worker diagnostics interleave with the
// driver's), stdout is optionally discarded (worker tables would corrupt
// the driver's own output), and all coordination happens through the
// filesystem (per-shard journals), which is also what makes the fabric
// crash-safe — there is no in-memory state a dead worker could take with
// it.
//
// POSIX only; on _WIN32 every operation fails cleanly with an error
// string (the fabric is gated off there, matching journal truncation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dtn::util {

/// Snapshot of a child's lifecycle, as reported by waitpid.
struct ProcessStatus {
  bool running = false;   ///< still alive (or never successfully spawned)
  bool exited = false;    ///< terminated via exit(); exit_code is valid
  bool signaled = false;  ///< terminated by a signal; term_signal is valid
  int exit_code = -1;
  int term_signal = 0;
};

/// One spawned child. Movable, not copyable; destroying a Subprocess with
/// a still-running child does NOT kill or reap it (the campaign driver
/// never abandons a live worker — it kills explicitly, then waits).
class Subprocess {
 public:
  Subprocess() = default;
  ~Subprocess() = default;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;

  /// fork/execs `argv` (argv[0] = executable path, PATH is not searched).
  /// `discard_stdout` redirects the child's stdout to /dev/null; stderr is
  /// always inherited. Returns false (with `error` filled) if the fork
  /// fails or a child is already being supervised; an exec failure inside
  /// the child surfaces as exit code 127 on the next poll/wait.
  bool spawn(const std::vector<std::string>& argv, bool discard_stdout,
             std::string* error);

  /// Non-blocking status check. Once the child is reaped the result is
  /// latched: further polls return the same terminal status.
  ProcessStatus poll();

  /// Blocks until the child terminates, then returns the terminal status.
  ProcessStatus wait();

  /// SIGKILL — the supervision path for a worker whose journal stopped
  /// growing (liveness timeout). The caller still polls/waits to reap.
  void kill_hard();

  [[nodiscard]] long pid() const noexcept { return pid_; }
  [[nodiscard]] bool running() { return poll().running; }

 private:
  long pid_ = -1;
  bool reaped_ = false;
  ProcessStatus last_{};
};

/// Absolute path of the currently running executable (/proc/self/exe on
/// Linux). When the platform offers no answer (procless chroots, most
/// BSDs without procfs), falls back to resolving `argv0_fallback` via
/// resolve_executable — callers that know their argv[0] thread it
/// through instead of failing. Empty only when both sources come up dry.
std::string self_exe_path(const std::string& argv0_fallback = "");

/// Resolves an argv[0]-style command name to an absolute executable path:
/// absolute paths pass through, relative paths containing '/' resolve
/// against the current directory (realpath), bare names search $PATH for
/// an executable entry. Empty string when nothing resolves.
std::string resolve_executable(const std::string& argv0);

}  // namespace dtn::util
