#include "util/rng.hpp"

#include <cmath>

namespace dtn::util {

double Pcg32::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::int64_t Pcg32::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return lo + static_cast<std::int64_t>(next_u64());
  // Unbiased rejection sampling (Lemire-style threshold on 64-bit draws).
  const std::uint64_t threshold = (0 - range) % range;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
  }
}

double Pcg32::exponential(double mean) noexcept {
  // Inverse CDF; guard against log(0).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(1.0 - u);
}

double Pcg32::normal(double mu, double sigma) noexcept {
  // Box-Muller, discarding the second variate so each call consumes a fixed
  // amount of the stream (keeps derived streams reproducible under reorder).
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return mu + sigma * r * std::cos(kTwoPi * u2);
}

bool Pcg32::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Pcg32 derive_stream(std::uint64_t scenario_seed, std::uint64_t entity_id,
                    StreamPurpose purpose) noexcept {
  SplitMix64 mixer(scenario_seed ^ (entity_id * 0x9e3779b97f4a7c15ULL) ^
                   (static_cast<std::uint64_t>(purpose) << 48));
  const std::uint64_t state = mixer.next();
  const std::uint64_t stream = mixer.next();
  return Pcg32(state, stream);
}

std::uint64_t hash_label(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace dtn::util
