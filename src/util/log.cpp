#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace dtn::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::cerr << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace dtn::util
