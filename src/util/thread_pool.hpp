// Persistent worker pool for fanning independent simulation runs (one per
// seed / parameter point) across cores. Simulations share no mutable state,
// so the harness-level parallelism is embarrassingly parallel; the pool is
// the only concurrency primitive in the repository.
//
// Two dispatch paths:
//  - submit(): classic one-task-one-future scheduling (tests, ad-hoc use).
//  - parallel_for(): chunked atomic-counter dispatch. The caller publishes
//    ONE job; every participant (the caller plus up to max_workers-1 pool
//    threads) repeatedly grabs the next index range from an atomic cursor
//    until the range is exhausted. No per-index std::function, no futures,
//    no queue traffic — a steady-state dispatch performs zero heap
//    allocations. The first exception wins, cancels the remaining
//    unclaimed chunks, and is rethrown on the calling thread.
//
// The process-wide shared() pool is created once and reused by every
// static parallel_for call, so campaign code paths (harness::run_sweep,
// benches) never pay thread creation/teardown per call; worker-slot ids
// let callers keep per-thread state (e.g. a reusable World) across an
// entire loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dtn::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool (hardware_concurrency workers, created on first
  /// use, lives for the process). All static parallel_for calls run here.
  static ThreadPool& shared();

  /// Schedules a task; the returned future reports its result/exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(worker, i) for i in [0, n), dispatched in index chunks over an
  /// atomic cursor, and blocks until all indices completed. The calling
  /// thread participates; at most `max_workers` threads total touch the job
  /// (0 = caller + every pool worker). `worker` is a dense participant slot
  /// in [0, max_workers): slot 0 is always the caller, so callers can keep
  /// per-worker state (scratch buffers, reusable Worlds) in a plain vector.
  /// The first exception thrown by fn cancels all unclaimed indices and is
  /// rethrown here; indices already claimed by other participants still
  /// finish. Concurrent parallel_for calls on one pool serialize; a NESTED
  /// call (fn parallelizing on the same pool) runs its loop inline on the
  /// calling participant rather than deadlocking on the dispatch lock.
  void parallel_for(std::size_t n, std::size_t max_workers,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Compatibility form: runs fn(i) for i in [0, n) across up to `threads`
  /// threads of the shared() pool and blocks until all done. Exceptions
  /// from tasks propagate (first one wins). threads == 0 selects
  /// hardware_concurrency(). Small jobs (n <= 1, or a single thread
  /// requested) run inline on the caller with no pool round-trip at all.
  static void parallel_for(std::size_t n, std::size_t threads,
                           const std::function<void(std::size_t)>& fn);

 private:
  /// One chunked-dispatch job, shared by every participant. Lives on the
  /// caller's stack for the duration of its parallel_for call.
  struct Job {
    std::atomic<std::size_t> next{0};      ///< first unclaimed index
    std::size_t n = 0;                     ///< total indices
    std::size_t chunk = 1;                 ///< indices claimed per grab
    std::size_t max_entrants = 0;          ///< participant cap (incl. caller)
    std::size_t entered = 0;               ///< participants so far (under mutex_)
    std::atomic<int> inside{0};            ///< participants currently running
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::exception_ptr error;              ///< first failure (under error_mutex)
    std::mutex error_mutex;
  };

  void worker_loop();
  /// Claims and runs chunks of `job` as participant slot `worker` until the
  /// cursor is exhausted (or an error cancelled the job).
  static void run_chunks(Job& job, std::size_t worker);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;        ///< workers: queue or job available
  std::condition_variable done_cv_;   ///< caller: all participants left the job
  std::mutex dispatch_mutex_;         ///< serializes concurrent parallel_for calls
  Job* job_ = nullptr;                ///< current chunked job (under mutex_)
  std::uint64_t job_gen_ = 0;         ///< bumped per job so workers join once
  bool stop_ = false;
};

}  // namespace dtn::util
