// Fixed-size worker pool for fanning independent simulation runs (one per
// seed / parameter point) across cores. Simulations share no mutable state,
// so the harness-level parallelism is embarrassingly parallel; the pool is
// the only concurrency primitive in the repository.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dtn::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules a task; the returned future reports its result/exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all done.
  /// Exceptions from tasks propagate (first one wins).
  static void parallel_for(std::size_t n, std::size_t threads,
                           const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dtn::util
