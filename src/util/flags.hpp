// Tiny command-line / environment flag parser shared by examples and
// benchmark binaries. Supports `--name=value`, `--name value` and boolean
// `--name` forms; unknown flags are kept so google-benchmark's own flags
// pass through untouched.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dtn::util {

class Flags {
 public:
  Flags() = default;

  /// Parses argv. Flags consumed here are removed from the returned
  /// remainder so the caller can forward leftovers to other parsers.
  static Flags parse(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in original order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  void set(const std::string& name, const std::string& value) { values_[name] = value; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Reads an environment variable as an integer with fallback (used for
/// DTN_BENCH_SEEDS / DTN_BENCH_FULL scaling knobs).
std::int64_t env_int(const char* name, std::int64_t fallback);
std::optional<std::string> env_string(const char* name);

}  // namespace dtn::util
