// Tiny command-line / environment flag parser shared by examples and
// benchmark binaries. Supports `--name=value`, `--name value` and boolean
// `--name` forms; unknown flags are kept so google-benchmark's own flags
// pass through untouched.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dtn::util {

class Flags {
 public:
  Flags() = default;

  /// Parses argv. Flags consumed here are removed from the returned
  /// remainder so the caller can forward leftovers to other parsers.
  static Flags parse(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Strict integer read: false when the flag is present but not a whole
  /// integer (get_int silently falls back on garbage, which strict CLIs —
  /// dtnsim, the spec examples — must not accept). Absent flags leave
  /// `out` untouched and return true.
  [[nodiscard]] bool parse_int(const std::string& name, std::int64_t& out) const;

  /// Every value given for a repeatable flag, in command-line order (e.g.
  /// `--set a=1 --set b=2`); empty when the flag never appeared. The
  /// scalar getters above see the LAST occurrence.
  [[nodiscard]] std::vector<std::string> get_list(const std::string& name) const;

  /// Every distinct flag name that appeared, in first-use order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Flags present but not in `allowed`, in first-use order — the shared
  /// scan behind strict CLIs (dtnsim, the spec-driven examples), which
  /// must reject misspelled flags instead of silently running with
  /// defaults. (google-benchmark binaries stay permissive so its own
  /// flags pass through.)
  [[nodiscard]] std::vector<std::string> unknown_flags(
      std::initializer_list<const char*> allowed) const;

  /// Positional (non-flag) arguments in original order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  void set(const std::string& name, const std::string& value) {
    values_[name] = value;
    ordered_.emplace_back(name, value);
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> ordered_;  ///< all occurrences
  std::vector<std::string> positional_;
};

/// Splits a comma-separated flag value ("EER,CR,EBR") into its non-empty
/// tokens — the shared parser for --protocols / --axis style flags.
std::vector<std::string> split_csv(const std::string& csv);

/// Reads an environment variable as an integer with fallback (used for
/// DTN_BENCH_SEEDS / DTN_BENCH_FULL scaling knobs).
std::int64_t env_int(const char* name, std::int64_t fallback);
std::optional<std::string> env_string(const char* name);

}  // namespace dtn::util
