// Deterministic pseudo-random number generation for reproducible simulations.
//
// Every stochastic component of the simulator draws from its own Pcg32
// stream, derived from (scenario seed, node id, purpose tag). Two runs with
// the same scenario seed therefore produce bit-identical trajectories
// regardless of how many nodes or components exist, and adding a new
// consumer of randomness never perturbs existing streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>

namespace dtn::util {

/// SplitMix64: used only to expand / mix seed material for Pcg32 streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG-XSH-RR 64/32 generator (O'Neill, 2014). Small, fast, and each
/// (state, stream) pair yields an independent sequence.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  constexpr Pcg32() noexcept : Pcg32(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL) {}

  constexpr Pcg32(std::uint64_t seed, std::uint64_t stream) noexcept
      : state_(0), inc_((stream << 1u) | 1u) {
    next_u32();
    state_ += seed;
    next_u32();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next_u32(); }

  constexpr std::uint32_t next_u32() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  constexpr std::uint64_t next_u64() noexcept {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform double in [0, 1) with full 53-bit mantissa resolution.
  constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Fills out[0..n) with consecutive next_double() draws in one call —
  /// the batched form the SoA movement kernel uses to pull a whole
  /// waypoint-event block (pause, target, speed, ...) from a node's stream
  /// at once. Identical stream consumption to n sequential calls.
  constexpr void fill_doubles(double* out, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) out[i] = next_double();
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Exponentially distributed sample with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal via Box-Muller (no caching: deterministic stream use).
  double normal(double mu, double sigma) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Purpose tags used when deriving component streams. Keeping these in one
/// enum documents every consumer of randomness in the system.
enum class StreamPurpose : std::uint64_t {
  kMovement = 1,
  kTraffic = 2,
  kMapGen = 3,
  kRouting = 4,
  kScenario = 5,
  kTest = 6,
};

/// Derives an independent Pcg32 stream from (seed, entity id, purpose).
Pcg32 derive_stream(std::uint64_t scenario_seed, std::uint64_t entity_id,
                    StreamPurpose purpose) noexcept;

/// Hashes a string label into seed material (FNV-1a), for named streams.
std::uint64_t hash_label(std::string_view label) noexcept;

}  // namespace dtn::util
