// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for framing
// integrity checks — the sweep journal checksums every record so a torn
// write or bit flip in a crash-recovered file is detected instead of
// replayed as data. Table-driven, allocation-free, resumable (feed chunks
// through the running form).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dtn::util {

/// Running form: `crc = crc32_update(crc, chunk)` over successive chunks,
/// starting from crc32_init(). Finalize with crc32_final().
[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                         std::size_t size) noexcept;
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t crc) noexcept {
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a buffer (crc32("") == 0; crc32("123456789") ==
/// 0xCBF43926 — the standard check value, pinned by util_checksum_test).
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

}  // namespace dtn::util
