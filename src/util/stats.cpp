#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dtn::util {

void StatAccumulator::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StatAccumulator::merge(const StatAccumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge form of Welford's update.
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StatAccumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StatAccumulator::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cum + c >= target && c > 0.0) {
      const double frac = (target - cum) / c;
      return bin_lo(i) + frac * width_;
    }
    cum += c;
  }
  return hi_;
}

}  // namespace dtn::util
