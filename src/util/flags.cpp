#include "util/flags.hpp"

#include <cstdlib>

#include "util/value_parse.hpp"

namespace dtn::util {

namespace {

bool looks_like_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Flags Flags::parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.set(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // bare boolean `--name`.
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      flags.set(arg, argv[i + 1]);
      ++i;
    } else {
      flags.set(arg, "true");
    }
  }
  return flags;
}

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : ordered_) {
    bool seen = false;
    for (const auto& existing : out) {
      if (existing == key) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(key);
  }
  return out;
}

std::vector<std::string> Flags::unknown_flags(
    std::initializer_list<const char*> allowed) const {
  std::vector<std::string> offenders;
  for (const auto& name : names()) {
    bool known = false;
    for (const char* candidate : allowed) {
      if (name == candidate) {
        known = true;
        break;
      }
    }
    if (!known) offenders.push_back(name);
  }
  return offenders;
}

std::vector<std::string> Flags::get_list(const std::string& name) const {
  std::vector<std::string> values;
  for (const auto& [key, value] : ordered_) {
    if (key == name) values.push_back(value);
  }
  return values;
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (...) {
    return fallback;
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return fallback;
  }
}

bool Flags::parse_int(const std::string& name, std::int64_t& out) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return true;
  std::int64_t parsed = 0;
  if (!parse_value(it->second, parsed)) return false;
  out = parsed;
  return true;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string token;
  for (const char c : csv) {
    if (c == ',') {
      if (!token.empty()) out.push_back(std::move(token));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  if (!token.empty()) out.push_back(std::move(token));
  return out;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  try {
    return std::stoll(raw);
  } catch (...) {
    return fallback;
  }
}

std::optional<std::string> env_string(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return std::nullopt;
  return std::string(raw);
}

}  // namespace dtn::util
