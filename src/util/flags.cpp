#include "util/flags.hpp"

#include <cstdlib>

namespace dtn::util {

namespace {

bool looks_like_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Flags Flags::parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // bare boolean `--name`.
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      flags.values_[arg] = argv[i + 1];
      ++i;
    } else {
      flags.values_[arg] = "true";
    }
  }
  return flags;
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (...) {
    return fallback;
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return fallback;
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  try {
    return std::stoll(raw);
  } catch (...) {
    return fallback;
  }
}

std::optional<std::string> env_string(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return std::nullopt;
  return std::string(raw);
}

}  // namespace dtn::util
