// Monotonic wall-clock helpers for the harness: per-point timing
// (wall_ms in sweep results) and per-point timeout enforcement must not
// jump when the system clock is adjusted, so everything here is
// steady_clock-based. Header-only.
#pragma once

#include <chrono>

namespace dtn::util {

/// Milliseconds on the monotonic clock; only differences are meaningful.
[[nodiscard]] inline double monotonic_ms() noexcept {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simple elapsed-time stopwatch over the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(std::chrono::steady_clock::now()) {}
  void restart() noexcept { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }
  [[nodiscard]] double elapsed_s() const noexcept { return elapsed_ms() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dtn::util
