// The declarative experiment-definition API (tentpole of the ScenarioSpec
// redesign): ONE spec type describes a complete simulation run — map
// source, per-group mobility, radio/world, traffic, protocol, communities,
// duration and seed — and ScenarioRunner::run(const ScenarioSpec&) is the
// single execution entry every harness path (params-struct adapters,
// sweeps, benches, the dtnsim CLI) funnels through.
//
// Composition is registry-driven end to end:
//   - map.kind        -> geo::find_map_kind()        (downtown / open_field / trace)
//   - group.*.model   -> mobility::find_mobility_model() for the parameter
//                        vocabulary, plus the harness group-builder registry
//                        (find_group_builder) for node placement;
//   - protocol.name   -> routing::create_router()'s protocol registry.
// Registering a new entry in any of the three makes it addressable from
// scenario files and sweep axes with no harness changes.
//
// Specs are value types: copyable, serializable to ONE-style `key = value`
// config files (harness/spec_io.hpp), and overridable key-by-key
// (apply_override), which is what makes any parameter sweepable
// (harness/sweep.hpp SpecSweepOptions).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/community.hpp"
#include "geo/map_registry.hpp"
#include "mobility/registry.hpp"
#include "routing/factory.hpp"
#include "sim/traffic.hpp"
#include "sim/world.hpp"

namespace dtn::sim {
class World;
}

namespace dtn::harness {

/// One homogeneous node group: `count` nodes sharing a mobility model and
/// its parameters. Heterogeneous worlds (buses + pedestrians in one run)
/// are expressed as multiple groups; node indices are assigned in group
/// order, first group first.
struct GroupSpec {
  std::string name = "nodes";  ///< key segment: group.<name>.<param>
  std::string model = "bus";   ///< mobility registry key
  int count = 0;
  /// Per-group router override (`group.<name>.protocol`): when non-empty,
  /// this group's nodes run the named protocol instead of the spec-wide
  /// `protocol.name` (heterogeneous routing in one world). The shared knobs
  /// (copies / alpha / window / communities) stay spec-wide.
  std::string protocol;
  mobility::GroupParams params;
};

/// Map source: kind selects a geo::MapKindInfo registry entry; params holds
/// the kind's tunables.
struct MapSpec {
  std::string kind = "downtown";
  geo::MapParams params;
};

/// How node -> community ids are assigned (CR's input; ignored by every
/// other protocol).
///   auto        — each group's model decides: bus groups take their route's
///                 district, community groups take their home band, other
///                 models round-robin over `count`;
///   round_robin — community_of(v) = group-local index % count for every
///                 group;
///   detected    — run a routing-free warm-up pass of THIS spec's world
///                 (same map, movement, seed) for `warmup_s` simulated
///                 seconds, collect pairwise contact counts, and detect
///                 communities from them (core::detect_communities) — the
///                 paper's distributed-construction future work, spec-driven.
struct CommunitySpec {
  std::string source = "auto";
  int count = 4;  ///< bands / round-robin classes (also community-group tiling)
  double warmup_s = 1000.0;  ///< detected: warm-up sim seconds
};

/// The valid `communities.source` vocabulary, in documentation order. The
/// conformance matrix walks this instead of a hand-written list.
std::vector<std::string> community_source_names();

/// The same vocabulary as one "a | b | c" string — shared by validate_spec
/// and the parser's bad-value diagnostic so the two messages cannot drift.
std::string community_source_list();

/// One `traffic.<src>.<dst>.*` flow: src/dst are GROUP NAMES (resolved to
/// node-index ranges at build time, in group declaration order). Entries
/// keep declaration order, which is also their RNG-stream index — so a
/// config edit that appends an entry never perturbs existing schedules.
struct TrafficEntrySpec {
  std::string src;
  std::string dst;
  double interval_min = 25.0;
  double interval_max = 35.0;
  std::int64_t size_bytes = 25 * 1024;
  double weight = 1.0;
};

/// The valid `traffic.profile` vocabulary, in documentation order.
std::vector<std::string> traffic_profile_names();

/// The same vocabulary as one "a | b | c" string (see community_source_list).
std::string traffic_profile_list();

/// Name <-> enum mapping for `traffic.profile`. parse returns false on an
/// unknown name; name() is total over the enum.
bool parse_traffic_profile(const std::string& name, sim::TrafficProfile& out);
std::string traffic_profile_name(sim::TrafficProfile profile);

struct ScenarioSpec {
  std::string name = "scenario";
  double duration_s = 10000.0;
  std::uint64_t seed = 1;
  /// When true (default) traffic generation stops at duration - TTL so
  /// every generated message has a full TTL window inside the run.
  bool full_ttl_window = true;

  MapSpec map;
  std::vector<GroupSpec> groups;
  sim::WorldConfig world;      ///< radio/world (seed overlaid from `seed`)
  /// Scalar traffic knobs incl. profile; the scalar interval/size fields
  /// drive the implicit network-wide flow only when traffic_matrix is
  /// empty. `traffic.matrix`/`traffic.trace` are build products — the
  /// spec-level forms are traffic_matrix / traffic_file below.
  sim::TrafficParams traffic;
  /// `traffic.<src>.<dst>.*` flows by group name (empty = network-wide).
  std::vector<TrafficEntrySpec> traffic_matrix;
  /// `traffic.file`: the trace replayed when traffic.profile = trace.
  std::string traffic_file;
  routing::ProtocolConfig protocol;  ///< `communities` filled at build time
  CommunitySpec communities;

  /// Programmatic-only (not expressible in config files): when set, this
  /// table replaces the spec-derived community assignment — used by the
  /// detected-communities ablation.
  std::shared_ptr<const core::CommunityTable> communities_override;

  /// Total node count across groups.
  [[nodiscard]] int node_count() const;
};

// ---- group-builder registry -------------------------------------------------
// The composition half of a mobility model: how a group's nodes join a
// World. Split from mobility::MobilityModelInfo because placement needs
// sim/harness context (built map, community layout, router factory) that
// the mobility layer must not depend on.

struct GroupBuildContext {
  const ScenarioSpec& spec;
  const geo::BuiltMap& map;
  int first_node = 0;  ///< global index of the group's first node
  /// Builds one router for this group's nodes. Installed by the scenario
  /// layer: normally routing::create_router over the group's resolved
  /// protocol (per-group override applied), but the detected-communities
  /// warm-up substitutes a routing-free contact logger — group builders
  /// MUST obtain routers through this hook, never from the factory
  /// directly. Null only in assign_communities contexts.
  std::function<std::unique_ptr<sim::Router>()> make_router;
};

struct GroupBuilder {
  std::string model;  ///< mobility registry key this builder serves
  /// Appends one community id per node of `group` to `cid` ("auto" source;
  /// see CommunitySpec).
  void (*assign_communities)(const GroupBuildContext& ctx, const GroupSpec& group,
                             std::vector<int>& cid);
  /// Adds the group's nodes to `world`, one router per node from
  /// `ctx.make_router()`. Must add exactly group.count nodes in group-local
  /// order.
  void (*add_nodes)(sim::World& world, const GroupBuildContext& ctx,
                    const GroupSpec& group);
  /// Map capabilities this model requires (checked against
  /// geo::MapKindInfo::provides_* in validate_spec, so `dtnsim check`
  /// rejects what run would reject).
  bool needs_routes = false;
  bool needs_trace = false;
  /// Optional model-specific parameter check, called by validate_spec.
  /// Programmatic specs bypass the parser's per-key vetting, so anything
  /// add_nodes would silently misinterpret (e.g. an enum-like string)
  /// must throw here instead. Null = nothing beyond the key vocabulary.
  void (*validate)(const GroupSpec& group) = nullptr;
};

const GroupBuilder* find_group_builder(const std::string& model);
void register_group_builder(const GroupBuilder& builder);

/// The assign_communities fallback for models without intrinsic community
/// structure: group-local index % CommunitySpec::count. Also used for
/// every group when communities.source = round_robin, and available to
/// custom group builders.
void round_robin_communities(const GroupBuildContext& ctx, const GroupSpec& group,
                             std::vector<int>& cid);

/// The group's effective protocol config: the spec-wide block with the
/// per-group name override applied (shared knobs stay spec-wide).
routing::ProtocolConfig resolved_protocol(const ScenarioSpec& spec,
                                          const GroupSpec& group);

/// Validates spec consistency beyond per-key parsing (at least one group,
/// known model/map/protocol names incl. per-group overrides, model/map
/// compatibility, communities source vocabulary, the traffic section:
/// interval/ttl/size/window sanity, profile parameters, matrix entries
/// naming real groups, full_ttl_window leaving a creation window). Throws
/// std::invalid_argument with an explanatory message.
void validate_spec(const ScenarioSpec& spec);

}  // namespace dtn::harness
