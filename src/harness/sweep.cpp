#include "harness/sweep.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "util/thread_pool.hpp"

namespace dtn::harness {

std::vector<PointResult> run_sweep(const SweepOptions& options) {
  struct Task {
    std::size_t point;
    std::string protocol;
    int nodes;
    std::uint64_t seed;
  };
  std::vector<PointResult> results;
  std::vector<Task> tasks;
  for (const auto& protocol : options.protocols) {
    for (const int nodes : options.node_counts) {
      PointResult point;
      point.protocol = protocol;
      point.node_count = nodes;
      point.copies = options.base.protocol.copies;
      point.alpha = options.base.protocol.alpha;
      const std::size_t idx = results.size();
      results.push_back(std::move(point));
      for (int s = 0; s < options.seeds; ++s) {
        tasks.push_back(Task{idx, protocol, nodes,
                             options.seed_base + static_cast<std::uint64_t>(s)});
      }
    }
  }

  std::mutex merge_mutex;
  util::ThreadPool::parallel_for(
      tasks.size(), options.threads, [&](std::size_t i) {
        const Task& task = tasks[i];
        BusScenarioParams params = options.base;
        params.protocol.name = task.protocol;
        params.node_count = task.nodes;
        params.seed = task.seed;
        const ScenarioResult run = run_bus_scenario(params);

        const std::lock_guard<std::mutex> lock(merge_mutex);
        PointResult& point = results[task.point];
        point.delivery_ratio.add(run.metrics.delivery_ratio());
        point.latency.add(run.metrics.latency_mean());
        point.goodput.add(run.metrics.goodput());
        point.control_mb.add(static_cast<double>(run.metrics.control_bytes()) / 1e6);
        point.relayed.add(static_cast<double>(run.metrics.relayed()));
        point.contacts.add(static_cast<double>(run.contact_events));
        if (options.progress) {
          options.progress(task.protocol + "/n=" + std::to_string(task.nodes) +
                           "/seed=" + std::to_string(task.seed));
        }
      });
  return results;
}

std::string metric_name(Metric metric) {
  switch (metric) {
    case Metric::kDeliveryRatio: return "delivery_ratio";
    case Metric::kLatency: return "latency_s";
    case Metric::kGoodput: return "goodput";
    case Metric::kControlMb: return "control_MB";
    case Metric::kRelayed: return "relayed";
  }
  return "?";
}

double metric_value(const PointResult& point, Metric metric) {
  switch (metric) {
    case Metric::kDeliveryRatio: return point.delivery_ratio.mean();
    case Metric::kLatency: return point.latency.mean();
    case Metric::kGoodput: return point.goodput.mean();
    case Metric::kControlMb: return point.control_mb.mean();
    case Metric::kRelayed: return point.relayed.mean();
  }
  return 0.0;
}

util::TablePrinter metric_table(const std::vector<PointResult>& results,
                                Metric metric, int precision) {
  // Column per protocol, row per node count, both in first-seen order. A
  // (protocol, nodes) -> result map built once replaces the former
  // O(results^2) linear re-scan per cell.
  std::vector<std::string> protocols;
  std::vector<int> node_counts;
  std::map<std::pair<std::string, int>, const PointResult*> by_key;
  for (const auto& p : results) {
    if (std::find(protocols.begin(), protocols.end(), p.protocol) == protocols.end()) {
      protocols.push_back(p.protocol);
    }
    if (std::find(node_counts.begin(), node_counts.end(), p.node_count) ==
        node_counts.end()) {
      node_counts.push_back(p.node_count);
    }
    by_key.emplace(std::make_pair(p.protocol, p.node_count), &p);  // keeps first
  }
  std::vector<std::string> headers{"nodes"};
  for (const auto& proto : protocols) headers.push_back(proto);
  util::TablePrinter table(std::move(headers));
  for (const int n : node_counts) {
    table.new_row().add_cell(static_cast<long long>(n));
    for (const auto& proto : protocols) {
      const auto it = by_key.find({proto, n});
      if (it == by_key.end()) {
        table.add_cell(std::string("-"));
      } else {
        table.add_cell(metric_value(*it->second, metric), precision);
      }
    }
  }
  return table;
}

}  // namespace dtn::harness
