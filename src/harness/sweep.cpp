#include "harness/sweep.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>

#include "harness/journal.hpp"
#include "harness/spec_io.hpp"
#include "util/clock.hpp"
#include "util/thread_pool.hpp"
#include "util/value_parse.hpp"

namespace dtn::harness {

namespace {

/// One run's scalar metric sample; folded into the PointResult
/// accumulators — in seed order per point — the moment the point's last
/// seed finishes (or replayed from its journal record on resume).
struct SeedSample {
  double delivery_ratio = 0.0;
  double latency = 0.0;
  double goodput = 0.0;
  double control_mb = 0.0;
  double relayed = 0.0;
  double contacts = 0.0;
};

SeedSample sample_of(const ScenarioResult& run) {
  SeedSample s;
  s.delivery_ratio = run.metrics.delivery_ratio();
  s.latency = run.metrics.latency_mean();
  s.goodput = run.metrics.goodput();
  s.control_mb = static_cast<double>(run.metrics.control_bytes()) / 1e6;
  s.relayed = static_cast<double>(run.metrics.relayed());
  s.contacts = static_cast<double>(run.contact_events);
  return s;
}

void fold_sample(PointResult& point, const SeedSample& s) {
  point.delivery_ratio.add(s.delivery_ratio);
  point.latency.add(s.latency);
  point.goodput.add(s.goodput);
  point.control_mb.add(s.control_mb);
  point.relayed.add(s.relayed);
  point.contacts.add(s.contacts);
}

// ---- journal payloads -------------------------------------------------------
//
// The journal layer (harness/journal.hpp) frames and checksums raw
// payloads; this is the sweep engine's payload vocabulary on top of it.
// Line-oriented text, one record per COMPLETED grid point:
//
//   point <idx> ok <tries> <wall_ms>
//   seed <delivery_ratio> <latency> <goodput> <control_mb> <relayed> <contacts>
//   ... (exactly `seeds` lines, in seed order)
//
//   point <idx> failed <tries> <wall_ms>
//   error <first failure reason, newline-stripped>
//
// Doubles are written as C99 hexfloats (%a) so replay reproduces the
// exact bit pattern — the whole reason resumed aggregates can be required
// bit-identical to an uninterrupted campaign. The first record of every
// journal is the campaign fingerprint (see campaign_fingerprint); resume
// refuses to replay a journal whose fingerprint differs.

std::string hex_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

bool parse_hex_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  out = v;
  return true;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t at = 0;
  while (at < text.size()) {
    std::size_t nl = text.find('\n', at);
    if (nl == std::string::npos) nl = text.size();
    lines.push_back(text.substr(at, nl - at));
    at = nl + 1;
  }
  return lines;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t at = 0;
  while (at < line.size()) {
    std::size_t sp = line.find(' ', at);
    if (sp == std::string::npos) sp = line.size();
    if (sp > at) fields.push_back(line.substr(at, sp - at));
    at = sp + 1;
  }
  return fields;
}

constexpr const char kJournalHeaderTag[] = "campaign dtnsim-sweep-journal/1";

/// What makes two campaigns "the same" for resume purposes: the canonical
/// base spec, every axis (key + values, in order), the per-point seed
/// schedule, and the grid size. Threads / progress / fsync cadence are
/// deliberately excluded — they cannot change any result bit.
std::string campaign_fingerprint(const SpecSweepOptions& options, std::size_t total) {
  std::string fp = kJournalHeaderTag;
  fp += "\nseeds=" + std::to_string(options.seeds) +
        " seed_base=" + util::format_value(options.seed_base) +
        " points=" + std::to_string(total) + "\n";
  for (const auto& axis : options.axes) {
    fp += "axis " + axis.key + " =";
    for (const auto& value : axis.values) {
      fp += '\x1f';  // unambiguous even for values containing spaces
      fp += value;
    }
    fp += "\n";
  }
  fp += to_config(options.base);
  return fp;
}

std::string sanitize_one_line(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) out += (c == '\n' || c == '\r') ? ' ' : c;
  return out;
}

std::string point_record_payload(std::size_t idx, const PointExec& exec,
                                 const std::vector<SeedSample>& samples) {
  std::string payload = "point " + std::to_string(idx);
  payload += exec.ok() ? " ok " : " failed ";
  payload += std::to_string(exec.tries) + " " + hex_double(exec.wall_ms) + "\n";
  if (exec.ok()) {
    for (const SeedSample& s : samples) {
      payload += "seed " + hex_double(s.delivery_ratio) + " " + hex_double(s.latency) +
                 " " + hex_double(s.goodput) + " " + hex_double(s.control_mb) + " " +
                 hex_double(s.relayed) + " " + hex_double(s.contacts) + "\n";
    }
  } else {
    payload += "error " + sanitize_one_line(exec.error) + "\n";
  }
  return payload;
}

struct ParsedPointRecord {
  std::size_t idx = 0;
  PointExec exec;
  std::vector<SeedSample> samples;  ///< empty for failed records
};

/// Strict parse of one point-record payload. Returns false on anything
/// malformed or mis-sized (wrong seed count for this campaign) — the
/// caller then recomputes that point rather than trusting the record.
bool parse_point_record(const std::string& payload, std::size_t total, int seeds,
                        ParsedPointRecord& out) {
  const std::vector<std::string> lines = split_lines(payload);
  if (lines.empty()) return false;
  const std::vector<std::string> head = split_fields(lines[0]);
  if (head.size() != 5 || head[0] != "point") return false;
  std::int64_t idx = -1;
  std::int64_t tries = 0;
  if (!util::parse_value(head[1], idx) || idx < 0 ||
      static_cast<std::size_t>(idx) >= total) {
    return false;
  }
  const bool ok = head[2] == "ok";
  if (!ok && head[2] != "failed") return false;
  if (!util::parse_value(head[3], tries) || tries < 0) return false;
  double wall_ms = 0.0;
  if (!parse_hex_double(head[4], wall_ms)) return false;

  out.idx = static_cast<std::size_t>(idx);
  out.exec.status = ok ? PointExec::Status::kOk : PointExec::Status::kFailed;
  out.exec.tries = static_cast<int>(tries);
  out.exec.wall_ms = wall_ms;
  out.exec.resumed = true;
  out.exec.error.clear();
  out.samples.clear();

  if (ok) {
    if (lines.size() != 1 + static_cast<std::size_t>(seeds)) return false;
    out.samples.reserve(static_cast<std::size_t>(seeds));
    for (std::size_t l = 1; l < lines.size(); ++l) {
      const std::vector<std::string> fields = split_fields(lines[l]);
      if (fields.size() != 7 || fields[0] != "seed") return false;
      SeedSample s;
      double* const slots[6] = {&s.delivery_ratio, &s.latency,   &s.goodput,
                                &s.control_mb,     &s.relayed,   &s.contacts};
      for (int f = 0; f < 6; ++f) {
        if (!parse_hex_double(fields[static_cast<std::size_t>(f) + 1], *slots[f])) {
          return false;
        }
      }
      out.samples.push_back(s);
    }
  } else {
    if (lines.size() != 2 || lines[1].rfind("error ", 0) != 0) return false;
    out.exec.error = lines[1].substr(6);
  }
  return true;
}

// ---- grid expansion ---------------------------------------------------------

/// The axis cross-product, resolved: one SpecPointResult skeleton + one
/// validated ScenarioSpec per grid point, in cross-product order (first
/// axis outermost). Shared by run_spec_sweep and merge_sweep_journals so a
/// merge labels points (overrides, protocol, nodes) exactly as the run
/// that produced the journals did.
struct ExpandedGrid {
  std::size_t total = 0;
  std::vector<SpecPointResult> points;
  std::vector<ScenarioSpec> specs;
};

ExpandedGrid expand_sweep_grid(const SpecSweepOptions& options) {
  // An axis with no values yields an empty grid, matching the pre-spec
  // engine's behavior for empty protocol lists.
  ExpandedGrid grid;
  grid.total = 1;
  for (const auto& axis : options.axes) grid.total *= axis.values.size();

  // The per-task seed overwrites spec.seed below, so a scenario.seed axis
  // would be silently ignored — reject it instead of lying. Ditto
  // duplicate axis keys: the later override wins per point, so the grid
  // would run identical specs under different labels.
  for (std::size_t i = 0; i < options.axes.size(); ++i) {
    const std::string& key = options.axes[i].key;
    if (key == "scenario.seed") {
      throw SpecError({{0, "scenario.seed cannot be a sweep axis; seeds are the "
                           "per-point repetition (seeds / seed_base)"}},
                      "sweep");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (options.axes[j].key == key) {
        throw SpecError({{0, "duplicate sweep axis '" + key +
                             "' — the later values would overwrite the earlier "
                             "ones under the earlier labels"}},
                        "sweep");
      }
    }
  }

  grid.points.reserve(grid.total);
  grid.specs.reserve(grid.total);
  for (std::size_t p = 0; p < grid.total; ++p) {
    ScenarioSpec spec = options.base;
    SpecPointResult point;
    std::size_t stride = grid.total;
    for (const auto& axis : options.axes) {
      stride /= axis.values.size();
      const std::string& value = axis.values[(p / stride) % axis.values.size()];
      apply_override(spec, axis.key, value);  // throws SpecError on bad key
      point.overrides.emplace_back(axis.key, value);
    }
    // Fail fast at expansion: one structurally invalid grid point must not
    // abort a campaign mid-flight after hours of finished runs.
    validate_spec(spec);
    point.result.protocol = spec.protocol.name;
    point.result.node_count = spec.node_count();
    point.result.copies = spec.protocol.copies;
    point.result.alpha = spec.protocol.alpha;
    grid.points.push_back(std::move(point));
    grid.specs.push_back(std::move(spec));
  }
  return grid;
}

/// Validates the shard selector and returns the in-shard predicate: a
/// deterministic assignment keyed ONLY on the point index, so every
/// cooperating process (and a later merge) agrees on who owns what
/// without any coordination.
std::function<bool(std::size_t)> shard_filter(const SpecSweepOptions& options) {
  if (options.shard_count == 0) {
    throw std::invalid_argument(
        "sweep shard_count must be >= 1 (0/1 selects the whole grid)");
  }
  if (options.shard_index >= options.shard_count) {
    throw std::invalid_argument(
        "sweep shard_index " + std::to_string(options.shard_index) +
        " out of range for shard_count " + std::to_string(options.shard_count));
  }
  const std::size_t index = options.shard_index;
  const std::size_t count = options.shard_count;
  return [index, count](std::size_t point) { return point % count == index; };
}

// ---- legacy engine ----------------------------------------------------------

struct LegacyTask {
  std::size_t point;
  std::string protocol;
  int nodes;
  std::uint64_t seed;
};

BusScenarioParams legacy_task_params(const SweepOptions& options, const LegacyTask& task) {
  BusScenarioParams params = options.base;
  params.protocol.name = task.protocol;
  params.node_count = task.nodes;
  params.seed = task.seed;
  return params;
}

std::string legacy_task_label(const LegacyTask& task) {
  return task.protocol + "/n=" + std::to_string(task.nodes) +
         "/seed=" + std::to_string(task.seed);
}

/// The pre-PR3 engine, kept verbatim as the bench_sweep baseline: a
/// throwaway pool per call, one heap task + future per run, a fresh World
/// per run, and a single merge mutex that also serializes the progress
/// callback (the contention bug fixed in the reused engine).
void run_sweep_legacy(const SweepOptions& options, const std::vector<LegacyTask>& tasks,
                      std::vector<PointResult>& results) {
  std::mutex merge_mutex;
  util::ThreadPool pool(options.threads);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    futures.push_back(pool.submit([&options, &tasks, &results, &merge_mutex, i] {
      const LegacyTask& task = tasks[i];
      const ScenarioResult run = run_bus_scenario(legacy_task_params(options, task));

      const std::lock_guard<std::mutex> lock(merge_mutex);
      PointResult& point = results[task.point];
      fold_sample(point, sample_of(run));
      if (options.progress) options.progress(legacy_task_label(task));
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace

std::string SpecPointResult::label() const {
  std::string out;
  for (const auto& [key, value] : overrides) {
    if (!out.empty()) out += " ";
    out += key + "=" + value;
  }
  return out;
}

std::vector<SpecPointResult> run_spec_sweep(const SpecSweepOptions& options) {
  const auto in_shard = shard_filter(options);
  ExpandedGrid grid = expand_sweep_grid(options);
  const std::size_t total = grid.total;
  std::vector<SpecPointResult>& points = grid.points;
  const std::vector<ScenarioSpec>& specs = grid.specs;
  // Out-of-shard points are another process's job: never executed, never
  // journaled, reported kSkipped with empty accumulators.
  for (std::size_t p = 0; p < total; ++p) {
    if (!in_shard(p)) points[p].exec.status = PointExec::Status::kSkipped;
  }

  const int seeds = std::max(options.seeds, 0);
  const bool journaling = !options.journal_path.empty();
  if (options.resume && !journaling) {
    throw SweepJournalError("resume requires a journal path");
  }
  const auto notify = [&](const std::string& message) {
    if (options.note) options.note(message);
  };

  // ---- resume: replay the journal's valid prefix ---------------------------
  const std::string header = campaign_fingerprint(options, total);
  std::vector<char> completed(total, 0);
  JournalWriter journal;
  if (journaling) {
    bool need_header = true;
    if (options.resume) {
      const JournalReadResult replay = read_journal(options.journal_path);
      if (replay.io_error) {
        throw SweepJournalError("cannot read journal '" + options.journal_path + "'");
      }
      if (replay.missing) {
        notify("journal '" + options.journal_path +
               "' not found; starting a fresh campaign");
      } else if (replay.records.empty()) {
        // The file exists but holds no intact record — a campaign killed
        // mid-header-write. Nothing is replayable; recompute everything.
        notify("journal '" + options.journal_path +
               "': no intact records (dropped " +
               std::to_string(replay.dropped_bytes) +
               " byte(s)); recomputing the full campaign");
        truncate_file(options.journal_path, 0);
      } else if (replay.records.front() != header) {
        throw SweepJournalError(
            "cannot resume: journal '" + options.journal_path +
            "' was written by a different campaign (base spec, axes, seeds, or "
            "seed base differ) — delete it or rerun without resume");
      } else {
        if (replay.tail_dropped()) {
          notify("journal '" + options.journal_path +
                 "': dropped corrupt/truncated tail (" +
                 std::to_string(replay.dropped_bytes) +
                 " byte(s)); affected points will be recomputed");
          // Cut the garbage BEFORE appending: new records written behind a
          // corrupt region would be unreachable on the next replay.
          truncate_file(options.journal_path, replay.valid_bytes);
        }
        need_header = false;
        // Last record per point wins (a resumed-after-failure retry
        // supersedes the failed record it was retrying).
        std::vector<const std::string*> latest(total, nullptr);
        ParsedPointRecord record;
        for (std::size_t r = 1; r < replay.records.size(); ++r) {
          if (parse_point_record(replay.records[r], total, seeds, record)) {
            latest[record.idx] = &replay.records[r];
          }
        }
        for (std::size_t p = 0; p < total; ++p) {
          // Out-of-shard records can appear when a journal outlives a
          // change of shard assignment; this invocation ignores them
          // (its own point census stays kSkipped) rather than adopting
          // points it does not own.
          if (latest[p] == nullptr || !in_shard(p)) continue;
          if (!parse_point_record(*latest[p], total, seeds, record)) continue;
          if (!record.exec.ok()) continue;  // failed points are recomputed
          for (const SeedSample& s : record.samples) {
            fold_sample(points[p].result, s);
          }
          points[p].exec = record.exec;
          completed[p] = 1;
        }
      }
    } else {
      // A fresh journaled campaign owns its path outright: drop any stale
      // journal so old records cannot shadow this run on a later resume.
      truncate_file(options.journal_path, 0);
    }
    std::string error;
    if (!journal.open(options.journal_path, &error)) throw SweepJournalError(error);
    journal.set_sync_every(options.sync_every);
    if (need_header && !journal.append(header)) {
      throw SweepJournalError("cannot write journal '" + options.journal_path + "'");
    }
  }

  // ---- task list: only the points the journal did not complete -------------
  struct Task {
    std::size_t point;
    std::uint64_t seed;
  };
  std::vector<Task> tasks;
  tasks.reserve(points.size() * static_cast<std::size_t>(seeds));
  for (std::size_t p = 0; p < points.size(); ++p) {
    if (completed[p] || !in_shard(p)) continue;
    for (int s = 0; s < seeds; ++s) {
      tasks.push_back(Task{p, options.seed_base + static_cast<std::uint64_t>(s)});
    }
  }

  std::size_t workers = options.threads != 0
                            ? options.threads
                            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, tasks.size());

  // Per-point in-flight state. Samples are buffered only until the point's
  // last seed lands: the fold runs at completion (seed order, so the
  // aggregates stay bit-identical to the old run-everything-then-fold loop
  // for any thread count), the journal record streams out, and the buffer
  // is released — memory is O(in-flight points), not O(campaign).
  struct PointState {
    std::vector<SeedSample> samples;
    int remaining = 0;
    int tries = 0;
    double wall_ms = 0.0;
    bool failed = false;
    std::string error;  ///< first failure reason
  };
  std::vector<PointState> state(total);
  for (std::size_t p = 0; p < total; ++p) {
    if (!completed[p] && in_shard(p)) state[p].remaining = seeds;
  }

  std::mutex book_mutex;  ///< guards PointState, the fold, and the journal
  std::mutex progress_mutex;
  bool journal_sick = false;  ///< append failed (disk full) — noted once

  SweepFaultPlan* const fault = options.fault_plan;
  const auto fault_armed = [fault](std::size_t point) {
    if (fault == nullptr || fault->point != point) return false;
    // fetch_add so concurrent attempts cannot both claim the last fire.
    return fault->fired.fetch_add(1, std::memory_order_relaxed) < fault->fires;
  };

  /// Books one finished task (success or failure); on the point's last
  /// seed, folds + journals + releases the point.
  const auto finish_task = [&](std::size_t task_index, const SeedSample* sample,
                               int attempts, double wall_ms, const std::string& error) {
    const std::size_t p = tasks[task_index].point;
    const std::lock_guard<std::mutex> lock(book_mutex);
    PointState& st = state[p];
    if (st.samples.empty()) st.samples.resize(static_cast<std::size_t>(seeds));
    const std::size_t s =
        static_cast<std::size_t>(tasks[task_index].seed - options.seed_base);
    if (sample != nullptr) {
      st.samples[s] = *sample;
    } else if (!st.failed) {
      st.failed = true;
      st.error = error;
    }
    st.tries += attempts;
    st.wall_ms += wall_ms;
    if (--st.remaining > 0) return;

    // Point complete: fold (seed order), stream the record, free the buffer.
    PointExec& exec = points[p].exec;
    exec.status = st.failed ? PointExec::Status::kFailed : PointExec::Status::kOk;
    exec.error = st.error;
    exec.tries = st.tries;
    exec.wall_ms = st.wall_ms;
    exec.resumed = false;
    if (!st.failed) {
      for (const SeedSample& seed_sample : st.samples) {
        fold_sample(points[p].result, seed_sample);
      }
    }
    if (journaling && !journal_sick) {
      if (!journal.append(point_record_payload(p, exec, st.samples))) {
        journal_sick = true;
        notify("journal '" + options.journal_path +
               "': write failed; campaign continues WITHOUT crash safety");
      } else if (fault != nullptr && fault->action == SweepFaultPlan::Action::kKill &&
                 journal.bytes() >= fault->journal_bytes) {
        std::raise(SIGKILL);  // deterministic "crashed right after this record"
      }
    }
    st.samples.clear();
    st.samples.shrink_to_fit();
    st.error.clear();
  };

  /// One simulation attempt on the worker's runner, no timeout. Returns
  /// true on success; false fills `error`.
  const auto attempt_inline = [&](ScenarioRunner& runner, const ScenarioSpec& spec,
                                  int hang_ms, SeedSample& out, std::string& error) {
    try {
      if (hang_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(hang_ms));
      }
      out = sample_of(runner.run(spec));
      return true;
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown exception";
    }
    return false;
  };

  /// One attempt supervised by a wall-clock watchdog: the simulation runs
  /// on a helper thread; if it outlives point_timeout_s it is ABANDONED
  /// (helper + its World stay alive on shared_ptrs until the run returns,
  /// then evaporate) and the worker continues on a fresh World. Returns
  /// true on success, false with `error` on failure or timeout.
  struct AttemptShared {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    SeedSample sample;
    std::string error;
  };
  const auto attempt_with_timeout = [&](std::shared_ptr<ScenarioRunner>& runner_slot,
                                        const ScenarioSpec& spec, int hang_ms,
                                        SeedSample& out, std::string& error) {
    auto shared = std::make_shared<AttemptShared>();
    std::shared_ptr<ScenarioRunner> runner = runner_slot;
    std::thread helper([shared, runner, spec, hang_ms] {
      SeedSample sample;
      std::string attempt_error;
      bool ok = false;
      try {
        if (hang_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(hang_ms));
        }
        sample = sample_of(runner->run(spec));
        ok = true;
      } catch (const std::exception& e) {
        attempt_error = e.what();
      } catch (...) {
        attempt_error = "unknown exception";
      }
      const std::lock_guard<std::mutex> lock(shared->m);
      shared->sample = sample;
      shared->error = std::move(attempt_error);
      shared->ok = ok;
      shared->done = true;
      shared->cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(shared->m);
    const bool finished = shared->cv.wait_for(
        lock, std::chrono::duration<double>(options.point_timeout_s),
        [&] { return shared->done; });
    if (finished) {
      lock.unlock();
      helper.join();
      if (shared->ok) {
        out = shared->sample;
        return true;
      }
      error = shared->error;
      return false;
    }
    lock.unlock();
    helper.detach();  // everything it touches is shared_ptr-owned
    runner_slot = std::make_shared<ScenarioRunner>();  // abandoned World replaced
    error = "timed out after " + util::format_value(options.point_timeout_s) + " s";
    return false;
  };

  const auto run_task = [&](std::shared_ptr<ScenarioRunner>& runner_slot,
                            std::size_t i) {
    const std::size_t p = tasks[i].point;
    ScenarioSpec spec = specs[p];
    spec.seed = tasks[i].seed;

    const int max_attempts = 1 + std::max(options.retries, 0);
    int attempts = 0;
    bool ok = false;
    SeedSample sample;
    std::string error;
    util::Stopwatch watch;
    while (attempts < max_attempts && !ok) {
      ++attempts;
      int hang_ms = 0;
      if (fault_armed(p)) {
        switch (fault->action) {
          case SweepFaultPlan::Action::kKill: std::raise(SIGKILL); break;
          case SweepFaultPlan::Action::kThrow:
            error = "injected fault: throw at point " + std::to_string(p);
            continue;
          case SweepFaultPlan::Action::kHang: hang_ms = fault->hang_ms; break;
        }
      }
      ok = options.point_timeout_s > 0.0
               ? attempt_with_timeout(runner_slot, spec, hang_ms, sample, error)
               : attempt_inline(*runner_slot, spec, hang_ms, sample, error);
    }
    const double wall_ms = watch.elapsed_ms();

    if (!ok && !options.isolate_failures) {
      // The satellite fix: a failing point must name itself. Without this
      // the pool's first-exception propagation surfaces a bare what() with
      // no clue WHICH of ten thousand runs died.
      std::string label = points[p].label();
      if (!label.empty()) label += "/";
      label += "seed=" + std::to_string(tasks[i].seed);
      throw std::runtime_error("sweep point [" + label + "] failed after " +
                               std::to_string(attempts) + " attempt(s): " + error);
    }
    finish_task(i, ok ? &sample : nullptr, attempts, wall_ms, error);
    if (options.progress) {
      // Outside every merge path; serialized only against itself.
      std::string label = points[p].label();
      if (!label.empty()) label += "/";
      label += "seed=" + std::to_string(tasks[i].seed);
      const std::lock_guard<std::mutex> lock(progress_mutex);
      options.progress(label);
    }
  };

  if (workers <= 1) {
    auto runner = std::make_shared<ScenarioRunner>();  // one warm World, whole grid
    for (std::size_t i = 0; i < tasks.size(); ++i) run_task(runner, i);
  } else {
    std::vector<std::shared_ptr<ScenarioRunner>> runners;  // one warm World per worker
    runners.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      runners.push_back(std::make_shared<ScenarioRunner>());
    }
    util::ThreadPool::shared().parallel_for(
        tasks.size(), workers,
        [&](std::size_t worker, std::size_t i) { run_task(runners[worker], i); });
  }

  if (journaling) journal.sync();
  return std::move(grid.points);
}

std::string sweep_campaign_fingerprint(const SpecSweepOptions& options) {
  std::size_t total = 1;
  for (const auto& axis : options.axes) total *= axis.values.size();
  return campaign_fingerprint(options, total);
}

std::vector<SpecPointResult> merge_sweep_journals(
    const SpecSweepOptions& options, const std::vector<std::string>& journal_paths,
    SweepMergeStats* stats, const std::vector<std::string>& origins) {
  ExpandedGrid grid = expand_sweep_grid(options);
  const std::size_t total = grid.total;
  const int seeds = std::max(options.seeds, 0);
  const std::string header = campaign_fingerprint(options, total);

  SweepMergeStats merged;
  constexpr std::size_t kNoOwner = static_cast<std::size_t>(-1);
  std::vector<std::size_t> owner(total, kNoOwner);  ///< journal index per point
  for (std::size_t j = 0; j < journal_paths.size(); ++j) {
    const std::string& path = journal_paths[j];
    const JournalReadResult replay = read_journal(path);
    if (replay.io_error) {
      throw SweepJournalError("cannot read shard journal '" + path + "'");
    }
    // A shard killed before its header became durable left nothing to
    // merge — its points surface as missing below, not as a refusal: the
    // campaign must degrade to failed-with-reason points, not refuse to
    // publish the shards that survived.
    if (replay.missing || replay.records.empty()) continue;
    if (replay.records.front() != header) {
      throw SweepJournalError(
          "cannot merge: shard journal '" + path +
          "' was written by a different campaign (base spec, axes, seeds, or "
          "seed base differ)");
    }
    ++merged.journals_read;
    // Within ONE journal the last record per point wins — a restarted
    // shard appended retry records behind the failures they supersede,
    // exactly like resume. ACROSS journals the same point is refused:
    // overlapping shards would silently double-count samples, the one
    // unforgivable merge outcome.
    std::vector<const std::string*> latest(total, nullptr);
    ParsedPointRecord record;
    for (std::size_t r = 1; r < replay.records.size(); ++r) {
      if (parse_point_record(replay.records[r], total, seeds, record)) {
        latest[record.idx] = &replay.records[r];
      }
    }
    for (std::size_t p = 0; p < total; ++p) {
      if (latest[p] == nullptr) continue;
      if (owner[p] != kNoOwner) {
        throw SweepJournalError("cannot merge: point " + std::to_string(p) +
                                " is recorded by both '" + journal_paths[owner[p]] +
                                "' and '" + path + "' — overlapping shards");
      }
      owner[p] = j;
      if (!parse_point_record(*latest[p], total, seeds, record)) continue;
      grid.points[p].exec = record.exec;  // parser sets resumed = true
      if (j < origins.size()) grid.points[p].exec.origin = origins[j];
      if (record.exec.ok()) {
        // Seed-order fold of the journaled hexfloat samples — the same
        // fold a live run performs, so the aggregates are bit-identical
        // to a single-process campaign.
        for (const SeedSample& s : record.samples) {
          fold_sample(grid.points[p].result, s);
        }
        ++merged.points_ok;
      } else {
        ++merged.points_failed;
      }
    }
  }
  for (std::size_t p = 0; p < total; ++p) {
    if (owner[p] != kNoOwner) continue;
    PointExec& exec = grid.points[p].exec;
    exec.status = PointExec::Status::kFailed;
    exec.error = "no shard journal recorded this point";
    ++merged.points_missing;
  }
  if (stats != nullptr) *stats = merged;
  return std::move(grid.points);
}

JournalInspection inspect_sweep_journal(const std::string& path) {
  JournalInspection out;
  const JournalReadResult replay = read_journal(path);
  out.missing = replay.missing;
  out.io_error = replay.io_error;
  out.valid_bytes = replay.valid_bytes;
  out.dropped_bytes = replay.dropped_bytes;
  out.records = replay.records.size();
  if (replay.records.empty()) return out;

  // Campaign fingerprint header: tag line, then
  // "seeds=N seed_base=B points=P", then one "axis ..." line per axis.
  const std::vector<std::string> head = split_lines(replay.records.front());
  if (head.size() < 2 || head[0] != kJournalHeaderTag) return out;
  std::int64_t seeds = -1;
  std::int64_t grid_points = -1;
  std::uint64_t seed_base = 0;
  for (const std::string& field : split_fields(head[1])) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "seeds") {
      util::parse_value(value, seeds);
    } else if (key == "seed_base") {
      util::parse_value(value, seed_base);
    } else if (key == "points") {
      util::parse_value(value, grid_points);
    }
  }
  if (seeds < 0 || grid_points < 0) return out;
  out.campaign = true;
  out.seeds = static_cast<int>(seeds);
  out.seed_base = seed_base;
  out.grid_points = static_cast<std::size_t>(grid_points);
  for (std::size_t l = 2; l < head.size(); ++l) {
    if (head[l].rfind("axis ", 0) == 0) ++out.axes;
  }

  // Point census: latest record per index wins, like resume and merge.
  std::vector<char> status(out.grid_points, 0);  // 0 none, 1 ok, 2 failed
  ParsedPointRecord record;
  for (std::size_t r = 1; r < replay.records.size(); ++r) {
    if (parse_point_record(replay.records[r], out.grid_points, out.seeds, record)) {
      status[record.idx] = record.exec.ok() ? 1 : 2;
    } else {
      ++out.malformed_records;
    }
  }
  std::size_t min_idx = 0;
  bool have_min = false;
  std::size_t modulus = 0;  // gcd of (idx - min_idx) over recorded indices
  for (std::size_t p = 0; p < status.size(); ++p) {
    if (status[p] == 0) continue;
    ++out.points_recorded;
    if (status[p] == 1) {
      ++out.points_ok;
    } else {
      ++out.points_failed;
    }
    if (!have_min) {
      min_idx = p;
      have_min = true;
    } else {
      modulus = std::gcd(modulus, p - min_idx);
    }
  }
  // Shard coverage audit: the largest `index % N == i` selector every
  // recorded index satisfies. Needs >= 2 distinct indices — with fewer,
  // every selector fits and the inference says nothing (modulus 0).
  if (modulus > 0) {
    out.shard_modulus = modulus;
    out.shard_residue = min_idx % modulus;
  }
  return out;
}

std::vector<PointResult> run_sweep(const SweepOptions& options) {
  if (options.exec == SweepOptions::Exec::kLegacy) {
    std::vector<PointResult> results;
    std::vector<LegacyTask> tasks;
    for (const auto& protocol : options.protocols) {
      for (const int nodes : options.node_counts) {
        PointResult point;
        point.protocol = protocol;
        point.node_count = nodes;
        point.copies = options.base.protocol.copies;
        point.alpha = options.base.protocol.alpha;
        const std::size_t idx = results.size();
        results.push_back(std::move(point));
        for (int s = 0; s < options.seeds; ++s) {
          tasks.push_back(LegacyTask{idx, protocol, nodes,
                                     options.seed_base + static_cast<std::uint64_t>(s)});
        }
      }
    }
    run_sweep_legacy(options, tasks, results);
    return results;
  }

  // The protocol × node-count grid is just two declarative axes over the
  // bus spec; task order (point-major, seeds inner) matches the legacy
  // enumeration, so aggregates stay bit-identical.
  SpecSweepOptions spec_options;
  spec_options.base = to_spec(options.base);
  SweepAxis protocol_axis{"protocol.name", options.protocols};
  SweepAxis node_axis{"scenario.nodes", {}};
  node_axis.values.reserve(options.node_counts.size());
  for (const int n : options.node_counts) {
    node_axis.values.push_back(util::format_value(n));
  }
  spec_options.axes = {std::move(protocol_axis), std::move(node_axis)};
  spec_options.seeds = options.seeds;
  spec_options.seed_base = options.seed_base;
  spec_options.threads = options.threads;
  spec_options.progress = options.progress;

  std::vector<SpecPointResult> spec_results = run_spec_sweep(spec_options);
  std::vector<PointResult> results;
  results.reserve(spec_results.size());
  for (auto& r : spec_results) results.push_back(std::move(r.result));
  return results;
}

std::string metric_name(Metric metric) {
  switch (metric) {
    case Metric::kDeliveryRatio: return "delivery_ratio";
    case Metric::kLatency: return "latency_s";
    case Metric::kGoodput: return "goodput";
    case Metric::kControlMb: return "control_MB";
    case Metric::kRelayed: return "relayed";
  }
  return "?";
}

double metric_value(const PointResult& point, Metric metric) {
  switch (metric) {
    case Metric::kDeliveryRatio: return point.delivery_ratio.mean();
    case Metric::kLatency: return point.latency.mean();
    case Metric::kGoodput: return point.goodput.mean();
    case Metric::kControlMb: return point.control_mb.mean();
    case Metric::kRelayed: return point.relayed.mean();
  }
  return 0.0;
}

util::TablePrinter metric_table(const std::vector<PointResult>& results,
                                Metric metric, int precision) {
  // Column per protocol, row per node count, both in first-seen order. A
  // (protocol, nodes) -> result map built once replaces the former
  // O(results^2) linear re-scan per cell.
  std::vector<std::string> protocols;
  std::vector<int> node_counts;
  std::map<std::pair<std::string, int>, const PointResult*> by_key;
  for (const auto& p : results) {
    if (std::find(protocols.begin(), protocols.end(), p.protocol) == protocols.end()) {
      protocols.push_back(p.protocol);
    }
    if (std::find(node_counts.begin(), node_counts.end(), p.node_count) ==
        node_counts.end()) {
      node_counts.push_back(p.node_count);
    }
    by_key.emplace(std::make_pair(p.protocol, p.node_count), &p);  // keeps first
  }
  std::vector<std::string> headers{"nodes"};
  for (const auto& proto : protocols) headers.push_back(proto);
  util::TablePrinter table(std::move(headers));
  for (const int n : node_counts) {
    table.new_row().add_cell(static_cast<long long>(n));
    for (const auto& proto : protocols) {
      const auto it = by_key.find({proto, n});
      if (it == by_key.end()) {
        table.add_cell(std::string("-"));
      } else {
        table.add_cell(metric_value(*it->second, metric), precision);
      }
    }
  }
  return table;
}

namespace {

/// Minimal JSON string escaping for keys/values (quotes, backslashes,
/// control characters — the only things a spec key or value can smuggle in).
std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

/// Shortest-round-trip number, or null for non-finite values (JSON has no
/// NaN/inf literals).
std::string json_number(double v) {
  return std::isfinite(v) ? util::format_value(v) : std::string("null");
}

void append_stat(std::string& out, const char* name, const util::StatAccumulator& s) {
  out += json_string(name);
  out += ": {\"mean\": " + json_number(s.mean()) +
         ", \"stddev\": " + json_number(s.stddev()) +
         ", \"count\": " + std::to_string(s.count()) + "}";
}

}  // namespace

std::string sweep_results_json(const SpecSweepOptions& options,
                               const std::vector<SpecPointResult>& results) {
  std::string out = "{\n  \"schema\": \"dtnsim-sweep/1\",\n";
  out += "  \"scenario\": " + json_string(options.base.name) + ",\n";
  out += "  \"seeds\": " + std::to_string(options.seeds) + ",\n";
  out += "  \"seed_base\": " + util::format_value(options.seed_base) + ",\n";
  // Volatile execution metadata lives on lines containing `"exec` (this
  // one and each point's "exec" object) so campaign-equivalence tooling
  // can filter them before a bit-for-bit diff of the aggregates.
  std::size_t resumed_points = 0;
  std::size_t failed_points = 0;
  std::size_t skipped_points = 0;
  for (const auto& point : results) {
    if (point.exec.resumed) ++resumed_points;
    if (point.exec.failed()) ++failed_points;
    if (point.exec.skipped()) ++skipped_points;
  }
  out += "  \"execution\": {\"resumed_points\": " + std::to_string(resumed_points) +
         ", \"failed_points\": " + std::to_string(failed_points) +
         ", \"skipped_points\": " + std::to_string(skipped_points) + "},\n";
  out += "  \"axes\": [";
  for (std::size_t a = 0; a < options.axes.size(); ++a) {
    if (a != 0) out += ", ";
    out += "{\"key\": " + json_string(options.axes[a].key) + ", \"values\": [";
    for (std::size_t v = 0; v < options.axes[a].values.size(); ++v) {
      if (v != 0) out += ", ";
      out += json_string(options.axes[a].values[v]);
    }
    out += "]}";
  }
  out += "],\n  \"points\": [\n";
  for (std::size_t p = 0; p < results.size(); ++p) {
    const SpecPointResult& point = results[p];
    out += "    {\"overrides\": {";
    for (std::size_t o = 0; o < point.overrides.size(); ++o) {
      if (o != 0) out += ", ";
      out += json_string(point.overrides[o].first) + ": " +
             json_string(point.overrides[o].second);
    }
    out += "},\n     \"protocol\": " + json_string(point.result.protocol) +
           ", \"nodes\": " + std::to_string(point.result.node_count) + ",\n";
    out += "     \"exec\": {\"status\": " +
           json_string(point.exec.ok()        ? "ok"
                       : point.exec.skipped() ? "skipped"
                                              : "failed") +
           ", \"tries\": " + std::to_string(point.exec.tries) +
           ", \"wall_ms\": " + json_number(point.exec.wall_ms) +
           ", \"resumed\": " + (point.exec.resumed ? "true" : "false") +
           ", \"origin\": " +
           json_string(point.exec.origin.empty() ? "local" : point.exec.origin);
    if (point.exec.failed()) out += ", \"error\": " + json_string(point.exec.error);
    out += "},\n     \"metrics\": {";
    append_stat(out, "delivery_ratio", point.result.delivery_ratio);
    out += ", ";
    append_stat(out, "latency_s", point.result.latency);
    out += ", ";
    append_stat(out, "goodput", point.result.goodput);
    out += ", ";
    append_stat(out, "control_MB", point.result.control_mb);
    out += ", ";
    append_stat(out, "relayed", point.result.relayed);
    out += ", ";
    append_stat(out, "contacts", point.result.contacts);
    out += "}}";
    out += p + 1 < results.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

util::TablePrinter sweep_table(const std::vector<SpecPointResult>& results,
                               int precision) {
  std::vector<std::string> headers;
  if (!results.empty()) {
    for (const auto& [key, value] : results.front().overrides) headers.push_back(key);
  }
  for (const auto metric : {Metric::kDeliveryRatio, Metric::kLatency, Metric::kGoodput,
                            Metric::kControlMb, Metric::kRelayed}) {
    headers.push_back(metric_name(metric));
  }
  util::TablePrinter table(std::move(headers));
  for (const auto& point : results) {
    table.new_row();
    for (const auto& [key, value] : point.overrides) table.add_cell(value);
    for (const auto metric : {Metric::kDeliveryRatio, Metric::kLatency, Metric::kGoodput,
                              Metric::kControlMb, Metric::kRelayed}) {
      table.add_cell(metric_value(point.result, metric),
                     metric == Metric::kLatency ? 1 : precision);
    }
  }
  return table;
}

}  // namespace dtn::harness
