#include "harness/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "harness/spec_io.hpp"
#include "util/thread_pool.hpp"
#include "util/value_parse.hpp"

namespace dtn::harness {

namespace {

/// One run's scalar metric sample; folded into the PointResult
/// accumulators in task order after the whole grid executed.
struct SeedSample {
  double delivery_ratio = 0.0;
  double latency = 0.0;
  double goodput = 0.0;
  double control_mb = 0.0;
  double relayed = 0.0;
  double contacts = 0.0;
};

SeedSample sample_of(const ScenarioResult& run) {
  SeedSample s;
  s.delivery_ratio = run.metrics.delivery_ratio();
  s.latency = run.metrics.latency_mean();
  s.goodput = run.metrics.goodput();
  s.control_mb = static_cast<double>(run.metrics.control_bytes()) / 1e6;
  s.relayed = static_cast<double>(run.metrics.relayed());
  s.contacts = static_cast<double>(run.contact_events);
  return s;
}

void fold_sample(PointResult& point, const SeedSample& s) {
  point.delivery_ratio.add(s.delivery_ratio);
  point.latency.add(s.latency);
  point.goodput.add(s.goodput);
  point.control_mb.add(s.control_mb);
  point.relayed.add(s.relayed);
  point.contacts.add(s.contacts);
}

// ---- legacy engine ----------------------------------------------------------

struct LegacyTask {
  std::size_t point;
  std::string protocol;
  int nodes;
  std::uint64_t seed;
};

BusScenarioParams legacy_task_params(const SweepOptions& options, const LegacyTask& task) {
  BusScenarioParams params = options.base;
  params.protocol.name = task.protocol;
  params.node_count = task.nodes;
  params.seed = task.seed;
  return params;
}

std::string legacy_task_label(const LegacyTask& task) {
  return task.protocol + "/n=" + std::to_string(task.nodes) +
         "/seed=" + std::to_string(task.seed);
}

/// The pre-PR3 engine, kept verbatim as the bench_sweep baseline: a
/// throwaway pool per call, one heap task + future per run, a fresh World
/// per run, and a single merge mutex that also serializes the progress
/// callback (the contention bug fixed in the reused engine).
void run_sweep_legacy(const SweepOptions& options, const std::vector<LegacyTask>& tasks,
                      std::vector<PointResult>& results) {
  std::mutex merge_mutex;
  util::ThreadPool pool(options.threads);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    futures.push_back(pool.submit([&options, &tasks, &results, &merge_mutex, i] {
      const LegacyTask& task = tasks[i];
      const ScenarioResult run = run_bus_scenario(legacy_task_params(options, task));

      const std::lock_guard<std::mutex> lock(merge_mutex);
      PointResult& point = results[task.point];
      fold_sample(point, sample_of(run));
      if (options.progress) options.progress(legacy_task_label(task));
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace

std::string SpecPointResult::label() const {
  std::string out;
  for (const auto& [key, value] : overrides) {
    if (!out.empty()) out += " ";
    out += key + "=" + value;
  }
  return out;
}

std::vector<SpecPointResult> run_spec_sweep(const SpecSweepOptions& options) {
  // Expand the axis cross product into resolved per-point specs (first
  // axis outermost). An axis with no values yields an empty grid, matching
  // the pre-spec engine's behavior for empty protocol lists.
  std::size_t total = 1;
  for (const auto& axis : options.axes) total *= axis.values.size();

  // The per-task seed overwrites spec.seed below, so a scenario.seed axis
  // would be silently ignored — reject it instead of lying. Ditto
  // duplicate axis keys: the later override wins per point, so the grid
  // would run identical specs under different labels.
  for (std::size_t i = 0; i < options.axes.size(); ++i) {
    const std::string& key = options.axes[i].key;
    if (key == "scenario.seed") {
      throw SpecError({{0, "scenario.seed cannot be a sweep axis; seeds are the "
                           "per-point repetition (seeds / seed_base)"}},
                      "sweep");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (options.axes[j].key == key) {
        throw SpecError({{0, "duplicate sweep axis '" + key +
                             "' — the later values would overwrite the earlier "
                             "ones under the earlier labels"}},
                        "sweep");
      }
    }
  }

  std::vector<SpecPointResult> points;
  std::vector<ScenarioSpec> specs;
  points.reserve(total);
  specs.reserve(total);
  for (std::size_t p = 0; p < total; ++p) {
    ScenarioSpec spec = options.base;
    SpecPointResult point;
    std::size_t stride = total;
    for (const auto& axis : options.axes) {
      stride /= axis.values.size();
      const std::string& value = axis.values[(p / stride) % axis.values.size()];
      apply_override(spec, axis.key, value);  // throws SpecError on bad key
      point.overrides.emplace_back(axis.key, value);
    }
    // Fail fast at expansion: one structurally invalid grid point must not
    // abort a campaign mid-flight after hours of finished runs.
    validate_spec(spec);
    point.result.protocol = spec.protocol.name;
    point.result.node_count = spec.node_count();
    point.result.copies = spec.protocol.copies;
    point.result.alpha = spec.protocol.alpha;
    points.push_back(std::move(point));
    specs.push_back(std::move(spec));
  }

  struct Task {
    std::size_t point;
    std::uint64_t seed;
  };
  std::vector<Task> tasks;
  tasks.reserve(points.size() * static_cast<std::size_t>(std::max(options.seeds, 0)));
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (int s = 0; s < options.seeds; ++s) {
      tasks.push_back(Task{p, options.seed_base + static_cast<std::uint64_t>(s)});
    }
  }

  std::size_t workers = options.threads != 0
                            ? options.threads
                            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, tasks.size());

  // Per-task sample slots: runs write their own slot with no lock; the
  // fold below is serial and in task order, so the aggregates cannot
  // depend on thread count or completion order.
  std::vector<SeedSample> samples(tasks.size());
  std::mutex progress_mutex;
  const auto run_task = [&](ScenarioRunner& runner, std::size_t i) {
    ScenarioSpec spec = specs[tasks[i].point];
    spec.seed = tasks[i].seed;
    samples[i] = sample_of(runner.run(spec));
    if (options.progress) {
      // Outside every merge path; serialized only against itself.
      std::string label = points[tasks[i].point].label();
      if (!label.empty()) label += "/";
      label += "seed=" + std::to_string(tasks[i].seed);
      const std::lock_guard<std::mutex> lock(progress_mutex);
      options.progress(label);
    }
  };

  if (workers <= 1) {
    ScenarioRunner runner;  // one warm World for the entire grid
    for (std::size_t i = 0; i < tasks.size(); ++i) run_task(runner, i);
  } else {
    std::vector<ScenarioRunner> runners(workers);  // one warm World per worker
    util::ThreadPool::shared().parallel_for(
        tasks.size(), workers,
        [&](std::size_t worker, std::size_t i) { run_task(runners[worker], i); });
  }

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    fold_sample(points[tasks[i].point].result, samples[i]);
  }
  return points;
}

std::vector<PointResult> run_sweep(const SweepOptions& options) {
  if (options.exec == SweepOptions::Exec::kLegacy) {
    std::vector<PointResult> results;
    std::vector<LegacyTask> tasks;
    for (const auto& protocol : options.protocols) {
      for (const int nodes : options.node_counts) {
        PointResult point;
        point.protocol = protocol;
        point.node_count = nodes;
        point.copies = options.base.protocol.copies;
        point.alpha = options.base.protocol.alpha;
        const std::size_t idx = results.size();
        results.push_back(std::move(point));
        for (int s = 0; s < options.seeds; ++s) {
          tasks.push_back(LegacyTask{idx, protocol, nodes,
                                     options.seed_base + static_cast<std::uint64_t>(s)});
        }
      }
    }
    run_sweep_legacy(options, tasks, results);
    return results;
  }

  // The protocol × node-count grid is just two declarative axes over the
  // bus spec; task order (point-major, seeds inner) matches the legacy
  // enumeration, so aggregates stay bit-identical.
  SpecSweepOptions spec_options;
  spec_options.base = to_spec(options.base);
  SweepAxis protocol_axis{"protocol.name", options.protocols};
  SweepAxis node_axis{"scenario.nodes", {}};
  node_axis.values.reserve(options.node_counts.size());
  for (const int n : options.node_counts) {
    node_axis.values.push_back(util::format_value(n));
  }
  spec_options.axes = {std::move(protocol_axis), std::move(node_axis)};
  spec_options.seeds = options.seeds;
  spec_options.seed_base = options.seed_base;
  spec_options.threads = options.threads;
  spec_options.progress = options.progress;

  std::vector<SpecPointResult> spec_results = run_spec_sweep(spec_options);
  std::vector<PointResult> results;
  results.reserve(spec_results.size());
  for (auto& r : spec_results) results.push_back(std::move(r.result));
  return results;
}

std::string metric_name(Metric metric) {
  switch (metric) {
    case Metric::kDeliveryRatio: return "delivery_ratio";
    case Metric::kLatency: return "latency_s";
    case Metric::kGoodput: return "goodput";
    case Metric::kControlMb: return "control_MB";
    case Metric::kRelayed: return "relayed";
  }
  return "?";
}

double metric_value(const PointResult& point, Metric metric) {
  switch (metric) {
    case Metric::kDeliveryRatio: return point.delivery_ratio.mean();
    case Metric::kLatency: return point.latency.mean();
    case Metric::kGoodput: return point.goodput.mean();
    case Metric::kControlMb: return point.control_mb.mean();
    case Metric::kRelayed: return point.relayed.mean();
  }
  return 0.0;
}

util::TablePrinter metric_table(const std::vector<PointResult>& results,
                                Metric metric, int precision) {
  // Column per protocol, row per node count, both in first-seen order. A
  // (protocol, nodes) -> result map built once replaces the former
  // O(results^2) linear re-scan per cell.
  std::vector<std::string> protocols;
  std::vector<int> node_counts;
  std::map<std::pair<std::string, int>, const PointResult*> by_key;
  for (const auto& p : results) {
    if (std::find(protocols.begin(), protocols.end(), p.protocol) == protocols.end()) {
      protocols.push_back(p.protocol);
    }
    if (std::find(node_counts.begin(), node_counts.end(), p.node_count) ==
        node_counts.end()) {
      node_counts.push_back(p.node_count);
    }
    by_key.emplace(std::make_pair(p.protocol, p.node_count), &p);  // keeps first
  }
  std::vector<std::string> headers{"nodes"};
  for (const auto& proto : protocols) headers.push_back(proto);
  util::TablePrinter table(std::move(headers));
  for (const int n : node_counts) {
    table.new_row().add_cell(static_cast<long long>(n));
    for (const auto& proto : protocols) {
      const auto it = by_key.find({proto, n});
      if (it == by_key.end()) {
        table.add_cell(std::string("-"));
      } else {
        table.add_cell(metric_value(*it->second, metric), precision);
      }
    }
  }
  return table;
}

namespace {

/// Minimal JSON string escaping for keys/values (quotes, backslashes,
/// control characters — the only things a spec key or value can smuggle in).
std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

/// Shortest-round-trip number, or null for non-finite values (JSON has no
/// NaN/inf literals).
std::string json_number(double v) {
  return std::isfinite(v) ? util::format_value(v) : std::string("null");
}

void append_stat(std::string& out, const char* name, const util::StatAccumulator& s) {
  out += json_string(name);
  out += ": {\"mean\": " + json_number(s.mean()) +
         ", \"stddev\": " + json_number(s.stddev()) +
         ", \"count\": " + std::to_string(s.count()) + "}";
}

}  // namespace

std::string sweep_results_json(const SpecSweepOptions& options,
                               const std::vector<SpecPointResult>& results) {
  std::string out = "{\n  \"schema\": \"dtnsim-sweep/1\",\n";
  out += "  \"scenario\": " + json_string(options.base.name) + ",\n";
  out += "  \"seeds\": " + std::to_string(options.seeds) + ",\n";
  out += "  \"seed_base\": " + util::format_value(options.seed_base) + ",\n";
  out += "  \"axes\": [";
  for (std::size_t a = 0; a < options.axes.size(); ++a) {
    if (a != 0) out += ", ";
    out += "{\"key\": " + json_string(options.axes[a].key) + ", \"values\": [";
    for (std::size_t v = 0; v < options.axes[a].values.size(); ++v) {
      if (v != 0) out += ", ";
      out += json_string(options.axes[a].values[v]);
    }
    out += "]}";
  }
  out += "],\n  \"points\": [\n";
  for (std::size_t p = 0; p < results.size(); ++p) {
    const SpecPointResult& point = results[p];
    out += "    {\"overrides\": {";
    for (std::size_t o = 0; o < point.overrides.size(); ++o) {
      if (o != 0) out += ", ";
      out += json_string(point.overrides[o].first) + ": " +
             json_string(point.overrides[o].second);
    }
    out += "},\n     \"protocol\": " + json_string(point.result.protocol) +
           ", \"nodes\": " + std::to_string(point.result.node_count) +
           ",\n     \"metrics\": {";
    append_stat(out, "delivery_ratio", point.result.delivery_ratio);
    out += ", ";
    append_stat(out, "latency_s", point.result.latency);
    out += ", ";
    append_stat(out, "goodput", point.result.goodput);
    out += ", ";
    append_stat(out, "control_MB", point.result.control_mb);
    out += ", ";
    append_stat(out, "relayed", point.result.relayed);
    out += ", ";
    append_stat(out, "contacts", point.result.contacts);
    out += "}}";
    out += p + 1 < results.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

util::TablePrinter sweep_table(const std::vector<SpecPointResult>& results,
                               int precision) {
  std::vector<std::string> headers;
  if (!results.empty()) {
    for (const auto& [key, value] : results.front().overrides) headers.push_back(key);
  }
  for (const auto metric : {Metric::kDeliveryRatio, Metric::kLatency, Metric::kGoodput,
                            Metric::kControlMb, Metric::kRelayed}) {
    headers.push_back(metric_name(metric));
  }
  util::TablePrinter table(std::move(headers));
  for (const auto& point : results) {
    table.new_row();
    for (const auto& [key, value] : point.overrides) table.add_cell(value);
    for (const auto metric : {Metric::kDeliveryRatio, Metric::kLatency, Metric::kGoodput,
                              Metric::kControlMb, Metric::kRelayed}) {
      table.add_cell(metric_value(point.result, metric),
                     metric == Metric::kLatency ? 1 : precision);
    }
  }
  return table;
}

}  // namespace dtn::harness
