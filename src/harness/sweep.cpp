#include "harness/sweep.hpp"

#include <algorithm>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "util/thread_pool.hpp"

namespace dtn::harness {

namespace {

struct Task {
  std::size_t point;
  std::string protocol;
  int nodes;
  std::uint64_t seed;
};

/// One run's scalar metric sample; folded into the PointResult
/// accumulators in task order after the whole grid executed.
struct SeedSample {
  double delivery_ratio = 0.0;
  double latency = 0.0;
  double goodput = 0.0;
  double control_mb = 0.0;
  double relayed = 0.0;
  double contacts = 0.0;
};

BusScenarioParams task_params(const SweepOptions& options, const Task& task) {
  BusScenarioParams params = options.base;
  params.protocol.name = task.protocol;
  params.node_count = task.nodes;
  params.seed = task.seed;
  return params;
}

SeedSample sample_of(const ScenarioResult& run) {
  SeedSample s;
  s.delivery_ratio = run.metrics.delivery_ratio();
  s.latency = run.metrics.latency_mean();
  s.goodput = run.metrics.goodput();
  s.control_mb = static_cast<double>(run.metrics.control_bytes()) / 1e6;
  s.relayed = static_cast<double>(run.metrics.relayed());
  s.contacts = static_cast<double>(run.contact_events);
  return s;
}

std::string task_label(const Task& task) {
  return task.protocol + "/n=" + std::to_string(task.nodes) +
         "/seed=" + std::to_string(task.seed);
}

/// The pre-PR3 engine, kept verbatim as the bench_sweep baseline: a
/// throwaway pool per call, one heap task + future per run, a fresh World
/// per run, and a single merge mutex that also serializes the progress
/// callback (the contention bug fixed in the reused engine).
void run_sweep_legacy(const SweepOptions& options, const std::vector<Task>& tasks,
                      std::vector<PointResult>& results) {
  std::mutex merge_mutex;
  util::ThreadPool pool(options.threads);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    futures.push_back(pool.submit([&options, &tasks, &results, &merge_mutex, i] {
      const Task& task = tasks[i];
      const ScenarioResult run = run_bus_scenario(task_params(options, task));

      const std::lock_guard<std::mutex> lock(merge_mutex);
      PointResult& point = results[task.point];
      point.delivery_ratio.add(run.metrics.delivery_ratio());
      point.latency.add(run.metrics.latency_mean());
      point.goodput.add(run.metrics.goodput());
      point.control_mb.add(static_cast<double>(run.metrics.control_bytes()) / 1e6);
      point.relayed.add(static_cast<double>(run.metrics.relayed()));
      point.contacts.add(static_cast<double>(run.contact_events));
      if (options.progress) options.progress(task_label(task));
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace

std::vector<PointResult> run_sweep(const SweepOptions& options) {
  std::vector<PointResult> results;
  std::vector<Task> tasks;
  for (const auto& protocol : options.protocols) {
    for (const int nodes : options.node_counts) {
      PointResult point;
      point.protocol = protocol;
      point.node_count = nodes;
      point.copies = options.base.protocol.copies;
      point.alpha = options.base.protocol.alpha;
      const std::size_t idx = results.size();
      results.push_back(std::move(point));
      for (int s = 0; s < options.seeds; ++s) {
        tasks.push_back(Task{idx, protocol, nodes,
                             options.seed_base + static_cast<std::uint64_t>(s)});
      }
    }
  }

  if (options.exec == SweepOptions::Exec::kLegacy) {
    run_sweep_legacy(options, tasks, results);
    return results;
  }

  std::size_t workers = options.threads != 0
                            ? options.threads
                            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, tasks.size());

  // Per-task sample slots: runs write their own slot with no lock; the
  // fold below is serial and in task order, so the aggregates cannot
  // depend on thread count or completion order.
  std::vector<SeedSample> samples(tasks.size());
  std::mutex progress_mutex;
  const auto run_task = [&](ScenarioRunner& runner, std::size_t i) {
    samples[i] = sample_of(runner.run(task_params(options, tasks[i])));
    if (options.progress) {
      // Outside every merge path; serialized only against itself.
      const std::lock_guard<std::mutex> lock(progress_mutex);
      options.progress(task_label(tasks[i]));
    }
  };

  if (workers <= 1) {
    ScenarioRunner runner;  // one warm World for the entire grid
    for (std::size_t i = 0; i < tasks.size(); ++i) run_task(runner, i);
  } else {
    std::vector<ScenarioRunner> runners(workers);  // one warm World per worker
    util::ThreadPool::shared().parallel_for(
        tasks.size(), workers,
        [&](std::size_t worker, std::size_t i) { run_task(runners[worker], i); });
  }

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    PointResult& point = results[tasks[i].point];
    const SeedSample& s = samples[i];
    point.delivery_ratio.add(s.delivery_ratio);
    point.latency.add(s.latency);
    point.goodput.add(s.goodput);
    point.control_mb.add(s.control_mb);
    point.relayed.add(s.relayed);
    point.contacts.add(s.contacts);
  }
  return results;
}

std::string metric_name(Metric metric) {
  switch (metric) {
    case Metric::kDeliveryRatio: return "delivery_ratio";
    case Metric::kLatency: return "latency_s";
    case Metric::kGoodput: return "goodput";
    case Metric::kControlMb: return "control_MB";
    case Metric::kRelayed: return "relayed";
  }
  return "?";
}

double metric_value(const PointResult& point, Metric metric) {
  switch (metric) {
    case Metric::kDeliveryRatio: return point.delivery_ratio.mean();
    case Metric::kLatency: return point.latency.mean();
    case Metric::kGoodput: return point.goodput.mean();
    case Metric::kControlMb: return point.control_mb.mean();
    case Metric::kRelayed: return point.relayed.mean();
  }
  return 0.0;
}

util::TablePrinter metric_table(const std::vector<PointResult>& results,
                                Metric metric, int precision) {
  // Column per protocol, row per node count, both in first-seen order. A
  // (protocol, nodes) -> result map built once replaces the former
  // O(results^2) linear re-scan per cell.
  std::vector<std::string> protocols;
  std::vector<int> node_counts;
  std::map<std::pair<std::string, int>, const PointResult*> by_key;
  for (const auto& p : results) {
    if (std::find(protocols.begin(), protocols.end(), p.protocol) == protocols.end()) {
      protocols.push_back(p.protocol);
    }
    if (std::find(node_counts.begin(), node_counts.end(), p.node_count) ==
        node_counts.end()) {
      node_counts.push_back(p.node_count);
    }
    by_key.emplace(std::make_pair(p.protocol, p.node_count), &p);  // keeps first
  }
  std::vector<std::string> headers{"nodes"};
  for (const auto& proto : protocols) headers.push_back(proto);
  util::TablePrinter table(std::move(headers));
  for (const int n : node_counts) {
    table.new_row().add_cell(static_cast<long long>(n));
    for (const auto& proto : protocols) {
      const auto it = by_key.find({proto, n});
      if (it == by_key.end()) {
        table.add_cell(std::string("-"));
      } else {
        table.add_cell(metric_value(*it->second, metric), precision);
      }
    }
  }
  return table;
}

}  // namespace dtn::harness
