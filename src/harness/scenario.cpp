#include "harness/scenario.hpp"

#include <chrono>
#include <memory>
#include <vector>

namespace dtn::harness {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Routing-free router that only feeds the shared contact-count graph —
/// used by the community-detection warm-up pass.
class ContactLoggerRouter final : public sim::Router {
 public:
  explicit ContactLoggerRouter(core::ContactCountGraph* graph) : graph_(graph) {}
  [[nodiscard]] std::string name() const override { return "ContactLogger"; }
  void on_contact_up(sim::NodeIdx peer) override {
    if (self() < peer) graph_->record(self(), peer);
  }

 private:
  core::ContactCountGraph* graph_;
};

}  // namespace

core::CommunityTable bus_scenario_communities(const geo::BusNetwork& net,
                                              int node_count) {
  std::vector<int> cid(static_cast<std::size_t>(node_count), 0);
  for (int v = 0; v < node_count; ++v) {
    const auto& route = net.routes[static_cast<std::size_t>(v) % net.routes.size()];
    cid[static_cast<std::size_t>(v)] = route.district;
  }
  return core::CommunityTable(std::move(cid));
}

ScenarioRunner::ScenarioRunner() = default;
ScenarioRunner::~ScenarioRunner() = default;
ScenarioRunner::ScenarioRunner(ScenarioRunner&&) noexcept = default;
ScenarioRunner& ScenarioRunner::operator=(ScenarioRunner&&) noexcept = default;

sim::World& ScenarioRunner::prepare(const sim::WorldConfig& config) {
  if (!world_) {
    world_ = std::make_unique<sim::World>(config);
  } else {
    world_->reset(config);  // retains slabs, pools, grid cells, lanes
  }
  return *world_;
}

ScenarioResult ScenarioRunner::run(const BusScenarioParams& params) {
  const auto start = Clock::now();

  geo::DowntownParams map_params = params.map;
  map_params.seed = params.seed;  // map varies with the scenario seed
  const geo::BusNetwork net = geo::generate_downtown(map_params);

  // Routes as shared polylines (seed-dependent, so rebuilt per run).
  std::vector<std::shared_ptr<const geo::Polyline>> routes;
  routes.reserve(net.routes.size());
  for (const auto& r : net.routes) {
    routes.push_back(std::make_shared<const geo::Polyline>(r.line));
  }

  std::shared_ptr<const core::CommunityTable> communities =
      params.communities_override;
  if (!communities) {
    communities = std::make_shared<const core::CommunityTable>(
        bus_scenario_communities(net, params.node_count));
  }

  sim::WorldConfig world_config = params.world;
  world_config.seed = params.seed;
  sim::World& world = prepare(world_config);

  routing::ProtocolConfig protocol = params.protocol;
  protocol.communities = communities;

  for (int v = 0; v < params.node_count; ++v) {
    const std::size_t route_idx = static_cast<std::size_t>(v) % routes.size();
    // Spec-form add_node: the bus lane takes the route + params directly,
    // no per-node heap movement object.
    world.add_node(routes[route_idx], params.bus, routing::create_router(protocol));
  }

  sim::TrafficParams traffic = params.traffic;
  if (params.full_ttl_window) {
    traffic.stop = params.duration_s - traffic.ttl;
  }
  world.set_traffic(traffic);
  world.run(params.duration_s);

  ScenarioResult result;
  result.metrics = world.metrics();
  result.contact_events = world.contact_events();
  result.wall_seconds = elapsed_seconds(start);
  result.protocol = params.protocol.name;
  result.node_count = params.node_count;
  result.seed = params.seed;
  return result;
}

ScenarioResult run_bus_scenario(const BusScenarioParams& params) {
  ScenarioRunner runner;
  return runner.run(params);
}

core::CommunityTable detect_bus_communities(const BusScenarioParams& params,
                                            const core::DetectionParams& detection,
                                            double warmup_s) {
  geo::DowntownParams map_params = params.map;
  map_params.seed = params.seed;
  const geo::BusNetwork net = geo::generate_downtown(map_params);
  std::vector<std::shared_ptr<const geo::Polyline>> routes;
  routes.reserve(net.routes.size());
  for (const auto& r : net.routes) {
    routes.push_back(std::make_shared<const geo::Polyline>(r.line));
  }
  core::ContactCountGraph graph(static_cast<core::NodeIdx>(params.node_count));
  sim::WorldConfig world_config = params.world;
  world_config.seed = params.seed;
  sim::World world(world_config);
  for (int v = 0; v < params.node_count; ++v) {
    const std::size_t route_idx = static_cast<std::size_t>(v) % routes.size();
    world.add_node(std::make_unique<mobility::BusMovement>(routes[route_idx], params.bus),
                   std::make_unique<ContactLoggerRouter>(&graph));
  }
  world.run(warmup_s);
  return core::detect_communities(graph, detection);
}

ScenarioResult ScenarioRunner::run(const CommunityScenarioParams& params) {
  const auto start = Clock::now();

  // Districts tiled left-to-right; community c owns one vertical band.
  const int l = params.communities > 0 ? params.communities : 1;
  const double band = params.world_size_m / static_cast<double>(l);

  std::vector<int> cid(static_cast<std::size_t>(params.node_count));
  for (int v = 0; v < params.node_count; ++v) {
    cid[static_cast<std::size_t>(v)] = v % l;
  }
  auto communities = std::make_shared<const core::CommunityTable>(cid);

  sim::WorldConfig world_config = params.world;
  world_config.seed = params.seed;
  sim::World& world = prepare(world_config);

  routing::ProtocolConfig protocol = params.protocol;
  protocol.communities = communities;

  for (int v = 0; v < params.node_count; ++v) {
    const int c = cid[static_cast<std::size_t>(v)];
    mobility::CommunityMovementParams mp;
    mp.world_min = {0.0, 0.0};
    mp.world_max = {params.world_size_m, params.world_size_m};
    mp.home_min = {band * c, 0.0};
    mp.home_max = {band * (c + 1), params.world_size_m};
    mp.home_prob = params.home_prob;
    world.add_node(mp, routing::create_router(protocol));
  }

  sim::TrafficParams traffic = params.traffic;
  if (params.full_ttl_window) {
    traffic.stop = params.duration_s - traffic.ttl;
  }
  world.set_traffic(traffic);
  world.run(params.duration_s);

  ScenarioResult result;
  result.metrics = world.metrics();
  result.contact_events = world.contact_events();
  result.wall_seconds = elapsed_seconds(start);
  result.protocol = params.protocol.name;
  result.node_count = params.node_count;
  result.seed = params.seed;
  return result;
}

ScenarioResult run_community_scenario(const CommunityScenarioParams& params) {
  ScenarioRunner runner;
  return runner.run(params);
}

}  // namespace dtn::harness
