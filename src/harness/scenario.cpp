#include "harness/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/spec_io.hpp"

namespace dtn::harness {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Routing-free router that only feeds the shared contact-count graph —
/// used by the community-detection warm-up pass.
class ContactLoggerRouter final : public sim::Router {
 public:
  explicit ContactLoggerRouter(core::ContactCountGraph* graph) : graph_(graph) {}
  [[nodiscard]] std::string name() const override { return "ContactLogger"; }
  void on_contact_up(sim::NodeIdx peer) override {
    if (self() < peer) graph_->record(self(), peer);
  }

 private:
  core::ContactCountGraph* graph_;
};

/// Memo key for the detected-communities warm-up: the canonical config of
/// the spec with every field the routing-free warm-up cannot observe
/// normalized away (contact loggers replace all routers, and the warm-up
/// world generates no traffic). Anything left in the key can only cause a
/// spurious miss — a recompute — never a wrong hit.
std::string detection_cache_key(const ScenarioSpec& spec) {
  ScenarioSpec key = spec;
  key.name.clear();
  key.duration_s = 0.0;  // warm-up length is communities.warmup, kept below
  key.full_ttl_window = false;
  key.protocol = routing::ProtocolConfig{};
  key.traffic = sim::TrafficParams{};
  key.traffic_matrix.clear();
  key.traffic_file.clear();
  for (auto& group : key.groups) group.protocol.clear();
  return to_config(key);
}

/// Loads a trace-driven workload (`traffic.profile = trace`). Line format:
///   time src dst [size_bytes [ttl]]
/// with `#` comments; times must be non-decreasing and node ids must fit
/// the spec's node count. Throws std::invalid_argument with path:line
/// context — check-style loudness, never a silent empty workload.
std::shared_ptr<const std::vector<sim::TraceMessage>> load_traffic_trace(
    const std::string& path, int node_count) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot read traffic.file '" + path + "'");
  }
  auto fail = [&path](int line, const std::string& what) -> void {
    throw std::invalid_argument("traffic.file " + path + ":" +
                                std::to_string(line) + ": " + what);
  };
  auto trace = std::make_shared<std::vector<sim::TraceMessage>>();
  std::string raw;
  int line_no = 0;
  double prev_time = 0.0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream fields(raw);
    sim::TraceMessage tm;
    if (!(fields >> tm.time)) continue;  // blank/comment-only line
    std::int64_t src = 0;
    std::int64_t dst = 0;
    if (!(fields >> src >> dst)) fail(line_no, "expected 'time src dst'");
    fields >> tm.size_bytes >> tm.ttl;  // optional; 0 = TrafficParams default
    if (!(tm.time >= 0.0)) fail(line_no, "time must be >= 0");
    if (tm.time < prev_time) fail(line_no, "times must be non-decreasing");
    prev_time = tm.time;
    if (src < 0 || src >= node_count || dst < 0 || dst >= node_count) {
      fail(line_no, "node ids must be in [0, " + std::to_string(node_count) + ")");
    }
    if (src == dst) fail(line_no, "src and dst must differ");
    if (tm.size_bytes < 0) fail(line_no, "size_bytes must be > 0");
    if (tm.ttl < 0.0) fail(line_no, "ttl must be > 0");
    tm.src = static_cast<sim::NodeIdx>(src);
    tm.dst = static_cast<sim::NodeIdx>(dst);
    trace->push_back(tm);
  }
  if (trace->empty()) {
    throw std::invalid_argument("traffic.file '" + path + "' has no messages");
  }
  return trace;
}

/// Resolves the spec-level traffic section (group-name matrix entries,
/// trace file, full-TTL window) into the sim-level TrafficParams the
/// World consumes. Group node ranges follow declaration order, exactly
/// like add_nodes does.
sim::TrafficParams resolve_traffic(const ScenarioSpec& spec) {
  sim::TrafficParams traffic = spec.traffic;
  if (spec.full_ttl_window) {
    // min(), not overwrite: a user-set traffic.stop tighter than
    // duration - TTL must survive (the pre-fix code clobbered it).
    traffic.stop = std::min(traffic.stop, spec.duration_s - traffic.ttl);
  }
  traffic.matrix.clear();
  traffic.matrix.reserve(spec.traffic_matrix.size());
  for (const auto& e : spec.traffic_matrix) {
    sim::TrafficMatrixEntry m;
    int first = 0;
    for (const auto& g : spec.groups) {
      if (g.name == e.src) {
        m.src_first = static_cast<sim::NodeIdx>(first);
        m.src_count = static_cast<sim::NodeIdx>(g.count);
      }
      if (g.name == e.dst) {
        m.dst_first = static_cast<sim::NodeIdx>(first);
        m.dst_count = static_cast<sim::NodeIdx>(g.count);
      }
      first += g.count;
    }
    m.interval_min = e.interval_min;
    m.interval_max = e.interval_max;
    m.size_bytes = e.size_bytes;
    m.weight = e.weight;
    traffic.matrix.push_back(m);
  }
  if (traffic.profile == sim::TrafficProfile::kTrace) {
    traffic.trace = load_traffic_trace(spec.traffic_file, spec.node_count());
  }
  return traffic;
}

}  // namespace

core::CommunityTable bus_scenario_communities(const geo::BusNetwork& net,
                                              int node_count) {
  std::vector<int> cid(static_cast<std::size_t>(node_count), 0);
  for (int v = 0; v < node_count; ++v) {
    const auto& route = net.routes[static_cast<std::size_t>(v) % net.routes.size()];
    cid[static_cast<std::size_t>(v)] = route.district;
  }
  return core::CommunityTable(std::move(cid));
}

ScenarioRunner::ScenarioRunner() = default;
ScenarioRunner::~ScenarioRunner() = default;
ScenarioRunner::ScenarioRunner(ScenarioRunner&&) noexcept = default;
ScenarioRunner& ScenarioRunner::operator=(ScenarioRunner&&) noexcept = default;

sim::World& ScenarioRunner::prepare(const sim::WorldConfig& config) {
  if (!world_) {
    world_ = std::make_unique<sim::World>(config);
  } else {
    world_->reset(config);  // retains slabs, pools, grid cells, lanes
  }
  return *world_;
}

ScenarioResult ScenarioRunner::run(const ScenarioSpec& spec) {
  const auto start = Clock::now();
  validate_spec(spec);

  // Map source (seed-dependent for generated maps, so rebuilt per run).
  const geo::MapKindInfo* kind = geo::find_map_kind(spec.map.kind);
  const geo::BuiltMap map = kind->build(spec.map.params, spec.seed);

  // Community table: override > spec-driven warm-up detection > per-group
  // model assignment ("auto") or uniform round-robin.
  std::shared_ptr<const core::CommunityTable> communities = spec.communities_override;
  if (!communities && spec.communities.source == "detected") {
    // The warm-up pass builds its own throwaway World (it must not disturb
    // this runner's reusable one), so detection depends only on
    // (spec, seed) — reused runners and any thread count see the same
    // table, which is also what makes the per-runner memo below safe.
    auto& cached = detected_cache_[detection_cache_key(spec)];
    if (!cached) {
      cached = std::make_shared<const core::CommunityTable>(detect_spec_communities(
          spec, core::DetectionParams{}, spec.communities.warmup_s));
    }
    communities = cached;
  }
  if (!communities) {
    std::vector<int> cid;
    cid.reserve(static_cast<std::size_t>(spec.node_count()));
    int first_node = 0;
    for (const auto& group : spec.groups) {
      const GroupBuildContext ctx{spec, map, first_node, {}};
      if (spec.communities.source == "round_robin") {
        round_robin_communities(ctx, group, cid);
      } else {
        find_group_builder(group.model)->assign_communities(ctx, group, cid);
      }
      first_node += group.count;
    }
    communities = std::make_shared<const core::CommunityTable>(std::move(cid));
  }

  sim::WorldConfig world_config = spec.world;
  world_config.seed = spec.seed;
  sim::World& world = prepare(world_config);

  int first_node = 0;
  for (const auto& group : spec.groups) {
    // Heterogeneous routing: each group resolves its own protocol (per-group
    // name override over the spec-wide knobs) and hands builders a router
    // factory — the one seam the detection warm-up also plugs into.
    routing::ProtocolConfig protocol = resolved_protocol(spec, group);
    protocol.communities = communities;
    GroupBuildContext ctx{spec, map, first_node, {}};
    ctx.make_router = [&protocol] { return routing::create_router(protocol); };
    find_group_builder(group.model)->add_nodes(world, ctx, group);
    first_node += group.count;
  }

  // Per-group metric buckets (created/delivered by source group) for
  // heterogeneous analysis; headline metrics are unaffected.
  {
    std::vector<int> node_group;
    node_group.reserve(static_cast<std::size_t>(spec.node_count()));
    for (std::size_t g = 0; g < spec.groups.size(); ++g) {
      for (int v = 0; v < spec.groups[g].count; ++v) {
        node_group.push_back(static_cast<int>(g));
      }
    }
    world.metrics().set_groups(std::move(node_group),
                               static_cast<int>(spec.groups.size()));
  }

  world.set_traffic(resolve_traffic(spec));
  world.run(spec.duration_s);

  ScenarioResult result;
  result.metrics = world.metrics();
  result.contact_events = world.contact_events();
  result.wall_seconds = elapsed_seconds(start);
  result.protocol = spec.protocol.name;
  result.node_count = spec.node_count();
  result.seed = spec.seed;
  return result;
}

ScenarioSpec to_spec(const BusScenarioParams& params) {
  ScenarioSpec spec;
  spec.name = "bus";
  spec.duration_s = params.duration_s;
  spec.seed = params.seed;
  spec.full_ttl_window = params.full_ttl_window;
  spec.map.kind = "downtown";
  spec.map.params.downtown = params.map;
  GroupSpec group;
  group.name = "buses";
  group.model = "bus";
  group.count = params.node_count;
  group.params.bus = params.bus;
  spec.groups.push_back(std::move(group));
  spec.world = params.world;
  spec.traffic = params.traffic;
  spec.protocol = params.protocol;
  spec.communities.source = "auto";
  spec.communities_override = params.communities_override;
  return spec;
}

ScenarioSpec to_spec(const CommunityScenarioParams& params) {
  ScenarioSpec spec;
  spec.name = "community";
  spec.duration_s = params.duration_s;
  spec.seed = params.seed;
  spec.full_ttl_window = params.full_ttl_window;
  spec.map.kind = "open_field";
  spec.map.params.width = params.world_size_m;
  spec.map.params.height = params.world_size_m;
  GroupSpec group;
  group.name = "walkers";
  group.model = "community";
  group.count = params.node_count;
  group.params.community.home_prob = params.home_prob;
  spec.groups.push_back(std::move(group));
  spec.world = params.world;
  spec.traffic = params.traffic;
  spec.protocol = params.protocol;
  spec.communities.source = "auto";
  spec.communities.count = params.communities;
  return spec;
}

ScenarioResult ScenarioRunner::run(const BusScenarioParams& params) {
  return run(to_spec(params));
}

ScenarioResult ScenarioRunner::run(const CommunityScenarioParams& params) {
  return run(to_spec(params));
}

ScenarioResult run_bus_scenario(const BusScenarioParams& params) {
  ScenarioRunner runner;
  return runner.run(params);
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  ScenarioRunner runner;
  return runner.run(spec);
}

core::CommunityTable detect_bus_communities(const BusScenarioParams& params,
                                            const core::DetectionParams& detection,
                                            double warmup_s) {
  // One warm-up implementation: the generic spec path builds the identical
  // downtown map, route assignment, and per-node movement streams.
  return detect_spec_communities(to_spec(params), detection, warmup_s);
}

core::CommunityTable detect_spec_communities(const ScenarioSpec& spec,
                                             const core::DetectionParams& detection,
                                             double warmup_s) {
  validate_spec(spec);
  const geo::MapKindInfo* kind = geo::find_map_kind(spec.map.kind);
  const geo::BuiltMap map = kind->build(spec.map.params, spec.seed);

  core::ContactCountGraph graph(static_cast<core::NodeIdx>(spec.node_count()));
  sim::WorldConfig world_config = spec.world;
  world_config.seed = spec.seed;
  sim::World world(world_config);
  int first_node = 0;
  for (const auto& group : spec.groups) {
    // Same map, same movement, same per-node seed streams as the real run —
    // only the routers differ (routing-free contact loggers).
    GroupBuildContext ctx{spec, map, first_node, {}};
    ctx.make_router = [&graph] { return std::make_unique<ContactLoggerRouter>(&graph); };
    find_group_builder(group.model)->add_nodes(world, ctx, group);
    first_node += group.count;
  }
  world.run(warmup_s);
  return core::detect_communities(graph, detection);
}

core::CommunityTable detect_bus_communities(const ScenarioSpec& spec,
                                            const core::DetectionParams& detection,
                                            double warmup_s) {
  if (spec.map.kind != "downtown" || spec.groups.size() != 1 ||
      spec.groups[0].model != "bus") {
    throw std::invalid_argument(
        "detect_bus_communities needs a downtown map and a single bus group");
  }
  return detect_spec_communities(spec, detection, warmup_s);
}

ScenarioResult run_community_scenario(const CommunityScenarioParams& params) {
  ScenarioRunner runner;
  return runner.run(params);
}

}  // namespace dtn::harness
