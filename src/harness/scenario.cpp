#include "harness/scenario.hpp"

#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

namespace dtn::harness {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Routing-free router that only feeds the shared contact-count graph —
/// used by the community-detection warm-up pass.
class ContactLoggerRouter final : public sim::Router {
 public:
  explicit ContactLoggerRouter(core::ContactCountGraph* graph) : graph_(graph) {}
  [[nodiscard]] std::string name() const override { return "ContactLogger"; }
  void on_contact_up(sim::NodeIdx peer) override {
    if (self() < peer) graph_->record(self(), peer);
  }

 private:
  core::ContactCountGraph* graph_;
};

}  // namespace

core::CommunityTable bus_scenario_communities(const geo::BusNetwork& net,
                                              int node_count) {
  std::vector<int> cid(static_cast<std::size_t>(node_count), 0);
  for (int v = 0; v < node_count; ++v) {
    const auto& route = net.routes[static_cast<std::size_t>(v) % net.routes.size()];
    cid[static_cast<std::size_t>(v)] = route.district;
  }
  return core::CommunityTable(std::move(cid));
}

ScenarioRunner::ScenarioRunner() = default;
ScenarioRunner::~ScenarioRunner() = default;
ScenarioRunner::ScenarioRunner(ScenarioRunner&&) noexcept = default;
ScenarioRunner& ScenarioRunner::operator=(ScenarioRunner&&) noexcept = default;

sim::World& ScenarioRunner::prepare(const sim::WorldConfig& config) {
  if (!world_) {
    world_ = std::make_unique<sim::World>(config);
  } else {
    world_->reset(config);  // retains slabs, pools, grid cells, lanes
  }
  return *world_;
}

ScenarioResult ScenarioRunner::run(const ScenarioSpec& spec) {
  const auto start = Clock::now();
  validate_spec(spec);

  // Map source (seed-dependent for generated maps, so rebuilt per run).
  const geo::MapKindInfo* kind = geo::find_map_kind(spec.map.kind);
  const geo::BuiltMap map = kind->build(spec.map.params, spec.seed);

  // Community table: override > per-group model assignment ("auto") or
  // uniform round-robin.
  std::shared_ptr<const core::CommunityTable> communities = spec.communities_override;
  if (!communities) {
    std::vector<int> cid;
    cid.reserve(static_cast<std::size_t>(spec.node_count()));
    int first_node = 0;
    for (const auto& group : spec.groups) {
      const GroupBuildContext ctx{spec, map, first_node};
      if (spec.communities.source == "round_robin") {
        round_robin_communities(ctx, group, cid);
      } else {
        find_group_builder(group.model)->assign_communities(ctx, group, cid);
      }
      first_node += group.count;
    }
    communities = std::make_shared<const core::CommunityTable>(std::move(cid));
  }

  sim::WorldConfig world_config = spec.world;
  world_config.seed = spec.seed;
  sim::World& world = prepare(world_config);

  routing::ProtocolConfig protocol = spec.protocol;
  protocol.communities = communities;

  int first_node = 0;
  for (const auto& group : spec.groups) {
    const GroupBuildContext ctx{spec, map, first_node};
    find_group_builder(group.model)->add_nodes(world, ctx, group, protocol);
    first_node += group.count;
  }

  sim::TrafficParams traffic = spec.traffic;
  if (spec.full_ttl_window) {
    traffic.stop = spec.duration_s - traffic.ttl;
  }
  world.set_traffic(traffic);
  world.run(spec.duration_s);

  ScenarioResult result;
  result.metrics = world.metrics();
  result.contact_events = world.contact_events();
  result.wall_seconds = elapsed_seconds(start);
  result.protocol = spec.protocol.name;
  result.node_count = spec.node_count();
  result.seed = spec.seed;
  return result;
}

ScenarioSpec to_spec(const BusScenarioParams& params) {
  ScenarioSpec spec;
  spec.name = "bus";
  spec.duration_s = params.duration_s;
  spec.seed = params.seed;
  spec.full_ttl_window = params.full_ttl_window;
  spec.map.kind = "downtown";
  spec.map.params.downtown = params.map;
  GroupSpec group;
  group.name = "buses";
  group.model = "bus";
  group.count = params.node_count;
  group.params.bus = params.bus;
  spec.groups.push_back(std::move(group));
  spec.world = params.world;
  spec.traffic = params.traffic;
  spec.protocol = params.protocol;
  spec.communities.source = "auto";
  spec.communities_override = params.communities_override;
  return spec;
}

ScenarioSpec to_spec(const CommunityScenarioParams& params) {
  ScenarioSpec spec;
  spec.name = "community";
  spec.duration_s = params.duration_s;
  spec.seed = params.seed;
  spec.full_ttl_window = params.full_ttl_window;
  spec.map.kind = "open_field";
  spec.map.params.width = params.world_size_m;
  spec.map.params.height = params.world_size_m;
  GroupSpec group;
  group.name = "walkers";
  group.model = "community";
  group.count = params.node_count;
  group.params.community.home_prob = params.home_prob;
  spec.groups.push_back(std::move(group));
  spec.world = params.world;
  spec.traffic = params.traffic;
  spec.protocol = params.protocol;
  spec.communities.source = "auto";
  spec.communities.count = params.communities;
  return spec;
}

ScenarioResult ScenarioRunner::run(const BusScenarioParams& params) {
  return run(to_spec(params));
}

ScenarioResult ScenarioRunner::run(const CommunityScenarioParams& params) {
  return run(to_spec(params));
}

ScenarioResult run_bus_scenario(const BusScenarioParams& params) {
  ScenarioRunner runner;
  return runner.run(params);
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  ScenarioRunner runner;
  return runner.run(spec);
}

core::CommunityTable detect_bus_communities(const BusScenarioParams& params,
                                            const core::DetectionParams& detection,
                                            double warmup_s) {
  geo::DowntownParams map_params = params.map;
  map_params.seed = params.seed;
  const geo::BusNetwork net = geo::generate_downtown(map_params);
  std::vector<std::shared_ptr<const geo::Polyline>> routes;
  routes.reserve(net.routes.size());
  for (const auto& r : net.routes) {
    routes.push_back(std::make_shared<const geo::Polyline>(r.line));
  }
  core::ContactCountGraph graph(static_cast<core::NodeIdx>(params.node_count));
  sim::WorldConfig world_config = params.world;
  world_config.seed = params.seed;
  sim::World world(world_config);
  for (int v = 0; v < params.node_count; ++v) {
    const std::size_t route_idx = static_cast<std::size_t>(v) % routes.size();
    world.add_node(std::make_unique<mobility::BusMovement>(routes[route_idx], params.bus),
                   std::make_unique<ContactLoggerRouter>(&graph));
  }
  world.run(warmup_s);
  return core::detect_communities(graph, detection);
}

core::CommunityTable detect_bus_communities(const ScenarioSpec& spec,
                                            const core::DetectionParams& detection,
                                            double warmup_s) {
  if (spec.map.kind != "downtown" || spec.groups.size() != 1 ||
      spec.groups[0].model != "bus") {
    throw std::invalid_argument(
        "detect_bus_communities needs a downtown map and a single bus group");
  }
  BusScenarioParams params;
  params.node_count = spec.groups[0].count;
  params.duration_s = spec.duration_s;
  params.seed = spec.seed;
  params.map = spec.map.params.downtown;
  params.bus = spec.groups[0].params.bus;
  params.world = spec.world;
  return detect_bus_communities(params, detection, warmup_s);
}

ScenarioResult run_community_scenario(const CommunityScenarioParams& params) {
  ScenarioRunner runner;
  return runner.run(params);
}

}  // namespace dtn::harness
