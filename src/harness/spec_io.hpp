// ONE-style scenario config files for ScenarioSpec: a line-oriented
// `key = value` grammar (full- and trailing-line `#` comments), a
// serializer whose output re-parses to the identical spec (pinned by the
// harness_spec_roundtrip_test property test), and line-numbered
// diagnostics for unknown keys (with nearest-key suggestions) and
// malformed values.
//
//   # helsinki buses, paper scale
//   scenario.duration = 10000
//   map.kind = downtown
//   map.districts = 4
//   group.buses.model = bus
//   group.buses.count = 120
//   group.buses.speed_max = 13.9
//   protocol.name = EER
//
// The same key vocabulary drives single-key overrides (`dtnsim run
// scenario.cfg --set protocol.name=CR`) and sweep axes
// (SweepAxis::key); apply_override is the shared entry.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "harness/spec.hpp"

namespace dtn::harness {

/// One parse problem, anchored to a 1-based config line (0 for overrides).
struct SpecDiagnostic {
  int line = 0;
  std::string message;
};

/// Thrown by parse_spec / load_spec / apply_override. what() is every
/// diagnostic joined as "<context>:<line>: <message>" lines.
class SpecError : public std::runtime_error {
 public:
  SpecError(std::vector<SpecDiagnostic> diagnostics, const std::string& context);
  [[nodiscard]] const std::vector<SpecDiagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  std::vector<SpecDiagnostic> diagnostics_;
};

/// Parses config text into a spec (defaults + assignments in file order).
/// Throws SpecError carrying EVERY problem found, not just the first.
ScenarioSpec parse_spec(const std::string& text);

/// Non-throwing form: returns false and fills `diagnostics` on failure;
/// `out` then holds the partially-applied spec (useful for tooling).
bool try_parse_spec(const std::string& text, ScenarioSpec& out,
                    std::vector<SpecDiagnostic>& diagnostics);

/// Reads and parses a config file; diagnostics are prefixed "<path>:<line>".
/// Throws std::runtime_error when the file cannot be read.
ScenarioSpec load_spec(const std::string& path);

/// Serializes a spec to canonical config text: every serializable field,
/// sections in fixed order, groups in declaration order, model-specific
/// keys from the registries. parse_spec(to_config(s)) reproduces s for
/// any spec that validate_spec accepts (group names are key segments and
/// restricted to [A-Za-z0-9_-]; string values must not contain '#' or
/// newlines — '#' starts a comment).
/// (communities_override is programmatic-only and not serialized.)
std::string to_config(const ScenarioSpec& spec);

/// Writes to_config(spec) to `path`; false on I/O failure.
bool save_spec(const std::string& path, const ScenarioSpec& spec);

/// Applies one `key = value` assignment to an existing spec (CLI --set,
/// sweep axes). Throws SpecError (single diagnostic, line 0) on unknown
/// keys or bad values.
void apply_override(ScenarioSpec& spec, const std::string& key, const std::string& value);

/// load_spec + `--set`-style "key=value" assignments applied in order —
/// the shared load path of the dtnsim CLI and the example binaries.
ScenarioSpec load_spec_with_overrides(const std::string& path,
                                      const std::vector<std::string>& assignments);

/// Splits "key=value" (first '='); throws SpecError when '=' is missing.
std::pair<std::string, std::string> split_assignment(const std::string& text);

/// Every full key currently addressable on `spec` — the scalar section
/// vocabulary plus the registry-driven `map.*` / `group.<name>.*` keys of
/// the spec's map kind and group models. This is the list behind the
/// parser's nearest-key suggestions; the override property test walks it so
/// new keys are covered the moment they are registered. (`scenario.nodes`
/// is a write-only alias and never serialized.)
std::vector<std::string> spec_key_names(const ScenarioSpec& spec);

}  // namespace dtn::harness
