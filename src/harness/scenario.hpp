// Scenario execution: ScenarioRunner::run(const ScenarioSpec&) is the ONE
// entry point that turns a declarative spec (harness/spec.hpp) into a
// finished simulation. The BusScenarioParams / CommunityScenarioParams
// structs predate the spec API and survive as thin adapters (to_spec), bit-
// identical to their original hand-rolled builders (enforced by
// harness_spec_equivalence_test). The bus scenario is the paper's
// evaluation setup (Sec. V-A): a synthetic downtown map with bus routes,
// nodes = buses, communities = districts.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/community_detection.hpp"
#include "geo/map_gen.hpp"
#include "harness/spec.hpp"
#include "mobility/bus_movement.hpp"
#include "mobility/community_movement.hpp"
#include "routing/factory.hpp"
#include "sim/metrics.hpp"
#include "sim/world.hpp"

namespace dtn::harness {

/// Paper defaults (Sec. V-A). Every field is overridable by benches/tests.
struct BusScenarioParams {
  int node_count = 120;
  double duration_s = 10000.0;
  std::uint64_t seed = 1;

  geo::DowntownParams map;        ///< map/route generator (districts = communities)
  mobility::BusParams bus;        ///< speeds 2.7-13.9 m/s by default
  sim::WorldConfig world;         ///< dt 0.1 s, range 10 m, 2 Mbps, 1 MB
  sim::TrafficParams traffic;     ///< 25 KB packets, TTL 1200 s
  routing::ProtocolConfig protocol;

  /// When true (default) traffic generation stops at duration - TTL so
  /// every generated message has a full TTL window inside the run.
  bool full_ttl_window = true;

  /// When set, CR uses this community table instead of the route-district
  /// ground truth (used by the detected-communities ablation).
  std::shared_ptr<const core::CommunityTable> communities_override;
};

struct ScenarioResult {
  sim::Metrics metrics;
  std::int64_t contact_events = 0;
  double wall_seconds = 0.0;
  std::string protocol;
  int node_count = 0;
  std::uint64_t seed = 0;
};

/// Runs one bus-map simulation to completion and reports its metrics.
ScenarioResult run_bus_scenario(const BusScenarioParams& params);

struct CommunityScenarioParams;

/// Reusable scenario executor: owns one sim::World whose allocated capacity
/// (buffer slabs, spatial-grid cells, adjacency/connection/transfer pools,
/// movement lanes, metrics buckets) is retained across run() calls via
/// World::reset(). A worker thread keeps one ScenarioRunner for a whole
/// campaign, so per-run allocation work shrinks to what genuinely differs
/// between runs (the seed-dependent map, router instances). Results are
/// bit-identical to the free functions on a fresh World (enforced by
/// integration_sweep_test).
class ScenarioRunner {
 public:
  ScenarioRunner();
  ~ScenarioRunner();
  ScenarioRunner(ScenarioRunner&&) noexcept;
  ScenarioRunner& operator=(ScenarioRunner&&) noexcept;

  /// THE execution entry: builds the spec's map, communities, and node
  /// groups through the registries and runs the simulation to completion.
  /// Throws std::invalid_argument (validate_spec / create_router) on
  /// inconsistent specs.
  ScenarioResult run(const ScenarioSpec& spec);

  /// Adapter: run(to_spec(params)).
  ScenarioResult run(const BusScenarioParams& params);
  /// Adapter: run(to_spec(params)).
  ScenarioResult run(const CommunityScenarioParams& params);

 private:
  /// Builds or resets the owned World for a fresh run under `config`.
  sim::World& prepare(const sim::WorldConfig& config);

  std::unique_ptr<sim::World> world_;
  /// Detected-communities warm-up memo. detect_spec_communities is
  /// deterministic in (map, groups, world, warmup, seed) and routing-free,
  /// so runs that differ only in routing/traffic knobs (a protocol.name or
  /// group.<g>.protocol sweep axis) share one warm-up simulation instead of
  /// re-running bit-identical ones per (point, seed) task. Keyed on the
  /// canonical serialization of the detection-relevant spec fields; one
  /// table per distinct (detection inputs, seed) THIS runner touches — the
  /// memo's scope is the runner, so a threads=N sweep still computes each
  /// warm-up up to once per worker (results identical either way).
  std::unordered_map<std::string, std::shared_ptr<const core::CommunityTable>>
      detected_cache_;
};

/// Community random-waypoint scenario (no map): `communities` districts
/// tiled across the world, one CommunityMovement per node. Exercises CR on
/// mobility that is community-structured but not route-structured.
struct CommunityScenarioParams {
  int node_count = 80;
  int communities = 4;
  double world_size_m = 2400.0;
  double home_prob = 0.85;
  double duration_s = 8000.0;
  std::uint64_t seed = 1;
  sim::WorldConfig world;
  sim::TrafficParams traffic;
  routing::ProtocolConfig protocol;
  bool full_ttl_window = true;
};

ScenarioResult run_community_scenario(const CommunityScenarioParams& params);

/// Runs one spec to completion on a fresh runner (single-shot convenience;
/// campaigns should keep a ScenarioRunner for world reuse).
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Converts the legacy bus parameter block into the equivalent spec: a
/// downtown map and one `bus` group. Bit-identical execution.
ScenarioSpec to_spec(const BusScenarioParams& params);

/// Converts the legacy community parameter block into the equivalent spec:
/// an open-field map and one `community` group with band-tiled homes.
/// Bit-identical execution.
ScenarioSpec to_spec(const CommunityScenarioParams& params);

/// Builds the community table for a bus scenario (round-robin route
/// assignment; community = route district), exposed so callers can
/// construct CR configs that match the node assignment.
core::CommunityTable bus_scenario_communities(const geo::BusNetwork& net,
                                              int node_count);

/// Runs a routing-free warm-up pass of the bus scenario (same map, same
/// movement, same seed) for `warmup_s` seconds, collects pairwise contact
/// counts, and detects communities from them (core::detect_communities).
/// This is the distributed-construction path from the paper's future work,
/// evaluated offline; see bench/ablation_communities.
core::CommunityTable detect_bus_communities(const BusScenarioParams& params,
                                            const core::DetectionParams& detection,
                                            double warmup_s);

/// Spec form of the warm-up detection: requires a downtown map and a
/// single bus group (throws std::invalid_argument otherwise).
core::CommunityTable detect_bus_communities(const ScenarioSpec& spec,
                                            const core::DetectionParams& detection,
                                            double warmup_s);

/// Generic warm-up detection over ANY valid spec (what
/// `communities.source = detected` executes): builds the spec's world with
/// routing-free contact-logger routers — same map, movement, and per-node
/// seed streams as the real run — runs it for `warmup_s` simulated seconds,
/// and detects communities from the pairwise contact counts. Deterministic
/// in (spec, seed); independent of runner reuse and thread count.
core::CommunityTable detect_spec_communities(const ScenarioSpec& spec,
                                             const core::DetectionParams& detection,
                                             double warmup_s);

}  // namespace dtn::harness
