// Sweep runner: executes a grid of scenarios and aggregates per-point
// means across seeds.
//
// Since the ScenarioSpec redesign the grid is DECLARATIVE: a sweep is a
// base ScenarioSpec plus axes of `key = value` overrides (SweepAxis), so
// ANY spec parameter — protocol, node count, buffer size, TTL, mobility
// speeds, map shape — can be swept or ablated through the same engine
// (run_spec_sweep). The original protocol × node-count SweepOptions
// survives as a thin adapter that expands into the axes
// {protocol.name, scenario.nodes} (bit-identical aggregates, enforced by
// integration_sweep_test).
//
// Execution engine (PR 3): runs fan out over the persistent shared thread
// pool with chunked dispatch — no per-run task/future allocations — and
// every worker keeps ONE ScenarioRunner whose World is reused (capacity
// retained) across all the runs that worker executes. Per-run scalar
// samples land in a per-task slot; the PointResult accumulators are folded
// serially in task order after the loop, so sweep aggregates are
// BIT-IDENTICAL for any thread count, any scheduling, and fresh- vs
// reused-world execution. The progress callback fires outside any merge
// path, serialized only against itself. SweepOptions::exec = kLegacy keeps
// the pre-PR3 engine (throwaway pool, one heap task + future per run,
// fresh World per run, mutex-serialized merge + progress) in the same
// binary as the bench baseline.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "harness/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dtn::harness {

/// Aggregated metrics for one sweep point across seeds.
struct PointResult {
  std::string protocol;
  int node_count = 0;
  int copies = 0;
  double alpha = 0.0;
  util::StatAccumulator delivery_ratio;
  util::StatAccumulator latency;
  util::StatAccumulator goodput;
  util::StatAccumulator control_mb;
  util::StatAccumulator relayed;
  util::StatAccumulator contacts;
};

/// One sweep dimension: a spec key (apply_override vocabulary) and the
/// values it takes. Axes combine as a cross product, first axis outermost.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Declarative sweep: base spec + axis overrides.
struct SpecSweepOptions {
  ScenarioSpec base;
  std::vector<SweepAxis> axes;
  int seeds = 2;
  std::uint64_t seed_base = 1000;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Optional progress callback (run label) invoked as runs finish. May
  /// fire from worker threads; calls are serialized against each other but
  /// never hold any merge/result lock.
  std::function<void(const std::string&)> progress;
};

/// One resolved grid point: the axis assignments that produced it plus the
/// aggregated metrics (PointResult meta fields are filled from the
/// resolved spec: protocol name, total node count, copies, alpha).
struct SpecPointResult {
  std::vector<std::pair<std::string, std::string>> overrides;  ///< key, value per axis
  PointResult result;
  /// "key=value key=value" (empty for an axis-less sweep).
  [[nodiscard]] std::string label() const;
};

/// Runs the declarative grid; points ordered by the axis cross product
/// (first axis outermost). Throws SpecError on an invalid axis key/value
/// and std::invalid_argument on specs that fail validation.
std::vector<SpecPointResult> run_spec_sweep(const SpecSweepOptions& options);

struct SweepOptions {
  std::vector<std::string> protocols;
  std::vector<int> node_counts;
  int seeds = 2;
  std::uint64_t seed_base = 1000;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// kReused (default): the spec-sweep engine (persistent pool, chunked
  /// dispatch, reusable per-worker Worlds, deterministic task-order fold).
  /// kLegacy: the pre-PR3 execution path, kept for A/B benchmarking
  /// (bench_sweep).
  enum class Exec { kReused, kLegacy };
  Exec exec = Exec::kReused;
  /// Applied to every point before protocol/node count are overlaid.
  BusScenarioParams base;
  /// Optional progress callback (point label) invoked as runs finish.
  std::function<void(const std::string&)> progress;
};

/// Adapter: expands into run_spec_sweep over axes
/// {protocol.name = protocols, scenario.nodes = node_counts}. Results
/// ordered by (protocol, node_count) as given.
std::vector<PointResult> run_sweep(const SweepOptions& options);

/// Renders one metric across the grid as a table: rows = node counts,
/// columns = protocols. `metric` selects the accumulator.
enum class Metric { kDeliveryRatio, kLatency, kGoodput, kControlMb, kRelayed };

util::TablePrinter metric_table(const std::vector<PointResult>& results,
                                Metric metric, int precision = 4);

/// Flat table for arbitrary-axis sweeps: one row per point, axis columns
/// first, then every metric mean.
util::TablePrinter sweep_table(const std::vector<SpecPointResult>& results,
                               int precision = 4);

/// Machine-readable sweep results (`dtnsim sweep --out results.json`).
/// Stable schema "dtnsim-sweep/1":
///   {
///     "schema": "dtnsim-sweep/1",
///     "scenario": <base spec name>,
///     "seeds": <per-point repetitions>, "seed_base": <first seed>,
///     "axes": [{"key": ..., "values": [...]}, ...],
///     "points": [{
///       "overrides": {<axis key>: <value>, ...},
///       "protocol": ..., "nodes": ...,
///       "metrics": {<name>: {"mean": ..., "stddev": ..., "count": ...}, ...}
///     }, ...]
///   }
/// Metric names: delivery_ratio, latency_s, goodput, control_MB, relayed,
/// contacts. Numbers use shortest-round-trip formatting (non-finite values
/// serialize as null); points appear in axis cross-product order. Additive
/// schema evolution only — existing fields keep their meaning.
std::string sweep_results_json(const SpecSweepOptions& options,
                               const std::vector<SpecPointResult>& results);

/// Column label used in output for a metric.
std::string metric_name(Metric metric);

/// Reads a single aggregated value.
double metric_value(const PointResult& point, Metric metric);

}  // namespace dtn::harness
