// Sweep runner: executes a (protocol × node-count × seed) grid of bus
// scenarios, aggregates per-point means across seeds, and prints
// figure-style tables.
//
// Execution engine (PR 3): runs fan out over the persistent shared thread
// pool with chunked dispatch — no per-run task/future allocations — and
// every worker keeps ONE ScenarioRunner whose World is reused (capacity
// retained) across all the runs that worker executes. Per-run scalar
// samples land in a per-task slot; the PointResult accumulators are folded
// serially in task order after the loop, so sweep aggregates are
// BIT-IDENTICAL for any thread count, any scheduling, and fresh- vs
// reused-world execution (enforced by integration_sweep_test). The
// progress callback fires outside any merge path, serialized only against
// itself. SweepOptions::exec = kLegacy keeps the pre-PR3 engine (throwaway
// pool, one heap task + future per run, fresh World per run, mutex-
// serialized merge + progress) in the same binary as the bench baseline.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dtn::harness {

/// Aggregated metrics for one sweep point across seeds.
struct PointResult {
  std::string protocol;
  int node_count = 0;
  int copies = 0;
  double alpha = 0.0;
  util::StatAccumulator delivery_ratio;
  util::StatAccumulator latency;
  util::StatAccumulator goodput;
  util::StatAccumulator control_mb;
  util::StatAccumulator relayed;
  util::StatAccumulator contacts;
};

struct SweepOptions {
  std::vector<std::string> protocols;
  std::vector<int> node_counts;
  int seeds = 2;
  std::uint64_t seed_base = 1000;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// kReused (default): persistent pool, chunked dispatch, reusable
  /// per-worker Worlds, deterministic task-order fold. kLegacy: the pre-PR3
  /// execution path, kept for A/B benchmarking (bench_sweep).
  enum class Exec { kReused, kLegacy };
  Exec exec = Exec::kReused;
  /// Applied to every point before protocol/node count are overlaid.
  BusScenarioParams base;
  /// Optional progress callback (point label) invoked as runs finish.
  /// May fire from worker threads; calls are serialized against each other
  /// but never hold any merge/result lock.
  std::function<void(const std::string&)> progress;
};

/// Runs the grid; results ordered by (protocol, node_count) as given.
std::vector<PointResult> run_sweep(const SweepOptions& options);

/// Renders one metric across the grid as a table: rows = node counts,
/// columns = protocols. `metric` selects the accumulator.
enum class Metric { kDeliveryRatio, kLatency, kGoodput, kControlMb, kRelayed };

util::TablePrinter metric_table(const std::vector<PointResult>& results,
                                Metric metric, int precision = 4);

/// Column label used in output for a metric.
std::string metric_name(Metric metric);

/// Reads a single aggregated value.
double metric_value(const PointResult& point, Metric metric);

}  // namespace dtn::harness
