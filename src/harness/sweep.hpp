// Sweep runner: executes a (protocol × node-count × seed) grid of bus
// scenarios, aggregates per-point means across seeds, and prints
// figure-style tables. Seeds fan out across a thread pool (Worlds share no
// state).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dtn::harness {

/// Aggregated metrics for one sweep point across seeds.
struct PointResult {
  std::string protocol;
  int node_count = 0;
  int copies = 0;
  double alpha = 0.0;
  util::StatAccumulator delivery_ratio;
  util::StatAccumulator latency;
  util::StatAccumulator goodput;
  util::StatAccumulator control_mb;
  util::StatAccumulator relayed;
  util::StatAccumulator contacts;
};

struct SweepOptions {
  std::vector<std::string> protocols;
  std::vector<int> node_counts;
  int seeds = 2;
  std::uint64_t seed_base = 1000;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Applied to every point before protocol/node count are overlaid.
  BusScenarioParams base;
  /// Optional progress callback (point label) invoked as points finish.
  std::function<void(const std::string&)> progress;
};

/// Runs the grid; results ordered by (protocol, node_count) as given.
std::vector<PointResult> run_sweep(const SweepOptions& options);

/// Renders one metric across the grid as a table: rows = node counts,
/// columns = protocols. `metric` selects the accumulator.
enum class Metric { kDeliveryRatio, kLatency, kGoodput, kControlMb, kRelayed };

util::TablePrinter metric_table(const std::vector<PointResult>& results,
                                Metric metric, int precision = 4);

/// Column label used in output for a metric.
std::string metric_name(Metric metric);

/// Reads a single aggregated value.
double metric_value(const PointResult& point, Metric metric);

}  // namespace dtn::harness
