// Sweep runner: executes a grid of scenarios and aggregates per-point
// means across seeds.
//
// Since the ScenarioSpec redesign the grid is DECLARATIVE: a sweep is a
// base ScenarioSpec plus axes of `key = value` overrides (SweepAxis), so
// ANY spec parameter — protocol, node count, buffer size, TTL, mobility
// speeds, map shape — can be swept or ablated through the same engine
// (run_spec_sweep). The original protocol × node-count SweepOptions
// survives as a thin adapter that expands into the axes
// {protocol.name, scenario.nodes} (bit-identical aggregates, enforced by
// integration_sweep_test).
//
// Execution engine (PR 3): runs fan out over the persistent shared thread
// pool with chunked dispatch — no per-run task/future allocations — and
// every worker keeps ONE ScenarioRunner whose World is reused (capacity
// retained) across all the runs that worker executes. Per-run scalar
// samples land in a per-task slot; the PointResult accumulators are folded
// serially in task order after the loop, so sweep aggregates are
// BIT-IDENTICAL for any thread count, any scheduling, and fresh- vs
// reused-world execution. The progress callback fires outside any merge
// path, serialized only against itself. SweepOptions::exec = kLegacy keeps
// the pre-PR3 engine (throwaway pool, one heap task + future per run,
// fresh World per run, mutex-serialized merge + progress) in the same
// binary as the bench baseline.
// Multi-process fabric (PR 8): shard_index/shard_count restrict one
// engine invocation to a deterministic slice of the point cross-product
// (point index modulo shard_count), each shard journaling into its own
// file; merge_sweep_journals folds any non-overlapping set of shard
// journals — validated against the shared campaign fingerprint — into
// final aggregates bit-identical to a single-process run. The `dtnsim
// sweep --workers N` driver (tools/dtnsim.cpp) builds the
// spawn/supervise/restart/merge loop on top of these two primitives.
// Crash safety (PR 6): with SpecSweepOptions::journal_path set,
// run_spec_sweep streams every COMPLETED grid point (all its seeds
// finished) as one checksummed record into an append-only journal
// (harness/journal.hpp) the moment it completes, fsync'd on a
// configurable cadence — a killed campaign keeps everything it finished.
// With resume = true the engine replays the journal first (validating a
// campaign fingerprint: base spec, axes, seeds, seed base), folds the
// replayed per-seed samples exactly as a live run would, and recomputes
// ONLY the missing points, so the final aggregates are bit-identical to an
// uninterrupted campaign (pinned by harness_journal_property_test and the
// dtnsim_crash_resume ctest). Per-point failure isolation
// (isolate_failures / retries / point_timeout_s) records a throwing or
// timed-out point as failed-with-reason instead of killing the campaign;
// SweepFaultPlan is the deterministic fault-injection hook the recovery
// tests drive (throw / hang / SIGKILL at a grid point or journal byte
// offset).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "harness/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dtn::harness {

/// Aggregated metrics for one sweep point across seeds.
struct PointResult {
  std::string protocol;
  int node_count = 0;
  int copies = 0;
  double alpha = 0.0;
  util::StatAccumulator delivery_ratio;
  util::StatAccumulator latency;
  util::StatAccumulator goodput;
  util::StatAccumulator control_mb;
  util::StatAccumulator relayed;
  util::StatAccumulator contacts;
};

/// One sweep dimension: a spec key (apply_override vocabulary) and the
/// values it takes. Axes combine as a cross product, first axis outermost.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Deterministic fault-injection hook for the crash-recovery tests (and
/// the hidden `dtnsim sweep --fault` flag). The plan fires on attempts of
/// grid point `point` (at most `fires` times, counted in `fired`), or —
/// for kKill — when the journal length reaches `journal_bytes`. Owned by
/// the caller; the engine only mutates `fired`.
struct SweepFaultPlan {
  enum class Action {
    kThrow,  ///< the attempt throws std::runtime_error("injected fault ...")
    kHang,   ///< the attempt sleeps hang_ms before running (drives timeouts)
    kKill    ///< raise(SIGKILL) — the process dies exactly as a crash would
  };
  Action action = Action::kThrow;
  /// Grid point whose attempts trigger the fault (cross-product index).
  std::size_t point = static_cast<std::size_t>(-1);
  /// kKill alternative trigger: fire once the journal reaches this length
  /// (checked after each record append, while the record is already
  /// flushed — "crash immediately after byte offset M").
  std::uint64_t journal_bytes = UINT64_MAX;
  int hang_ms = 0;  ///< kHang: injected stall before the simulation runs
  int fires = 1;    ///< max at-point activations (INT_MAX = every attempt)
  std::atomic<int> fired{0};
};

/// Declarative sweep: base spec + axis overrides.
struct SpecSweepOptions {
  ScenarioSpec base;
  std::vector<SweepAxis> axes;
  int seeds = 2;
  std::uint64_t seed_base = 1000;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Optional progress callback (run label) invoked as runs finish. May
  /// fire from worker threads; calls are serialized against each other but
  /// never hold any merge/result lock.
  std::function<void(const std::string&)> progress;

  // ---- crash safety / failure isolation ------------------------------------
  /// Non-empty: stream each completed point into this append-only journal.
  std::string journal_path;
  /// Replay journal_path before executing (recompute only missing points).
  /// The journal must carry this campaign's fingerprint — base spec, axes,
  /// seeds, seed_base — or run_spec_sweep throws SweepJournalError. A
  /// missing journal file is NOT an error (fresh start, noted via `note`).
  bool resume = false;
  /// Journal fsync cadence in records: 1 (default) = every record survives
  /// power loss, N = at most N trailing records ride the page cache, 0 =
  /// flush-only (still survives process death).
  int sync_every = 1;
  /// When true, a point whose run throws (or times out) is recorded as
  /// failed-with-reason — in the results and the journal — instead of
  /// aborting the campaign. When false (default, the library behavior),
  /// the first failure is rethrown WITH the point key in its message.
  bool isolate_failures = false;
  /// Extra attempts per failed point-run (one seed's simulation) before
  /// the point is declared failed.
  int retries = 0;
  /// Wall-clock cap per point-run attempt, seconds; 0 = none. A timed-out
  /// attempt is abandoned (its worker continues on a fresh World) and
  /// counts as a failure, subject to `retries`.
  double point_timeout_s = 0.0;
  /// Diagnostics channel (corrupt-tail warnings, resume notes). Serialized
  /// like `progress`; stderr in the CLI.
  std::function<void(const std::string&)> note;
  /// Test-only deterministic fault injection (see SweepFaultPlan).
  SweepFaultPlan* fault_plan = nullptr;

  // ---- sharding (multi-process fabric) -------------------------------------
  /// Shard selector over the point cross-product: this invocation executes
  /// only points whose index satisfies `index % shard_count ==
  /// shard_index` — a deterministic, spec-independent assignment, so N
  /// cooperating processes given shard 0/N .. N-1/N cover the grid exactly
  /// once. Out-of-shard points come back with PointExec::Status::kSkipped
  /// and empty accumulators. The campaign fingerprint deliberately
  /// EXCLUDES the shard selector (like threads, it cannot change any
  /// result bit), so per-shard journals all carry the same fingerprint and
  /// merge_sweep_journals can validate them against each other. Defaults
  /// (0/1) mean "the whole grid". shard_count == 0 or shard_index >=
  /// shard_count throw std::invalid_argument.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
};

/// How one grid point was actually executed — the robustness metadata next
/// to its metrics. Serialized additively into dtnsim-sweep/1 (the "exec"
/// object) and into the journal.
struct PointExec {
  enum class Status { kOk, kFailed, kSkipped };
  Status status = Status::kOk;
  std::string error;    ///< first failure reason ("" when ok/skipped)
  int tries = 0;        ///< simulation attempts across all seeds (== seeds clean)
  double wall_ms = 0.0; ///< total attempt wall time (monotonic clock)
  bool resumed = false; ///< replayed from a journal, not recomputed
  /// Where this point's record was computed: "" = this process (serialized
  /// as "local"), "host:port" for a shard shipped back by a remote worker
  /// daemon. Set by merge_sweep_journals from its `origins` argument;
  /// volatile metadata (lives on the filtered `"exec` lines, not in the
  /// journal — any origin recomputes bit-identically).
  std::string origin;
  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }
  [[nodiscard]] bool failed() const noexcept { return status == Status::kFailed; }
  /// Point belongs to another shard (see SpecSweepOptions::shard_index);
  /// it was neither executed nor journaled by this invocation.
  [[nodiscard]] bool skipped() const noexcept { return status == Status::kSkipped; }
};

/// One resolved grid point: the axis assignments that produced it plus the
/// aggregated metrics (PointResult meta fields are filled from the
/// resolved spec: protocol name, total node count, copies, alpha).
struct SpecPointResult {
  std::vector<std::pair<std::string, std::string>> overrides;  ///< key, value per axis
  PointResult result;
  PointExec exec;  ///< how the point ran (ok/failed, tries, wall, resumed)
  /// "key=value key=value" (empty for an axis-less sweep).
  [[nodiscard]] std::string label() const;
};

/// Thrown on journal problems that must stop a resume loudly instead of
/// silently recomputing or double-counting: a journal written by a
/// different campaign (fingerprint mismatch — base spec, axes, seeds, or
/// seed base changed), or an unopenable/unwritable journal path.
class SweepJournalError : public std::runtime_error {
 public:
  explicit SweepJournalError(const std::string& what) : std::runtime_error(what) {}
};

/// The campaign identity used by journals, resume, merge — and the
/// multi-host fabric's HELLO handshake (harness/remote.hpp): canonical
/// base spec + every axis + the seed schedule + grid size. Deliberately
/// EXCLUDES the shard selector and thread count (they cannot change any
/// result bit), so every shard of one campaign — local or remote —
/// carries the identical fingerprint.
std::string sweep_campaign_fingerprint(const SpecSweepOptions& options);

/// Runs the declarative grid; points ordered by the axis cross product
/// (first axis outermost). Throws SpecError on an invalid axis key/value,
/// std::invalid_argument on specs that fail validation, and
/// SweepJournalError on journal/resume problems. Memory note: per-seed
/// samples are buffered only for IN-FLIGHT points (bounded by the worker
/// count, not the campaign length) — each point folds its accumulators
/// and releases its sample buffer the moment its last seed finishes,
/// which is also when its journal record is streamed out.
std::vector<SpecPointResult> run_spec_sweep(const SpecSweepOptions& options);

/// What merge_sweep_journals found across the shard journals.
struct SweepMergeStats {
  std::size_t journals_read = 0;   ///< journals that contributed >= 1 record
  std::size_t points_ok = 0;       ///< merged points that completed cleanly
  std::size_t points_failed = 0;   ///< merged failed-with-reason records
  std::size_t points_missing = 0;  ///< grid points no journal recorded
};

/// Folds N per-shard journals into the final campaign aggregates —
/// bit-identical to a single-process run of the same options (the per-seed
/// samples are journaled as hexfloats and re-folded in seed order, exactly
/// like `resume`). Every journal must carry THIS campaign's fingerprint
/// (base spec, axes, seeds, seed base — foreign journals throw
/// SweepJournalError loudly), and no two journals may record the same
/// point (overlapping shards throw — silent double-counting is the one
/// unforgivable merge bug). The partition does NOT have to be the modulo
/// assignment: any disjoint covering (or partial covering) merges; within
/// one journal the last record per point wins (a resumed retry supersedes
/// the failure it retried). Degradation is graceful, not fatal: a missing
/// or intact-record-free journal (a shard killed before its header was
/// durable) contributes nothing, and grid points recorded by no journal
/// come back failed-with-reason so the campaign completes with exit-1
/// semantics instead of refusing to publish the survivors. Unreadable
/// (existing but I/O-failing) paths throw.
/// `origins` (optional) labels each journal with where its shard ran —
/// aligned index-for-index with `journal_paths`, "" (or a short vector)
/// meaning "this host"; the label lands in PointExec::origin of every
/// point that journal owns and surfaces on the volatile `"exec` lines of
/// sweep_results_json.
std::vector<SpecPointResult> merge_sweep_journals(
    const SpecSweepOptions& options, const std::vector<std::string>& journal_paths,
    SweepMergeStats* stats = nullptr,
    const std::vector<std::string>& origins = {});

/// Offline journal diagnosis for `dtnsim journal <file>`: framing health
/// (intact records, valid prefix, torn tail) plus — when the first record
/// is a sweep campaign fingerprint — the campaign shape and per-point
/// record census. Never throws; missing/io_error report through the flags.
struct JournalInspection {
  bool missing = false;            ///< file does not exist
  bool io_error = false;           ///< file exists but could not be read
  std::size_t records = 0;         ///< intact records, header included
  std::uint64_t valid_bytes = 0;   ///< length of the intact prefix
  std::uint64_t dropped_bytes = 0; ///< torn/corrupt bytes behind it
  bool campaign = false;           ///< first record is a sweep fingerprint
  int seeds = 0;                   ///< campaign header: per-point seeds
  std::uint64_t seed_base = 0;     ///< campaign header: first seed
  std::size_t grid_points = 0;     ///< campaign header: grid size
  std::size_t axes = 0;            ///< campaign header: axis count
  std::size_t points_recorded = 0; ///< distinct point indices (latest wins)
  std::size_t points_ok = 0;
  std::size_t points_failed = 0;
  std::size_t malformed_records = 0;  ///< framed fine but unparsable payload
  /// Shard selector coverage implied by the recorded point indices, for
  /// offline audit of a shard dir (`dtnsim journal`): the LARGEST modulo
  /// assignment `index % modulus == residue` consistent with every index
  /// present (gcd of the pairwise differences). modulus == 0 means too few
  /// distinct indices to infer anything (0 or 1 recorded); modulus == 1
  /// means only the whole-grid selector 0/1 fits. A shard i/N journal
  /// reports modulus == k*N for some k >= 1 with residue ≡ i (mod N) —
  /// shard 2/4 that has only hit every other of its points reads 2/8.
  std::size_t shard_modulus = 0;
  std::size_t shard_residue = 0;
  /// Journal is safe to resume/merge as-is: it exists, read cleanly, lost
  /// no bytes, and every non-header record parsed.
  [[nodiscard]] bool intact() const noexcept {
    return !missing && !io_error && dropped_bytes == 0 && malformed_records == 0 &&
           records > 0;
  }
};
JournalInspection inspect_sweep_journal(const std::string& path);

struct SweepOptions {
  std::vector<std::string> protocols;
  std::vector<int> node_counts;
  int seeds = 2;
  std::uint64_t seed_base = 1000;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// kReused (default): the spec-sweep engine (persistent pool, chunked
  /// dispatch, reusable per-worker Worlds, deterministic task-order fold).
  /// kLegacy: the pre-PR3 execution path, kept for A/B benchmarking
  /// (bench_sweep).
  enum class Exec { kReused, kLegacy };
  Exec exec = Exec::kReused;
  /// Applied to every point before protocol/node count are overlaid.
  BusScenarioParams base;
  /// Optional progress callback (point label) invoked as runs finish.
  std::function<void(const std::string&)> progress;
};

/// Adapter: expands into run_spec_sweep over axes
/// {protocol.name = protocols, scenario.nodes = node_counts}. Results
/// ordered by (protocol, node_count) as given.
std::vector<PointResult> run_sweep(const SweepOptions& options);

/// Renders one metric across the grid as a table: rows = node counts,
/// columns = protocols. `metric` selects the accumulator.
enum class Metric { kDeliveryRatio, kLatency, kGoodput, kControlMb, kRelayed };

util::TablePrinter metric_table(const std::vector<PointResult>& results,
                                Metric metric, int precision = 4);

/// Flat table for arbitrary-axis sweeps: one row per point, axis columns
/// first, then every metric mean.
util::TablePrinter sweep_table(const std::vector<SpecPointResult>& results,
                               int precision = 4);

/// Machine-readable sweep results (`dtnsim sweep --out results.json`).
/// Stable schema "dtnsim-sweep/1":
///   {
///     "schema": "dtnsim-sweep/1",
///     "scenario": <base spec name>,
///     "seeds": <per-point repetitions>, "seed_base": <first seed>,
///     "axes": [{"key": ..., "values": [...]}, ...],
///     "execution": {"resumed_points": ..., "failed_points": ...,
///                    "skipped_points": ...},
///     "points": [{
///       "overrides": {<axis key>: <value>, ...},
///       "protocol": ..., "nodes": ...,
///       "exec": {"status": "ok"|"failed"|"skipped", "tries": ..., "wall_ms": ...,
///                "resumed": ...[, "error": ...]},
///       "metrics": {<name>: {"mean": ..., "stddev": ..., "count": ...}, ...}
///     }, ...]
///   }
/// Metric names: delivery_ratio, latency_s, goodput, control_MB, relayed,
/// contacts. Numbers use shortest-round-trip formatting (non-finite values
/// serialize as null); points appear in axis cross-product order. Additive
/// schema evolution only — existing fields keep their meaning. The
/// "execution" / "exec" members (added with the crash-safe campaign layer)
/// are the only volatile fields (wall_ms, resumed counts); both live on
/// lines containing `"exec` so equivalence tooling (the crash-resume
/// ctest) can filter them before diffing two campaigns bit-for-bit.
std::string sweep_results_json(const SpecSweepOptions& options,
                               const std::vector<SpecPointResult>& results);

/// Column label used in output for a metric.
std::string metric_name(Metric metric);

/// Reads a single aggregated value.
double metric_value(const PointResult& point, Metric metric);

}  // namespace dtn::harness
