#pragma once
// Campaign-fabric vocabulary shared by the `dtnsim serve` worker daemon
// and the multi-host `dtnsim sweep --hosts` driver (tools/dtnsim.cpp):
// the text payloads that ride inside net/wire frames, plus the
// driver-side shard-journal audit used by a fleet `--resume`.
//
// Payloads are line-oriented text in the same spirit as the sweep
// journal. The protocol version is part of every handshake payload;
// determinism is the correctness anchor — an ASSIGN carries the full
// canonical campaign (spec_io forms), the daemon recomputes the campaign
// fingerprint from what it parsed, and a mismatch with the fingerprint
// advertised in HELLO is refused loudly. Any host recomputes any point
// bit-identically, so WHERE a shard ran can never change a result bit.

#include <cstdint>
#include <string>

#include "harness/sweep.hpp"

namespace dtn::harness {

/// Version token spoken in HELLO/ASSIGN payloads. Bump on any
/// incompatible change to the payload grammar or the fabric contract.
inline constexpr const char kServeProtocolVersion[] = "dtnsim-serve/1";

/// HELLO payload: protocol version + the campaign fingerprint digest
/// (length + CRC-32 of sweep_campaign_fingerprint), so a daemon can
/// refuse a foreign ASSIGN before parsing a single spec line.
std::string serialize_sweep_hello(const std::string& fingerprint);
bool parse_sweep_hello(const std::string& payload, std::uint64_t* fp_len,
                       std::uint32_t* fp_crc, std::string* error);

/// One shard of one campaign, fully serialized for a remote worker: the
/// canonical base spec (to_config), every axis, the seed schedule, the
/// shard selector, and the execution policy knobs that change what gets
/// recorded (isolate/retries/point_timeout/sync_every, resume). Host
/// -local choices — journal path, thread count, progress plumbing — are
/// deliberately NOT shipped: the daemon owns them.
std::string serialize_sweep_assignment(const SpecSweepOptions& options);

/// Strict parse of an ASSIGN payload into options ready for
/// run_spec_sweep (journal_path/threads/callbacks left default). False +
/// `error` on any violation: wrong version token, malformed field, axis
/// or spec text that does not parse.
bool parse_sweep_assignment(const std::string& payload, SpecSweepOptions* out,
                            std::string* error);

/// PROGRESS payload: the daemon's journal-growth heartbeat.
std::string serialize_sweep_progress(std::uint64_t records, std::uint64_t bytes);
bool parse_sweep_progress(const std::string& payload, std::uint64_t* records,
                          std::uint64_t* bytes);

/// Driver-side audit of one shard journal before (re)assigning the shard.
enum class ShardJournalState {
  kComplete,  ///< every in-shard point recorded ok: nothing left to assign
  kPartial,   ///< missing, empty, gaps, or failed points: (re)assign + resume
  kForeign,   ///< carries a different campaign's fingerprint
};
ShardJournalState audit_shard_journal(const SpecSweepOptions& options,
                                      std::size_t shard_index,
                                      std::size_t shard_count,
                                      const std::string& path);

}  // namespace dtn::harness
