#include "harness/journal.hpp"

#include <cerrno>
#include <cstring>

#include "util/checksum.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace dtn::harness {

namespace {

constexpr const char kMagic[] = "%DTNJ1 ";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;

std::string crc_hex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

/// Parses one framed record starting at `at` in `data`. On success fills
/// `payload`, advances `at` past the record, and returns true. Returns
/// false on truncation, bad framing, or checksum mismatch (`at` is left at
/// the record start — the first invalid byte of the file).
bool parse_record(const std::string& data, std::size_t& at, std::string& payload) {
  const std::size_t start = at;
  if (data.size() - start < kMagicLen ||
      data.compare(start, kMagicLen, kMagic) != 0) {
    return false;
  }
  std::size_t p = start + kMagicLen;
  // <payload-bytes> — decimal, at least one digit.
  std::uint64_t len = 0;
  std::size_t digits = 0;
  while (p < data.size() && data[p] >= '0' && data[p] <= '9') {
    // A length this large is framing garbage, not a record; 10^12 also
    // cannot overflow below.
    if (len > 1000ull * 1000ull * 1000ull * 1000ull) return false;
    len = len * 10 + static_cast<std::uint64_t>(data[p] - '0');
    ++p;
    ++digits;
  }
  if (digits == 0 || p >= data.size() || data[p] != ' ') return false;
  ++p;
  // <crc32-hex> — exactly 8 lowercase hex digits.
  if (data.size() - p < 8) return false;
  std::uint32_t want_crc = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const char c = data[p + i];
    std::uint32_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
    want_crc = (want_crc << 4) | nibble;
  }
  p += 8;
  if (p >= data.size() || data[p] != '\n') return false;
  ++p;
  // <payload>\n
  if (data.size() - p < len + 1) return false;
  if (data[p + len] != '\n') return false;
  std::string body = data.substr(p, len);
  if (util::crc32(body) != want_crc) return false;
  payload = std::move(body);
  at = p + len + 1;
  return true;
}

}  // namespace

std::string frame_record(const std::string& payload) {
  std::string out = kMagic;
  out += std::to_string(payload.size());
  out += ' ';
  out += crc_hex(util::crc32(payload));
  out += '\n';
  out += payload;
  out += '\n';
  return out;
}

bool flush_and_sync(std::FILE* file) {
  if (file == nullptr) return false;
  if (std::fflush(file) != 0) return false;
#if !defined(_WIN32)
  if (::fsync(::fileno(file)) != 0) return false;
#endif
  return true;
}

JournalWriter::~JournalWriter() { close(); }

bool JournalWriter::open(const std::string& path, std::string* error) {
  close();
  failed_ = false;
  bytes_ = 0;
  since_sync_ = 0;
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    if (error != nullptr) {
      *error = "cannot open journal '" + path + "': " + std::strerror(errno);
    }
    return false;
  }
  // "ab" positions at EOF; ftell reports the pre-existing length so
  // bytes() is the absolute journal size.
  const long at = std::ftell(file_);
  bytes_ = at > 0 ? static_cast<std::uint64_t>(at) : 0;
  return true;
}

bool JournalWriter::append(const std::string& payload) {
  if (file_ == nullptr || failed_) return false;
  const std::string framed = frame_record(payload);
  if (std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size() ||
      std::fflush(file_) != 0) {
    failed_ = true;
    return false;
  }
  bytes_ += framed.size();
  ++since_sync_;
  if (sync_every_ > 0 && since_sync_ >= sync_every_) return sync();
  return true;
}

bool JournalWriter::sync() {
  if (file_ == nullptr || failed_) return false;
  since_sync_ = 0;
  if (!flush_and_sync(file_)) {
    failed_ = true;
    return false;
  }
  return true;
}

void JournalWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

JournalReadResult read_journal(const std::string& path) {
  JournalReadResult result;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    result.missing = errno == ENOENT;
    result.io_error = !result.missing;
    return result;
  }
  std::string data;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    data.append(buf, got);
  }
  const bool read_failed = std::ferror(file) != 0;
  std::fclose(file);
  if (read_failed) {
    result.io_error = true;
    return result;
  }

  std::size_t at = 0;
  std::string payload;
  while (at < data.size() && parse_record(data, at, payload)) {
    result.records.push_back(std::move(payload));
    payload.clear();
  }
  result.valid_bytes = at;
  result.dropped_bytes = data.size() - at;
  return result;
}

bool truncate_file(const std::string& path, std::uint64_t size) {
#if !defined(_WIN32)
  return ::truncate(path.c_str(), static_cast<off_t>(size)) == 0;
#else
  (void)path;
  (void)size;
  return false;
#endif
}

bool durable_replace(const std::string& tmp_path, const std::string& final_path,
                     std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    std::remove(tmp_path.c_str());
    return false;
  };
#if !defined(_WIN32)
  // fsync the data before the rename: rename-then-crash must never leave a
  // complete-looking name pointing at an incomplete file.
  {
    const int fd = ::open(tmp_path.c_str(), O_RDONLY);
    if (fd < 0) return fail("cannot reopen '" + tmp_path + "'");
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return fail("cannot sync '" + tmp_path + "'");
  }
#endif
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return fail("cannot rename '" + tmp_path + "' to '" + final_path + "'");
  }
#if !defined(_WIN32)
  // fsync the directory so the rename itself survives power loss.
  const std::size_t slash = final_path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : final_path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);  // best effort: some filesystems reject directory fsync
    ::close(fd);
  }
#endif
  return true;
}

}  // namespace dtn::harness
