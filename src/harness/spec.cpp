#include "harness/spec.hpp"

#include <cctype>
#include <memory>
#include <stdexcept>

#include "mobility/bus_movement.hpp"
#include "mobility/trace_playback.hpp"
#include "sim/world.hpp"

namespace dtn::harness {

int ScenarioSpec::node_count() const {
  int total = 0;
  for (const auto& g : groups) total += g.count;
  return total;
}

namespace {

[[noreturn]] void build_error(const GroupSpec& group, const std::string& what) {
  throw std::invalid_argument("group '" + group.name + "': " + what);
}

int community_classes(const ScenarioSpec& spec) {
  return spec.communities.count > 0 ? spec.communities.count : 1;
}

// ---- bus --------------------------------------------------------------------
// Route assignment is round-robin over the map's routes by group-local
// index; community = the route's district (the paper's setup). Matches the
// pre-spec BusScenarioParams path bit for bit when the spec has one bus
// group (enforced by harness_spec_equivalence_test).

void bus_assign_communities(const GroupBuildContext& ctx, const GroupSpec& group,
                            std::vector<int>& cid) {
  if (!ctx.map.network || ctx.map.network->routes.empty()) {
    build_error(group, "model 'bus' requires a map with routes (map.kind = downtown)");
  }
  const auto& routes = ctx.map.network->routes;
  for (int v = 0; v < group.count; ++v) {
    cid.push_back(routes[static_cast<std::size_t>(v) % routes.size()].district);
  }
}

void bus_add_nodes(sim::World& world, const GroupBuildContext& ctx,
                   const GroupSpec& group, const routing::ProtocolConfig& protocol) {
  if (ctx.map.routes.empty()) {
    build_error(group, "model 'bus' requires a map with routes (map.kind = downtown)");
  }
  for (int v = 0; v < group.count; ++v) {
    const std::size_t route_idx = static_cast<std::size_t>(v) % ctx.map.routes.size();
    // Spec-form add_node: the bus lane takes the route + params directly,
    // no per-node heap movement object.
    world.add_node(ctx.map.routes[route_idx], group.params.bus,
                   routing::create_router(protocol));
  }
}

// ---- community --------------------------------------------------------------
// The map extent is tiled into communities.count vertical bands; node v
// (group-local) belongs to band v % count (= round_robin_communities) and
// keeps its waypoints inside it with probability home_prob. Matches the
// pre-spec CommunityScenarioParams path bit for bit for a single group on
// an open-field map.

void community_add_nodes(sim::World& world, const GroupBuildContext& ctx,
                         const GroupSpec& group,
                         const routing::ProtocolConfig& protocol) {
  const int l = community_classes(ctx.spec);
  const double band =
      (ctx.map.world_max.x - ctx.map.world_min.x) / static_cast<double>(l);
  for (int v = 0; v < group.count; ++v) {
    const int c = v % l;
    mobility::CommunityMovementParams mp = group.params.community;
    mp.world_min = ctx.map.world_min;
    mp.world_max = ctx.map.world_max;
    mp.home_min = {ctx.map.world_min.x + band * c, ctx.map.world_min.y};
    mp.home_max = {ctx.map.world_min.x + band * (c + 1), ctx.map.world_max.y};
    world.add_node(mp, routing::create_router(protocol));
  }
}

// ---- random_waypoint --------------------------------------------------------
// Unstructured control: waypoints uniform over the whole map extent;
// communities round-robin (the model has no structure to derive them from).

void waypoint_add_nodes(sim::World& world, const GroupBuildContext& ctx,
                        const GroupSpec& group,
                        const routing::ProtocolConfig& protocol) {
  for (int v = 0; v < group.count; ++v) {
    mobility::RandomWaypointParams mp = group.params.waypoint;
    mp.world_min = ctx.map.world_min;
    mp.world_max = ctx.map.world_max;
    world.add_node(mp, routing::create_router(protocol));
  }
}

// ---- trace ------------------------------------------------------------------
// Node v (group-local) replays trace node v from the map's trace source.

void trace_add_nodes(sim::World& world, const GroupBuildContext& ctx,
                     const GroupSpec& group, const routing::ProtocolConfig& protocol) {
  if (!ctx.map.trace) {
    build_error(group, "model 'trace' requires map.kind = trace");
  }
  auto models = mobility::TracePlayback::from_trace(*ctx.map.trace);
  if (static_cast<int>(models.size()) < group.count) {
    build_error(group, "trace has " + std::to_string(models.size()) +
                           " nodes, group wants " + std::to_string(group.count));
  }
  for (int v = 0; v < group.count; ++v) {
    world.add_node(std::move(models[static_cast<std::size_t>(v)]),
                   routing::create_router(protocol));
  }
}

std::vector<GroupBuilder>& registry() {
  static std::vector<GroupBuilder> builders{
      {"bus", bus_assign_communities, bus_add_nodes,
       /*needs_routes=*/true, /*needs_trace=*/false},
      {"random_waypoint", round_robin_communities, waypoint_add_nodes,
       /*needs_routes=*/false, /*needs_trace=*/false},
      {"community", round_robin_communities, community_add_nodes,
       /*needs_routes=*/false, /*needs_trace=*/false},
      {"trace", round_robin_communities, trace_add_nodes,
       /*needs_routes=*/false, /*needs_trace=*/true},
  };
  return builders;
}

}  // namespace

void round_robin_communities(const GroupBuildContext& ctx, const GroupSpec& group,
                             std::vector<int>& cid) {
  const int l = community_classes(ctx.spec);
  for (int v = 0; v < group.count; ++v) cid.push_back(v % l);
}

const GroupBuilder* find_group_builder(const std::string& model) {
  for (const auto& b : registry()) {
    if (b.model == model) return &b;
  }
  return nullptr;
}

void register_group_builder(const GroupBuilder& builder) {
  for (auto& b : registry()) {
    if (b.model == builder.model) {
      b = builder;
      return;
    }
  }
  registry().push_back(builder);
}

void validate_spec(const ScenarioSpec& spec) {
  if (spec.groups.empty()) {
    throw std::invalid_argument("spec has no node groups (add group.<name>.model)");
  }
  if (!(spec.duration_s > 0.0)) {
    throw std::invalid_argument("scenario.duration must be > 0");
  }
  const geo::MapKindInfo* map_kind = geo::find_map_kind(spec.map.kind);
  if (map_kind == nullptr) {
    throw std::invalid_argument("unknown map kind '" + spec.map.kind + "'");
  }
  if (spec.communities.source != "auto" && spec.communities.source != "round_robin") {
    throw std::invalid_argument("communities.source must be 'auto' or 'round_robin'");
  }
  for (std::size_t i = 0; i < spec.groups.size(); ++i) {
    const GroupSpec& g = spec.groups[i];
    // Group names are config-key segments (group.<name>.<param>), so the
    // charset must keep the serialized form parseable.
    bool name_ok = !g.name.empty();
    for (const char c : g.name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-') {
        name_ok = false;
        break;
      }
    }
    if (!name_ok) {
      throw std::invalid_argument(
          "group name '" + g.name +
          "' must be non-empty letters/digits/'_'/'-' (it becomes a config key)");
    }
    if (g.count < 0) {
      throw std::invalid_argument("group '" + g.name + "': count must be >= 0");
    }
    const GroupBuilder* builder = find_group_builder(g.model);
    if (mobility::find_mobility_model(g.model) == nullptr || builder == nullptr) {
      throw std::invalid_argument("group '" + g.name + "': unknown mobility model '" +
                                  g.model + "'");
    }
    if (builder->needs_routes && !map_kind->provides_routes) {
      throw std::invalid_argument("group '" + g.name + "': model '" + g.model +
                                  "' requires a map with routes (map.kind = " +
                                  spec.map.kind + " has none)");
    }
    if (builder->needs_trace && !map_kind->provides_trace) {
      throw std::invalid_argument("group '" + g.name + "': model '" + g.model +
                                  "' requires map.kind = trace (map.kind = " +
                                  spec.map.kind + ")");
    }
    for (std::size_t j = i + 1; j < spec.groups.size(); ++j) {
      if (spec.groups[j].name == g.name) {
        throw std::invalid_argument("duplicate group name '" + g.name + "'");
      }
    }
  }
  if (spec.node_count() <= 0) {
    throw std::invalid_argument("spec has no nodes (set group.<name>.count)");
  }
  if (!routing::is_known_protocol(spec.protocol.name)) {
    throw std::invalid_argument("unknown protocol '" + spec.protocol.name + "'");
  }
}

}  // namespace dtn::harness
