#include "harness/spec.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "mobility/bus_movement.hpp"
#include "mobility/trace_playback.hpp"
#include "sim/world.hpp"
#include "util/value_parse.hpp"

namespace dtn::harness {

int ScenarioSpec::node_count() const {
  int total = 0;
  for (const auto& g : groups) total += g.count;
  return total;
}

namespace {

[[noreturn]] void build_error(const GroupSpec& group, const std::string& what) {
  throw std::invalid_argument("group '" + group.name + "': " + what);
}

int community_classes(const ScenarioSpec& spec) {
  return spec.communities.count > 0 ? spec.communities.count : 1;
}

// ---- bus --------------------------------------------------------------------
// Route assignment is round-robin over the map's routes by group-local
// index; community = the route's district (the paper's setup). Matches the
// pre-spec BusScenarioParams path bit for bit when the spec has one bus
// group (enforced by harness_spec_equivalence_test).

void bus_assign_communities(const GroupBuildContext& ctx, const GroupSpec& group,
                            std::vector<int>& cid) {
  if (!ctx.map.network || ctx.map.network->routes.empty()) {
    build_error(group, "model 'bus' requires a map with routes (map.kind = downtown)");
  }
  const auto& routes = ctx.map.network->routes;
  for (int v = 0; v < group.count; ++v) {
    cid.push_back(routes[static_cast<std::size_t>(v) % routes.size()].district);
  }
}

void bus_add_nodes(sim::World& world, const GroupBuildContext& ctx,
                   const GroupSpec& group) {
  if (ctx.map.routes.empty()) {
    build_error(group, "model 'bus' requires a map with routes (map.kind = downtown)");
  }
  for (int v = 0; v < group.count; ++v) {
    const std::size_t route_idx = static_cast<std::size_t>(v) % ctx.map.routes.size();
    // Spec-form add_node: the bus lane takes the route + params directly,
    // no per-node heap movement object.
    world.add_node(ctx.map.routes[route_idx], group.params.bus, ctx.make_router());
  }
}

// ---- community --------------------------------------------------------------
// The map extent is tiled into communities.count vertical bands; node v
// (group-local) belongs to band v % count (= round_robin_communities) and
// keeps its waypoints inside it with probability home_prob. Matches the
// pre-spec CommunityScenarioParams path bit for bit for a single group on
// an open-field map.

void community_add_nodes(sim::World& world, const GroupBuildContext& ctx,
                         const GroupSpec& group) {
  const int l = community_classes(ctx.spec);
  const double band =
      (ctx.map.world_max.x - ctx.map.world_min.x) / static_cast<double>(l);
  for (int v = 0; v < group.count; ++v) {
    const int c = v % l;
    mobility::CommunityMovementParams mp = group.params.community;
    mp.world_min = ctx.map.world_min;
    mp.world_max = ctx.map.world_max;
    mp.home_min = {ctx.map.world_min.x + band * c, ctx.map.world_min.y};
    mp.home_max = {ctx.map.world_min.x + band * (c + 1), ctx.map.world_max.y};
    world.add_node(mp, ctx.make_router());
  }
}

// ---- random_waypoint --------------------------------------------------------
// Unstructured control: waypoints uniform over the whole map extent;
// communities round-robin (the model has no structure to derive them from).

void waypoint_add_nodes(sim::World& world, const GroupBuildContext& ctx,
                        const GroupSpec& group) {
  for (int v = 0; v < group.count; ++v) {
    mobility::RandomWaypointParams mp = group.params.waypoint;
    mp.world_min = ctx.map.world_min;
    mp.world_max = ctx.map.world_max;
    world.add_node(mp, ctx.make_router());
  }
}

// ---- stationary -------------------------------------------------------------
// Infrastructure relays: fixed nodes over the map extent. `grid` placement
// is deterministic (row-major on a near-square grid inset by `margin`), so
// the same spec puts relays in the same spots at every seed; `uniform`
// placement draws each node's position from its own movement stream at
// init, so positions vary per seed like every other model's trajectories.
// Stationary nodes cost nothing in the movement step loop (dedicated
// engine lane that step_all never visits).

void stationary_validate(const GroupSpec& group) {
  const std::string& placement = group.params.stationary.placement;
  // The parser vets this per key (stationary_set), but a programmatic spec
  // skips the parser; without this check a typo would silently run as grid
  // and then serialize into a config load_spec rejects.
  if (placement != "grid" && placement != "uniform") {
    build_error(group, "stationary placement must be 'grid' or 'uniform' (got '" +
                           placement + "')");
  }
  // An oversized margin collapses to the extent's center line by design,
  // but a negative one is a sign slip that would silently clamp to 0.
  if (group.params.stationary.margin < 0.0) {
    build_error(group, "stationary margin must be >= 0");
  }
}

void stationary_add_nodes(sim::World& world, const GroupBuildContext& ctx,
                          const GroupSpec& group) {
  const mobility::StationaryParams& p = group.params.stationary;
  geo::Vec2 lo = ctx.map.world_min;
  geo::Vec2 hi = ctx.map.world_max;
  // Inset by the margin where the extent allows it; a margin that would
  // invert the rectangle collapses to the extent's center line instead.
  const double inset_x = std::clamp(p.margin, 0.0, (hi.x - lo.x) / 2.0);
  const double inset_y = std::clamp(p.margin, 0.0, (hi.y - lo.y) / 2.0);
  lo.x += inset_x;
  hi.x -= inset_x;
  lo.y += inset_y;
  hi.y -= inset_y;
  if (p.placement == "uniform") {
    mobility::StationaryNodeSpec spec;
    spec.uniform = true;
    spec.area_min = lo;
    spec.area_max = hi;
    for (int v = 0; v < group.count; ++v) world.add_node(spec, ctx.make_router());
    return;
  }
  // grid: row-major over a near-square cols x rows layout, cell centers.
  const int cols = std::max(1, static_cast<int>(std::ceil(
                                   std::sqrt(static_cast<double>(group.count)))));
  const int rows = std::max(1, (group.count + cols - 1) / cols);
  for (int v = 0; v < group.count; ++v) {
    const int col = v % cols;
    const int row = v / cols;
    mobility::StationaryNodeSpec spec;
    spec.pos = {lo.x + (hi.x - lo.x) * ((col + 0.5) / cols),
                lo.y + (hi.y - lo.y) * ((row + 0.5) / rows)};
    world.add_node(spec, ctx.make_router());
  }
}

// ---- trace ------------------------------------------------------------------
// Node v (group-local) replays trace node v from the map's trace source.

void trace_add_nodes(sim::World& world, const GroupBuildContext& ctx,
                     const GroupSpec& group) {
  if (!ctx.map.trace) {
    build_error(group, "model 'trace' requires map.kind = trace");
  }
  auto models = mobility::TracePlayback::from_trace(*ctx.map.trace);
  if (static_cast<int>(models.size()) < group.count) {
    build_error(group, "trace has " + std::to_string(models.size()) +
                           " nodes, group wants " + std::to_string(group.count));
  }
  for (int v = 0; v < group.count; ++v) {
    world.add_node(std::move(models[static_cast<std::size_t>(v)]), ctx.make_router());
  }
}

/// The traffic section of validate_spec: interval/size/ttl/window sanity
/// for the scalar knobs and every matrix entry, profile parameters, and
/// matrix entries naming real groups. Pre-spec these were never checked —
/// a reversed interval fed Pcg32::uniform a backwards range silently.
void validate_traffic(const ScenarioSpec& spec) {
  const sim::TrafficParams& t = spec.traffic;
  auto check_intervals = [](const std::string& prefix, double lo, double hi) {
    if (lo < 0.0) {
      throw std::invalid_argument(prefix + "interval_min must be >= 0 (got " +
                                  util::format_value(lo) + ")");
    }
    if (!(hi > 0.0)) {
      throw std::invalid_argument(prefix + "interval_max must be > 0 (got " +
                                  util::format_value(hi) + ")");
    }
    if (lo > hi) {
      throw std::invalid_argument(prefix + "interval_min (" + util::format_value(lo) +
                                  ") must be <= " + prefix + "interval_max (" +
                                  util::format_value(hi) + ")");
    }
  };
  check_intervals("traffic.", t.interval_min, t.interval_max);
  if (!(t.ttl > 0.0)) {
    throw std::invalid_argument("traffic.ttl must be > 0 (got " +
                                util::format_value(t.ttl) + ")");
  }
  if (t.size_bytes <= 0) {
    throw std::invalid_argument("traffic.size_bytes must be > 0 (got " +
                                util::format_value(t.size_bytes) + ")");
  }
  if (t.start > t.stop) {
    throw std::invalid_argument("traffic.start (" + util::format_value(t.start) +
                                ") must be <= traffic.stop (" +
                                util::format_value(t.stop) + ")");
  }
  if (spec.full_ttl_window && t.ttl >= spec.duration_s) {
    // Pre-fix this silently produced a negative creation window and a run
    // with zero messages (delivery_ratio = 0 with no hint why).
    throw std::invalid_argument(
        "scenario.full_ttl_window with traffic.ttl (" + util::format_value(t.ttl) +
        ") >= scenario.duration (" + util::format_value(spec.duration_s) +
        ") leaves no creation window — lower the TTL, extend the run, or set "
        "scenario.full_ttl_window = false");
  }
  if (t.profile == sim::TrafficProfile::kOnOff) {
    if (!(t.on_s > 0.0)) {
      throw std::invalid_argument("traffic.profile = onoff requires traffic.on > 0");
    }
    if (t.off_s < 0.0) {
      throw std::invalid_argument("traffic.off must be >= 0 (got " +
                                  util::format_value(t.off_s) + ")");
    }
  }
  if (t.profile == sim::TrafficProfile::kDiurnal && !(t.period_s > 0.0)) {
    throw std::invalid_argument("traffic.profile = diurnal requires traffic.period > 0");
  }
  if (t.profile == sim::TrafficProfile::kTrace) {
    if (spec.traffic_file.empty()) {
      throw std::invalid_argument("traffic.profile = trace requires traffic.file");
    }
    if (!spec.traffic_matrix.empty()) {
      throw std::invalid_argument(
          "traffic.profile = trace replays traffic.file verbatim and cannot be "
          "combined with traffic.<src>.<dst> matrix entries");
    }
  }
  for (std::size_t i = 0; i < spec.traffic_matrix.size(); ++i) {
    const TrafficEntrySpec& e = spec.traffic_matrix[i];
    const std::string prefix = "traffic." + e.src + "." + e.dst + ".";
    for (const std::string* name : {&e.src, &e.dst}) {
      bool known = false;
      for (const auto& g : spec.groups) known = known || g.name == *name;
      if (!known) {
        throw std::invalid_argument("traffic." + e.src + "." + e.dst +
                                    ": unknown group '" + *name + "'");
      }
    }
    check_intervals(prefix, e.interval_min, e.interval_max);
    if (e.size_bytes <= 0) {
      throw std::invalid_argument(prefix + "size_bytes must be > 0 (got " +
                                  util::format_value(e.size_bytes) + ")");
    }
    if (!(e.weight > 0.0)) {
      throw std::invalid_argument(prefix + "weight must be > 0 (got " +
                                  util::format_value(e.weight) + ")");
    }
    for (std::size_t j = i + 1; j < spec.traffic_matrix.size(); ++j) {
      if (spec.traffic_matrix[j].src == e.src && spec.traffic_matrix[j].dst == e.dst) {
        throw std::invalid_argument("duplicate traffic matrix entry traffic." +
                                    e.src + "." + e.dst);
      }
    }
  }
}

std::vector<GroupBuilder>& registry() {
  static std::vector<GroupBuilder> builders{
      {"bus", bus_assign_communities, bus_add_nodes,
       /*needs_routes=*/true, /*needs_trace=*/false},
      {"random_waypoint", round_robin_communities, waypoint_add_nodes,
       /*needs_routes=*/false, /*needs_trace=*/false},
      {"community", round_robin_communities, community_add_nodes,
       /*needs_routes=*/false, /*needs_trace=*/false},
      {"trace", round_robin_communities, trace_add_nodes,
       /*needs_routes=*/false, /*needs_trace=*/true},
      {"stationary", round_robin_communities, stationary_add_nodes,
       /*needs_routes=*/false, /*needs_trace=*/false, stationary_validate},
  };
  return builders;
}

}  // namespace

void round_robin_communities(const GroupBuildContext& ctx, const GroupSpec& group,
                             std::vector<int>& cid) {
  const int l = community_classes(ctx.spec);
  for (int v = 0; v < group.count; ++v) cid.push_back(v % l);
}

std::vector<std::string> community_source_names() {
  return {"auto", "round_robin", "detected"};
}

std::string community_source_list() {
  std::string joined;
  for (const auto& s : community_source_names()) {
    if (!joined.empty()) joined += " | ";
    joined += s;
  }
  return joined;
}

std::vector<std::string> traffic_profile_names() {
  return {"uniform", "onoff", "diurnal", "trace"};
}

std::string traffic_profile_list() {
  std::string joined;
  for (const auto& s : traffic_profile_names()) {
    if (!joined.empty()) joined += " | ";
    joined += s;
  }
  return joined;
}

bool parse_traffic_profile(const std::string& name, sim::TrafficProfile& out) {
  if (name == "uniform") {
    out = sim::TrafficProfile::kUniform;
  } else if (name == "onoff") {
    out = sim::TrafficProfile::kOnOff;
  } else if (name == "diurnal") {
    out = sim::TrafficProfile::kDiurnal;
  } else if (name == "trace") {
    out = sim::TrafficProfile::kTrace;
  } else {
    return false;
  }
  return true;
}

std::string traffic_profile_name(sim::TrafficProfile profile) {
  switch (profile) {
    case sim::TrafficProfile::kUniform:
      return "uniform";
    case sim::TrafficProfile::kOnOff:
      return "onoff";
    case sim::TrafficProfile::kDiurnal:
      return "diurnal";
    case sim::TrafficProfile::kTrace:
      return "trace";
  }
  return "uniform";
}

routing::ProtocolConfig resolved_protocol(const ScenarioSpec& spec,
                                          const GroupSpec& group) {
  routing::ProtocolConfig protocol = spec.protocol;
  if (!group.protocol.empty()) protocol.name = group.protocol;
  return protocol;
}

const GroupBuilder* find_group_builder(const std::string& model) {
  for (const auto& b : registry()) {
    if (b.model == model) return &b;
  }
  return nullptr;
}

void register_group_builder(const GroupBuilder& builder) {
  for (auto& b : registry()) {
    if (b.model == builder.model) {
      b = builder;
      return;
    }
  }
  registry().push_back(builder);
}

void validate_spec(const ScenarioSpec& spec) {
  if (spec.groups.empty()) {
    throw std::invalid_argument("spec has no node groups (add group.<name>.model)");
  }
  if (!(spec.duration_s > 0.0)) {
    throw std::invalid_argument("scenario.duration must be > 0");
  }
  const geo::MapKindInfo* map_kind = geo::find_map_kind(spec.map.kind);
  if (map_kind == nullptr) {
    throw std::invalid_argument("unknown map kind '" + spec.map.kind + "'");
  }
  const std::vector<std::string> sources = community_source_names();
  if (std::find(sources.begin(), sources.end(), spec.communities.source) ==
      sources.end()) {
    throw std::invalid_argument("communities.source must be one of: " +
                                community_source_list());
  }
  if (spec.communities.source == "detected" && !(spec.communities.warmup_s > 0.0)) {
    throw std::invalid_argument(
        "communities.source = detected requires communities.warmup > 0");
  }
  for (std::size_t i = 0; i < spec.groups.size(); ++i) {
    const GroupSpec& g = spec.groups[i];
    // Group names are config-key segments (group.<name>.<param>), so the
    // charset must keep the serialized form parseable.
    bool name_ok = !g.name.empty();
    for (const char c : g.name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-') {
        name_ok = false;
        break;
      }
    }
    if (!name_ok) {
      throw std::invalid_argument(
          "group name '" + g.name +
          "' must be non-empty letters/digits/'_'/'-' (it becomes a config key)");
    }
    if (g.count < 0) {
      throw std::invalid_argument("group '" + g.name + "': count must be >= 0");
    }
    const GroupBuilder* builder = find_group_builder(g.model);
    if (mobility::find_mobility_model(g.model) == nullptr || builder == nullptr) {
      throw std::invalid_argument("group '" + g.name + "': unknown mobility model '" +
                                  g.model + "'");
    }
    if (builder->needs_routes && !map_kind->provides_routes) {
      throw std::invalid_argument("group '" + g.name + "': model '" + g.model +
                                  "' requires a map with routes (map.kind = " +
                                  spec.map.kind + " has none)");
    }
    if (builder->needs_trace && !map_kind->provides_trace) {
      throw std::invalid_argument("group '" + g.name + "': model '" + g.model +
                                  "' requires map.kind = trace (map.kind = " +
                                  spec.map.kind + ")");
    }
    if (builder->validate != nullptr) builder->validate(g);
    if (!g.protocol.empty() && !routing::is_known_protocol(g.protocol)) {
      throw std::invalid_argument("group '" + g.name + "': unknown protocol '" +
                                  g.protocol + "'");
    }
    for (std::size_t j = i + 1; j < spec.groups.size(); ++j) {
      if (spec.groups[j].name == g.name) {
        throw std::invalid_argument("duplicate group name '" + g.name + "'");
      }
    }
  }
  if (spec.node_count() <= 0) {
    throw std::invalid_argument("spec has no nodes (set group.<name>.count)");
  }
  if (!routing::is_known_protocol(spec.protocol.name)) {
    throw std::invalid_argument("unknown protocol '" + spec.protocol.name + "'");
  }
  validate_traffic(spec);
}

}  // namespace dtn::harness
