// Append-only crash-safe record journal — the durability backbone of
// `dtnsim sweep` campaigns (harness/sweep.hpp) and, later, the sharded
// `dtnsim serve` fabric.
//
// File format ("dtnsim-journal/1"): a flat sequence of self-delimiting,
// individually checksummed records. Each record is framed as
//
//   %DTNJ1 <payload-bytes> <crc32-hex>\n
//   <payload bytes>\n
//
// where <crc32-hex> is the lowercase CRC-32 (util/checksum.hpp) of the
// payload bytes. Payloads are arbitrary bytes chosen by the layer above
// (the sweep engine writes line-oriented text; see sweep.cpp); the journal
// itself interprets nothing. The first record of a file is conventionally
// a campaign-identity payload that readers validate before trusting the
// rest (the sweep engine stores its campaign fingerprint there).
//
// Recovery contract: read_journal() returns the longest valid prefix. The
// first record that is truncated, mis-framed, or fails its checksum ends
// the replay — it and everything after it are reported as a dropped tail
// (bytes + whether any payload data was lost), NEVER as an error. A torn
// final write (the canonical crash shape: the process died mid-fwrite or
// the page cache lost the unsynced tail) therefore costs at most the
// records that had not reached the disk, and a bit flip inside the file
// costs the records from the flip onward; both are recomputable. The
// journal_property_test pins this at every byte offset.
//
// Durability: append() buffers through stdio, flushes every record to the
// OS (surviving process death), and fsync()s every `sync_every` records
// (surviving power loss). durable_replace() is the shared fsync'd
// tmp+rename used for final results files: flush + fsync the temp file,
// rename, then fsync the containing directory so the rename itself is on
// disk — the PR 5 tmp+rename path never synced either.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dtn::harness {

/// Appends framed, checksummed records to a journal file. Not thread-safe;
/// callers serialize (the sweep engine holds one mutex per journal).
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens `path` for appending (creating it if absent). On failure
  /// returns false and fills `error`. An already-open writer is closed
  /// first.
  bool open(const std::string& path, std::string* error);

  /// Frames `payload`, appends it, flushes to the OS, and fsyncs when the
  /// record cadence says so. Returns false on write failure (disk full —
  /// the journal is then unusable and stays failed).
  bool append(const std::string& payload);

  /// Records between fsyncs: 1 (default) = every record survives power
  /// loss; N = at most the last N records ride on the page cache; 0 =
  /// never fsync (records still survive process death via the flush).
  void set_sync_every(int records) { sync_every_ = records; }

  /// Forces an fsync of everything appended so far.
  bool sync();

  /// Bytes appended by THIS writer plus the size the file had at open —
  /// i.e. the current journal length (used by fault plans keyed on byte
  /// offset).
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

  [[nodiscard]] bool is_open() const noexcept { return file_ != nullptr; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  void close();

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t bytes_ = 0;
  int sync_every_ = 1;
  int since_sync_ = 0;
  bool failed_ = false;
};

/// Result of replaying a journal file: the payloads of the longest valid
/// record prefix, plus what (if anything) was dropped behind it.
struct JournalReadResult {
  std::vector<std::string> records;   ///< valid payloads, file order
  std::uint64_t valid_bytes = 0;      ///< length of the intact prefix
  std::uint64_t dropped_bytes = 0;    ///< bytes after the intact prefix
  bool missing = false;               ///< file does not exist (empty result)
  bool io_error = false;              ///< file exists but could not be read
  /// True when the dropped tail contained at least one non-empty byte
  /// run — i.e. data was actually lost, not just a clean EOF.
  [[nodiscard]] bool tail_dropped() const noexcept { return dropped_bytes > 0; }
};

/// Reads every valid record of `path` (see the recovery contract above).
/// A missing file yields `missing = true` with no records — resuming a
/// campaign that never started is just starting it.
JournalReadResult read_journal(const std::string& path);

/// Frames one record as written by JournalWriter (exposed for tests that
/// build journals by hand).
std::string frame_record(const std::string& payload);

/// Atomically replaces `final_path` with the fully-written `tmp_path`:
/// fsync(tmp) -> rename(tmp, final) -> fsync(parent dir). Returns false
/// (and removes tmp) on any failure. This is the crash-safe publish step
/// for results files; without the directory sync a power loss after
/// rename() can resurrect the old file.
bool durable_replace(const std::string& tmp_path, const std::string& final_path,
                     std::string* error);

/// fsyncs an open stdio stream (fflush + fsync). Exposed for the writer
/// and durable_replace; returns false on failure.
bool flush_and_sync(std::FILE* file);

/// Truncates `path` to exactly `size` bytes. The resume path cuts a
/// corrupt/truncated tail down to the valid prefix BEFORE appending new
/// records — appending after garbage would put the new records behind the
/// reader's valid-prefix stop and silently lose them on the next resume.
bool truncate_file(const std::string& path, std::uint64_t size);

}  // namespace dtn::harness
