#include "harness/remote.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/spec_io.hpp"
#include "util/checksum.hpp"
#include "util/value_parse.hpp"

namespace dtn::harness {

namespace {

std::string hex_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

bool parse_hex_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return std::string(buf);
}

bool parse_crc_hex(const std::string& text, std::uint32_t* out) {
  if (text.size() != 8) return false;
  std::uint32_t value = 0;
  for (char c : text) {
    std::uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t at = 0;
  while (at < text.size()) {
    std::size_t nl = text.find('\n', at);
    if (nl == std::string::npos) nl = text.size();
    lines.push_back(text.substr(at, nl - at));
    at = nl + 1;
  }
  return lines;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t at = 0;
  while (at < line.size()) {
    std::size_t sp = line.find(' ', at);
    if (sp == std::string::npos) sp = line.size();
    if (sp > at) fields.push_back(line.substr(at, sp - at));
    at = sp + 1;
  }
  return fields;
}

bool parse_bool_field(const std::string& value, bool* out) {
  if (value == "0") {
    *out = false;
  } else if (value == "1") {
    *out = true;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string serialize_sweep_hello(const std::string& fingerprint) {
  std::string out = "hello ";
  out += kServeProtocolVersion;
  out += "\nfingerprint " + std::to_string(fingerprint.size()) + " " +
         crc_hex(util::crc32(fingerprint)) + "\n";
  return out;
}

bool parse_sweep_hello(const std::string& payload, std::uint64_t* fp_len,
                       std::uint32_t* fp_crc, std::string* error) {
  const std::vector<std::string> lines = split_lines(payload);
  if (lines.size() < 2 || lines[0] != std::string("hello ") + kServeProtocolVersion) {
    if (error) {
      *error = lines.empty() ? "empty HELLO payload"
                             : "unsupported HELLO '" + lines[0] + "' (want " +
                                   kServeProtocolVersion + ")";
    }
    return false;
  }
  const std::vector<std::string> fields = split_fields(lines[1]);
  if (fields.size() != 3 || fields[0] != "fingerprint" ||
      !util::parse_value(fields[1], *fp_len) ||
      !parse_crc_hex(fields[2], fp_crc)) {
    if (error) *error = "malformed HELLO fingerprint line";
    return false;
  }
  return true;
}

std::string serialize_sweep_assignment(const SpecSweepOptions& options) {
  std::string out = "assign ";
  out += kServeProtocolVersion;
  out += "\nseeds=" + std::to_string(options.seeds) +
         " seed_base=" + util::format_value(options.seed_base) +
         " shard=" + std::to_string(options.shard_index) + "/" +
         std::to_string(options.shard_count) +
         " resume=" + (options.resume ? "1" : "0") +
         " isolate=" + (options.isolate_failures ? "1" : "0") +
         " retries=" + std::to_string(options.retries) +
         " sync_every=" + std::to_string(options.sync_every) +
         " point_timeout=" + hex_double(options.point_timeout_s) + "\n";
  for (const auto& axis : options.axes) {
    out += "axis " + axis.key + " =";
    for (const auto& value : axis.values) {
      out += '\x1f';
      out += value;
    }
    out += "\n";
  }
  out += "spec\n";
  out += to_config(options.base);
  return out;
}

bool parse_sweep_assignment(const std::string& payload, SpecSweepOptions* out,
                            std::string* error) {
  *out = SpecSweepOptions{};
  const std::vector<std::string> lines = split_lines(payload);
  if (lines.empty() || lines[0] != std::string("assign ") + kServeProtocolVersion) {
    if (error) {
      *error = lines.empty() ? "empty ASSIGN payload"
                             : "unsupported ASSIGN '" + lines[0] + "' (want " +
                                   kServeProtocolVersion + ")";
    }
    return false;
  }
  if (lines.size() < 2) {
    if (error) *error = "ASSIGN missing the campaign parameter line";
    return false;
  }
  for (const std::string& field : split_fields(lines[1])) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      if (error) *error = "malformed ASSIGN field '" + field + "'";
      return false;
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    bool ok = true;
    std::int64_t num = 0;
    if (key == "seeds") {
      ok = util::parse_value(value, num) && num >= 0;
      out->seeds = static_cast<int>(num);
    } else if (key == "seed_base") {
      ok = util::parse_value(value, out->seed_base);
    } else if (key == "shard") {
      const std::size_t slash = value.find('/');
      std::int64_t index = -1;
      std::int64_t count = 0;
      ok = slash != std::string::npos &&
           util::parse_value(value.substr(0, slash), index) &&
           util::parse_value(value.substr(slash + 1), count) && index >= 0 &&
           count >= 1 && index < count;
      out->shard_index = static_cast<std::size_t>(index);
      out->shard_count = static_cast<std::size_t>(count);
    } else if (key == "resume") {
      ok = parse_bool_field(value, &out->resume);
    } else if (key == "isolate") {
      ok = parse_bool_field(value, &out->isolate_failures);
    } else if (key == "retries") {
      ok = util::parse_value(value, num) && num >= 0;
      out->retries = static_cast<int>(num);
    } else if (key == "sync_every") {
      ok = util::parse_value(value, num) && num >= 0;
      out->sync_every = static_cast<int>(num);
    } else if (key == "point_timeout") {
      ok = parse_hex_double(value, &out->point_timeout_s);
    } else {
      ok = false;  // strict for /1: unknown fields are foreign
    }
    if (!ok) {
      if (error) *error = "malformed ASSIGN field '" + field + "'";
      return false;
    }
  }
  std::size_t at = 2;
  for (; at < lines.size() && lines[at].rfind("axis ", 0) == 0; ++at) {
    const std::string rest = lines[at].substr(5);
    const std::size_t sp = rest.find(' ');
    if (sp == std::string::npos || sp + 1 >= rest.size() ||
        rest[sp + 1] != '=') {
      if (error) *error = "malformed ASSIGN axis line '" + lines[at] + "'";
      return false;
    }
    SweepAxis axis;
    axis.key = rest.substr(0, sp);
    const std::string joined = rest.substr(sp + 2);  // \x1f-joined values
    std::size_t v = 0;
    while (v < joined.size()) {
      if (joined[v] != '\x1f') {
        if (error) *error = "malformed ASSIGN axis line '" + lines[at] + "'";
        return false;
      }
      std::size_t next = joined.find('\x1f', v + 1);
      if (next == std::string::npos) next = joined.size();
      axis.values.push_back(joined.substr(v + 1, next - v - 1));
      v = next;
    }
    out->axes.push_back(std::move(axis));
  }
  if (at >= lines.size() || lines[at] != "spec") {
    if (error) *error = "ASSIGN missing the spec section";
    return false;
  }
  std::string config;
  for (std::size_t l = at + 1; l < lines.size(); ++l) {
    config += lines[l];
    config += '\n';
  }
  try {
    out->base = parse_spec(config);
  } catch (const SpecError& e) {
    if (error) *error = std::string("ASSIGN spec does not parse: ") + e.what();
    return false;
  }
  return true;
}

std::string serialize_sweep_progress(std::uint64_t records, std::uint64_t bytes) {
  return "progress " + std::to_string(records) + " " + std::to_string(bytes);
}

bool parse_sweep_progress(const std::string& payload, std::uint64_t* records,
                          std::uint64_t* bytes) {
  const std::vector<std::string> fields = split_fields(payload);
  return fields.size() == 3 && fields[0] == "progress" &&
         util::parse_value(fields[1], *records) &&
         util::parse_value(fields[2], *bytes);
}

ShardJournalState audit_shard_journal(const SpecSweepOptions& options,
                                      std::size_t shard_index,
                                      std::size_t shard_count,
                                      const std::string& path) {
  // Reuse the merge path's strict parsing and fingerprint validation: a
  // point the merge would accept is exactly a point a reassignment may
  // skip. merge_sweep_journals marks recorded points resumed = true and
  // degrades unrecorded ones to failed-with-reason (resumed = false).
  std::vector<SpecPointResult> merged;
  try {
    merged = merge_sweep_journals(options, {path});
  } catch (const SweepJournalError& e) {
    return std::string(e.what()).find("different campaign") != std::string::npos
               ? ShardJournalState::kForeign
               : ShardJournalState::kPartial;
  }
  for (std::size_t p = 0; p < merged.size(); ++p) {
    if (p % shard_count != shard_index) continue;
    // "Complete" must mean what a resume would make of it: resume retries
    // failed points, so a shard with failed records still needs a worker.
    if (!merged[p].exec.resumed || !merged[p].exec.ok()) {
      return ShardJournalState::kPartial;
    }
  }
  return ShardJournalState::kComplete;
}

}  // namespace dtn::harness
