#include "harness/spec_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/value_parse.hpp"

namespace dtn::harness {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

/// Edit distance for "did you mean" suggestions (small strings only).
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t prev = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         prev + (a[i - 1] == b[j - 1] ? 0 : 1)});
      prev = up;
    }
  }
  return row[b.size()];
}

std::string suggestion_for(const ScenarioSpec& spec, const std::string& key) {
  std::string best;
  std::size_t best_dist = 3;  // suggest only close misses
  for (const auto& candidate : spec_key_names(spec)) {
    const std::size_t d = edit_distance(key, candidate);
    if (d < best_dist) {
      best_dist = d;
      best = candidate;
    }
  }
  return best.empty() ? "" : " (did you mean '" + best + "'?)";
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

template <typename T>
std::string set_num(T& field, const std::string& key, const std::string& value) {
  T v{};
  if (!util::parse_value(value, v)) {
    return "bad value '" + value + "' for " + key;
  }
  field = v;
  return "";
}

std::string scenario_key(ScenarioSpec& spec, const std::string& key,
                         const std::string& value) {
  if (key == "name") {
    spec.name = value;
    return "";
  }
  if (key == "duration") return set_num(spec.duration_s, "scenario.duration", value);
  if (key == "seed") return set_num(spec.seed, "scenario.seed", value);
  if (key == "full_ttl_window") {
    return set_num(spec.full_ttl_window, "scenario.full_ttl_window", value);
  }
  if (key == "nodes") {
    // Convenience alias for single-group scenarios (the common sweep axis).
    if (spec.groups.size() != 1) {
      return "scenario.nodes requires exactly one group (have " +
             std::to_string(spec.groups.size()) + "); set group.<name>.count instead";
    }
    return set_num(spec.groups[0].count, "scenario.nodes", value);
  }
  return std::string("__unknown__");
}

std::string map_key(ScenarioSpec& spec, const std::string& key, const std::string& value) {
  if (key == "kind") {
    if (geo::find_map_kind(value) == nullptr) {
      return "unknown map kind '" + value + "' (known: " + join_names(geo::map_kind_names()) +
             ")";
    }
    spec.map.kind = value;
    return "";
  }
  const auto* kind = geo::find_map_kind(spec.map.kind);
  if (kind == nullptr) {
    return "map.kind '" + spec.map.kind + "' is not registered";
  }
  switch (kind->set(spec.map.params, key, value)) {
    case util::KvResult::kOk:
      return "";
    case util::KvResult::kBadValue:
      return "bad value '" + value + "' for map." + key;
    case util::KvResult::kUnknownKey:
      break;
  }
  std::vector<std::pair<std::string, std::string>> kv;
  kind->emit(spec.map.params, kv);
  std::vector<std::string> names;
  for (const auto& [k, v] : kv) names.push_back(k);
  return "unknown key 'map." + key + "' for map kind '" + spec.map.kind +
         "' (known: " + join_names(names) + ")";
}

std::string world_key(ScenarioSpec& spec, const std::string& key,
                      const std::string& value) {
  sim::WorldConfig& w = spec.world;
  if (key == "step_dt") return set_num(w.step_dt, "world.step_dt", value);
  if (key == "radio_range") return set_num(w.radio_range, "world.radio_range", value);
  if (key == "bitrate_bps") return set_num(w.bitrate_bps, "world.bitrate_bps", value);
  if (key == "buffer_bytes") return set_num(w.buffer_bytes, "world.buffer_bytes", value);
  if (key == "ttl_sweep_interval") {
    return set_num(w.ttl_sweep_interval, "world.ttl_sweep_interval", value);
  }
  if (key == "legacy_contact_path") {
    return set_num(w.legacy_contact_path, "world.legacy_contact_path", value);
  }
  if (key == "legacy_buffer_path") {
    return set_num(w.legacy_buffer_path, "world.legacy_buffer_path", value);
  }
  if (key == "legacy_movement_path") {
    return set_num(w.legacy_movement_path, "world.legacy_movement_path", value);
  }
  if (key == "legacy_pair_sweep") {
    return set_num(w.legacy_pair_sweep, "world.legacy_pair_sweep", value);
  }
  if (key == "event_kernel") {
    return set_num(w.event_kernel, "world.event_kernel", value);
  }
  return std::string("__unknown__");
}

std::string traffic_key(ScenarioSpec& spec, const std::string& key,
                        const std::string& value) {
  sim::TrafficParams& t = spec.traffic;
  if (key == "interval_min") return set_num(t.interval_min, "traffic.interval_min", value);
  if (key == "interval_max") return set_num(t.interval_max, "traffic.interval_max", value);
  if (key == "start") return set_num(t.start, "traffic.start", value);
  if (key == "stop") return set_num(t.stop, "traffic.stop", value);
  if (key == "size_bytes") return set_num(t.size_bytes, "traffic.size_bytes", value);
  if (key == "ttl") return set_num(t.ttl, "traffic.ttl", value);
  if (key == "profile") {
    if (!parse_traffic_profile(value, t.profile)) {
      return "bad value '" + value + "' for traffic.profile (" +
             traffic_profile_list() + ")";
    }
    return "";
  }
  if (key == "on") return set_num(t.on_s, "traffic.on", value);
  if (key == "off") return set_num(t.off_s, "traffic.off", value);
  if (key == "period") return set_num(t.period_s, "traffic.period", value);
  if (key == "phase") return set_num(t.phase_s, "traffic.phase", value);
  if (key == "file") {
    spec.traffic_file = value;
    return "";
  }
  // Matrix entries: traffic.<src>.<dst>.<param>. Group names are vetted by
  // validate_spec, not here — the canonical form serializes the traffic
  // section before any group declaration.
  const auto d1 = key.find('.');
  const auto d2 = d1 == std::string::npos ? std::string::npos : key.find('.', d1 + 1);
  if (d2 == std::string::npos || d1 == 0 || d2 == d1 + 1 || d2 + 1 == key.size()) {
    return std::string("__unknown__");
  }
  const std::string src = key.substr(0, d1);
  const std::string dst = key.substr(d1 + 1, d2 - d1 - 1);
  const std::string param = key.substr(d2 + 1);
  if (param != "interval_min" && param != "interval_max" && param != "size_bytes" &&
      param != "weight") {
    // Vet the param BEFORE find-or-create so a typo cannot leave a stray
    // entry behind in the spec.
    return "unknown key 'traffic." + key +
           "' (matrix entry keys: interval_min, interval_max, size_bytes, weight)";
  }
  TrafficEntrySpec* entry = nullptr;
  for (auto& e : spec.traffic_matrix) {
    if (e.src == src && e.dst == dst) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    TrafficEntrySpec e;
    e.src = src;
    e.dst = dst;
    spec.traffic_matrix.push_back(std::move(e));
    entry = &spec.traffic_matrix.back();
  }
  const std::string full = "traffic." + key;
  if (param == "interval_min") return set_num(entry->interval_min, full, value);
  if (param == "interval_max") return set_num(entry->interval_max, full, value);
  if (param == "size_bytes") return set_num(entry->size_bytes, full, value);
  return set_num(entry->weight, full, value);
}

std::string protocol_key(ScenarioSpec& spec, const std::string& key,
                         const std::string& value) {
  routing::ProtocolConfig& p = spec.protocol;
  if (key == "name") {
    // Accepted verbatim: protocols may be registered after parsing (custom
    // routers); validate_spec / create_router reject unknown names at run.
    p.name = value;
    return "";
  }
  if (key == "copies") return set_num(p.copies, "protocol.copies", value);
  if (key == "alpha") return set_num(p.alpha, "protocol.alpha", value);
  if (key == "window") return set_num(p.window, "protocol.window", value);
  return std::string("__unknown__");
}

std::string communities_key(ScenarioSpec& spec, const std::string& key,
                            const std::string& value) {
  if (key == "source") {
    const std::vector<std::string> sources = community_source_names();
    if (std::find(sources.begin(), sources.end(), value) == sources.end()) {
      return "bad value '" + value + "' for communities.source (" +
             community_source_list() + ")";
    }
    spec.communities.source = value;
    return "";
  }
  if (key == "count") return set_num(spec.communities.count, "communities.count", value);
  if (key == "warmup") {
    return set_num(spec.communities.warmup_s, "communities.warmup", value);
  }
  return std::string("__unknown__");
}

std::string group_key(ScenarioSpec& spec, const std::string& rest,
                      const std::string& value) {
  const auto dot = rest.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == rest.size()) {
    return "group keys are group.<name>.<param>";
  }
  const std::string name = rest.substr(0, dot);
  const std::string param = rest.substr(dot + 1);

  GroupSpec* group = nullptr;
  for (auto& g : spec.groups) {
    if (g.name == name) {
      group = &g;
      break;
    }
  }
  if (group == nullptr) {
    // A group comes into existence through its model key, so every later
    // parameter is interpreted under the right vocabulary.
    if (param != "model") {
      return "unknown group '" + name + "' — declare it with group." + name +
             ".model = <" + join_names(mobility::mobility_model_names()) + "> first";
    }
    if (mobility::find_mobility_model(value) == nullptr) {
      return "unknown mobility model '" + value +
             "' (known: " + join_names(mobility::mobility_model_names()) + ")";
    }
    GroupSpec g;
    g.name = name;
    g.model = value;
    spec.groups.push_back(std::move(g));
    return "";
  }
  if (param == "model") {
    if (mobility::find_mobility_model(value) == nullptr) {
      return "unknown mobility model '" + value +
             "' (known: " + join_names(mobility::mobility_model_names()) + ")";
    }
    group->model = value;
    return "";
  }
  if (param == "count") {
    return set_num(group->count, "group." + name + ".count", value);
  }
  if (param == "protocol") {
    // Accepted verbatim like protocol.name (custom routers may register
    // after parsing); validate_spec rejects unknown names at run. An empty
    // value clears the override (the group inherits protocol.name again).
    group->protocol = value;
    return "";
  }
  const auto* model = mobility::find_mobility_model(group->model);
  if (model == nullptr) {
    return "group '" + name + "' has unknown model '" + group->model + "'";
  }
  switch (model->set(group->params, param, value)) {
    case util::KvResult::kOk:
      return "";
    case util::KvResult::kBadValue:
      return "bad value '" + value + "' for group." + name + "." + param;
    case util::KvResult::kUnknownKey:
      break;
  }
  std::vector<std::pair<std::string, std::string>> kv;
  model->emit(group->params, kv);
  std::vector<std::string> names{"model", "count", "protocol"};
  for (const auto& [k, v] : kv) names.push_back(k);
  return "unknown key 'group." + name + "." + param + "' for mobility model '" +
         group->model + "' (known: " + join_names(names) + ")";
}

/// Applies one assignment; returns "" on success, a diagnostic message
/// otherwise.
std::string apply_key(ScenarioSpec& spec, const std::string& key,
                      const std::string& value) {
  const auto dot = key.find('.');
  const std::string section = dot == std::string::npos ? key : key.substr(0, dot);
  const std::string rest = dot == std::string::npos ? "" : key.substr(dot + 1);
  std::string result = "__unknown__";
  if (rest.empty()) {
    result = "__unknown__";
  } else if (section == "scenario") {
    result = scenario_key(spec, rest, value);
  } else if (section == "map") {
    result = map_key(spec, rest, value);
  } else if (section == "world") {
    result = world_key(spec, rest, value);
  } else if (section == "traffic") {
    result = traffic_key(spec, rest, value);
  } else if (section == "protocol") {
    result = protocol_key(spec, rest, value);
  } else if (section == "communities") {
    result = communities_key(spec, rest, value);
  } else if (section == "group") {
    result = group_key(spec, rest, value);
  }
  if (result == "__unknown__") {
    return "unknown key '" + key + "'" + suggestion_for(spec, key);
  }
  return result;
}

std::string diagnostics_text(const std::vector<SpecDiagnostic>& diagnostics,
                             const std::string& context) {
  std::string out;
  for (const auto& d : diagnostics) {
    if (!out.empty()) out += "\n";
    out += context;
    if (d.line > 0) out += ":" + std::to_string(d.line);
    out += ": " + d.message;
  }
  return out;
}

bool parse_into(const std::string& text, ScenarioSpec& spec,
                std::vector<SpecDiagnostic>& diagnostics) {
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Full-line and trailing comments; '#' cannot appear inside a value.
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      diagnostics.push_back({line_no, "expected 'key = value', got '" + line + "'"});
      continue;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      diagnostics.push_back({line_no, "missing key before '='"});
      continue;
    }
    const std::string error = apply_key(spec, key, value);
    if (!error.empty()) diagnostics.push_back({line_no, error});
  }
  return diagnostics.empty();
}

}  // namespace

std::vector<std::string> spec_key_names(const ScenarioSpec& spec) {
  std::vector<std::string> keys{
      "scenario.name",       "scenario.duration", "scenario.seed",
      "scenario.full_ttl_window", "scenario.nodes",
      "map.kind",
      "world.step_dt",       "world.radio_range", "world.bitrate_bps",
      "world.buffer_bytes",  "world.ttl_sweep_interval",
      "world.legacy_contact_path", "world.legacy_buffer_path",
      "world.legacy_movement_path", "world.legacy_pair_sweep",
      "world.event_kernel",
      "traffic.interval_min", "traffic.interval_max", "traffic.start",
      "traffic.stop",        "traffic.size_bytes", "traffic.ttl",
      "traffic.profile",     "traffic.on",        "traffic.off",
      "traffic.period",      "traffic.phase",     "traffic.file",
      "protocol.name",       "protocol.copies",   "protocol.alpha",
      "protocol.window",
      "communities.source",  "communities.count", "communities.warmup"};
  std::vector<std::pair<std::string, std::string>> kv;
  if (const auto* kind = geo::find_map_kind(spec.map.kind)) {
    kv.clear();
    kind->emit(spec.map.params, kv);
    for (const auto& [k, v] : kv) keys.push_back("map." + k);
  }
  for (const auto& e : spec.traffic_matrix) {
    for (const char* param : {"interval_min", "interval_max", "size_bytes", "weight"}) {
      keys.push_back("traffic." + e.src + "." + e.dst + "." + param);
    }
  }
  for (const auto& g : spec.groups) {
    keys.push_back("group." + g.name + ".model");
    keys.push_back("group." + g.name + ".count");
    keys.push_back("group." + g.name + ".protocol");
    if (const auto* model = mobility::find_mobility_model(g.model)) {
      kv.clear();
      model->emit(g.params, kv);
      for (const auto& [k, v] : kv) keys.push_back("group." + g.name + "." + k);
    }
  }
  return keys;
}

SpecError::SpecError(std::vector<SpecDiagnostic> diagnostics, const std::string& context)
    : std::runtime_error(diagnostics_text(diagnostics, context)),
      diagnostics_(std::move(diagnostics)) {}

ScenarioSpec parse_spec(const std::string& text) {
  ScenarioSpec spec;
  std::vector<SpecDiagnostic> diagnostics;
  if (!parse_into(text, spec, diagnostics)) {
    throw SpecError(std::move(diagnostics), "spec");
  }
  return spec;
}

bool try_parse_spec(const std::string& text, ScenarioSpec& out,
                    std::vector<SpecDiagnostic>& diagnostics) {
  out = ScenarioSpec{};
  return parse_into(text, out, diagnostics);
}

ScenarioSpec load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read scenario file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ScenarioSpec spec;
  std::vector<SpecDiagnostic> diagnostics;
  if (!parse_into(buffer.str(), spec, diagnostics)) {
    throw SpecError(std::move(diagnostics), path);
  }
  return spec;
}

std::string to_config(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "# scenario '" << spec.name << "' — dtnsim config (canonical form)\n";
  out << "scenario.name = " << spec.name << "\n";
  out << "scenario.duration = " << util::format_value(spec.duration_s) << "\n";
  out << "scenario.seed = " << util::format_value(spec.seed) << "\n";
  out << "scenario.full_ttl_window = " << util::format_value(spec.full_ttl_window)
      << "\n";

  out << "\nmap.kind = " << spec.map.kind << "\n";
  std::vector<std::pair<std::string, std::string>> kv;
  if (const auto* kind = geo::find_map_kind(spec.map.kind)) {
    kind->emit(spec.map.params, kv);
    for (const auto& [k, v] : kv) out << "map." << k << " = " << v << "\n";
  }

  const sim::WorldConfig& w = spec.world;
  out << "\nworld.step_dt = " << util::format_value(w.step_dt) << "\n";
  out << "world.radio_range = " << util::format_value(w.radio_range) << "\n";
  out << "world.bitrate_bps = " << util::format_value(w.bitrate_bps) << "\n";
  out << "world.buffer_bytes = " << util::format_value(w.buffer_bytes) << "\n";
  out << "world.ttl_sweep_interval = " << util::format_value(w.ttl_sweep_interval)
      << "\n";
  // Bench-baseline switches: emitted only when engaged, so ordinary configs
  // stay free of A/B plumbing.
  if (w.legacy_contact_path) out << "world.legacy_contact_path = true\n";
  if (w.legacy_buffer_path) out << "world.legacy_buffer_path = true\n";
  if (w.legacy_movement_path) out << "world.legacy_movement_path = true\n";
  if (w.legacy_pair_sweep) out << "world.legacy_pair_sweep = true\n";
  if (w.event_kernel) out << "world.event_kernel = true\n";

  const sim::TrafficParams& t = spec.traffic;
  out << "\ntraffic.interval_min = " << util::format_value(t.interval_min) << "\n";
  out << "traffic.interval_max = " << util::format_value(t.interval_max) << "\n";
  out << "traffic.start = " << util::format_value(t.start) << "\n";
  out << "traffic.stop = " << util::format_value(t.stop) << "\n";
  out << "traffic.size_bytes = " << util::format_value(t.size_bytes) << "\n";
  out << "traffic.ttl = " << util::format_value(t.ttl) << "\n";
  out << "traffic.profile = " << traffic_profile_name(t.profile) << "\n";
  out << "traffic.on = " << util::format_value(t.on_s) << "\n";
  out << "traffic.off = " << util::format_value(t.off_s) << "\n";
  out << "traffic.period = " << util::format_value(t.period_s) << "\n";
  out << "traffic.phase = " << util::format_value(t.phase_s) << "\n";
  // Engaged-only, like group.<g>.protocol: the empty string means "no
  // trace file", which is not a serializable value.
  if (!spec.traffic_file.empty()) out << "traffic.file = " << spec.traffic_file << "\n";
  // Matrix entries in declaration order (= their RNG-stream index).
  for (const auto& e : spec.traffic_matrix) {
    const std::string prefix = "traffic." + e.src + "." + e.dst + ".";
    out << prefix << "interval_min = " << util::format_value(e.interval_min) << "\n";
    out << prefix << "interval_max = " << util::format_value(e.interval_max) << "\n";
    out << prefix << "size_bytes = " << util::format_value(e.size_bytes) << "\n";
    out << prefix << "weight = " << util::format_value(e.weight) << "\n";
  }

  const routing::ProtocolConfig& p = spec.protocol;
  out << "\nprotocol.name = " << p.name << "\n";
  out << "protocol.copies = " << util::format_value(p.copies) << "\n";
  out << "protocol.alpha = " << util::format_value(p.alpha) << "\n";
  out << "protocol.window = " << util::format_value(p.window) << "\n";

  out << "\ncommunities.source = " << spec.communities.source << "\n";
  out << "communities.count = " << util::format_value(spec.communities.count) << "\n";
  out << "communities.warmup = " << util::format_value(spec.communities.warmup_s)
      << "\n";

  for (const auto& g : spec.groups) {
    out << "\ngroup." << g.name << ".model = " << g.model << "\n";
    out << "group." << g.name << ".count = " << util::format_value(g.count) << "\n";
    // Inherit-from-protocol.name is the empty string; emitted only when an
    // override is engaged, so homogeneous configs stay unchanged.
    if (!g.protocol.empty()) {
      out << "group." << g.name << ".protocol = " << g.protocol << "\n";
    }
    if (const auto* model = mobility::find_mobility_model(g.model)) {
      kv.clear();
      model->emit(g.params, kv);
      for (const auto& [k, v] : kv) {
        out << "group." << g.name << "." << k << " = " << v << "\n";
      }
    }
  }
  return out.str();
}

bool save_spec(const std::string& path, const ScenarioSpec& spec) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_config(spec);
  return static_cast<bool>(out);
}

void apply_override(ScenarioSpec& spec, const std::string& key,
                    const std::string& value) {
  const std::string error = apply_key(spec, trim(key), trim(value));
  if (!error.empty()) {
    throw SpecError({{0, error}}, "override");
  }
}

ScenarioSpec load_spec_with_overrides(const std::string& path,
                                      const std::vector<std::string>& assignments) {
  ScenarioSpec spec = load_spec(path);
  for (const auto& assignment : assignments) {
    const auto [key, value] = split_assignment(assignment);
    apply_override(spec, key, value);
  }
  return spec;
}

std::pair<std::string, std::string> split_assignment(const std::string& text) {
  const auto eq = text.find('=');
  if (eq == std::string::npos) {
    throw SpecError({{0, "expected key=value, got '" + text + "'"}}, "override");
  }
  return {trim(text.substr(0, eq)), trim(text.substr(eq + 1))};
}

}  // namespace dtn::harness
