#include "mobility/bus_movement.hpp"

#include <algorithm>
#include <cmath>

namespace dtn::mobility {

BusMovement::BusMovement(std::shared_ptr<const geo::Polyline> route, BusParams params)
    : route_(std::move(route)), params_(params) {}

void BusMovement::init(util::Pcg32 rng, double start_time) {
  rng_ = rng;
  const double len = route_ ? route_->total_length() : 0.0;
  cursor_ = len > 0.0 ? rng_.uniform(0.0, len) : 0.0;
  speed_ = rng_.uniform(params_.speed_min, params_.speed_max);
  next_stop_ = cursor_ + params_.stop_spacing;
  pause_until_ = start_time;
  pos_ = route_ ? route_->point_at(cursor_) : geo::Vec2{};
}

void BusMovement::step(double now, double dt) {
  if (!route_ || route_->total_length() <= 0.0) return;
  double remaining = dt;
  double t = now;
  while (remaining > 1e-12) {
    if (t < pause_until_) {
      const double wait = std::min(remaining, pause_until_ - t);
      t += wait;
      remaining -= wait;
      continue;
    }
    const double dist_to_stop = next_stop_ - cursor_;
    const double travel_time = speed_ > 0.0 ? dist_to_stop / speed_ : remaining;
    if (travel_time <= remaining) {
      cursor_ = next_stop_;
      t += travel_time;
      remaining -= travel_time;
      pause_until_ = t + rng_.uniform(params_.pause_min, params_.pause_max);
      speed_ = rng_.uniform(params_.speed_min, params_.speed_max);
      next_stop_ = cursor_ + params_.stop_spacing;
    } else {
      cursor_ += speed_ * remaining;
      remaining = 0.0;
    }
  }
  // The cursor grows monotonically; point_at() wraps modulo the route
  // length, so no explicit wrap is needed (a 10^4 s run at 14 m/s advances
  // ~1.4e5 m, far below double precision limits). Rebase both cursor and
  // stop together if a run ever gets astronomically long.
  const double len = route_->total_length();
  if (cursor_ > 1e12) {
    const double base = std::floor(cursor_ / len) * len;
    cursor_ -= base;
    next_stop_ -= base;
  }
  pos_ = route_->point_at(cursor_);
}

}  // namespace dtn::mobility
