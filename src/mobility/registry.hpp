// String-keyed registry of mobility models for the declarative scenario
// layer: each entry knows how to parse and serialize its parameter keys so
// scenario files (`group.<name>.<key> = value`) and sweep overrides can
// address any model uniformly. Node placement / world composition stays in
// the harness (see harness/spec.hpp); this registry only owns the model
// parameter vocabulary.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "mobility/bus_movement.hpp"
#include "mobility/community_movement.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/stationary.hpp"
#include "util/value_parse.hpp"

namespace dtn::mobility {

/// Union-of-models parameter block for one node group. Only the block
/// selected by the group's model name is meaningful; holding all blocks
/// flat keeps the spec value-semantic (copyable, comparable, no virtuals).
/// World rectangles / home rectangles / routes are NOT part of the group
/// vocabulary — they derive from the map source and community layout at
/// build time, so a scenario file has one source of truth for geometry.
struct GroupParams {
  RandomWaypointParams waypoint;
  CommunityMovementParams community;
  BusParams bus;
  StationaryParams stationary;
};

/// One registered mobility model.
struct MobilityModelInfo {
  std::string name;
  /// Applies `key = value`; reports unknown keys vs unparsable values.
  util::KvResult (*set)(GroupParams&, const std::string& key, const std::string& value);
  /// Emits this model's (key, value) pairs in canonical order.
  void (*emit)(const GroupParams&, std::vector<std::pair<std::string, std::string>>& out);
};

/// Looks up a model by name; nullptr when unknown.
const MobilityModelInfo* find_mobility_model(const std::string& name);

/// Registered model names, built-ins first in registration order.
std::vector<std::string> mobility_model_names();

/// Registers an additional model (extension point; built-ins are
/// pre-registered). Re-registering an existing name replaces it.
void register_mobility_model(const MobilityModelInfo& info);

}  // namespace dtn::mobility
