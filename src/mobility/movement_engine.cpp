#include "mobility/movement_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace dtn::mobility {

namespace {

/// uniform(lo, hi) applied to a pre-drawn next_double() value — the exact
/// arithmetic of Pcg32::uniform, so batched draws map to the same numbers.
inline double map_uniform(double lo, double hi, double u) noexcept {
  return lo + (hi - lo) * u;
}

}  // namespace

int MovementEngine::add_waypoint(const RandomWaypointParams& p) {
  const int node = static_cast<int>(pos_.size());
  WpSpec spec;
  spec.world_min = p.world_min;
  spec.world_max = p.world_max;
  spec.speed_min = p.speed_min;
  spec.speed_max = p.speed_max;
  spec.pause_min = p.pause_min;
  spec.pause_max = p.pause_max;
  spec.community = false;
  spec.arrival_draws = 4;  // pause, target.x, target.y, speed
  pos_.emplace_back();
  kind_.push_back(Kind::kWaypoint);
  lane_.push_back(static_cast<std::uint32_t>(wp_node_.size()));
  wp_node_.push_back(node);
  wp_spec_.push_back(spec);
  wp_target_.emplace_back();
  wp_speed_.push_back(0.0);
  wp_pause_until_.push_back(0.0);
  wp_rng_.emplace_back();
  return node;
}

int MovementEngine::add_community(const CommunityMovementParams& p) {
  const int node = static_cast<int>(pos_.size());
  WpSpec spec;
  spec.world_min = p.world_min;
  spec.world_max = p.world_max;
  spec.home_min = p.home_min;
  spec.home_max = p.home_max;
  spec.home_prob = p.home_prob;
  spec.speed_min = p.speed_min;
  spec.speed_max = p.speed_max;
  spec.pause_min = p.pause_min;
  spec.pause_max = p.pause_max;
  spec.community = true;
  // bernoulli() consumes a draw only for probabilities strictly inside
  // (0, 1) — the degenerate cases return without touching the stream.
  const bool bern_draws = p.home_prob > 0.0 && p.home_prob < 1.0;
  spec.arrival_draws = static_cast<std::uint8_t>(bern_draws ? 5 : 4);
  pos_.emplace_back();
  kind_.push_back(Kind::kCommunity);
  lane_.push_back(static_cast<std::uint32_t>(wp_node_.size()));
  wp_node_.push_back(node);
  wp_spec_.push_back(spec);
  wp_target_.emplace_back();
  wp_speed_.push_back(0.0);
  wp_pause_until_.push_back(0.0);
  wp_rng_.emplace_back();
  return node;
}

int MovementEngine::add_bus(std::shared_ptr<const geo::Polyline> route,
                            const BusParams& p) {
  const int node = static_cast<int>(pos_.size());
  pos_.emplace_back();
  kind_.push_back(Kind::kBus);
  lane_.push_back(static_cast<std::uint32_t>(bus_node_.size()));
  bus_node_.push_back(node);
  bus_route_.push_back(std::move(route));
  bus_params_.push_back(p);
  bus_cursor_.push_back(0.0);
  bus_next_stop_.push_back(0.0);
  bus_speed_.push_back(1.0);
  bus_pause_until_.push_back(0.0);
  bus_seg_hint_.push_back(0);
  bus_rng_.emplace_back();
  return node;
}

int MovementEngine::add_stationary(const StationaryNodeSpec& spec) {
  const int node = static_cast<int>(pos_.size());
  pos_.push_back(spec.pos);
  kind_.push_back(Kind::kStationary);
  lane_.push_back(static_cast<std::uint32_t>(st_spec_.size()));
  st_spec_.push_back(spec);
  return node;
}

int MovementEngine::add_custom(MovementModelPtr model) {
  const int node = static_cast<int>(pos_.size());
  pos_.emplace_back();
  kind_.push_back(Kind::kCustom);
  lane_.push_back(static_cast<std::uint32_t>(cust_node_.size()));
  cust_node_.push_back(node);
  cust_model_.push_back(std::move(model));
  return node;
}

int MovementEngine::add(MovementModelPtr model) {
  if (const auto* rw = dynamic_cast<const RandomWaypoint*>(model.get())) {
    return add_waypoint(rw->params());
  }
  if (const auto* cm = dynamic_cast<const CommunityMovement*>(model.get())) {
    return add_community(cm->params());
  }
  if (const auto* bus = dynamic_cast<const BusMovement*>(model.get())) {
    return add_bus(bus->route(), bus->params());
  }
  if (const auto* st = dynamic_cast<const StationaryNode*>(model.get())) {
    return add_stationary(st->spec());
  }
  if (const auto* pin = dynamic_cast<const Stationary*>(model.get())) {
    StationaryNodeSpec spec;
    spec.pos = pin->position();
    return add_stationary(spec);
  }
  return add_custom(std::move(model));
}

void MovementEngine::clear() {
  pos_.clear();
  kind_.clear();
  lane_.clear();
  wp_node_.clear();
  wp_spec_.clear();
  wp_target_.clear();
  wp_speed_.clear();
  wp_pause_until_.clear();
  wp_rng_.clear();
  bus_node_.clear();
  bus_route_.clear();
  bus_params_.clear();
  bus_cursor_.clear();
  bus_next_stop_.clear();
  bus_speed_.clear();
  bus_pause_until_.clear();
  bus_seg_hint_.clear();
  bus_rng_.clear();
  st_spec_.clear();
  cust_node_.clear();
  cust_model_.clear();
  kin_seg_.clear();
}

MovementEngine::WpPick MovementEngine::pick_waypoint(const WpSpec& sp,
                                                     const double* u,
                                                     std::size_t j) {
  geo::Vec2 lo = sp.world_min;
  geo::Vec2 hi = sp.world_max;
  if (sp.community) {
    bool home;
    if (sp.home_prob <= 0.0) {
      home = false;
    } else if (sp.home_prob >= 1.0) {
      home = true;
    } else {
      home = u[j++] < sp.home_prob;
    }
    if (home) {
      lo = sp.home_min;
      hi = sp.home_max;
    }
  }
  return {{map_uniform(lo.x, hi.x, u[j]), map_uniform(lo.y, hi.y, u[j + 1])},
          map_uniform(sp.speed_min, sp.speed_max, u[j + 2])};
}

void MovementEngine::init_waypoint(std::size_t lane, int node, double start_time) {
  const WpSpec& sp = wp_spec_[lane];
  util::Pcg32& rng = wp_rng_[lane];
  // Initial position: RandomWaypoint draws from the world rectangle,
  // CommunityMovement from the home rectangle — then both pick the first
  // waypoint. Draw order matches the legacy init() exactly.
  double u[6];
  rng.fill_doubles(u, 2u + sp.arrival_draws - 1u);  // pos + pick (no pause draw)
  const geo::Vec2 init_lo = sp.community ? sp.home_min : sp.world_min;
  const geo::Vec2 init_hi = sp.community ? sp.home_max : sp.world_max;
  pos_[static_cast<std::size_t>(node)] = {map_uniform(init_lo.x, init_hi.x, u[0]),
                                          map_uniform(init_lo.y, init_hi.y, u[1])};
  wp_pause_until_[lane] = start_time;
  const WpPick pick = pick_waypoint(sp, u, 2);
  wp_target_[lane] = pick.target;
  wp_speed_[lane] = pick.speed;
}

void MovementEngine::init_bus(std::size_t lane, int node, double start_time) {
  const BusParams& p = bus_params_[lane];
  const geo::Polyline* route = bus_route_[lane].get();
  util::Pcg32& rng = bus_rng_[lane];
  const double len = route != nullptr ? route->total_length() : 0.0;
  // Legacy draw order: cursor (only when the route has length), then speed.
  double u[2];
  if (len > 0.0) {
    rng.fill_doubles(u, 2);
    bus_cursor_[lane] = map_uniform(0.0, len, u[0]);
    bus_speed_[lane] = map_uniform(p.speed_min, p.speed_max, u[1]);
  } else {
    rng.fill_doubles(u, 1);
    bus_cursor_[lane] = 0.0;
    bus_speed_[lane] = map_uniform(p.speed_min, p.speed_max, u[0]);
  }
  bus_next_stop_[lane] = bus_cursor_[lane] + p.stop_spacing;
  bus_pause_until_[lane] = start_time;
  bus_seg_hint_[lane] = 0;
  pos_[static_cast<std::size_t>(node)] =
      route != nullptr ? route->point_at_hinted(bus_cursor_[lane], bus_seg_hint_[lane])
                       : geo::Vec2{};
}

void MovementEngine::init_node(int node, util::Pcg32 rng, double start_time) {
  const auto i = static_cast<std::size_t>(node);
  const std::size_t lane = lane_[i];
  switch (kind_[i]) {
    case Kind::kWaypoint:
    case Kind::kCommunity:
      wp_rng_[lane] = rng;
      init_waypoint(lane, node, start_time);
      break;
    case Kind::kBus:
      bus_rng_[lane] = rng;
      init_bus(lane, node, start_time);
      break;
    case Kind::kStationary: {
      // Same draw block as StationaryNode::init (legacy path): two
      // uniforms (x, y) for per-seed placement, no draws for fixed.
      const StationaryNodeSpec& sp = st_spec_[lane];
      if (sp.uniform) {
        double u[2];
        rng.fill_doubles(u, 2);
        pos_[i] = {map_uniform(sp.area_min.x, sp.area_max.x, u[0]),
                   map_uniform(sp.area_min.y, sp.area_max.y, u[1])};
      } else {
        pos_[i] = sp.pos;
      }
      break;
    }
    case Kind::kCustom:
      cust_model_[lane]->init(rng, start_time);
      pos_[i] = cust_model_[lane]->position();
      break;
  }
}

void MovementEngine::step_waypoints(double now, double dt) {
  const std::size_t m = wp_node_.size();
  for (std::size_t k = 0; k < m; ++k) {
    double remaining = dt;
    double t = now;
    geo::Vec2 pos = pos_[static_cast<std::size_t>(wp_node_[k])];
    geo::Vec2 target = wp_target_[k];
    double speed = wp_speed_[k];
    double pause_until = wp_pause_until_[k];
    const WpSpec& sp = wp_spec_[k];
    // A single dt may span pause end + several waypoint arrivals; consume
    // it piecewise so trajectories are independent of the step size.
    // (Exact arithmetic of the legacy RandomWaypoint/CommunityMovement
    // step loop — see header equivalence contract.)
    while (remaining > 1e-12) {
      if (t < pause_until) {
        const double wait = std::min(remaining, pause_until - t);
        t += wait;
        remaining -= wait;
        continue;
      }
      const double dist_to_target = pos.distance_to(target);
      if (speed <= 0.0) break;
      const double travel_time = dist_to_target / speed;
      if (travel_time <= remaining) {
        pos = target;
        t += travel_time;
        remaining -= travel_time;
        // Waypoint event: one batched block of draws — pause, (bernoulli,)
        // target.x, target.y, speed — in the legacy order.
        double u[5];
        wp_rng_[k].fill_doubles(u, sp.arrival_draws);
        pause_until = t + map_uniform(sp.pause_min, sp.pause_max, u[0]);
        const WpPick pick = pick_waypoint(sp, u, 1);
        target = pick.target;
        speed = pick.speed;
      } else {
        pos += (target - pos).normalized() * (speed * remaining);
        remaining = 0.0;
      }
    }
    pos_[static_cast<std::size_t>(wp_node_[k])] = pos;
    wp_target_[k] = target;
    wp_speed_[k] = speed;
    wp_pause_until_[k] = pause_until;
  }
}

void MovementEngine::step_buses(double now, double dt) {
  const std::size_t m = bus_node_.size();
  for (std::size_t k = 0; k < m; ++k) {
    const geo::Polyline* route = bus_route_[k].get();
    if (route == nullptr || route->total_length() <= 0.0) continue;
    const BusParams& p = bus_params_[k];
    double remaining = dt;
    double t = now;
    double cursor = bus_cursor_[k];
    double next_stop = bus_next_stop_[k];
    double speed = bus_speed_[k];
    double pause_until = bus_pause_until_[k];
    while (remaining > 1e-12) {
      if (t < pause_until) {
        const double wait = std::min(remaining, pause_until - t);
        t += wait;
        remaining -= wait;
        continue;
      }
      const double dist_to_stop = next_stop - cursor;
      const double travel_time = speed > 0.0 ? dist_to_stop / speed : remaining;
      if (travel_time <= remaining) {
        cursor = next_stop;
        t += travel_time;
        remaining -= travel_time;
        // Stop event: pause then speed, one batched block.
        double u[2];
        bus_rng_[k].fill_doubles(u, 2);
        pause_until = t + map_uniform(p.pause_min, p.pause_max, u[0]);
        speed = map_uniform(p.speed_min, p.speed_max, u[1]);
        next_stop = cursor + p.stop_spacing;
      } else {
        cursor += speed * remaining;
        remaining = 0.0;
      }
    }
    // The cursor grows monotonically; point_at wraps modulo the route
    // length. Rebase both cursor and stop together only if a run ever gets
    // astronomically long (same guard as the legacy model).
    const double len = route->total_length();
    if (cursor > 1e12) {
      const double base = std::floor(cursor / len) * len;
      cursor -= base;
      next_stop -= base;
    }
    pos_[static_cast<std::size_t>(bus_node_[k])] =
        route->point_at_hinted(cursor, bus_seg_hint_[k]);
    bus_cursor_[k] = cursor;
    bus_next_stop_[k] = next_stop;
    bus_speed_[k] = speed;
    bus_pause_until_[k] = pause_until;
  }
}

void MovementEngine::kinetic_begin_travel(KineticSegment& seg, std::size_t lane,
                                          double t) {
  seg.t0 = t;
  seg.paused = false;
  const double speed = wp_speed_[lane];
  if (speed <= 0.0) {
    // Same terminal state as the fixed-dt kernel's `if (speed <= 0) break`:
    // the node never moves again.
    seg.vel = {};
    seg.t_end = std::numeric_limits<double>::infinity();
    return;
  }
  const geo::Vec2 target = wp_target_[lane];
  const double dist = seg.origin.distance_to(target);
  seg.vel = (target - seg.origin).normalized() * speed;
  seg.t_end = t + dist / speed;
}

void MovementEngine::kinetic_start(double t) {
  assert(kinetic_capable());
  kin_seg_.resize(pos_.size());
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    KineticSegment& seg = kin_seg_[i];
    seg.origin = pos_[i];
    seg.t0 = t;
    if (kind_[i] == Kind::kWaypoint || kind_[i] == Kind::kCommunity) {
      const std::size_t lane = lane_[i];
      if (t < wp_pause_until_[lane]) {
        seg.vel = {};
        seg.t_end = wp_pause_until_[lane];
        seg.paused = true;
      } else {
        kinetic_begin_travel(seg, lane, t);
      }
    } else {  // stationary
      seg.vel = {};
      seg.t_end = std::numeric_limits<double>::infinity();
      seg.paused = false;
    }
  }
}

const KineticSegment& MovementEngine::kinetic_advance(int node) {
  const auto i = static_cast<std::size_t>(node);
  KineticSegment& seg = kin_seg_[i];
  assert(kind_[i] == Kind::kWaypoint || kind_[i] == Kind::kCommunity);
  const std::size_t lane = lane_[i];
  const double t = seg.t_end;
  if (seg.paused) {
    kinetic_begin_travel(seg, lane, t);
    return seg;
  }
  // Waypoint arrival: land exactly on the target, then the same batched
  // draw block as the fixed-dt kernel — pause, (bernoulli,) target.x,
  // target.y, speed — in the same per-node stream order.
  const WpSpec& sp = wp_spec_[lane];
  pos_[i] = wp_target_[lane];
  double u[5];
  wp_rng_[lane].fill_doubles(u, sp.arrival_draws);
  wp_pause_until_[lane] = t + map_uniform(sp.pause_min, sp.pause_max, u[0]);
  const WpPick pick = pick_waypoint(sp, u, 1);
  wp_target_[lane] = pick.target;
  wp_speed_[lane] = pick.speed;
  seg.origin = pos_[i];
  seg.t0 = t;
  seg.vel = {};
  seg.t_end = wp_pause_until_[lane];
  seg.paused = true;
  return seg;
}

void MovementEngine::kinetic_sync_positions(double t) {
  for (std::size_t i = 0; i < kin_seg_.size(); ++i) {
    pos_[i] = kinetic_position(static_cast<int>(i), t);
  }
}

void MovementEngine::step_all(double now, double dt) {
  step_waypoints(now, dt);
  step_buses(now, dt);
  const std::size_t m = cust_node_.size();
  for (std::size_t k = 0; k < m; ++k) {
    cust_model_[k]->step(now, dt);
    pos_[static_cast<std::size_t>(cust_node_[k])] = cust_model_[k]->position();
  }
}

}  // namespace dtn::mobility
