// Replays a recorded trajectory (from a mobility trace file) with linear
// interpolation between samples. This is the code path a real CRAWDAD
// dataset would use: convert the dataset to `time node x y` records and
// attach one TracePlayback per node.
#pragma once

#include <memory>
#include <vector>

#include "geo/trace.hpp"
#include "mobility/movement_model.hpp"

namespace dtn::mobility {

class TracePlayback final : public MovementModel {
 public:
  /// `samples` are this node's records, sorted by time, non-empty.
  explicit TracePlayback(std::vector<geo::TraceSample> samples);

  void init(util::Pcg32 rng, double start_time) override;
  void step(double now, double dt) override;
  [[nodiscard]] geo::Vec2 position() const override { return pos_; }

  /// Builds one playback model per node from a full trace. Nodes with no
  /// samples get a model pinned at the origin.
  static std::vector<MovementModelPtr> from_trace(const geo::Trace& trace);

 private:
  [[nodiscard]] geo::Vec2 interpolate(double t) const;

  std::vector<geo::TraceSample> samples_;
  std::size_t hint_ = 0;  ///< search start; times advance monotonically
  geo::Vec2 pos_;
};

}  // namespace dtn::mobility
