// Batched movement kernel: executes every node's trajectory out of
// structure-of-arrays state instead of one heap-allocated virtual
// MovementModel per node.
//
// The three hot models (random waypoint, community waypoint, bus) get
// dedicated lanes: their per-node state (position, target, speed, pause
// timer, route cursor) lives in dense parallel vectors that step_all()
// walks linearly — no virtual dispatch, no pointer chase into scattered
// model objects, and all positions land in one contiguous array the
// contact detector reads back. Waypoint/stop events pull their whole
// random block (pause, target, speed) from the node's stream in a single
// batched fill_doubles() call. Stationary infrastructure nodes get a
// zero-cost lane: their position is written once at init (fixed, or drawn
// per seed for uniform placement) and step_all() never visits them. Any
// other MovementModel (trace playback, test scripts, user models) runs
// unchanged in a fallback lane that keeps the object and calls its
// virtual step().
//
// Equivalence contract: for the three lane models the kernel performs the
// exact arithmetic of the legacy classes (mobility/random_waypoint.cpp,
// community_movement.cpp, bus_movement.cpp) in the exact stream order, so
// trajectories are bit-identical to the per-object path
// (sim_movement_engine_test enforces this; WorldConfig::legacy_movement_path
// keeps the per-object path alive in the same binary for A/B benchmarks).
//
// clear() drops all nodes but retains every lane's capacity, so a World
// rebuilt across sweep seeds re-registers its nodes without allocating.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geo/polyline.hpp"
#include "geo/vec2.hpp"
#include "mobility/bus_movement.hpp"
#include "mobility/community_movement.hpp"
#include "mobility/movement_model.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/stationary.hpp"
#include "util/rng.hpp"

namespace dtn::mobility {

/// One closed-form trajectory piece for the kinetic event kernel:
/// position(t) = origin + vel * (t - t0), valid on [t0, t_end]. Pause
/// phases (and stationary nodes) carry vel == {0,0}; a node frozen forever
/// (stationary, or waypoint speed <= 0) has t_end == +infinity and is
/// never advanced.
struct KineticSegment {
  geo::Vec2 origin;
  geo::Vec2 vel;
  double t0 = 0.0;
  double t_end = 0.0;
  bool paused = false;  ///< waiting at a waypoint (next phase: travel)
};

class MovementEngine {
 public:
  /// Registers node `size()` with an explicit lane; returns the node index.
  int add_waypoint(const RandomWaypointParams& params);
  int add_community(const CommunityMovementParams& params);
  int add_bus(std::shared_ptr<const geo::Polyline> route, const BusParams& params);
  /// Zero-cost lane for infrastructure nodes: position set at init (fixed,
  /// or drawn per seed for uniform placement), never stepped.
  int add_stationary(const StationaryNodeSpec& spec);
  /// Fallback lane: keeps the model object, steps it virtually.
  int add_custom(MovementModelPtr model);
  /// Routes known model types (RandomWaypoint / CommunityMovement /
  /// BusMovement / StationaryNode / Stationary) into their lanes,
  /// extracting their parameters and discarding the object; anything else
  /// goes to the custom lane.
  int add(MovementModelPtr model);

  /// (Re)initializes node `node`'s trajectory from its movement stream at
  /// `start_time` — same draws, same order as the legacy model's init().
  /// Called once after add_*() and again on every World reseed.
  void init_node(int node, util::Pcg32 rng, double start_time);

  /// Advances every trajectory from `now` to `now + dt`.
  void step_all(double now, double dt);

  /// All node positions, indexed by node. Updated by step_all()/init_node().
  [[nodiscard]] const std::vector<geo::Vec2>& positions() const noexcept {
    return pos_;
  }
  [[nodiscard]] geo::Vec2 position(int node) const {
    return pos_[static_cast<std::size_t>(node)];
  }

  [[nodiscard]] std::size_t size() const noexcept { return pos_.size(); }

  // ---- kinetic (event-driven) trajectory interface ----
  // Alternative to step_all() for the sim/event_kernel.hpp calendar: the
  // engine exposes each node's current linear segment and advances nodes
  // segment-to-segment instead of dt-by-dt. Waypoint arrivals perform the
  // exact batched draw block of the fixed-dt kernel in the same per-node
  // stream order, so the RNG contract cannot fork between the two paths
  // (mobility_kinetic_segment_test pins this).

  /// True when every node lives in a closed-form lane (waypoint,
  /// community, stationary). Bus and custom nodes have no linear-segment
  /// form, so worlds containing them must step fixed-dt.
  [[nodiscard]] bool kinetic_capable() const noexcept {
    return bus_node_.empty() && cust_node_.empty();
  }
  /// Builds every node's initial segment at time `t` from the lane state
  /// left by init_node() (or by a previous run). Requires kinetic_capable().
  void kinetic_start(double t);
  [[nodiscard]] const KineticSegment& kinetic_segment(int node) const {
    return kin_seg_[static_cast<std::size_t>(node)];
  }
  /// Crosses the node's segment boundary at its t_end: pause end launches
  /// travel toward the stored waypoint; arrival lands exactly on the
  /// target, draws the next (pause, [home,] target, speed) block, and
  /// opens the pause segment. Returns the new segment.
  const KineticSegment& kinetic_advance(int node);
  /// Closed-form position of `node` at time t (t within its segment).
  [[nodiscard]] geo::Vec2 kinetic_position(int node, double t) const {
    const KineticSegment& seg = kin_seg_[static_cast<std::size_t>(node)];
    return seg.origin + seg.vel * (t - seg.t0);
  }
  /// Writes every node's closed-form position at time t back into the
  /// positions() array (hand-off to the fixed-dt path after a kinetic run).
  void kinetic_sync_positions(double t);

  /// Drops every node, retaining lane capacity (custom-lane model objects
  /// are the only thing freed).
  void clear();

 private:
  enum class Kind : std::uint8_t { kWaypoint, kCommunity, kBus, kStationary, kCustom };

  /// Shared waypoint-lane parameters. `community == true` adds the
  /// home-rectangle Bernoulli pick (CommunityMovement); otherwise the home
  /// fields are unused and every draw targets the world rectangle.
  struct WpSpec {
    geo::Vec2 world_min, world_max;
    geo::Vec2 home_min, home_max;
    double home_prob = 0.0;
    double speed_min = 0.0, speed_max = 0.0;
    double pause_min = 0.0, pause_max = 0.0;
    bool community = false;
    std::uint8_t arrival_draws = 4;  ///< doubles consumed per waypoint event
  };

  /// One waypoint pick decoded from pre-drawn uniforms starting at u[j]:
  /// optional home-rectangle Bernoulli gate, then target.x, target.y,
  /// speed — the single definition of the legacy pick_waypoint() draw
  /// block, shared by lane init and arrival events so the RNG-stream
  /// contract cannot fork between them.
  struct WpPick {
    geo::Vec2 target;
    double speed;
  };
  static WpPick pick_waypoint(const WpSpec& spec, const double* u, std::size_t j);

  void init_waypoint(std::size_t lane, int node, double start_time);
  void init_bus(std::size_t lane, int node, double start_time);
  void step_waypoints(double now, double dt);
  void step_buses(double now, double dt);
  /// Opens a travel segment from seg.origin toward the lane's stored
  /// waypoint at time t (shared by kinetic_start and kinetic_advance).
  void kinetic_begin_travel(KineticSegment& seg, std::size_t lane, double t);

  // ---- per-node (index == node id) ----
  std::vector<geo::Vec2> pos_;
  std::vector<Kind> kind_;
  std::vector<std::uint32_t> lane_;

  // ---- waypoint + community lanes ----
  std::vector<std::int32_t> wp_node_;
  std::vector<WpSpec> wp_spec_;
  std::vector<geo::Vec2> wp_target_;
  std::vector<double> wp_speed_;
  std::vector<double> wp_pause_until_;
  std::vector<util::Pcg32> wp_rng_;

  // ---- bus lanes ----
  std::vector<std::int32_t> bus_node_;
  std::vector<std::shared_ptr<const geo::Polyline>> bus_route_;
  std::vector<BusParams> bus_params_;
  std::vector<double> bus_cursor_;
  std::vector<double> bus_next_stop_;
  std::vector<double> bus_speed_;
  std::vector<double> bus_pause_until_;
  std::vector<std::uint32_t> bus_seg_hint_;  ///< point_at_hinted() cache
  std::vector<util::Pcg32> bus_rng_;

  // ---- stationary lane (never stepped) ----
  std::vector<StationaryNodeSpec> st_spec_;

  // ---- custom lane ----
  std::vector<std::int32_t> cust_node_;
  std::vector<MovementModelPtr> cust_model_;

  // ---- kinetic segments (per node; valid after kinetic_start) ----
  std::vector<KineticSegment> kin_seg_;
};

}  // namespace dtn::mobility
