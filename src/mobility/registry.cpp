#include "mobility/registry.hpp"

namespace dtn::mobility {

namespace {

using util::KvResult;

// ---- random_waypoint --------------------------------------------------------

KvResult waypoint_set(GroupParams& p, const std::string& key, const std::string& value) {
  if (key == "speed_min") return util::kv_set(p.waypoint.speed_min, value);
  if (key == "speed_max") return util::kv_set(p.waypoint.speed_max, value);
  if (key == "pause_min") return util::kv_set(p.waypoint.pause_min, value);
  if (key == "pause_max") return util::kv_set(p.waypoint.pause_max, value);
  return KvResult::kUnknownKey;
}

void waypoint_emit(const GroupParams& p,
                   std::vector<std::pair<std::string, std::string>>& out) {
  out.emplace_back("speed_min", util::format_value(p.waypoint.speed_min));
  out.emplace_back("speed_max", util::format_value(p.waypoint.speed_max));
  out.emplace_back("pause_min", util::format_value(p.waypoint.pause_min));
  out.emplace_back("pause_max", util::format_value(p.waypoint.pause_max));
}

// ---- community --------------------------------------------------------------

KvResult community_set(GroupParams& p, const std::string& key, const std::string& value) {
  if (key == "home_prob") return util::kv_set(p.community.home_prob, value);
  if (key == "speed_min") return util::kv_set(p.community.speed_min, value);
  if (key == "speed_max") return util::kv_set(p.community.speed_max, value);
  if (key == "pause_min") return util::kv_set(p.community.pause_min, value);
  if (key == "pause_max") return util::kv_set(p.community.pause_max, value);
  return KvResult::kUnknownKey;
}

void community_emit(const GroupParams& p,
                    std::vector<std::pair<std::string, std::string>>& out) {
  out.emplace_back("home_prob", util::format_value(p.community.home_prob));
  out.emplace_back("speed_min", util::format_value(p.community.speed_min));
  out.emplace_back("speed_max", util::format_value(p.community.speed_max));
  out.emplace_back("pause_min", util::format_value(p.community.pause_min));
  out.emplace_back("pause_max", util::format_value(p.community.pause_max));
}

// ---- bus --------------------------------------------------------------------

KvResult bus_set(GroupParams& p, const std::string& key, const std::string& value) {
  if (key == "speed_min") return util::kv_set(p.bus.speed_min, value);
  if (key == "speed_max") return util::kv_set(p.bus.speed_max, value);
  if (key == "stop_spacing") return util::kv_set(p.bus.stop_spacing, value);
  if (key == "pause_min") return util::kv_set(p.bus.pause_min, value);
  if (key == "pause_max") return util::kv_set(p.bus.pause_max, value);
  return KvResult::kUnknownKey;
}

void bus_emit(const GroupParams& p,
              std::vector<std::pair<std::string, std::string>>& out) {
  out.emplace_back("speed_min", util::format_value(p.bus.speed_min));
  out.emplace_back("speed_max", util::format_value(p.bus.speed_max));
  out.emplace_back("stop_spacing", util::format_value(p.bus.stop_spacing));
  out.emplace_back("pause_min", util::format_value(p.bus.pause_min));
  out.emplace_back("pause_max", util::format_value(p.bus.pause_max));
}

// ---- stationary -------------------------------------------------------------
// Infrastructure nodes (relays, roadside units): placement over the map
// extent is the whole vocabulary — `grid` is deterministic row-major,
// `uniform` draws per seed from the node's movement stream.

KvResult stationary_set(GroupParams& p, const std::string& key,
                        const std::string& value) {
  if (key == "placement") {
    if (value != "grid" && value != "uniform") return KvResult::kBadValue;
    p.stationary.placement = value;
    return KvResult::kOk;
  }
  if (key == "margin") return util::kv_set(p.stationary.margin, value);
  return KvResult::kUnknownKey;
}

void stationary_emit(const GroupParams& p,
                     std::vector<std::pair<std::string, std::string>>& out) {
  out.emplace_back("placement", p.stationary.placement);
  out.emplace_back("margin", util::format_value(p.stationary.margin));
}

// ---- trace ------------------------------------------------------------------
// Trajectories come from the map source (map.kind = trace); the group has no
// parameters of its own.

KvResult trace_set(GroupParams&, const std::string&, const std::string&) {
  return KvResult::kUnknownKey;
}

void trace_emit(const GroupParams&, std::vector<std::pair<std::string, std::string>>&) {}

std::vector<MobilityModelInfo>& registry() {
  static std::vector<MobilityModelInfo> models{
      {"bus", bus_set, bus_emit},
      {"random_waypoint", waypoint_set, waypoint_emit},
      {"community", community_set, community_emit},
      {"trace", trace_set, trace_emit},
      {"stationary", stationary_set, stationary_emit},
  };
  return models;
}

}  // namespace

const MobilityModelInfo* find_mobility_model(const std::string& name) {
  for (const auto& m : registry()) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::vector<std::string> mobility_model_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& m : registry()) names.push_back(m.name);
  return names;
}

void register_mobility_model(const MobilityModelInfo& info) {
  for (auto& m : registry()) {
    if (m.name == info.name) {
      m = info;
      return;
    }
  }
  registry().push_back(info);
}

}  // namespace dtn::mobility
