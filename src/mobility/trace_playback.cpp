#include "mobility/trace_playback.hpp"

#include <algorithm>

namespace dtn::mobility {

TracePlayback::TracePlayback(std::vector<geo::TraceSample> samples)
    : samples_(std::move(samples)) {
  if (samples_.empty()) {
    samples_.push_back(geo::TraceSample{0.0, 0, geo::Vec2{}});
  }
  pos_ = samples_.front().pos;
}

void TracePlayback::init(util::Pcg32 /*rng*/, double start_time) {
  hint_ = 0;
  pos_ = interpolate(start_time);
}

void TracePlayback::step(double now, double dt) { pos_ = interpolate(now + dt); }

geo::Vec2 TracePlayback::interpolate(double t) const {
  if (t <= samples_.front().time) return samples_.front().pos;
  if (t >= samples_.back().time) return samples_.back().pos;
  // Advance the hint; the kernel queries monotonically increasing times.
  auto* self = const_cast<TracePlayback*>(this);
  while (self->hint_ + 1 < samples_.size() && samples_[self->hint_ + 1].time < t) {
    ++self->hint_;
  }
  // Binary fallback in case the hint was reset (init at a late start time).
  std::size_t i = self->hint_;
  if (!(samples_[i].time <= t && t <= samples_[i + 1].time)) {
    const auto it = std::upper_bound(
        samples_.begin(), samples_.end(), t,
        [](double v, const geo::TraceSample& s) { return v < s.time; });
    i = static_cast<std::size_t>(std::max<std::ptrdiff_t>(1, it - samples_.begin())) - 1;
    self->hint_ = i;
  }
  const auto& a = samples_[i];
  const auto& b = samples_[i + 1];
  const double span = b.time - a.time;
  const double u = span > 0.0 ? (t - a.time) / span : 0.0;
  return geo::lerp(a.pos, b.pos, u);
}

std::vector<MovementModelPtr> TracePlayback::from_trace(const geo::Trace& trace) {
  const std::int32_t n = trace.node_count();
  std::vector<std::vector<geo::TraceSample>> per_node(
      static_cast<std::size_t>(std::max(n, 0)));
  for (const auto& s : trace.samples) {
    per_node[static_cast<std::size_t>(s.node)].push_back(s);
  }
  std::vector<MovementModelPtr> models;
  models.reserve(per_node.size());
  for (auto& samples : per_node) {
    models.push_back(std::make_unique<TracePlayback>(std::move(samples)));
  }
  return models;
}

}  // namespace dtn::mobility
