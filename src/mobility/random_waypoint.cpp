#include "mobility/random_waypoint.hpp"

#include <algorithm>

namespace dtn::mobility {

RandomWaypoint::RandomWaypoint(RandomWaypointParams params) : params_(params) {}

void RandomWaypoint::init(util::Pcg32 rng, double start_time) {
  rng_ = rng;
  pos_ = geo::Vec2{rng_.uniform(params_.world_min.x, params_.world_max.x),
                   rng_.uniform(params_.world_min.y, params_.world_max.y)};
  pause_until_ = start_time;
  pick_waypoint();
}

void RandomWaypoint::pick_waypoint() {
  target_ = geo::Vec2{rng_.uniform(params_.world_min.x, params_.world_max.x),
                      rng_.uniform(params_.world_min.y, params_.world_max.y)};
  speed_ = rng_.uniform(params_.speed_min, params_.speed_max);
}

void RandomWaypoint::step(double now, double dt) {
  double remaining = dt;
  double t = now;
  // A single dt may span pause end + several waypoint arrivals; consume it
  // piecewise so trajectories are independent of the step size.
  while (remaining > 1e-12) {
    if (t < pause_until_) {
      const double wait = std::min(remaining, pause_until_ - t);
      t += wait;
      remaining -= wait;
      continue;
    }
    const double dist_to_target = pos_.distance_to(target_);
    if (speed_ <= 0.0) return;
    const double travel_time = dist_to_target / speed_;
    if (travel_time <= remaining) {
      pos_ = target_;
      t += travel_time;
      remaining -= travel_time;
      pause_until_ = t + rng_.uniform(params_.pause_min, params_.pause_max);
      pick_waypoint();
    } else {
      pos_ += (target_ - pos_).normalized() * (speed_ * remaining);
      remaining = 0.0;
    }
  }
}

}  // namespace dtn::mobility
