// Community-confined random waypoint: each node has a home rectangle (its
// community's district) and picks its next waypoint inside the home area
// with probability `home_prob`, otherwise anywhere in the world (a "roam"
// trip). Produces the high intra-community / low inter-community contact
// frequency asymmetry the CR protocol is designed for, independent of the
// bus map — used by the community_campus example and CR ablations.
#pragma once

#include "geo/vec2.hpp"
#include "mobility/movement_model.hpp"

namespace dtn::mobility {

struct CommunityMovementParams {
  geo::Vec2 world_min{0.0, 0.0};
  geo::Vec2 world_max{2000.0, 2000.0};
  geo::Vec2 home_min{0.0, 0.0};
  geo::Vec2 home_max{500.0, 500.0};
  double home_prob = 0.85;  ///< probability the next waypoint is in-home
  double speed_min = 0.8;
  double speed_max = 1.8;
  double pause_min = 0.0;
  double pause_max = 30.0;
};

class CommunityMovement final : public MovementModel {
 public:
  explicit CommunityMovement(CommunityMovementParams params);

  void init(util::Pcg32 rng, double start_time) override;
  void step(double now, double dt) override;
  [[nodiscard]] geo::Vec2 position() const override { return pos_; }

  /// Parameter block (MovementEngine extracts it into an SoA lane).
  [[nodiscard]] const CommunityMovementParams& params() const noexcept { return params_; }

 private:
  void pick_waypoint();

  CommunityMovementParams params_;
  util::Pcg32 rng_;
  geo::Vec2 pos_;
  geo::Vec2 target_;
  double speed_ = 0.0;
  double pause_until_ = 0.0;
};

}  // namespace dtn::mobility
