// Movement model interface. Each simulated node owns one model instance;
// the simulation kernel calls step(now, dt) once per update interval and
// reads position(). Models receive their own RNG stream at init so node
// trajectories are independent and reproducible.
#pragma once

#include <memory>

#include "geo/vec2.hpp"
#include "util/rng.hpp"

namespace dtn::mobility {

class MovementModel {
 public:
  virtual ~MovementModel() = default;

  /// Places the node at its initial position. `rng` is the node's private
  /// movement stream (taken by value; the model owns it afterwards).
  virtual void init(util::Pcg32 rng, double start_time) = 0;

  /// Advances the trajectory from `now` to `now + dt`.
  virtual void step(double now, double dt) = 0;

  [[nodiscard]] virtual geo::Vec2 position() const = 0;
};

using MovementModelPtr = std::unique_ptr<MovementModel>;

/// Fixed-position model (infrastructure nodes, unit tests).
class Stationary final : public MovementModel {
 public:
  explicit Stationary(geo::Vec2 pos) : pos_(pos) {}
  void init(util::Pcg32 /*rng*/, double /*start_time*/) override {}
  void step(double /*now*/, double /*dt*/) override {}
  [[nodiscard]] geo::Vec2 position() const override { return pos_; }

 private:
  geo::Vec2 pos_;
};

}  // namespace dtn::mobility
