#include "mobility/community_movement.hpp"

#include <algorithm>

namespace dtn::mobility {

CommunityMovement::CommunityMovement(CommunityMovementParams params)
    : params_(params) {}

void CommunityMovement::init(util::Pcg32 rng, double start_time) {
  rng_ = rng;
  pos_ = geo::Vec2{rng_.uniform(params_.home_min.x, params_.home_max.x),
                   rng_.uniform(params_.home_min.y, params_.home_max.y)};
  pause_until_ = start_time;
  pick_waypoint();
}

void CommunityMovement::pick_waypoint() {
  const bool home = rng_.bernoulli(params_.home_prob);
  const geo::Vec2 lo = home ? params_.home_min : params_.world_min;
  const geo::Vec2 hi = home ? params_.home_max : params_.world_max;
  target_ = geo::Vec2{rng_.uniform(lo.x, hi.x), rng_.uniform(lo.y, hi.y)};
  speed_ = rng_.uniform(params_.speed_min, params_.speed_max);
}

void CommunityMovement::step(double now, double dt) {
  double remaining = dt;
  double t = now;
  while (remaining > 1e-12) {
    if (t < pause_until_) {
      const double wait = std::min(remaining, pause_until_ - t);
      t += wait;
      remaining -= wait;
      continue;
    }
    const double dist = pos_.distance_to(target_);
    if (speed_ <= 0.0) return;
    const double travel_time = dist / speed_;
    if (travel_time <= remaining) {
      pos_ = target_;
      t += travel_time;
      remaining -= travel_time;
      pause_until_ = t + rng_.uniform(params_.pause_min, params_.pause_max);
      pick_waypoint();
    } else {
      pos_ += (target_ - pos_).normalized() * (speed_ * remaining);
      remaining = 0.0;
    }
  }
}

}  // namespace dtn::mobility
