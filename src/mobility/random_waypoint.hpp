// Classic random-waypoint mobility: pick a uniform destination in the world
// rectangle, travel at a uniformly drawn speed, pause, repeat. Used by the
// quickstart example and as a non-structured control in ablations.
#pragma once

#include "geo/vec2.hpp"
#include "mobility/movement_model.hpp"

namespace dtn::mobility {

struct RandomWaypointParams {
  geo::Vec2 world_min{0.0, 0.0};
  geo::Vec2 world_max{1000.0, 1000.0};
  double speed_min = 0.5;   ///< m/s
  double speed_max = 1.5;   ///< m/s
  double pause_min = 0.0;   ///< s
  double pause_max = 0.0;   ///< s
};

class RandomWaypoint final : public MovementModel {
 public:
  explicit RandomWaypoint(RandomWaypointParams params);

  void init(util::Pcg32 rng, double start_time) override;
  void step(double now, double dt) override;
  [[nodiscard]] geo::Vec2 position() const override { return pos_; }

  /// Parameter block (MovementEngine extracts it into an SoA lane).
  [[nodiscard]] const RandomWaypointParams& params() const noexcept { return params_; }

 private:
  void pick_waypoint();

  RandomWaypointParams params_;
  util::Pcg32 rng_;
  geo::Vec2 pos_;
  geo::Vec2 target_;
  double speed_ = 0.0;
  double pause_until_ = 0.0;
};

}  // namespace dtn::mobility
