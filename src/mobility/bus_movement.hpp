// Bus movement along a closed map route: the paper's vehicular map-driven
// model. A bus advances a distance cursor along its route polyline at a
// speed redrawn from [speed_min, speed_max] after each stop, pausing at
// regularly spaced stops. Buses sharing (segments of) a route meet
// quasi-periodically — the contact recurrence the EER/CR estimators learn.
#pragma once

#include <memory>

#include "geo/polyline.hpp"
#include "mobility/movement_model.hpp"

namespace dtn::mobility {

struct BusParams {
  double speed_min = 2.7;     ///< m/s (paper Sec. V-A)
  double speed_max = 13.9;    ///< m/s
  double stop_spacing = 600;  ///< meters between stops along the route
  double pause_min = 5.0;     ///< s dwell at a stop
  double pause_max = 20.0;
};

class BusMovement final : public MovementModel {
 public:
  /// `route` is shared: many buses serve the same line.
  BusMovement(std::shared_ptr<const geo::Polyline> route, BusParams params);

  void init(util::Pcg32 rng, double start_time) override;
  void step(double now, double dt) override;
  [[nodiscard]] geo::Vec2 position() const override { return pos_; }

  /// Distance cursor along the route (for tests / trace dumps).
  [[nodiscard]] double cursor() const noexcept { return cursor_; }

  /// Parameter block / route (MovementEngine extracts them into a lane).
  [[nodiscard]] const BusParams& params() const noexcept { return params_; }
  [[nodiscard]] const std::shared_ptr<const geo::Polyline>& route() const noexcept {
    return route_;
  }

 private:
  std::shared_ptr<const geo::Polyline> route_;
  BusParams params_;
  util::Pcg32 rng_;
  geo::Vec2 pos_;
  double cursor_ = 0.0;       ///< arc length along route, wraps at total_length
  double next_stop_ = 0.0;    ///< cursor value of the next stop
  double speed_ = 1.0;
  double pause_until_ = 0.0;
};

}  // namespace dtn::mobility
