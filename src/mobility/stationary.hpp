// Stationary infrastructure nodes (relays, roadside units, throwboxes): a
// node that never moves. The GROUP vocabulary (StationaryParams) describes
// how a whole group of such nodes is placed on the map — a deterministic
// grid or a per-seed uniform draw — while StationaryNodeSpec is the
// resolved per-node placement the engine executes. Stationary nodes cost
// nothing in the movement step loop: the MovementEngine gives them a
// dedicated lane that step_all() never visits (their position is written
// once at init and on reseed).
#pragma once

#include <string>

#include "geo/vec2.hpp"
#include "mobility/movement_model.hpp"

namespace dtn::mobility {

/// Group-level placement vocabulary (`group.<g>.*` keys for
/// `model = stationary`).
///   placement = grid    — the group's nodes are laid out row-major on a
///                         near-square grid over the map extent (inset by
///                         `margin`), deterministically: the same spec
///                         places the same nodes at every seed;
///   placement = uniform — each node draws its position uniformly from the
///                         inset extent out of its own movement stream, so
///                         positions vary per seed like every other model's
///                         trajectories.
struct StationaryParams {
  std::string placement = "grid";  ///< grid | uniform
  double margin = 0.0;             ///< inset from the map edges (m)
};

/// Resolved placement of ONE stationary node (what World::add_node and the
/// engine's stationary lane consume). For grid placement `pos` is final;
/// for uniform placement the position is drawn from the node's movement
/// stream at init (and re-drawn on every reseed) inside [area_min, area_max].
struct StationaryNodeSpec {
  geo::Vec2 pos{0.0, 0.0};
  bool uniform = false;
  geo::Vec2 area_min{0.0, 0.0};
  geo::Vec2 area_max{0.0, 0.0};
};

/// Legacy-path model form (WorldConfig::legacy_movement_path A/B): same
/// draw block as the engine's stationary lane — two uniforms (x, y) when
/// placement is per-seed uniform, no draws otherwise — so trajectories are
/// bit-identical between the lane and the per-object path.
class StationaryNode final : public MovementModel {
 public:
  explicit StationaryNode(const StationaryNodeSpec& spec) : spec_(spec), pos_(spec.pos) {}

  void init(util::Pcg32 rng, double /*start_time*/) override {
    if (spec_.uniform) {
      const double x = rng.uniform(spec_.area_min.x, spec_.area_max.x);
      const double y = rng.uniform(spec_.area_min.y, spec_.area_max.y);
      pos_ = {x, y};
    } else {
      pos_ = spec_.pos;
    }
  }
  void step(double /*now*/, double /*dt*/) override {}
  [[nodiscard]] geo::Vec2 position() const override { return pos_; }

  /// Placement block (MovementEngine extracts it into the stationary lane).
  [[nodiscard]] const StationaryNodeSpec& spec() const noexcept { return spec_; }

 private:
  StationaryNodeSpec spec_;
  geo::Vec2 pos_;
};

}  // namespace dtn::mobility
