#include "geo/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dtn::geo {

std::int32_t Trace::node_count() const {
  std::int32_t max_id = -1;
  for (const auto& s : samples) max_id = std::max(max_id, s.node);
  return max_id + 1;
}

double Trace::duration() const {
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (const auto& s : samples) {
    if (first) {
      lo = hi = s.time;
      first = false;
    } else {
      lo = std::min(lo, s.time);
      hi = std::max(hi, s.time);
    }
  }
  return hi - lo;
}

void Trace::sort() {
  std::sort(samples.begin(), samples.end(), [](const TraceSample& a, const TraceSample& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.node < b.node;
  });
}

Trace parse_trace(const std::string& content) {
  Trace trace;
  std::istringstream in(content);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    TraceSample s;
    if (!(ls >> s.time >> s.node >> s.pos.x >> s.pos.y)) {
      throw std::runtime_error("trace: malformed line " + std::to_string(lineno) +
                               ": '" + line + "'");
    }
    if (s.node < 0) {
      throw std::runtime_error("trace: negative node id at line " + std::to_string(lineno));
    }
    trace.samples.push_back(s);
  }
  trace.sort();
  return trace;
}

Trace read_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("trace: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_trace(buf.str());
}

bool write_trace(const std::string& path, const Trace& trace) {
  Trace sorted = trace;
  sorted.sort();
  std::ofstream f(path);
  if (!f) return false;
  f << "# time node x y\n";
  for (const auto& s : sorted.samples) {
    f << s.time << ' ' << s.node << ' ' << s.pos.x << ' ' << s.pos.y << '\n';
  }
  return f.good();
}

}  // namespace dtn::geo
