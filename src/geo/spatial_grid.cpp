#include "geo/spatial_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dtn::geo {

namespace {

std::int64_t cell_coord(double v, double inv_cell) noexcept {
  return static_cast<std::int64_t>(std::floor(v * inv_cell));
}

// Forward-neighbor offsets: E, NE, N, NW (matching Cell::fwd slots). Every
// unordered cell pair is enumerated exactly once via self + these four.
constexpr std::pair<std::int64_t, std::int64_t> kForward[4] = {
    {1, 0}, {1, 1}, {0, 1}, {-1, 1}};

}  // namespace

SpatialGrid::SpatialGrid(double cell_size, bool walk_all_cells)
    : cell_(cell_size > 0.0 ? cell_size : 1.0),
      inv_cell_(1.0 / cell_),
      walk_all_cells_(walk_all_cells) {}

SpatialGrid::CellKey SpatialGrid::make_key(std::int64_t cx, std::int64_t cy) noexcept {
  // Interleave the two 32-bit (wrapped) cell coordinates into one key.
  const auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx));
  const auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  return (ux << 32) | uy;
}

SpatialGrid::CellKey SpatialGrid::key_for(Vec2 pos) const noexcept {
  return make_key(cell_coord(pos.x, inv_cell_), cell_coord(pos.y, inv_cell_));
}

std::uint32_t SpatialGrid::cell_for_create(CellKey key) {
  if (const auto it = index_.find(key); it != index_.end()) return it->second;
  std::uint32_t slot;
  if (!free_cells_.empty()) {
    slot = free_cells_.back();
    free_cells_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(cells_.size());
    cells_.emplace_back();
  }
  Cell& cell = cells_[slot];
  cell.key = key;
  cell.alive = true;
  cell.emptied_epoch = epoch_;
  assert(cell.size == 0);
  const auto cx = static_cast<std::int64_t>(static_cast<std::int32_t>(key >> 32));
  const auto cy = static_cast<std::int64_t>(static_cast<std::int32_t>(key & 0xffffffffu));
  // Wire the cached neighbor links in both directions: my forward cells,
  // and the backward cells whose forward slot of the same direction is me.
  for (int d = 0; d < 4; ++d) {
    const auto [dx, dy] = kForward[d];
    const auto fwd_it = index_.find(make_key(cx + dx, cy + dy));
    cell.fwd[d] = fwd_it != index_.end() ? fwd_it->second : kNone;
    const auto back_it = index_.find(make_key(cx - dx, cy - dy));
    if (back_it != index_.end()) cells_[back_it->second].fwd[d] = slot;
  }
  index_.emplace(key, slot);
  ++created_since_compact_;
  return slot;
}

void SpatialGrid::add_member(std::uint32_t cell_idx, std::int32_t id) {
  Cell& cell = cells_[cell_idx];
  where_[static_cast<std::size_t>(id)] = Locator{cell_idx, cell.size};
  if (cell.size < Cell::kInline) {
    cell.inline_ids[cell.size] = id;
  } else {
    cell.overflow.push_back(id);
  }
  if (cell.size == 0) {
    // 0 -> 1 transition: enter the occupied index the pair sweep walks.
    cell.occ_idx = static_cast<std::uint32_t>(occupied_.size());
    occupied_.push_back(cell_idx);
  }
  ++cell.size;
  ++count_;
}

void SpatialGrid::remove_member(std::uint32_t cell_idx, std::uint32_t slot) {
  Cell& cell = cells_[cell_idx];
  const std::uint32_t last = cell.size - 1;
  if (slot != last) {
    cell.id_at(slot) = cell.id_at(last);
    where_[static_cast<std::size_t>(cell.id_at(slot))].slot = slot;
  }
  if (last >= Cell::kInline) cell.overflow.pop_back();
  --cell.size;
  if (cell.size == 0) {
    cell.emptied_epoch = epoch_;
    // 1 -> 0 transition: swap-remove from the occupied index.
    const std::uint32_t tail = occupied_.back();
    occupied_[cell.occ_idx] = tail;
    cells_[tail].occ_idx = cell.occ_idx;
    occupied_.pop_back();
    cell.occ_idx = kNone;
  }
  --count_;
}

void SpatialGrid::clear() {
  // Keep cell storage and capacities: the grid is rebuilt every pass with a
  // similar occupancy pattern, so reusing cells avoids allocation churn.
  // Cells empty for kPruneAfter consecutive epochs are dropped so a trace
  // wandering over unbounded terrain cannot grow the structures forever.
  maintain();
  for (Cell& cell : cells_) {
    if (cell.alive && cell.size > 0) {
      cell.size = 0;
      cell.overflow.clear();
      cell.occ_idx = kNone;
      cell.emptied_epoch = epoch_;
    }
  }
  occupied_.clear();
  std::fill(where_.begin(), where_.end(), Locator{});
  count_ = 0;
}

void SpatialGrid::reset() {
  for (Cell& cell : cells_) {
    cell.size = 0;
    cell.overflow.clear();
    cell.alive = false;
    cell.key = 0;
    cell.fwd[0] = cell.fwd[1] = cell.fwd[2] = cell.fwd[3] = kNone;
    cell.occ_idx = kNone;
    cell.emptied_epoch = 0;
  }
  occupied_.clear();
  free_cells_.clear();
  free_cells_.reserve(cells_.size());
  for (std::size_t slot = cells_.size(); slot-- > 0;) {
    free_cells_.push_back(static_cast<std::uint32_t>(slot));
  }
  index_.clear();  // keeps the bucket array
  std::fill(where_.begin(), where_.end(), Locator{});
  count_ = 0;
  created_since_compact_ = 0;
}

void SpatialGrid::advance_epoch() { maintain(); }

void SpatialGrid::maintain() {
  ++epoch_;
  if (epoch_ % kPruneAfter == 0) prune_stale_cells();
  // Re-layout once enough new cells accumulated to degrade locality; after
  // the roaming area has been discovered this never fires again.
  if (created_since_compact_ > 64 && created_since_compact_ * 8 > index_.size()) {
    compact();
  }
}

void SpatialGrid::compact() {
  // Reorder cell storage row-major by (cy, cx) so most cells' forward
  // neighbors (E, NE, N, NW) are memory-adjacent: the pair sweep then
  // streams through the cache instead of chasing discovery order.
  std::vector<std::uint32_t> order;
  order.reserve(index_.size());
  for (std::uint32_t s = 0; s < cells_.size(); ++s) {
    if (cells_[s].alive) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const CellKey ka = cells_[a].key;  // (cx, cy) packed high/low
    const CellKey kb = cells_[b].key;
    const CellKey ra = (ka << 32) | (ka >> 32);  // compare as (cy, cx)
    const CellKey rb = (kb << 32) | (kb >> 32);
    return ra < rb;
  });
  std::vector<std::uint32_t> remap(cells_.size(), kNone);
  std::vector<Cell> reordered;
  reordered.reserve(order.size());
  for (std::uint32_t new_idx = 0; new_idx < order.size(); ++new_idx) {
    remap[order[new_idx]] = new_idx;
    reordered.push_back(std::move(cells_[order[new_idx]]));
  }
  cells_ = std::move(reordered);
  free_cells_.clear();
  for (auto& [key, slot] : index_) slot = remap[slot];
  for (Cell& cell : cells_) {
    for (int d = 0; d < 4; ++d) {
      if (cell.fwd[d] != kNone) cell.fwd[d] = remap[cell.fwd[d]];
    }
  }
  for (Locator& loc : where_) {
    if (loc.cell != kNone) loc.cell = remap[loc.cell];
  }
  for (std::uint32_t& slot : occupied_) slot = remap[slot];
  created_since_compact_ = 0;
}

void SpatialGrid::prune_stale_cells() {
  for (std::uint32_t slot = 0; slot < cells_.size(); ++slot) {
    Cell& cell = cells_[slot];
    if (!cell.alive || cell.size > 0 || epoch_ - cell.emptied_epoch < kPruneAfter) {
      continue;
    }
    index_.erase(cell.key);
    const auto cx = static_cast<std::int64_t>(static_cast<std::int32_t>(cell.key >> 32));
    const auto cy =
        static_cast<std::int64_t>(static_cast<std::int32_t>(cell.key & 0xffffffffu));
    for (int d = 0; d < 4; ++d) {
      const auto [dx, dy] = kForward[d];
      const auto back_it = index_.find(make_key(cx - dx, cy - dy));
      if (back_it != index_.end()) cells_[back_it->second].fwd[d] = kNone;
    }
    std::vector<std::int32_t>().swap(cell.overflow);  // actually release memory
    cell.alive = false;
    cell.key = 0;
    free_cells_.push_back(slot);
  }
}

void SpatialGrid::insert(std::int32_t id, Vec2 pos) {
  assert(id >= 0 && "ids must be non-negative");
  if (static_cast<std::size_t>(id) >= where_.size()) {
    where_.resize(static_cast<std::size_t>(id) + 1);
    pos_by_id_.resize(static_cast<std::size_t>(id) + 1);
  }
  pos_by_id_[static_cast<std::size_t>(id)] = pos;
  add_member(cell_for_create(key_for(pos)), id);
}

void SpatialGrid::update(std::int32_t id, Vec2 pos) {
  assert(id >= 0 && "ids must be non-negative");
  if (static_cast<std::size_t>(id) >= where_.size()) {
    where_.resize(static_cast<std::size_t>(id) + 1);
    pos_by_id_.resize(static_cast<std::size_t>(id) + 1);
  }
  pos_by_id_[static_cast<std::size_t>(id)] = pos;
  const Locator loc = where_[static_cast<std::size_t>(id)];
  const CellKey key = key_for(pos);
  if (loc.cell != kNone) {
    const Cell& cell = cells_[loc.cell];
    assert(cell.alive && cell.id_at(loc.slot) == id);
    if (cell.key == key) return;  // same cell: nothing to relocate
    remove_member(loc.cell, loc.slot);
  }
  add_member(cell_for_create(key), id);
}

bool SpatialGrid::remove(std::int32_t id) {
  if (id < 0 || static_cast<std::size_t>(id) >= where_.size()) return false;
  const Locator loc = where_[static_cast<std::size_t>(id)];
  if (loc.cell == kNone) return false;
  remove_member(loc.cell, loc.slot);
  where_[static_cast<std::size_t>(id)] = Locator{};
  return true;
}

std::vector<std::int32_t> SpatialGrid::query(Vec2 pos, double radius,
                                             std::int32_t exclude_id) const {
  std::vector<std::int32_t> result;
  query_into(pos, radius, result, exclude_id);
  return result;
}

void SpatialGrid::query_into(Vec2 pos, double radius, std::vector<std::int32_t>& out,
                             std::int32_t exclude_id) const {
  out.clear();
  const double r2 = radius * radius;
  const std::int64_t cx = cell_coord(pos.x, inv_cell_);
  const std::int64_t cy = cell_coord(pos.y, inv_cell_);
  const auto reach = static_cast<std::int64_t>(std::ceil(radius * inv_cell_));
  for (std::int64_t dx = -reach; dx <= reach; ++dx) {
    for (std::int64_t dy = -reach; dy <= reach; ++dy) {
      const auto it = index_.find(make_key(cx + dx, cy + dy));
      if (it == index_.end()) continue;
      const Cell& cell = cells_[it->second];
      for (std::uint32_t i = 0; i < cell.size; ++i) {
        const std::int32_t id = cell.id_at(i);
        if (id == exclude_id) continue;
        if (pos.distance2_to(pos_by_id_[static_cast<std::size_t>(id)]) <= r2) {
          out.push_back(id);
        }
      }
    }
  }
}

std::vector<std::pair<std::int32_t, std::int32_t>> SpatialGrid::all_pairs(
    double radius) const {
  // The seed algorithm, kept as the benchmark baseline: iterate the hash
  // index and find() each forward neighbor, allocating a fresh result.
  std::vector<std::pair<std::int32_t, std::int32_t>> pairs;
  const double r2 = radius * radius;
  for (const auto& [key, slot] : index_) {
    const Cell& cell = cells_[slot];
    if (cell.size == 0) continue;
    const auto cx = static_cast<std::int64_t>(static_cast<std::int32_t>(key >> 32));
    const auto cy = static_cast<std::int64_t>(static_cast<std::int32_t>(key & 0xffffffffu));
    for (int d = -1; d < 4; ++d) {
      const bool self = d < 0;
      const Cell* other = &cell;
      if (!self) {
        const auto [dx, dy] = kForward[d];
        const auto it = index_.find(make_key(cx + dx, cy + dy));
        if (it == index_.end() || cells_[it->second].size == 0) continue;
        other = &cells_[it->second];
      }
      for (std::uint32_t i = 0; i < cell.size; ++i) {
        const std::uint32_t j_begin = self ? i + 1 : 0;
        const std::int32_t a = cell.id_at(i);
        const Vec2 pa = pos_by_id_[static_cast<std::size_t>(a)];
        for (std::uint32_t j = j_begin; j < other->size; ++j) {
          const std::int32_t b = other->id_at(j);
          if (pa.distance2_to(pos_by_id_[static_cast<std::size_t>(b)]) <= r2) {
            pairs.emplace_back(std::min(a, b), std::max(a, b));
          }
        }
      }
    }
  }
  return pairs;
}

void SpatialGrid::all_pairs_into(
    double radius, std::vector<std::pair<std::int32_t, std::int32_t>>& out) const {
  out.clear();
  const double r2 = radius * radius;
  // Fast path: walk only the occupied cells through the cached forward
  // links — no hash lookups, no allocations past `out`'s high-water mark,
  // and no time spent streaming tracked-but-empty cells (on route-bound
  // mobility those outnumber occupied cells by an order of magnitude).
  // When most tracked cells ARE occupied, the occupied list's discovery
  // order would only shuffle the compact()-sorted storage order, so dense
  // grids keep the sequential storage walk (identical pair sets either
  // way; order is unspecified per the header contract and callers sort).
  // Member positions come from the L1-resident pos_by_id_ array.
  const Vec2* pos = pos_by_id_.data();
  // Prefer the sequential storage walk only when it is genuinely dense:
  // most tracked cells occupied AND few dead high-water slots diluting the
  // storage (after reset() a small scenario can inherit a large previous
  // scenario's slab; streaming its dead slots every step would dwarf the
  // handful of live cells).
  const bool walk_all =
      walk_all_cells_ || (occupied_.size() * 2 >= index_.size() &&
                          cells_.size() < index_.size() * 2);
  const std::size_t n_sweep = walk_all ? cells_.size() : occupied_.size();
  for (std::size_t k = 0; k < n_sweep; ++k) {
    const std::size_t ci = walk_all ? k : occupied_[k];
    if (k + 1 < n_sweep) {
      // Hide the latency of the next cell's scattered neighbor loads behind
      // this cell's pair work.
      const Cell& next = cells_[walk_all ? k + 1 : occupied_[k + 1]];
      if (next.size != 0) {
        for (int d = 0; d < 4; ++d) {
          if (next.fwd[d] != kNone) __builtin_prefetch(&cells_[next.fwd[d]]);
        }
      }
    }
    const Cell& cell = cells_[ci];
    if (cell.size == 0) continue;
    for (int d = -1; d < 4; ++d) {
      const bool self = d < 0;
      const Cell* other = &cell;
      if (!self) {
        const std::uint32_t fwd = cell.fwd[d];
        if (fwd == kNone || cells_[fwd].size == 0) continue;
        other = &cells_[fwd];
      }
      for (std::uint32_t i = 0; i < cell.size; ++i) {
        const std::uint32_t j_begin = self ? i + 1 : 0;
        const std::int32_t a = cell.id_at(i);
        const Vec2 pa = pos[static_cast<std::size_t>(a)];
        for (std::uint32_t j = j_begin; j < other->size; ++j) {
          const std::int32_t b = other->id_at(j);
          if (pa.distance2_to(pos[static_cast<std::size_t>(b)]) <= r2) {
            out.emplace_back(std::min(a, b), std::max(a, b));
          }
        }
      }
    }
  }
}

}  // namespace dtn::geo
