#include "geo/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

namespace dtn::geo {

namespace {

std::int64_t cell_coord(double v, double cell) noexcept {
  return static_cast<std::int64_t>(std::floor(v / cell));
}

}  // namespace

SpatialGrid::SpatialGrid(double cell_size) : cell_(cell_size > 0.0 ? cell_size : 1.0) {}

SpatialGrid::CellKey SpatialGrid::make_key(std::int64_t cx, std::int64_t cy) noexcept {
  // Interleave the two 32-bit (wrapped) cell coordinates into one key.
  const auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx));
  const auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  return (ux << 32) | uy;
}

SpatialGrid::CellKey SpatialGrid::key_for(Vec2 pos) const noexcept {
  return make_key(cell_coord(pos.x, cell_), cell_coord(pos.y, cell_));
}

void SpatialGrid::clear() {
  // Keep bucket memory: the grid is rebuilt every step with a similar
  // occupancy pattern, so reusing vectors avoids per-step allocation churn.
  for (auto& [key, entries] : cells_) entries.clear();
  count_ = 0;
}

void SpatialGrid::insert(std::int32_t id, Vec2 pos) {
  cells_[key_for(pos)].push_back(Entry{id, pos});
  ++count_;
}

std::vector<std::int32_t> SpatialGrid::query(Vec2 pos, double radius,
                                             std::int32_t exclude_id) const {
  std::vector<std::int32_t> result;
  const double r2 = radius * radius;
  const std::int64_t cx = cell_coord(pos.x, cell_);
  const std::int64_t cy = cell_coord(pos.y, cell_);
  const auto reach = static_cast<std::int64_t>(std::ceil(radius / cell_));
  for (std::int64_t dx = -reach; dx <= reach; ++dx) {
    for (std::int64_t dy = -reach; dy <= reach; ++dy) {
      const auto it = cells_.find(make_key(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      for (const Entry& e : it->second) {
        if (e.id == exclude_id) continue;
        if (pos.distance2_to(e.pos) <= r2) result.push_back(e.id);
      }
    }
  }
  return result;
}

std::vector<std::pair<std::int32_t, std::int32_t>> SpatialGrid::all_pairs(
    double radius) const {
  std::vector<std::pair<std::int32_t, std::int32_t>> pairs;
  const double r2 = radius * radius;
  // Forward-neighbor offsets: (0,0) self plus E, NE, N, NW. Every unordered
  // cell pair is then enumerated exactly once.
  static constexpr std::pair<std::int64_t, std::int64_t> kOffsets[] = {
      {0, 0}, {1, 0}, {1, 1}, {0, 1}, {-1, 1}};
  for (const auto& [key, entries] : cells_) {
    if (entries.empty()) continue;
    const auto cx = static_cast<std::int64_t>(static_cast<std::int32_t>(key >> 32));
    const auto cy = static_cast<std::int64_t>(static_cast<std::int32_t>(key & 0xffffffffu));
    for (const auto& [dx, dy] : kOffsets) {
      const bool self = dx == 0 && dy == 0;
      const std::vector<Entry>* other = &entries;
      if (!self) {
        const auto it = cells_.find(make_key(cx + dx, cy + dy));
        if (it == cells_.end() || it->second.empty()) continue;
        other = &it->second;
      }
      for (std::size_t i = 0; i < entries.size(); ++i) {
        const std::size_t j_begin = self ? i + 1 : 0;
        for (std::size_t j = j_begin; j < other->size(); ++j) {
          const Entry& a = entries[i];
          const Entry& b = (*other)[j];
          if (a.pos.distance2_to(b.pos) <= r2) {
            pairs.emplace_back(std::min(a.id, b.id), std::max(a.id, b.id));
          }
        }
      }
    }
  }
  return pairs;
}

}  // namespace dtn::geo
