// Mobility trace I/O. Traces are the bridge to real-world datasets
// (CRAWDAD-style): each record is `time node_id x y` in a plain text file.
// The TracePlayback movement model replays them; write_trace lets any
// scenario dump its trajectories for offline analysis or reuse.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/vec2.hpp"

namespace dtn::geo {

struct TraceSample {
  double time = 0.0;
  std::int32_t node = 0;
  Vec2 pos;
};

struct Trace {
  std::vector<TraceSample> samples;  ///< sorted by (time, node)

  /// Number of distinct node ids (max id + 1).
  [[nodiscard]] std::int32_t node_count() const;
  [[nodiscard]] double duration() const;
  void sort();
};

/// Parses a whitespace-separated `time node x y` file. Lines starting with
/// '#' are comments. Throws std::runtime_error on malformed input.
Trace read_trace(const std::string& path);

/// Writes samples in the same format (sorted first). Returns false on I/O
/// failure.
bool write_trace(const std::string& path, const Trace& trace);

/// Parses trace content from a string (same grammar as read_trace); used by
/// unit tests and in-memory pipelines.
Trace parse_trace(const std::string& content);

}  // namespace dtn::geo
