// Uniform hash grid for O(1) neighbor queries, with two maintenance modes:
//
//  - Rebuild mode (seed behavior): clear() + insert() every pass. Kept for
//    small clouds, tests, and as the benchmark baseline.
//  - Incremental mode: update(id, pos) moves a point between cells only
//    when it actually crosses a cell boundary (a ~10 m cell at vehicular
//    speeds and 0.1 s steps means ~90% of updates touch nothing but the
//    stored position). Combined with all_pairs_into() this makes a full
//    detection pass allocation- and hash-lookup-free in steady state.
//
// Cells live in a slot vector; each cell caches the indices of its four
// forward neighbors (E, NE, N, NW), patched when cells are created or
// pruned, so pair enumeration never consults the hash index. The hash index
// (cell key -> slot) is touched only when a point crosses into a cell that
// is not already tracked. Cells that stay empty for kPruneAfter consecutive
// epochs are pruned so long traces over unbounded terrain cannot grow the
// structures forever.
//
// Pair sweeps walk the OCCUPIED-cell index (PR 3): cells enter/leave a
// dense occupied list on their 0<->1 member transitions (cell crossings
// only, O(1)), so all_pairs_into touches O(occupied) cells instead of
// O(tracked). On route-structured mobility the tracked set is the union of
// everywhere any node has recently been — easily 10-30x the cells occupied
// at one instant (and periodic route revisits keep them from pruning), so
// the sweep was dominated by streaming empty cells at campaign-sized node
// counts. `walk_all_cells` restores the PR2-era full-storage sweep as an
// in-binary benchmark baseline (identical pair sets, seed cost profile).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geo/vec2.hpp"

namespace dtn::geo {

class SpatialGrid {
 public:
  /// `walk_all_cells` selects the pre-occupied-index pair sweep (bench
  /// baseline only; pair sets are identical either way).
  explicit SpatialGrid(double cell_size, bool walk_all_cells = false);

  /// Removes every point (cell structure and capacities are retained).
  void clear();
  /// Removes every point AND every tracked cell, retaining only the vector
  /// capacities. Unlike clear(), the next pass rediscovers its cell set
  /// from scratch — the right call when the upcoming points live in a
  /// different region (a World rebuilt for a different map/seed), where
  /// clear()'s retained cells would be pure stale-iteration overhead for
  /// the pair sweep until pruning catches up.
  void reset();
  /// Adds a point. Ids must be non-negative and unique among the points
  /// currently present (positions live in an id-indexed side array so the
  /// pair sweep touches one cache line per cell).
  void insert(std::int32_t id, Vec2 pos);
  /// Inserts `id` or moves it to `pos`, relocating cells only on boundary
  /// crossings. Requires id >= 0.
  void update(std::int32_t id, Vec2 pos);
  /// Removes `id` if present; returns whether it was.
  bool remove(std::int32_t id);
  /// Marks the start of a detection pass in incremental mode (update()
  /// maintenance): advances the pruning epoch. clear() does this itself.
  void advance_epoch();

  /// Ids of all inserted points within `radius` of `pos` (exact distance
  /// filter applied on top of the candidate cells). Excludes `exclude_id`.
  [[nodiscard]] std::vector<std::int32_t> query(Vec2 pos, double radius,
                                                std::int32_t exclude_id = -1) const;

  /// Allocation-free variant of query(): clears `out` and appends matches.
  void query_into(Vec2 pos, double radius, std::vector<std::int32_t>& out,
                  std::int32_t exclude_id = -1) const;

  /// All unordered pairs (a < b) within `radius` of each other, via hash
  /// lookups per neighbor cell and a freshly allocated result (the seed
  /// algorithm — kept as the benchmark baseline; all_pairs_into is the
  /// fast path). Precondition: radius <= cell_size() (the detector
  /// constructs the grid with cell == radio range, so this always holds).
  [[nodiscard]] std::vector<std::pair<std::int32_t, std::int32_t>> all_pairs(
      double radius) const;

  /// Fast allocation-free all_pairs: clears `out`, appends every unordered
  /// pair (a < b) within `radius`, walking the cached forward-neighbor
  /// links instead of the hash index. Pair order is unspecified; callers
  /// needing determinism must sort (the simulator diffs sorted key
  /// vectors, so it always does).
  void all_pairs_into(double radius,
                      std::vector<std::pair<std::int32_t, std::int32_t>>& out) const;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_; }
  /// Number of distinct cells currently tracked (occupied or retained
  /// empty); exposed so tests can observe stale-cell pruning.
  [[nodiscard]] std::size_t cell_count() const noexcept { return index_.size(); }
  /// Number of cells currently holding at least one point — the set the
  /// pair sweep walks; exposed so tests can pin the occupied-index
  /// bookkeeping.
  [[nodiscard]] std::size_t occupied_cell_count() const noexcept {
    return occupied_.size();
  }

  /// A cell empty for this many consecutive epochs is pruned.
  static constexpr std::uint64_t kPruneAfter = 2048;

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Cells hold member ids only — positions live in the id-indexed
  /// pos_by_id_ array (sequentially rewritten by update(), L1-resident
  /// during the pair sweep). Ids live inline in the cell up to kInline
  /// (with 10 m cells and DTN densities the mean occupancy is ~1, so
  /// overflow is rare); the overflow vector keeps correctness for dense
  /// hot spots. This makes the pair sweep one cache fetch per cell instead
  /// of a dependent cell -> heap-vector pointer chase.
  struct Cell {
    static constexpr std::uint32_t kInline = 8;
    std::int32_t inline_ids[kInline];
    std::vector<std::int32_t> overflow;
    std::uint32_t size = 0;
    std::uint64_t key = 0;
    std::uint32_t fwd[4] = {kNone, kNone, kNone, kNone};  ///< E, NE, N, NW
    std::uint32_t occ_idx = kNone;    ///< position in occupied_ (kNone if empty)
    std::uint64_t emptied_epoch = 0;  ///< epoch the cell last became empty
    bool alive = false;

    [[nodiscard]] std::int32_t& id_at(std::uint32_t i) noexcept {
      return i < kInline ? inline_ids[i] : overflow[i - kInline];
    }
    [[nodiscard]] std::int32_t id_at(std::uint32_t i) const noexcept {
      return i < kInline ? inline_ids[i] : overflow[i - kInline];
    }
  };

  /// Where one id currently lives (indexed by id; incremental mode only).
  struct Locator {
    std::uint32_t cell = kNone;
    std::uint32_t slot = 0;
  };

  using CellKey = std::uint64_t;
  [[nodiscard]] CellKey key_for(Vec2 pos) const noexcept;
  static CellKey make_key(std::int64_t cx, std::int64_t cy) noexcept;

  [[nodiscard]] std::uint32_t cell_for_create(CellKey key);
  void add_member(std::uint32_t cell_idx, std::int32_t id);
  void remove_member(std::uint32_t cell_idx, std::uint32_t slot);
  void maintain();
  void prune_stale_cells();
  void compact();

  double cell_;
  double inv_cell_;  // multiply instead of divide in the per-point hot path
  bool walk_all_cells_ = false;  // bench baseline: sweep the whole storage
  std::size_t count_ = 0;
  std::uint64_t epoch_ = 0;
  std::size_t created_since_compact_ = 0;
  std::vector<Cell> cells_;                         // slot storage
  std::vector<std::uint32_t> free_cells_;           // free slots in cells_
  std::vector<std::uint32_t> occupied_;             // cells with size > 0
  std::unordered_map<CellKey, std::uint32_t> index_;  // key -> slot
  std::vector<Locator> where_;                      // id -> location
  std::vector<Vec2> pos_by_id_;                     // id -> position
};

}  // namespace dtn::geo
