// Uniform hash grid for O(1) neighbor queries. The contact detector
// rebuilds the grid each simulation step (cheap: one insert per node) and
// asks for candidate pairs within the radio range; with cell size equal to
// the range only the 3x3 cell neighborhood must be scanned.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/vec2.hpp"

namespace dtn::geo {

class SpatialGrid {
 public:
  explicit SpatialGrid(double cell_size);

  void clear();
  void insert(std::int32_t id, Vec2 pos);

  /// Ids of all inserted points within `radius` of `pos` (exact distance
  /// filter applied on top of the candidate cells). Excludes `exclude_id`.
  [[nodiscard]] std::vector<std::int32_t> query(Vec2 pos, double radius,
                                                std::int32_t exclude_id = -1) const;

  /// All unordered pairs (a < b) within `radius` of each other. This is the
  /// contact-detection workhorse: each cell is compared against itself and
  /// the 4 forward neighbor cells so every pair is visited exactly once.
  /// Precondition: radius <= cell_size() (the detector constructs the grid
  /// with cell == radio range, so this always holds in the simulator).
  [[nodiscard]] std::vector<std::pair<std::int32_t, std::int32_t>> all_pairs(
      double radius) const;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_; }

 private:
  struct Entry {
    std::int32_t id;
    Vec2 pos;
  };

  using CellKey = std::uint64_t;
  [[nodiscard]] CellKey key_for(Vec2 pos) const noexcept;
  static CellKey make_key(std::int64_t cx, std::int64_t cy) noexcept;

  double cell_;
  std::size_t count_ = 0;
  std::unordered_map<CellKey, std::vector<Entry>> cells_;
};

}  // namespace dtn::geo
