// Road network as an undirected graph of intersections. Bus routes are
// generated as closed walks over this graph; movement models then follow
// the resulting polylines. This substitutes for the ONE simulator's WKT
// Helsinki map (see DESIGN.md, substitution table).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/polyline.hpp"
#include "geo/vec2.hpp"

namespace dtn::geo {

using NodeId = std::int32_t;

class MapGraph {
 public:
  static constexpr NodeId kInvalid = -1;

  /// Adds an intersection; returns its id (dense, starting at 0).
  NodeId add_node(Vec2 pos);

  /// Adds an undirected road segment between two intersections. Duplicate
  /// edges are ignored. Length is the Euclidean distance.
  void add_edge(NodeId a, NodeId b);

  [[nodiscard]] std::size_t node_count() const noexcept { return positions_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }
  [[nodiscard]] Vec2 position(NodeId id) const { return positions_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId id) const {
    return adjacency_.at(static_cast<std::size_t>(id));
  }

  /// Intersection nearest to an arbitrary point (linear scan; maps are
  /// built once per scenario so this is not hot).
  [[nodiscard]] NodeId nearest_node(Vec2 p) const;

  /// Shortest path (Dijkstra over edge lengths). Returns the sequence of
  /// node ids from `from` to `to` inclusive; empty if unreachable.
  [[nodiscard]] std::vector<NodeId> shortest_path(NodeId from, NodeId to) const;

  /// Converts a node-id walk into a polyline of intersection positions.
  [[nodiscard]] Polyline walk_to_polyline(const std::vector<NodeId>& walk,
                                          bool closed) const;

  /// True when every node can reach every other node.
  [[nodiscard]] bool connected() const;

  /// Axis-aligned bounding box of all intersections ({min, max}).
  [[nodiscard]] std::pair<Vec2, Vec2> bounds() const;

 private:
  std::vector<Vec2> positions_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace dtn::geo
