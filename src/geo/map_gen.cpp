#include "geo/map_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace dtn::geo {

namespace {

using util::Pcg32;
using util::StreamPurpose;

// Grid node id for intersection (r, c) given cols+1 intersections per row.
NodeId grid_id(int r, int c, int cols) {
  return static_cast<NodeId>(r * (cols + 1) + c);
}

}  // namespace

int BusNetwork::district_of(Vec2 p) const {
  if (districts <= 0 || world_width <= 0.0) return 0;
  const double band = world_width / districts;
  auto d = static_cast<int>(p.x / band);
  return std::clamp(d, 0, districts - 1);
}

MapGraph generate_grid_map(const DowntownParams& params) {
  MapGraph map;
  Pcg32 rng = util::derive_stream(params.seed, 0, StreamPurpose::kMapGen);
  const double jitter = params.jitter_frac * params.block_m;
  for (int r = 0; r <= params.rows; ++r) {
    for (int c = 0; c <= params.cols; ++c) {
      // Keep the outer boundary straight so the bounding box is exact.
      const bool border = r == 0 || c == 0 || r == params.rows || c == params.cols;
      const double jx = border ? 0.0 : rng.uniform(-jitter, jitter);
      const double jy = border ? 0.0 : rng.uniform(-jitter, jitter);
      map.add_node(Vec2{c * params.block_m + jx, r * params.block_m + jy});
    }
  }
  for (int r = 0; r <= params.rows; ++r) {
    for (int c = 0; c <= params.cols; ++c) {
      if (c < params.cols) map.add_edge(grid_id(r, c, params.cols), grid_id(r, c + 1, params.cols));
      if (r < params.rows) map.add_edge(grid_id(r, c, params.cols), grid_id(r + 1, c, params.cols));
    }
  }
  // A few diagonal "avenues" make shortest paths less rectilinear, which
  // diversifies route overlap patterns.
  const int diagonals = (params.rows * params.cols) / 24;
  for (int i = 0; i < diagonals; ++i) {
    const int r = static_cast<int>(rng.uniform_int(0, params.rows - 1));
    const int c = static_cast<int>(rng.uniform_int(0, params.cols - 1));
    map.add_edge(grid_id(r, c, params.cols), grid_id(r + 1, c + 1, params.cols));
  }
  return map;
}

BusNetwork generate_downtown(const DowntownParams& params) {
  BusNetwork net;
  net.map = generate_grid_map(params);
  net.districts = std::max(1, params.districts);
  net.world_width = params.cols * params.block_m;
  net.world_height = params.rows * params.block_m;

  Pcg32 rng = util::derive_stream(params.seed, 1, StreamPurpose::kMapGen);

  // The hub: the intersection nearest the map center. Routes that visit it
  // give CR's inter-community phase its cross-district contact opportunities.
  const NodeId hub = net.map.nearest_node(
      Vec2{net.world_width / 2.0, net.world_height / 2.0});

  const int cols_per_district =
      std::max(1, (params.cols + 1) / net.districts);

  for (int d = 0; d < net.districts; ++d) {
    const int c_lo = d * cols_per_district;
    const int c_hi = d == net.districts - 1 ? params.cols
                                            : std::min(params.cols, c_lo + cols_per_district);
    for (int k = 0; k < params.routes_per_district; ++k) {
      // Pick anchor intersections inside the district's column band.
      std::vector<NodeId> anchors;
      const int tries = std::max(2, params.anchors_per_route);
      for (int a = 0; a < tries; ++a) {
        const int r = static_cast<int>(rng.uniform_int(0, params.rows));
        const int c = static_cast<int>(rng.uniform_int(c_lo, c_hi));
        const NodeId id = grid_id(r, c, params.cols);
        if (std::find(anchors.begin(), anchors.end(), id) == anchors.end()) {
          anchors.push_back(id);
        }
      }
      if (anchors.size() < 2) {
        // Degenerate draw (all anchors collided); fall back to a minimal
        // two-anchor route across the band.
        anchors = {grid_id(0, c_lo, params.cols), grid_id(params.rows, c_hi, params.cols)};
      }
      if (rng.bernoulli(params.hub_visit_prob) &&
          std::find(anchors.begin(), anchors.end(), hub) == anchors.end()) {
        anchors.push_back(hub);
      }
      // Connect the anchors in sequence with shortest paths and close the
      // loop back to the first anchor.
      std::vector<NodeId> walk;
      for (std::size_t i = 0; i < anchors.size(); ++i) {
        const NodeId from = anchors[i];
        const NodeId to = anchors[(i + 1) % anchors.size()];
        std::vector<NodeId> leg = net.map.shortest_path(from, to);
        if (leg.empty()) continue;  // grid maps are connected; defensive only
        if (!walk.empty()) leg.erase(leg.begin());  // drop duplicated junction
        walk.insert(walk.end(), leg.begin(), leg.end());
      }
      if (walk.size() >= 2 && walk.front() == walk.back()) walk.pop_back();
      if (walk.size() < 2) continue;
      BusRoute route;
      route.line = net.map.walk_to_polyline(walk, /*closed=*/true);
      route.district = d;
      if (route.line.total_length() > 0.0) net.routes.push_back(std::move(route));
    }
  }
  return net;
}

}  // namespace dtn::geo
