// Synthetic "downtown" generator: a jittered Manhattan road grid divided
// into districts, with cyclic bus routes that mostly stay inside their home
// district but all pass through a central hub. This reproduces the two
// structural properties of the paper's Helsinki bus scenario that the
// results depend on: (1) quasi-periodic pairwise meetings of buses on
// overlapping route segments, and (2) district-level contact locality (the
// "community" structure CR exploits). See DESIGN.md substitution table.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/map_graph.hpp"
#include "geo/polyline.hpp"

namespace dtn::geo {

struct DowntownParams {
  int rows = 12;              ///< grid rows (blocks)
  int cols = 16;              ///< grid columns (blocks)
  double block_m = 250.0;     ///< block edge length in meters
  double jitter_frac = 0.15;  ///< intersection jitter as a fraction of block_m
  int districts = 4;          ///< number of districts (communities)
  int routes_per_district = 3;
  int anchors_per_route = 3;  ///< home-district anchor intersections per route
  double hub_visit_prob = 0.8;  ///< probability a route includes the central hub
  std::uint64_t seed = 1;
};

struct BusRoute {
  Polyline line;  ///< closed polyline over road segments
  int district = 0;
};

struct BusNetwork {
  MapGraph map;
  std::vector<BusRoute> routes;
  int districts = 0;
  /// District of an arbitrary map point (column-band partition).
  [[nodiscard]] int district_of(Vec2 p) const;
  double world_width = 0.0;
  double world_height = 0.0;
};

/// Generates the jittered road grid (no routes). Always connected.
MapGraph generate_grid_map(const DowntownParams& params);

/// Generates the full bus network: map + closed routes + district labels.
/// Every route is a closed walk on the road graph with total length > 0.
BusNetwork generate_downtown(const DowntownParams& params);

}  // namespace dtn::geo
