#include "geo/map_graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace dtn::geo {

NodeId MapGraph::add_node(Vec2 pos) {
  positions_.push_back(pos);
  adjacency_.emplace_back();
  return static_cast<NodeId>(positions_.size() - 1);
}

void MapGraph::add_edge(NodeId a, NodeId b) {
  if (a == b) return;
  auto& na = adjacency_.at(static_cast<std::size_t>(a));
  if (std::find(na.begin(), na.end(), b) != na.end()) return;
  na.push_back(b);
  adjacency_.at(static_cast<std::size_t>(b)).push_back(a);
  ++edge_count_;
}

NodeId MapGraph::nearest_node(Vec2 p) const {
  NodeId best = kInvalid;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const double d2 = p.distance2_to(positions_[i]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<NodeId>(i);
    }
  }
  return best;
}

std::vector<NodeId> MapGraph::shortest_path(NodeId from, NodeId to) const {
  const std::size_t n = positions_.size();
  if (from < 0 || to < 0 || static_cast<std::size_t>(from) >= n ||
      static_cast<std::size_t>(to) >= n) {
    return {};
  }
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<NodeId> prev(n, kInvalid);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<std::size_t>(from)] = 0.0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == to) break;
    for (const NodeId v : adjacency_[static_cast<std::size_t>(u)]) {
      const double w = positions_[static_cast<std::size_t>(u)].distance_to(
          positions_[static_cast<std::size_t>(v)]);
      const double nd = d + w;
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        prev[static_cast<std::size_t>(v)] = u;
        heap.emplace(nd, v);
      }
    }
  }
  if (dist[static_cast<std::size_t>(to)] == std::numeric_limits<double>::infinity()) {
    return {};
  }
  std::vector<NodeId> path;
  for (NodeId cur = to; cur != kInvalid; cur = prev[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Polyline MapGraph::walk_to_polyline(const std::vector<NodeId>& walk, bool closed) const {
  std::vector<Vec2> pts;
  pts.reserve(walk.size());
  for (const NodeId id : walk) pts.push_back(position(id));
  return Polyline(std::move(pts), closed);
}

bool MapGraph::connected() const {
  const std::size_t n = positions_.size();
  if (n == 0) return true;
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const NodeId v : adjacency_[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == n;
}

std::pair<Vec2, Vec2> MapGraph::bounds() const {
  if (positions_.empty()) return {Vec2{}, Vec2{}};
  Vec2 lo = positions_.front();
  Vec2 hi = positions_.front();
  for (const Vec2 p : positions_) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  return {lo, hi};
}

}  // namespace dtn::geo
