// Polyline with arc-length parameterization. Bus routes are closed
// polylines; movement models advance a distance-along-route cursor and ask
// the polyline for the corresponding position.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geo/vec2.hpp"

namespace dtn::geo {

class Polyline {
 public:
  Polyline() = default;
  /// `closed` appends an implicit segment from the last point back to the
  /// first, making point_at(s) periodic in total_length().
  explicit Polyline(std::vector<Vec2> points, bool closed = false);

  [[nodiscard]] const std::vector<Vec2>& points() const noexcept { return points_; }
  [[nodiscard]] bool closed() const noexcept { return closed_; }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  /// Total arc length including the closing segment when closed.
  [[nodiscard]] double total_length() const noexcept { return total_length_; }

  /// Position at arc length s from the start. Open polylines clamp to the
  /// endpoints; closed polylines wrap modulo total_length().
  [[nodiscard]] Vec2 point_at(double s) const noexcept;

  /// point_at() with a caller-held segment cursor: `hint` remembers the
  /// last containing segment so a monotonically advancing s (the bus
  /// movement kernel) finds its segment by a short forward walk instead of
  /// a binary search per query. Falls back to the binary search whenever
  /// the hint does not apply (wrap, jump, first call) — the returned
  /// position is bit-identical to point_at(s) in every case.
  [[nodiscard]] Vec2 point_at_hinted(double s, std::uint32_t& hint) const noexcept;

  /// Cumulative arc length at the i-th vertex.
  [[nodiscard]] double length_at_vertex(std::size_t i) const;

  /// Arc length of the point on the polyline closest to p (open segment
  /// projection; used to place nodes on their nearest route point).
  [[nodiscard]] double project(Vec2 p) const noexcept;

 private:
  [[nodiscard]] double wrap_arc_length(double s) const noexcept;
  [[nodiscard]] Vec2 at_segment(double s, std::size_t idx) const noexcept;

  std::vector<Vec2> points_;
  std::vector<double> cumulative_;  // cumulative_[i] = length up to vertex i
  double total_length_ = 0.0;
  bool closed_ = false;
};

}  // namespace dtn::geo
