// Polyline with arc-length parameterization. Bus routes are closed
// polylines; movement models advance a distance-along-route cursor and ask
// the polyline for the corresponding position.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/vec2.hpp"

namespace dtn::geo {

class Polyline {
 public:
  Polyline() = default;
  /// `closed` appends an implicit segment from the last point back to the
  /// first, making point_at(s) periodic in total_length().
  explicit Polyline(std::vector<Vec2> points, bool closed = false);

  [[nodiscard]] const std::vector<Vec2>& points() const noexcept { return points_; }
  [[nodiscard]] bool closed() const noexcept { return closed_; }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  /// Total arc length including the closing segment when closed.
  [[nodiscard]] double total_length() const noexcept { return total_length_; }

  /// Position at arc length s from the start. Open polylines clamp to the
  /// endpoints; closed polylines wrap modulo total_length().
  [[nodiscard]] Vec2 point_at(double s) const noexcept;

  /// Cumulative arc length at the i-th vertex.
  [[nodiscard]] double length_at_vertex(std::size_t i) const;

  /// Arc length of the point on the polyline closest to p (open segment
  /// projection; used to place nodes on their nearest route point).
  [[nodiscard]] double project(Vec2 p) const noexcept;

 private:
  std::vector<Vec2> points_;
  std::vector<double> cumulative_;  // cumulative_[i] = length up to vertex i
  double total_length_ = 0.0;
  bool closed_ = false;
};

}  // namespace dtn::geo
