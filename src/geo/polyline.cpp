#include "geo/polyline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dtn::geo {

Polyline::Polyline(std::vector<Vec2> points, bool closed)
    : points_(std::move(points)), closed_(closed) {
  cumulative_.resize(points_.size(), 0.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    cumulative_[i] = cumulative_[i - 1] + points_[i - 1].distance_to(points_[i]);
  }
  total_length_ = points_.empty() ? 0.0 : cumulative_.back();
  if (closed_ && points_.size() >= 2) {
    total_length_ += points_.back().distance_to(points_.front());
  }
}

double Polyline::length_at_vertex(std::size_t i) const { return cumulative_.at(i); }

double Polyline::wrap_arc_length(double s) const noexcept {
  if (closed_ && total_length_ > 0.0) {
    s = std::fmod(s, total_length_);
    if (s < 0.0) s += total_length_;
    return s;
  }
  return std::clamp(s, 0.0, total_length_);
}

Vec2 Polyline::at_segment(double s, std::size_t idx) const noexcept {
  // `idx` is the upper_bound index: first vertex whose cumulative length
  // exceeds s, or size() when s lies on the closing segment.
  if (idx == cumulative_.size()) {
    // On the closing segment (only reachable when closed).
    const double seg_start = cumulative_.back();
    const double seg_len = total_length_ - seg_start;
    const double t = seg_len > 0.0 ? (s - seg_start) / seg_len : 0.0;
    return lerp(points_.back(), points_.front(), t);
  }
  if (idx == 0) return points_[0];
  const double seg_start = cumulative_[idx - 1];
  const double seg_len = cumulative_[idx] - seg_start;
  const double t = seg_len > 0.0 ? (s - seg_start) / seg_len : 0.0;
  return lerp(points_[idx - 1], points_[idx], t);
}

Vec2 Polyline::point_at(double s) const noexcept {
  if (points_.empty()) return {};
  if (points_.size() == 1) return points_[0];
  s = wrap_arc_length(s);
  // Binary search over cumulative lengths for the containing segment.
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  return at_segment(s, static_cast<std::size_t>(it - cumulative_.begin()));
}

Vec2 Polyline::point_at_hinted(double s, std::uint32_t& hint) const noexcept {
  if (points_.empty()) return {};
  if (points_.size() == 1) return points_[0];
  s = wrap_arc_length(s);
  const std::size_t n = cumulative_.size();
  std::size_t idx = std::min<std::size_t>(hint, n);
  if (idx > 0 && cumulative_[idx - 1] > s) {
    // The cursor jumped backwards (wrap / reseed): rebase by binary search.
    const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
    idx = static_cast<std::size_t>(it - cumulative_.begin());
  } else {
    // Forward walk from a position at or before the target segment lands
    // on the same "first cumulative > s" index upper_bound would find.
    while (idx < n && cumulative_[idx] <= s) ++idx;
  }
  hint = static_cast<std::uint32_t>(idx);
  return at_segment(s, idx);
}

double Polyline::project(Vec2 p) const noexcept {
  if (points_.size() < 2) return 0.0;
  double best_s = 0.0;
  double best_d2 = std::numeric_limits<double>::infinity();
  const std::size_t segs = closed_ ? points_.size() : points_.size() - 1;
  for (std::size_t i = 0; i < segs; ++i) {
    const Vec2 a = points_[i];
    const Vec2 b = points_[(i + 1) % points_.size()];
    const Vec2 ab = b - a;
    const double len2 = ab.norm2();
    double t = len2 > 0.0 ? std::clamp((p - a).dot(ab) / len2, 0.0, 1.0) : 0.0;
    const Vec2 q = a + ab * t;
    const double d2 = p.distance2_to(q);
    if (d2 < best_d2) {
      best_d2 = d2;
      const double seg_start = i < cumulative_.size() ? cumulative_[i] : 0.0;
      best_s = seg_start + t * std::sqrt(len2);
    }
  }
  return best_s;
}

}  // namespace dtn::geo
