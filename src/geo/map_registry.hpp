// String-keyed registry of map sources for the declarative scenario layer.
// A map source turns `map.*` keys into the world geometry a scenario runs
// on: the downtown generator (bus routes + districts), an open field (just
// an extent, for waypoint-style mobility), or a recorded trace (extent +
// per-node trajectories). Like the mobility registry, entries own the key
// vocabulary (parse + serialize) and the build step; scenario composition
// stays in the harness.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "geo/map_gen.hpp"
#include "geo/trace.hpp"
#include "util/value_parse.hpp"

namespace dtn::geo {

/// Union-of-kinds parameter block for the map source (same flat-value
/// pattern as mobility::GroupParams). `downtown.seed` is not part of the
/// key vocabulary: the scenario seed overrides it at build time so one seed
/// drives the whole run.
struct MapParams {
  DowntownParams downtown;
  double width = 2400.0;   ///< open_field extent (m)
  double height = 2400.0;  ///< open_field extent (m)
  std::string trace_file;  ///< trace source path
};

/// A built map: everything group builders need to place nodes.
struct BuiltMap {
  Vec2 world_min{0.0, 0.0};
  Vec2 world_max{0.0, 0.0};
  /// Downtown only: the generated network (districts for communities).
  std::optional<BusNetwork> network;
  /// Downtown only: routes as shared polylines, one per BusNetwork route.
  std::vector<std::shared_ptr<const Polyline>> routes;
  /// Trace only: the loaded trace (shared: cached per path, so sweep
  /// workers re-running the same scenario don't re-read the file).
  std::shared_ptr<const Trace> trace;
};

struct MapKindInfo {
  std::string name;
  util::KvResult (*set)(MapParams&, const std::string& key, const std::string& value);
  void (*emit)(const MapParams&, std::vector<std::pair<std::string, std::string>>& out);
  /// Builds the geometry. `seed` is the scenario seed (downtown maps vary
  /// with it). Throws std::runtime_error on unloadable inputs (trace file).
  BuiltMap (*build)(const MapParams&, std::uint64_t seed);
  /// Capabilities, matched against group-model needs at spec validation so
  /// `dtnsim check` rejects what run would reject (e.g. a bus group on an
  /// open field).
  bool provides_routes = false;
  bool provides_trace = false;
};

const MapKindInfo* find_map_kind(const std::string& name);
std::vector<std::string> map_kind_names();
void register_map_kind(const MapKindInfo& info);

}  // namespace dtn::geo
