// 2-D vector type used for node positions (meters, world coordinates).
#pragma once

#include <cmath>

namespace dtn::geo {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) noexcept { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) noexcept { x -= o.x; y -= o.y; return *this; }
  constexpr bool operator==(const Vec2&) const noexcept = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
  [[nodiscard]] constexpr double norm2() const noexcept { return x * x + y * y; }
  [[nodiscard]] double norm() const noexcept { return std::sqrt(norm2()); }

  [[nodiscard]] double distance_to(Vec2 o) const noexcept { return (*this - o).norm(); }
  [[nodiscard]] constexpr double distance2_to(Vec2 o) const noexcept {
    return (*this - o).norm2();
  }

  /// Unit vector (zero vector maps to zero).
  [[nodiscard]] Vec2 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

/// Linear interpolation a + t*(b-a); t is not clamped.
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) noexcept { return a + (b - a) * t; }

}  // namespace dtn::geo
