#include "geo/map_registry.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

namespace dtn::geo {

namespace {

using util::KvResult;

// ---- downtown ---------------------------------------------------------------

KvResult downtown_set(MapParams& p, const std::string& key, const std::string& value) {
  DowntownParams& d = p.downtown;
  if (key == "rows") return util::kv_set(d.rows, value);
  if (key == "cols") return util::kv_set(d.cols, value);
  if (key == "block") return util::kv_set(d.block_m, value);
  if (key == "jitter") return util::kv_set(d.jitter_frac, value);
  if (key == "districts") return util::kv_set(d.districts, value);
  if (key == "routes_per_district") return util::kv_set(d.routes_per_district, value);
  if (key == "anchors_per_route") return util::kv_set(d.anchors_per_route, value);
  if (key == "hub_visit_prob") return util::kv_set(d.hub_visit_prob, value);
  return KvResult::kUnknownKey;
}

void downtown_emit(const MapParams& p,
                   std::vector<std::pair<std::string, std::string>>& out) {
  const DowntownParams& d = p.downtown;
  out.emplace_back("rows", util::format_value(d.rows));
  out.emplace_back("cols", util::format_value(d.cols));
  out.emplace_back("block", util::format_value(d.block_m));
  out.emplace_back("jitter", util::format_value(d.jitter_frac));
  out.emplace_back("districts", util::format_value(d.districts));
  out.emplace_back("routes_per_district", util::format_value(d.routes_per_district));
  out.emplace_back("anchors_per_route", util::format_value(d.anchors_per_route));
  out.emplace_back("hub_visit_prob", util::format_value(d.hub_visit_prob));
}

BuiltMap downtown_build(const MapParams& p, std::uint64_t seed) {
  DowntownParams d = p.downtown;
  d.seed = seed;  // the scenario seed drives the map
  BuiltMap built;
  built.network = generate_downtown(d);
  built.routes.reserve(built.network->routes.size());
  for (const auto& r : built.network->routes) {
    built.routes.push_back(std::make_shared<const Polyline>(r.line));
  }
  built.world_min = {0.0, 0.0};
  built.world_max = {built.network->world_width, built.network->world_height};
  return built;
}

// ---- open_field -------------------------------------------------------------

KvResult open_field_set(MapParams& p, const std::string& key, const std::string& value) {
  if (key == "width") return util::kv_set(p.width, value);
  if (key == "height") return util::kv_set(p.height, value);
  return KvResult::kUnknownKey;
}

void open_field_emit(const MapParams& p,
                     std::vector<std::pair<std::string, std::string>>& out) {
  out.emplace_back("width", util::format_value(p.width));
  out.emplace_back("height", util::format_value(p.height));
}

BuiltMap open_field_build(const MapParams& p, std::uint64_t /*seed*/) {
  BuiltMap built;
  built.world_min = {0.0, 0.0};
  built.world_max = {p.width, p.height};
  return built;
}

// ---- trace ------------------------------------------------------------------

KvResult trace_set(MapParams& p, const std::string& key, const std::string& value) {
  if (key == "file") {
    p.trace_file = value;
    return KvResult::kOk;
  }
  return KvResult::kUnknownKey;
}

void trace_emit(const MapParams& p,
                std::vector<std::pair<std::string, std::string>>& out) {
  out.emplace_back("file", p.trace_file);
}

struct CachedTrace {
  std::shared_ptr<const Trace> trace;
  Vec2 lo;  ///< bounding box, computed once at load
  Vec2 hi;
};

/// Traces are seed-independent but build() runs once per scenario run, so
/// a campaign over one trace would re-read the file (and re-scan its
/// extent) for every (protocol, seed) task — cache per path instead.
/// Entries live for the process (fine for CLI/bench lifetimes); files are
/// assumed immutable while cached.
CachedTrace load_trace_cached(const std::string& path) {
  static std::mutex mutex;
  static std::map<std::string, CachedTrace> cache;
  const std::lock_guard<std::mutex> lock(mutex);
  auto& entry = cache[path];
  if (!entry.trace) {
    entry.trace = std::make_shared<const Trace>(read_trace(path));
    if (!entry.trace->samples.empty()) {
      entry.lo = entry.trace->samples.front().pos;
      entry.hi = entry.lo;
      for (const auto& s : entry.trace->samples) {
        entry.lo.x = std::min(entry.lo.x, s.pos.x);
        entry.lo.y = std::min(entry.lo.y, s.pos.y);
        entry.hi.x = std::max(entry.hi.x, s.pos.x);
        entry.hi.y = std::max(entry.hi.y, s.pos.y);
      }
    }
  }
  return entry;
}

BuiltMap trace_build(const MapParams& p, std::uint64_t /*seed*/) {
  if (p.trace_file.empty()) {
    throw std::runtime_error("map.kind = trace requires map.file");
  }
  const CachedTrace cached = load_trace_cached(p.trace_file);
  if (cached.trace->samples.empty()) {
    throw std::runtime_error("trace map '" + p.trace_file + "' has no samples");
  }
  BuiltMap built;
  built.trace = cached.trace;
  built.world_min = cached.lo;
  built.world_max = cached.hi;
  return built;
}

std::vector<MapKindInfo>& registry() {
  static std::vector<MapKindInfo> kinds{
      {"downtown", downtown_set, downtown_emit, downtown_build,
       /*provides_routes=*/true, /*provides_trace=*/false},
      {"open_field", open_field_set, open_field_emit, open_field_build,
       /*provides_routes=*/false, /*provides_trace=*/false},
      {"trace", trace_set, trace_emit, trace_build,
       /*provides_routes=*/false, /*provides_trace=*/true},
  };
  return kinds;
}

}  // namespace

const MapKindInfo* find_map_kind(const std::string& name) {
  for (const auto& k : registry()) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

std::vector<std::string> map_kind_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& k : registry()) names.push_back(k.name);
  return names;
}

void register_map_kind(const MapKindInfo& info) {
  for (auto& k : registry()) {
    if (k.name == info.name) {
      k = info;
      return;
    }
  }
  registry().push_back(info);
}

}  // namespace dtn::geo
