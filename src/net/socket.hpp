#pragma once
// Minimal blocking TCP socket layer for the multi-host campaign fabric.
//
// Scope is deliberately narrow: IPv4, blocking I/O with poll-based
// timeouts, no TLS, no auth. `dtnsim serve` binds it to loopback or a
// trusted-network interface; see README "Multi-host campaigns" for the
// security posture. Like util/subprocess, the Windows build gets clean
// stubs that fail with a diagnostic instead of an #error.

#include <cstdint>
#include <memory>
#include <string>

namespace dtn::net {

// Outcome of a single receive with a deadline.
enum class RecvStatus {
  kData,     // >= 1 byte received
  kTimeout,  // deadline expired with no data
  kEof,      // orderly peer shutdown
  kError,    // socket error (message in Stream::last_error())
};

// A connected TCP stream. Move-only wrapper over one file descriptor.
class Stream {
 public:
  Stream() = default;
  ~Stream();
  Stream(Stream&& other) noexcept;
  Stream& operator=(Stream&& other) noexcept;
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  // Connect to host:port with a bounded wait. Returns a closed stream on
  // failure and describes why in `error`.
  static Stream connect(const std::string& host, int port, int timeout_ms,
                        std::string* error);

  bool open() const { return fd_ >= 0; }
  void close();

  // Write the whole buffer (retrying short writes). False on error; the
  // peer resetting the connection is an error, not a crash (SIGPIPE is
  // suppressed).
  bool send_all(const void* data, std::size_t len);

  // Read up to `cap` bytes with a deadline. On kData, `*got` holds the
  // byte count. timeout_ms < 0 blocks indefinitely.
  RecvStatus recv_some(void* buf, std::size_t cap, int timeout_ms,
                       std::size_t* got);

  // "host:port" of the peer, best effort ("?" when unavailable).
  std::string peer() const;

  const std::string& last_error() const { return error_; }

 private:
  explicit Stream(int fd) : fd_(fd) {}
  friend class Listener;

  int fd_ = -1;
  std::string error_;
};

// A listening TCP socket. Move-only.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Bind and listen on bind_addr:port (IPv4 dotted quad or "0.0.0.0").
  // port 0 picks an ephemeral port; the bound port is in port() after a
  // successful open. Returns a closed listener + `error` on failure.
  static Listener open(const std::string& bind_addr, int port,
                       std::string* error);

  bool is_open() const { return fd_ >= 0; }
  int port() const { return port_; }
  void close();

  // Wait up to timeout_ms for one connection. Returns a closed Stream on
  // timeout or error; `error` (optional) distinguishes the two (empty on
  // timeout). timeout_ms < 0 blocks indefinitely.
  Stream accept(int timeout_ms, std::string* error = nullptr);

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace dtn::net
