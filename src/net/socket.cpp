#include "net/socket.hpp"

#ifndef _WIN32

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dtn::net {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool set_nonblocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  if (on) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  return ::fcntl(fd, F_SETFL, flags) == 0;
}

// poll() one fd for `events`, retrying EINTR against the original
// deadline. Returns poll's result semantics: >0 ready, 0 timeout, <0 error.
int poll_fd(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

}  // namespace

// ---- Stream -----------------------------------------------------------------

Stream::~Stream() { close(); }

Stream::Stream(Stream&& other) noexcept
    : fd_(other.fd_), error_(std::move(other.error_)) {
  other.fd_ = -1;
}

Stream& Stream::operator=(Stream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    error_ = std::move(other.error_);
    other.fd_ = -1;
  }
  return *this;
}

void Stream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Stream Stream::connect(const std::string& host, int port, int timeout_ms,
                       std::string* error) {
  Stream out;
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    if (error) *error = "resolve " + host + ": " + ::gai_strerror(rc);
    return out;
  }
  std::string last = "no addresses";
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = errno_string("socket");
      continue;
    }
    if (!set_nonblocking(fd, true)) {
      last = errno_string("fcntl");
      ::close(fd);
      continue;
    }
    rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno != EINPROGRESS) {
      last = errno_string("connect");
      ::close(fd);
      continue;
    }
    if (rc != 0) {
      int ready = poll_fd(fd, POLLOUT, timeout_ms);
      if (ready <= 0) {
        last = ready == 0 ? "connect timed out" : errno_string("poll");
        ::close(fd);
        continue;
      }
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
          soerr != 0) {
        last = std::string("connect: ") + std::strerror(soerr ? soerr : errno);
        ::close(fd);
        continue;
      }
    }
    if (!set_nonblocking(fd, false)) {
      last = errno_string("fcntl");
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(res);
    out.fd_ = fd;
    return out;
  }
  ::freeaddrinfo(res);
  if (error) *error = "connect " + host + ":" + port_str + ": " + last;
  return out;
}

bool Stream::send_all(const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = errno_string("send");
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

RecvStatus Stream::recv_some(void* buf, std::size_t cap, int timeout_ms,
                             std::size_t* got) {
  *got = 0;
  int ready = poll_fd(fd_, POLLIN, timeout_ms);
  if (ready == 0) return RecvStatus::kTimeout;
  if (ready < 0) {
    error_ = errno_string("poll");
    return RecvStatus::kError;
  }
  for (;;) {
    ssize_t n = ::recv(fd_, buf, cap, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = errno_string("recv");
      return RecvStatus::kError;
    }
    if (n == 0) return RecvStatus::kEof;
    *got = static_cast<std::size_t>(n);
    return RecvStatus::kData;
  }
}

std::string Stream::peer() const {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (fd_ < 0 ||
      ::getpeername(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
          0 ||
      addr.sin_family != AF_INET) {
    return "?";
  }
  char ip[INET_ADDRSTRLEN] = {0};
  if (!::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip))) return "?";
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

// ---- Listener ---------------------------------------------------------------

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

Listener Listener::open(const std::string& bind_addr, int port,
                        std::string* error) {
  Listener out;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad bind address (IPv4 expected): " + bind_addr;
    return out;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = errno_string("socket");
    return out;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error) {
      *error = "bind " + bind_addr + ":" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    ::close(fd);
    return out;
  }
  if (::listen(fd, 16) != 0) {
    if (error) *error = errno_string("listen");
    ::close(fd);
    return out;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    if (error) *error = errno_string("getsockname");
    ::close(fd);
    return out;
  }
  out.fd_ = fd;
  out.port_ = ntohs(addr.sin_port);
  return out;
}

Stream Listener::accept(int timeout_ms, std::string* error) {
  if (error) error->clear();
  Stream out;
  if (fd_ < 0) {
    if (error) *error = "listener is closed";
    return out;
  }
  int ready = poll_fd(fd_, POLLIN, timeout_ms);
  if (ready == 0) return out;  // timeout: closed stream, empty error
  if (ready < 0) {
    if (error) *error = errno_string("poll");
    return out;
  }
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (error) *error = errno_string("accept");
      return out;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    out.fd_ = fd;
    return out;
  }
}

}  // namespace dtn::net

#else  // _WIN32

// Windows stubs: the fabric is POSIX-only for now (same policy as
// util/subprocess). Everything fails cleanly with a diagnostic.

namespace dtn::net {

Stream::~Stream() = default;
Stream::Stream(Stream&&) noexcept {}
Stream& Stream::operator=(Stream&&) noexcept { return *this; }
void Stream::close() {}

Stream Stream::connect(const std::string&, int, int, std::string* error) {
  if (error) *error = "net::Stream is not supported on this platform";
  return Stream();
}

bool Stream::send_all(const void*, std::size_t) {
  error_ = "net::Stream is not supported on this platform";
  return false;
}

RecvStatus Stream::recv_some(void*, std::size_t, int, std::size_t* got) {
  *got = 0;
  error_ = "net::Stream is not supported on this platform";
  return RecvStatus::kError;
}

std::string Stream::peer() const { return "?"; }

Listener::~Listener() = default;
Listener::Listener(Listener&&) noexcept {}
Listener& Listener::operator=(Listener&&) noexcept { return *this; }
void Listener::close() {}

Listener Listener::open(const std::string&, int, std::string* error) {
  if (error) *error = "net::Listener is not supported on this platform";
  return Listener();
}

Stream Listener::accept(int, std::string* error) {
  if (error) *error = "net::Listener is not supported on this platform";
  return Stream();
}

}  // namespace dtn::net

#endif  // _WIN32
