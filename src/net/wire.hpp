#pragma once
// Length-prefixed, CRC-32-checksummed message framing for the campaign
// fabric, reusing the `%DTNJ1` header discipline from harness/journal:
//
//   %DTNW1 <type> <payload-len> <crc32-hex8>\n<payload>\n
//
// `type` is a lowercase token (hello/assign/progress/journal/done/error),
// the length is decimal bytes of the payload alone, and the CRC (IEEE
// 802.3, util/checksum) covers the payload alone. Unlike the journal —
// where a torn tail is expected and recovery keeps the longest valid
// prefix — a framing violation on an in-order byte stream means the peer
// is broken or foreign, so corruption is terminal: the decoder latches
// kCorrupt and the connection must be dropped.

#include <cstddef>
#include <string>

#include "net/socket.hpp"

namespace dtn::net {

enum class MessageType {
  kHello,     // protocol version + campaign fingerprint
  kAssign,    // serialized base spec + axes + shard selector
  kProgress,  // journal-growth heartbeat: valid records + byte length
  kJournal,   // the shard's journal bytes shipped back
  kDone,      // shard finished (payload: "0" clean / "1" with failures)
  kError,     // terminal failure, payload is the diagnostic
};

// Lowercase wire token for a message type ("hello", "assign", ...).
const char* message_type_token(MessageType type);

struct Message {
  MessageType type = MessageType::kError;
  std::string payload;
};

// Serialize one frame (header + payload + trailing newline).
std::string encode_frame(MessageType type, const std::string& payload);

// Incremental frame parser over an in-order byte stream. Feed bytes as
// they arrive; next() yields complete messages. Any malformed header,
// oversized length, checksum mismatch, or missing terminator latches the
// decoder into the corrupt state permanently.
class FrameDecoder {
 public:
  enum class Result {
    kMessage,   // *out holds the next complete message
    kNeedMore,  // no complete frame buffered yet
    kCorrupt,   // stream violated the framing; terminal
  };

  // Largest payload a frame may carry (shard journals are typically KBs
  // to low MBs; anything past this is a corrupt length field).
  static constexpr std::size_t kMaxPayload = 256ull * 1024 * 1024;

  void feed(const char* data, std::size_t len);
  void feed(const std::string& bytes) { feed(bytes.data(), bytes.size()); }

  Result next(Message* out);

  bool corrupt() const { return corrupt_; }
  const std::string& corrupt_reason() const { return corrupt_reason_; }

  // Bytes buffered but not yet part of a yielded message. Nonzero at EOF
  // means the peer died mid-frame.
  std::size_t pending() const { return buffer_.size() - consumed_; }

 private:
  Result fail(const std::string& reason);

  std::string buffer_;
  std::size_t consumed_ = 0;  // bytes of buffer_ already parsed
  bool corrupt_ = false;
  std::string corrupt_reason_;
};

// Outcome of a blocking receive of one complete message.
enum class WireRecvStatus {
  kMessage,
  kTimeout,  // deadline expired before a full frame arrived
  kEof,      // peer closed cleanly between frames
  kCorrupt,  // framing violation (decoder reason in *error)
  kError,    // socket error (in *error)
};

// Encode + send one frame on the stream.
bool send_message(Stream& stream, MessageType type,
                  const std::string& payload);

// Receive exactly one message, pulling bytes through `decoder` with an
// overall deadline. EOF mid-frame reports kCorrupt, not kEof.
WireRecvStatus recv_message(Stream& stream, FrameDecoder& decoder,
                            int timeout_ms, Message* out,
                            std::string* error);

}  // namespace dtn::net
