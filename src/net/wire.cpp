#include "net/wire.hpp"

#include <array>
#include <chrono>
#include <cstdio>

#include "util/checksum.hpp"

namespace dtn::net {

namespace {

constexpr char kMagic[] = "%DTNW1";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;
// Magic + type token + 20-digit length + space-separated 8-hex CRC fits
// comfortably; a header line longer than this is corrupt, not "pending".
constexpr std::size_t kMaxHeaderLine = 64;

constexpr std::array<const char*, 6> kTypeTokens = {
    "hello", "assign", "progress", "journal", "done", "error"};

bool token_to_type(const std::string& token, MessageType* out) {
  for (std::size_t i = 0; i < kTypeTokens.size(); ++i) {
    if (token == kTypeTokens[i]) {
      *out = static_cast<MessageType>(i);
      return true;
    }
  }
  return false;
}

std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return std::string(buf);
}

// Parse a lowercase 8-digit hex CRC; strict like harness/journal.
bool parse_crc_hex(const std::string& text, std::uint32_t* out) {
  if (text.size() != 8) return false;
  std::uint32_t value = 0;
  for (char c : text) {
    std::uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

bool parse_decimal_len(const std::string& text, std::size_t* out) {
  if (text.empty() || text.size() > 12) return false;
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

const char* message_type_token(MessageType type) {
  return kTypeTokens[static_cast<std::size_t>(type)];
}

std::string encode_frame(MessageType type, const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 48);
  out += kMagic;
  out += ' ';
  out += message_type_token(type);
  out += ' ';
  out += std::to_string(payload.size());
  out += ' ';
  out += crc_hex(dtn::util::crc32(payload));
  out += '\n';
  out += payload;
  out += '\n';
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t len) {
  if (corrupt_) return;
  // Drop the already-parsed prefix before growing, so a long session
  // doesn't accumulate every frame ever received.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, len);
}

FrameDecoder::Result FrameDecoder::fail(const std::string& reason) {
  corrupt_ = true;
  corrupt_reason_ = reason;
  buffer_.clear();
  consumed_ = 0;
  return Result::kCorrupt;
}

FrameDecoder::Result FrameDecoder::next(Message* out) {
  if (corrupt_) return Result::kCorrupt;
  const std::size_t avail = buffer_.size() - consumed_;
  // Reject a bad magic as soon as enough bytes exist to judge it, so a
  // foreign peer is detected without waiting for a newline.
  const std::size_t probe = avail < kMagicLen ? avail : kMagicLen;
  if (buffer_.compare(consumed_, probe, kMagic, probe) != 0) {
    return fail("bad frame magic");
  }
  std::size_t nl = buffer_.find('\n', consumed_);
  if (nl == std::string::npos) {
    if (avail > kMaxHeaderLine) return fail("unterminated frame header");
    return Result::kNeedMore;
  }
  const std::string header = buffer_.substr(consumed_, nl - consumed_);
  if (header.size() > kMaxHeaderLine) return fail("oversized frame header");
  // header: %DTNW1 <type> <len> <crc>
  std::size_t p1 = header.find(' ');
  std::size_t p2 = p1 == std::string::npos ? std::string::npos
                                           : header.find(' ', p1 + 1);
  std::size_t p3 = p2 == std::string::npos ? std::string::npos
                                           : header.find(' ', p2 + 1);
  if (p1 != kMagicLen || p2 == std::string::npos || p3 == std::string::npos ||
      header.find(' ', p3 + 1) != std::string::npos) {
    return fail("malformed frame header");
  }
  const std::string type_token = header.substr(p1 + 1, p2 - p1 - 1);
  const std::string len_token = header.substr(p2 + 1, p3 - p2 - 1);
  const std::string crc_token = header.substr(p3 + 1);
  MessageType type;
  if (!token_to_type(type_token, &type)) {
    return fail("unknown frame type '" + type_token + "'");
  }
  std::size_t payload_len = 0;
  if (!parse_decimal_len(len_token, &payload_len) ||
      payload_len > kMaxPayload) {
    return fail("bad frame length '" + len_token + "'");
  }
  std::uint32_t want_crc = 0;
  if (!parse_crc_hex(crc_token, &want_crc)) {
    return fail("bad frame checksum field '" + crc_token + "'");
  }
  // Need payload + trailing '\n' after the header newline.
  if (buffer_.size() - (nl + 1) < payload_len + 1) return Result::kNeedMore;
  const char* payload = buffer_.data() + nl + 1;
  if (payload[payload_len] != '\n') {
    return fail("missing frame terminator");
  }
  std::uint32_t got_crc = dtn::util::crc32(
      std::string_view(payload, payload_len));
  if (got_crc != want_crc) {
    return fail("frame checksum mismatch");
  }
  out->type = type;
  out->payload.assign(payload, payload_len);
  consumed_ = nl + 1 + payload_len + 1;
  return Result::kMessage;
}

bool send_message(Stream& stream, MessageType type,
                  const std::string& payload) {
  const std::string frame = encode_frame(type, payload);
  return stream.send_all(frame.data(), frame.size());
}

WireRecvStatus recv_message(Stream& stream, FrameDecoder& decoder,
                            int timeout_ms, Message* out,
                            std::string* error) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           timeout_ms < 0 ? 0 : timeout_ms);
  for (;;) {
    switch (decoder.next(out)) {
      case FrameDecoder::Result::kMessage:
        return WireRecvStatus::kMessage;
      case FrameDecoder::Result::kCorrupt:
        if (error) *error = decoder.corrupt_reason();
        return WireRecvStatus::kCorrupt;
      case FrameDecoder::Result::kNeedMore:
        break;
    }
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - Clock::now())
                      .count();
      if (left <= 0) return WireRecvStatus::kTimeout;
      wait_ms = static_cast<int>(left);
    }
    char buf[16384];
    std::size_t got = 0;
    switch (stream.recv_some(buf, sizeof(buf), wait_ms, &got)) {
      case RecvStatus::kData:
        decoder.feed(buf, got);
        break;
      case RecvStatus::kTimeout:
        return WireRecvStatus::kTimeout;
      case RecvStatus::kEof:
        if (decoder.pending() > 0) {
          if (error) *error = "connection closed mid-frame";
          return WireRecvStatus::kCorrupt;
        }
        return WireRecvStatus::kEof;
      case RecvStatus::kError:
        if (error) *error = stream.last_error();
        return WireRecvStatus::kError;
    }
  }
}

}  // namespace dtn::net
