#include "routing/meed.hpp"

#include <vector>

#include "core/dijkstra.hpp"
#include "sim/world.hpp"

namespace dtn::routing {

void MeedRouter::ensure_state() {
  if (!mi_) mi_ = std::make_unique<core::MiMatrix>(world().node_count());
}

double MeedRouter::eed(sim::NodeIdx dst) {
  ensure_state();
  if (mi_->version() != dist_version_) {
    // MEED's delay graph is the MI of average intervals itself: the own row
    // is our averages, foreign rows arrive via the link-state exchange.
    const auto n = mi_->size();
    std::vector<double> w(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    for (core::NodeIdx i = 0; i < n; ++i) {
      const double* row = mi_->row_data(i);
      std::copy(row, row + n, w.begin() + static_cast<std::ptrdiff_t>(i) * n);
      w[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(i)] = 0.0;
    }
    dist_ = core::dijkstra_dense(w, n, self()).dist;
    dist_version_ = mi_->version();
  }
  return dist_.at(static_cast<std::size_t>(dst));
}

void MeedRouter::on_contact_up(sim::NodeIdx peer) {
  ensure_state();
  const double t = now();
  history_.record_contact(peer, t);
  const core::PairHistory* ph = history_.pair(peer);
  if (ph != nullptr && !ph->intervals.empty()) {
    mi_->set_entry(self(), peer, ph->average_interval(), t);
  }
  auto* peer_router = dynamic_cast<MeedRouter*>(&world().router_of(peer));
  if (peer_router != nullptr) {
    peer_router->ensure_state();
    if (self() < peer) {
      charge_control_bytes(2 * static_cast<std::int64_t>(mi_->size()) * 8);
      const int to_self = mi_->merge_from(*peer_router->mi_);
      const int to_peer = peer_router->mi_->merge_from(*mi_);
      charge_control_bytes((to_self + to_peer) * mi_->row_bytes());
    }
  }
  for (const auto& sm : buffer()) route_one(sm, peer, peer_router);
}

void MeedRouter::route_one(const sim::StoredMessage& sm, sim::NodeIdx peer,
                           MeedRouter* peer_router) {
  if (sm.msg.expired_at(now())) return;
  if (sm.msg.dst == peer) {
    send_copy(peer, sm.msg.id, 1, 0);
    return;
  }
  if (peer_router == nullptr || peer_has(peer, sm.msg.id)) return;
  charge_control_bytes(8);
  if (eed(sm.msg.dst) > peer_router->eed(sm.msg.dst)) {
    send_copy(peer, sm.msg.id, 1, 1);  // single copy moves
  }
}

void MeedRouter::on_message_created(const sim::Message& m) {
  ensure_state();
  const sim::StoredMessage* sm = buffer().find(m.id);
  if (sm == nullptr) return;
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) {
    auto* peer_router = dynamic_cast<MeedRouter*>(&world().router_of(peer));
    route_one(*sm, peer, peer_router);
  }
}

}  // namespace dtn::routing
