#include "routing/spray_and_wait.hpp"

#include <vector>

#include "sim/world.hpp"

namespace dtn::routing {

int SprayAndWaitRouter::spray_amount(const sim::StoredMessage& sm) const {
  if (sm.replicas <= 1) return 0;
  return params_.binary ? sm.replicas / 2 : 1;
}

void SprayAndWaitRouter::try_spray(const sim::StoredMessage& sm, sim::NodeIdx peer) {
  if (sm.msg.expired_at(now())) return;
  if (sm.msg.dst == peer) {
    send_copy(peer, sm.msg.id, 1, 0);
    return;
  }
  if (peer_has(peer, sm.msg.id)) return;
  const int give = spray_amount(sm);
  if (give >= 1) {
    send_copy(peer, sm.msg.id, give, give);
  } else {
    single_copy_phase(sm, peer);
  }
}

void SprayAndWaitRouter::on_contact_up(sim::NodeIdx peer) {
  for (const auto& sm : buffer()) try_spray(sm, peer);
}

void SprayAndWaitRouter::on_message_created(const sim::Message& m) {
  const sim::StoredMessage* sm = buffer().find(m.id);
  if (sm == nullptr) return;
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) try_spray(*sm, peer);
}

}  // namespace dtn::routing
