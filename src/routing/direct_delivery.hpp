// Direct delivery: the source holds its single copy until it meets the
// destination. The zero-overhead / lowest-delivery extreme; goodput is 1 by
// construction. Useful as the lower baseline in ablations and tests.
#pragma once

#include "sim/router.hpp"

namespace dtn::routing {

class DirectDeliveryRouter final : public sim::Router {
 public:
  [[nodiscard]] std::string name() const override { return "DirectDelivery"; }

  void on_contact_up(sim::NodeIdx peer) override;
  void on_message_created(const sim::Message& m) override;
};

}  // namespace dtn::routing
