// First Contact (Jain, Fall & Patra, SIGCOMM 2004 — the paper's [9]):
// single copy, handed to the first encounter, unconditionally. The
// zero-knowledge single-copy baseline; it bounds from below what any
// utility-driven forwarder (MEED, EER single-phase) must beat.
#pragma once

#include "sim/router.hpp"

namespace dtn::routing {

class FirstContactRouter final : public sim::Router {
 public:
  [[nodiscard]] std::string name() const override { return "FirstContact"; }

  void on_contact_up(sim::NodeIdx peer) override;
  void on_message_created(const sim::Message& m) override;

 private:
  void route_one(const sim::StoredMessage& sm, sim::NodeIdx peer);
};

}  // namespace dtn::routing
