#include "routing/direct_delivery.hpp"

#include <vector>

#include "sim/world.hpp"

namespace dtn::routing {

void DirectDeliveryRouter::on_contact_up(sim::NodeIdx peer) {
  const double t = now();
  for (const auto& sm : buffer()) {
    if (!sm.msg.expired_at(t) && sm.msg.dst == peer) {
      send_copy(peer, sm.msg.id, 1, 0);
    }
  }
}

void DirectDeliveryRouter::on_message_created(const sim::Message& m) {
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) {
    if (m.dst == peer) send_copy(peer, m.id, 1, 0);
  }
}

}  // namespace dtn::routing
