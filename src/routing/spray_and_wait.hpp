// Spray-and-Wait (Spyropoulos et al., WDTN 2005). Spray phase: a node with
// M > 1 replicas hands over floor(M/2) (binary mode) or exactly 1 (source
// mode) to an encounter that has none. Wait phase: the last replica is only
// delivered directly to the destination.
#pragma once

#include "sim/router.hpp"

namespace dtn::routing {

struct SprayAndWaitParams {
  int copies = 10;     ///< λ: initial replica quota per message
  bool binary = true;  ///< binary (half) vs source (one-at-a-time) spray
};

class SprayAndWaitRouter : public sim::Router {
 public:
  explicit SprayAndWaitRouter(SprayAndWaitParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "SprayAndWait"; }
  [[nodiscard]] int initial_replicas() const override { return params_.copies; }

  void on_contact_up(sim::NodeIdx peer) override;
  void on_message_created(const sim::Message& m) override;

 protected:
  /// Spray decision for one stored message toward one peer; returns the
  /// replica count to hand over (0 = do not send). Shared with
  /// Spray-and-Focus, which overrides only the single-copy phase.
  [[nodiscard]] int spray_amount(const sim::StoredMessage& sm) const;
  void try_spray(const sim::StoredMessage& sm, sim::NodeIdx peer);
  /// Wait phase hook: called for single-replica messages that are not
  /// destined to `peer`. Default does nothing (wait).
  virtual void single_copy_phase(const sim::StoredMessage& /*sm*/,
                                 sim::NodeIdx /*peer*/) {}

  SprayAndWaitParams params_;
};

}  // namespace dtn::routing
