#include "routing/factory.hpp"

#include <stdexcept>
#include <utility>

#include "routing/cr.hpp"
#include "routing/delegation.hpp"
#include "routing/direct_delivery.hpp"
#include "routing/ebr.hpp"
#include "routing/eer.hpp"
#include "routing/epidemic.hpp"
#include "routing/first_contact.hpp"
#include "routing/maxprop.hpp"
#include "routing/meed.hpp"
#include "routing/prophet.hpp"
#include "routing/spray_and_focus.hpp"
#include "routing/spray_and_wait.hpp"

namespace dtn::routing {

namespace {

struct Entry {
  std::string name;
  ProtocolFactory factory;
};

std::vector<Entry>& registry() {
  static std::vector<Entry> entries = [] {
    std::vector<Entry> e;
    e.push_back({"EER", [](const ProtocolConfig& config) -> std::unique_ptr<sim::Router> {
                   EerParams p;
                   p.copies = config.copies;
                   p.alpha = config.alpha;
                   p.window = config.window;
                   return std::make_unique<EerRouter>(p);
                 }});
    e.push_back({"CR", [](const ProtocolConfig& config) -> std::unique_ptr<sim::Router> {
                   if (!config.communities) {
                     throw std::invalid_argument("CR requires a community table");
                   }
                   CrParams p;
                   p.copies = config.copies;
                   p.alpha = config.alpha;
                   p.window = config.window;
                   return std::make_unique<CrRouter>(p, config.communities);
                 }});
    e.push_back({"EBR", [](const ProtocolConfig& config) -> std::unique_ptr<sim::Router> {
                   EbrParams p;
                   p.copies = config.copies;
                   return std::make_unique<EbrRouter>(p);
                 }});
    e.push_back({"MaxProp", [](const ProtocolConfig&) -> std::unique_ptr<sim::Router> {
                   return std::make_unique<MaxPropRouter>(MaxPropParams{});
                 }});
    e.push_back(
        {"SprayAndWait", [](const ProtocolConfig& config) -> std::unique_ptr<sim::Router> {
           SprayAndWaitParams p;
           p.copies = config.copies;
           return std::make_unique<SprayAndWaitRouter>(p);
         }});
    e.push_back(
        {"SprayAndFocus", [](const ProtocolConfig& config) -> std::unique_ptr<sim::Router> {
           SprayAndFocusParams p;
           p.copies = config.copies;
           return std::make_unique<SprayAndFocusRouter>(p);
         }});
    e.push_back({"Epidemic", [](const ProtocolConfig&) -> std::unique_ptr<sim::Router> {
                   return std::make_unique<EpidemicRouter>();
                 }});
    e.push_back({"DirectDelivery", [](const ProtocolConfig&) -> std::unique_ptr<sim::Router> {
                   return std::make_unique<DirectDeliveryRouter>();
                 }});
    e.push_back({"PRoPHET", [](const ProtocolConfig&) -> std::unique_ptr<sim::Router> {
                   return std::make_unique<ProphetRouter>(ProphetParams{});
                 }});
    e.push_back({"MEED", [](const ProtocolConfig& config) -> std::unique_ptr<sim::Router> {
                   MeedParams p;
                   p.window = config.window;
                   return std::make_unique<MeedRouter>(p);
                 }});
    e.push_back({"FirstContact", [](const ProtocolConfig&) -> std::unique_ptr<sim::Router> {
                   return std::make_unique<FirstContactRouter>();
                 }});
    e.push_back({"Delegation", [](const ProtocolConfig&) -> std::unique_ptr<sim::Router> {
                   return std::make_unique<DelegationRouter>();
                 }});
    return e;
  }();
  return entries;
}

}  // namespace

std::vector<std::string> known_protocols() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& e : registry()) names.push_back(e.name);
  return names;
}

bool is_known_protocol(const std::string& name) {
  for (const auto& e : registry()) {
    if (e.name == name) return true;
  }
  return false;
}

void register_protocol(const std::string& name, ProtocolFactory factory) {
  for (auto& e : registry()) {
    if (e.name == name) {
      e.factory = std::move(factory);
      return;
    }
  }
  registry().push_back({name, std::move(factory)});
}

std::unique_ptr<sim::Router> create_router(const ProtocolConfig& config) {
  for (const auto& e : registry()) {
    if (e.name == config.name) return e.factory(config);
  }
  throw std::invalid_argument("unknown protocol: " + config.name);
}

}  // namespace dtn::routing
