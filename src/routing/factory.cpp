#include "routing/factory.hpp"

#include <stdexcept>

#include "routing/cr.hpp"
#include "routing/delegation.hpp"
#include "routing/direct_delivery.hpp"
#include "routing/ebr.hpp"
#include "routing/eer.hpp"
#include "routing/epidemic.hpp"
#include "routing/first_contact.hpp"
#include "routing/maxprop.hpp"
#include "routing/meed.hpp"
#include "routing/prophet.hpp"
#include "routing/spray_and_focus.hpp"
#include "routing/spray_and_wait.hpp"

namespace dtn::routing {

std::vector<std::string> known_protocols() {
  return {"EER",          "CR",            "EBR",      "MaxProp",
          "SprayAndWait", "SprayAndFocus", "Epidemic", "DirectDelivery",
          "PRoPHET",      "MEED",          "FirstContact", "Delegation"};
}

std::unique_ptr<sim::Router> create_router(const ProtocolConfig& config) {
  if (config.name == "EER") {
    EerParams p;
    p.copies = config.copies;
    p.alpha = config.alpha;
    p.window = config.window;
    return std::make_unique<EerRouter>(p);
  }
  if (config.name == "CR") {
    if (!config.communities) {
      throw std::invalid_argument("CR requires a community table");
    }
    CrParams p;
    p.copies = config.copies;
    p.alpha = config.alpha;
    p.window = config.window;
    return std::make_unique<CrRouter>(p, config.communities);
  }
  if (config.name == "EBR") {
    EbrParams p;
    p.copies = config.copies;
    return std::make_unique<EbrRouter>(p);
  }
  if (config.name == "MaxProp") {
    return std::make_unique<MaxPropRouter>(MaxPropParams{});
  }
  if (config.name == "SprayAndWait") {
    SprayAndWaitParams p;
    p.copies = config.copies;
    return std::make_unique<SprayAndWaitRouter>(p);
  }
  if (config.name == "SprayAndFocus") {
    SprayAndFocusParams p;
    p.copies = config.copies;
    return std::make_unique<SprayAndFocusRouter>(p);
  }
  if (config.name == "Epidemic") {
    return std::make_unique<EpidemicRouter>();
  }
  if (config.name == "DirectDelivery") {
    return std::make_unique<DirectDeliveryRouter>();
  }
  if (config.name == "PRoPHET") {
    return std::make_unique<ProphetRouter>(ProphetParams{});
  }
  if (config.name == "MEED") {
    MeedParams p;
    p.window = config.window;
    return std::make_unique<MeedRouter>(p);
  }
  if (config.name == "FirstContact") {
    return std::make_unique<FirstContactRouter>();
  }
  if (config.name == "Delegation") {
    return std::make_unique<DelegationRouter>();
  }
  throw std::invalid_argument("unknown protocol: " + config.name);
}

}  // namespace dtn::routing
