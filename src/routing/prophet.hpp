// PRoPHET (Lindgren, Doria & Schelen, MobiHoc 2003) — probabilistic routing
// with delivery predictabilities. Not part of the paper's Figure 2 lineup
// but cited in its related work; included as an extension baseline for the
// ablation benches.
//
//   on encounter:   P(a,b) <- P + (1 - P) * p_init
//   aging:          P <- P * gamma^(Δt / aging_unit)   (applied lazily)
//   transitivity:   P(a,c) <- max(P(a,c), P(a,b) * P(b,c) * beta)
//   forwarding:     replicate to peer when P_peer(dst) > P_self(dst) (GRTR)
#pragma once

#include <vector>

#include "sim/router.hpp"

namespace dtn::routing {

struct ProphetParams {
  double p_init = 0.75;
  double gamma = 0.98;
  double beta = 0.25;
  double aging_unit_s = 30.0;
};

class ProphetRouter final : public sim::Router {
 public:
  explicit ProphetRouter(ProphetParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "PRoPHET"; }

  void reset() override {
    p_.clear();
    last_aging_ = 0.0;
  }

  void on_contact_up(sim::NodeIdx peer) override;
  void on_message_created(const sim::Message& m) override;

  /// Delivery predictability toward `d`, aged to the current time.
  [[nodiscard]] double predictability(sim::NodeIdx d) const;

 private:
  void ensure_size(sim::NodeIdx n);
  void age(double now);

  ProphetParams params_;
  std::vector<double> p_;
  double last_aging_ = 0.0;
};

}  // namespace dtn::routing
