#include "routing/cr.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "core/dijkstra.hpp"
#include "core/estimators.hpp"
#include "core/md_builder.hpp"
#include "sim/world.hpp"

namespace dtn::routing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

CrRouter::CrRouter(CrParams params,
                   std::shared_ptr<const core::CommunityTable> communities)
    : params_(params), communities_(std::move(communities)), history_(params.window) {
  assert(communities_ != nullptr);
}

void CrRouter::ensure_state() {
  if (!mi_intra_) mi_intra_ = std::make_unique<core::MiMatrix>(world().node_count());
}

int CrRouter::community() const { return communities_->community_of(self()); }

double CrRouter::enec(double t, double tau) const {
  return core::expected_encountering_communities(history_, *communities_, community(),
                                                 t, tau);
}

double CrRouter::community_probability(int community, double t, double tau) const {
  return core::community_meet_probability(history_, *communities_, community, t, tau);
}

double CrRouter::intra_eev(double t, double tau) const {
  return core::expected_encounter_value_intra(history_, *communities_, self(), t, tau);
}

double CrRouter::intra_memd(sim::NodeIdx dst, double t) {
  ensure_state();
  const int own = community();
  const auto& members = communities_->members(own);
  // Position of self and dst in the member sub-index.
  sim::NodeIdx self_pos = -1;
  sim::NodeIdx dst_pos = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == self()) self_pos = static_cast<sim::NodeIdx>(i);
    if (members[i] == dst) dst_pos = static_cast<sim::NodeIdx>(i);
  }
  if (self_pos < 0 || dst_pos < 0) return kInf;
  const auto bucket = static_cast<std::int64_t>(std::floor(t));
  if (mi_intra_->version() != intra_dist_version_ || bucket != intra_dist_bucket_) {
    const std::vector<double> md = core::build_md_intra(
        *mi_intra_, history_, *communities_, own, self(), t);
    intra_dist_ = core::dijkstra_dense(md, static_cast<sim::NodeIdx>(members.size()),
                                       self_pos)
                      .dist;
    intra_dist_version_ = mi_intra_->version();
    intra_dist_bucket_ = bucket;
  }
  return intra_dist_.at(static_cast<std::size_t>(dst_pos));
}

void CrRouter::record_meeting(sim::NodeIdx peer, double t) {
  history_.record_contact(peer, t);
  // MI' only tracks own-community pairs.
  if (communities_->same_community(self(), peer)) {
    const core::PairHistory* ph = history_.pair(peer);
    if (ph != nullptr && !ph->intervals.empty()) {
      mi_intra_->set_entry(self(), peer, ph->average_interval(), t);
    }
  }
}

void CrRouter::on_contact_up(sim::NodeIdx peer) {
  ensure_state();
  const double t = now();
  record_meeting(peer, t);

  auto* peer_router = dynamic_cast<CrRouter*>(&world().router_of(peer));
  if (peer_router != nullptr) {
    peer_router->ensure_state();
    // Intra-community MI' exchange only happens between same-community
    // nodes (Algorithm 4 line 2) — this is CR's overhead saving vs EER.
    if (communities_->same_community(self(), peer) && self() < peer) {
      // A row of MI' is only meaningful over the community members, so the
      // handshake (row timestamps) and row payloads are community-sized —
      // this is exactly CR's overhead saving vs EER's full-n exchange.
      const auto member_count = static_cast<std::int64_t>(
          communities_->members(community()).size());
      charge_control_bytes(2 * member_count * 8);
      const int to_self = mi_intra_->merge_from(*peer_router->mi_intra_);
      const int to_peer = peer_router->mi_intra_->merge_from(*mi_intra_);
      charge_control_bytes((to_self + to_peer) * (member_count * 8 + 8));
    }
    charge_control_bytes(
        static_cast<std::int64_t>(buffer().count() + world().buffer_of(peer).count()) * 8);
  }

  // Algorithm 2: dispatch each buffered message to inter- or intra-phase.
  for (const auto& sm : buffer()) {
    route_one(sm, peer, peer_router, t);
  }
}

void CrRouter::route_one(const sim::StoredMessage& sm, sim::NodeIdx peer,
                         CrRouter* peer_router, double t) {
  if (sm.msg.expired_at(t)) return;
  if (sm.msg.dst == peer) {
    send_copy(peer, sm.msg.id, 1, 0);
    return;
  }
  const int dst_community = communities_->community_of(sm.msg.dst);
  if (community() != dst_community) {
    inter_community_route(sm, peer, peer_router, t);
  } else {
    intra_community_route(sm, peer, peer_router, t);
  }
}

void CrRouter::on_message_created(const sim::Message& m) {
  ensure_state();
  const sim::StoredMessage* sm = buffer().find(m.id);
  if (sm == nullptr) return;
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) {
    auto* peer_router = dynamic_cast<CrRouter*>(&world().router_of(peer));
    route_one(*sm, peer, peer_router, now());
  }
}

void CrRouter::on_message_received(const sim::StoredMessage& sm,
                                   sim::NodeIdx /*from*/) {
  ensure_state();
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) {
    auto* peer_router = dynamic_cast<CrRouter*>(&world().router_of(peer));
    route_one(sm, peer, peer_router, now());
  }
}

void CrRouter::inter_community_route(const sim::StoredMessage& sm, sim::NodeIdx peer,
                                     CrRouter* peer_router, double t) {
  const int dst_community = communities_->community_of(sm.msg.dst);
  // Algorithm 3 line 1: encounter inside the destination community gets
  // everything.
  if (communities_->community_of(peer) == dst_community) {
    if (!peer_has(peer, sm.msg.id)) {
      send_copy(peer, sm.msg.id, sm.replicas, sm.replicas);
    }
    return;
  }
  if (peer_router == nullptr || peer_has(peer, sm.msg.id)) return;

  const double tau = params_.alpha * sm.msg.remaining_ttl(t);
  if (sm.replicas > 1) {
    // Algorithm 3 line 7: ENEC-proportional split.
    const double enec_i = enec(t, tau);
    const double enec_j = peer_router->enec(t, tau);
    charge_control_bytes(8);
    const double denom = enec_i + enec_j;
    int give;
    if (denom <= 0.0) {
      give = sm.replicas / 2;  // same degenerate-split policy as EER
    } else {
      give = static_cast<int>(
          std::ceil(static_cast<double>(sm.replicas) * enec_j / denom));
      if (give > sm.replicas) give = sm.replicas;
    }
    if (give >= 1) send_copy(peer, sm.msg.id, give, give);
  } else {
    // Algorithm 3 line 10: forward toward the better community-finder.
    const double p_ic = community_probability(dst_community, t, tau);
    const double p_jc = peer_router->community_probability(dst_community, t, tau);
    charge_control_bytes(8);
    if (p_ic < p_jc) send_copy(peer, sm.msg.id, 1, 1);
  }
}

void CrRouter::intra_community_route(const sim::StoredMessage& sm, sim::NodeIdx peer,
                                     CrRouter* peer_router, double t) {
  // Algorithm 4 line 1: only same-community encounters participate.
  if (!communities_->same_community(self(), peer)) return;
  if (peer_router == nullptr || peer_has(peer, sm.msg.id)) return;

  const double tau = params_.alpha * sm.msg.remaining_ttl(t);
  if (sm.replicas > 1) {
    // Algorithm 4 line 7: intra-community EEV' split.
    const double eev_i = intra_eev(t, tau);
    const double eev_j = peer_router->intra_eev(t, tau);
    charge_control_bytes(8);
    const double denom = eev_i + eev_j;
    int give;
    if (denom <= 0.0) {
      give = sm.replicas / 2;
    } else {
      give = static_cast<int>(
          std::ceil(static_cast<double>(sm.replicas) * eev_j / denom));
      if (give > sm.replicas) give = sm.replicas;
    }
    if (give >= 1) send_copy(peer, sm.msg.id, give, give);
  } else {
    // Algorithm 4 line 9: intra-community MEMD' comparison.
    const double memd_i = intra_memd(sm.msg.dst, t);
    const double memd_j = peer_router->intra_memd(sm.msg.dst, t);
    charge_control_bytes(8);
    if (memd_i > memd_j) send_copy(peer, sm.msg.id, 1, 1);
  }
}

}  // namespace dtn::routing
