// CR — Community based Routing (the paper's Algorithms 2-4).
//
// Every node carries a predefined community id (paper Sec. IV fn. 2).
// Inter-community phase (destination outside my community, Algorithm 3):
//   * encounter in the destination community -> hand over ALL replicas;
//   * M > 1 -> split proportionally to ENEC (Theorem 4) over (t, t+α·TTL];
//   * M = 1 -> forward iff P_ic < P_jc, the probabilities of meeting the
//     destination community within (t, t+α·TTL].
// Intra-community phase (I am in the destination community, Algorithm 4):
//   EER restricted to community members — intra-community EEV', MI', MD',
//   MEMD' are all computed over the community member set only, which is
//   what shrinks CR's control overhead relative to EER.
#pragma once

#include <memory>

#include "core/community.hpp"
#include "core/contact_history.hpp"
#include "core/mi_matrix.hpp"
#include "sim/router.hpp"

namespace dtn::routing {

struct CrParams {
  int copies = 10;          ///< λ
  double alpha = 0.28;      ///< α
  std::size_t window = 32;  ///< sliding-window capacity per pair
};

class CrRouter final : public sim::Router {
 public:
  CrRouter(CrParams params, std::shared_ptr<const core::CommunityTable> communities);

  [[nodiscard]] std::string name() const override { return "CR"; }
  [[nodiscard]] int initial_replicas() const override { return params_.copies; }

  void reset() override {
    history_.clear();
    if (mi_intra_) mi_intra_->reset();
    intra_dist_.clear();
    intra_dist_version_ = ~0ULL;
    intra_dist_bucket_ = -1;
  }

  void on_contact_up(sim::NodeIdx peer) override;
  void on_message_created(const sim::Message& m) override;
  void on_message_received(const sim::StoredMessage& sm, sim::NodeIdx from) override;

  // ---- exposed for tests ----
  [[nodiscard]] int community() const;
  [[nodiscard]] double enec(double t, double tau) const;
  [[nodiscard]] double community_probability(int community, double t, double tau) const;
  [[nodiscard]] double intra_eev(double t, double tau) const;
  [[nodiscard]] double intra_memd(sim::NodeIdx dst, double t);
  [[nodiscard]] const core::ContactHistory& history() const { return history_; }

 private:
  void ensure_state();
  void record_meeting(sim::NodeIdx peer, double t);
  void route_one(const sim::StoredMessage& sm, sim::NodeIdx peer, CrRouter* peer_router,
                 double t);
  void inter_community_route(const sim::StoredMessage& sm, sim::NodeIdx peer,
                             CrRouter* peer_router, double t);
  void intra_community_route(const sim::StoredMessage& sm, sim::NodeIdx peer,
                             CrRouter* peer_router, double t);

  CrParams params_;
  std::shared_ptr<const core::CommunityTable> communities_;
  core::ContactHistory history_;
  /// Intra-community MI': full n×n storage, but only rows/columns of own
  /// community members are ever written or exchanged.
  std::unique_ptr<core::MiMatrix> mi_intra_;
  /// Cached intra-community MEMD' distances (over the member sub-index).
  std::vector<double> intra_dist_;
  std::uint64_t intra_dist_version_ = ~0ULL;
  std::int64_t intra_dist_bucket_ = -1;
};

}  // namespace dtn::routing
