// Delegation Forwarding (Erramilli, Crovella, Chaintreau & Diot, MobiHoc
// 2008 — the paper's [8]): replicate a message to an encounter only if the
// encounter's quality for the destination exceeds the highest quality this
// copy has ever seen (the "level"). Cuts epidemic's O(n) replication cost
// to O(sqrt(n)) while keeping most of its delivery ratio.
//
// Quality metric here: PRoPHET-less last-encounter freshness (time of the
// most recent direct meeting with the destination), the metric the original
// paper evaluates as "delegation destination last contact".
#pragma once

#include <unordered_map>
#include <vector>

#include "sim/router.hpp"

namespace dtn::routing {

class DelegationRouter final : public sim::Router {
 public:
  [[nodiscard]] std::string name() const override { return "Delegation"; }

  void reset() override {
    last_met_.clear();
    levels_ = {};  // exact fresh-map state (reseed bit-identity contract)
  }

  void on_contact_up(sim::NodeIdx peer) override;
  void on_message_created(const sim::Message& m) override;
  void on_message_received(const sim::StoredMessage& sm, sim::NodeIdx from) override;

  /// Quality of this node for destination d (last meeting time; -inf never).
  [[nodiscard]] double quality(sim::NodeIdx d) const;

 private:
  void route_one(const sim::StoredMessage& sm, sim::NodeIdx peer);
  /// Highest quality observed so far for this copy (the delegation level).
  double& level_for(sim::MsgId id);

  std::vector<double> last_met_;
  std::unordered_map<sim::MsgId, double> levels_;
};

}  // namespace dtn::routing
