// MaxProp (Burgess et al., INFOCOM 2006): epidemic-style replication with
// (1) incremental-averaging delivery likelihoods flooded between nodes,
// (2) a destination cost = min-cost path under edge weight (1 - f),
// (3) transmission priority: destination-bound first, then low-hop-count
//     messages, then ascending cost,
// (4) acknowledgments that purge delivered messages network-wide,
// (5) buffer eviction of high-hop-count / high-cost messages first.
//
// Simplification vs the original (DESIGN.md): the adaptive hop-count
// threshold (derived from average transfer bytes per contact) is a fixed
// parameter `hop_threshold`, and nodes exchange only their own likelihood
// vectors per contact (the original floods all known vectors; ours
// propagates the same information one hop per contact).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/router.hpp"

namespace dtn::routing {

struct MaxPropParams {
  int hop_threshold = 3;  ///< messages under this hop count get priority
};

class MaxPropRouter final : public sim::Router {
 public:
  explicit MaxPropRouter(MaxPropParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "MaxProp"; }

  void reset() override {
    f_own_.clear();
    // Fresh-container assignment (not .clear()): both maps are iterated —
    // f_known_ when rebuilding the cost graph, acked_ during the ack-union
    // exchange — and retained bucket arrays could reorder that iteration
    // relative to a freshly built router (reseed bit-identity contract).
    f_known_ = {};
    acked_ = {};
    cost_.clear();
    cost_dirty_ = true;
  }

  void on_contact_up(sim::NodeIdx peer) override;
  void on_message_created(const sim::Message& m) override;
  void on_message_received(const sim::StoredMessage& sm, sim::NodeIdx from) override;
  void on_delivered(const sim::Message& m) override;
  [[nodiscard]] sim::MsgId choose_drop_victim(const sim::Buffer& buffer) const override;

  /// Path cost to `dst` under the current likelihood snapshot (+inf when no
  /// known path). Exposed for tests.
  [[nodiscard]] double cost_to(sim::NodeIdx dst) const;

  [[nodiscard]] const std::vector<double>& own_likelihoods() const { return f_own_; }

 private:
  void ensure_size(sim::NodeIdx n);
  void meet(sim::NodeIdx peer);
  void exchange_state(sim::NodeIdx peer);
  void recompute_costs();
  void push_messages(sim::NodeIdx peer);
  [[nodiscard]] bool acked(sim::MsgId id) const { return acked_.count(id) > 0; }

  MaxPropParams params_;
  std::vector<double> f_own_;  ///< own delivery likelihoods, sums to 1
  /// Last known likelihood vector of other nodes (from exchanges).
  std::unordered_map<sim::NodeIdx, std::vector<double>> f_known_;
  std::unordered_set<sim::MsgId> acked_;
  std::vector<double> cost_;  ///< cached Dijkstra distances from self
  bool cost_dirty_ = true;
};

}  // namespace dtn::routing
