// Router factory: builds any protocol in the repository by name, with the
// shared knobs the experiments sweep (λ, α, window). One factory call per
// node — router instances are per-node state and never shared.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/community.hpp"
#include "sim/router.hpp"

namespace dtn::routing {

struct ProtocolConfig {
  std::string name = "EER";  ///< see known_protocols()
  int copies = 10;           ///< λ (quota-based protocols)
  double alpha = 0.28;       ///< α (EER / CR)
  std::size_t window = 32;   ///< contact-history sliding window (EER / CR)
  /// Required by CR; ignored by every other protocol.
  std::shared_ptr<const core::CommunityTable> communities;
};

/// Protocol names accepted by create_router, in the paper's Figure-2 order
/// first, extensions after.
std::vector<std::string> known_protocols();

/// Throws std::invalid_argument for unknown names or a CR config without a
/// community table.
std::unique_ptr<sim::Router> create_router(const ProtocolConfig& config);

}  // namespace dtn::routing
