// Router factory: builds any protocol in the repository by name, with the
// shared knobs the experiments sweep (λ, α, window). One factory call per
// node — router instances are per-node state and never shared.
//
// Since the ScenarioSpec redesign the factory is registry-backed: built-in
// protocols are pre-registered (paper Figure-2 order first, extensions
// after) and register_protocol() lets applications add their own routers,
// which then work everywhere a protocol name does — scenario files,
// `dtnsim run --set protocol.name=...`, sweep axes (see
// examples/custom_protocol.cpp).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/community.hpp"
#include "sim/router.hpp"

namespace dtn::routing {

struct ProtocolConfig {
  std::string name = "EER";  ///< see known_protocols()
  int copies = 10;           ///< λ (quota-based protocols)
  double alpha = 0.28;       ///< α (EER / CR)
  std::size_t window = 32;   ///< contact-history sliding window (EER / CR)
  /// Required by CR; ignored by every other protocol.
  std::shared_ptr<const core::CommunityTable> communities;
};

/// Builds one router instance from the shared config.
using ProtocolFactory = std::function<std::unique_ptr<sim::Router>(const ProtocolConfig&)>;

/// Protocol names accepted by create_router: built-ins in the paper's
/// Figure-2 order first, then extensions in registration order.
std::vector<std::string> known_protocols();

/// True when `name` resolves to a registered protocol.
bool is_known_protocol(const std::string& name);

/// Registers (or replaces) a protocol under `name`. Registration is not
/// thread-safe; register before spawning sweep workers.
void register_protocol(const std::string& name, ProtocolFactory factory);

/// Throws std::invalid_argument for unknown names or a CR config without a
/// community table.
std::unique_ptr<sim::Router> create_router(const ProtocolConfig& config);

}  // namespace dtn::routing
