// EBR — Encounter-Based Routing (Nelson, Bakht & Kravets, INFOCOM 2009):
// the protocol the paper's EER directly improves on. Each node tracks an
// encounter value EV as an exponentially weighted moving average over fixed
// windows:  EV <- w * CWC + (1 - w) * EV  every `window_s` seconds, where
// CWC counts contacts in the closing window. On contact, a message with M
// replicas hands over floor(M * EV_peer / (EV_self + EV_peer)); a single
// replica waits for the destination (quota semantics like Spray-and-Wait).
//
// The paper's critique (Sec. I): this EV is one number independent of each
// message's TTL — EER replaces it with the TTL-conditioned expected EV.
#pragma once

#include "sim/router.hpp"

namespace dtn::routing {

struct EbrParams {
  int copies = 10;        ///< λ
  double window_s = 30.0; ///< EV update window (EBR paper's W)
  double ewma = 0.85;     ///< EBR paper's α weighting of the current window
};

class EbrRouter final : public sim::Router {
 public:
  explicit EbrRouter(EbrParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "EBR"; }
  [[nodiscard]] int initial_replicas() const override { return params_.copies; }

  void reset() override {
    ev_ = 0.0;
    current_window_contacts_ = 0;
    window_end_ = -1.0;
  }

  void on_contact_up(sim::NodeIdx peer) override;
  void on_message_created(const sim::Message& m) override;
  void on_tick(double now) override;

  [[nodiscard]] double encounter_value() const noexcept { return ev_; }

 private:
  void try_route(const sim::StoredMessage& sm, sim::NodeIdx peer);
  void roll_window(double now);

  EbrParams params_;
  double ev_ = 0.0;
  int current_window_contacts_ = 0;
  double window_end_ = -1.0;  ///< initialized on first use
};

}  // namespace dtn::routing
