#include "routing/spray_and_focus.hpp"

#include <algorithm>
#include <limits>

#include "sim/world.hpp"

namespace dtn::routing {

namespace {
constexpr double kNever = -std::numeric_limits<double>::infinity();
}

SprayAndFocusRouter::SprayAndFocusRouter(SprayAndFocusParams params)
    : SprayAndWaitRouter(SprayAndWaitParams{params.copies, params.binary}),
      focus_params_(params) {}

void SprayAndFocusRouter::ensure_size(sim::NodeIdx n) {
  if (static_cast<sim::NodeIdx>(last_seen_.size()) < n) {
    last_seen_.resize(static_cast<std::size_t>(n), kNever);
  }
}

double SprayAndFocusRouter::last_seen(sim::NodeIdx d) const {
  if (d < 0 || static_cast<std::size_t>(d) >= last_seen_.size()) return kNever;
  return last_seen_[static_cast<std::size_t>(d)];
}

void SprayAndFocusRouter::on_contact_up(sim::NodeIdx peer) {
  ensure_size(world().node_count());
  last_seen_[static_cast<std::size_t>(peer)] = now();

  // Timer transitivity: adopt the peer's fresher timers with a penalty.
  // This is protocol state exchange — charge it as control traffic.
  auto* peer_router = dynamic_cast<SprayAndFocusRouter*>(&world().router_of(peer));
  if (peer_router != nullptr) {
    peer_router->ensure_size(world().node_count());
    charge_control_bytes(static_cast<std::int64_t>(last_seen_.size()) * 8);
    for (std::size_t d = 0; d < last_seen_.size(); ++d) {
      const double theirs = peer_router->last_seen_[d] - focus_params_.transitivity_s;
      last_seen_[d] = std::max(last_seen_[d], theirs);
    }
  }

  SprayAndWaitRouter::on_contact_up(peer);
}

void SprayAndFocusRouter::single_copy_phase(const sim::StoredMessage& sm,
                                            sim::NodeIdx peer) {
  auto* peer_router = dynamic_cast<SprayAndFocusRouter*>(&world().router_of(peer));
  if (peer_router == nullptr) return;
  const double mine = last_seen(sm.msg.dst);
  const double theirs = peer_router->last_seen(sm.msg.dst);
  // Forward when the peer heard from the destination more recently.
  if (theirs > mine + focus_params_.forward_margin_s) {
    send_copy(peer, sm.msg.id, 1, 1);
  }
}

}  // namespace dtn::routing
