// MEED — Minimum Estimated Expected Delay (Jones, Li & Ward, WDTN 2005),
// the paper's reference [10] and the direct ancestor of EER's single-copy
// phase. Pure single-copy link-state routing: nodes maintain the MI matrix
// of *average* meeting intervals (no elapsed-time conditioning — that
// refinement is exactly what EER's Theorem 2 adds), run Dijkstra over it,
// and forward the one copy to an encounter with a strictly smaller
// estimated delay to the destination. Comparing MEED vs EER-with-λ=1
// isolates the value of Theorem 2's conditioning.
#pragma once

#include <memory>

#include "core/contact_history.hpp"
#include "core/mi_matrix.hpp"
#include "sim/router.hpp"

namespace dtn::routing {

struct MeedParams {
  std::size_t window = 32;  ///< sliding window for the interval averages
};

class MeedRouter final : public sim::Router {
 public:
  explicit MeedRouter(MeedParams params) : params_(params), history_(params.window) {}

  [[nodiscard]] std::string name() const override { return "MEED"; }

  void reset() override {
    history_.clear();
    if (mi_) mi_->reset();
    dist_.clear();
    dist_version_ = ~0ULL;
  }

  void on_contact_up(sim::NodeIdx peer) override;
  void on_message_created(const sim::Message& m) override;

  /// Estimated expected delay self -> dst over the MI graph (+inf unknown).
  [[nodiscard]] double eed(sim::NodeIdx dst);

  [[nodiscard]] const core::MiMatrix& mi() const { return *mi_; }

 private:
  void ensure_state();
  void route_one(const sim::StoredMessage& sm, sim::NodeIdx peer,
                 MeedRouter* peer_router);

  MeedParams params_;
  core::ContactHistory history_;
  std::unique_ptr<core::MiMatrix> mi_;
  std::vector<double> dist_;
  std::uint64_t dist_version_ = ~0ULL;
};

}  // namespace dtn::routing
