// Spray-and-Focus (Spyropoulos et al., PerCom-W 2007). Spray phase is
// identical to Spray-and-Wait; the focus phase forwards the last replica to
// an encounter whose last-encounter timer for the destination is fresher
// (smaller age), with timer transitivity on contact.
//
// Simplification vs the original (documented in DESIGN.md): the original
// scales transitivity by an estimate of distance traveled since the timer
// was set; we use a constant transitivity penalty `transitivity_s`, which
// preserves the mechanism (information diffuses through relays) without the
// mobility-model-specific scaling.
#pragma once

#include <vector>

#include "routing/spray_and_wait.hpp"

namespace dtn::routing {

struct SprayAndFocusParams {
  int copies = 10;
  bool binary = true;
  double transitivity_s = 60.0;  ///< penalty when adopting a peer's timer
  /// Forward only when the peer's timer is fresher by at least this margin,
  /// damping ping-pong forwarding between similar nodes.
  double forward_margin_s = 1.0;
};

class SprayAndFocusRouter final : public SprayAndWaitRouter {
 public:
  explicit SprayAndFocusRouter(SprayAndFocusParams params);

  [[nodiscard]] std::string name() const override { return "SprayAndFocus"; }

  void reset() override { last_seen_.clear(); }

  void on_contact_up(sim::NodeIdx peer) override;

  /// Timer value (last time this node "heard of" node d); -inf if never.
  [[nodiscard]] double last_seen(sim::NodeIdx d) const;

 private:
  void single_copy_phase(const sim::StoredMessage& sm, sim::NodeIdx peer) override;
  void ensure_size(sim::NodeIdx n);

  SprayAndFocusParams focus_params_;
  std::vector<double> last_seen_;  ///< indexed by node id
};

}  // namespace dtn::routing
