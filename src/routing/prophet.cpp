#include "routing/prophet.hpp"

#include <cmath>
#include <vector>

#include "sim/world.hpp"

namespace dtn::routing {

void ProphetRouter::ensure_size(sim::NodeIdx n) {
  if (static_cast<sim::NodeIdx>(p_.size()) < n) {
    p_.resize(static_cast<std::size_t>(n), 0.0);
  }
}

void ProphetRouter::age(double now) {
  const double dt = now - last_aging_;
  if (dt <= 0.0) return;
  const double factor = std::pow(params_.gamma, dt / params_.aging_unit_s);
  for (double& v : p_) v *= factor;
  last_aging_ = now;
}

double ProphetRouter::predictability(sim::NodeIdx d) const {
  if (d < 0 || static_cast<std::size_t>(d) >= p_.size()) return 0.0;
  return p_[static_cast<std::size_t>(d)];
}

void ProphetRouter::on_contact_up(sim::NodeIdx peer) {
  ensure_size(world().node_count());
  age(now());
  p_[static_cast<std::size_t>(peer)] +=
      (1.0 - p_[static_cast<std::size_t>(peer)]) * params_.p_init;

  auto* peer_router = dynamic_cast<ProphetRouter*>(&world().router_of(peer));
  if (peer_router != nullptr) {
    peer_router->ensure_size(world().node_count());
    peer_router->age(now());
    charge_control_bytes(static_cast<std::int64_t>(p_.size()) * 8);
    // Transitivity through the encounter (both directions).
    const double p_ab = p_[static_cast<std::size_t>(peer)];
    const double p_ba = peer_router->p_[static_cast<std::size_t>(self())];
    for (std::size_t c = 0; c < p_.size(); ++c) {
      const auto cn = static_cast<sim::NodeIdx>(c);
      if (cn == self() || cn == peer) continue;
      p_[c] = std::max(p_[c], p_ab * peer_router->p_[c] * params_.beta);
      peer_router->p_[c] =
          std::max(peer_router->p_[c], p_ba * p_[c] * params_.beta);
    }
  }

  // GRTR forwarding: replicate messages the peer is better positioned for.
  const double t = now();
  for (const auto& sm : buffer()) {
    if (sm.msg.expired_at(t)) continue;
    if (sm.msg.dst == peer) {
      send_copy(peer, sm.msg.id, 1, 0);
      continue;
    }
    if (peer_has(peer, sm.msg.id) || peer_router == nullptr) continue;
    if (peer_router->predictability(sm.msg.dst) > predictability(sm.msg.dst)) {
      send_copy(peer, sm.msg.id, 1, 0);
    }
  }
}

void ProphetRouter::on_message_created(const sim::Message& m) {
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) {
    if (m.dst == peer) {
      send_copy(peer, m.id, 1, 0);
      continue;
    }
    auto* peer_router = dynamic_cast<ProphetRouter*>(&world().router_of(peer));
    if (peer_router != nullptr &&
        peer_router->predictability(m.dst) > predictability(m.dst)) {
      send_copy(peer, m.id, 1, 0);
    }
  }
}

}  // namespace dtn::routing
