#include "routing/epidemic.hpp"

#include <vector>

#include "sim/world.hpp"

namespace dtn::routing {

void EpidemicRouter::on_contact_up(sim::NodeIdx peer) { push_all_to(peer); }

void EpidemicRouter::on_message_created(const sim::Message& m) {
  const sim::StoredMessage* sm = buffer().find(m.id);
  if (sm != nullptr) push_one(*sm);
}

void EpidemicRouter::on_message_received(const sim::StoredMessage& sm,
                                         sim::NodeIdx /*from*/) {
  // Keep spreading along any other active contacts.
  push_one(sm);
}

void EpidemicRouter::push_all_to(sim::NodeIdx peer) {
  const double t = now();
  // Destination-bound messages jump the queue.
  for (const auto& sm : buffer()) {
    if (sm.msg.expired_at(t)) continue;
    if (sm.msg.dst == peer) send_copy(peer, sm.msg.id, 1, 0);
  }
  for (const auto& sm : buffer()) {
    if (sm.msg.expired_at(t) || sm.msg.dst == peer) continue;
    if (!peer_has(peer, sm.msg.id)) send_copy(peer, sm.msg.id, 1, 0);
  }
}

void EpidemicRouter::push_one(const sim::StoredMessage& sm) {
  if (sm.msg.expired_at(now())) return;
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) {
    if (sm.msg.dst == peer || !peer_has(peer, sm.msg.id)) {
      send_copy(peer, sm.msg.id, 1, 0);
    }
  }
}

}  // namespace dtn::routing
