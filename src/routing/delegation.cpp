#include "routing/delegation.hpp"

#include <limits>
#include <vector>

#include "sim/world.hpp"

namespace dtn::routing {

namespace {
constexpr double kNever = -std::numeric_limits<double>::infinity();
}

double DelegationRouter::quality(sim::NodeIdx d) const {
  if (d < 0 || static_cast<std::size_t>(d) >= last_met_.size()) return kNever;
  return last_met_[static_cast<std::size_t>(d)];
}

double& DelegationRouter::level_for(sim::MsgId id) {
  const auto [it, inserted] = levels_.emplace(id, kNever);
  return it->second;
}

void DelegationRouter::route_one(const sim::StoredMessage& sm, sim::NodeIdx peer) {
  if (sm.msg.expired_at(now())) return;
  if (sm.msg.dst == peer) {
    send_copy(peer, sm.msg.id, 1, 0);
    return;
  }
  if (peer_has(peer, sm.msg.id)) return;
  auto* peer_router = dynamic_cast<DelegationRouter*>(&world().router_of(peer));
  if (peer_router == nullptr) return;
  charge_control_bytes(8);  // the peer reports its quality for this dest
  const double peer_quality = peer_router->quality(sm.msg.dst);
  double& level = level_for(sm.msg.id);
  // Delegate only when the peer beats every quality this copy has seen.
  if (peer_quality > level && peer_quality > quality(sm.msg.dst)) {
    level = peer_quality;
    // The receiving copy starts life at the new level too.
    peer_router->level_for(sm.msg.id) = peer_quality;
    send_copy(peer, sm.msg.id, 1, 0);
  }
}

void DelegationRouter::on_contact_up(sim::NodeIdx peer) {
  if (last_met_.size() < static_cast<std::size_t>(world().node_count())) {
    last_met_.resize(static_cast<std::size_t>(world().node_count()), kNever);
  }
  last_met_[static_cast<std::size_t>(peer)] = now();
  for (const auto& sm : buffer()) route_one(sm, peer);
}

void DelegationRouter::on_message_created(const sim::Message& m) {
  const sim::StoredMessage* sm = buffer().find(m.id);
  if (sm == nullptr) return;
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) route_one(*sm, peer);
}

void DelegationRouter::on_message_received(const sim::StoredMessage& sm,
                                           sim::NodeIdx /*from*/) {
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) route_one(sm, peer);
}

}  // namespace dtn::routing
