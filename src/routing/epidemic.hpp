// Epidemic routing (Vahdat & Becker, 2000): replicate every message to
// every encounter that lacks it. Upper-bounds delivery ratio and
// lower-bounds latency at the price of the worst overhead; the reference
// point every DTN evaluation starts from.
#pragma once

#include "sim/router.hpp"

namespace dtn::routing {

class EpidemicRouter final : public sim::Router {
 public:
  [[nodiscard]] std::string name() const override { return "Epidemic"; }

  void on_contact_up(sim::NodeIdx peer) override;
  void on_message_created(const sim::Message& m) override;
  void on_message_received(const sim::StoredMessage& sm, sim::NodeIdx from) override;

 private:
  /// Pushes every stored message the peer lacks (destination-bound first).
  void push_all_to(sim::NodeIdx peer);
  void push_one(const sim::StoredMessage& sm);
};

}  // namespace dtn::routing
