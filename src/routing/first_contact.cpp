#include "routing/first_contact.hpp"

#include <vector>

#include "sim/world.hpp"

namespace dtn::routing {

void FirstContactRouter::route_one(const sim::StoredMessage& sm, sim::NodeIdx peer) {
  if (sm.msg.expired_at(now())) return;
  if (sm.msg.dst == peer) {
    send_copy(peer, sm.msg.id, 1, 0);
    return;
  }
  if (peer_has(peer, sm.msg.id)) return;
  send_copy(peer, sm.msg.id, 1, 1);  // hand the single copy to whoever is first
}

void FirstContactRouter::on_contact_up(sim::NodeIdx peer) {
  for (const auto& sm : buffer()) route_one(sm, peer);
}

void FirstContactRouter::on_message_created(const sim::Message& m) {
  const sim::StoredMessage* sm = buffer().find(m.id);
  if (sm == nullptr) return;
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) {
    route_one(*sm, peer);
    if (!buffer().contains(m.id)) break;  // copy already queued away
  }
}

}  // namespace dtn::routing
