#include "routing/maxprop.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/dijkstra.hpp"
#include "sim/world.hpp"

namespace dtn::routing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

void MaxPropRouter::ensure_size(sim::NodeIdx n) {
  if (static_cast<sim::NodeIdx>(f_own_.size()) < n) {
    // Initial likelihood 1/(n-1) for every other node (MaxProp Sec. 3.2).
    const double init = n > 1 ? 1.0 / static_cast<double>(n - 1) : 0.0;
    f_own_.assign(static_cast<std::size_t>(n), init);
    f_own_[static_cast<std::size_t>(self())] = 0.0;
  }
}

void MaxPropRouter::meet(sim::NodeIdx peer) {
  ensure_size(world().node_count());
  // Incremental averaging: +1 to the met peer, renormalize to sum 1.
  f_own_[static_cast<std::size_t>(peer)] += 1.0;
  double sum = 0.0;
  for (std::size_t j = 0; j < f_own_.size(); ++j) {
    if (static_cast<sim::NodeIdx>(j) != self()) sum += f_own_[j];
  }
  if (sum > 0.0) {
    for (std::size_t j = 0; j < f_own_.size(); ++j) {
      if (static_cast<sim::NodeIdx>(j) != self()) f_own_[j] /= sum;
    }
  }
  cost_dirty_ = true;
}

void MaxPropRouter::exchange_state(sim::NodeIdx peer) {
  auto* peer_router = dynamic_cast<MaxPropRouter*>(&world().router_of(peer));
  if (peer_router == nullptr) return;
  peer_router->ensure_size(world().node_count());
  // Likelihood vectors both ways + ack-set union (control traffic).
  charge_control_bytes(static_cast<std::int64_t>(f_own_.size()) * 8 +
                       static_cast<std::int64_t>(acked_.size() + peer_router->acked_.size()) * 8);
  f_known_[peer] = peer_router->f_own_;
  peer_router->f_known_[self()] = f_own_;
  peer_router->cost_dirty_ = true;
  cost_dirty_ = true;

  // Ack union: both sides learn all delivered ids and purge copies.
  std::vector<sim::MsgId> mine(acked_.begin(), acked_.end());
  for (const sim::MsgId id : peer_router->acked_) {
    if (acked_.insert(id).second) buffer().erase(id);
  }
  for (const sim::MsgId id : mine) {
    if (peer_router->acked_.insert(id).second) {
      world().buffer_of(peer).erase(id);
    }
  }
}

void MaxPropRouter::recompute_costs() {
  const auto n = world().node_count();
  ensure_size(n);
  // Dense weight matrix: w(u -> v) = 1 - f_u(v); rows for nodes we have no
  // vector from stay disconnected (except our own row).
  std::vector<double> w(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), kInf);
  auto fill_row = [&](sim::NodeIdx u, const std::vector<double>& f) {
    const std::size_t row = static_cast<std::size_t>(u) * static_cast<std::size_t>(n);
    for (sim::NodeIdx v = 0; v < n; ++v) {
      if (v == u) {
        w[row + static_cast<std::size_t>(v)] = 0.0;
      } else if (static_cast<std::size_t>(v) < f.size()) {
        w[row + static_cast<std::size_t>(v)] = 1.0 - f[static_cast<std::size_t>(v)];
      }
    }
  };
  fill_row(self(), f_own_);
  for (const auto& [node, f] : f_known_) fill_row(node, f);
  cost_ = core::dijkstra_dense(w, n, self()).dist;
  cost_dirty_ = false;
}

double MaxPropRouter::cost_to(sim::NodeIdx dst) const {
  if (cost_dirty_ || cost_.empty()) {
    auto* self_mut = const_cast<MaxPropRouter*>(this);
    self_mut->recompute_costs();
  }
  if (static_cast<std::size_t>(dst) >= cost_.size()) return kInf;
  return cost_[static_cast<std::size_t>(dst)];
}

void MaxPropRouter::on_contact_up(sim::NodeIdx peer) {
  meet(peer);
  exchange_state(peer);
  push_messages(peer);
}

void MaxPropRouter::push_messages(sim::NodeIdx peer) {
  const double t = now();
  struct Item {
    sim::MsgId id;
    int hops;
    double cost;
  };
  std::vector<Item> destined;
  std::vector<Item> low_hop;
  std::vector<Item> by_cost;
  for (const auto& sm : buffer()) {
    if (sm.msg.expired_at(t) || acked(sm.msg.id)) continue;
    if (sm.msg.dst == peer) {
      destined.push_back({sm.msg.id, sm.hop_count, 0.0});
      continue;
    }
    if (peer_has(peer, sm.msg.id)) continue;
    const double c = cost_to(sm.msg.dst);
    if (sm.hop_count < params_.hop_threshold) {
      low_hop.push_back({sm.msg.id, sm.hop_count, c});
    } else {
      by_cost.push_back({sm.msg.id, sm.hop_count, c});
    }
  }
  std::sort(low_hop.begin(), low_hop.end(), [](const Item& a, const Item& b) {
    if (a.hops != b.hops) return a.hops < b.hops;
    return a.cost < b.cost;
  });
  std::sort(by_cost.begin(), by_cost.end(),
            [](const Item& a, const Item& b) { return a.cost < b.cost; });
  for (const Item& it : destined) send_copy(peer, it.id, 1, 0);
  for (const Item& it : low_hop) send_copy(peer, it.id, 1, 0);
  for (const Item& it : by_cost) send_copy(peer, it.id, 1, 0);
}

void MaxPropRouter::on_message_created(const sim::Message& m) {
  const sim::StoredMessage* sm = buffer().find(m.id);
  if (sm == nullptr) return;
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) {
    if (m.dst == peer || !peer_has(peer, m.id)) send_copy(peer, m.id, 1, 0);
  }
}

void MaxPropRouter::on_message_received(const sim::StoredMessage& sm,
                                        sim::NodeIdx from) {
  if (acked(sm.msg.id)) {
    buffer().erase(sm.msg.id);
    return;
  }
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) {
    if (peer == from) continue;
    if (sm.msg.dst == peer || !peer_has(peer, sm.msg.id)) {
      send_copy(peer, sm.msg.id, 1, 0);
    }
  }
}

void MaxPropRouter::on_delivered(const sim::Message& m) {
  acked_.insert(m.id);
  buffer().erase(m.id);
}

sim::MsgId MaxPropRouter::choose_drop_victim(const sim::Buffer& buffer) const {
  // Evict above-threshold messages by highest cost first; if none, fall
  // back to the highest hop count (closest to MaxProp's sorted drop order).
  sim::MsgId victim = sim::Buffer::kInvalidMsg;
  double worst_cost = -1.0;
  int worst_hops = -1;
  for (const auto& sm : buffer) {
    if (sm.hop_count >= params_.hop_threshold) {
      const double c = cost_to(sm.msg.dst);
      const double effective = c == kInf ? 1e18 : c;
      if (effective > worst_cost) {
        worst_cost = effective;
        victim = sm.msg.id;
      }
    }
  }
  if (victim != sim::Buffer::kInvalidMsg) return victim;
  for (const auto& sm : buffer) {
    if (sm.hop_count > worst_hops) {
      worst_hops = sm.hop_count;
      victim = sm.msg.id;
    }
  }
  return victim;
}

}  // namespace dtn::routing
