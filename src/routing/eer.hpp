// EER — Expected Encounter based Routing (the paper's Algorithm 1).
//
// Multiple-replicas phase: when u_i (M_k > 1 replicas of m_k) meets u_j,
// hand over ceil(M_k * EEV_j / (EEV_i + EEV_j)) replicas, both EEVs
// evaluated over the window (t, t + α·TTL_k] where TTL_k is the message's
// *residual* TTL (Theorem 1).
//
// Single-replica phase: maintain the MI matrix (freshness-merged rows on
// contact, paper footnote 1), build the MD matrix (Theorem 2 own-row, MI
// elsewhere) and forward the last copy iff MEMD(u_i, d) > MEMD(u_j, d)
// (Theorems 2+3, Dijkstra over MD).
//
// Degenerate-split policy (the paper leaves it open): when
// EEV_i + EEV_j = 0 (no usable history on either side) replicas split
// binary-style, floor(M/2), so early-life messages still disseminate.
#pragma once

#include <memory>

#include "core/contact_history.hpp"
#include "core/md_builder.hpp"
#include "core/mi_matrix.hpp"
#include "sim/router.hpp"

namespace dtn::routing {

struct EerParams {
  int copies = 10;            ///< λ
  double alpha = 0.28;        ///< α (paper Sec. V-A)
  std::size_t window = 32;    ///< sliding-window capacity per pair
  double md_time_quantum = 1.0;  ///< MEMD cache time bucket (s)
};

class EerRouter final : public sim::Router {
 public:
  explicit EerRouter(EerParams params);

  [[nodiscard]] std::string name() const override { return "EER"; }
  [[nodiscard]] int initial_replicas() const override { return params_.copies; }

  void reset() override {
    history_.clear();
    if (mi_) mi_->reset();
    memd_cache_.reset();
  }

  void on_contact_up(sim::NodeIdx peer) override;
  void on_message_created(const sim::Message& m) override;
  void on_message_received(const sim::StoredMessage& sm, sim::NodeIdx from) override;

  /// EEV_self(t, τ) — Theorem 1 over the live history. Public for tests.
  [[nodiscard]] double eev(double t, double tau) const;
  /// MEMD(self, dst) at time t — Theorems 2+3. Public for tests.
  [[nodiscard]] double memd(sim::NodeIdx dst, double t);

  [[nodiscard]] const core::ContactHistory& history() const { return history_; }
  [[nodiscard]] const core::MiMatrix& mi() const { return *mi_; }

 private:
  void ensure_state();
  void record_meeting(sim::NodeIdx peer, double t);
  void exchange_mi(sim::NodeIdx peer, EerRouter& peer_router);
  void route_messages(sim::NodeIdx peer, EerRouter* peer_router);
  void route_one(const sim::StoredMessage& sm, sim::NodeIdx peer,
                 EerRouter* peer_router, double t);

  EerParams params_;
  core::ContactHistory history_;
  std::unique_ptr<core::MiMatrix> mi_;  ///< sized lazily to node_count()
  core::MemdCache memd_cache_;
};

}  // namespace dtn::routing
