#include "routing/eer.hpp"

#include <cmath>
#include <vector>

#include "core/estimators.hpp"
#include "sim/world.hpp"

namespace dtn::routing {

EerRouter::EerRouter(EerParams params)
    : params_(params), history_(params.window), memd_cache_(params.md_time_quantum) {}

void EerRouter::ensure_state() {
  if (!mi_) mi_ = std::make_unique<core::MiMatrix>(world().node_count());
}

double EerRouter::eev(double t, double tau) const {
  return core::expected_encounter_value(history_, t, tau);
}

double EerRouter::memd(sim::NodeIdx dst, double t) {
  ensure_state();
  return memd_cache_.memd(*mi_, history_, self(), dst, t);
}

void EerRouter::record_meeting(sim::NodeIdx peer, double t) {
  history_.record_contact(peer, t);
  const core::PairHistory* ph = history_.pair(peer);
  if (ph != nullptr && !ph->intervals.empty()) {
    mi_->set_entry(self(), peer, ph->average_interval(), t);
  }
}

void EerRouter::exchange_mi(sim::NodeIdx /*peer*/, EerRouter& peer_router) {
  // Handshake: both sides ship their per-row update-time vectors so each
  // can decide which rows are fresher (8 bytes per row, both directions).
  charge_control_bytes(2 * static_cast<std::int64_t>(mi_->size()) * 8);
  // Only fresher rows cross the air (paper footnote 1); charge both
  // directions once (the lower-id endpoint performs the exchange).
  const int to_self = mi_->merge_from(*peer_router.mi_);
  const int to_peer = peer_router.mi_->merge_from(*mi_);
  charge_control_bytes((to_self + to_peer) * mi_->row_bytes());
}

void EerRouter::on_contact_up(sim::NodeIdx peer) {
  ensure_state();
  const double t = now();
  record_meeting(peer, t);

  auto* peer_router = dynamic_cast<EerRouter*>(&world().router_of(peer));
  if (peer_router != nullptr) {
    peer_router->ensure_state();
    // Both endpoints receive on_contact_up; the lower id runs the MI
    // exchange exactly once per contact (Algorithm 1 line 4).
    if (self() < peer) exchange_mi(peer, *peer_router);
    // Summary-vector exchange so each side knows what the other holds.
    charge_control_bytes(
        static_cast<std::int64_t>(buffer().count() + world().buffer_of(peer).count()) * 8);
  }

  route_messages(peer, peer_router);
}

void EerRouter::route_messages(sim::NodeIdx peer, EerRouter* peer_router) {
  const double t = now();
  for (const auto& sm : buffer()) {
    route_one(sm, peer, peer_router, t);
  }
}

void EerRouter::route_one(const sim::StoredMessage& sm, sim::NodeIdx peer,
                          EerRouter* peer_router, double t) {
  {
    if (sm.msg.expired_at(t)) return;
    // Direct delivery always wins.
    if (sm.msg.dst == peer) {
      send_copy(peer, sm.msg.id, 1, 0);
      return;
    }
    if (peer_router == nullptr) return;
    // Algorithm 1 line 7: no redistribution when both hold replicas.
    if (peer_has(peer, sm.msg.id)) return;

    const double tau = params_.alpha * sm.msg.remaining_ttl(t);
    if (sm.replicas > 1) {
      // Multiple replicas distribution (Algorithm 1 line 10).
      const double eev_i = eev(t, tau);
      const double eev_j = peer_router->eev(t, tau);
      const double denom = eev_i + eev_j;
      int give;
      if (denom <= 0.0) {
        give = sm.replicas / 2;  // degenerate split, see header
      } else {
        give = static_cast<int>(
            std::ceil(static_cast<double>(sm.replicas) * eev_j / denom));
        if (give > sm.replicas) give = sm.replicas;
      }
      if (give >= 1) send_copy(peer, sm.msg.id, give, give);
    } else {
      // Single replica forwarding (Algorithm 1 line 13).
      const double memd_i = memd(sm.msg.dst, t);
      const double memd_j = peer_router->memd(sm.msg.dst, t);
      charge_control_bytes(8);  // the peer reports its MEMD to us
      if (memd_i > memd_j) send_copy(peer, sm.msg.id, 1, 1);
    }
  }
}

void EerRouter::on_message_created(const sim::Message& m) {
  ensure_state();
  const sim::StoredMessage* sm = buffer().find(m.id);
  if (sm == nullptr) return;
  // A message born during an active contact is routed immediately; the
  // contact-up exchange already happened when the link formed.
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) {
    auto* peer_router = dynamic_cast<EerRouter*>(&world().router_of(peer));
    route_one(*sm, peer, peer_router, now());
  }
}

void EerRouter::on_message_received(const sim::StoredMessage& sm,
                                    sim::NodeIdx /*from*/) {
  ensure_state();
  // Keep distributing along other active contacts (peer_has() filters the
  // sender and any node already scheduled to receive it).
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) {
    auto* peer_router = dynamic_cast<EerRouter*>(&world().router_of(peer));
    route_one(sm, peer, peer_router, now());
  }
}

}  // namespace dtn::routing
