#include "routing/ebr.hpp"

#include <cmath>
#include <vector>

#include "sim/world.hpp"

namespace dtn::routing {

void EbrRouter::roll_window(double now) {
  if (window_end_ < 0.0) window_end_ = now + params_.window_s;
  while (now >= window_end_) {
    ev_ = params_.ewma * current_window_contacts_ + (1.0 - params_.ewma) * ev_;
    current_window_contacts_ = 0;
    window_end_ += params_.window_s;
  }
}

void EbrRouter::on_tick(double now) { roll_window(now); }

void EbrRouter::on_contact_up(sim::NodeIdx peer) {
  roll_window(now());
  ++current_window_contacts_;
  // EV exchange: one double each way.
  charge_control_bytes(8);
  for (const auto& sm : buffer()) try_route(sm, peer);
}

void EbrRouter::on_message_created(const sim::Message& m) {
  const sim::StoredMessage* sm = buffer().find(m.id);
  if (sm == nullptr) return;
  const std::vector<sim::NodeIdx>& peers = contacts();  // zero-copy view
  for (const sim::NodeIdx peer : peers) try_route(*sm, peer);
}

void EbrRouter::try_route(const sim::StoredMessage& sm, sim::NodeIdx peer) {
  if (sm.msg.expired_at(now())) return;
  if (sm.msg.dst == peer) {
    send_copy(peer, sm.msg.id, 1, 0);
    return;
  }
  if (sm.replicas <= 1) return;  // wait phase: destination-only
  if (peer_has(peer, sm.msg.id)) return;
  auto* peer_router = dynamic_cast<EbrRouter*>(&world().router_of(peer));
  if (peer_router == nullptr) return;
  const double ev_self = ev_;
  const double ev_peer = peer_router->ev_;
  const double denom = ev_self + ev_peer;
  int give;
  if (denom <= 0.0) {
    give = sm.replicas / 2;  // no encounter information yet: split evenly
  } else {
    give = static_cast<int>(
        std::floor(static_cast<double>(sm.replicas) * ev_peer / denom));
  }
  if (give >= 1) send_copy(peer, sm.msg.id, give, give);
}

}  // namespace dtn::routing
