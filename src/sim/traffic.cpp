#include "sim/traffic.hpp"

#include <limits>

namespace dtn::sim {

TrafficGenerator::TrafficGenerator(TrafficParams params, util::Pcg32 rng,
                                   NodeIdx node_count) {
  reset(params, rng, node_count);
}

void TrafficGenerator::reset(TrafficParams params, util::Pcg32 rng,
                             NodeIdx node_count) {
  params_ = params;
  rng_ = rng;
  node_count_ = node_count;
  next_time_ = params_.start +
               rng_.uniform(params_.interval_min, params_.interval_max);
  if (next_time_ > params_.stop || node_count_ < 2) {
    next_time_ = std::numeric_limits<double>::infinity();
  }
}

Message TrafficGenerator::pop(MsgId id) {
  Message m;
  m.id = id;
  m.created = next_time_;
  m.ttl = params_.ttl;
  m.size_bytes = params_.size_bytes;
  m.src = static_cast<NodeIdx>(rng_.uniform_int(0, node_count_ - 1));
  // Distinct destination: draw from the remaining n-1 ids.
  auto d = static_cast<NodeIdx>(rng_.uniform_int(0, node_count_ - 2));
  m.dst = d >= m.src ? d + 1 : d;

  next_time_ += rng_.uniform(params_.interval_min, params_.interval_max);
  if (next_time_ > params_.stop) {
    next_time_ = std::numeric_limits<double>::infinity();
  }
  return m;
}

}  // namespace dtn::sim
