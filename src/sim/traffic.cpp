#include "sim/traffic.hpp"

#include <cmath>
#include <limits>

namespace dtn::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTwoPi = 6.283185307179586476925286766559;

/// True when the entry can never produce a message: an empty range, or a
/// single-node src range equal to a single-node dst range (src must
/// differ from dst). Generalizes the old network-wide `node_count < 2`.
bool dead_entry(const TrafficMatrixEntry& e) noexcept {
  return e.src_count <= 0 || e.dst_count <= 0 ||
         (e.src_count == 1 && e.dst_count == 1 && e.src_first == e.dst_first);
}

}  // namespace

TrafficGenerator::TrafficGenerator(const TrafficParams& params, std::uint64_t seed,
                                   NodeIdx node_count) {
  reset(params, seed, node_count);
}

void TrafficGenerator::reset(const TrafficParams& params, std::uint64_t seed,
                             NodeIdx node_count) {
  params_ = params;  // vector/shared_ptr members reuse capacity on re-reset
  node_count_ = node_count;
  trace_cursor_ = 0;

  if (params_.profile == TrafficProfile::kTrace) {
    schedules_.clear();
    heap_.clear();
    next_time_ = kInf;
    if (!params_.trace) return;
    const auto& trace = *params_.trace;
    while (trace_cursor_ < trace.size() &&
           trace[trace_cursor_].time < params_.start) {
      ++trace_cursor_;
    }
    if (trace_cursor_ < trace.size() &&
        trace[trace_cursor_].time <= params_.stop) {
      next_time_ = trace[trace_cursor_].time;
    }
    return;
  }

  implicit_ = TrafficMatrixEntry{};
  implicit_.src_first = 0;
  implicit_.src_count = node_count_;
  implicit_.dst_first = 0;
  implicit_.dst_count = node_count_;
  implicit_.interval_min = params_.interval_min;
  implicit_.interval_max = params_.interval_max;
  implicit_.size_bytes = params_.size_bytes;

  const std::size_t entries = params_.matrix.empty() ? 1 : params_.matrix.size();
  schedules_.resize(entries);
  heap_.resize(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    // Per-entry streams keyed by spec entry index: adding or emptying one
    // entry never perturbs another entry's schedule, and the implicit
    // entry (index 0) is the exact pre-matrix network-wide stream.
    schedules_[i].rng = util::derive_stream(seed, static_cast<std::uint64_t>(i),
                                            util::StreamPurpose::kTraffic);
    schedules_[i].next_time = advance(i, params_.start);
  }
  // Bottom-up heapify over the schedule indices (deterministic tie-break
  // on index via heap_before).
  for (std::size_t i = 0; i < entries; ++i) {
    heap_[i] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t i = entries / 2; i-- > 0;) sift_down(i);
  next_time_ = schedules_[heap_[0]].next_time;
}

const TrafficMatrixEntry& TrafficGenerator::entry(std::size_t idx) const noexcept {
  return params_.matrix.empty() ? implicit_ : params_.matrix[idx];
}

double TrafficGenerator::shift_to_on_window(double t) const noexcept {
  const double period = params_.on_s + params_.off_s;
  if (!(params_.off_s > 0.0) || !(period > 0.0)) return t;
  double local = std::fmod(t - params_.phase_s, period);
  if (local < 0.0) local += period;
  if (local < params_.on_s) return t;
  return t + (period - local);  // defer to the next window start
}

double TrafficGenerator::advance(std::size_t idx, double from) {
  const TrafficMatrixEntry& e = entry(idx);
  if (dead_entry(e)) return kInf;
  Schedule& s = schedules_[idx];
  double t = from;
  // Accumulating `t` here is SEMANTIC, not the accumulate-instead-of-index
  // bug fixed in World::step(): each event time is defined as the sum of
  // independently drawn inter-arrival gaps (a random walk over the entry's
  // stream), not a point on a derived grid. The World quantizes injection
  // to its integer step grid when next_time() comes due.
  for (;;) {
    // weight 1 divides by exactly 1.0 — bit-neutral for legacy configs.
    t += s.rng.uniform(e.interval_min, e.interval_max) / e.weight;
    if (params_.profile == TrafficProfile::kOnOff) t = shift_to_on_window(t);
    if (t > params_.stop) return kInf;  // stop itself is still generated
    if (params_.profile != TrafficProfile::kDiurnal) return t;
    // Diurnal thinning: accept with raised-cosine intensity peaking at
    // phase + period/2 (the "midday" of each cycle).
    const double intensity =
        0.5 * (1.0 - std::cos(kTwoPi * (t - params_.phase_s) / params_.period_s));
    if (s.rng.bernoulli(intensity)) return t;
  }
}

bool TrafficGenerator::heap_before(std::uint32_t a, std::uint32_t b) const noexcept {
  const double ta = schedules_[a].next_time;
  const double tb = schedules_[b].next_time;
  return ta < tb || (ta == tb && a < b);
}

void TrafficGenerator::sift_down(std::size_t pos) noexcept {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = pos;
    const std::size_t left = 2 * pos + 1;
    const std::size_t right = left + 1;
    if (left < n && heap_before(heap_[left], heap_[best])) best = left;
    if (right < n && heap_before(heap_[right], heap_[best])) best = right;
    if (best == pos) return;
    std::swap(heap_[pos], heap_[best]);
    pos = best;
  }
}

Message TrafficGenerator::pop(MsgId id) {
  Message m;
  m.id = id;
  m.created = next_time_;

  if (params_.profile == TrafficProfile::kTrace) {
    const TraceMessage& tm = (*params_.trace)[trace_cursor_++];
    m.src = tm.src;
    m.dst = tm.dst;
    m.size_bytes = tm.size_bytes > 0 ? tm.size_bytes : params_.size_bytes;
    m.ttl = tm.ttl > 0.0 ? tm.ttl : params_.ttl;
    const auto& trace = *params_.trace;
    next_time_ = (trace_cursor_ < trace.size() &&
                  trace[trace_cursor_].time <= params_.stop)
                     ? trace[trace_cursor_].time
                     : kInf;
    return m;
  }

  const std::uint32_t idx = heap_[0];
  Schedule& s = schedules_[idx];
  const TrafficMatrixEntry& e = entry(idx);
  m.ttl = params_.ttl;
  m.size_bytes = e.size_bytes;
  if (e.dst_count == 1) {
    // Fixed destination: when it sits inside the src range, draw src from
    // the remaining src_count - 1 ids instead (dead_entry rules out the
    // src_count == 1 case).
    m.dst = e.dst_first;
    if (m.dst >= e.src_first && m.dst < e.src_first + e.src_count) {
      const auto d = static_cast<NodeIdx>(s.rng.uniform_int(0, e.src_count - 2));
      const NodeIdx rel = m.dst - e.src_first;
      m.src = e.src_first + (d >= rel ? d + 1 : d);
    } else {
      m.src = e.src_first +
              static_cast<NodeIdx>(s.rng.uniform_int(0, e.src_count - 1));
    }
  } else {
    m.src = e.src_first +
            static_cast<NodeIdx>(s.rng.uniform_int(0, e.src_count - 1));
    if (m.src >= e.dst_first && m.src < e.dst_first + e.dst_count) {
      // Distinct destination: draw from the remaining dst_count - 1 ids.
      const auto d = static_cast<NodeIdx>(s.rng.uniform_int(0, e.dst_count - 2));
      const NodeIdx rel = m.src - e.dst_first;
      m.dst = e.dst_first + (d >= rel ? d + 1 : d);
    } else {
      m.dst = e.dst_first +
              static_cast<NodeIdx>(s.rng.uniform_int(0, e.dst_count - 1));
    }
  }

  s.next_time = advance(idx, m.created);
  sift_down(0);
  next_time_ = schedules_[heap_[0]].next_time;
  return m;
}

}  // namespace dtn::sim
