// Message model. A Message is the immutable identity of an end-to-end
// datagram; a StoredMessage is one node's copy of it, carrying the node's
// share of the replica quota (quota-based protocols) and bookkeeping.
#pragma once

#include <cstdint>

namespace dtn::sim {

using MsgId = std::int64_t;
using NodeIdx = std::int32_t;

struct Message {
  MsgId id = -1;
  NodeIdx src = -1;
  NodeIdx dst = -1;
  double created = 0.0;    ///< simulation time of creation (s)
  double ttl = 0.0;        ///< time-to-live (s)
  std::int64_t size_bytes = 0;

  /// Absolute expiry time. A delivery only counts if it completes strictly
  /// before this instant (paper Sec. III-A2: "within the TTL").
  [[nodiscard]] double expiry() const noexcept { return created + ttl; }
  [[nodiscard]] bool expired_at(double t) const noexcept { return t >= expiry(); }
  /// Residual TTL at time t, clamped at 0 — the τ fed to EEV/ENEC.
  [[nodiscard]] double remaining_ttl(double t) const noexcept {
    const double r = expiry() - t;
    return r > 0.0 ? r : 0.0;
  }
};

struct StoredMessage {
  Message msg;
  int replicas = 1;        ///< quota held by this node (>= 1 while stored)
  int hop_count = 0;       ///< hops from the source to this holder
  double received_at = 0.0;
};

}  // namespace dtn::sim
