// The simulation kernel. Time-stepped movement + contact detection (update
// interval 0.1 s per the paper), bandwidth-limited half-duplex transfers per
// contact, finite buffers with router-chosen eviction, TTL expiry, and the
// paper's three metrics. One World is one simulation run; Worlds share no
// state and may run concurrently on different threads.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geo/spatial_grid.hpp"
#include "mobility/movement_model.hpp"
#include "sim/buffer.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/router.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace dtn::sim {

struct WorldConfig {
  double step_dt = 0.1;          ///< update interval (s), paper Sec. V-A
  double radio_range = 10.0;     ///< m
  double bitrate_bps = 2e6;      ///< 2 Mbps
  std::int64_t buffer_bytes = 1 << 20;  ///< 1 MB
  double ttl_sweep_interval = 10.0;     ///< s between expiry sweeps
  std::uint64_t seed = 1;
};

class World {
 public:
  explicit World(WorldConfig config);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Adds a node; returns its index. All nodes must be added before run().
  NodeIdx add_node(mobility::MovementModelPtr movement, std::unique_ptr<Router> router);

  /// Installs the network-wide traffic generator (optional; at most one).
  void set_traffic(const TrafficParams& params);

  /// Runs the simulation until `duration` seconds of simulated time.
  void run(double duration);
  /// Advances a single step (exposed for tests and incremental drivers).
  void step();

  // ---- router-facing services ----
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] NodeIdx node_count() const noexcept {
    return static_cast<NodeIdx>(nodes_.size());
  }
  [[nodiscard]] const WorldConfig& config() const noexcept { return config_; }
  [[nodiscard]] Buffer& buffer_of(NodeIdx node);
  [[nodiscard]] const Buffer& buffer_of(NodeIdx node) const;
  [[nodiscard]] Router& router_of(NodeIdx node);
  [[nodiscard]] const Router& router_of(NodeIdx node) const;
  [[nodiscard]] geo::Vec2 position_of(NodeIdx node) const;
  [[nodiscard]] bool in_contact(NodeIdx a, NodeIdx b) const;
  [[nodiscard]] std::vector<NodeIdx> contacts_of(NodeIdx node) const;
  [[nodiscard]] bool peer_has(NodeIdx peer, MsgId id) const;
  bool enqueue_transfer(NodeIdx from, NodeIdx to, MsgId id, int r_recv, int r_deduct);
  [[nodiscard]] util::Pcg32& routing_rng(NodeIdx node);

  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// Injects a message directly at its source (tests / custom drivers).
  /// Replica count comes from the source router's initial_replicas().
  void inject_message(const Message& m);

  /// Total contact (link-up) events so far — a mobility diagnostic.
  [[nodiscard]] std::int64_t contact_events() const noexcept { return contact_events_; }

 private:
  struct Transfer {
    NodeIdx from = -1;
    NodeIdx to = -1;
    Message msg;
    int r_recv = 0;
    int r_deduct = 0;
    double bytes_left = 0.0;
    bool started = false;
  };

  struct Connection {
    std::deque<Transfer> queue;  ///< half-duplex: one transfer at a time
  };

  struct Node {
    mobility::MovementModelPtr movement;
    std::unique_ptr<Router> router;
    Buffer buffer;
    util::Pcg32 routing_rng;
    geo::Vec2 pos;

    Node(mobility::MovementModelPtr m, std::unique_ptr<Router> r,
         std::int64_t buffer_bytes, util::Pcg32 rng)
        : movement(std::move(m)), router(std::move(r)), buffer(buffer_bytes),
          routing_rng(rng) {}
  };

  static std::uint64_t pair_key(NodeIdx a, NodeIdx b) noexcept;

  void move_nodes();
  void detect_contacts();
  void progress_transfers();
  void complete_transfer(Transfer& tr);
  void generate_traffic();
  void sweep_expired();
  void abort_connection_queue(Connection& conn);
  void unindex_inbound(const Transfer& tr);
  /// Makes room in `node`'s buffer for msg; returns false if impossible.
  bool make_room(NodeIdx node, const Message& msg);

  WorldConfig config_;
  double now_ = 0.0;
  std::int64_t step_count_ = 0;
  double next_sweep_ = 0.0;
  std::vector<Node> nodes_;
  geo::SpatialGrid grid_;
  std::unordered_map<std::uint64_t, Connection> connections_;  // active links
  /// Per-node multiset of message ids currently queued toward that node;
  /// makes peer_has() O(1) instead of scanning every connection queue.
  std::vector<std::unordered_multiset<MsgId>> inbound_queued_;
  std::unique_ptr<TrafficGenerator> traffic_;
  MsgId next_msg_id_ = 0;
  Metrics metrics_;
  std::int64_t contact_events_ = 0;
  bool started_ = false;
};

}  // namespace dtn::sim
