// The simulation kernel. Time-stepped movement + contact detection (update
// interval 0.1 s per the paper), bandwidth-limited half-duplex transfers per
// contact, finite buffers with router-chosen eviction, TTL expiry, and the
// paper's three metrics. One World is one simulation run; Worlds share no
// state and may run concurrently on different threads.
//
// Contact-layer engine (incremental since PR 1): the World maintains
//  - per-node sorted adjacency lists, updated on link-up/link-down, so
//    neighbor queries are O(degree) and routers get a zero-copy
//    `const std::vector<NodeIdx>&` view;
//  - a slot pool of Connection records addressed through the adjacency
//    lists (no per-link hash map), recycled across link churn;
//  - sorted pair-key vectors diffed against the previous step's to derive
//    link-up/link-down events without rebuilding any set structure;
//  - an active-transfers index so progress_transfers() visits only
//    connections with queued work;
//  - slab-backed per-node message stores (sim/buffer.hpp), a flat
//    inbound-queued index, and a reused TTL-sweep scratch, so the
//    traffic-bearing hot path recycles instead of allocating.
// After warm-up the whole step loop is allocation-free in steady state.
// `WorldConfig::legacy_contact_path` re-enables the seed's full-rescan
// algorithm (same observable behavior, seed cost profile) so benchmarks can
// measure both in one binary.
//
// Movement (SoA since PR 3): node trajectories execute inside a
// mobility::MovementEngine — positions and per-model state in dense
// structure-of-arrays lanes, batched RNG draws per waypoint event, and no
// per-node virtual dispatch for the waypoint/community/bus models.
// `WorldConfig::legacy_movement_path` keeps the per-object virtual path in
// the same binary (bit-identical trajectories, seed cost profile).
//
// Cross-run reuse (PR 3): one World can execute many simulation runs while
// RETAINING its allocated capacity — buffer slabs, spatial-grid cells,
// adjacency/connection/transfer pools, movement lanes, metrics buckets:
//   - reset(config) + add_node(...) per node + set_traffic/run rebuilds the
//     world for a possibly different scenario (node count, protocol, map);
//     node slots are recycled in order, so only genuinely new state (router
//     objects, larger high-water marks) allocates;
//   - reseed(seed) restarts the CURRENT node set under a new seed with ~0
//     allocations: movement re-initialized in place, routers reset via
//     Router::reset(), buffers/metrics/traffic cleared in place.
// Both paths are bit-identical to building a fresh World with the same
// arguments (enforced by integration_sweep_test + sim_alloc_regression_test).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "geo/spatial_grid.hpp"
#include "mobility/movement_engine.hpp"
#include "mobility/movement_model.hpp"
#include "sim/buffer.hpp"
#include "sim/flat_id_table.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/router.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace dtn::sim {

struct WorldConfig {
  double step_dt = 0.1;          ///< update interval (s), paper Sec. V-A
  double radio_range = 10.0;     ///< m
  double bitrate_bps = 2e6;      ///< 2 Mbps
  std::int64_t buffer_bytes = 1 << 20;  ///< 1 MB
  double ttl_sweep_interval = 10.0;     ///< s between expiry sweeps
  std::uint64_t seed = 1;
  /// Seed-style contact path: full connection rescan per neighbor query and
  /// per-step set rebuild in detect_contacts. Only for benchmarking the
  /// incremental engine against its predecessor; must be set before run().
  bool legacy_contact_path = false;
  /// Seed-style message store: every node's Buffer uses the seed's
  /// std::list + unordered_map internals instead of the slab. Observable
  /// behavior is identical (enforced by sim_buffer_equivalence_test); only
  /// for benchmarking the slab against its predecessor. Set before add_node().
  bool legacy_buffer_path = false;
  /// Seed-style movement path: every node keeps its heap MovementModel and
  /// steps through virtual dispatch instead of the SoA kernel. Trajectories
  /// are bit-identical (enforced by sim_movement_engine_test); only for
  /// benchmarking the SoA kernel. Set before add_node().
  bool legacy_movement_path = false;
  /// PR2-era pair sweep: detection streams every tracked grid cell instead
  /// of the occupied-cell index. Identical pair sets / observable behavior;
  /// only for benchmarking the occupied-index sweep. Set before run().
  bool legacy_pair_sweep = false;
  /// Kinetic (event-driven) time advance: run() consumes a calendar of
  /// analytically predicted contact/waypoint/cell-crossing events instead
  /// of scanning every fixed step (sim/event_kernel.hpp). Observable
  /// actions stay quantized to the step_dt grid, so metrics are
  /// bit-identical to the fixed-dt loop on closed-form workloads
  /// (sim_event_kernel_test). Falls back to fixed-dt stepping when a node
  /// has no closed-form trajectory (bus/custom movement) or when a
  /// legacy_* bench path is engaged. Set before run().
  bool event_kernel = false;
};

class World {
 public:
  explicit World(WorldConfig config);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Adds a node; returns its index. All nodes must be added before run().
  /// Known model types (RandomWaypoint / CommunityMovement / BusMovement)
  /// are unpacked into the SoA movement lanes; others step virtually.
  NodeIdx add_node(mobility::MovementModelPtr movement, std::unique_ptr<Router> router);
  /// Allocation-free registration forms: the movement spec goes straight
  /// into its SoA lane with no intermediate heap model object. Preferred by
  /// the harness/bench hot paths (world rebuilds across sweep seeds).
  NodeIdx add_node(const mobility::RandomWaypointParams& movement,
                   std::unique_ptr<Router> router);
  NodeIdx add_node(const mobility::CommunityMovementParams& movement,
                   std::unique_ptr<Router> router);
  NodeIdx add_node(std::shared_ptr<const geo::Polyline> route,
                   const mobility::BusParams& movement, std::unique_ptr<Router> router);
  /// Stationary infrastructure node: position fixed (or drawn per seed for
  /// uniform placement); zero movement-lane cost — step_all never visits it.
  NodeIdx add_node(const mobility::StationaryNodeSpec& movement,
                   std::unique_ptr<Router> router);

  /// Installs the workload generator (optional; at most one) — the
  /// degenerate params are the network-wide ONE default; matrix entries,
  /// temporal profiles, and trace replay per sim/traffic.hpp.
  void set_traffic(const TrafficParams& params);

  // ---- cross-run reuse (see header comment) ----
  /// Clears ALL simulation state and the node set while retaining every
  /// allocated pool, and applies a (possibly different) config. The caller
  /// then re-registers nodes with add_node() — slots are recycled in
  /// registration order — and optionally set_traffic(), exactly like on a
  /// fresh World. Runs are bit-identical to a fresh World(config) build.
  void reset(const WorldConfig& config);
  /// Restarts the CURRENT node set under a new seed: per-node RNG streams
  /// re-derived, movement re-initialized in place, routers reset via
  /// Router::reset(), buffers/metrics/contact state/traffic cleared with
  /// their capacity retained. Requires a completed node set (not mid-
  /// rebuild); structure (node count, movement specs, router instances,
  /// traffic params) is unchanged. ~0 heap allocations; bit-identical to a
  /// fresh build of the same scenario with the new seed.
  void reseed(std::uint64_t seed);

  /// Runs the simulation until `duration` seconds of simulated time.
  void run(double duration);
  /// Advances a single step (exposed for tests and incremental drivers).
  void step();

  /// Number of whole step_dt steps covering `duration`. Tolerance-aware:
  /// ratios within a few ulps of an integer count as that integer, so
  /// duration = 600 with dt = 0.1 is always exactly 6000 steps regardless
  /// of how 600/0.1 rounds; genuinely fractional ratios round up.
  [[nodiscard]] static std::int64_t step_count_for(double duration, double step_dt);
  /// Steps executed so far; sim time is exactly step_count() * step_dt.
  [[nodiscard]] std::int64_t step_count() const noexcept { return step_count_; }
  /// True when the last run() advanced via the kinetic event kernel rather
  /// than the fixed-dt loop (i.e. event_kernel was set and no fallback hit).
  [[nodiscard]] bool event_kernel_used() const noexcept { return event_kernel_used_; }

  // ---- router-facing services ----
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] NodeIdx node_count() const noexcept {
    return static_cast<NodeIdx>(nodes_.size());
  }
  [[nodiscard]] const WorldConfig& config() const noexcept { return config_; }
  [[nodiscard]] Buffer& buffer_of(NodeIdx node);
  [[nodiscard]] const Buffer& buffer_of(NodeIdx node) const;
  [[nodiscard]] Router& router_of(NodeIdx node);
  [[nodiscard]] const Router& router_of(NodeIdx node) const;
  [[nodiscard]] geo::Vec2 position_of(NodeIdx node) const;
  [[nodiscard]] bool in_contact(NodeIdx a, NodeIdx b) const;
  /// Current neighbors of `node`, ascending, as a copy (compat API; prefer
  /// neighbors_of() on hot paths).
  [[nodiscard]] std::vector<NodeIdx> contacts_of(NodeIdx node) const;
  /// Zero-copy view of `node`'s current neighbors, ascending. The reference
  /// stays valid until the next detect_contacts() pass (i.e. across a whole
  /// router callback); send_copy()/enqueue_transfer() do not invalidate it.
  /// Caveat: with legacy_contact_path the view is a shared scratch buffer
  /// that the NEXT neighbors_of()/contacts_of() call (for any node)
  /// overwrites — bench-baseline mode supports one outstanding view only.
  [[nodiscard]] const std::vector<NodeIdx>& neighbors_of(NodeIdx node) const;
  [[nodiscard]] bool peer_has(NodeIdx peer, MsgId id) const;
  bool enqueue_transfer(NodeIdx from, NodeIdx to, MsgId id, int r_recv, int r_deduct);
  [[nodiscard]] util::Pcg32& routing_rng(NodeIdx node);

  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// Injects a message directly at its source (tests / custom drivers).
  /// Replica count comes from the source router's initial_replicas().
  void inject_message(const Message& m);

  /// Total contact (link-up) events so far — a mobility diagnostic.
  [[nodiscard]] std::int64_t contact_events() const noexcept { return contact_events_; }
  /// Currently-active links (adjacency invariant checks in tests).
  [[nodiscard]] std::size_t active_connection_count() const noexcept {
    return live_connections_;
  }

 private:
  /// The kinetic kernel replays the exact step-grid semantics through the
  /// World's own link/traffic/transfer/sweep machinery.
  friend class EventKernel;

  struct Transfer {
    NodeIdx from = -1;
    NodeIdx to = -1;
    Message msg;
    int r_recv = 0;
    int r_deduct = 0;
    double bytes_left = 0.0;
    bool started = false;
  };

  /// FIFO of transfers with reusable storage (replaces std::deque):
  /// pop_front() advances a head index; storage compacts in place only when
  /// the queue drains or the dead prefix dominates, so a steady-state
  /// connection never heap-allocates.
  class TransferQueue {
   public:
    [[nodiscard]] bool empty() const noexcept { return head_ == items_.size(); }
    [[nodiscard]] std::size_t size() const noexcept { return items_.size() - head_; }
    [[nodiscard]] Transfer& front() noexcept { return items_[head_]; }
    void push_back(const Transfer& t) { items_.push_back(t); }
    void pop_front() {
      ++head_;
      if (head_ == items_.size()) {
        items_.clear();
        head_ = 0;
      } else if (head_ >= 32 && head_ * 2 >= items_.size()) {
        items_.erase(items_.begin(),
                     items_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
      }
    }
    void clear() noexcept {
      items_.clear();
      head_ = 0;
    }
    [[nodiscard]] const Transfer* begin() const noexcept { return items_.data() + head_; }
    [[nodiscard]] const Transfer* end() const noexcept {
      return items_.data() + items_.size();
    }
    [[nodiscard]] Transfer* begin() noexcept { return items_.data() + head_; }
    [[nodiscard]] Transfer* end() noexcept { return items_.data() + items_.size(); }

   private:
    std::vector<Transfer> items_;
    std::size_t head_ = 0;
  };

  /// One active link. Lives in a recycled slot pool; addressed via the
  /// endpoints' adjacency lists rather than a hash map.
  struct Connection {
    NodeIdx a = -1;  ///< lower endpoint
    NodeIdx b = -1;  ///< higher endpoint
    TransferQueue queue;  ///< half-duplex: one transfer at a time
    /// Position in active_slots_ while queued work exists (kNoSlot when
    /// not listed); enables O(1) swap-removal on link-down.
    std::uint32_t active_idx = 0xffffffffu;
    bool alive = false;  ///< slot occupied
  };

  /// Sorted adjacency of one node: peers_ ascending, slots_ parallel
  /// (slots_[i] is the connection slot for peers_[i]).
  struct Adjacency {
    std::vector<NodeIdx> peers;
    std::vector<std::uint32_t> slots;
  };

  /// Per-node simulation state. Movement state and positions live in the
  /// MovementEngine's SoA lanes, not here.
  struct Node {
    std::unique_ptr<Router> router;
    Buffer buffer;
    util::Pcg32 routing_rng;

    Node(std::unique_ptr<Router> r, std::int64_t buffer_bytes, bool legacy_buffer,
         util::Pcg32 rng)
        : router(std::move(r)), buffer(buffer_bytes, legacy_buffer), routing_rng(rng) {}
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Pair key ordered by (lo, hi): sorting keys reproduces the seed's
  /// deterministic link-up callback order (ascending (a, b) pairs).
  static std::uint64_t pair_key(NodeIdx a, NodeIdx b) noexcept;

  [[nodiscard]] std::uint32_t slot_of(NodeIdx a, NodeIdx b) const noexcept;
  void link_up(NodeIdx a, NodeIdx b);
  void link_down(NodeIdx a, NodeIdx b);
  void activate(std::uint32_t slot);
  void deactivate(std::uint32_t slot);

  /// Shared add_node tail: wires node `engine_node` (just registered with
  /// the movement engine) into a recycled or fresh Node slot.
  NodeIdx add_node_common(int engine_node, std::unique_ptr<Router> router);
  /// Clears run state (time, metrics, contact layer, traffic gate) while
  /// retaining capacity; shared by reset() and reseed().
  void clear_sim_state();
  /// Trims surplus recycled node slots after a reset()+add_node rebuild.
  void finalize_rebuild();

  void move_nodes();
  void sort_pair_keys(std::vector<std::uint64_t>& keys);
  void detect_contacts();
  void detect_contacts_legacy();
  void progress_transfers();
  void complete_transfer(Transfer& tr);
  void generate_traffic();
  void sweep_expired();
  void abort_connection_queue(Connection& conn);
  void unindex_inbound(const Transfer& tr);
  /// Makes room in `node`'s buffer for msg; returns false if impossible.
  bool make_room(NodeIdx node, const Message& msg);

  WorldConfig config_;
  /// Sim time is DERIVED: always step_count_ * step_dt, never accumulated
  /// (`now_ += dt` drifted against the sweep/traffic boundaries).
  double now_ = 0.0;
  std::int64_t step_count_ = 0;
  /// TTL sweeps fired so far; the next fires at the first step whose time
  /// reaches (sweeps_done_ + 1) * ttl_sweep_interval (integer-indexed, no
  /// accumulated next-sweep clock).
  std::int64_t sweeps_done_ = 0;
  bool event_kernel_used_ = false;
  std::vector<Node> nodes_;
  mobility::MovementEngine engine_;  ///< SoA positions + trajectory state
  geo::SpatialGrid grid_;
  bool rebuilding_ = false;          ///< between reset() and finalize_rebuild()
  std::size_t rebuild_cursor_ = 0;   ///< node slots re-registered so far

  // ---- contact layer ----
  std::vector<Adjacency> adjacency_;         // per-node sorted neighbor lists
  std::vector<Connection> conn_pool_;        // recycled connection slots
  std::vector<std::uint32_t> free_slots_;    // free list into conn_pool_
  std::size_t live_connections_ = 0;
  std::vector<std::uint64_t> prev_pairs_;    // sorted pair keys, last step
  std::vector<std::uint64_t> curr_pairs_;    // scratch: sorted keys, this step
  std::vector<std::uint64_t> diff_scratch_;  // scratch: ups/downs of the diff
  std::vector<std::pair<std::int32_t, std::int32_t>> pair_scratch_;  // grid out
  std::vector<std::uint32_t> radix_count_;   // scratch: counting-sort buckets
  std::vector<std::uint64_t> radix_tmp_;     // scratch: counting-sort output
  std::vector<std::uint32_t> active_slots_;  // connections with queued work
  std::vector<std::pair<std::uint64_t, std::uint32_t>> progress_scratch_;
  mutable std::vector<NodeIdx> legacy_contacts_scratch_;

  /// Multiset of message ids (id -> instance count) over the shared flat
  /// open-addressing table. Membership is O(1) like the former
  /// unordered_multiset but without its per-insert heap node, and unlike a
  /// plain vector bag it survives mass-enqueue events (one epidemic
  /// contact-up can queue hundreds of transfers toward a node, and every
  /// subsequent peer_has() probes the bag) without going linear.
  class IdBag {
   public:
    [[nodiscard]] bool contains(MsgId id) const noexcept {
      return counts_.find(id) != nullptr;
    }
    void insert(MsgId id) { ++counts_.find_or_insert(id, 0); }
    /// Removes one instance; no-op when absent.
    void erase_one(MsgId id) noexcept {
      std::uint32_t* count = counts_.find(id);
      if (count != nullptr && --*count == 0) counts_.erase(id);
    }

    /// Drops every instance, retaining table capacity (cross-run reuse).
    void clear() noexcept { counts_.clear(); }

   private:
    FlatIdTable<std::uint32_t> counts_;
  };

  /// Per-node bag of message ids currently queued toward that node (one
  /// instance per queued transfer), so peer_has() never scans connection
  /// queues.
  std::vector<IdBag> inbound_queued_;
  std::vector<MsgId> expired_scratch_;  // reused by sweep_expired
  std::unique_ptr<TrafficGenerator> traffic_;  ///< retained across resets
  TrafficParams traffic_params_;  ///< last set_traffic args (reseed re-derives)
  bool has_traffic_ = false;      ///< generator armed for the current run
  MsgId next_msg_id_ = 0;
  Metrics metrics_;
  std::int64_t contact_events_ = 0;
  bool started_ = false;
};

}  // namespace dtn::sim
