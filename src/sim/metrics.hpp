// Run metrics, following the paper's definitions (Sec. V-A) verbatim:
//   delivery ratio = delivered / generated
//   latency        = mean end-to-end delay of delivered messages
//   goodput        = delivered / total relayed (completed transfers)
// plus diagnostics the paper discusses qualitatively (control overhead for
// the MI exchange, drops, aborted transfers, hop counts), and OPTIONAL
// per-group buckets for heterogeneous worlds: when a node -> group map is
// installed (set_groups), created/delivered are additionally counted per
// source-node group, so mixed scenarios (buses + relays + walkers, possibly
// with per-group protocols) can attribute traffic outcomes to the group
// that originated it. The buckets never feed the headline metrics —
// installing them cannot perturb any existing number.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/message.hpp"
#include "util/stats.hpp"

namespace dtn::sim {

class Metrics {
 public:
  /// Zeroes all counters, retaining container capacity (the delivery map's
  /// bucket array survives), so a World reused across sweep seeds does not
  /// re-grow its metrics storage every run. An installed group map stays
  /// installed with its buckets zeroed — World::reseed() keeps the node
  /// set, so the mapping remains valid; see clear_groups().
  void reset();

  void on_created(const Message& m);
  /// Records a completed transfer (a "relay" in the paper's goodput sense).
  void on_relayed();
  void on_transfer_started();
  void on_transfer_aborted();
  /// First delivery of a message; later duplicates are ignored.
  void on_delivered(const Message& m, double t, int hop_count);
  void on_dropped();
  void on_expired();
  void add_control_bytes(std::int64_t bytes) { control_bytes_ += bytes; }

  [[nodiscard]] bool is_delivered(MsgId id) const { return delivery_time_.count(id) > 0; }

  // ---- optional per-group buckets (heterogeneous scenarios) ----
  /// Installs the node -> group map (`node_group[v]` in [0, group_count)).
  /// Messages are bucketed by their SOURCE node's group. The map survives
  /// reset() (counters re-zeroed) but not clear_groups(), which
  /// World::reset() calls because a rebuilt scenario's group structure may
  /// differ; the scenario layer re-installs it per run either way.
  void set_groups(std::vector<int> node_group, int group_count);
  /// Uninstalls the group map and buckets entirely (bucketing off).
  void clear_groups();
  [[nodiscard]] bool has_groups() const noexcept { return !node_group_.empty(); }
  [[nodiscard]] int group_count() const noexcept {
    return static_cast<int>(group_created_.size());
  }
  [[nodiscard]] std::int64_t group_created(int group) const {
    return group_created_.at(static_cast<std::size_t>(group));
  }
  [[nodiscard]] std::int64_t group_delivered(int group) const {
    return group_delivered_.at(static_cast<std::size_t>(group));
  }

  [[nodiscard]] std::int64_t created() const noexcept { return created_; }
  [[nodiscard]] std::int64_t delivered() const noexcept {
    return static_cast<std::int64_t>(delivery_time_.size());
  }
  [[nodiscard]] std::int64_t relayed() const noexcept { return relayed_; }
  [[nodiscard]] std::int64_t transfers_started() const noexcept { return started_; }
  [[nodiscard]] std::int64_t transfers_aborted() const noexcept { return aborted_; }
  [[nodiscard]] std::int64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::int64_t expired() const noexcept { return expired_; }
  [[nodiscard]] std::int64_t control_bytes() const noexcept { return control_bytes_; }

  [[nodiscard]] double delivery_ratio() const noexcept;
  [[nodiscard]] double latency_mean() const noexcept { return latency_.mean(); }
  [[nodiscard]] double goodput() const noexcept;
  [[nodiscard]] double hop_count_mean() const noexcept { return hops_.mean(); }
  [[nodiscard]] const util::StatAccumulator& latency_stats() const noexcept {
    return latency_;
  }

 private:
  std::int64_t created_ = 0;
  std::int64_t relayed_ = 0;
  std::int64_t started_ = 0;
  std::int64_t aborted_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t expired_ = 0;
  std::int64_t control_bytes_ = 0;
  std::unordered_map<MsgId, double> delivery_time_;
  util::StatAccumulator latency_;
  util::StatAccumulator hops_;

  /// Group bucket of message `m`'s source, or -1 when bucketing is off (no
  /// map installed / source outside it).
  [[nodiscard]] int group_of_source(const Message& m) const noexcept;
  std::vector<int> node_group_;               ///< empty = bucketing off
  std::vector<std::int64_t> group_created_;   ///< by source group
  std::vector<std::int64_t> group_delivered_; ///< first deliveries, by source group
};

}  // namespace dtn::sim
