// Kinetic (event-driven) time advance for World::run().
//
// Between waypoint events every node moves linearly, so nothing about the
// contact graph can change except at analytically predictable instants.
// Instead of scanning all n nodes every step_dt, the kernel keeps a
// calendar (binary min-heap keyed by time, deterministic tie-break by
// event kind then node/pair key) of:
//
//   segment boundaries   — pause end / waypoint arrival per node
//   cell crossings       — a node's closed-form path leaving its grid cell
//   contact make/break   — a pair's |distance|^2 = range^2 crossing,
//                          quantized to the step grid
//   traffic injections   — first grid step at/after the generator's clock
//   transfer ticks       — per-step bandwidth budget while work is queued
//   TTL sweeps           — first grid step reaching the sweep boundary
//
// and advances now_ event-to-event.
//
// Semantics contract: every OBSERVABLE action still happens at a grid time
// t_k = k * step_dt, exactly as the fixed-dt loop would apply it — contact
// state at step k is "distance at t_k <= range", traffic injects at the
// first step whose time reaches the generator clock, transfers progress
// with the same per-step byte budget, sweeps fire at the same steps, and
// same-step events apply in the fixed-dt phase order (movement, downs by
// pair key, ups by pair key, traffic, transfer progress, sweep). RNG
// streams are per node/entry, so drawing waypoint blocks at exact arrival
// times instead of inside the covering step consumes identical values.
// The one intentional divergence: positions come from the closed form
// origin + vel * (t - t0) instead of the fixed-dt path's per-step
// incremental accumulation, which differs by ~1 ulp per step. Metrics are
// therefore bit-identical unless a pair grazes the range threshold at a
// grid time within that noise (sim_event_kernel_test pins bit-identity
// across 12 protocols x 2 seeds; bench_world_step cross-checks the sparse
// workload).
//
// Candidate discovery: cell size == radio range, so two nodes in contact
// are always in Chebyshev-adjacent cells. Per-node integer cell
// coordinates are maintained by the cell-crossing events themselves (no
// per-step floor), and each segment change or cell entry (re)predicts the
// node against the 3x3 neighborhood — the later-moving node of any pair
// always sees the other, so every make has a scheduled event. Predictions
// are windowed to [now, min(segment ends)]; a stale event (its segments
// changed since prediction) simply fails validation on pop and is dropped,
// because whatever changed the segments already re-predicted.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/vec2.hpp"

namespace dtn::sim {

class World;

class EventKernel {
 public:
  explicit EventKernel(World& world);
  /// Advances the world across grid steps (from_step, to_step]. The world
  /// must be between runs (its movement lanes positioned at from_step).
  void run(std::int64_t from_step, std::int64_t to_step);

 private:
  /// Tie-break order within one timestamp == the fixed-dt phase order of
  /// one step (movement internals first, then downs, ups, traffic,
  /// transfer progress, sweep).
  enum Kind : std::uint32_t {
    kSegment = 0,       // a = node
    kCellCross = 1,     // a = node, b = axis<<1 | (dir > 0)
    kLinkDown = 2,      // a,b = pair (a < b)
    kLinkUp = 3,        // a,b = pair (a < b)
    kTraffic = 4,
    kTransferTick = 5,
    kTtlSweep = 6,
  };
  struct Ev {
    double time;
    std::uint32_t kind;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::uint32_t serial = 0;  ///< movement staleness guard (segment #)
  };

  static bool ev_after(const Ev& x, const Ev& y) noexcept;
  void push(const Ev& ev);
  Ev pop();

  [[nodiscard]] double step_time(std::int64_t k) const noexcept;
  /// Smallest k with k * step_dt >= t (ulp-safe).
  [[nodiscard]] std::int64_t step_at_or_after(double t) const;

  static std::uint64_t cell_key(std::int64_t cx, std::int64_t cy) noexcept;
  void move_cell(std::int32_t node, std::int64_t ncx, std::int64_t ncy);

  [[nodiscard]] double pair_dist2(std::int32_t a, std::int32_t b,
                                  double t) const;
  /// Schedules the pair's next contact transition at or after grid step
  /// min_step: a make (first step with dist <= range) when the pair is not
  /// in contact, a break (first step with dist > range) when it is.
  void predict_pair(std::int32_t a, std::int32_t b, std::int64_t min_step);
  /// predict_pair against every node in the 3x3 cell neighborhood.
  void predict_neighborhood(std::int32_t node, std::int64_t min_step,
                            bool only_greater);
  /// Full re-prediction after node's segment changed: neighborhood makes
  /// plus breaks for current contacts outside the neighborhood.
  void repredict_node(std::int32_t node, std::int64_t min_step);

  void schedule_segment_end(std::int32_t node);
  void schedule_cell_crossing(std::int32_t node);
  void schedule_traffic(std::int64_t min_step);
  void schedule_sweep(std::int64_t min_step);
  void ensure_tick(std::int64_t step);

  void on_segment(const Ev& ev);
  void on_cell_cross(const Ev& ev);
  void on_link_down(const Ev& ev);
  void on_link_up(const Ev& ev);
  void on_traffic(const Ev& ev);
  void on_transfer_tick(const Ev& ev);
  void on_ttl_sweep(const Ev& ev);

  World& w_;
  double dt_;
  double cell_;  ///< cell edge == radio range
  double r2_;
  double inv_cell_;
  std::int64_t from_ = 0;
  std::int64_t to_ = 0;
  double end_time_ = 0.0;

  std::vector<Ev> heap_;
  std::vector<std::uint32_t> serial_;   // per-node segment serial
  std::vector<std::int64_t> cx_, cy_;   // per-node believed cell coords
  std::unordered_map<std::uint64_t, std::vector<std::int32_t>> cells_;
  std::int64_t tick_pushed_for_ = -1;   // dedup: one tick event per step
};

}  // namespace dtn::sim
