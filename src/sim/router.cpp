#include "sim/router.hpp"

#include "sim/world.hpp"

namespace dtn::sim {

void Router::attach(World* world, NodeIdx self) {
  world_ = world;
  self_ = self;
}

MsgId Router::choose_drop_victim(const Buffer& buffer) const {
  return buffer.oldest();
}

double Router::now() const { return world_->now(); }

Buffer& Router::buffer() { return world_->buffer_of(self_); }

const Buffer& Router::buffer() const { return world_->buffer_of(self_); }

bool Router::send_copy(NodeIdx peer, MsgId id, int r_recv, int r_deduct) {
  return world_->enqueue_transfer(self_, peer, id, r_recv, r_deduct);
}

bool Router::peer_has(NodeIdx peer, MsgId id) const {
  return world_->peer_has(peer, id);
}

const std::vector<NodeIdx>& Router::contacts() const {
  return world_->neighbors_of(self_);
}

void Router::charge_control_bytes(std::int64_t bytes) {
  world_->metrics().add_control_bytes(bytes);
}

util::Pcg32& Router::rng() { return world_->routing_rng(self_); }

}  // namespace dtn::sim
