// Flat open-addressing hash table keyed by non-negative message ids —
// the shared core under Buffer's id->slot index and the World's
// inbound-queued id->count bags. Linear probing into power-of-two
// parallel arrays (probes touch only the key lane), load factor <= 3/4,
// erasure by backward-shift deletion (no tombstones), allocation only on
// growth — so a table churning at a fixed high-water size is
// allocation-free. Values must be trivially copyable; key -1 is reserved
// as the empty-cell sentinel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/message.hpp"
#include "util/rng.hpp"

namespace dtn::sim {

template <typename Value>
class FlatIdTable {
 public:
  /// Entries currently stored.
  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  [[nodiscard]] bool empty() const noexcept { return used_ == 0; }

  /// Removes every entry, retaining the allocated table (the World's
  /// cross-seed reuse path clears per-node bags without freeing them).
  void clear() noexcept {
    if (used_ == 0) return;
    std::fill(ids_.begin(), ids_.end(), kEmpty);
    used_ = 0;
  }

  /// nullptr when absent. Valid until the next insert/erase.
  [[nodiscard]] Value* find(MsgId id) noexcept {
    if (used_ == 0) return nullptr;
    const std::size_t i = slot_for(id);
    return ids_[i] == id ? &values_[i] : nullptr;
  }
  [[nodiscard]] const Value* find(MsgId id) const noexcept {
    return const_cast<FlatIdTable*>(this)->find(id);
  }

  /// The value for `id`, default-initializing a new entry from `init` when
  /// absent. `id` must be non-negative.
  Value& find_or_insert(MsgId id, Value init) {
    // Keep load factor <= 3/4 so probe chains stay short and slot_for
    // always terminates on an empty cell.
    if ((used_ + 1) * 4 > ids_.size() * 3) grow();
    const std::size_t i = slot_for(id);
    if (ids_[i] != id) {
      ids_[i] = id;
      values_[i] = init;
      ++used_;
    }
    return values_[i];
  }

  /// Removes the entry; returns false when absent.
  bool erase(MsgId id) noexcept {
    if (used_ == 0) return false;
    std::size_t i = slot_for(id);
    if (ids_[i] != id) return false;
    // Backward-shift deletion: pull every displaced cluster member whose
    // home position precedes the hole back over it, leaving no tombstone.
    std::size_t hole = i;
    std::size_t j = i;
    const std::size_t mask = ids_.size() - 1;
    while (true) {
      j = (j + 1) & mask;
      if (ids_[j] == kEmpty) break;
      const std::size_t home = hash(ids_[j]) & mask;
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        ids_[hole] = ids_[j];
        values_[hole] = values_[j];
        hole = j;
      }
    }
    ids_[hole] = kEmpty;
    --used_;
    return true;
  }

 private:
  static constexpr MsgId kEmpty = -1;

  /// SplitMix64 finalizer: ids are sequential, so the low bits must be
  /// well-mixed before masking into a power-of-two table.
  [[nodiscard]] static std::uint64_t hash(MsgId id) noexcept {
    return util::SplitMix64(static_cast<std::uint64_t>(id)).next();
  }

  /// First slot holding `id`, or the empty slot where it would go.
  [[nodiscard]] std::size_t slot_for(MsgId id) const noexcept {
    const std::size_t mask = ids_.size() - 1;
    std::size_t i = hash(id) & mask;
    while (ids_[i] != kEmpty && ids_[i] != id) i = (i + 1) & mask;
    return i;
  }

  void grow() {
    const std::size_t new_size = ids_.empty() ? 16 : ids_.size() * 2;
    std::vector<MsgId> old_ids = std::move(ids_);
    std::vector<Value> old_values = std::move(values_);
    ids_.assign(new_size, kEmpty);
    values_.assign(new_size, Value{});
    const std::size_t mask = new_size - 1;
    for (std::size_t i = 0; i < old_ids.size(); ++i) {
      if (old_ids[i] == kEmpty) continue;
      std::size_t j = hash(old_ids[i]) & mask;
      while (ids_[j] != kEmpty) j = (j + 1) & mask;
      ids_[j] = old_ids[i];
      values_[j] = old_values[i];
    }
  }

  std::vector<MsgId> ids_;     // kEmpty marks a vacant cell
  std::vector<Value> values_;  // parallel value lane
  std::size_t used_ = 0;
};

}  // namespace dtn::sim
