// Network-wide message generator: one new message every interval drawn
// uniformly from [interval_min, interval_max], with uniformly random
// distinct (src, dst). Matches the ONE simulator's default MessageEventGenerator.
#pragma once

#include <cstdint>

#include "sim/message.hpp"
#include "util/rng.hpp"

namespace dtn::sim {

struct TrafficParams {
  double interval_min = 25.0;  ///< s between message creations
  double interval_max = 35.0;
  double start = 0.0;          ///< first message no earlier than this
  /// Last creation time. The harness sets this to duration - TTL so every
  /// message has a full TTL window inside the run (see DESIGN.md).
  double stop = 1e18;
  std::int64_t size_bytes = 25 * 1024;  ///< paper: 25 KB packets
  double ttl = 1200.0;                  ///< paper: 20 minutes
};

class TrafficGenerator {
 public:
  TrafficGenerator(TrafficParams params, util::Pcg32 rng, NodeIdx node_count);

  /// Restarts the schedule in place — identical to constructing a fresh
  /// generator with the same arguments, but without an allocation (the
  /// World's cross-seed reuse path).
  void reset(TrafficParams params, util::Pcg32 rng, NodeIdx node_count);

  /// Time of the next creation event, or +inf when exhausted.
  [[nodiscard]] double next_time() const noexcept { return next_time_; }

  /// Pops the next message (advancing the schedule). Caller guarantees
  /// now >= next_time().
  Message pop(MsgId id);

 private:
  TrafficParams params_;
  util::Pcg32 rng_;
  NodeIdx node_count_;
  double next_time_;
};

}  // namespace dtn::sim
