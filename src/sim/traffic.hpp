// Spec-driven workload generator. The degenerate configuration (empty
// matrix, uniform profile) is the ONE simulator's default
// MessageEventGenerator: one new message every interval drawn uniformly
// from [interval_min, interval_max], with uniformly random distinct
// (src, dst) over the whole network — bit-identical to the pre-matrix
// generator for every existing scenario.
//
// Beyond that, three orthogonal extensions:
//   - per-entry traffic matrices (TrafficParams::matrix): each entry
//     restricts src/dst draws to resolved node ranges with its own
//     interval/size/weight, and owns an independent RNG stream derived
//     from (seed, entry index) — adding an entry never perturbs another
//     entry's schedule;
//   - temporal profiles (TrafficParams::profile): on-off gating (events
//     falling in an off window are deferred to the next window start) and
//     diurnal thinning (candidates accepted with a raised-cosine
//     intensity), both per-entry and drawn from the entry's own stream;
//   - a trace-driven source (kTrace + TrafficParams::trace): replays an
//     explicit message list, honoring the same start/stop window.
//
// Boundary contract: `stop` is INCLUSIVE — a message created exactly at
// `stop` is still generated; only a schedule strictly past `stop` is
// exhausted. Every entry and the trace source inherit this one rule.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/message.hpp"
#include "util/rng.hpp"

namespace dtn::sim {

/// Temporal shape of every schedule (applied per matrix entry).
enum class TrafficProfile : std::uint8_t {
  kUniform = 0,  ///< constant-rate (the ONE default)
  kOnOff,        ///< bursty: on_s seconds active, off_s silent, repeating
  kDiurnal,      ///< time-of-day: raised-cosine intensity over period_s
  kTrace,        ///< replay TrafficParams::trace verbatim
};

/// One resolved src-range -> dst-range flow. Ranges are node-index
/// intervals (the harness resolves group names to [first, first+count)).
/// A message draws src uniformly from the src range and dst uniformly
/// from the dst range minus src (src == dst never happens). An entry with
/// an empty range — or whose only possible src equals its only possible
/// dst — generates nothing.
struct TrafficMatrixEntry {
  NodeIdx src_first = 0;
  NodeIdx src_count = 0;
  NodeIdx dst_first = 0;
  NodeIdx dst_count = 0;
  double interval_min = 25.0;  ///< s between this entry's creations
  double interval_max = 35.0;
  std::int64_t size_bytes = 25 * 1024;
  /// Rate multiplier: drawn intervals are divided by weight, so weight 3
  /// triples the entry's message rate (weight 1 is bit-neutral).
  double weight = 1.0;
};

/// One line of a trace-driven workload (kTrace). size_bytes/ttl <= 0 fall
/// back to the TrafficParams defaults.
struct TraceMessage {
  double time = 0.0;
  NodeIdx src = 0;
  NodeIdx dst = 0;
  std::int64_t size_bytes = 0;
  double ttl = 0.0;
};

struct TrafficParams {
  double interval_min = 25.0;  ///< s between message creations
  double interval_max = 35.0;
  double start = 0.0;          ///< first message no earlier than this
  /// Last creation time, INCLUSIVE: a message created exactly at `stop`
  /// is still generated (see header comment). The harness caps this at
  /// duration - TTL under scenario.full_ttl_window so every message has a
  /// full TTL window inside the run (see DESIGN.md).
  double stop = 1e18;
  std::int64_t size_bytes = 25 * 1024;  ///< paper: 25 KB packets
  double ttl = 1200.0;                  ///< paper: 20 minutes
  TrafficProfile profile = TrafficProfile::kUniform;
  double on_s = 0.0;        ///< kOnOff: active-window length
  double off_s = 0.0;       ///< kOnOff: silent-window length
  double period_s = 86400.0;  ///< kDiurnal: intensity period (default 1 day)
  double phase_s = 0.0;     ///< kOnOff/kDiurnal: window/intensity offset
  /// Flow matrix; empty = one implicit network-wide entry built from the
  /// scalar interval/size fields above (the degenerate, ONE-default case).
  std::vector<TrafficMatrixEntry> matrix;
  /// kTrace: the replayed message list, sorted by time. Shared so World
  /// reuse/reseed copies a pointer, not the trace.
  std::shared_ptr<const std::vector<TraceMessage>> trace;
};

class TrafficGenerator {
 public:
  /// Entry i draws from util::derive_stream(seed, i, kTraffic); the
  /// implicit degenerate entry is entry 0, which keeps pre-matrix
  /// scenarios on the exact stream they always used.
  TrafficGenerator(const TrafficParams& params, std::uint64_t seed,
                   NodeIdx node_count);

  /// Restarts the schedule in place — identical to constructing a fresh
  /// generator with the same arguments, but without an allocation once
  /// capacity matches (the World's cross-seed reuse path).
  void reset(const TrafficParams& params, std::uint64_t seed, NodeIdx node_count);

  /// Time of the next creation event, or +inf when exhausted.
  [[nodiscard]] double next_time() const noexcept { return next_time_; }

  /// Pops the next message (advancing the schedule). Caller guarantees
  /// now >= next_time().
  Message pop(MsgId id);

 private:
  /// Per-entry schedule state: its own RNG stream and pending event time.
  struct Schedule {
    util::Pcg32 rng;
    double next_time = 0.0;
  };

  [[nodiscard]] const TrafficMatrixEntry& entry(std::size_t idx) const noexcept;
  /// Draws the entry's next event strictly after `from` (profile applied);
  /// +inf once past stop.
  double advance(std::size_t idx, double from);
  /// kOnOff: defers an event in an off window to the next window start.
  [[nodiscard]] double shift_to_on_window(double t) const noexcept;
  void sift_down(std::size_t pos) noexcept;
  [[nodiscard]] bool heap_before(std::uint32_t a, std::uint32_t b) const noexcept;

  TrafficParams params_;
  NodeIdx node_count_ = 0;
  /// The implicit network-wide entry used when params_.matrix is empty.
  TrafficMatrixEntry implicit_;
  std::vector<Schedule> schedules_;   ///< one per matrix entry
  std::vector<std::uint32_t> heap_;   ///< index min-heap by (next_time, idx)
  std::size_t trace_cursor_ = 0;      ///< kTrace replay position
  double next_time_ = 0.0;
};

}  // namespace dtn::sim
