#include "sim/metrics.hpp"

namespace dtn::sim {

void Metrics::reset() {
  created_ = relayed_ = started_ = aborted_ = dropped_ = expired_ = 0;
  control_bytes_ = 0;
  // Bucket-retaining clear is safe here (unlike ContactHistory::clear):
  // delivery_time_ is only probed and counted, never iterated, so its
  // bucket count cannot influence any observable order.
  delivery_time_.clear();
  latency_.reset();
  hops_.reset();
}

void Metrics::on_created(const Message& /*m*/) { ++created_; }

void Metrics::on_relayed() { ++relayed_; }

void Metrics::on_transfer_started() { ++started_; }

void Metrics::on_transfer_aborted() { ++aborted_; }

void Metrics::on_delivered(const Message& m, double t, int hop_count) {
  // Only the first replica's arrival counts. try_emplace (not emplace):
  // emplace allocates a node even when the key already exists, and
  // duplicate deliveries dominate in replication-heavy protocols.
  const auto [it, inserted] = delivery_time_.try_emplace(m.id, t);
  if (!inserted) return;
  latency_.add(t - m.created);
  hops_.add(static_cast<double>(hop_count));
}

void Metrics::on_dropped() { ++dropped_; }

void Metrics::on_expired() { ++expired_; }

double Metrics::delivery_ratio() const noexcept {
  if (created_ == 0) return 0.0;
  return static_cast<double>(delivered()) / static_cast<double>(created_);
}

double Metrics::goodput() const noexcept {
  if (relayed_ == 0) return 0.0;
  return static_cast<double>(delivered()) / static_cast<double>(relayed_);
}

}  // namespace dtn::sim
