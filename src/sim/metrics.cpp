#include "sim/metrics.hpp"

#include <algorithm>

namespace dtn::sim {

void Metrics::reset() {
  created_ = relayed_ = started_ = aborted_ = dropped_ = expired_ = 0;
  control_bytes_ = 0;
  // Bucket-retaining clear is safe here (unlike ContactHistory::clear):
  // delivery_time_ is only probed and counted, never iterated, so its
  // bucket count cannot influence any observable order.
  delivery_time_.clear();
  latency_.reset();
  hops_.reset();
  // Group buckets: zero the counters but keep the installed node -> group
  // map — World::reseed() restarts the same node set, so the mapping stays
  // valid across it. Structure-changing rebuilds uninstall it explicitly
  // (clear_groups, from World::reset).
  std::fill(group_created_.begin(), group_created_.end(), std::int64_t{0});
  std::fill(group_delivered_.begin(), group_delivered_.end(), std::int64_t{0});
}

void Metrics::clear_groups() {
  node_group_.clear();
  group_created_.clear();
  group_delivered_.clear();
}

void Metrics::set_groups(std::vector<int> node_group, int group_count) {
  node_group_ = std::move(node_group);
  group_created_.assign(static_cast<std::size_t>(group_count > 0 ? group_count : 0), 0);
  group_delivered_.assign(group_created_.size(), 0);
}

int Metrics::group_of_source(const Message& m) const noexcept {
  if (m.src < 0 || static_cast<std::size_t>(m.src) >= node_group_.size()) return -1;
  const int g = node_group_[static_cast<std::size_t>(m.src)];
  if (g < 0 || static_cast<std::size_t>(g) >= group_created_.size()) return -1;
  return g;
}

void Metrics::on_created(const Message& m) {
  ++created_;
  const int g = group_of_source(m);
  if (g >= 0) ++group_created_[static_cast<std::size_t>(g)];
}

void Metrics::on_relayed() { ++relayed_; }

void Metrics::on_transfer_started() { ++started_; }

void Metrics::on_transfer_aborted() { ++aborted_; }

void Metrics::on_delivered(const Message& m, double t, int hop_count) {
  // Only the first replica's arrival counts. try_emplace (not emplace):
  // emplace allocates a node even when the key already exists, and
  // duplicate deliveries dominate in replication-heavy protocols.
  const auto [it, inserted] = delivery_time_.try_emplace(m.id, t);
  if (!inserted) return;
  latency_.add(t - m.created);
  hops_.add(static_cast<double>(hop_count));
  const int g = group_of_source(m);
  if (g >= 0) ++group_delivered_[static_cast<std::size_t>(g)];
}

void Metrics::on_dropped() { ++dropped_; }

void Metrics::on_expired() { ++expired_; }

double Metrics::delivery_ratio() const noexcept {
  if (created_ == 0) return 0.0;
  return static_cast<double>(delivered()) / static_cast<double>(created_);
}

double Metrics::goodput() const noexcept {
  if (relayed_ == 0) return 0.0;
  return static_cast<double>(delivered()) / static_cast<double>(relayed_);
}

}  // namespace dtn::sim
