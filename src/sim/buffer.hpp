// Per-node message store with a byte-capacity limit (paper: 1 MB per node,
// 25 KB packets).
//
// Storage is a recycled slab: every StoredMessage lives in a slot of one
// contiguous vector, threaded by intrusive prev/next links that preserve
// insertion (reception) order, with a flat open-addressing id->slot index
// (FlatIdTable, sim/flat_id_table.hpp) on top. Consequences:
//   - insert / erase / find / oldest are O(1) with no per-entry heap node;
//   - iteration walks the slab in insertion order through contiguous
//     memory instead of pointer-chasing a std::list — this is the hot loop
//     of every epidemic-style router, which scans the buffer per contact;
//   - erased slots go on a free list and are recycled, so a capacity-bound
//     buffer stops heap-allocating once it has reached its high-water
//     message count (steady-state churn is allocation-free);
//   - a Handle names a slot and stays valid until *that* message is
//     erased; inserting or erasing other messages never invalidates it.
//     Raw StoredMessage pointers/references also survive unrelated erases
//     but are invalidated when an insert grows the slab — re-find() after
//     inserting, or hold a Handle.
//
// Insertion order is preserved so the default drop policy ("oldest
// received first", the ONE simulator's default) is O(1) via oldest();
// protocols with custom policies (MaxProp) pick victims through the
// Router::choose_drop_victim hook instead.
//
// `legacy_store` mode keeps the seed's std::list + std::unordered_map
// implementation alive in the same binary (same observable behavior, seed
// cost profile) so bench_world_step can A/B the slab against its
// predecessor; tests assert both modes are bit-identical. The handle API
// is slab-only; iteration, lookups, and mutation work in both modes.
#pragma once

#include <cassert>
#include <cstdint>
#include <list>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "sim/flat_id_table.hpp"
#include "sim/message.hpp"

namespace dtn::sim {

class Buffer {
 public:
  /// Stable name of a stored copy: an index into the slot slab. Valid from
  /// the insert that created it until the erase that removes it.
  using Handle = std::int32_t;
  static constexpr Handle kNoHandle = -1;
  static constexpr MsgId kInvalidMsg = -1;

  explicit Buffer(std::int64_t capacity_bytes, bool legacy_store = false);

  /// Empties the store and applies a (possibly new) capacity/mode, while
  /// RETAINING the slab and index storage: every existing slot goes back on
  /// the free list, so a buffer reused across simulation runs re-reaches
  /// its high-water message count without a single heap allocation. All
  /// handles and iterators are invalidated. Observable behavior afterwards
  /// is identical to a freshly constructed Buffer.
  void reset(std::int64_t capacity_bytes, bool legacy_store = false);

  [[nodiscard]] std::int64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::int64_t used() const noexcept { return used_; }
  [[nodiscard]] std::int64_t free_bytes() const noexcept { return capacity_ - used_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] bool contains(MsgId id) const noexcept;
  /// Compat alias for contains().
  [[nodiscard]] bool has(MsgId id) const noexcept { return contains(id); }

  /// nullptr when absent. The pointer survives erases of other messages
  /// but not an insert that grows the slab (see header comment).
  [[nodiscard]] StoredMessage* find(MsgId id);
  [[nodiscard]] const StoredMessage* find(MsgId id) const;

  /// True iff the message fits the total capacity at all.
  [[nodiscard]] bool admissible(const Message& m) const noexcept {
    return m.size_bytes <= capacity_;
  }
  /// True iff it fits right now without eviction.
  [[nodiscard]] bool fits(const Message& m) const noexcept {
    return m.size_bytes <= free_bytes();
  }

  /// Inserts a copy. Precondition: !contains(id) and fits(). Callers evict
  /// first (World::make_room).
  void insert(StoredMessage sm);

  /// Removes a copy; returns true if it was present.
  bool erase(MsgId id);

  /// Received oldest / newest (ends of insertion order); kInvalidMsg if empty.
  [[nodiscard]] MsgId oldest() const noexcept;
  [[nodiscard]] MsgId newest() const noexcept;

  // ---- handle API (slab mode only) ----
  /// Handle of a stored copy; kNoHandle when absent.
  [[nodiscard]] Handle handle_of(MsgId id) const noexcept;
  /// Handle of the oldest copy; kNoHandle when empty.
  [[nodiscard]] Handle front_handle() const noexcept;
  /// Next handle in insertion order; kNoHandle after the newest.
  [[nodiscard]] Handle next_handle(Handle h) const noexcept;
  [[nodiscard]] const StoredMessage& get(Handle h) const noexcept;
  [[nodiscard]] StoredMessage& get(Handle h) noexcept;

  // ---- iteration (insertion order, oldest first) ----
  template <bool Const>
  class BasicIterator {
    using BufPtr = std::conditional_t<Const, const Buffer*, Buffer*>;
    using ListIter = std::conditional_t<Const, std::list<StoredMessage>::const_iterator,
                                        std::list<StoredMessage>::iterator>;

   public:
    using value_type = StoredMessage;
    using reference = std::conditional_t<Const, const StoredMessage&, StoredMessage&>;
    using pointer = std::conditional_t<Const, const StoredMessage*, StoredMessage*>;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    BasicIterator() = default;

    reference operator*() const noexcept {
      return h_ != kNoHandle ? buf_->slots_[static_cast<std::size_t>(h_)].sm
                             : *list_it_;
    }
    pointer operator->() const noexcept { return &**this; }

    BasicIterator& operator++() noexcept {
      if (h_ != kNoHandle) {
        h_ = buf_->slots_[static_cast<std::size_t>(h_)].next;
      } else {
        ++list_it_;
      }
      return *this;
    }
    BasicIterator operator++(int) noexcept {
      BasicIterator copy = *this;
      ++*this;
      return copy;
    }

    [[nodiscard]] bool operator==(const BasicIterator& o) const noexcept {
      return h_ == o.h_ && list_it_ == o.list_it_;
    }
    [[nodiscard]] bool operator!=(const BasicIterator& o) const noexcept {
      return !(*this == o);
    }

    /// The slot handle this iterator is at (slab mode; kNoHandle in legacy
    /// mode or at end()). Lets callers remember a position cheaply.
    [[nodiscard]] Handle handle() const noexcept { return h_; }

   private:
    friend class Buffer;
    BasicIterator(BufPtr buf, Handle h, ListIter it) : buf_(buf), h_(h), list_it_(it) {}

    BufPtr buf_ = nullptr;
    Handle h_ = kNoHandle;
    ListIter list_it_{};
  };

  using iterator = BasicIterator<false>;
  using const_iterator = BasicIterator<true>;

  [[nodiscard]] iterator begin() noexcept {
    return {this, legacy_ ? kNoHandle : head_, legacy_store_.begin()};
  }
  [[nodiscard]] iterator end() noexcept {
    return {this, kNoHandle, legacy_store_.end()};
  }
  [[nodiscard]] const_iterator begin() const noexcept {
    return {this, legacy_ ? kNoHandle : head_, legacy_store_.begin()};
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return {this, kNoHandle, legacy_store_.end()};
  }
  [[nodiscard]] const_iterator cbegin() const noexcept { return begin(); }
  [[nodiscard]] const_iterator cend() const noexcept { return end(); }

  /// Collects ids of all copies expired at time t into `out` (cleared
  /// first). Reusing one scratch vector across sweeps keeps the TTL sweep
  /// allocation-free in steady state.
  void expired_into(double t, std::vector<MsgId>& out) const;

  // ---- introspection for tests / diagnostics ----
  /// Slab high-water mark: slots ever created (live + recyclable).
  [[nodiscard]] std::size_t slot_capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] bool legacy_store() const noexcept { return legacy_; }

 private:
  struct Slot {
    StoredMessage sm;
    Handle prev = kNoHandle;
    Handle next = kNoHandle;  ///< doubles as the free-list link when vacant
  };

  [[nodiscard]] Handle index_find(MsgId id) const noexcept {
    const Handle* h = index_.find(id);
    return h == nullptr ? kNoHandle : *h;
  }

  std::int64_t capacity_;
  std::int64_t used_ = 0;
  std::size_t count_ = 0;

  // ---- slab storage (production path) ----
  std::vector<Slot> slots_;
  Handle head_ = kNoHandle;       ///< oldest (front of insertion order)
  Handle tail_ = kNoHandle;       ///< newest
  Handle free_head_ = kNoHandle;  ///< free-list of vacant slots
  FlatIdTable<Handle> index_;     ///< id -> slot

  // ---- seed store (legacy_store mode: std::list + unordered_map) ----
  bool legacy_ = false;
  std::list<StoredMessage> legacy_store_;
  std::unordered_map<MsgId, std::list<StoredMessage>::iterator> legacy_index_;
};

}  // namespace dtn::sim
