// Per-node message store with a byte-capacity limit (paper: 1 MB per node,
// 25 KB packets). Insertion order is preserved so the default drop policy
// ("oldest received first", ONE's default) is O(1); protocols with custom
// policies (MaxProp) pick victims through the Router::choose_drop_victim
// hook instead.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "sim/message.hpp"

namespace dtn::sim {

class Buffer {
 public:
  explicit Buffer(std::int64_t capacity_bytes);

  [[nodiscard]] std::int64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::int64_t used() const noexcept { return used_; }
  [[nodiscard]] std::int64_t free_bytes() const noexcept { return capacity_ - used_; }
  [[nodiscard]] std::size_t count() const noexcept { return index_.size(); }
  [[nodiscard]] bool empty() const noexcept { return index_.empty(); }

  [[nodiscard]] bool has(MsgId id) const { return index_.count(id) > 0; }
  /// nullptr when absent. The pointer stays valid until the copy is erased.
  [[nodiscard]] StoredMessage* find(MsgId id);
  [[nodiscard]] const StoredMessage* find(MsgId id) const;

  /// True iff the message fits the total capacity at all.
  [[nodiscard]] bool admissible(const Message& m) const noexcept {
    return m.size_bytes <= capacity_;
  }
  /// True iff it fits right now without eviction.
  [[nodiscard]] bool fits(const Message& m) const noexcept {
    return m.size_bytes <= free_bytes();
  }

  /// Inserts a copy. Precondition: !has(id) and fits(). Callers evict first.
  void insert(StoredMessage sm);

  /// Removes a copy; returns true if it was present.
  bool erase(MsgId id);

  /// Copy received oldest (front of insertion order); kInvalidMsg if empty.
  [[nodiscard]] MsgId oldest() const;

  /// Stable iteration in insertion order (oldest first).
  [[nodiscard]] const std::list<StoredMessage>& messages() const noexcept {
    return store_;
  }
  /// Mutable access for routers that update replica counts in place.
  [[nodiscard]] std::list<StoredMessage>& messages() noexcept { return store_; }

  /// Ids of all copies whose message has expired at time t.
  [[nodiscard]] std::vector<MsgId> expired_ids(double t) const;

  static constexpr MsgId kInvalidMsg = -1;

 private:
  std::int64_t capacity_;
  std::int64_t used_ = 0;
  std::list<StoredMessage> store_;  // insertion order == reception order
  std::unordered_map<MsgId, std::list<StoredMessage>::iterator> index_;
};

}  // namespace dtn::sim
