// Router interface — the extension point every protocol implements
// (modeled on the ONE simulator's MessageRouter). The World invokes the
// on_* callbacks; routers react by enqueuing transfers through send_copy().
//
// Transfer semantics: send_copy(peer, id, r_recv, r_deduct) queues a
// bandwidth-limited transfer on the (self, peer) connection. On completion
// the receiver gains a copy holding `r_recv` replicas (merged into an
// existing copy if present) and the sender's copy loses `r_deduct` replicas
// (erased at <= 0). This one primitive expresses every protocol's action:
//   replicate (epidemic/MaxProp/PRoPHET):   r_recv=1, r_deduct=0
//   spray half (Spray-and-Wait binary):     r_recv=floor(M/2), r_deduct=same
//   proportional split (EBR/EER/CR):        r_recv=r, r_deduct=r
//   forward single copy (focus/EER single): r_recv=1, r_deduct=1
//   hand over everything (CR to dest comm): r_recv=M, r_deduct=M
#pragma once

#include <string>
#include <vector>

#include "sim/buffer.hpp"
#include "sim/message.hpp"
#include "util/rng.hpp"

namespace dtn::sim {

class World;

class Router {
 public:
  virtual ~Router() = default;

  /// Called once by the World when the node is added.
  void attach(World* world, NodeIdx self);

  /// Restores the router to its just-constructed (and attached) state —
  /// World::reseed() reuses router instances across simulation runs.
  /// Stateless protocols inherit this no-op; stateful ones must clear ALL
  /// learned state (retaining container capacity where possible) so a
  /// reseeded run is bit-identical to a freshly built one (enforced per
  /// protocol by integration_sweep_test's world-reuse differential).
  virtual void reset() {}

  [[nodiscard]] virtual std::string name() const = 0;

  /// Replica quota attached to messages originating at this node (λ for
  /// quota-based protocols; 1 for pure replication / forwarding schemes).
  [[nodiscard]] virtual int initial_replicas() const { return 1; }

  /// A bidirectional contact with `peer` has come up. Both endpoints get
  /// the callback (lower node id first, deterministically).
  virtual void on_contact_up(NodeIdx /*peer*/) {}
  virtual void on_contact_down(NodeIdx /*peer*/) {}

  /// A message originated here and is already stored in the local buffer.
  virtual void on_message_created(const Message& /*m*/) {}

  /// A relayed copy arrived and was stored locally (not the destination).
  virtual void on_message_received(const StoredMessage& /*sm*/, NodeIdx /*from*/) {}

  /// A transfer this node initiated completed. `delivered` is true when
  /// `to` was the destination and the message was still within TTL.
  virtual void on_transfer_success(const Message& /*m*/, NodeIdx /*to*/,
                                   int /*replicas_sent*/, bool /*delivered*/) {}

  /// Either endpoint of a delivery learns about it (enables ack schemes).
  virtual void on_delivered(const Message& /*m*/) {}

  /// Buffer overflow: pick the id of the stored copy to evict. Never called
  /// with an empty buffer. Default: oldest received (ONE's default policy).
  [[nodiscard]] virtual MsgId choose_drop_victim(const Buffer& buffer) const;

  /// Periodic housekeeping (EV window rollover etc.), every control tick.
  virtual void on_tick(double /*now*/) {}

 protected:
  [[nodiscard]] World& world() noexcept { return *world_; }
  [[nodiscard]] const World& world() const noexcept { return *world_; }
  [[nodiscard]] NodeIdx self() const noexcept { return self_; }

  // ---- conveniences forwarded to the World (defined in router.cpp to
  // avoid a circular include) ----
  [[nodiscard]] double now() const;
  [[nodiscard]] Buffer& buffer();
  [[nodiscard]] const Buffer& buffer() const;
  /// Queues a transfer; returns false if it was refused (already queued,
  /// message missing/expired, peer not in contact).
  bool send_copy(NodeIdx peer, MsgId id, int r_recv, int r_deduct);
  /// True if `peer` stores the message or is already scheduled to get it.
  [[nodiscard]] bool peer_has(NodeIdx peer, MsgId id) const;
  /// Peers currently in contact with this node, ascending. Zero-copy view
  /// of the World's adjacency index; valid for the whole callback (contact
  /// churn only happens between router callbacks) and not invalidated by
  /// send_copy() / peer_has(). With WorldConfig::legacy_contact_path (the
  /// bench baseline) the view is a shared scratch that the next contacts()
  /// call overwrites — do not nest calls in that mode.
  [[nodiscard]] const std::vector<NodeIdx>& contacts() const;
  /// Charges protocol control traffic (routing-table exchange) to metrics.
  void charge_control_bytes(std::int64_t bytes);
  [[nodiscard]] util::Pcg32& rng();

 private:
  World* world_ = nullptr;
  NodeIdx self_ = -1;
};

}  // namespace dtn::sim
