#include "sim/world.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/log.hpp"

namespace dtn::sim {

World::World(WorldConfig config)
    : config_(config), next_sweep_(config.ttl_sweep_interval), grid_(config.radio_range) {}

World::~World() = default;

NodeIdx World::add_node(mobility::MovementModelPtr movement,
                        std::unique_ptr<Router> router) {
  assert(!started_ && "nodes must be added before run()");
  const auto idx = static_cast<NodeIdx>(nodes_.size());
  auto rng = util::derive_stream(config_.seed, static_cast<std::uint64_t>(idx),
                                 util::StreamPurpose::kRouting);
  nodes_.emplace_back(std::move(movement), std::move(router), config_.buffer_bytes, rng);
  inbound_queued_.emplace_back();
  Node& node = nodes_.back();
  node.router->attach(this, idx);
  auto move_rng = util::derive_stream(config_.seed, static_cast<std::uint64_t>(idx),
                                      util::StreamPurpose::kMovement);
  node.movement->init(move_rng, 0.0);
  node.pos = node.movement->position();
  return idx;
}

void World::set_traffic(const TrafficParams& params) {
  auto rng = util::derive_stream(config_.seed, 0, util::StreamPurpose::kTraffic);
  traffic_ = std::make_unique<TrafficGenerator>(params, rng,
                                                static_cast<NodeIdx>(nodes_.size()));
}

std::uint64_t World::pair_key(NodeIdx a, NodeIdx b) noexcept {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

Buffer& World::buffer_of(NodeIdx node) {
  return nodes_.at(static_cast<std::size_t>(node)).buffer;
}

const Buffer& World::buffer_of(NodeIdx node) const {
  return nodes_.at(static_cast<std::size_t>(node)).buffer;
}

Router& World::router_of(NodeIdx node) {
  return *nodes_.at(static_cast<std::size_t>(node)).router;
}

const Router& World::router_of(NodeIdx node) const {
  return *nodes_.at(static_cast<std::size_t>(node)).router;
}

geo::Vec2 World::position_of(NodeIdx node) const {
  return nodes_.at(static_cast<std::size_t>(node)).pos;
}

util::Pcg32& World::routing_rng(NodeIdx node) {
  return nodes_.at(static_cast<std::size_t>(node)).routing_rng;
}

bool World::in_contact(NodeIdx a, NodeIdx b) const {
  return connections_.count(pair_key(a, b)) > 0;
}

std::vector<NodeIdx> World::contacts_of(NodeIdx node) const {
  std::vector<NodeIdx> result;
  for (const auto& [key, conn] : connections_) {
    const auto lo = static_cast<NodeIdx>(key & 0xffffffffu);
    const auto hi = static_cast<NodeIdx>(key >> 32);
    if (lo == node) result.push_back(hi);
    else if (hi == node) result.push_back(lo);
  }
  std::sort(result.begin(), result.end());
  return result;
}

bool World::peer_has(NodeIdx peer, MsgId id) const {
  if (buffer_of(peer).has(id)) return true;
  // Also true when a transfer carrying the message toward `peer` is queued;
  // prevents two contacts from double-sending the same copy.
  const auto& inbound = inbound_queued_.at(static_cast<std::size_t>(peer));
  return inbound.count(id) > 0;
}

bool World::enqueue_transfer(NodeIdx from, NodeIdx to, MsgId id, int r_recv,
                             int r_deduct) {
  if (from == to || r_recv <= 0 || r_deduct < 0) return false;
  const auto it = connections_.find(pair_key(from, to));
  if (it == connections_.end()) return false;  // not in contact
  const StoredMessage* sm = buffer_of(from).find(id);
  if (sm == nullptr || sm->msg.expired_at(now_)) return false;
  if (r_deduct > sm->replicas) return false;
  // Refuse duplicates already queued on this connection toward `to`.
  for (const auto& tr : it->second.queue) {
    if (tr.msg.id == id && tr.to == to) return false;
  }
  Transfer tr;
  tr.from = from;
  tr.to = to;
  tr.msg = sm->msg;
  tr.r_recv = r_recv;
  tr.r_deduct = r_deduct;
  tr.bytes_left = static_cast<double>(sm->msg.size_bytes);
  it->second.queue.push_back(tr);
  inbound_queued_[static_cast<std::size_t>(to)].insert(id);
  return true;
}

void World::unindex_inbound(const Transfer& tr) {
  auto& inbound = inbound_queued_[static_cast<std::size_t>(tr.to)];
  const auto it = inbound.find(tr.msg.id);
  if (it != inbound.end()) inbound.erase(it);
}

void World::inject_message(const Message& m) {
  assert(m.src >= 0 && m.src < node_count());
  assert(m.dst >= 0 && m.dst < node_count());
  metrics_.on_created(m);
  Node& src = nodes_[static_cast<std::size_t>(m.src)];
  if (!src.buffer.admissible(m)) {
    metrics_.on_dropped();
    return;
  }
  if (!make_room(m.src, m)) {
    metrics_.on_dropped();
    return;
  }
  StoredMessage sm;
  sm.msg = m;
  sm.replicas = std::max(1, src.router->initial_replicas());
  sm.hop_count = 0;
  sm.received_at = now_;
  src.buffer.insert(sm);
  src.router->on_message_created(m);
}

bool World::make_room(NodeIdx node, const Message& msg) {
  Buffer& buf = buffer_of(node);
  if (!buf.admissible(msg)) return false;
  while (!buf.fits(msg)) {
    if (buf.empty()) return false;
    const MsgId victim = router_of(node).choose_drop_victim(buf);
    if (victim == Buffer::kInvalidMsg || !buf.erase(victim)) {
      // Defensive: a router returning a bogus victim must not loop forever.
      if (!buf.erase(buf.oldest())) return false;
    }
    metrics_.on_dropped();
  }
  return true;
}

void World::run(double duration) {
  started_ = true;
  const auto steps = static_cast<std::int64_t>(std::ceil(duration / config_.step_dt));
  for (std::int64_t i = 0; i < steps; ++i) step();
}

void World::step() {
  started_ = true;
  now_ += config_.step_dt;
  ++step_count_;
  move_nodes();
  detect_contacts();
  generate_traffic();
  progress_transfers();
  if (now_ >= next_sweep_) {
    sweep_expired();
    next_sweep_ += config_.ttl_sweep_interval;
    for (auto& node : nodes_) node.router->on_tick(now_);
  }
}

void World::move_nodes() {
  const double dt = config_.step_dt;
  for (auto& node : nodes_) {
    node.movement->step(now_ - dt, dt);
    node.pos = node.movement->position();
  }
}

void World::detect_contacts() {
  grid_.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    grid_.insert(static_cast<NodeIdx>(i), nodes_[i].pos);
  }
  auto pairs = grid_.all_pairs(config_.radio_range);
  std::sort(pairs.begin(), pairs.end());  // deterministic callback order

  std::unordered_set<std::uint64_t> current;
  current.reserve(pairs.size() * 2);
  for (const auto& [a, b] : pairs) current.insert(pair_key(a, b));

  // Link-down: connections whose endpoints moved out of range.
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (current.count(it->first) == 0) {
      abort_connection_queue(it->second);
      const auto lo = static_cast<NodeIdx>(it->first & 0xffffffffu);
      const auto hi = static_cast<NodeIdx>(it->first >> 32);
      it = connections_.erase(it);
      nodes_[static_cast<std::size_t>(lo)].router->on_contact_down(hi);
      nodes_[static_cast<std::size_t>(hi)].router->on_contact_down(lo);
    } else {
      ++it;
    }
  }

  // Link-up: new pairs, in sorted order for determinism.
  for (const auto& [a, b] : pairs) {
    const auto key = pair_key(a, b);
    if (connections_.count(key) > 0) continue;
    connections_.emplace(key, Connection{});
    ++contact_events_;
    nodes_[static_cast<std::size_t>(a)].router->on_contact_up(b);
    nodes_[static_cast<std::size_t>(b)].router->on_contact_up(a);
  }
}

void World::abort_connection_queue(Connection& conn) {
  for (auto& tr : conn.queue) {
    if (tr.started) metrics_.on_transfer_aborted();
    unindex_inbound(tr);
  }
  conn.queue.clear();
}

void World::progress_transfers() {
  const double bytes_per_step = config_.bitrate_bps / 8.0 * config_.step_dt;
  for (auto& [key, conn] : connections_) {
    double budget = bytes_per_step;  // half-duplex: shared per connection
    while (budget > 0.0 && !conn.queue.empty()) {
      Transfer& tr = conn.queue.front();
      if (!tr.started) {
        tr.started = true;
        metrics_.on_transfer_started();
      }
      const double sent = std::min(budget, tr.bytes_left);
      tr.bytes_left -= sent;
      budget -= sent;
      if (tr.bytes_left <= 1e-9) {
        Transfer done = tr;
        conn.queue.pop_front();
        unindex_inbound(done);
        complete_transfer(done);
      }
    }
  }
}

void World::complete_transfer(Transfer& tr) {
  metrics_.on_relayed();
  Node& sender = nodes_[static_cast<std::size_t>(tr.from)];
  Node& receiver = nodes_[static_cast<std::size_t>(tr.to)];

  // Sender side: deduct the handed-over replicas. The copy may have been
  // evicted or expired mid-transfer; the bytes were spent regardless.
  StoredMessage* src_copy = sender.buffer.find(tr.msg.id);
  int sender_hops = src_copy != nullptr ? src_copy->hop_count : 0;
  if (src_copy != nullptr && tr.r_deduct > 0) {
    src_copy->replicas -= tr.r_deduct;
    if (src_copy->replicas <= 0) sender.buffer.erase(tr.msg.id);
  }

  const bool is_destination = tr.to == tr.msg.dst;
  const bool within_ttl = !tr.msg.expired_at(now_);

  if (is_destination) {
    const bool delivered = within_ttl && !metrics_.is_delivered(tr.msg.id);
    if (within_ttl) {
      metrics_.on_delivered(tr.msg, now_, sender_hops + 1);
    }
    // The destination never re-stores or re-forwards; the sender drops its
    // copy entirely (it has proof of delivery).
    if (sender.buffer.has(tr.msg.id)) sender.buffer.erase(tr.msg.id);
    sender.router->on_transfer_success(tr.msg, tr.to, tr.r_recv, within_ttl);
    if (within_ttl) {
      sender.router->on_delivered(tr.msg);
      receiver.router->on_delivered(tr.msg);
    }
    (void)delivered;
    return;
  }

  if (tr.msg.expired_at(now_)) {
    // Arrived at a relay after expiry: receiver discards immediately.
    metrics_.on_expired();
    sender.router->on_transfer_success(tr.msg, tr.to, tr.r_recv, false);
    return;
  }

  if (StoredMessage* existing = receiver.buffer.find(tr.msg.id)) {
    // Concurrent copies merged: quota is conserved.
    existing->replicas += tr.r_recv;
    sender.router->on_transfer_success(tr.msg, tr.to, tr.r_recv, false);
    return;
  }

  if (!make_room(tr.to, tr.msg)) {
    metrics_.on_dropped();
    sender.router->on_transfer_success(tr.msg, tr.to, tr.r_recv, false);
    return;
  }
  StoredMessage sm;
  sm.msg = tr.msg;
  sm.replicas = tr.r_recv;
  sm.hop_count = sender_hops + 1;
  sm.received_at = now_;
  receiver.buffer.insert(sm);
  sender.router->on_transfer_success(tr.msg, tr.to, tr.r_recv, false);
  receiver.router->on_message_received(*receiver.buffer.find(tr.msg.id), tr.from);
}

void World::generate_traffic() {
  if (!traffic_) return;
  while (traffic_->next_time() <= now_) {
    const Message m = traffic_->pop(next_msg_id_++);
    inject_message(m);
  }
}

void World::sweep_expired() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Buffer& buf = nodes_[i].buffer;
    for (const MsgId id : buf.expired_ids(now_)) {
      buf.erase(id);
      metrics_.on_expired();
    }
  }
}

}  // namespace dtn::sim
