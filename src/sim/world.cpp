#include "sim/world.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/event_kernel.hpp"
#include "util/log.hpp"

namespace dtn::sim {

World::World(WorldConfig config)
    : config_(config), grid_(config.radio_range, config.legacy_pair_sweep) {}

World::~World() = default;

NodeIdx World::add_node(mobility::MovementModelPtr movement,
                        std::unique_ptr<Router> router) {
  const int engine_node = config_.legacy_movement_path
                              ? engine_.add_custom(std::move(movement))
                              : engine_.add(std::move(movement));
  return add_node_common(engine_node, std::move(router));
}

NodeIdx World::add_node(const mobility::RandomWaypointParams& movement,
                        std::unique_ptr<Router> router) {
  const int engine_node =
      config_.legacy_movement_path
          ? engine_.add_custom(std::make_unique<mobility::RandomWaypoint>(movement))
          : engine_.add_waypoint(movement);
  return add_node_common(engine_node, std::move(router));
}

NodeIdx World::add_node(const mobility::CommunityMovementParams& movement,
                        std::unique_ptr<Router> router) {
  const int engine_node =
      config_.legacy_movement_path
          ? engine_.add_custom(std::make_unique<mobility::CommunityMovement>(movement))
          : engine_.add_community(movement);
  return add_node_common(engine_node, std::move(router));
}

NodeIdx World::add_node(std::shared_ptr<const geo::Polyline> route,
                        const mobility::BusParams& movement,
                        std::unique_ptr<Router> router) {
  const int engine_node =
      config_.legacy_movement_path
          ? engine_.add_custom(
                std::make_unique<mobility::BusMovement>(std::move(route), movement))
          : engine_.add_bus(std::move(route), movement);
  return add_node_common(engine_node, std::move(router));
}

NodeIdx World::add_node(const mobility::StationaryNodeSpec& movement,
                        std::unique_ptr<Router> router) {
  const int engine_node =
      config_.legacy_movement_path
          ? engine_.add_custom(std::make_unique<mobility::StationaryNode>(movement))
          : engine_.add_stationary(movement);
  return add_node_common(engine_node, std::move(router));
}

NodeIdx World::add_node_common(int engine_node, std::unique_ptr<Router> router) {
  assert(!started_ && "nodes must be added before run()");
  const auto idx = static_cast<NodeIdx>(engine_node);
  auto rng = util::derive_stream(config_.seed, static_cast<std::uint64_t>(idx),
                                 util::StreamPurpose::kRouting);
  if (rebuilding_ && static_cast<std::size_t>(idx) < nodes_.size()) {
    // Recycled slot: swap in the run's router, clear the per-node state in
    // place (buffer slab, adjacency, inbound bag all keep their capacity).
    Node& node = nodes_[static_cast<std::size_t>(idx)];
    node.router = std::move(router);
    node.buffer.reset(config_.buffer_bytes, config_.legacy_buffer_path);
    node.routing_rng = rng;
    Adjacency& adj = adjacency_[static_cast<std::size_t>(idx)];
    adj.peers.clear();
    adj.slots.clear();
    inbound_queued_[static_cast<std::size_t>(idx)].clear();
  } else {
    nodes_.emplace_back(std::move(router), config_.buffer_bytes,
                        config_.legacy_buffer_path, rng);
    adjacency_.emplace_back();
    inbound_queued_.emplace_back();
  }
  if (rebuilding_) rebuild_cursor_ = static_cast<std::size_t>(idx) + 1;
  Node& node = nodes_[static_cast<std::size_t>(idx)];
  node.router->attach(this, idx);
  engine_.init_node(engine_node,
                    util::derive_stream(config_.seed, static_cast<std::uint64_t>(idx),
                                        util::StreamPurpose::kMovement),
                    0.0);
  return idx;
}

void World::set_traffic(const TrafficParams& params) {
  finalize_rebuild();
  traffic_params_ = params;
  has_traffic_ = true;
  // The generator derives one stream per matrix entry from the seed.
  if (traffic_) {
    traffic_->reset(params, config_.seed, static_cast<NodeIdx>(nodes_.size()));
  } else {
    traffic_ = std::make_unique<TrafficGenerator>(params, config_.seed,
                                                  static_cast<NodeIdx>(nodes_.size()));
  }
}

void World::clear_sim_state() {
  now_ = 0.0;
  step_count_ = 0;
  sweeps_done_ = 0;
  event_kernel_used_ = false;
  started_ = false;
  for (Connection& conn : conn_pool_) {
    conn.queue.clear();
    conn.alive = false;
    conn.a = conn.b = -1;
    conn.active_idx = kNoSlot;
  }
  free_slots_.clear();
  free_slots_.reserve(conn_pool_.size());  // one-time growth on first reuse
  for (std::size_t s = conn_pool_.size(); s-- > 0;) {
    free_slots_.push_back(static_cast<std::uint32_t>(s));
  }
  live_connections_ = 0;
  prev_pairs_.clear();
  active_slots_.clear();
  metrics_.reset();
  contact_events_ = 0;
  next_msg_id_ = 0;
}

void World::reset(const WorldConfig& config) {
  const double old_range = config_.radio_range;
  const bool old_sweep = config_.legacy_pair_sweep;
  config_ = config;
  if (config_.radio_range != old_range ||
      config_.legacy_pair_sweep != old_sweep) {
    // Cell size must match the radio range (and the sweep mode is fixed at
    // grid construction).
    grid_ = geo::SpatialGrid(config_.radio_range, config_.legacy_pair_sweep);
  } else {
    // Full cell reset: the rebuilt scenario's map (and thus its occupied
    // region) may differ, and clear()-retained foreign cells would slow
    // every pair sweep until pruning catches up.
    grid_.reset();
  }
  clear_sim_state();
  // Unlike reseed(), the rebuilt scenario's group structure may differ, so
  // the per-group metric buckets cannot survive a reset.
  metrics_.clear_groups();
  engine_.clear();
  has_traffic_ = false;  // re-armed by the next set_traffic(), if any
  rebuilding_ = true;
  rebuild_cursor_ = 0;
}

void World::reseed(std::uint64_t seed) {
  finalize_rebuild();  // self-heal like run()/step(): trim a pending rebuild
  config_.seed = seed;
  // Points-only clear: the scenario structure (and so the roamed region)
  // is unchanged, so the discovered cell set stays warm.
  grid_.clear();
  clear_sim_state();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    node.buffer.reset(config_.buffer_bytes, config_.legacy_buffer_path);
    node.routing_rng = util::derive_stream(seed, static_cast<std::uint64_t>(i),
                                           util::StreamPurpose::kRouting);
    node.router->reset();
    Adjacency& adj = adjacency_[i];
    adj.peers.clear();
    adj.slots.clear();
    inbound_queued_[i].clear();
    engine_.init_node(static_cast<int>(i),
                      util::derive_stream(seed, static_cast<std::uint64_t>(i),
                                          util::StreamPurpose::kMovement),
                      0.0);
  }
  if (has_traffic_) {
    traffic_->reset(traffic_params_, seed, static_cast<NodeIdx>(nodes_.size()));
  }
}

void World::finalize_rebuild() {
  if (!rebuilding_) return;
  rebuilding_ = false;
  if (rebuild_cursor_ < nodes_.size()) {
    // The rebuilt scenario has fewer nodes: drop the surplus slots (their
    // capacity is the one thing a shrinking rebuild cannot keep).
    nodes_.erase(nodes_.begin() + static_cast<std::ptrdiff_t>(rebuild_cursor_),
                 nodes_.end());
    adjacency_.resize(rebuild_cursor_);
    inbound_queued_.resize(rebuild_cursor_);
  }
}

std::uint64_t World::pair_key(NodeIdx a, NodeIdx b) noexcept {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (lo << 32) | hi;
}

Buffer& World::buffer_of(NodeIdx node) {
  return nodes_.at(static_cast<std::size_t>(node)).buffer;
}

const Buffer& World::buffer_of(NodeIdx node) const {
  return nodes_.at(static_cast<std::size_t>(node)).buffer;
}

Router& World::router_of(NodeIdx node) {
  return *nodes_.at(static_cast<std::size_t>(node)).router;
}

const Router& World::router_of(NodeIdx node) const {
  return *nodes_.at(static_cast<std::size_t>(node)).router;
}

geo::Vec2 World::position_of(NodeIdx node) const {
  return engine_.positions().at(static_cast<std::size_t>(node));
}

util::Pcg32& World::routing_rng(NodeIdx node) {
  return nodes_.at(static_cast<std::size_t>(node)).routing_rng;
}

std::uint32_t World::slot_of(NodeIdx a, NodeIdx b) const noexcept {
  if (a < 0 || static_cast<std::size_t>(a) >= adjacency_.size()) return kNoSlot;
  const Adjacency& adj = adjacency_[static_cast<std::size_t>(a)];
  const auto it = std::lower_bound(adj.peers.begin(), adj.peers.end(), b);
  if (it == adj.peers.end() || *it != b) return kNoSlot;
  return adj.slots[static_cast<std::size_t>(it - adj.peers.begin())];
}

bool World::in_contact(NodeIdx a, NodeIdx b) const {
  return slot_of(a, b) != kNoSlot;
}

const std::vector<NodeIdx>& World::neighbors_of(NodeIdx node) const {
  if (config_.legacy_contact_path) {
    // Seed cost profile: scan every active connection, then sort.
    legacy_contacts_scratch_.clear();
    for (const Connection& conn : conn_pool_) {
      if (!conn.alive) continue;
      if (conn.a == node) legacy_contacts_scratch_.push_back(conn.b);
      else if (conn.b == node) legacy_contacts_scratch_.push_back(conn.a);
    }
    std::sort(legacy_contacts_scratch_.begin(), legacy_contacts_scratch_.end());
    return legacy_contacts_scratch_;
  }
  return adjacency_.at(static_cast<std::size_t>(node)).peers;
}

std::vector<NodeIdx> World::contacts_of(NodeIdx node) const {
  return neighbors_of(node);
}

bool World::peer_has(NodeIdx peer, MsgId id) const {
  if (buffer_of(peer).contains(id)) return true;
  // Also true when a transfer carrying the message toward `peer` is queued;
  // prevents two contacts from double-sending the same copy.
  return inbound_queued_.at(static_cast<std::size_t>(peer)).contains(id);
}

bool World::enqueue_transfer(NodeIdx from, NodeIdx to, MsgId id, int r_recv,
                             int r_deduct) {
  if (from == to || r_recv <= 0 || r_deduct < 0) return false;
  const std::uint32_t slot = slot_of(from, to);
  if (slot == kNoSlot) return false;  // not in contact
  const StoredMessage* sm = buffer_of(from).find(id);
  if (sm == nullptr || sm->msg.expired_at(now_)) return false;
  if (r_deduct > sm->replicas) return false;
  Connection& conn = conn_pool_[slot];
  // Refuse duplicates already queued on this connection toward `to`.
  for (const Transfer& tr : conn.queue) {
    if (tr.msg.id == id && tr.to == to) return false;
  }
  Transfer tr;
  tr.from = from;
  tr.to = to;
  tr.msg = sm->msg;
  tr.r_recv = r_recv;
  tr.r_deduct = r_deduct;
  tr.bytes_left = static_cast<double>(sm->msg.size_bytes);
  conn.queue.push_back(tr);
  activate(slot);
  inbound_queued_[static_cast<std::size_t>(to)].insert(id);
  return true;
}

void World::activate(std::uint32_t slot) {
  Connection& conn = conn_pool_[slot];
  if (conn.active_idx == kNoSlot) {
    conn.active_idx = static_cast<std::uint32_t>(active_slots_.size());
    active_slots_.push_back(slot);
  }
}

void World::deactivate(std::uint32_t slot) {
  Connection& conn = conn_pool_[slot];
  if (conn.active_idx == kNoSlot) return;
  const std::uint32_t last = active_slots_.back();
  active_slots_[conn.active_idx] = last;
  conn_pool_[last].active_idx = conn.active_idx;
  active_slots_.pop_back();
  conn.active_idx = kNoSlot;
}

void World::unindex_inbound(const Transfer& tr) {
  inbound_queued_[static_cast<std::size_t>(tr.to)].erase_one(tr.msg.id);
}

void World::inject_message(const Message& m) {
  finalize_rebuild();
  assert(m.src >= 0 && m.src < node_count());
  assert(m.dst >= 0 && m.dst < node_count());
  metrics_.on_created(m);
  Node& src = nodes_[static_cast<std::size_t>(m.src)];
  if (!src.buffer.admissible(m)) {
    metrics_.on_dropped();
    return;
  }
  if (!make_room(m.src, m)) {
    metrics_.on_dropped();
    return;
  }
  StoredMessage sm;
  sm.msg = m;
  sm.replicas = std::max(1, src.router->initial_replicas());
  sm.hop_count = 0;
  sm.received_at = now_;
  src.buffer.insert(sm);
  src.router->on_message_created(m);
}

bool World::make_room(NodeIdx node, const Message& msg) {
  Buffer& buf = buffer_of(node);
  if (!buf.admissible(msg)) return false;
  while (!buf.fits(msg)) {
    if (buf.empty()) return false;
    const MsgId victim = router_of(node).choose_drop_victim(buf);
    if (victim == Buffer::kInvalidMsg || !buf.erase(victim)) {
      // Defensive: a router returning a bogus victim must not loop forever.
      if (!buf.erase(buf.oldest())) return false;
    }
    metrics_.on_dropped();
  }
  return true;
}

std::int64_t World::step_count_for(double duration, double step_dt) {
  if (!(step_dt > 0.0) || !(duration > 0.0)) return 0;
  const double ratio = duration / step_dt;
  const double nearest = std::nearbyint(ratio);
  // A ratio within a few ulps of an integer IS that integer: 600 / 0.1
  // must never become 6000.0000000001 -> 6001 steps. Anything genuinely
  // fractional rounds up so run(duration) always covers the duration.
  const double tol = 1e-9 * std::max(1.0, std::abs(ratio));
  if (nearest > 0.0 && std::abs(ratio - nearest) <= tol) {
    return static_cast<std::int64_t>(nearest);
  }
  return static_cast<std::int64_t>(std::ceil(ratio));
}

void World::run(double duration) {
  finalize_rebuild();
  started_ = true;
  const std::int64_t steps = step_count_for(duration, config_.step_dt);
  if (steps <= 0) return;
  // Kinetic advance needs every trajectory in closed form; legacy bench
  // paths opt into seed cost profiles that the calendar does not model.
  if (config_.event_kernel && engine_.kinetic_capable() &&
      !config_.legacy_contact_path && !config_.legacy_movement_path &&
      !config_.legacy_pair_sweep) {
    event_kernel_used_ = true;
    EventKernel(*this).run(step_count_, step_count_ + steps);
    return;
  }
  for (std::int64_t i = 0; i < steps; ++i) step();
}

void World::step() {
  finalize_rebuild();
  started_ = true;
  ++step_count_;
  // Time grid contract: step k happens at exactly k * step_dt.
  now_ = static_cast<double>(step_count_) * config_.step_dt;
  move_nodes();
  if (config_.legacy_contact_path) {
    detect_contacts_legacy();
  } else {
    detect_contacts();
  }
  generate_traffic();
  progress_transfers();
  if (now_ >= static_cast<double>(sweeps_done_ + 1) * config_.ttl_sweep_interval) {
    sweep_expired();
    ++sweeps_done_;
    for (auto& node : nodes_) node.router->on_tick(now_);
  }
}

void World::move_nodes() {
  const double dt = config_.step_dt;
  engine_.step_all(static_cast<double>(step_count_ - 1) * dt, dt);
}

void World::link_up(NodeIdx a, NodeIdx b) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(conn_pool_.size());
    conn_pool_.emplace_back();
  }
  Connection& conn = conn_pool_[slot];
  conn.a = std::min(a, b);
  conn.b = std::max(a, b);
  conn.alive = true;
  assert(conn.active_idx == kNoSlot && conn.queue.empty());
  for (const auto& [self, peer] : {std::pair{a, b}, std::pair{b, a}}) {
    Adjacency& adj = adjacency_[static_cast<std::size_t>(self)];
    const auto it = std::lower_bound(adj.peers.begin(), adj.peers.end(), peer);
    const auto at = it - adj.peers.begin();
    adj.peers.insert(it, peer);
    adj.slots.insert(adj.slots.begin() + at, slot);
  }
  ++live_connections_;
  ++contact_events_;
  nodes_[static_cast<std::size_t>(a)].router->on_contact_up(b);
  nodes_[static_cast<std::size_t>(b)].router->on_contact_up(a);
}

void World::link_down(NodeIdx a, NodeIdx b) {
  const std::uint32_t slot = slot_of(a, b);
  assert(slot != kNoSlot);
  Connection& conn = conn_pool_[slot];
  abort_connection_queue(conn);
  deactivate(slot);
  for (const auto& [self, peer] : {std::pair{a, b}, std::pair{b, a}}) {
    Adjacency& adj = adjacency_[static_cast<std::size_t>(self)];
    const auto it = std::lower_bound(adj.peers.begin(), adj.peers.end(), peer);
    const auto at = it - adj.peers.begin();
    adj.peers.erase(it);
    adj.slots.erase(adj.slots.begin() + at);
  }
  conn.alive = false;
  conn.a = conn.b = -1;
  free_slots_.push_back(slot);
  --live_connections_;
  nodes_[static_cast<std::size_t>(std::min(a, b))].router->on_contact_down(std::max(a, b));
  nodes_[static_cast<std::size_t>(std::max(a, b))].router->on_contact_down(std::min(a, b));
}

void World::sort_pair_keys(std::vector<std::uint64_t>& keys) {
  // Two-pass counting sort: each half of a pair key is a node id smaller
  // than node_count, so it fits a single digit. O(pairs + nodes) per step
  // and allocation-free after warm-up, unlike a comparison sort.
  std::size_t buckets = 1;
  while (buckets < nodes_.size()) buckets <<= 1;
  const std::uint64_t mask = buckets - 1;
  radix_tmp_.resize(keys.size());
  for (const int shift : {0, 32}) {  // LSD: hi half first, then lo half
    radix_count_.assign(buckets + 1, 0);
    for (const std::uint64_t k : keys) ++radix_count_[((k >> shift) & mask) + 1];
    for (std::size_t b = 1; b <= buckets; ++b) radix_count_[b] += radix_count_[b - 1];
    for (const std::uint64_t k : keys) radix_tmp_[radix_count_[(k >> shift) & mask]++] = k;
    std::swap(keys, radix_tmp_);
  }
}

void World::detect_contacts() {
  // Incremental grid maintenance: only boundary crossings touch cells. The
  // engine's contiguous position array feeds the grid without touching the
  // Node structs at all.
  grid_.advance_epoch();
  const std::vector<geo::Vec2>& pos = engine_.positions();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    grid_.update(static_cast<NodeIdx>(i), pos[i]);
  }
  grid_.all_pairs_into(config_.radio_range, pair_scratch_);
  curr_pairs_.clear();
  for (const auto& [a, b] : pair_scratch_) curr_pairs_.push_back(pair_key(a, b));
  // Key order == ascending (a, b), so sorting reproduces the deterministic
  // callback order the full-rescan path produced by sorting pairs.
  sort_pair_keys(curr_pairs_);

  // Link-down: in range last step, out of range now.
  diff_scratch_.clear();
  std::set_difference(prev_pairs_.begin(), prev_pairs_.end(), curr_pairs_.begin(),
                      curr_pairs_.end(), std::back_inserter(diff_scratch_));
  for (const std::uint64_t key : diff_scratch_) {
    link_down(static_cast<NodeIdx>(key >> 32), static_cast<NodeIdx>(key & 0xffffffffu));
  }

  // Link-up: in range now, not last step.
  diff_scratch_.clear();
  std::set_difference(curr_pairs_.begin(), curr_pairs_.end(), prev_pairs_.begin(),
                      prev_pairs_.end(), std::back_inserter(diff_scratch_));
  for (const std::uint64_t key : diff_scratch_) {
    link_up(static_cast<NodeIdx>(key >> 32), static_cast<NodeIdx>(key & 0xffffffffu));
  }

  std::swap(prev_pairs_, curr_pairs_);
}

void World::detect_contacts_legacy() {
  // The seed algorithm: fresh pair vector, sort, fresh unordered_set, full
  // scan of every connection — kept as the benchmark baseline. Link events
  // are applied through the same link_up/link_down helpers in the same
  // order as the incremental path, so both paths are behaviorally identical.
  grid_.clear();
  const std::vector<geo::Vec2>& pos = engine_.positions();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    grid_.insert(static_cast<NodeIdx>(i), pos[i]);
  }
  auto pairs = grid_.all_pairs(config_.radio_range);
  std::sort(pairs.begin(), pairs.end());  // deterministic callback order

  std::unordered_set<std::uint64_t> current;
  current.reserve(pairs.size() * 2);
  for (const auto& [a, b] : pairs) current.insert(pair_key(a, b));

  std::vector<std::uint64_t> gone;
  for (const Connection& conn : conn_pool_) {
    if (conn.alive && current.count(pair_key(conn.a, conn.b)) == 0) {
      gone.push_back(pair_key(conn.a, conn.b));
    }
  }
  std::sort(gone.begin(), gone.end());
  for (const std::uint64_t key : gone) {
    link_down(static_cast<NodeIdx>(key >> 32), static_cast<NodeIdx>(key & 0xffffffffu));
  }

  for (const auto& [a, b] : pairs) {
    if (slot_of(a, b) != kNoSlot) continue;
    link_up(a, b);
  }

  // Keep prev_pairs_ coherent (pairs are (a, b)-sorted, i.e. key-sorted).
  prev_pairs_.clear();
  for (const auto& [a, b] : pairs) prev_pairs_.push_back(pair_key(a, b));
}

void World::abort_connection_queue(Connection& conn) {
  for (const Transfer& tr : conn.queue) {
    if (tr.started) metrics_.on_transfer_aborted();
    unindex_inbound(tr);
  }
  conn.queue.clear();
}

void World::progress_transfers() {
  const double bytes_per_step = config_.bitrate_bps / 8.0 * config_.step_dt;
  progress_scratch_.clear();
  // Both paths snapshot the connections that have queued work when the
  // phase starts (ascending pair key): transfers enqueued by completion
  // callbacks during the phase first receive bandwidth next step. The legacy
  // path pays the seed's cost — a scan over every live connection.
  if (config_.legacy_contact_path) {
    for (std::uint32_t slot = 0; slot < conn_pool_.size(); ++slot) {
      const Connection& conn = conn_pool_[slot];
      if (conn.alive && !conn.queue.empty()) {
        progress_scratch_.emplace_back(pair_key(conn.a, conn.b), slot);
      }
    }
  } else {
    // Active-transfers index: only connections with queued work, compacting
    // out the ones that drained since the last step.
    for (const std::uint32_t slot : active_slots_) {
      Connection& conn = conn_pool_[slot];
      if (conn.queue.empty()) {
        conn.active_idx = kNoSlot;
        continue;
      }
      progress_scratch_.emplace_back(pair_key(conn.a, conn.b), slot);
    }
    active_slots_.clear();
    for (const auto& [key, slot] : progress_scratch_) {
      conn_pool_[slot].active_idx = static_cast<std::uint32_t>(active_slots_.size());
      active_slots_.push_back(slot);
    }
  }
  std::sort(progress_scratch_.begin(), progress_scratch_.end());

  for (const auto& [key, slot] : progress_scratch_) {
    Connection& conn = conn_pool_[slot];
    double budget = bytes_per_step;  // half-duplex: shared per connection
    while (budget > 0.0 && !conn.queue.empty()) {
      Transfer& tr = conn.queue.front();
      if (!tr.started) {
        tr.started = true;
        metrics_.on_transfer_started();
      }
      const double sent = std::min(budget, tr.bytes_left);
      tr.bytes_left -= sent;
      budget -= sent;
      if (tr.bytes_left <= 1e-9) {
        Transfer done = tr;
        conn.queue.pop_front();
        unindex_inbound(done);
        complete_transfer(done);
      }
    }
  }
}

void World::complete_transfer(Transfer& tr) {
  metrics_.on_relayed();
  Node& sender = nodes_[static_cast<std::size_t>(tr.from)];
  Node& receiver = nodes_[static_cast<std::size_t>(tr.to)];

  // Sender side: deduct the handed-over replicas. The copy may have been
  // evicted or expired mid-transfer; the bytes were spent regardless.
  StoredMessage* src_copy = sender.buffer.find(tr.msg.id);
  int sender_hops = src_copy != nullptr ? src_copy->hop_count : 0;
  if (src_copy != nullptr && tr.r_deduct > 0) {
    src_copy->replicas -= tr.r_deduct;
    if (src_copy->replicas <= 0) sender.buffer.erase(tr.msg.id);
  }

  const bool is_destination = tr.to == tr.msg.dst;
  const bool within_ttl = !tr.msg.expired_at(now_);

  if (is_destination) {
    if (within_ttl) {
      metrics_.on_delivered(tr.msg, now_, sender_hops + 1);
    }
    // The destination never re-stores or re-forwards; the sender drops its
    // copy entirely (it has proof of delivery).
    sender.buffer.erase(tr.msg.id);  // no-op when the copy is already gone
    sender.router->on_transfer_success(tr.msg, tr.to, tr.r_recv, within_ttl);
    if (within_ttl) {
      sender.router->on_delivered(tr.msg);
      receiver.router->on_delivered(tr.msg);
    }
    return;
  }

  if (tr.msg.expired_at(now_)) {
    // Arrived at a relay after expiry: receiver discards immediately.
    metrics_.on_expired();
    sender.router->on_transfer_success(tr.msg, tr.to, tr.r_recv, false);
    return;
  }

  if (StoredMessage* existing = receiver.buffer.find(tr.msg.id)) {
    // Concurrent copies merged: quota is conserved.
    existing->replicas += tr.r_recv;
    sender.router->on_transfer_success(tr.msg, tr.to, tr.r_recv, false);
    return;
  }

  if (!make_room(tr.to, tr.msg)) {
    metrics_.on_dropped();
    sender.router->on_transfer_success(tr.msg, tr.to, tr.r_recv, false);
    return;
  }
  StoredMessage sm;
  sm.msg = tr.msg;
  sm.replicas = tr.r_recv;
  sm.hop_count = sender_hops + 1;
  sm.received_at = now_;
  receiver.buffer.insert(sm);
  sender.router->on_transfer_success(tr.msg, tr.to, tr.r_recv, false);
  receiver.router->on_message_received(*receiver.buffer.find(tr.msg.id), tr.from);
}

void World::generate_traffic() {
  if (!has_traffic_) return;
  while (traffic_->next_time() <= now_) {
    const Message m = traffic_->pop(next_msg_id_++);
    inject_message(m);
  }
}

void World::sweep_expired() {
  for (auto& node : nodes_) {
    node.buffer.expired_into(now_, expired_scratch_);
    for (const MsgId id : expired_scratch_) {
      node.buffer.erase(id);
      metrics_.on_expired();
    }
  }
}

}  // namespace dtn::sim
