#include "sim/buffer.hpp"

namespace dtn::sim {

Buffer::Buffer(std::int64_t capacity_bytes, bool legacy_store)
    : capacity_(capacity_bytes), legacy_(legacy_store) {}

void Buffer::reset(std::int64_t capacity_bytes, bool legacy_store) {
  capacity_ = capacity_bytes;
  used_ = 0;
  count_ = 0;
  legacy_ = legacy_store;
  legacy_store_.clear();
  legacy_index_.clear();
  // Thread every existing slot (live or vacant) onto the free list so the
  // slab is recycled rather than freed.
  head_ = tail_ = kNoHandle;
  free_head_ = kNoHandle;
  for (std::size_t i = slots_.size(); i-- > 0;) {
    Slot& slot = slots_[i];
    slot.sm.msg.id = kInvalidMsg;
    slot.prev = kNoHandle;
    slot.next = free_head_;
    free_head_ = static_cast<Handle>(i);
  }
  index_.clear();
}

bool Buffer::contains(MsgId id) const noexcept {
  if (legacy_) return legacy_index_.count(id) > 0;
  return index_find(id) != kNoHandle;
}

StoredMessage* Buffer::find(MsgId id) {
  if (legacy_) {
    const auto it = legacy_index_.find(id);
    return it == legacy_index_.end() ? nullptr : &*it->second;
  }
  const Handle h = index_find(id);
  return h == kNoHandle ? nullptr : &slots_[static_cast<std::size_t>(h)].sm;
}

const StoredMessage* Buffer::find(MsgId id) const {
  return const_cast<Buffer*>(this)->find(id);
}

void Buffer::insert(StoredMessage sm) {
  assert(sm.msg.id >= 0 && "message ids must be non-negative");
  assert(!contains(sm.msg.id));
  assert(fits(sm.msg));
  used_ += sm.msg.size_bytes;
  ++count_;
  if (legacy_) {
    const MsgId id = sm.msg.id;
    legacy_store_.push_back(std::move(sm));
    legacy_index_.emplace(id, std::prev(legacy_store_.end()));
    return;
  }
  Handle h;
  if (free_head_ != kNoHandle) {
    h = free_head_;
    free_head_ = slots_[static_cast<std::size_t>(h)].next;
  } else {
    h = static_cast<Handle>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[static_cast<std::size_t>(h)];
  slot.sm = std::move(sm);
  slot.prev = tail_;
  slot.next = kNoHandle;
  if (tail_ != kNoHandle) {
    slots_[static_cast<std::size_t>(tail_)].next = h;
  } else {
    head_ = h;
  }
  tail_ = h;
  index_.find_or_insert(slot.sm.msg.id, h);  // absent per precondition
}

bool Buffer::erase(MsgId id) {
  if (legacy_) {
    const auto it = legacy_index_.find(id);
    if (it == legacy_index_.end()) return false;
    used_ -= it->second->msg.size_bytes;
    --count_;
    legacy_store_.erase(it->second);
    legacy_index_.erase(it);
    return true;
  }
  const Handle h = index_find(id);
  if (h == kNoHandle) return false;
  Slot& slot = slots_[static_cast<std::size_t>(h)];
  used_ -= slot.sm.msg.size_bytes;
  --count_;
  if (slot.prev != kNoHandle) {
    slots_[static_cast<std::size_t>(slot.prev)].next = slot.next;
  } else {
    head_ = slot.next;
  }
  if (slot.next != kNoHandle) {
    slots_[static_cast<std::size_t>(slot.next)].prev = slot.prev;
  } else {
    tail_ = slot.prev;
  }
  index_.erase(id);
  slot.sm.msg.id = kInvalidMsg;  // make stale reads obvious
  slot.prev = kNoHandle;
  slot.next = free_head_;
  free_head_ = h;
  return true;
}

MsgId Buffer::oldest() const noexcept {
  if (legacy_) return legacy_store_.empty() ? kInvalidMsg : legacy_store_.front().msg.id;
  return head_ == kNoHandle ? kInvalidMsg
                            : slots_[static_cast<std::size_t>(head_)].sm.msg.id;
}

MsgId Buffer::newest() const noexcept {
  if (legacy_) return legacy_store_.empty() ? kInvalidMsg : legacy_store_.back().msg.id;
  return tail_ == kNoHandle ? kInvalidMsg
                            : slots_[static_cast<std::size_t>(tail_)].sm.msg.id;
}

Buffer::Handle Buffer::handle_of(MsgId id) const noexcept {
  assert(!legacy_ && "handles are slab-mode only");
  return index_find(id);
}

Buffer::Handle Buffer::front_handle() const noexcept {
  assert(!legacy_ && "handles are slab-mode only");
  return head_;
}

Buffer::Handle Buffer::next_handle(Handle h) const noexcept {
  assert(!legacy_ && "handles are slab-mode only");
  return slots_[static_cast<std::size_t>(h)].next;
}

const StoredMessage& Buffer::get(Handle h) const noexcept {
  assert(!legacy_ && "handles are slab-mode only");
  return slots_[static_cast<std::size_t>(h)].sm;
}

StoredMessage& Buffer::get(Handle h) noexcept {
  assert(!legacy_ && "handles are slab-mode only");
  return slots_[static_cast<std::size_t>(h)].sm;
}

void Buffer::expired_into(double t, std::vector<MsgId>& out) const {
  out.clear();
  for (const StoredMessage& sm : *this) {
    if (sm.msg.expired_at(t)) out.push_back(sm.msg.id);
  }
}

}  // namespace dtn::sim
