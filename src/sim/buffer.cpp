#include "sim/buffer.hpp"

#include <cassert>

namespace dtn::sim {

Buffer::Buffer(std::int64_t capacity_bytes) : capacity_(capacity_bytes) {}

StoredMessage* Buffer::find(MsgId id) {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &*it->second;
}

const StoredMessage* Buffer::find(MsgId id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &*it->second;
}

void Buffer::insert(StoredMessage sm) {
  assert(!has(sm.msg.id));
  assert(fits(sm.msg));
  used_ += sm.msg.size_bytes;
  const MsgId id = sm.msg.id;
  store_.push_back(std::move(sm));
  index_.emplace(id, std::prev(store_.end()));
}

bool Buffer::erase(MsgId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  used_ -= it->second->msg.size_bytes;
  store_.erase(it->second);
  index_.erase(it);
  return true;
}

MsgId Buffer::oldest() const {
  return store_.empty() ? kInvalidMsg : store_.front().msg.id;
}

std::vector<MsgId> Buffer::expired_ids(double t) const {
  std::vector<MsgId> out;
  for (const auto& sm : store_) {
    if (sm.msg.expired_at(t)) out.push_back(sm.msg.id);
  }
  return out;
}

}  // namespace dtn::sim
