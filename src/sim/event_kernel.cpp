#include "sim/event_kernel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "mobility/movement_engine.hpp"
#include "sim/world.hpp"

namespace dtn::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

EventKernel::EventKernel(World& world)
    : w_(world),
      dt_(world.config_.step_dt),
      cell_(world.config_.radio_range),
      r2_(world.config_.radio_range * world.config_.radio_range),
      inv_cell_(1.0 / world.config_.radio_range) {}

bool EventKernel::ev_after(const Ev& x, const Ev& y) noexcept {
  if (x.time != y.time) return x.time > y.time;
  if (x.kind != y.kind) return x.kind > y.kind;
  if (x.a != y.a) return x.a > y.a;
  return x.b > y.b;
}

void EventKernel::push(const Ev& ev) {
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), &EventKernel::ev_after);
}

EventKernel::Ev EventKernel::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), &EventKernel::ev_after);
  const Ev ev = heap_.back();
  heap_.pop_back();
  return ev;
}

double EventKernel::step_time(std::int64_t k) const noexcept {
  return static_cast<double>(k) * dt_;
}

std::int64_t EventKernel::step_at_or_after(double t) const {
  if (t <= 0.0) return 0;
  const double q = t / dt_;
  // Callers guard against out-of-window times; clamp instead of overflowing
  // the cast for the odd +huge that slips through.
  if (q >= 9.0e15) return std::numeric_limits<std::int64_t>::max() / 4;
  auto k = static_cast<std::int64_t>(std::ceil(q));
  while (static_cast<double>(k) * dt_ < t) ++k;
  while (k > 0 && static_cast<double>(k - 1) * dt_ >= t) --k;
  return k;
}

std::uint64_t EventKernel::cell_key(std::int64_t cx, std::int64_t cy) noexcept {
  // Same wrapped-int32 packing as geo::SpatialGrid.
  const auto ux = static_cast<std::uint32_t>(static_cast<std::int32_t>(cx));
  const auto uy = static_cast<std::uint32_t>(static_cast<std::int32_t>(cy));
  return (static_cast<std::uint64_t>(ux) << 32) | uy;
}

void EventKernel::move_cell(std::int32_t node, std::int64_t ncx, std::int64_t ncy) {
  const auto i = static_cast<std::size_t>(node);
  const std::uint64_t old_key = cell_key(cx_[i], cy_[i]);
  const auto cell_it = cells_.find(old_key);
  if (cell_it != cells_.end()) {
    std::vector<std::int32_t>& old_cell = cell_it->second;
    const auto it = std::find(old_cell.begin(), old_cell.end(), node);
    if (it != old_cell.end()) {
      *it = old_cell.back();
      old_cell.pop_back();
    }
    // Drop emptied cells: roaming nodes visit far more cells than they
    // occupy, and a table keyed by every-cell-ever-visited grows without
    // bound over a long run (cache-hostile at n >= 4000). Keeping the
    // table at ~n entries costs one tiny vector free per crossing.
    if (old_cell.empty()) cells_.erase(cell_it);
  }
  cx_[i] = ncx;
  cy_[i] = ncy;
  cells_[cell_key(ncx, ncy)].push_back(node);
}

double EventKernel::pair_dist2(std::int32_t a, std::int32_t b, double t) const {
  return w_.engine_.kinetic_position(a, t)
      .distance2_to(w_.engine_.kinetic_position(b, t));
}

void EventKernel::predict_pair(std::int32_t a, std::int32_t b,
                               std::int64_t min_step) {
  if (a == b) return;
  if (a > b) std::swap(a, b);
  const mobility::KineticSegment& sa = w_.engine_.kinetic_segment(a);
  const mobility::KineticSegment& sb = w_.engine_.kinetic_segment(b);
  // Predictions are valid only while BOTH segments hold; whichever node
  // advances first re-predicts the pair then.
  const double window_end = std::min(std::min(sa.t_end, sb.t_end), end_time_);
  const std::int64_t lo = std::max(min_step, from_ + 1);
  if (lo > to_ || step_time(lo) > window_end) return;
  std::int64_t hi = std::min(step_at_or_after(window_end), to_);
  if (step_time(hi) > window_end) --hi;
  if (lo > hi) return;

  const bool make = !w_.in_contact(a, b);
  // The analytic roots locate the transition; the final word on each grid
  // step is the same direct evaluation the pop-validation uses, so a
  // scheduled event can only fail validation if a segment changed.
  const auto scan = [&](std::int64_t k, std::int64_t limit) {
    for (; k <= limit; ++k) {
      if ((pair_dist2(a, b, step_time(k)) <= r2_) == make) {
        push({step_time(k), make ? kLinkUp : kLinkDown, a, b, 0});
        return true;
      }
    }
    return false;
  };

  // Relative motion from the later segment start: D(t) = p0 + v*(t - tref);
  // |D|^2 - range^2 is a quadratic with at most one in-range interval.
  const double tref = std::max(sa.t0, sb.t0);
  const geo::Vec2 p0 = (sa.origin + sa.vel * (tref - sa.t0)) -
                       (sb.origin + sb.vel * (tref - sb.t0));
  const geo::Vec2 v = sa.vel - sb.vel;
  const double qa = v.norm2();
  if (qa == 0.0) {
    // Constant relative position: whatever holds at `lo` holds at every
    // step, so a required state flip lands immediately (a couple of
    // evaluations absorb rounding wiggle across the formula variants).
    scan(lo, std::min(hi, lo + 2));
    return;
  }
  const double qb = 2.0 * p0.dot(v);
  const double qc = p0.norm2() - r2_;
  const double disc = qb * qb - 4.0 * qa * qc;
  if (disc <= 0.0) {
    // Never within range (at most a tangential graze): breaks fire at the
    // next step, makes never.
    if (!make) scan(lo, std::min(hi, lo + 3));
    return;
  }
  const double sq = std::sqrt(disc);
  const double t1 = tref + (-qb - sq) / (2.0 * qa);  // enters range
  const double t2 = tref + (-qb + sq) / (2.0 * qa);  // leaves range
  const double hi_time = step_time(hi);

  if (make) {
    if (t1 > hi_time || t2 < step_time(lo) - dt_) return;
    const std::int64_t k0 =
        std::max(lo, t1 <= 0.0 ? std::int64_t{0} : step_at_or_after(t1) - 1);
    const std::int64_t limit =
        t2 >= hi_time ? hi : std::min(hi, step_at_or_after(t2) + 1);
    scan(k0, limit);
    return;
  }
  // Break: out-of-range regions are before t1 and after t2.
  if (step_time(lo) < t1) {
    const std::int64_t k_end =
        t1 > hi_time ? hi : std::min(hi, step_at_or_after(t1));
    if (scan(lo, std::min(k_end, lo + 3))) return;
  }
  if (t2 > hi_time) return;  // still in range when a segment expires
  const std::int64_t k0 =
      std::max(lo, t2 <= 0.0 ? std::int64_t{0} : step_at_or_after(t2) - 1);
  scan(k0, hi);
}

void EventKernel::predict_neighborhood(std::int32_t node, std::int64_t min_step,
                                       bool only_greater) {
  const auto i = static_cast<std::size_t>(node);
  for (std::int64_t dy = -1; dy <= 1; ++dy) {
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      const auto it = cells_.find(cell_key(cx_[i] + dx, cy_[i] + dy));
      if (it == cells_.end()) continue;
      for (const std::int32_t other : it->second) {
        if (other == node) continue;
        if (only_greater && other < node) continue;
        predict_pair(node, other, min_step);
      }
    }
  }
}

void EventKernel::repredict_node(std::int32_t node, std::int64_t min_step) {
  predict_neighborhood(node, min_step, false);
  // Current contacts can drift more than one cell apart between grid steps;
  // their break predictions must not depend on cell adjacency.
  const auto i = static_cast<std::size_t>(node);
  for (const NodeIdx peer : w_.adjacency_[i].peers) {
    const auto p = static_cast<std::size_t>(peer);
    const std::int64_t ddx = cx_[p] - cx_[i];
    const std::int64_t ddy = cy_[p] - cy_[i];
    if (ddx >= -1 && ddx <= 1 && ddy >= -1 && ddy <= 1) continue;  // covered
    predict_pair(node, peer, min_step);
  }
}

void EventKernel::schedule_segment_end(std::int32_t node) {
  const mobility::KineticSegment& seg = w_.engine_.kinetic_segment(node);
  if (!(seg.t_end <= end_time_)) return;  // next run() rebuilds from lanes
  push({seg.t_end, kSegment, node, 0, serial_[static_cast<std::size_t>(node)]});
}

void EventKernel::schedule_cell_crossing(std::int32_t node) {
  const mobility::KineticSegment& seg = w_.engine_.kinetic_segment(node);
  if (seg.vel.x == 0.0 && seg.vel.y == 0.0) return;
  const auto i = static_cast<std::size_t>(node);
  double tx = kInf;
  double ty = kInf;
  if (seg.vel.x > 0.0) {
    tx = seg.t0 + (static_cast<double>(cx_[i] + 1) * cell_ - seg.origin.x) / seg.vel.x;
  } else if (seg.vel.x < 0.0) {
    tx = seg.t0 + (static_cast<double>(cx_[i]) * cell_ - seg.origin.x) / seg.vel.x;
  }
  if (seg.vel.y > 0.0) {
    ty = seg.t0 + (static_cast<double>(cy_[i] + 1) * cell_ - seg.origin.y) / seg.vel.y;
  } else if (seg.vel.y < 0.0) {
    ty = seg.t0 + (static_cast<double>(cy_[i]) * cell_ - seg.origin.y) / seg.vel.y;
  }
  double t = std::min(tx, ty);
  const int axis = tx <= ty ? 0 : 1;
  const int dir_up = (axis == 0 ? seg.vel.x : seg.vel.y) > 0.0 ? 1 : 0;
  // The believed cell can lag the closed form by an ulp; never schedule
  // into the past (the chain still terminates: each pop moves one cell).
  if (t < seg.t0) t = seg.t0;
  if (t >= seg.t_end || t > end_time_) return;
  push({t, kCellCross, node, axis << 1 | dir_up,
        serial_[static_cast<std::size_t>(node)]});
}

void EventKernel::schedule_traffic(std::int64_t min_step) {
  if (!w_.has_traffic_) return;
  const double nt = w_.traffic_->next_time();
  if (!(nt <= end_time_)) return;  // also rejects the +inf exhausted clock
  const std::int64_t k = std::max(step_at_or_after(nt), min_step);
  if (k > to_) return;
  push({step_time(k), kTraffic, 0, 0, 0});
}

void EventKernel::schedule_sweep(std::int64_t min_step) {
  const double target = static_cast<double>(w_.sweeps_done_ + 1) *
                        w_.config_.ttl_sweep_interval;
  if (target > end_time_) return;
  const std::int64_t k = std::max(step_at_or_after(target), min_step);
  if (k > to_) return;
  push({step_time(k), kTtlSweep, 0, 0, 0});
}

void EventKernel::ensure_tick(std::int64_t step) {
  // At most one transfer tick per grid step, mirroring the fixed-dt loop's
  // single progress_transfers() phase.
  if (step > to_ || step <= tick_pushed_for_) return;
  tick_pushed_for_ = step;
  push({step_time(step), kTransferTick, 0, 0, 0});
}

void EventKernel::on_segment(const Ev& ev) {
  const std::int32_t node = ev.a;
  const auto i = static_cast<std::size_t>(node);
  if (ev.serial != serial_[i]) return;  // superseded segment
  w_.engine_.kinetic_advance(node);
  ++serial_[i];
  schedule_segment_end(node);
  schedule_cell_crossing(node);
  repredict_node(node, std::max(step_at_or_after(ev.time), from_ + 1));
}

void EventKernel::on_cell_cross(const Ev& ev) {
  const std::int32_t node = ev.a;
  const auto i = static_cast<std::size_t>(node);
  if (ev.serial != serial_[i]) return;  // segment changed since scheduling
  const int axis = ev.b >> 1;
  const std::int64_t dir = (ev.b & 1) != 0 ? 1 : -1;
  move_cell(node, cx_[i] + (axis == 0 ? dir : 0), cy_[i] + (axis == 1 ? dir : 0));
  schedule_cell_crossing(node);
  // Entering a cell is the make-coverage hook: any pair that can come
  // within range shares a 3x3 neighborhood from the later entry onward.
  predict_neighborhood(node, std::max(step_at_or_after(ev.time), from_ + 1),
                       false);
}

void EventKernel::on_link_down(const Ev& ev) {
  if (!w_.in_contact(ev.a, ev.b)) return;                 // duplicate/stale
  if (pair_dist2(ev.a, ev.b, ev.time) <= r2_) return;     // stale prediction
  w_.now_ = ev.time;
  w_.step_count_ = step_at_or_after(ev.time);
  w_.link_down(ev.a, ev.b);
  // Within the current segment pair the quadratic has a single in-range
  // interval, so no re-make is possible until a segment changes — and that
  // change re-predicts.
}

void EventKernel::on_link_up(const Ev& ev) {
  if (w_.in_contact(ev.a, ev.b)) return;                  // duplicate/stale
  if (pair_dist2(ev.a, ev.b, ev.time) > r2_) return;      // stale prediction
  const std::int64_t k = step_at_or_after(ev.time);
  w_.now_ = ev.time;
  w_.step_count_ = k;
  w_.link_up(ev.a, ev.b);
  predict_pair(ev.a, ev.b, k + 1);  // schedule this contact's break
  // Router callbacks may have queued transfers; they receive bandwidth
  // this same step, like the fixed-dt progress phase after detection.
  if (!w_.active_slots_.empty()) ensure_tick(k);
}

void EventKernel::on_traffic(const Ev& ev) {
  const std::int64_t k = step_at_or_after(ev.time);
  w_.now_ = ev.time;
  w_.step_count_ = k;
  w_.generate_traffic();
  schedule_traffic(k + 1);
  if (!w_.active_slots_.empty()) ensure_tick(k);
}

void EventKernel::on_transfer_tick(const Ev& ev) {
  const std::int64_t k = step_at_or_after(ev.time);
  w_.now_ = ev.time;
  w_.step_count_ = k;
  w_.progress_transfers();
  if (!w_.active_slots_.empty()) ensure_tick(k + 1);
}

void EventKernel::on_ttl_sweep(const Ev& ev) {
  const std::int64_t k = step_at_or_after(ev.time);
  w_.now_ = ev.time;
  w_.step_count_ = k;
  w_.sweep_expired();
  ++w_.sweeps_done_;
  for (auto& node : w_.nodes_) node.router->on_tick(w_.now_);
  schedule_sweep(k + 1);
  if (!w_.active_slots_.empty()) ensure_tick(k + 1);
}

void EventKernel::run(std::int64_t from_step, std::int64_t to_step) {
  from_ = from_step;
  to_ = to_step;
  end_time_ = step_time(to_);
  const double t0 = step_time(from_);
  mobility::MovementEngine& eng = w_.engine_;
  eng.kinetic_start(t0);

  const std::size_t n = eng.size();
  serial_.assign(n, 0);
  cx_.resize(n);
  cy_.resize(n);
  cells_.clear();
  heap_.clear();
  tick_pushed_for_ = -1;
  for (std::size_t i = 0; i < n; ++i) {
    const geo::Vec2 p = eng.position(static_cast<int>(i));
    cx_[i] = static_cast<std::int64_t>(std::floor(p.x * inv_cell_));
    cy_[i] = static_cast<std::int64_t>(std::floor(p.y * inv_cell_));
    cells_[cell_key(cx_[i], cy_[i])].push_back(static_cast<std::int32_t>(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto node = static_cast<std::int32_t>(i);
    schedule_segment_end(node);
    schedule_cell_crossing(node);
    // Every adjacent pair once (the greater-index filter dedups); this
    // covers carried-over contacts too — in-contact pairs are always
    // cell-adjacent at a grid time.
    predict_neighborhood(node, from_ + 1, /*only_greater=*/true);
  }
  // Transfers still queued from a previous run() on this world.
  if (!w_.active_slots_.empty()) ensure_tick(from_ + 1);
  schedule_traffic(from_ + 1);
  schedule_sweep(from_ + 1);

  while (!heap_.empty()) {
    const Ev ev = pop();
    assert(ev.time <= end_time_);
    switch (ev.kind) {
      case kSegment: on_segment(ev); break;
      case kCellCross: on_cell_cross(ev); break;
      case kLinkDown: on_link_down(ev); break;
      case kLinkUp: on_link_up(ev); break;
      case kTraffic: on_traffic(ev); break;
      case kTransferTick: on_transfer_tick(ev); break;
      case kTtlSweep: on_ttl_sweep(ev); break;
      default: assert(false); break;
    }
  }

  // Land exactly on the closing grid point and hand fixed-dt-compatible
  // state back: synced positions and a prev-pair snapshot for a later
  // step()'s contact diff.
  w_.step_count_ = to_;
  w_.now_ = end_time_;
  eng.kinetic_sync_positions(end_time_);
  w_.prev_pairs_.clear();
  for (const auto& conn : w_.conn_pool_) {
    if (conn.alive) w_.prev_pairs_.push_back(World::pair_key(conn.a, conn.b));
  }
  std::sort(w_.prev_pairs_.begin(), w_.prev_pairs_.end());
}

}  // namespace dtn::sim
