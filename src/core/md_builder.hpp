// MD construction + MEMD (paper Sec. III-B2, Theorems 2 & 3).
//
// A node u_i builds the expected-meeting-delay matrix MD whenever it meets
// another node: its own row D_ij comes from Theorem 2 applied to its live
// contact history (conditioned on elapsed time), while every foreign entry
// D_jk (j != i) is approximated by the average interval I_jk from the MI
// matrix ("ui can replace it with I_jk for simplicity"). Dijkstra over MD
// from u_i then yields MEMD(u_i, d) for every destination d at once.
//
// MemdCache wraps this with version-based invalidation: the MD only needs
// rebuilding when the node's MI or own history changed, which happens
// exactly on the node's own contacts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/community.hpp"
#include "core/contact_history.hpp"
#include "core/dijkstra.hpp"
#include "core/mi_matrix.hpp"

namespace dtn::core {

/// Builds node `self`'s MD matrix at time t (row-major n×n).
/// Row `self` uses Theorem 2 (EMD conditioned on elapsed time); other rows
/// copy MI averages. Unknown entries are +inf (no edge).
std::vector<double> build_md(const MiMatrix& mi, const ContactHistory& history,
                             NodeIdx self, double t);

/// Intra-community MD over the dense sub-index of `community`'s members:
/// result is m×m where m = members(community).size(), indexed by position
/// in that member list. Pairs outside the community contribute no edges.
std::vector<double> build_md_intra(const MiMatrix& mi, const ContactHistory& history,
                                   const CommunityTable& table, int community,
                                   NodeIdx self, double t);

/// Caches the Dijkstra distance vector from `self` over its current MD.
/// Rebuilds lazily when (mi.version, history generation marker, time bucket)
/// changed. The time bucket quantizes t so the elapsed-time dependence of
/// Theorem 2 still refreshes between contacts without rebuilding per query.
///
/// The MD matrix is kept persistent between rebuilds and synced
/// incrementally: only MI rows whose row_version moved since the last sync
/// are recopied, and the own row (Theorem 2, time-dependent) is recomputed
/// every rebuild. This turns the per-contact cost from O(n²) copy + O(n²)
/// Dijkstra into O(changed rows · n) + O(n²) Dijkstra, which is what makes
/// EER tractable at the paper's 240-node scale.
class MemdCache {
 public:
  explicit MemdCache(double time_quantum = 1.0) : quantum_(time_quantum) {}

  /// MEMD(self, dst) at time t; +inf when dst is unreachable in MD.
  double memd(const MiMatrix& mi, const ContactHistory& history, NodeIdx self,
              NodeIdx dst, double t);

  /// Full distance vector (forces a rebuild check).
  const std::vector<double>& distances(const MiMatrix& mi,
                                       const ContactHistory& history, NodeIdx self,
                                       double t);

  void invalidate() { valid_ = false; }

  /// Forgets every synced row (buffers retained) — required when the
  /// backing MiMatrix itself was reset, since its rewound row versions
  /// could otherwise collide with the synced markers and leave stale MD
  /// rows in place. Router::reset support.
  void reset() {
    valid_ = false;
    std::fill(synced_versions_.begin(), synced_versions_.end(), ~0ULL);
  }

 private:
  void sync_md(const MiMatrix& mi, const ContactHistory& history, NodeIdx self,
               double t);

  double quantum_;
  bool valid_ = false;
  std::uint64_t mi_version_ = 0;
  std::int64_t time_bucket_ = 0;
  std::size_t history_pairs_ = 0;
  std::vector<double> dist_;
  std::vector<double> md_;                      ///< persistent MD buffer
  std::vector<std::uint64_t> synced_versions_;  ///< per-row MI versions in md_
};

}  // namespace dtn::core
