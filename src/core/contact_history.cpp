#include "core/contact_history.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace dtn::core {

double PairHistory::average_interval() const {
  if (intervals.empty()) return 0.0;
  return interval_sum_ / static_cast<double>(intervals.size());
}

const std::vector<double>& PairHistory::sorted_intervals() const {
  if (cache_dirty_) {
    sorted_cache_.assign(intervals.begin(), intervals.end());
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    cache_dirty_ = false;
  }
  return sorted_cache_;
}

ContactHistory::ContactHistory(std::size_t window_capacity)
    : capacity_(window_capacity == 0 ? 1 : window_capacity) {}

void ContactHistory::record_contact(NodeIdx peer, double t) {
  PairHistory& ph = pairs_[peer];
  if (ph.met) {
    const double interval = t - ph.last_contact;
    if (interval > 0.0) {
      ph.intervals.push_back(interval);
      // Appending extends the left fold exactly (sum' = sum + x), so the
      // running sum stays bit-identical to accumulating the whole window.
      ph.interval_sum_ += interval;
      if (ph.intervals.size() > capacity_) {
        ph.intervals.pop_front();
        // Evicting the oldest breaks the fold; re-accumulate the (small,
        // bounded) window so rounding never drifts from the exact sum.
        ph.interval_sum_ =
            std::accumulate(ph.intervals.begin(), ph.intervals.end(), 0.0);
      }
      ph.last_contact = t;
      ph.cache_dirty_ = true;
    }
    // interval <= 0 (re-detection in the same instant): keep existing t0.
  } else {
    ph.met = true;
    ph.last_contact = t;
  }
}

const PairHistory* ContactHistory::pair(NodeIdx peer) const {
  const auto it = pairs_.find(peer);
  return it == pairs_.end() ? nullptr : &it->second;
}

double ContactHistory::elapsed_since_contact(NodeIdx peer, double t) const {
  const PairHistory* ph = pair(peer);
  if (ph == nullptr || !ph->met) return std::numeric_limits<double>::infinity();
  return t - ph->last_contact;
}

std::vector<NodeIdx> ContactHistory::known_peers() const {
  std::vector<NodeIdx> peers;
  peers.reserve(pairs_.size());
  for (const auto& [peer, ph] : pairs_) peers.push_back(peer);
  return peers;
}

}  // namespace dtn::core
