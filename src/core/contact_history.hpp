// Sliding-window contact history (paper Sec. III-A1): for each peer, a node
// records the last `window_capacity` meeting intervals Δt^{ij}_k and the
// time t^{ij}_0 of the last contact. All four theorems of the paper are
// functions of this state.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace dtn::core {

using NodeIdx = std::int32_t;

struct PairHistory {
  std::deque<double> intervals;  ///< recorded meeting intervals, oldest first
  double last_contact = 0.0;     ///< t^{ij}_0
  bool met = false;              ///< at least one contact recorded

  /// Average meeting interval I_ij = (1/r) Σ Δt_k; 0 when no intervals yet.
  /// O(1): a running sum is maintained as intervals enter and leave the
  /// window instead of re-accumulating on every estimator call.
  [[nodiscard]] double average_interval() const;
  [[nodiscard]] std::size_t count() const noexcept { return intervals.size(); }

  /// Ascending copy of the window, rebuilt lazily after updates. The
  /// estimators binary-search it, making EEV/ENEC O(peers · log window)
  /// per evaluation instead of O(peers · window).
  [[nodiscard]] const std::vector<double>& sorted_intervals() const;

 private:
  friend class ContactHistory;
  double interval_sum_ = 0.0;  ///< running Σ Δt_k over the window
  mutable std::vector<double> sorted_cache_;
  mutable bool cache_dirty_ = true;
};

class ContactHistory {
 public:
  explicit ContactHistory(std::size_t window_capacity = 32);

  /// Forgets every pair, dropping to the exact just-constructed container
  /// state — Router::reset support. Deliberately NOT a bucket-retaining
  /// clear(): the estimators iterate pairs() accumulating floating-point
  /// sums, and unordered_map iteration order depends on the bucket count,
  /// so a retained (larger) bucket array could reorder the summation and
  /// break the bit-identical reseed contract in the last ulp.
  void clear() noexcept { pairs_ = {}; }

  /// Records a contact with `peer` at time t. If a previous contact exists
  /// the interval t - t0 is appended (evicting the oldest past capacity).
  /// Contacts arriving out of order or coincident (interval <= 0) only
  /// refresh t0.
  void record_contact(NodeIdx peer, double t);

  /// nullptr when the pair has never met.
  [[nodiscard]] const PairHistory* pair(NodeIdx peer) const;

  /// Elapsed time since last contact with `peer` at time t; +inf if never.
  [[nodiscard]] double elapsed_since_contact(NodeIdx peer, double t) const;

  /// Peers with at least one recorded contact, unsorted.
  [[nodiscard]] std::vector<NodeIdx> known_peers() const;

  [[nodiscard]] std::size_t window_capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t pair_count() const noexcept { return pairs_.size(); }

  /// Iteration support for estimators (read-only).
  [[nodiscard]] const std::unordered_map<NodeIdx, PairHistory>& pairs() const {
    return pairs_;
  }

 private:
  std::size_t capacity_;
  std::unordered_map<NodeIdx, PairHistory> pairs_;
};

}  // namespace dtn::core
