#include "core/md_builder.hpp"

#include <algorithm>
#include <cmath>

#include "core/estimators.hpp"

namespace dtn::core {

std::vector<double> build_md(const MiMatrix& mi, const ContactHistory& history,
                             NodeIdx self, double t) {
  const NodeIdx n = mi.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> md(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), kInf);
  // Foreign rows: copy MI averages (D_jk ~= I_jk).
  for (NodeIdx j = 0; j < n; ++j) {
    const std::size_t row = static_cast<std::size_t>(j) * static_cast<std::size_t>(n);
    for (NodeIdx k = 0; k < n; ++k) {
      md[row + static_cast<std::size_t>(k)] = j == k ? 0.0 : mi.get(j, k);
    }
  }
  // Own row: Theorem 2 over the live window, conditioned on elapsed time.
  const std::size_t self_row =
      static_cast<std::size_t>(self) * static_cast<std::size_t>(n);
  for (NodeIdx k = 0; k < n; ++k) {
    if (k == self) continue;
    md[self_row + static_cast<std::size_t>(k)] = kInf;
  }
  for (const auto& [peer, ph] : history.pairs()) {
    if (peer == self || peer < 0 || peer >= n) continue;
    if (!ph.met || ph.intervals.empty()) continue;
    const double elapsed = t - ph.last_contact;
    const std::vector<double> window(ph.intervals.begin(), ph.intervals.end());
    md[self_row + static_cast<std::size_t>(peer)] =
        expected_meeting_delay(window, elapsed);
  }
  return md;
}

std::vector<double> build_md_intra(const MiMatrix& mi, const ContactHistory& history,
                                   const CommunityTable& table, int community,
                                   NodeIdx self, double t) {
  const auto& members = table.members(community);
  const auto m = static_cast<NodeIdx>(members.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> md(static_cast<std::size_t>(m) * static_cast<std::size_t>(m), kInf);
  // Dense sub-index: position of each member in the member list.
  for (NodeIdx a = 0; a < m; ++a) {
    const std::size_t row = static_cast<std::size_t>(a) * static_cast<std::size_t>(m);
    for (NodeIdx b = 0; b < m; ++b) {
      md[row + static_cast<std::size_t>(b)] =
          a == b ? 0.0 : mi.get(members[static_cast<std::size_t>(a)],
                                members[static_cast<std::size_t>(b)]);
    }
  }
  // Own row via Theorem 2 (self must be a member; otherwise leave MI rows).
  NodeIdx self_pos = -1;
  for (NodeIdx a = 0; a < m; ++a) {
    if (members[static_cast<std::size_t>(a)] == self) {
      self_pos = a;
      break;
    }
  }
  if (self_pos >= 0) {
    const std::size_t row =
        static_cast<std::size_t>(self_pos) * static_cast<std::size_t>(m);
    for (NodeIdx b = 0; b < m; ++b) {
      if (b == self_pos) continue;
      const NodeIdx peer = members[static_cast<std::size_t>(b)];
      const PairHistory* ph = history.pair(peer);
      if (ph == nullptr || !ph->met || ph->intervals.empty()) {
        md[row + static_cast<std::size_t>(b)] = kInf;
        continue;
      }
      const double elapsed = t - ph->last_contact;
      const std::vector<double> window(ph->intervals.begin(), ph->intervals.end());
      md[row + static_cast<std::size_t>(b)] = expected_meeting_delay(window, elapsed);
    }
  }
  return md;
}

double MemdCache::memd(const MiMatrix& mi, const ContactHistory& history, NodeIdx self,
                       NodeIdx dst, double t) {
  return distances(mi, history, self, t).at(static_cast<std::size_t>(dst));
}

void MemdCache::sync_md(const MiMatrix& mi, const ContactHistory& history,
                        NodeIdx self, double t) {
  const NodeIdx n = mi.size();
  const auto n_sz = static_cast<std::size_t>(n);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (md_.size() != n_sz * n_sz) {
    md_.assign(n_sz * n_sz, kInf);
    synced_versions_.assign(n_sz, ~0ULL);
  }
  // Foreign rows: recopy only the rows whose MI content moved.
  for (NodeIdx j = 0; j < n; ++j) {
    if (j == self) continue;
    const std::uint64_t v = mi.row_version(j);
    if (synced_versions_[static_cast<std::size_t>(j)] == v) continue;
    const double* src = mi.row_data(j);
    double* dst = md_.data() + static_cast<std::size_t>(j) * n_sz;
    std::copy_n(src, n_sz, dst);
    dst[static_cast<std::size_t>(j)] = 0.0;
    synced_versions_[static_cast<std::size_t>(j)] = v;
  }
  // Own row: Theorem 2 is elapsed-time dependent — recompute every sync.
  double* own = md_.data() + static_cast<std::size_t>(self) * n_sz;
  std::fill_n(own, n_sz, kInf);
  own[static_cast<std::size_t>(self)] = 0.0;
  for (const auto& [peer, ph] : history.pairs()) {
    if (peer == self || peer < 0 || peer >= n) continue;
    if (!ph.met || ph.intervals.empty()) continue;
    const double elapsed = t - ph.last_contact;
    const std::vector<double> window(ph.intervals.begin(), ph.intervals.end());
    own[static_cast<std::size_t>(peer)] = expected_meeting_delay(window, elapsed);
  }
}

const std::vector<double>& MemdCache::distances(const MiMatrix& mi,
                                                const ContactHistory& history,
                                                NodeIdx self, double t) {
  const auto bucket = static_cast<std::int64_t>(std::floor(t / quantum_));
  if (!valid_ || mi.version() != mi_version_ || bucket != time_bucket_ ||
      history.pair_count() != history_pairs_) {
    sync_md(mi, history, self, t);
    dist_ = dijkstra_dense(md_, mi.size(), self).dist;
    valid_ = true;
    mi_version_ = mi.version();
    time_bucket_ = bucket;
    history_pairs_ = history.pair_count();
  }
  return dist_;
}

}  // namespace dtn::core
