// The paper's four estimators.
//
//   Theorem 1 (EEV):   EEV_i(t, τ)  = Σ_j m^τ_ij / m_ij
//   Theorem 2 (EMD):   EMD_ij(t)    = mean{Δt ∈ M_ij} − (t − t0)
//   Theorem 4 (ENEC):  ENEC_i(t, τ) = Σ_{k ≠ CID_i} (1 − Π_{j∈C_k} (1 − m^τ_ij/m_ij))
//
// with M_ij  = {Δt in window : Δt > t − t0}   (m_ij  = |M_ij|)
//      M^τ_ij = {Δt ∈ M_ij  : Δt ≤ t + τ − t0} (m^τ_ij = |M^τ_ij|)
//
// Edge-case policy (DESIGN.md §2): when m_ij = 0 — the pair is "overdue",
// every recorded interval is shorter than the elapsed time — the
// conditional in Theorems 1/4 is 0/0 and Theorem 2's mean is empty. We fall
// back to the unconditional window statistics; with an empty window the
// pair contributes probability 0 and delay +inf.
#pragma once

#include <span>

#include "core/community.hpp"
#include "core/contact_history.hpp"

namespace dtn::core {

/// Conditional window counts for a pair: m (intervals > elapsed) and
/// m_tau (those also <= elapsed + tau).
struct CondCounts {
  int m_tau = 0;
  int m = 0;
};

[[nodiscard]] CondCounts conditional_counts(std::span<const double> intervals,
                                            double elapsed, double tau) noexcept;

/// P(next meeting within (t, t+τ] | elapsed since last contact), Eq. (4).
/// Falls back to the unconditional fraction when m = 0; returns 0 for an
/// empty window or non-positive τ.
[[nodiscard]] double conditional_meet_probability(std::span<const double> intervals,
                                                  double elapsed, double tau) noexcept;

/// Same probability computed over an ascending-sorted window in
/// O(log |window|). Equals conditional_meet_probability on the sorted data
/// (property-tested); this is the hot-path form used by the routers.
[[nodiscard]] double conditional_meet_probability_sorted(
    std::span<const double> sorted, double elapsed, double tau) noexcept;

/// Theorem 2: expected residual meeting delay given the elapsed time.
/// Falls back to mean(window) when m = 0; +inf for an empty window.
/// The result is floored at 0 (an overdue pair is expected "now", never in
/// the past).
[[nodiscard]] double expected_meeting_delay(std::span<const double> intervals,
                                            double elapsed) noexcept;

/// Theorem 1: EEV_i(t, τ) summed over every peer in the history.
[[nodiscard]] double expected_encounter_value(const ContactHistory& history,
                                              double t, double tau);

/// Intra-community variant: only peers inside `community` members of
/// `table` (and != self) contribute. Used by CR's intra-community phase.
[[nodiscard]] double expected_encounter_value_intra(const ContactHistory& history,
                                                    const CommunityTable& table,
                                                    NodeIdx self, double t, double tau);

/// P_ik of Theorem 4: probability node (with `history`) meets at least one
/// member of community k within (t, t+τ].
[[nodiscard]] double community_meet_probability(const ContactHistory& history,
                                                const CommunityTable& table,
                                                int community, double t, double tau);

/// Theorem 4: expected number of encountering communities, excluding the
/// node's own community `self_community`.
[[nodiscard]] double expected_encountering_communities(const ContactHistory& history,
                                                       const CommunityTable& table,
                                                       int self_community, double t,
                                                       double tau);

}  // namespace dtn::core
