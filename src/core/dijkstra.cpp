#include "core/dijkstra.hpp"

#include <algorithm>
#include <cassert>

namespace dtn::core {

DijkstraResult dijkstra_dense(std::span<const double> delay, NodeIdx n, NodeIdx src) {
  assert(delay.size() == static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  assert(src >= 0 && src < n);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  DijkstraResult result;
  result.dist.assign(static_cast<std::size_t>(n), kInf);
  result.parent.assign(static_cast<std::size_t>(n), -1);
  std::vector<bool> done(static_cast<std::size_t>(n), false);
  result.dist[static_cast<std::size_t>(src)] = 0.0;

  for (NodeIdx iter = 0; iter < n; ++iter) {
    // Select the unfinished vertex with the smallest tentative distance.
    NodeIdx u = -1;
    double best = kInf;
    for (NodeIdx v = 0; v < n; ++v) {
      if (!done[static_cast<std::size_t>(v)] &&
          result.dist[static_cast<std::size_t>(v)] < best) {
        best = result.dist[static_cast<std::size_t>(v)];
        u = v;
      }
    }
    if (u < 0) break;  // remaining vertices unreachable
    done[static_cast<std::size_t>(u)] = true;
    const std::size_t row = static_cast<std::size_t>(u) * static_cast<std::size_t>(n);
    for (NodeIdx v = 0; v < n; ++v) {
      if (done[static_cast<std::size_t>(v)] || v == u) continue;
      double w = delay[row + static_cast<std::size_t>(v)];
      if (w == kInf) continue;
      if (w < 0.0) w = 0.0;
      const double nd = best + w;
      if (nd < result.dist[static_cast<std::size_t>(v)]) {
        result.dist[static_cast<std::size_t>(v)] = nd;
        result.parent[static_cast<std::size_t>(v)] = u;
      }
    }
  }
  return result;
}

std::vector<NodeIdx> extract_path(const DijkstraResult& result, NodeIdx src,
                                  NodeIdx dst) {
  if (!result.reachable(dst)) return {};
  std::vector<NodeIdx> path;
  for (NodeIdx cur = dst; cur != -1; cur = result.parent[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
    if (cur == src) break;
  }
  if (path.back() != src) return {};
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace dtn::core
