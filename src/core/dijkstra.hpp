// Dense single-source Dijkstra over an n×n non-negative delay matrix.
// O(n²), no heap: for the full dense matrices MD produces, the simple
// quadratic form beats a binary-heap version and allocates nothing beyond
// the two result vectors. Theorem 3 of the paper: running this over the MD
// matrix yields the minimum expected meeting delay (MEMD).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace dtn::core {

using NodeIdx = std::int32_t;

struct DijkstraResult {
  std::vector<double> dist;     ///< dist[v] = shortest delay src -> v
  std::vector<NodeIdx> parent;  ///< parent[v] on the shortest path tree, -1 at src/unreached

  [[nodiscard]] bool reachable(NodeIdx v) const {
    return dist.at(static_cast<std::size_t>(v)) !=
           std::numeric_limits<double>::infinity();
  }
};

/// `delay` is row-major n×n; delay[i*n+j] = edge weight i->j (+inf = no
/// edge). Negative weights are clamped to 0 (expected delays are
/// non-negative by construction; the clamp guards rounding).
DijkstraResult dijkstra_dense(std::span<const double> delay, NodeIdx n, NodeIdx src);

/// Reconstructs the path src -> dst (inclusive); empty if unreachable.
std::vector<NodeIdx> extract_path(const DijkstraResult& result, NodeIdx src, NodeIdx dst);

}  // namespace dtn::core
