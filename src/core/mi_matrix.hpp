// Meeting-interval matrix MI (paper Sec. III-B2): an n×n matrix of average
// meeting intervals I_ij, where row i is owned and updated by node u_i.
// Each row carries a last-update timestamp; when two nodes meet they
// exchange only the rows the other side has staler (paper footnote 1),
// which is also what the control-overhead accounting charges.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace dtn::core {

using NodeIdx = std::int32_t;

class MiMatrix {
 public:
  static constexpr double kUnknown = std::numeric_limits<double>::infinity();

  explicit MiMatrix(NodeIdx n);

  /// Restores the just-constructed state (all entries unknown, diagonal 0,
  /// rows never updated, version counters rewound) without reallocating —
  /// Router::reset support for cross-run reuse.
  void reset();

  [[nodiscard]] NodeIdx size() const noexcept { return n_; }

  /// I_ij; 0 on the diagonal, kUnknown when no information yet.
  [[nodiscard]] double get(NodeIdx i, NodeIdx j) const;

  /// Updates one entry of row `i` (the owner's row) and stamps the row with
  /// time t. Only the row owner calls this with i == its own id.
  void set_entry(NodeIdx i, NodeIdx j, double avg_interval, double t);

  [[nodiscard]] double row_time(NodeIdx i) const {
    return row_times_.at(static_cast<std::size_t>(i));
  }

  /// Copies every row the `other` matrix has fresher. Returns the number of
  /// rows copied (the unit the routers convert into control bytes).
  int merge_from(const MiMatrix& other);

  /// Bytes one row occupies on the air: n doubles + a timestamp.
  [[nodiscard]] std::int64_t row_bytes() const noexcept {
    return static_cast<std::int64_t>(n_) * 8 + 8;
  }

  /// Monotone counter bumped on every mutation; lets callers cache values
  /// derived from the matrix (e.g. MEMD vectors) and detect staleness.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Per-row mutation counter (bumped when the row's content changes);
  /// MemdCache uses it to resync only the rows that actually moved.
  [[nodiscard]] std::uint64_t row_version(NodeIdx i) const {
    return row_versions_.at(static_cast<std::size_t>(i));
  }

  /// Raw row access for bulk consumers (row-major, n entries starting at
  /// row i). The span stays valid until the matrix is destroyed.
  [[nodiscard]] const double* row_data(NodeIdx i) const {
    return data_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(n_);
  }

 private:
  NodeIdx n_;
  std::vector<double> data_;       // row-major n×n
  std::vector<double> row_times_;  // -inf = never updated
  std::vector<std::uint64_t> row_versions_;
  std::uint64_t version_ = 0;
};

}  // namespace dtn::core
