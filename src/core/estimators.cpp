#include "core/estimators.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace dtn::core {

CondCounts conditional_counts(std::span<const double> intervals, double elapsed,
                              double tau) noexcept {
  CondCounts c;
  for (const double dt : intervals) {
    if (dt > elapsed) {
      ++c.m;
      if (dt <= elapsed + tau) ++c.m_tau;
    }
  }
  return c;
}

double conditional_meet_probability(std::span<const double> intervals, double elapsed,
                                    double tau) noexcept {
  if (intervals.empty() || tau <= 0.0) return 0.0;
  const CondCounts c = conditional_counts(intervals, elapsed, tau);
  if (c.m > 0) {
    return static_cast<double>(c.m_tau) / static_cast<double>(c.m);
  }
  // Overdue pair (every recorded interval <= elapsed): the conditional is
  // 0/0. Fall back to the unconditional fraction of intervals <= tau.
  int within = 0;
  for (const double dt : intervals) {
    if (dt <= tau) ++within;
  }
  return static_cast<double>(within) / static_cast<double>(intervals.size());
}

double conditional_meet_probability_sorted(std::span<const double> sorted,
                                           double elapsed, double tau) noexcept {
  if (sorted.empty() || tau <= 0.0) return 0.0;
  // m: intervals strictly greater than elapsed.
  const auto first_gt =
      std::upper_bound(sorted.begin(), sorted.end(), elapsed);
  const auto m = static_cast<double>(sorted.end() - first_gt);
  if (m > 0.0) {
    // m_tau: of those, the ones <= elapsed + tau.
    const auto last_le =
        std::upper_bound(first_gt, sorted.end(), elapsed + tau);
    const auto m_tau = static_cast<double>(last_le - first_gt);
    return m_tau / m;
  }
  // Overdue fallback: unconditional fraction of intervals <= tau.
  const auto within =
      static_cast<double>(std::upper_bound(sorted.begin(), sorted.end(), tau) -
                          sorted.begin());
  return within / static_cast<double>(sorted.size());
}

double expected_meeting_delay(std::span<const double> intervals,
                              double elapsed) noexcept {
  if (intervals.empty()) return std::numeric_limits<double>::infinity();
  double sum = 0.0;
  int m = 0;
  for (const double dt : intervals) {
    if (dt > elapsed) {
      sum += dt;
      ++m;
    }
  }
  if (m > 0) {
    const double emd = sum / static_cast<double>(m) - elapsed;
    return emd > 0.0 ? emd : 0.0;
  }
  // Overdue: Theorem 2's conditioning set is empty. Use the unconditional
  // mean interval as the best available scale for "soon".
  const double mean = std::accumulate(intervals.begin(), intervals.end(), 0.0) /
                      static_cast<double>(intervals.size());
  return std::max(mean, 0.0);
}

double expected_encounter_value(const ContactHistory& history, double t, double tau) {
  double eev = 0.0;
  for (const auto& [peer, ph] : history.pairs()) {
    if (!ph.met || ph.intervals.empty()) continue;
    const double elapsed = t - ph.last_contact;
    eev += conditional_meet_probability_sorted(ph.sorted_intervals(), elapsed, tau);
  }
  return eev;
}

double expected_encounter_value_intra(const ContactHistory& history,
                                      const CommunityTable& table, NodeIdx self,
                                      double t, double tau) {
  const int own = table.community_of(self);
  double eev = 0.0;
  for (const auto& [peer, ph] : history.pairs()) {
    if (peer == self || !ph.met || ph.intervals.empty()) continue;
    if (peer >= table.node_count() || table.community_of(peer) != own) continue;
    const double elapsed = t - ph.last_contact;
    eev += conditional_meet_probability_sorted(ph.sorted_intervals(), elapsed, tau);
  }
  return eev;
}

double community_meet_probability(const ContactHistory& history,
                                  const CommunityTable& table, int community,
                                  double t, double tau) {
  double miss_all = 1.0;
  for (const NodeIdx member : table.members(community)) {
    const PairHistory* ph = history.pair(member);
    if (ph == nullptr || !ph->met || ph->intervals.empty()) continue;
    const double elapsed = t - ph->last_contact;
    const double p =
        conditional_meet_probability_sorted(ph->sorted_intervals(), elapsed, tau);
    miss_all *= 1.0 - p;
  }
  return 1.0 - miss_all;
}

double expected_encountering_communities(const ContactHistory& history,
                                         const CommunityTable& table,
                                         int self_community, double t, double tau) {
  double enec = 0.0;
  for (int k = 0; k < table.community_count(); ++k) {
    if (k == self_community) continue;
    enec += community_meet_probability(history, table, k, t, tau);
  }
  return enec;
}

}  // namespace dtn::core
