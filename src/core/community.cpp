#include "core/community.hpp"

#include <algorithm>
#include <stdexcept>

namespace dtn::core {

CommunityTable::CommunityTable(std::vector<int> cid) : cid_(std::move(cid)) {
  int max_cid = -1;
  for (const int c : cid_) {
    if (c < 0) throw std::invalid_argument("CommunityTable: negative community id");
    max_cid = std::max(max_cid, c);
  }
  community_count_ = max_cid + 1;
  members_.resize(static_cast<std::size_t>(community_count_));
  for (std::size_t v = 0; v < cid_.size(); ++v) {
    members_[static_cast<std::size_t>(cid_[v])].push_back(static_cast<NodeIdx>(v));
  }
}

}  // namespace dtn::core
