// Community membership table (paper Sec. IV). Communities are predefined
// per the paper's own simplification (Sec. IV fn. 2): every node belongs to
// exactly one community, identified by a dense integer id.
#pragma once

#include <cstdint>
#include <vector>

namespace dtn::core {

using NodeIdx = std::int32_t;

class CommunityTable {
 public:
  CommunityTable() = default;
  /// cid[v] = community of node v; ids must be dense in [0, max_cid].
  explicit CommunityTable(std::vector<int> cid);

  [[nodiscard]] int community_of(NodeIdx node) const {
    return cid_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] int community_count() const noexcept { return community_count_; }
  [[nodiscard]] NodeIdx node_count() const noexcept {
    return static_cast<NodeIdx>(cid_.size());
  }
  [[nodiscard]] const std::vector<NodeIdx>& members(int community) const {
    return members_.at(static_cast<std::size_t>(community));
  }
  [[nodiscard]] bool same_community(NodeIdx a, NodeIdx b) const {
    return community_of(a) == community_of(b);
  }

 private:
  std::vector<int> cid_;
  std::vector<std::vector<NodeIdx>> members_;
  int community_count_ = 0;
};

}  // namespace dtn::core
