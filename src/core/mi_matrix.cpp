#include "core/mi_matrix.hpp"

#include <algorithm>
#include <cassert>

namespace dtn::core {

MiMatrix::MiMatrix(NodeIdx n)
    : n_(n), data_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), kUnknown),
      row_times_(static_cast<std::size_t>(n), -std::numeric_limits<double>::infinity()),
      row_versions_(static_cast<std::size_t>(n), 0) {
  for (NodeIdx i = 0; i < n_; ++i) {
    data_[static_cast<std::size_t>(i) * n_ + static_cast<std::size_t>(i)] = 0.0;
  }
}

void MiMatrix::reset() {
  std::fill(data_.begin(), data_.end(), kUnknown);
  for (NodeIdx i = 0; i < n_; ++i) {
    data_[static_cast<std::size_t>(i) * n_ + static_cast<std::size_t>(i)] = 0.0;
  }
  std::fill(row_times_.begin(), row_times_.end(),
            -std::numeric_limits<double>::infinity());
  std::fill(row_versions_.begin(), row_versions_.end(), 0);
  version_ = 0;
}

double MiMatrix::get(NodeIdx i, NodeIdx j) const {
  assert(i >= 0 && i < n_ && j >= 0 && j < n_);
  return data_[static_cast<std::size_t>(i) * n_ + static_cast<std::size_t>(j)];
}

void MiMatrix::set_entry(NodeIdx i, NodeIdx j, double avg_interval, double t) {
  assert(i >= 0 && i < n_ && j >= 0 && j < n_);
  if (i == j) return;  // diagonal fixed at 0
  data_[static_cast<std::size_t>(i) * n_ + static_cast<std::size_t>(j)] = avg_interval;
  row_times_[static_cast<std::size_t>(i)] =
      std::max(row_times_[static_cast<std::size_t>(i)], t);
  ++row_versions_[static_cast<std::size_t>(i)];
  ++version_;
}

int MiMatrix::merge_from(const MiMatrix& other) {
  assert(other.n_ == n_);
  int copied = 0;
  for (NodeIdx i = 0; i < n_; ++i) {
    const auto row = static_cast<std::size_t>(i);
    if (other.row_times_[row] > row_times_[row]) {
      const std::size_t begin = row * static_cast<std::size_t>(n_);
      std::copy_n(other.data_.begin() + static_cast<std::ptrdiff_t>(begin),
                  static_cast<std::size_t>(n_),
                  data_.begin() + static_cast<std::ptrdiff_t>(begin));
      row_times_[row] = other.row_times_[row];
      ++row_versions_[row];
      ++copied;
    }
  }
  if (copied > 0) ++version_;
  return copied;
}

}  // namespace dtn::core
