#include "core/community_detection.hpp"

#include <algorithm>
#include <numeric>

namespace dtn::core {

std::uint64_t ContactCountGraph::key(NodeIdx a, NodeIdx b) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

void ContactCountGraph::record(NodeIdx a, NodeIdx b, int count) {
  if (a == b) return;
  counts_[key(a, b)] += count;
}

int ContactCountGraph::count(NodeIdx a, NodeIdx b) const {
  const auto it = counts_.find(key(a, b));
  return it == counts_.end() ? 0 : it->second;
}

namespace {

/// Union-find with path compression (communities are component labels).
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

CommunityTable detect_communities(const ContactCountGraph& graph,
                                  const DetectionParams& params) {
  const NodeIdx n = graph.node_count();
  DisjointSet ds(static_cast<std::size_t>(n));
  for (NodeIdx a = 0; a < n; ++a) {
    for (NodeIdx b = a + 1; b < n; ++b) {
      if (graph.count(a, b) >= params.familiar_threshold) {
        ds.unite(static_cast<std::size_t>(a), static_cast<std::size_t>(b));
      }
    }
  }
  // Dense community ids in order of first (smallest) member.
  std::vector<int> cid(static_cast<std::size_t>(n), -1);
  std::unordered_map<std::size_t, int> root_to_cid;
  int next = 0;
  for (NodeIdx v = 0; v < n; ++v) {
    const std::size_t root = ds.find(static_cast<std::size_t>(v));
    const auto [it, inserted] = root_to_cid.emplace(root, next);
    if (inserted) ++next;
    cid[static_cast<std::size_t>(v)] = it->second;
  }
  return CommunityTable(std::move(cid));
}

CommunityDetector::CommunityDetector(NodeIdx self, DetectionParams params)
    : self_(self), params_(params) {
  community_.insert(self_);
}

void CommunityDetector::record_contact(NodeIdx peer) {
  if (peer == self_) return;
  const int count = ++contact_counts_[peer];
  if (count >= params_.familiar_threshold) {
    familiar_.insert(peer);
    community_.insert(peer);  // familiar peers are community members
  }
}

void CommunityDetector::merge_on_contact(const CommunityDetector& peer) {
  if (peer.self_ == self_) return;
  // SIMPLE admission: |F_peer ∩ C_self| / |F_peer| > merge_ratio.
  const auto& peer_familiar = peer.familiar_set();
  if (!peer_familiar.empty() && community_.count(peer.self_) == 0) {
    std::size_t overlap = 0;
    for (const NodeIdx v : peer_familiar) {
      if (community_.count(v) > 0) ++overlap;
    }
    if (static_cast<double>(overlap) / static_cast<double>(peer_familiar.size()) >
        params_.merge_ratio) {
      community_.insert(peer.self_);
    }
  }
  // Community merge: once the peer is a member, absorb its community.
  if (community_.count(peer.self_) > 0) {
    community_.insert(peer.community_.begin(), peer.community_.end());
  }
}

}  // namespace dtn::core
