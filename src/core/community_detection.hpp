// Community construction (the paper's future work #2: "design the
// distributed community construction method in the CR").
//
// Two methods, both built on pairwise contact counts:
//
//  * detect_communities(...) — offline: threshold the contact-count graph
//    at `familiar_threshold` contacts and take connected components (the
//    "familiar set" construction of Hui & Crowcroft's SIMPLE, evaluated
//    globally). Produces the CommunityTable CR consumes.
//
//  * CommunityDetector — online / distributed: each node maintains its
//    familiar set (peers with >= familiar_threshold contacts) and a local
//    community; on contact, a peer joins the local community when the
//    overlap between the peer's familiar set and the local community
//    exceeds merge_ratio of the peer's familiar set (SIMPLE's admission
//    rule), after which their communities merge.
//
// The offline method is what the CR-with-detected-communities ablation
// (bench/ablation_communities) uses; the online detector demonstrates the
// distributed protocol and is unit-tested for agreement with the offline
// result on well-separated contact graphs.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/community.hpp"

namespace dtn::core {

/// Symmetric pairwise contact counter (node ids dense in [0, n)).
class ContactCountGraph {
 public:
  explicit ContactCountGraph(NodeIdx n) : n_(n) {}

  void record(NodeIdx a, NodeIdx b, int count = 1);
  [[nodiscard]] int count(NodeIdx a, NodeIdx b) const;
  [[nodiscard]] NodeIdx node_count() const noexcept { return n_; }

 private:
  static std::uint64_t key(NodeIdx a, NodeIdx b);
  NodeIdx n_;
  std::unordered_map<std::uint64_t, int> counts_;
};

struct DetectionParams {
  int familiar_threshold = 3;  ///< contacts needed to become "familiar"
  double merge_ratio = 0.5;    ///< SIMPLE admission ratio (online detector)
};

/// Offline detection: connected components of the familiar graph. Isolated
/// nodes each get their own singleton community. Community ids are dense,
/// ordered by smallest member id.
CommunityTable detect_communities(const ContactCountGraph& graph,
                                  const DetectionParams& params);

/// Online distributed detector (one instance per node).
class CommunityDetector {
 public:
  CommunityDetector(NodeIdx self, DetectionParams params);

  /// Records one contact with `peer`; updates the familiar set.
  void record_contact(NodeIdx peer);

  /// SIMPLE merge step, run when meeting `peer` (after record_contact).
  /// Reads the peer's familiar set and community; may admit the peer and
  /// absorb its community members.
  void merge_on_contact(const CommunityDetector& peer);

  [[nodiscard]] NodeIdx self() const noexcept { return self_; }
  [[nodiscard]] const std::set<NodeIdx>& familiar_set() const noexcept {
    return familiar_;
  }
  [[nodiscard]] const std::set<NodeIdx>& local_community() const noexcept {
    return community_;
  }
  [[nodiscard]] bool is_familiar(NodeIdx peer) const { return familiar_.count(peer) > 0; }

 private:
  NodeIdx self_;
  DetectionParams params_;
  std::unordered_map<NodeIdx, int> contact_counts_;
  std::set<NodeIdx> familiar_;
  std::set<NodeIdx> community_;  ///< always contains self_
};

}  // namespace dtn::core
