// Campaign-throughput benchmark: the perf trajectory for the experiment
// EXECUTION layer (harness::run_sweep), complementing bench_world_step's
// single-run kernel numbers. One binary A/B-times the same
// (protocol x node-count x seed) screening campaign through:
//   legacy — the pre-PR3 stack: throwaway ThreadPool per sweep, one heap
//            task + future per run, fresh World per run, per-object
//            virtual movement (WorldConfig::legacy_movement_path), mutex-
//            serialized merge;
//   reused — the current stack: persistent shared pool with chunked
//            atomic-counter dispatch, one reusable World per worker
//            (World::reset capacity retention), SoA batched-RNG movement,
//            per-task samples folded deterministically after the loop.
// Both sides must produce bit-identical sweep aggregates (cross-checked
// fatally) — the speedup is pure execution-layer engineering.
//
// A second section measures the cross-seed reuse contract directly:
// heap allocations per seed for a World::reseed()-driven campaign vs
// building a fresh World per seed (same workload, same step counts).
//
// A third section times the hub-load matrix campaign: a spec-driven sweep
// whose workload engages the multi-schedule traffic generator (per-group
// matrix entries + on-off profile), with a fatal bit-identical replay
// cross-check between executions.
//
// Results land in BENCH_sweep.json (committed at the repo root).
//
// Flags: --trials N (A/B repetitions, default 3; best-of wins),
//        --seeds N (seeds per grid point, default 6),
//        --duration S (simulated seconds per run, default 600),
//        --out PATH (default BENCH_sweep.json),
//        --smoke (tiny campaign for CI: bench_smoke runs
//                 `bench_sweep --smoke`).
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "mobility/random_waypoint.hpp"
#include "routing/epidemic.hpp"
#include "sim/world.hpp"
#include "util/flags.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
bool g_count_allocs = false;

}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs) g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dtn::bench {

/// The screening campaign: cheap-to-moderate protocols over small bus
/// worlds with short runs — the shape of ablation grids and CI suites,
/// where per-run setup and movement dominate and campaign throughput (not
/// single-run latency) is the metric that matters.
harness::SweepOptions campaign(bool smoke, int seeds, double duration_s) {
  harness::SweepOptions opt;
  opt.protocols = smoke ? std::vector<std::string>{"Epidemic", "SprayAndWait"}
                        : std::vector<std::string>{"Epidemic", "SprayAndWait",
                                                   "DirectDelivery"};
  opt.node_counts = smoke ? std::vector<int>{24} : std::vector<int>{40, 80};
  opt.seeds = smoke ? 2 : seeds;
  opt.seed_base = 1000;
  // threads = 1: per-core campaign throughput, and it keeps the legacy
  // mutex-merge accumulation in task order so aggregates are comparable
  // bit for bit (multi-threaded legacy merges in completion order).
  opt.threads = 1;
  opt.base.duration_s = smoke ? 200.0 : duration_s;
  opt.base.node_count = 0;  // overlaid per point
  opt.base.map.rows = 6;
  opt.base.map.cols = 8;
  opt.base.map.districts = 2;
  opt.base.map.routes_per_district = 2;
  opt.base.traffic.ttl = smoke ? 100.0 : 150.0;
  opt.base.traffic.interval_min = 10.0;
  opt.base.traffic.interval_max = 20.0;
  return opt;
}

/// The hub-load campaign: the matrix-workload shape (commuter -> hub flows
/// gated by an on-off profile, heterogeneous per-group protocols) swept
/// over fleet size through the declarative spec-sweep engine — measures
/// campaign throughput with the multi-schedule traffic generator engaged.
harness::SpecSweepOptions hub_campaign(bool smoke, int seeds, double duration_s) {
  harness::SpecSweepOptions opt;
  harness::ScenarioSpec& spec = opt.base;
  spec.name = "hub_load";
  spec.duration_s = smoke ? 200.0 : duration_s;
  spec.map.kind = "open_field";
  spec.map.params.width = 900.0;
  spec.map.params.height = 900.0;

  harness::GroupSpec commuters;
  commuters.name = "commuters";
  commuters.model = "community";
  commuters.count = 12;  // overlaid per point
  commuters.params.community.home_prob = 0.85;
  spec.groups.push_back(std::move(commuters));
  harness::GroupSpec hub;
  hub.name = "hub";
  hub.model = "stationary";
  hub.count = 4;
  hub.protocol = "Epidemic";
  hub.params.stationary.margin = 250.0;
  spec.groups.push_back(std::move(hub));

  spec.world.radio_range = 60.0;
  spec.protocol.name = "SprayAndWait";
  spec.protocol.copies = 6;
  spec.traffic.ttl = smoke ? 100.0 : 150.0;
  spec.traffic.profile = sim::TrafficProfile::kOnOff;
  spec.traffic.on_s = 90.0;
  spec.traffic.off_s = 60.0;
  spec.traffic_matrix = {
      harness::TrafficEntrySpec{"commuters", "hub", 10.0, 20.0, 25 * 1024, 3.0},
      harness::TrafficEntrySpec{"commuters", "commuters", 20.0, 40.0, 10240, 1.0}};

  opt.axes = {harness::SweepAxis{
      "group.commuters.count",
      smoke ? std::vector<std::string>{"12"} : std::vector<std::string>{"20", "40"}}};
  opt.seeds = smoke ? 2 : seeds;
  opt.seed_base = 1000;
  opt.threads = 1;
  return opt;
}

bool identical_spec_aggregates(const std::vector<harness::SpecPointResult>& a,
                               const std::vector<harness::SpecPointResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].overrides != b[i].overrides) return false;
    for (const auto metric :
         {harness::Metric::kDeliveryRatio, harness::Metric::kLatency,
          harness::Metric::kGoodput, harness::Metric::kControlMb,
          harness::Metric::kRelayed}) {
      if (harness::metric_value(a[i].result, metric) !=
          harness::metric_value(b[i].result, metric)) {
        return false;
      }
    }
    if (a[i].result.contacts.mean() != b[i].result.contacts.mean()) return false;
  }
  return true;
}

double run_campaign(const harness::SweepOptions& opt,
                    std::vector<harness::PointResult>& results) {
  const auto t0 = std::chrono::steady_clock::now();
  results = harness::run_sweep(opt);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

bool identical_aggregates(const std::vector<harness::PointResult>& a,
                          const std::vector<harness::PointResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].protocol != b[i].protocol || a[i].node_count != b[i].node_count ||
        a[i].delivery_ratio.count() != b[i].delivery_ratio.count()) {
      return false;
    }
    for (const auto metric :
         {harness::Metric::kDeliveryRatio, harness::Metric::kLatency,
          harness::Metric::kGoodput, harness::Metric::kControlMb,
          harness::Metric::kRelayed}) {
      if (harness::metric_value(a[i], metric) != harness::metric_value(b[i], metric)) {
        return false;
      }
    }
    if (a[i].contacts.mean() != b[i].contacts.mean()) return false;
  }
  return true;
}

/// Allocation cost of one additional seed, reused world vs fresh world.
/// Workload: random waypoint + epidemic + paper traffic (the bench_world_step
/// shape), small enough that the A/B below stays seconds-fast.
struct SeedAllocResult {
  double reused_allocs_per_seed = 0.0;
  double fresh_allocs_per_seed = 0.0;
};

std::unique_ptr<sim::World> build_alloc_world(int nodes, std::uint64_t seed) {
  sim::WorldConfig config;
  config.seed = seed;
  auto world = std::make_unique<sim::World>(config);
  mobility::RandomWaypointParams move;
  move.world_min = {0.0, 0.0};
  const double side = std::sqrt(120.0 * nodes);
  move.world_max = {side, side};
  move.speed_min = 2.0;
  move.speed_max = 14.0;
  for (int i = 0; i < nodes; ++i) {
    world->add_node(move, std::make_unique<routing::EpidemicRouter>());
  }
  sim::TrafficParams traffic;
  world->set_traffic(traffic);
  return world;
}

SeedAllocResult seed_alloc_ab(int nodes, int steps, int seeds) {
  SeedAllocResult result;
  {
    // Reused: one world, reseed per seed. One warm seed first so retained
    // capacity is at its high-water mark (the campaign steady state).
    auto world = build_alloc_world(nodes, 100);
    for (int i = 0; i < steps; ++i) world->step();
    world->reseed(101);
    for (int i = 0; i < steps; ++i) world->step();
    g_allocs.store(0);
    g_count_allocs = true;
    for (int s = 0; s < seeds; ++s) {
      world->reseed(102 + static_cast<std::uint64_t>(s));
      for (int i = 0; i < steps; ++i) world->step();
    }
    g_count_allocs = false;
    result.reused_allocs_per_seed =
        static_cast<double>(g_allocs.load()) / seeds;
  }
  {
    // Fresh: a new world per seed (the pre-PR3 cost).
    g_allocs.store(0);
    g_count_allocs = true;
    for (int s = 0; s < seeds; ++s) {
      auto world = build_alloc_world(nodes, 102 + static_cast<std::uint64_t>(s));
      for (int i = 0; i < steps; ++i) world->step();
    }
    g_count_allocs = false;
    result.fresh_allocs_per_seed = static_cast<double>(g_allocs.load()) / seeds;
  }
  return result;
}

}  // namespace dtn::bench

int main(int argc, char** argv) {
  using namespace dtn;
  const util::Flags flags = util::Flags::parse(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const int trials = static_cast<int>(flags.get_int("trials", smoke ? 1 : 3));
  const int seeds = static_cast<int>(flags.get_int("seeds", 6));
  const double duration = flags.get_double("duration", 600.0);
  const std::string out_path = flags.get_string("out", "BENCH_sweep.json");
  if (trials < 1 || seeds < 1 || !(duration > 0.0)) {
    std::fprintf(stderr,
                 "bench_sweep: --trials >= 1, --seeds >= 1, --duration > 0 required\n");
    return 2;
  }

  harness::SweepOptions reused_opt = bench::campaign(smoke, seeds, duration);
  harness::SweepOptions legacy_opt = reused_opt;
  // The full pre-PR3 stack: old execution engine + per-object virtual
  // movement + full-storage pair sweep (each flag keeps the predecessor
  // implementation alive in this binary; observable behavior is identical
  // on every axis, enforced by the aggregate cross-check below).
  legacy_opt.exec = harness::SweepOptions::Exec::kLegacy;
  legacy_opt.base.world.legacy_movement_path = true;
  legacy_opt.base.world.legacy_pair_sweep = true;

  const std::size_t runs = reused_opt.protocols.size() *
                           reused_opt.node_counts.size() *
                           static_cast<std::size_t>(reused_opt.seeds);
  const std::size_t points =
      reused_opt.protocols.size() * reused_opt.node_counts.size();
  std::printf("campaign: %zu points x %d seeds = %zu runs, %.0f s sim each\n",
              points, reused_opt.seeds, runs, reused_opt.base.duration_s);
  std::fflush(stdout);

  // Interleaved A/B trials (shared-vCPU hosts drift over minutes); the
  // best segment of each side wins.
  double legacy_best = 1e300;
  double reused_best = 1e300;
  std::vector<harness::PointResult> legacy_results;
  std::vector<harness::PointResult> reused_results;
  for (int t = 0; t < trials; ++t) {
    legacy_best = std::min(legacy_best, bench::run_campaign(legacy_opt, legacy_results));
    reused_best = std::min(reused_best, bench::run_campaign(reused_opt, reused_results));
  }
  if (!bench::identical_aggregates(legacy_results, reused_results)) {
    std::fprintf(stderr,
                 "FATAL: legacy and reused sweep aggregates diverged — the "
                 "execution engines are not observably equivalent\n");
    return 1;
  }
  const double legacy_rps = static_cast<double>(runs) / legacy_best;
  const double reused_rps = static_cast<double>(runs) / reused_best;
  const double speedup = reused_rps / legacy_rps;
  std::printf(
      "legacy  %7.2f runs/s (%6.2f points/s)\nreused  %7.2f runs/s "
      "(%6.2f points/s)\nspeedup %.2fx | aggregates bit-identical\n",
      legacy_rps, static_cast<double>(points) / legacy_best, reused_rps,
      static_cast<double>(points) / reused_best, speedup);
  std::fflush(stdout);

  // Cross-seed allocation contract.
  const int alloc_nodes = smoke ? 60 : 120;
  const int alloc_steps = smoke ? 1500 : 4000;
  const int alloc_seeds = smoke ? 2 : 4;
  const bench::SeedAllocResult alloc =
      bench::seed_alloc_ab(alloc_nodes, alloc_steps, alloc_seeds);
  const double reused_allocs_per_step =
      alloc.reused_allocs_per_seed / alloc_steps;
  std::printf("allocs/seed (n=%d, %d steps): reused %.1f (%.4f/step), fresh %.0f\n",
              alloc_nodes, alloc_steps, alloc.reused_allocs_per_seed,
              reused_allocs_per_step, alloc.fresh_allocs_per_seed);
  std::fflush(stdout);

  // Hub-load matrix campaign: spec-sweep throughput with the multi-
  // schedule workload generator (matrix entries + on-off profile +
  // per-group protocols), cross-checked for bit-identical replay.
  const harness::SpecSweepOptions hub_opt = bench::hub_campaign(smoke, seeds, duration);
  const std::size_t hub_points = hub_opt.axes[0].values.size();
  const std::size_t hub_runs = hub_points * static_cast<std::size_t>(hub_opt.seeds);
  double hub_best = 1e300;
  std::vector<harness::SpecPointResult> hub_first;
  std::vector<harness::SpecPointResult> hub_again;
  for (int t = 0; t < trials + 1; ++t) {  // >= 2 executions for the replay check
    const auto h0 = std::chrono::steady_clock::now();
    auto results = harness::run_spec_sweep(hub_opt);
    const auto h1 = std::chrono::steady_clock::now();
    hub_best = std::min(hub_best, std::chrono::duration<double>(h1 - h0).count());
    if (t == 0) {
      hub_first = std::move(results);
    } else {
      hub_again = std::move(results);
    }
  }
  if (!bench::identical_spec_aggregates(hub_first, hub_again)) {
    std::fprintf(stderr,
                 "FATAL: hub-load campaign aggregates diverged between "
                 "executions — the matrix workload is not deterministic\n");
    return 1;
  }
  const double hub_rps = static_cast<double>(hub_runs) / hub_best;
  const double hub_pps = static_cast<double>(hub_points) / hub_best;
  std::printf("hub-load %6.2f runs/s (%6.2f points/s) | replay bit-identical\n",
              hub_rps, hub_pps);
  std::fflush(stdout);

  char buf[4096];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"sweep\",\n"
      "  \"campaign\": \"bus-map screening sweep: %zu protocols x %zu node "
      "counts x %d seeds, %.0f s sim/run, threads=1\",\n"
      "  \"runs\": %zu, \"trials\": %d,\n"
      "  \"legacy_runs_per_sec\": %.3f,\n"
      "  \"reused_runs_per_sec\": %.3f,\n"
      "  \"legacy_points_per_sec\": %.3f,\n"
      "  \"reused_points_per_sec\": %.3f,\n"
      "  \"speedup\": %.2f,\n"
      "  \"aggregates_identical\": true,\n"
      "  \"allocs_per_reused_seed\": {\"nodes\": %d, \"steps\": %d, "
      "\"reused\": %.1f, \"reused_per_step\": %.4f, \"fresh\": %.0f},\n"
      "  \"hub_load\": {\"campaign\": \"matrix+onoff commuter->hub spec sweep "
      "over group.commuters.count, threads=1\", \"runs\": %zu,\n"
      "    \"hub_runs_per_sec\": %.3f, \"hub_points_per_sec\": %.3f, "
      "\"replay_identical\": true}\n"
      "}\n",
      reused_opt.protocols.size(), reused_opt.node_counts.size(),
      reused_opt.seeds, reused_opt.base.duration_s, runs, trials, legacy_rps,
      reused_rps, static_cast<double>(points) / legacy_best,
      static_cast<double>(points) / reused_best, speedup, alloc_nodes, alloc_steps,
      alloc.reused_allocs_per_seed, reused_allocs_per_step,
      alloc.fresh_allocs_per_seed, hub_runs, hub_rps, hub_pps);

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(buf, f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
