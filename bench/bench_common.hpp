// Shared scaffolding for the figure benchmarks.
//
// Every bench binary reproduces one figure of the paper: it runs the
// corresponding (protocol × parameter × node-count) grid through the bus
// scenario, registers one google-benchmark per grid point (iterations =
// seeds, counters = the paper's metrics averaged across seeds), and prints
// the figure's series as aligned tables after the run.
//
// Since the ScenarioSpec redesign a grid point is a base spec plus
// `key = value` overrides (the same vocabulary as scenario files, dtnsim
// --set, and sweep axes) — the per-figure binaries contain NO world-
// building code, only their axis values.
//
// Scale knobs (environment):
//   DTN_BENCH_SEEDS     seeds per point            (default 2)
//   DTN_BENCH_DURATION  simulated seconds per run  (default 4000)
//   DTN_BENCH_NODES_MAX largest node count         (default 240)
//   DTN_BENCH_FULL=1    paper scale: 10 seeds, 10000 s
// The paper uses 10 seeds × 10000 s; the defaults keep a full bench run
// laptop-sized while preserving the figures' shape (see EXPERIMENTS.md).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/spec_io.hpp"
#include "harness/sweep.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace dtn::bench {

struct BenchScale {
  int seeds = 2;
  double duration_s = 3000.0;
  std::vector<int> node_counts{40, 80, 120, 160, 200, 240};
};

inline BenchScale bench_scale() {
  BenchScale s;
  if (util::env_int("DTN_BENCH_FULL", 0) == 1) {
    s.seeds = 10;
    s.duration_s = 10000.0;
  }
  s.seeds = static_cast<int>(util::env_int("DTN_BENCH_SEEDS", s.seeds));
  s.duration_s = static_cast<double>(
      util::env_int("DTN_BENCH_DURATION", static_cast<std::int64_t>(s.duration_s)));
  const auto max_nodes = util::env_int("DTN_BENCH_NODES_MAX", 240);
  std::vector<int> counts;
  for (const int n : s.node_counts) {
    if (n <= max_nodes) counts.push_back(n);
  }
  if (!counts.empty()) s.node_counts = counts;
  return s;
}

/// Paper-default bus scenario (Sec. V-A) at the bench scale, as a spec.
inline harness::ScenarioSpec paper_spec(const BenchScale& scale) {
  harness::BusScenarioParams p;  // WorldConfig / TrafficParams defaults are the paper's
  p.duration_s = scale.duration_s;
  return harness::to_spec(p);
}

/// Accumulates per-point results so the figure tables can be printed after
/// all benchmarks ran.
class FigureCollector {
 public:
  void add(const harness::PointResult& point, const std::string& series) {
    points_.push_back({series, point});
  }

  /// Prints rows = node counts, columns = series, one table per metric.
  void print(const std::string& figure, const std::string& caption) const {
    std::printf("\n=== %s: %s ===\n", figure.c_str(), caption.c_str());
    for (const auto metric : {harness::Metric::kDeliveryRatio, harness::Metric::kLatency,
                              harness::Metric::kGoodput, harness::Metric::kControlMb}) {
      std::vector<std::string> series_names;
      std::vector<int> node_counts;
      for (const auto& [series, point] : points_) {
        if (std::find(series_names.begin(), series_names.end(), series) ==
            series_names.end()) {
          series_names.push_back(series);
        }
        if (std::find(node_counts.begin(), node_counts.end(), point.node_count) ==
            node_counts.end()) {
          node_counts.push_back(point.node_count);
        }
      }
      std::vector<std::string> headers{"nodes"};
      for (const auto& s : series_names) headers.push_back(s);
      util::TablePrinter table(std::move(headers));
      for (const int n : node_counts) {
        table.new_row().add_cell(static_cast<long long>(n));
        for (const auto& s : series_names) {
          bool found = false;
          for (const auto& [series, point] : points_) {
            if (series == s && point.node_count == n) {
              table.add_cell(harness::metric_value(point, metric),
                             metric == harness::Metric::kLatency ? 1 : 4);
              found = true;
              break;
            }
          }
          if (!found) table.add_cell(std::string("-"));
        }
      }
      std::printf("\n--- %s ---\n%s", harness::metric_name(metric).c_str(),
                  table.to_string().c_str());
    }
    std::fflush(stdout);
  }

 private:
  std::vector<std::pair<std::string, harness::PointResult>> points_;
};

/// The binary-wide reusable scenario executor: every grid point of every
/// registered benchmark runs through ONE warm World (capacity retained
/// across protocols, node counts, and seeds — results are bit-identical to
/// fresh worlds per the World::reset contract).
inline harness::ScenarioRunner& point_runner() {
  static harness::ScenarioRunner runner;
  return runner;
}

/// Runs one simulation per benchmark iteration (= per seed) of `spec`
/// (overrides already applied) and records the averaged metrics both as
/// benchmark counters and into `collector`.
inline void run_point_benchmark(benchmark::State& state, harness::ScenarioSpec spec,
                                FigureCollector* collector, const std::string& series) {
  harness::PointResult point;
  point.protocol = spec.protocol.name;
  point.node_count = spec.node_count();
  point.copies = spec.protocol.copies;
  point.alpha = spec.protocol.alpha;
  std::uint64_t seed = 1000;
  for (auto _ : state) {
    spec.seed = seed++;
    const harness::ScenarioResult r = point_runner().run(spec);
    point.delivery_ratio.add(r.metrics.delivery_ratio());
    point.latency.add(r.metrics.latency_mean());
    point.goodput.add(r.metrics.goodput());
    point.control_mb.add(static_cast<double>(r.metrics.control_bytes()) / 1e6);
    point.relayed.add(static_cast<double>(r.metrics.relayed()));
    point.contacts.add(static_cast<double>(r.contact_events));
  }
  state.counters["delivery_ratio"] = point.delivery_ratio.mean();
  state.counters["latency_s"] = point.latency.mean();
  state.counters["goodput"] = point.goodput.mean();
  state.counters["control_MB"] = point.control_mb.mean();
  if (collector != nullptr) collector->add(point, series);
}

}  // namespace dtn::bench
