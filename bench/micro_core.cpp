// Micro-benchmarks for the paper's estimator kernels and the simulator's
// hot paths: EEV / EMD / ENEC evaluation, MI row merging, MD + Dijkstra
// (MEMD), and spatial-grid contact detection. These are the per-contact
// costs that determine how large a network the protocols can run on.
#include <benchmark/benchmark.h>

#include "core/community.hpp"
#include "core/contact_history.hpp"
#include "core/dijkstra.hpp"
#include "core/estimators.hpp"
#include "core/md_builder.hpp"
#include "core/mi_matrix.hpp"
#include "geo/spatial_grid.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtn;

core::ContactHistory make_history(int peers, int contacts_per_peer,
                                  std::uint64_t seed = 7) {
  util::Pcg32 rng(seed, 1);
  core::ContactHistory h(32);
  for (int p = 1; p <= peers; ++p) {
    double t = 0.0;
    for (int k = 0; k < contacts_per_peer; ++k) {
      t += rng.uniform(10.0, 120.0);
      h.record_contact(p, t);
    }
  }
  return h;
}

void BM_EevEvaluation(benchmark::State& state) {
  const int peers = static_cast<int>(state.range(0));
  const core::ContactHistory h = make_history(peers, 24);
  double t = 4000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::expected_encounter_value(h, t, 336.0));
    t += 1.0;
  }
  state.SetItemsProcessed(state.iterations() * peers);
}
BENCHMARK(BM_EevEvaluation)->Arg(40)->Arg(120)->Arg(240);

void BM_EmdEvaluation(benchmark::State& state) {
  util::Pcg32 rng(3, 3);
  std::vector<double> window;
  for (int i = 0; i < 32; ++i) window.push_back(rng.uniform(10.0, 200.0));
  double elapsed = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::expected_meeting_delay(window, elapsed));
    elapsed = elapsed > 300.0 ? 0.0 : elapsed + 1.0;
  }
}
BENCHMARK(BM_EmdEvaluation);

void BM_EnecEvaluation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> cid(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) cid[static_cast<std::size_t>(v)] = v % 4;
  const core::CommunityTable table(cid);
  const core::ContactHistory h = make_history(n - 1, 24);
  double t = 4000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::expected_encountering_communities(h, table, 0, t, 336.0));
    t += 1.0;
  }
}
BENCHMARK(BM_EnecEvaluation)->Arg(40)->Arg(120)->Arg(240);

void BM_MiMerge(benchmark::State& state) {
  const auto n = static_cast<core::NodeIdx>(state.range(0));
  util::Pcg32 rng(11, 5);
  core::MiMatrix a(n);
  core::MiMatrix b(n);
  for (core::NodeIdx i = 0; i < n; ++i) {
    for (core::NodeIdx j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.3)) {
        a.set_entry(i, j, rng.uniform(10.0, 500.0), rng.uniform(0.0, 1000.0));
        b.set_entry(i, j, rng.uniform(10.0, 500.0), rng.uniform(0.0, 1000.0));
      }
    }
  }
  for (auto _ : state) {
    core::MiMatrix copy = a;
    benchmark::DoNotOptimize(copy.merge_from(b));
  }
}
BENCHMARK(BM_MiMerge)->Arg(40)->Arg(120)->Arg(240);

void BM_MemdRebuild(benchmark::State& state) {
  const auto n = static_cast<core::NodeIdx>(state.range(0));
  util::Pcg32 rng(13, 7);
  core::MiMatrix mi(n);
  for (core::NodeIdx i = 0; i < n; ++i) {
    for (core::NodeIdx j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.4)) {
        mi.set_entry(i, j, rng.uniform(10.0, 500.0), 1.0);
      }
    }
  }
  const core::ContactHistory h = make_history(n - 1, 24);
  core::MemdCache cache;
  double t = 4000.0;
  for (auto _ : state) {
    // Bump an entry so the cache must resync one row + rerun Dijkstra —
    // the steady-state per-contact cost.
    mi.set_entry(0, 1 + static_cast<core::NodeIdx>(state.iterations() % (n - 2)),
                 50.0, t);
    benchmark::DoNotOptimize(cache.memd(mi, h, 0, n - 1, t));
    t += 1.0;
  }
}
BENCHMARK(BM_MemdRebuild)->Arg(40)->Arg(120)->Arg(240);

void BM_DijkstraDense(benchmark::State& state) {
  const auto n = static_cast<core::NodeIdx>(state.range(0));
  util::Pcg32 rng(17, 9);
  std::vector<double> m(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                        std::numeric_limits<double>::infinity());
  for (core::NodeIdx i = 0; i < n; ++i) {
    m[static_cast<std::size_t>(i) * n + i] = 0.0;
    for (core::NodeIdx j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.4)) {
        m[static_cast<std::size_t>(i) * n + j] = rng.uniform(1.0, 100.0);
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::dijkstra_dense(m, n, 0));
  }
}
BENCHMARK(BM_DijkstraDense)->Arg(40)->Arg(120)->Arg(240);

void BM_SpatialGridStep(benchmark::State& state) {
  // One full contact-detection step: rebuild the grid + enumerate pairs.
  const int n = static_cast<int>(state.range(0));
  util::Pcg32 rng(19, 11);
  std::vector<geo::Vec2> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 4000.0), rng.uniform(0.0, 3000.0)});
  }
  geo::SpatialGrid grid(10.0);
  for (auto _ : state) {
    grid.clear();
    for (int i = 0; i < n; ++i) grid.insert(i, pts[static_cast<std::size_t>(i)]);
    benchmark::DoNotOptimize(grid.all_pairs(10.0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpatialGridStep)->Arg(40)->Arg(120)->Arg(240);

void BM_ContactHistoryRecord(benchmark::State& state) {
  core::ContactHistory h(32);
  util::Pcg32 rng(23, 13);
  double t = 0.0;
  for (auto _ : state) {
    t += rng.uniform(1.0, 50.0);
    h.record_contact(static_cast<core::NodeIdx>(rng.uniform_int(0, 239)), t);
  }
}
BENCHMARK(BM_ContactHistoryRecord);

}  // namespace

BENCHMARK_MAIN();
