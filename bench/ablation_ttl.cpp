// Ablation — message TTL. The paper fixes TTL = 20 min and omits the sweep;
// this bench reconstructs it. The TTL interacts with EER's core idea (the
// expected EV conditioned on α·TTL), so the gap between EER and the
// TTL-blind EBR should widen at short TTLs.
#include "bench_common.hpp"

namespace {

using dtn::bench::BenchScale;

struct Row {
  std::string protocol;
  double ttl;
  dtn::harness::PointResult point;
};
std::vector<Row> g_rows;

void register_benchmarks() {
  const BenchScale scale = dtn::bench::bench_scale();
  const int nodes =
      static_cast<int>(dtn::util::env_int("DTN_BENCH_ABLATION_NODES", 120));
  for (const std::string protocol : {"EER", "CR", "EBR", "SprayAndWait"}) {
    for (const double ttl : {600.0, 1200.0, 2400.0}) {
      const std::string name = "AblationTtl/" + protocol +
                               "/ttl:" + std::to_string(static_cast<int>(ttl));
      benchmark::RegisterBenchmark(
          name.c_str(),
          [protocol, ttl, nodes, scale](benchmark::State& state) {
            dtn::harness::ScenarioSpec spec = dtn::bench::paper_spec(scale);
            dtn::harness::apply_override(spec, "protocol.name", protocol);
            dtn::harness::apply_override(spec, "protocol.copies", "10");
            dtn::harness::apply_override(spec, "scenario.nodes", std::to_string(nodes));
            dtn::harness::apply_override(spec, "traffic.ttl", dtn::util::format_value(ttl));
            dtn::harness::PointResult point;
            std::uint64_t seed = 1000;
            for (auto _ : state) {
              spec.seed = seed++;
              const auto r = dtn::bench::point_runner().run(spec);
              point.delivery_ratio.add(r.metrics.delivery_ratio());
              point.latency.add(r.metrics.latency_mean());
              point.goodput.add(r.metrics.goodput());
            }
            state.counters["delivery_ratio"] = point.delivery_ratio.mean();
            state.counters["latency_s"] = point.latency.mean();
            state.counters["goodput"] = point.goodput.mean();
            g_rows.push_back({protocol, ttl, point});
          })
          ->Iterations(scale.seeds)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n=== Ablation: TTL sweep (paper fixes TTL = 1200 s) ===\n");
  dtn::util::TablePrinter table(
      {"protocol", "ttl_s", "delivery_ratio", "latency_s", "goodput"});
  for (const auto& row : g_rows) {
    table.new_row()
        .add_cell(row.protocol)
        .add_cell(row.ttl, 0)
        .add_cell(row.point.delivery_ratio.mean(), 4)
        .add_cell(row.point.latency.mean(), 1)
        .add_cell(row.point.goodput.mean(), 4);
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
