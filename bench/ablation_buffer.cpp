// Ablation — per-node buffer capacity. The paper fixes 1 MB buffers and
// omits the sweep; this bench reconstructs it. Replication-heavy protocols
// (MaxProp) should suffer most from small buffers; quota-based protocols
// degrade gracefully.
//
// Buffer pressure needs load: at the paper's ~1 message / 30 s a 1 MB
// buffer (40 packets) never fills at bench scale, so this bench raises the
// message rate ~5x (one message every 5-8 s) — enough for the replication
// protocols to hit eviction while the quota protocols stay comfortable.
#include "bench_common.hpp"

namespace {

using dtn::bench::BenchScale;

struct Row {
  std::string protocol;
  double buffer_mb;
  dtn::harness::PointResult point;
};
std::vector<Row> g_rows;

void register_benchmarks() {
  const BenchScale scale = dtn::bench::bench_scale();
  const int nodes =
      static_cast<int>(dtn::util::env_int("DTN_BENCH_ABLATION_NODES", 120));
  for (const std::string protocol : {"EER", "CR", "MaxProp", "SprayAndWait"}) {
    for (const double mb : {0.5, 1.0, 2.0, 4.0}) {
      const std::string name = "AblationBuffer/" + protocol +
                               "/MB:" + dtn::util::format_double(mb, 1);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [protocol, mb, nodes, scale](benchmark::State& state) {
            dtn::harness::ScenarioSpec spec = dtn::bench::paper_spec(scale);
            dtn::harness::apply_override(spec, "protocol.name", protocol);
            dtn::harness::apply_override(spec, "protocol.copies", "10");
            dtn::harness::apply_override(spec, "scenario.nodes", std::to_string(nodes));
            dtn::harness::apply_override(spec, "world.buffer_bytes",
                            std::to_string(static_cast<std::int64_t>(mb * 1024 * 1024)));
            dtn::harness::apply_override(spec, "traffic.interval_min", "5");  // ~5x the paper's load
            dtn::harness::apply_override(spec, "traffic.interval_max", "8");
            dtn::harness::PointResult point;
            std::uint64_t seed = 1000;
            for (auto _ : state) {
              spec.seed = seed++;
              const auto r = dtn::bench::point_runner().run(spec);
              point.delivery_ratio.add(r.metrics.delivery_ratio());
              point.latency.add(r.metrics.latency_mean());
              point.goodput.add(r.metrics.goodput());
            }
            state.counters["delivery_ratio"] = point.delivery_ratio.mean();
            state.counters["latency_s"] = point.latency.mean();
            state.counters["goodput"] = point.goodput.mean();
            g_rows.push_back({protocol, mb, point});
          })
          ->Iterations(scale.seeds)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n=== Ablation: buffer capacity sweep (paper fixes 1 MB) ===\n");
  dtn::util::TablePrinter table(
      {"protocol", "buffer_MB", "delivery_ratio", "latency_s", "goodput"});
  for (const auto& row : g_rows) {
    table.new_row()
        .add_cell(row.protocol)
        .add_cell(row.buffer_mb, 1)
        .add_cell(row.point.delivery_ratio.mean(), 4)
        .add_cell(row.point.latency.mean(), 1)
        .add_cell(row.point.goodput.mean(), 4);
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
