// Figure 3 — effect of the initial replica count λ ∈ {6, 8, 10, 12} on the
// EER protocol: delivery ratio (a), latency (b), goodput (c) vs node count
// (paper Sec. V-B).
#include "bench_common.hpp"

namespace {

using dtn::bench::BenchScale;
using dtn::bench::FigureCollector;

FigureCollector g_collector;

void register_benchmarks() {
  const BenchScale scale = dtn::bench::bench_scale();
  for (const int lambda : {6, 8, 10, 12}) {
    for (const int nodes : scale.node_counts) {
      const std::string name =
          "Fig3/EER/lambda:" + std::to_string(lambda) + "/nodes:" + std::to_string(nodes);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [lambda, nodes, scale](benchmark::State& state) {
            dtn::harness::BusScenarioParams base = dtn::bench::paper_scenario(scale);
            base.protocol.name = "EER";
            base.protocol.copies = lambda;
            base.node_count = nodes;
            dtn::bench::run_point_benchmark(state, base, &g_collector,
                                            "lambda=" + std::to_string(lambda));
          })
          ->Iterations(scale.seeds)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_collector.print("Figure 3", "EER under lambda in {6,8,10,12} (alpha=0.28)");
  return 0;
}
