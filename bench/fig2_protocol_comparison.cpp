// Figure 2 — performance comparison of EER and CR against EBR, MaxProp,
// Spray-and-Wait and Spray-and-Focus: delivery ratio (a), latency (b) and
// goodput (c) as the node count sweeps 40..240 (paper Sec. V-B, λ = 10,
// α = 0.28, TTL 20 min, 1 MB buffers, 25 KB packets).
#include "bench_common.hpp"

namespace {

using dtn::bench::BenchScale;
using dtn::bench::FigureCollector;

FigureCollector g_collector;

const std::vector<std::string>& lineup() {
  static const std::vector<std::string> protocols{
      "EER", "CR", "EBR", "MaxProp", "SprayAndWait", "SprayAndFocus"};
  return protocols;
}

void register_benchmarks() {
  const BenchScale scale = dtn::bench::bench_scale();
  for (const auto& protocol : lineup()) {
    for (const int nodes : scale.node_counts) {
      const std::string name = "Fig2/" + protocol + "/nodes:" + std::to_string(nodes);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [protocol, nodes, scale](benchmark::State& state) {
            dtn::harness::ScenarioSpec spec = dtn::bench::paper_spec(scale);
            dtn::harness::apply_override(spec, "protocol.name", protocol);
            dtn::harness::apply_override(spec, "protocol.copies", "10");  // λ = 10 (paper Sec. V-B)
            dtn::harness::apply_override(spec, "scenario.nodes", std::to_string(nodes));
            dtn::bench::run_point_benchmark(state, spec, &g_collector,
                                            protocol);
          })
          ->Iterations(scale.seeds)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_collector.print("Figure 2",
                    "EER/CR vs EBR, MaxProp, Spray-and-Wait, Spray-and-Focus "
                    "(lambda=10, alpha=0.28)");
  return 0;
}
