// World-step throughput benchmark: the perf trajectory for the simulation
// kernel. Runs the same random-waypoint + epidemic workload through the
// incremental contact-layer engine and through the seed's full-rescan
// algorithm (WorldConfig::legacy_contact_path) in one binary, and reports
// steps/sec and contact-events/sec at n in {100, 500, 2000} plus their
// speedup. Results land in BENCH_world_step.json (committed at the repo
// root) so successive PRs have a comparable perf history.
//
// The binary also verifies the engine's allocation contract: a global
// operator new counter measures heap allocations per step, after warm-up,
// on a traffic-free run where step() == move + detect_contacts. The
// incremental path must report ~0 (occasional spatial-grid cell creation
// when nodes roam into never-seen cells is the only residual source).
//
// Flags: --steps N (timed steps, default 1500), --warmup N (default 300),
//        --out PATH (default BENCH_world_step.json), --smoke (tiny sizes
//        for CI: bench_smoke runs `bench_world_step --steps 200 --smoke`).
#include <atomic>
#include <chrono>
#include <cmath>
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "mobility/random_waypoint.hpp"
#include "routing/epidemic.hpp"
#include "sim/world.hpp"
#include "util/flags.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
bool g_count_allocs = false;

}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs) g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dtn::bench {

struct RunResult {
  double steps_per_sec = 0.0;
  double contact_events_per_sec = 0.0;
  std::int64_t contact_events = 0;
};

/// Random-waypoint world at constant density (`area_per_node` m^2 per node,
/// 10 m radio range: a DTN with steady link churn). `with_traffic` adds the
/// paper's 25 KB message stream over epidemic routers so the contact layer
/// is exercised by real neighbor queries and transfers.
std::unique_ptr<sim::World> build_world(int nodes, bool legacy, bool with_traffic,
                                        double area_per_node) {
  sim::WorldConfig config;
  config.seed = 42;
  config.legacy_contact_path = legacy;
  auto world = std::make_unique<sim::World>(config);
  const double side = std::sqrt(area_per_node * nodes);
  mobility::RandomWaypointParams move;
  move.world_min = {0.0, 0.0};
  move.world_max = {side, side};
  move.speed_min = 2.0;
  move.speed_max = 14.0;
  for (int i = 0; i < nodes; ++i) {
    world->add_node(std::make_unique<mobility::RandomWaypoint>(move),
                    std::make_unique<routing::EpidemicRouter>());
  }
  if (with_traffic) {
    sim::TrafficParams traffic;  // paper defaults: 25 KB, TTL 1200 s
    world->set_traffic(traffic);
  }
  return world;
}

/// One timed segment of `steps` steps; returns wall seconds.
double time_segment(sim::World& world, int steps) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) world.step();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Benchmarks the legacy and incremental engines on identical worlds with
/// INTERLEAVED trial segments — the host is a shared vCPU whose speed
/// drifts over minutes, so back-to-back A/B segments see the same
/// conditions and best-of-`trials` filters scheduler noise. Both worlds
/// step the same schedule from the same seed, so their total contact-event
/// counts must match exactly (cross-checked by the caller).
std::pair<RunResult, RunResult> timed_ab_run(sim::World& legacy_world,
                                             sim::World& incr_world, int warmup,
                                             int steps, int trials) {
  for (int i = 0; i < warmup; ++i) legacy_world.step();
  for (int i = 0; i < warmup; ++i) incr_world.step();
  const std::int64_t legacy_before = legacy_world.contact_events();
  const std::int64_t incr_before = incr_world.contact_events();
  double legacy_best = 1e300;
  double incr_best = 1e300;
  std::int64_t legacy_best_events = 0;
  std::int64_t incr_best_events = 0;
  for (int t = 0; t < trials; ++t) {
    std::int64_t seg = legacy_world.contact_events();
    double secs = time_segment(legacy_world, steps);
    if (secs < legacy_best) {
      legacy_best = secs;
      legacy_best_events = legacy_world.contact_events() - seg;
    }
    seg = incr_world.contact_events();
    secs = time_segment(incr_world, steps);
    if (secs < incr_best) {
      incr_best = secs;
      incr_best_events = incr_world.contact_events() - seg;
    }
  }
  // Rates come from the best segment alone (time AND events of that same
  // segment) so steps_per_sec and contact_events_per_sec stay consistent.
  RunResult legacy;
  legacy.contact_events = legacy_world.contact_events() - legacy_before;
  legacy.steps_per_sec = steps / legacy_best;
  legacy.contact_events_per_sec = static_cast<double>(legacy_best_events) / legacy_best;
  RunResult incr;
  incr.contact_events = incr_world.contact_events() - incr_before;
  incr.steps_per_sec = steps / incr_best;
  incr.contact_events_per_sec = static_cast<double>(incr_best_events) / incr_best;
  return {legacy, incr};
}

/// Heap allocations per step, after warm-up, on a traffic-free world where
/// step() is exactly move_nodes + detect_contacts (+ no-op sweeps).
double allocs_per_step(int nodes, bool legacy, int warmup, int steps,
                       double area_per_node) {
  auto world = build_world(nodes, legacy, /*with_traffic=*/false, area_per_node);
  for (int i = 0; i < warmup; ++i) world->step();
  g_allocs.store(0);
  g_count_allocs = true;
  for (int i = 0; i < steps; ++i) world->step();
  g_count_allocs = false;
  return static_cast<double>(g_allocs.load()) / steps;
}

}  // namespace dtn::bench

int main(int argc, char** argv) {
  using namespace dtn;
  const util::Flags flags = util::Flags::parse(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const int steps = static_cast<int>(flags.get_int("steps", 1500));
  const int warmup = static_cast<int>(flags.get_int("warmup", smoke ? 50 : 300));
  const int trials = static_cast<int>(flags.get_int("trials", smoke ? 1 : 3));
  // 120 m^2/node with 10 m radio range gives a mean degree of ~2.6 — an
  // urban-DTN density where the contact layer carries real load.
  const double density = flags.get_double("density", 120.0);
  if (steps < 1 || warmup < 0 || trials < 1 || !(density > 0.0)) {
    std::fprintf(stderr,
                 "bench_world_step: --steps >= 1, --warmup >= 0, --trials >= 1 "
                 "and --density > 0 required\n");
    return 2;
  }
  const std::string out_path =
      flags.get_string("out", "BENCH_world_step.json");
  const std::vector<int> node_counts = smoke ? std::vector<int>{100, 500}
                                             : std::vector<int>{100, 500, 2000};

  std::string json = "{\n  \"bench\": \"world_step\",\n";
  {
    char wl[160];
    std::snprintf(wl, sizeof(wl),
                  "  \"workload\": \"random-waypoint @ %.0f m^2/node, 10 m range, "
                  "epidemic routers, paper traffic\",\n",
                  density);
    json += wl;
  }
  json += "  \"steps\": " + std::to_string(steps) +
          ", \"warmup\": " + std::to_string(warmup) +
          ", \"trials\": " + std::to_string(trials) + ",\n  \"points\": [\n";

  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const int n = node_counts[i];
    std::printf("n=%d ...\n", n);
    std::fflush(stdout);
    auto legacy_world = bench::build_world(n, /*legacy=*/true, /*with_traffic=*/true, density);
    auto incr_world = bench::build_world(n, /*legacy=*/false, /*with_traffic=*/true, density);
    const auto [legacy, incr] =
        bench::timed_ab_run(*legacy_world, *incr_world, warmup, steps, trials);
    if (incr.contact_events != legacy.contact_events) {
      std::fprintf(stderr,
                   "FATAL: contact-event mismatch at n=%d (legacy %lld, "
                   "incremental %lld) — the two paths diverged\n",
                   n, static_cast<long long>(legacy.contact_events),
                   static_cast<long long>(incr.contact_events));
      return 1;
    }
    const double speedup = incr.steps_per_sec / legacy.steps_per_sec;
    std::printf(
        "n=%-5d legacy %9.1f steps/s | incremental %9.1f steps/s | "
        "%.2fx | %.0f contact-events/s\n",
        n, legacy.steps_per_sec, incr.steps_per_sec, speedup,
        incr.contact_events_per_sec);
    std::fflush(stdout);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"nodes\": %d, \"legacy_steps_per_sec\": %.1f, "
                  "\"incremental_steps_per_sec\": %.1f, \"speedup\": %.2f, "
                  "\"contact_events_per_sec\": %.1f}%s\n",
                  n, legacy.steps_per_sec, incr.steps_per_sec, speedup,
                  incr.contact_events_per_sec,
                  i + 1 < node_counts.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";

  // Allocation contract: traffic-free steady state must not heap-allocate.
  // Warm-up must be long enough for the roaming nodes to have visited every
  // grid cell of the bounded arena, or first-visit cell creation shows up.
  const int alloc_nodes = smoke ? 200 : 1000;
  const int alloc_warmup = std::max(warmup, smoke ? 500 : 4000);
  const double incr_allocs =
      bench::allocs_per_step(alloc_nodes, /*legacy=*/false, alloc_warmup, steps, density);
  const double legacy_allocs =
      bench::allocs_per_step(alloc_nodes, /*legacy=*/true, alloc_warmup, steps, density);
  std::printf("allocs/step after warm-up (n=%d, no traffic): incremental %.4f, "
              "legacy %.1f\n",
              alloc_nodes, incr_allocs, legacy_allocs);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"allocs_per_step\": {\"nodes\": %d, \"incremental\": %.4f, "
                "\"legacy\": %.1f}\n}\n",
                alloc_nodes, incr_allocs, legacy_allocs);
  json += buf;

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
