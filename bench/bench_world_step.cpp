// World-step throughput benchmark: the perf trajectory for the simulation
// kernel. Runs the same random-waypoint + epidemic workload through the
// current engine and through the seed's algorithms — full-rescan contact
// detection (WorldConfig::legacy_contact_path) and the list+map message
// store (WorldConfig::legacy_buffer_path) — in one binary, and reports
// steps/sec and contact-events/sec at n in {100, 500, 2000} plus their
// speedup. Results land in BENCH_world_step.json (committed at the repo
// root) so successive PRs have a comparable perf history.
//
// A second, buffer-pressure workload isolates the message store: small
// buffers (a few packets) under dense traffic force constant insert /
// evict / scan churn, both worlds use the incremental contact engine, and
// only the store implementation differs (slab vs seed list+map). The two
// runs must produce identical metrics — the store swap is observably
// inert (also enforced by sim_buffer_equivalence_test).
//
// The binary also verifies the allocation contract: a global operator new
// counter measures heap allocations per step after warm-up, (a) on a
// traffic-free run where step() == move + detect_contacts, and (b) on the
// buffer-pressure workload where the store churns every step. The current
// engine must report ~0 for both (residuals: rare spatial-grid cell
// discovery and per-first-delivery metrics bookkeeping).
//
// A third, sparse-field workload times the kinetic event kernel
// (WorldConfig::event_kernel) against the fixed-dt loop it replaces: a
// large open field (50 000 m^2/node, 10 m range) where contacts are rare
// events and almost every fixed step is dead time. Both sides execute
// run() end to end from the same seed and must produce bit-identical
// metrics — the kernel's contract (also enforced by sim_event_kernel_test)
// — cross-checked FATALly before any number is reported.
//
// Flags: --steps N (timed steps, default 1500), --warmup N (default 300),
//        --out PATH (default BENCH_world_step.json), --smoke (tiny sizes
//        for CI: bench_smoke runs `bench_world_step --steps 200 --smoke`).
#include <atomic>
#include <chrono>
#include <cmath>
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "mobility/random_waypoint.hpp"
#include "routing/epidemic.hpp"
#include "sim/world.hpp"
#include "util/flags.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
bool g_count_allocs = false;

}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs) g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dtn::bench {

struct RunResult {
  double steps_per_sec = 0.0;
  double contact_events_per_sec = 0.0;
  std::int64_t contact_events = 0;
};

/// Extra knobs for the buffer-pressure workload; defaults reproduce the
/// original contact-layer workload (paper traffic, 1 MB buffers).
struct WorkloadTuning {
  std::int64_t buffer_bytes = 1 << 20;
  double traffic_interval_min = 25.0;
  double traffic_interval_max = 35.0;
  std::int64_t traffic_size_bytes = 25 * 1024;
};

/// Random-waypoint world at constant density (`area_per_node` m^2 per node,
/// 10 m radio range: a DTN with steady link churn). `with_traffic` adds the
/// paper's 25 KB message stream over epidemic routers so the contact layer
/// is exercised by real neighbor queries and transfers. `legacy_contact`
/// and `legacy_buffer` select the seed implementations independently so
/// each subsystem can be A/B-timed in isolation or together.
std::unique_ptr<sim::World> build_world(int nodes, bool legacy_contact,
                                        bool legacy_buffer, bool with_traffic,
                                        double area_per_node,
                                        const WorkloadTuning& tuning = {}) {
  sim::WorldConfig config;
  config.seed = 42;
  config.legacy_contact_path = legacy_contact;
  config.legacy_buffer_path = legacy_buffer;
  config.buffer_bytes = tuning.buffer_bytes;
  auto world = std::make_unique<sim::World>(config);
  const double side = std::sqrt(area_per_node * nodes);
  mobility::RandomWaypointParams move;
  move.world_min = {0.0, 0.0};
  move.world_max = {side, side};
  move.speed_min = 2.0;
  move.speed_max = 14.0;
  for (int i = 0; i < nodes; ++i) {
    world->add_node(std::make_unique<mobility::RandomWaypoint>(move),
                    std::make_unique<routing::EpidemicRouter>());
  }
  if (with_traffic) {
    sim::TrafficParams traffic;  // paper defaults: 25 KB, TTL 1200 s
    traffic.interval_min = tuning.traffic_interval_min;
    traffic.interval_max = tuning.traffic_interval_max;
    traffic.size_bytes = tuning.traffic_size_bytes;
    world->set_traffic(traffic);
  }
  return world;
}

/// One timed segment of `steps` steps; returns wall seconds.
double time_segment(sim::World& world, int steps) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) world.step();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Benchmarks the legacy and incremental engines on identical worlds with
/// INTERLEAVED trial segments — the host is a shared vCPU whose speed
/// drifts over minutes, so back-to-back A/B segments see the same
/// conditions and best-of-`trials` filters scheduler noise. Both worlds
/// step the same schedule from the same seed, so their total contact-event
/// counts must match exactly (cross-checked by the caller).
std::pair<RunResult, RunResult> timed_ab_run(sim::World& legacy_world,
                                             sim::World& incr_world, int warmup,
                                             int steps, int trials) {
  for (int i = 0; i < warmup; ++i) legacy_world.step();
  for (int i = 0; i < warmup; ++i) incr_world.step();
  const std::int64_t legacy_before = legacy_world.contact_events();
  const std::int64_t incr_before = incr_world.contact_events();
  double legacy_best = 1e300;
  double incr_best = 1e300;
  std::int64_t legacy_best_events = 0;
  std::int64_t incr_best_events = 0;
  for (int t = 0; t < trials; ++t) {
    std::int64_t seg = legacy_world.contact_events();
    double secs = time_segment(legacy_world, steps);
    if (secs < legacy_best) {
      legacy_best = secs;
      legacy_best_events = legacy_world.contact_events() - seg;
    }
    seg = incr_world.contact_events();
    secs = time_segment(incr_world, steps);
    if (secs < incr_best) {
      incr_best = secs;
      incr_best_events = incr_world.contact_events() - seg;
    }
  }
  // Rates come from the best segment alone (time AND events of that same
  // segment) so steps_per_sec and contact_events_per_sec stay consistent.
  RunResult legacy;
  legacy.contact_events = legacy_world.contact_events() - legacy_before;
  legacy.steps_per_sec = steps / legacy_best;
  legacy.contact_events_per_sec = static_cast<double>(legacy_best_events) / legacy_best;
  RunResult incr;
  incr.contact_events = incr_world.contact_events() - incr_before;
  incr.steps_per_sec = steps / incr_best;
  incr.contact_events_per_sec = static_cast<double>(incr_best_events) / incr_best;
  return {legacy, incr};
}

/// Sparse open-field world for the event-kernel A/B: random waypoint at
/// `area_per_node` m^2/node (orders of magnitude sparser than the contact
/// workload), paper traffic, epidemic routers. SoA registration keeps the
/// lanes closed-form so the kernel can engage.
std::unique_ptr<sim::World> build_sparse_world(int nodes, bool event_kernel,
                                               double area_per_node) {
  sim::WorldConfig config;
  config.seed = 42;
  config.event_kernel = event_kernel;
  auto world = std::make_unique<sim::World>(config);
  const double side = std::sqrt(area_per_node * nodes);
  mobility::RandomWaypointParams move;
  move.world_min = {0.0, 0.0};
  move.world_max = {side, side};
  move.speed_min = 2.0;
  move.speed_max = 14.0;
  for (int i = 0; i < nodes; ++i) {
    world->add_node(move, std::make_unique<routing::EpidemicRouter>());
  }
  sim::TrafficParams traffic;  // paper defaults: 25 KB, TTL 1200 s
  world->set_traffic(traffic);
  return world;
}

/// Times run(duration) end to end for both worlds (the kernel dispatches
/// inside run(), so calendar construction is part of the measured cost).
/// Trials are INTERLEAVED like timed_ab_run, with reseed(seed) restoring
/// bit-identical state between trials; returns {fixed_best, event_best}
/// wall seconds.
std::pair<double, double> timed_kernel_ab(sim::World& fixed_world,
                                          sim::World& event_world,
                                          double duration, int trials) {
  double fixed_best = 1e300;
  double event_best = 1e300;
  for (int t = 0; t < trials; ++t) {
    if (t > 0) {
      fixed_world.reseed(42);
      event_world.reseed(42);
    }
    auto t0 = std::chrono::steady_clock::now();
    fixed_world.run(duration);
    auto t1 = std::chrono::steady_clock::now();
    fixed_best = std::min(fixed_best, std::chrono::duration<double>(t1 - t0).count());
    t0 = std::chrono::steady_clock::now();
    event_world.run(duration);
    t1 = std::chrono::steady_clock::now();
    event_best = std::min(event_best, std::chrono::duration<double>(t1 - t0).count());
  }
  return {fixed_best, event_best};
}

/// Heap allocations per step, after warm-up. Traffic-free isolates the
/// contact layer (step() == move + detect_contacts); with traffic and
/// pressure tuning it measures the full transfer + store churn path.
double allocs_per_step(int nodes, bool legacy_contact, bool legacy_buffer,
                       bool with_traffic, int warmup, int steps,
                       double area_per_node, const WorkloadTuning& tuning = {}) {
  auto world = build_world(nodes, legacy_contact, legacy_buffer, with_traffic,
                           area_per_node, tuning);
  for (int i = 0; i < warmup; ++i) world->step();
  g_allocs.store(0);
  g_count_allocs = true;
  for (int i = 0; i < steps; ++i) world->step();
  g_count_allocs = false;
  return static_cast<double>(g_allocs.load()) / steps;
}

}  // namespace dtn::bench

int main(int argc, char** argv) {
  using namespace dtn;
  const util::Flags flags = util::Flags::parse(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const int steps = static_cast<int>(flags.get_int("steps", 1500));
  const int warmup = static_cast<int>(flags.get_int("warmup", smoke ? 50 : 300));
  const int trials = static_cast<int>(flags.get_int("trials", smoke ? 1 : 3));
  // 120 m^2/node with 10 m radio range gives a mean degree of ~2.6 — an
  // urban-DTN density where the contact layer carries real load.
  const double density = flags.get_double("density", 120.0);
  if (steps < 1 || warmup < 0 || trials < 1 || !(density > 0.0)) {
    std::fprintf(stderr,
                 "bench_world_step: --steps >= 1, --warmup >= 0, --trials >= 1 "
                 "and --density > 0 required\n");
    return 2;
  }
  const std::string out_path =
      flags.get_string("out", "BENCH_world_step.json");
  const std::vector<int> node_counts = smoke ? std::vector<int>{100, 500}
                                             : std::vector<int>{100, 500, 2000};

  std::string json = "{\n  \"bench\": \"world_step\",\n";
  {
    char wl[160];
    std::snprintf(wl, sizeof(wl),
                  "  \"workload\": \"random-waypoint @ %.0f m^2/node, 10 m range, "
                  "epidemic routers, paper traffic\",\n",
                  density);
    json += wl;
  }
  json += "  \"steps\": " + std::to_string(steps) +
          ", \"warmup\": " + std::to_string(warmup) +
          ", \"trials\": " + std::to_string(trials) + ",\n  \"points\": [\n";

  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const int n = node_counts[i];
    std::printf("n=%d ...\n", n);
    std::fflush(stdout);
    // Legacy = the seed's cost profile end to end: full-rescan contact
    // detection AND the list+map message store.
    auto legacy_world = bench::build_world(n, /*legacy_contact=*/true,
                                           /*legacy_buffer=*/true,
                                           /*with_traffic=*/true, density);
    auto incr_world = bench::build_world(n, /*legacy_contact=*/false,
                                         /*legacy_buffer=*/false,
                                         /*with_traffic=*/true, density);
    const auto [legacy, incr] =
        bench::timed_ab_run(*legacy_world, *incr_world, warmup, steps, trials);
    if (incr.contact_events != legacy.contact_events) {
      std::fprintf(stderr,
                   "FATAL: contact-event mismatch at n=%d (legacy %lld, "
                   "incremental %lld) — the two paths diverged\n",
                   n, static_cast<long long>(legacy.contact_events),
                   static_cast<long long>(incr.contact_events));
      return 1;
    }
    const double speedup = incr.steps_per_sec / legacy.steps_per_sec;
    std::printf(
        "n=%-5d legacy %9.1f steps/s | incremental %9.1f steps/s | "
        "%.2fx | %.0f contact-events/s\n",
        n, legacy.steps_per_sec, incr.steps_per_sec, speedup,
        incr.contact_events_per_sec);
    std::fflush(stdout);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"nodes\": %d, \"legacy_steps_per_sec\": %.1f, "
                  "\"incremental_steps_per_sec\": %.1f, \"speedup\": %.2f, "
                  "\"contact_events_per_sec\": %.1f}%s\n",
                  n, legacy.steps_per_sec, incr.steps_per_sec, speedup,
                  incr.contact_events_per_sec,
                  i + 1 < node_counts.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";

  // ---- buffer-pressure workload: isolate the message store ----
  // Small packets (2 KB, telemetry-style) under dense traffic saturate
  // every node's 1 MB buffer at ~512 stored copies, so each contact-up
  // walks a big store (the epidemic-family hot loop) and every admitted
  // copy evicts another (forced drops). Both worlds run the incremental
  // contact engine; only the store differs (slab vs seed list+map), so
  // the speedup is attributable to the Buffer rework alone. Both must
  // produce identical simulations — cross-checked below.
  bench::WorkloadTuning pressure;
  pressure.buffer_bytes = 1 << 20;  // 512 x 2 KB
  pressure.traffic_interval_min = 0.5;
  pressure.traffic_interval_max = 1.0;
  pressure.traffic_size_bytes = 2 * 1024;
  const int pressure_warmup = std::max(warmup, smoke ? 1500 : 5000);
  const std::vector<int> pressure_nodes = smoke ? std::vector<int>{100}
                                                : std::vector<int>{100, 500};
  json += "  \"buffer_pressure\": {\n"
          "    \"workload\": \"1 MB buffers saturated at ~512 x 2 KB packets "
          "(message every 0.5-1 s), forced drops; incremental contact engine "
          "on both sides\",\n    \"points\": [\n";
  for (std::size_t i = 0; i < pressure_nodes.size(); ++i) {
    const int n = pressure_nodes[i];
    std::printf("buffer pressure n=%d ...\n", n);
    std::fflush(stdout);
    auto list_world = bench::build_world(n, /*legacy_contact=*/false,
                                         /*legacy_buffer=*/true,
                                         /*with_traffic=*/true, density, pressure);
    auto slab_world = bench::build_world(n, /*legacy_contact=*/false,
                                         /*legacy_buffer=*/false,
                                         /*with_traffic=*/true, density, pressure);
    const auto [list_run, slab_run] = bench::timed_ab_run(
        *list_world, *slab_world, pressure_warmup, steps, trials);
    const bool same_sim =
        list_run.contact_events == slab_run.contact_events &&
        list_world->metrics().created() == slab_world->metrics().created() &&
        list_world->metrics().delivered() == slab_world->metrics().delivered() &&
        list_world->metrics().relayed() == slab_world->metrics().relayed() &&
        list_world->metrics().dropped() == slab_world->metrics().dropped();
    if (!same_sim) {
      std::fprintf(stderr,
                   "FATAL: buffer-pressure mismatch at n=%d — the slab and "
                   "list stores diverged\n", n);
      return 1;
    }
    const double speedup = slab_run.steps_per_sec / list_run.steps_per_sec;
    std::printf("n=%-5d list %9.1f steps/s | slab %9.1f steps/s | %.2fx | "
                "%lld drops\n",
                n, list_run.steps_per_sec, slab_run.steps_per_sec, speedup,
                static_cast<long long>(slab_world->metrics().dropped()));
    std::fflush(stdout);
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "      {\"nodes\": %d, \"list_steps_per_sec\": %.1f, "
                  "\"slab_steps_per_sec\": %.1f, \"speedup\": %.2f}%s\n",
                  n, list_run.steps_per_sec, slab_run.steps_per_sec, speedup,
                  i + 1 < pressure_nodes.size() ? "," : "");
    json += buf;
  }

  // Store churn allocation contract under pressure: the slab must stay
  // ~0 allocs/step while the seed store pays per insert and per transfer.
  const int pressure_alloc_nodes = smoke ? 60 : 100;
  const double slab_pressure_allocs = bench::allocs_per_step(
      pressure_alloc_nodes, /*legacy_contact=*/false, /*legacy_buffer=*/false,
      /*with_traffic=*/true, pressure_warmup, steps, density, pressure);
  const double list_pressure_allocs = bench::allocs_per_step(
      pressure_alloc_nodes, /*legacy_contact=*/false, /*legacy_buffer=*/true,
      /*with_traffic=*/true, pressure_warmup, steps, density, pressure);
  std::printf("buffer-pressure allocs/step (n=%d): slab %.4f, list %.2f\n",
              pressure_alloc_nodes, slab_pressure_allocs, list_pressure_allocs);
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    ],\n    \"allocs_per_step\": {\"nodes\": %d, "
                  "\"slab\": %.4f, \"list\": %.2f}\n  },\n",
                  pressure_alloc_nodes, slab_pressure_allocs, list_pressure_allocs);
    json += buf;
  }

  // ---- sparse-field workload: the kinetic event kernel ----
  // 50 000 m^2/node with a 10 m radio range (mean degree ~0.006): a wide
  // open field where contacts are rare events. The fixed-dt loop pays for
  // every 0.1 s step regardless; the event kernel advances calendar-entry
  // to calendar-entry. Same seed, same grid semantics: the metric bits
  // must be IDENTICAL before the timing means anything.
  const double sparse_density = flags.get_double("sparse-density", 50000.0);
  const std::vector<int> kernel_nodes = smoke ? std::vector<int>{300}
                                              : std::vector<int>{2000, 4000};
  const double kernel_duration = smoke ? 60.0 : 600.0;
  json += "  \"event_kernel\": {\n"
          "    \"workload\": \"random-waypoint @ " +
          std::to_string(static_cast<long long>(sparse_density)) +
          " m^2/node, 10 m range, open field, epidemic routers, paper "
          "traffic; run() timed end to end\",\n    \"points\": [\n";
  for (std::size_t i = 0; i < kernel_nodes.size(); ++i) {
    const int n = kernel_nodes[i];
    std::printf("event kernel n=%d ...\n", n);
    std::fflush(stdout);
    auto fixed_world = bench::build_sparse_world(n, /*event_kernel=*/false,
                                                 sparse_density);
    auto event_world = bench::build_sparse_world(n, /*event_kernel=*/true,
                                                 sparse_density);
    const auto [fixed_secs, event_secs] =
        bench::timed_kernel_ab(*fixed_world, *event_world, kernel_duration, trials);
    if (!event_world->event_kernel_used()) {
      std::fprintf(stderr,
                   "FATAL: event kernel declined the sparse workload at n=%d "
                   "— the A/B is meaningless\n", n);
      return 1;
    }
    const bool same_sim =
        fixed_world->contact_events() == event_world->contact_events() &&
        fixed_world->step_count() == event_world->step_count() &&
        fixed_world->metrics().created() == event_world->metrics().created() &&
        fixed_world->metrics().delivered() == event_world->metrics().delivered() &&
        fixed_world->metrics().relayed() == event_world->metrics().relayed() &&
        fixed_world->metrics().dropped() == event_world->metrics().dropped() &&
        fixed_world->metrics().expired() == event_world->metrics().expired() &&
        fixed_world->metrics().latency_mean() == event_world->metrics().latency_mean() &&
        fixed_world->metrics().goodput() == event_world->metrics().goodput();
    if (!same_sim) {
      std::fprintf(stderr,
                   "FATAL: event-kernel metric mismatch at n=%d — the kinetic "
                   "and fixed-dt paths diverged\n", n);
      return 1;
    }
    const double grid_steps = static_cast<double>(fixed_world->step_count());
    const double fixed_sps = grid_steps / fixed_secs;
    const double event_sps = grid_steps / event_secs;
    const double speedup = event_sps / fixed_sps;
    std::printf("n=%-5d fixed-dt %9.1f steps/s | event %9.1f steps/s | %.2fx "
                "| %lld contacts\n",
                n, fixed_sps, event_sps, speedup,
                static_cast<long long>(event_world->contact_events()));
    std::fflush(stdout);
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "      {\"nodes\": %d, \"fixed_steps_per_sec\": %.1f, "
                  "\"event_steps_per_sec\": %.1f, \"speedup\": %.2f}%s\n",
                  n, fixed_sps, event_sps, speedup,
                  i + 1 < kernel_nodes.size() ? "," : "");
    json += buf;
  }
  json += "    ]\n  },\n";

  // Allocation contract: traffic-free steady state must not heap-allocate.
  // Warm-up must be long enough for the roaming nodes to have visited every
  // grid cell of the bounded arena, or first-visit cell creation shows up.
  const int alloc_nodes = smoke ? 200 : 1000;
  const int alloc_warmup = std::max(warmup, smoke ? 500 : 4000);
  const double incr_allocs = bench::allocs_per_step(
      alloc_nodes, /*legacy_contact=*/false, /*legacy_buffer=*/false,
      /*with_traffic=*/false, alloc_warmup, steps, density);
  const double legacy_allocs = bench::allocs_per_step(
      alloc_nodes, /*legacy_contact=*/true, /*legacy_buffer=*/true,
      /*with_traffic=*/false, alloc_warmup, steps, density);
  std::printf("allocs/step after warm-up (n=%d, no traffic): incremental %.4f, "
              "legacy %.1f\n",
              alloc_nodes, incr_allocs, legacy_allocs);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"allocs_per_step\": {\"nodes\": %d, \"incremental\": %.4f, "
                "\"legacy\": %.1f}\n}\n",
                alloc_nodes, incr_allocs, legacy_allocs);
  json += buf;

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
