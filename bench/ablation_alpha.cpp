// Ablation — the network parameter α (the fraction of residual TTL the EEV
// / ENEC estimators look ahead). The paper fixes α = 0.28 "indicated to be
// a reasonable value from the preliminary simulations" and omits the sweep
// for space; this bench reconstructs it for EER and CR at a fixed node
// count (default 120, env DTN_BENCH_ABLATION_NODES).
#include "bench_common.hpp"

namespace {

using dtn::bench::BenchScale;

struct Row {
  std::string protocol;
  double alpha;
  dtn::harness::PointResult point;
};
std::vector<Row> g_rows;

void register_benchmarks() {
  const BenchScale scale = dtn::bench::bench_scale();
  const int nodes =
      static_cast<int>(dtn::util::env_int("DTN_BENCH_ABLATION_NODES", 120));
  for (const std::string protocol : {"EER", "CR"}) {
    for (const double alpha : {0.1, 0.28, 0.5, 1.0}) {
      const std::string name =
          "AblationAlpha/" + protocol + "/alpha:" + dtn::util::format_double(alpha, 2);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [protocol, alpha, nodes, scale](benchmark::State& state) {
            dtn::harness::ScenarioSpec spec = dtn::bench::paper_spec(scale);
            dtn::harness::apply_override(spec, "protocol.name", protocol);
            dtn::harness::apply_override(spec, "protocol.alpha", dtn::util::format_value(alpha));
            dtn::harness::apply_override(spec, "protocol.copies", "10");
            dtn::harness::apply_override(spec, "scenario.nodes", std::to_string(nodes));
            dtn::harness::PointResult point;
            point.protocol = protocol;
            point.node_count = nodes;
            point.alpha = alpha;
            std::uint64_t seed = 1000;
            for (auto _ : state) {
              spec.seed = seed++;
              const auto r = dtn::bench::point_runner().run(spec);
              point.delivery_ratio.add(r.metrics.delivery_ratio());
              point.latency.add(r.metrics.latency_mean());
              point.goodput.add(r.metrics.goodput());
            }
            state.counters["delivery_ratio"] = point.delivery_ratio.mean();
            state.counters["latency_s"] = point.latency.mean();
            state.counters["goodput"] = point.goodput.mean();
            g_rows.push_back({protocol, alpha, point});
          })
          ->Iterations(scale.seeds)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n=== Ablation: alpha sweep (EER & CR, paper fixes alpha=0.28) ===\n");
  dtn::util::TablePrinter table(
      {"protocol", "alpha", "delivery_ratio", "latency_s", "goodput"});
  for (const auto& row : g_rows) {
    table.new_row()
        .add_cell(row.protocol)
        .add_cell(row.alpha, 2)
        .add_cell(row.point.delivery_ratio.mean(), 4)
        .add_cell(row.point.latency.mean(), 1)
        .add_cell(row.point.goodput.mean(), 4);
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
