// Ablation — CR with ground-truth vs detected communities, plus EER as the
// community-free control. The paper predefines communities (Sec. IV fn. 2)
// and lists distributed construction as future work; this bench closes the
// loop: communities detected from a routing-free contact warm-up
// (core::detect_communities over the thresholded contact-count graph)
// should recover most of ground-truth CR's performance.
#include "bench_common.hpp"

namespace {

using dtn::bench::BenchScale;

struct Row {
  std::string variant;
  dtn::harness::PointResult point;
  double communities_found = 0.0;
};
std::vector<Row> g_rows;

void run_variant(benchmark::State& state, const std::string& variant, int nodes,
                 const BenchScale& scale) {
  dtn::harness::ScenarioSpec spec = dtn::bench::paper_spec(scale);
  dtn::harness::apply_override(spec, "scenario.nodes", std::to_string(nodes));
  dtn::harness::apply_override(spec, "protocol.copies", "10");
  dtn::harness::PointResult point;
  double communities_found = 0.0;
  std::uint64_t seed = 1000;
  for (auto _ : state) {
    spec.seed = seed++;
    if (variant == "CR-groundtruth") {
      dtn::harness::apply_override(spec, "protocol.name", "CR");
      spec.communities_override = nullptr;
    } else if (variant == "CR-detected") {
      dtn::harness::apply_override(spec, "protocol.name", "CR");
      dtn::core::DetectionParams detection;
      detection.familiar_threshold = 4;
      spec.communities_override =
          std::make_shared<const dtn::core::CommunityTable>(
              dtn::harness::detect_bus_communities(spec, detection,
                                                   /*warmup_s=*/1500.0));
      communities_found += spec.communities_override->community_count();
    } else {
      dtn::harness::apply_override(spec, "protocol.name", "EER");
      spec.communities_override = nullptr;
    }
    const auto r = dtn::bench::point_runner().run(spec);
    point.delivery_ratio.add(r.metrics.delivery_ratio());
    point.latency.add(r.metrics.latency_mean());
    point.goodput.add(r.metrics.goodput());
    point.control_mb.add(static_cast<double>(r.metrics.control_bytes()) / 1e6);
  }
  state.counters["delivery_ratio"] = point.delivery_ratio.mean();
  state.counters["goodput"] = point.goodput.mean();
  g_rows.push_back({variant, point,
                    communities_found / static_cast<double>(state.iterations())});
}

void register_benchmarks() {
  const BenchScale scale = dtn::bench::bench_scale();
  const int nodes =
      static_cast<int>(dtn::util::env_int("DTN_BENCH_ABLATION_NODES", 120));
  for (const std::string variant : {"CR-groundtruth", "CR-detected", "EER"}) {
    benchmark::RegisterBenchmark(
        ("AblationCommunities/" + variant).c_str(),
        [variant, nodes, scale](benchmark::State& state) {
          run_variant(state, variant, nodes, scale);
        })
        ->Iterations(scale.seeds)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n=== Ablation: community construction (paper future work #2) ===\n");
  dtn::util::TablePrinter table({"variant", "delivery_ratio", "latency_s", "goodput",
                                 "control_MB", "detected_communities"});
  for (const auto& row : g_rows) {
    table.new_row()
        .add_cell(row.variant)
        .add_cell(row.point.delivery_ratio.mean(), 4)
        .add_cell(row.point.latency.mean(), 1)
        .add_cell(row.point.goodput.mean(), 4)
        .add_cell(row.point.control_mb.mean(), 2)
        .add_cell(row.communities_found, 1);
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
