// Figure 4 — effect of the initial replica count λ ∈ {6, 8, 10, 12} on the
// CR protocol: delivery ratio (a), latency (b), goodput (c) vs node count
// (paper Sec. V-B).
#include "bench_common.hpp"

namespace {

using dtn::bench::BenchScale;
using dtn::bench::FigureCollector;

FigureCollector g_collector;

void register_benchmarks() {
  const BenchScale scale = dtn::bench::bench_scale();
  for (const int lambda : {6, 8, 10, 12}) {
    for (const int nodes : scale.node_counts) {
      const std::string name =
          "Fig4/CR/lambda:" + std::to_string(lambda) + "/nodes:" + std::to_string(nodes);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [lambda, nodes, scale](benchmark::State& state) {
            dtn::harness::ScenarioSpec spec = dtn::bench::paper_spec(scale);
            dtn::harness::apply_override(spec, "protocol.name", "CR");
            dtn::harness::apply_override(spec, "protocol.copies", std::to_string(lambda));
            dtn::harness::apply_override(spec, "scenario.nodes", std::to_string(nodes));
            dtn::bench::run_point_benchmark(state, spec, &g_collector,
                                            "lambda=" + std::to_string(lambda));
          })
          ->Iterations(scale.seeds)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_collector.print("Figure 4", "CR under lambda in {6,8,10,12} (alpha=0.28)");
  return 0;
}
