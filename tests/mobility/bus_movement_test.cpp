#include "mobility/bus_movement.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "geo/polyline.hpp"

namespace dtn::mobility {
namespace {

std::shared_ptr<const geo::Polyline> rectangle_route() {
  return std::make_shared<const geo::Polyline>(
      std::vector<geo::Vec2>{{0, 0}, {1000, 0}, {1000, 500}, {0, 500}},
      /*closed=*/true);
}

BusParams fast_params() {
  BusParams p;
  p.speed_min = 10.0;
  p.speed_max = 10.0;
  p.stop_spacing = 500.0;
  p.pause_min = 0.0;
  p.pause_max = 0.0;
  return p;
}

TEST(BusMovement, StaysOnRoute) {
  auto route = rectangle_route();
  BusMovement m(route, fast_params());
  m.init(util::Pcg32(1, 1), 0.0);
  for (int i = 0; i < 5000; ++i) {
    m.step(i * 0.1, 0.1);
    const geo::Vec2 p = m.position();
    const double s = route->project(p);
    EXPECT_LT(p.distance_to(route->point_at(s)), 1e-6);
  }
}

TEST(BusMovement, AdvancesAtConfiguredSpeed) {
  BusMovement m(rectangle_route(), fast_params());
  m.init(util::Pcg32(2, 2), 0.0);
  const double c0 = m.cursor();
  m.step(0.0, 10.0);
  // 10 m/s for 10 s with no pauses = 100 m of arc length.
  EXPECT_NEAR(m.cursor() - c0, 100.0, 1e-6);
}

TEST(BusMovement, PausesAtStops) {
  BusParams p = fast_params();
  p.pause_min = 5.0;
  p.pause_max = 5.0;
  BusMovement m(rectangle_route(), p);
  m.init(util::Pcg32(3, 3), 0.0);
  const double c0 = m.cursor();
  // Travel 500 m (50 s) then dwell 5 s: over 60 s total advance is 550 m
  // (500 before the stop + 5 s pause + 5 s more driving).
  m.step(0.0, 60.0);
  EXPECT_NEAR(m.cursor() - c0, 550.0, 1e-6);
}

TEST(BusMovement, WrapsAroundClosedRoute) {
  auto route = rectangle_route();
  BusMovement m(route, fast_params());
  m.init(util::Pcg32(4, 4), 0.0);
  // Long enough to lap the 3000 m route several times.
  for (int i = 0; i < 20000; ++i) {
    m.step(i * 0.1, 0.1);
  }
  const geo::Vec2 p = m.position();
  // Still on the rectangle boundary.
  EXPECT_LT(p.distance_to(route->point_at(route->project(p))), 1e-6);
}

TEST(BusMovement, DeterministicPerStream) {
  BusMovement a(rectangle_route(), fast_params());
  BusMovement b(rectangle_route(), fast_params());
  a.init(util::Pcg32(5, 5), 0.0);
  b.init(util::Pcg32(5, 5), 0.0);
  for (int i = 0; i < 2000; ++i) {
    a.step(i * 0.1, 0.1);
    b.step(i * 0.1, 0.1);
    EXPECT_EQ(a.position().x, b.position().x);
    EXPECT_EQ(a.position().y, b.position().y);
  }
}

TEST(BusMovement, DifferentStreamsStartDifferently) {
  BusMovement a(rectangle_route(), fast_params());
  BusMovement b(rectangle_route(), fast_params());
  a.init(util::Pcg32(6, 6), 0.0);
  b.init(util::Pcg32(7, 7), 0.0);
  EXPECT_NE(a.cursor(), b.cursor());
}

TEST(BusMovement, SpeedWithinPaperRange) {
  BusParams p;
  p.speed_min = 2.7;
  p.speed_max = 13.9;
  p.pause_min = p.pause_max = 0.0;
  p.stop_spacing = 1e9;  // no stops: constant speed segment
  BusMovement m(rectangle_route(), p);
  m.init(util::Pcg32(8, 8), 0.0);
  const double c0 = m.cursor();
  m.step(0.0, 10.0);
  const double v = (m.cursor() - c0) / 10.0;
  EXPECT_GE(v, 2.7);
  EXPECT_LE(v, 13.9);
}

TEST(BusMovement, NullRouteIsNoop) {
  BusMovement m(nullptr, fast_params());
  m.init(util::Pcg32(9, 9), 0.0);
  m.step(0.0, 10.0);
  EXPECT_EQ(m.position(), (geo::Vec2{0.0, 0.0}));
}

TEST(BusMovement, StepSizeInvariance) {
  BusMovement a(rectangle_route(), fast_params());
  BusMovement b(rectangle_route(), fast_params());
  a.init(util::Pcg32(10, 10), 0.0);
  b.init(util::Pcg32(10, 10), 0.0);
  a.step(0.0, 25.0);
  for (int i = 0; i < 250; ++i) b.step(i * 0.1, 0.1);
  EXPECT_NEAR(a.cursor(), b.cursor(), 1e-6);
}

}  // namespace
}  // namespace dtn::mobility
