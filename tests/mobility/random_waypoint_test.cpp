#include "mobility/random_waypoint.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dtn::mobility {
namespace {

RandomWaypointParams default_params() {
  RandomWaypointParams p;
  p.world_min = {0.0, 0.0};
  p.world_max = {100.0, 100.0};
  p.speed_min = 1.0;
  p.speed_max = 2.0;
  return p;
}

TEST(RandomWaypoint, StaysInsideWorld) {
  RandomWaypoint m(default_params());
  m.init(util::Pcg32(1, 1), 0.0);
  for (int i = 0; i < 20000; ++i) {
    m.step(i * 0.1, 0.1);
    const geo::Vec2 p = m.position();
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 100.0);
  }
}

TEST(RandomWaypoint, SpeedBounded) {
  RandomWaypoint m(default_params());
  m.init(util::Pcg32(2, 2), 0.0);
  geo::Vec2 prev = m.position();
  for (int i = 0; i < 5000; ++i) {
    m.step(i * 0.1, 0.1);
    const geo::Vec2 cur = m.position();
    const double speed = prev.distance_to(cur) / 0.1;
    // Within a step the node may arrive and re-depart, but speed can never
    // exceed the max (no pauses configured here would only lower it).
    EXPECT_LE(speed, 2.0 + 1e-9);
    prev = cur;
  }
}

TEST(RandomWaypoint, DeterministicForSameStream) {
  RandomWaypoint a(default_params());
  RandomWaypoint b(default_params());
  a.init(util::Pcg32(3, 3), 0.0);
  b.init(util::Pcg32(3, 3), 0.0);
  for (int i = 0; i < 1000; ++i) {
    a.step(i * 0.1, 0.1);
    b.step(i * 0.1, 0.1);
    EXPECT_EQ(a.position().x, b.position().x);
    EXPECT_EQ(a.position().y, b.position().y);
  }
}

TEST(RandomWaypoint, StepSizeInvariance) {
  // One big step equals many small steps (piecewise-exact integration).
  RandomWaypoint a(default_params());
  RandomWaypoint b(default_params());
  a.init(util::Pcg32(4, 4), 0.0);
  b.init(util::Pcg32(4, 4), 0.0);
  a.step(0.0, 10.0);
  for (int i = 0; i < 100; ++i) b.step(i * 0.1, 0.1);
  EXPECT_NEAR(a.position().x, b.position().x, 1e-6);
  EXPECT_NEAR(a.position().y, b.position().y, 1e-6);
}

TEST(RandomWaypoint, PausesHoldPosition) {
  RandomWaypointParams p = default_params();
  p.pause_min = 5.0;
  p.pause_max = 5.0;
  p.speed_min = p.speed_max = 1000.0;  // waypoints reached near-instantly
  RandomWaypoint m(p);
  m.init(util::Pcg32(5, 5), 0.0);
  // After the first arrival the node must sit still for ~5 s; sample two
  // nearby instants and expect zero movement at least once across a window.
  int stationary_steps = 0;
  geo::Vec2 prev = m.position();
  for (int i = 0; i < 100; ++i) {
    m.step(i * 0.1, 0.1);
    if (m.position().distance_to(prev) == 0.0) ++stationary_steps;
    prev = m.position();
  }
  EXPECT_GT(stationary_steps, 30);
}

TEST(RandomWaypoint, MovesEventually) {
  RandomWaypoint m(default_params());
  m.init(util::Pcg32(6, 6), 0.0);
  const geo::Vec2 start = m.position();
  m.step(0.0, 30.0);
  EXPECT_GT(start.distance_to(m.position()), 0.0);
}

}  // namespace
}  // namespace dtn::mobility
