#include "mobility/trace_playback.hpp"

#include <gtest/gtest.h>

#include "geo/trace.hpp"

namespace dtn::mobility {
namespace {

std::vector<geo::TraceSample> line_samples() {
  return {{0.0, 0, {0.0, 0.0}}, {10.0, 0, {100.0, 0.0}}, {20.0, 0, {100.0, 50.0}}};
}

TEST(TracePlayback, InterpolatesLinearly) {
  TracePlayback m(line_samples());
  m.init(util::Pcg32(1, 1), 0.0);
  m.step(0.0, 5.0);  // t = 5: halfway of first segment
  EXPECT_NEAR(m.position().x, 50.0, 1e-9);
  EXPECT_NEAR(m.position().y, 0.0, 1e-9);
  m.step(5.0, 10.0);  // t = 15: halfway of second segment
  EXPECT_NEAR(m.position().x, 100.0, 1e-9);
  EXPECT_NEAR(m.position().y, 25.0, 1e-9);
}

TEST(TracePlayback, ClampsBeforeAndAfter) {
  TracePlayback m(line_samples());
  m.init(util::Pcg32(1, 1), 0.0);
  EXPECT_EQ(m.position(), (geo::Vec2{0.0, 0.0}));
  m.step(0.0, 1000.0);
  EXPECT_EQ(m.position(), (geo::Vec2{100.0, 50.0}));
}

TEST(TracePlayback, InitAtLateStart) {
  TracePlayback m(line_samples());
  m.init(util::Pcg32(1, 1), 15.0);
  EXPECT_NEAR(m.position().y, 25.0, 1e-9);
}

TEST(TracePlayback, EmptySamplesPinnedAtOrigin) {
  TracePlayback m({});
  m.init(util::Pcg32(1, 1), 0.0);
  m.step(0.0, 100.0);
  EXPECT_EQ(m.position(), (geo::Vec2{0.0, 0.0}));
}

TEST(TracePlayback, SingleSampleIsStationary) {
  TracePlayback m({{5.0, 0, {7.0, 8.0}}});
  m.init(util::Pcg32(1, 1), 0.0);
  m.step(0.0, 100.0);
  EXPECT_EQ(m.position(), (geo::Vec2{7.0, 8.0}));
}

TEST(TracePlayback, DuplicateTimesHandled) {
  TracePlayback m({{0.0, 0, {0.0, 0.0}}, {0.0, 0, {5.0, 5.0}}, {10.0, 0, {10.0, 10.0}}});
  m.init(util::Pcg32(1, 1), 0.0);
  m.step(0.0, 5.0);
  // No NaN / crash; position lies between the recorded extremes.
  EXPECT_GE(m.position().x, 0.0);
  EXPECT_LE(m.position().x, 10.0);
}

TEST(TracePlayback, FromTraceBuildsPerNodeModels) {
  geo::Trace trace;
  trace.samples = {{0.0, 0, {0.0, 0.0}},
                   {0.0, 1, {50.0, 0.0}},
                   {10.0, 0, {10.0, 0.0}},
                   {10.0, 1, {50.0, 10.0}}};
  auto models = TracePlayback::from_trace(trace);
  ASSERT_EQ(models.size(), 2u);
  models[0]->init(util::Pcg32(1, 1), 0.0);
  models[1]->init(util::Pcg32(1, 1), 0.0);
  models[0]->step(0.0, 5.0);
  models[1]->step(0.0, 5.0);
  EXPECT_NEAR(models[0]->position().x, 5.0, 1e-9);
  EXPECT_NEAR(models[1]->position().y, 5.0, 1e-9);
  EXPECT_NEAR(models[1]->position().x, 50.0, 1e-9);
}

TEST(TracePlayback, FromTraceWithGapNodeIds) {
  geo::Trace trace;
  trace.samples = {{0.0, 2, {1.0, 1.0}}};  // nodes 0,1 have no samples
  auto models = TracePlayback::from_trace(trace);
  ASSERT_EQ(models.size(), 3u);
  models[0]->init(util::Pcg32(1, 1), 0.0);
  EXPECT_EQ(models[0]->position(), (geo::Vec2{0.0, 0.0}));
  models[2]->init(util::Pcg32(1, 1), 0.0);
  EXPECT_EQ(models[2]->position(), (geo::Vec2{1.0, 1.0}));
}

TEST(TracePlayback, MonotonicSteppingMatchesRandomAccess) {
  TracePlayback a(line_samples());
  a.init(util::Pcg32(1, 1), 0.0);
  for (int i = 0; i < 200; ++i) {
    a.step(i * 0.1, 0.1);
  }
  // t = 20 at the end.
  EXPECT_NEAR(a.position().x, 100.0, 1e-9);
  EXPECT_NEAR(a.position().y, 50.0, 1e-9);
}

}  // namespace
}  // namespace dtn::mobility
