// Kinetic (closed-form) trajectory interface vs the fixed-dt kernel. The
// event kernel replaces per-step position updates with per-segment linear
// motion; these tests drive the SAME lane state down both paths:
//   - positions agree at every grid time (near-equality: the fixed-dt path
//     accumulates `pos += vel * dt`, the kinetic path evaluates
//     `origin + vel * (t - t0)` — identical mathematics, ulp-level drift);
//   - the waypoint/pause/draw sequence is identical, because any fork in
//     the RNG stream (a skipped or extra draw block) diverges the
//     trajectories by meters, far beyond the comparison tolerance;
//   - capability gating: bus and custom lanes have no closed form and must
//     disable the kinetic path.
#include "mobility/movement_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "geo/polyline.hpp"
#include "mobility/stationary.hpp"
#include "util/rng.hpp"

namespace dtn::mobility {
namespace {

constexpr double kDt = 0.1;

util::Pcg32 stream(std::uint64_t node) {
  return util::derive_stream(777, node, util::StreamPurpose::kMovement);
}

/// Advances node 0's kinetic segments of `engine` up to (and including)
/// phase boundaries at time `t`, then returns its closed-form position.
geo::Vec2 kinetic_position_at(MovementEngine& engine, double t) {
  // Zero-length pause segments (pause_min = pause_max = 0) make several
  // boundaries share one timestamp; each advance still makes progress
  // (pause -> travel -> arrival -> pause), so this loop terminates.
  while (engine.kinetic_segment(0).t_end <= t) engine.kinetic_advance(0);
  return engine.kinetic_position(0, t);
}

/// Runs two engines built with identical lane state — `stepped` fixed-dt,
/// `kinetic` segment-to-segment — and requires positional agreement on
/// every grid time. Tolerance covers fixed-dt accumulation drift only; a
/// forked draw sequence diverges by whole map widths.
void expect_paths_agree(MovementEngine& stepped, MovementEngine& kinetic,
                        int steps, double tol) {
  kinetic.kinetic_start(0.0);
  ASSERT_EQ(stepped.position(0), kinetic.position(0)) << "diverged at init";
  double max_err = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double t0 = static_cast<double>(i) * kDt;
    const double t1 = static_cast<double>(i + 1) * kDt;
    stepped.step_all(t0, kDt);
    const geo::Vec2 want = stepped.position(0);
    const geo::Vec2 got = kinetic_position_at(kinetic, t1);
    ASSERT_NEAR(got.x, want.x, tol) << "x diverged at step " << i;
    ASSERT_NEAR(got.y, want.y, tol) << "y diverged at step " << i;
    max_err = std::max({max_err, std::abs(got.x - want.x),
                        std::abs(got.y - want.y)});
  }
  // The agreement must be numerical-noise-level, not merely "same shape":
  // if this starts approaching the tolerance the two kernels no longer
  // compute the same trajectory.
  EXPECT_LT(max_err, tol);
}

TEST(KineticSegment, WaypointLaneMatchesFixedDtPath) {
  RandomWaypointParams p;
  p.world_max = {400.0, 300.0};
  p.speed_min = 2.0;
  p.speed_max = 14.0;
  p.pause_min = 1.0;
  p.pause_max = 20.0;
  MovementEngine stepped, kinetic;
  ASSERT_EQ(stepped.add_waypoint(p), 0);
  ASSERT_EQ(kinetic.add_waypoint(p), 0);
  stepped.init_node(0, stream(0), 0.0);
  kinetic.init_node(0, stream(0), 0.0);
  EXPECT_TRUE(kinetic.kinetic_capable());
  // Hundreds of waypoint events: every arrival draw block must line up.
  expect_paths_agree(stepped, kinetic, 20000, 1e-6);
}

TEST(KineticSegment, ZeroPauseWaypointLaneMatchesFixedDtPath) {
  // pause_min = pause_max = 0 produces zero-length pause segments — the
  // degenerate boundary the event kernel must step through without stalling.
  RandomWaypointParams p;
  p.world_max = {200.0, 200.0};
  p.speed_min = 5.0;
  p.speed_max = 10.0;
  MovementEngine stepped, kinetic;
  ASSERT_EQ(stepped.add_waypoint(p), 0);
  ASSERT_EQ(kinetic.add_waypoint(p), 0);
  stepped.init_node(0, stream(4), 0.0);
  kinetic.init_node(0, stream(4), 0.0);
  expect_paths_agree(stepped, kinetic, 20000, 1e-6);
}

TEST(KineticSegment, CommunityLaneMatchesFixedDtPath) {
  CommunityMovementParams p;
  p.world_max = {2000.0, 2000.0};
  p.home_min = {500.0, 0.0};
  p.home_max = {1000.0, 2000.0};
  p.home_prob = 0.85;
  MovementEngine stepped, kinetic;
  ASSERT_EQ(stepped.add_community(p), 0);
  ASSERT_EQ(kinetic.add_community(p), 0);
  stepped.init_node(0, stream(3), 0.0);
  kinetic.init_node(0, stream(3), 0.0);
  EXPECT_TRUE(kinetic.kinetic_capable());
  expect_paths_agree(stepped, kinetic, 20000, 1e-5);
}

TEST(KineticSegment, SegmentInvariantsHoldAcrossPhases) {
  RandomWaypointParams p;
  p.world_max = {100.0, 100.0};
  p.speed_min = 1.0;
  p.speed_max = 2.0;
  p.pause_min = 5.0;
  p.pause_max = 10.0;
  MovementEngine engine;
  ASSERT_EQ(engine.add_waypoint(p), 0);
  engine.init_node(0, stream(9), 0.0);
  engine.kinetic_start(0.0);
  double t = 0.0;
  bool saw_pause = false;
  bool saw_travel = false;
  for (int events = 0; events < 200; ++events) {
    const KineticSegment& seg = engine.kinetic_segment(0);
    ASSERT_GE(seg.t_end, seg.t0);
    ASSERT_GE(seg.t0, t) << "segments must advance monotonically";
    t = seg.t0;
    if (seg.paused) {
      saw_pause = true;
      EXPECT_EQ(seg.vel.x, 0.0);
      EXPECT_EQ(seg.vel.y, 0.0);
    } else {
      saw_travel = true;
      const double speed = std::sqrt(seg.vel.x * seg.vel.x + seg.vel.y * seg.vel.y);
      EXPECT_GE(speed, p.speed_min - 1e-12);
      EXPECT_LE(speed, p.speed_max + 1e-12);
    }
    engine.kinetic_advance(0);
  }
  EXPECT_TRUE(saw_pause);
  EXPECT_TRUE(saw_travel);
}

TEST(KineticSegment, StationaryNodeNeverAdvances) {
  MovementEngine engine;
  StationaryNodeSpec spec;
  spec.pos = {42.0, 17.0};
  ASSERT_EQ(engine.add_stationary(spec), 0);
  engine.init_node(0, stream(1), 0.0);
  EXPECT_TRUE(engine.kinetic_capable());
  engine.kinetic_start(0.0);
  const KineticSegment& seg = engine.kinetic_segment(0);
  EXPECT_EQ(seg.vel.x, 0.0);
  EXPECT_EQ(seg.vel.y, 0.0);
  EXPECT_EQ(seg.t_end, std::numeric_limits<double>::infinity());
  const geo::Vec2 at0 = engine.kinetic_position(0, 0.0);
  const geo::Vec2 at1e6 = engine.kinetic_position(0, 1e6);
  EXPECT_EQ(at0.x, at1e6.x);
  EXPECT_EQ(at0.y, at1e6.y);
}

TEST(KineticSegment, SyncPositionsHandsBackToFixedDt) {
  RandomWaypointParams p;
  p.world_max = {300.0, 300.0};
  MovementEngine engine;
  ASSERT_EQ(engine.add_waypoint(p), 0);
  engine.init_node(0, stream(2), 0.0);
  engine.kinetic_start(0.0);
  const double t = 12.7;
  const geo::Vec2 want = kinetic_position_at(engine, t);
  engine.kinetic_sync_positions(t);
  EXPECT_EQ(engine.position(0).x, want.x);
  EXPECT_EQ(engine.position(0).y, want.y);
}

TEST(KineticSegment, BusAndCustomLanesDisableTheKineticPath) {
  {
    MovementEngine engine;
    auto route = std::make_shared<const geo::Polyline>(
        std::vector<geo::Vec2>{{0.0, 0.0}, {100.0, 0.0}});
    engine.add_bus(route, BusParams{});
    EXPECT_FALSE(engine.kinetic_capable());
  }
  {
    MovementEngine engine;
    engine.add_custom(std::make_unique<Stationary>(geo::Vec2{1.0, 2.0}));
    EXPECT_FALSE(engine.kinetic_capable());
  }
  {
    // Waypoint + stationary only: capable.
    MovementEngine engine;
    engine.add_waypoint(RandomWaypointParams{});
    engine.add_stationary(StationaryNodeSpec{});
    EXPECT_TRUE(engine.kinetic_capable());
  }
}

}  // namespace
}  // namespace dtn::mobility
