#include "mobility/community_movement.hpp"

#include <gtest/gtest.h>

namespace dtn::mobility {
namespace {

CommunityMovementParams default_params() {
  CommunityMovementParams p;
  p.world_min = {0.0, 0.0};
  p.world_max = {1000.0, 1000.0};
  p.home_min = {0.0, 0.0};
  p.home_max = {250.0, 1000.0};
  p.home_prob = 0.9;
  p.speed_min = 1.0;
  p.speed_max = 2.0;
  p.pause_min = p.pause_max = 0.0;
  return p;
}

TEST(CommunityMovement, StaysInsideWorld) {
  CommunityMovement m(default_params());
  m.init(util::Pcg32(1, 1), 0.0);
  for (int i = 0; i < 20000; ++i) {
    m.step(i * 0.1, 0.1);
    const geo::Vec2 p = m.position();
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1000.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1000.0);
  }
}

TEST(CommunityMovement, StartsInHomeArea) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    CommunityMovement m(default_params());
    m.init(util::Pcg32(seed, seed), 0.0);
    const geo::Vec2 p = m.position();
    EXPECT_LE(p.x, 250.0);
  }
}

TEST(CommunityMovement, SpendsMostTimeAtHome) {
  CommunityMovement m(default_params());
  m.init(util::Pcg32(7, 7), 0.0);
  int home_steps = 0;
  const int total = 100000;
  for (int i = 0; i < total; ++i) {
    m.step(i * 0.1, 0.1);
    if (m.position().x <= 250.0) ++home_steps;
  }
  // With home_prob 0.9 and a home band of 1/4 of the world, well over half
  // the time should be spent in the home band (exact fraction depends on
  // transit time across the world).
  EXPECT_GT(static_cast<double>(home_steps) / total, 0.6);
}

TEST(CommunityMovement, RoamsOccasionally) {
  CommunityMovement m(default_params());
  m.init(util::Pcg32(8, 8), 0.0);
  bool left_home = false;
  for (int i = 0; i < 200000 && !left_home; ++i) {
    m.step(i * 0.1, 0.1);
    if (m.position().x > 500.0) left_home = true;
  }
  EXPECT_TRUE(left_home);  // home_prob 0.9 leaves 10% roam trips
}

TEST(CommunityMovement, HomeProbOneNeverLeaves) {
  CommunityMovementParams p = default_params();
  p.home_prob = 1.0;
  CommunityMovement m(p);
  m.init(util::Pcg32(9, 9), 0.0);
  for (int i = 0; i < 50000; ++i) {
    m.step(i * 0.1, 0.1);
    EXPECT_LE(m.position().x, 250.0 + 1e-9);
  }
}

TEST(CommunityMovement, Deterministic) {
  CommunityMovement a(default_params());
  CommunityMovement b(default_params());
  a.init(util::Pcg32(10, 10), 0.0);
  b.init(util::Pcg32(10, 10), 0.0);
  for (int i = 0; i < 2000; ++i) {
    a.step(i * 0.1, 0.1);
    b.step(i * 0.1, 0.1);
    EXPECT_EQ(a.position().x, b.position().x);
    EXPECT_EQ(a.position().y, b.position().y);
  }
}

}  // namespace
}  // namespace dtn::mobility
