// Smoke-level reproduction checks: the qualitative orderings Figure 2
// reports should already be visible at reduced scale. These assert the
// *shape* (who beats whom), not absolute numbers.
#include <gtest/gtest.h>

#include "harness/sweep.hpp"

namespace dtn::harness {
namespace {

const std::vector<PointResult>& comparison_results() {
  static const std::vector<PointResult> results = [] {
    SweepOptions opt;
    opt.protocols = {"EER", "CR", "EBR", "MaxProp", "SprayAndWait"};
    opt.node_counts = {32};
    opt.seeds = 2;
    opt.seed_base = 500;
    opt.base.duration_s = 2500.0;
    opt.base.map.rows = 8;
    opt.base.map.cols = 10;
    opt.base.map.districts = 3;
    opt.base.map.routes_per_district = 2;
    opt.base.protocol.copies = 8;
    return run_sweep(opt);
  }();
  return results;
}

const PointResult& point(const std::string& protocol) {
  for (const auto& p : comparison_results()) {
    if (p.protocol == protocol) return p;
  }
  throw std::runtime_error("missing protocol " + protocol);
}

TEST(ProtocolComparison, AllProtocolsDeliver) {
  for (const auto& p : comparison_results()) {
    EXPECT_GT(p.delivery_ratio.mean(), 0.0) << p.protocol;
  }
}

TEST(ProtocolComparison, MaxPropDeliveryAtLeastEbr) {
  // Fig. 2(a): MaxProp tops delivery ratio, EBR is lowest.
  EXPECT_GE(point("MaxProp").delivery_ratio.mean() + 0.05,
            point("EBR").delivery_ratio.mean());
}

TEST(ProtocolComparison, MaxPropGoodputWorstAmongLineup) {
  // Fig. 2(c): MaxProp's goodput collapses relative to the quota schemes.
  const double maxprop = point("MaxProp").goodput.mean();
  EXPECT_LT(maxprop, point("EER").goodput.mean());
  EXPECT_LT(maxprop, point("CR").goodput.mean());
  EXPECT_LT(maxprop, point("EBR").goodput.mean());
}

TEST(ProtocolComparison, EbrGoodputBest) {
  // Fig. 2(c): EBR achieves the best goodput (wait-phase conservatism).
  const double ebr = point("EBR").goodput.mean();
  EXPECT_GE(ebr + 1e-9, point("MaxProp").goodput.mean());
  EXPECT_GE(ebr + 0.1, point("EER").goodput.mean());
}

TEST(ProtocolComparison, EerDeliveryBeatsEbr) {
  // The paper's core claim: TTL-aware EEV beats EBR's TTL-blind EV on
  // delivery ratio.
  EXPECT_GT(point("EER").delivery_ratio.mean() + 0.02,
            point("EBR").delivery_ratio.mean());
}

TEST(ProtocolComparison, MaxPropRelaysMost) {
  const double maxprop_relays = point("MaxProp").relayed.mean();
  for (const auto& proto : {"EER", "CR", "EBR", "SprayAndWait"}) {
    EXPECT_GT(maxprop_relays, point(proto).relayed.mean()) << proto;
  }
}

TEST(ProtocolComparison, CrControlOverheadBelowEer) {
  // Sec. IV's motivation: community-scoped MI exchange shrinks overhead.
  EXPECT_LT(point("CR").control_mb.mean(), point("EER").control_mb.mean());
}

TEST(ProtocolComparison, TablesRenderAllCells) {
  const auto table = metric_table(comparison_results(), Metric::kDeliveryRatio);
  const std::string rendered = table.to_string();
  for (const auto& proto : {"EER", "CR", "EBR", "MaxProp", "SprayAndWait"}) {
    EXPECT_NE(rendered.find(proto), std::string::npos) << proto;
  }
}

}  // namespace
}  // namespace dtn::harness
