// End-to-end community pipeline: contact warm-up -> detection -> CR with
// the detected table (the ablation_communities bench path), plus trace
// record/replay round trips.
#include <gtest/gtest.h>

#include <cstdio>

#include "geo/trace.hpp"
#include "harness/scenario.hpp"
#include "mobility/trace_playback.hpp"
#include "routing/factory.hpp"

namespace dtn::harness {
namespace {

BusScenarioParams small_bus(std::uint64_t seed = 5) {
  BusScenarioParams p;
  p.node_count = 18;
  p.duration_s = 2000.0;
  p.seed = seed;
  p.map.rows = 6;
  p.map.cols = 9;
  p.map.districts = 3;
  p.map.routes_per_district = 2;
  p.map.hub_visit_prob = 0.5;
  p.protocol.copies = 6;
  return p;
}

TEST(CommunityPipeline, DetectionFindsMultipleCommunities) {
  const BusScenarioParams p = small_bus();
  core::DetectionParams detection;
  detection.familiar_threshold = 3;
  const core::CommunityTable detected = detect_bus_communities(p, detection, 1500.0);
  EXPECT_EQ(detected.node_count(), p.node_count);
  EXPECT_GE(detected.community_count(), 1);
  EXPECT_LE(detected.community_count(), p.node_count);
}

TEST(CommunityPipeline, DetectionIsDeterministic) {
  const BusScenarioParams p = small_bus();
  const core::DetectionParams detection{3, 0.5};
  const core::CommunityTable a = detect_bus_communities(p, detection, 1000.0);
  const core::CommunityTable b = detect_bus_communities(p, detection, 1000.0);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (core::NodeIdx v = 0; v < a.node_count(); ++v) {
    EXPECT_EQ(a.community_of(v), b.community_of(v)) << "node " << v;
  }
}

TEST(CommunityPipeline, CrRunsWithDetectedCommunities) {
  BusScenarioParams p = small_bus();
  p.protocol.name = "CR";
  const core::DetectionParams detection{3, 0.5};
  p.communities_override = std::make_shared<const core::CommunityTable>(
      detect_bus_communities(p, detection, 1500.0));
  const ScenarioResult r = run_bus_scenario(p);
  EXPECT_GT(r.metrics.created(), 0);
  EXPECT_GE(r.metrics.delivery_ratio(), 0.0);
  EXPECT_LE(r.metrics.delivery_ratio(), 1.0);
}

TEST(CommunityPipeline, OverrideChangesCommunityAssignment) {
  // A one-community override must behave like intra-community-only CR and
  // still run; it should also differ in relays from the ground-truth run.
  BusScenarioParams p = small_bus();
  p.protocol.name = "CR";
  const ScenarioResult ground = run_bus_scenario(p);
  std::vector<int> all_one(static_cast<std::size_t>(p.node_count), 0);
  p.communities_override =
      std::make_shared<const core::CommunityTable>(all_one);
  const ScenarioResult merged = run_bus_scenario(p);
  EXPECT_GT(merged.metrics.created(), 0);
  // With a single community, CR degenerates to intra-community EER-style
  // routing everywhere; routing decisions (and relays) change.
  EXPECT_NE(ground.metrics.relayed(), merged.metrics.relayed());
}

TEST(TracePipeline, RecordReplayKeepsContactStructure) {
  // Record a small bus world's trajectories at 1 Hz, then replay them and
  // compare contact counts: linear interpolation at 1 Hz keeps the contact
  // structure within a modest tolerance.
  const int nodes = 10;
  const double duration = 800.0;
  geo::DowntownParams map;
  map.rows = 5;
  map.cols = 6;
  map.seed = 3;
  const geo::BusNetwork net = geo::generate_downtown(map);
  std::vector<std::shared_ptr<const geo::Polyline>> routes;
  for (const auto& r : net.routes) {
    routes.push_back(std::make_shared<const geo::Polyline>(r.line));
  }

  auto build_world = [&](bool from_trace, const geo::Trace& trace) {
    auto world = std::make_unique<sim::World>(sim::WorldConfig{.seed = 3});
    routing::ProtocolConfig proto;
    proto.name = "Epidemic";
    if (from_trace) {
      for (auto& m : mobility::TracePlayback::from_trace(trace)) {
        world->add_node(std::move(m), routing::create_router(proto));
      }
    } else {
      for (int v = 0; v < nodes; ++v) {
        world->add_node(std::make_unique<mobility::BusMovement>(
                            routes[static_cast<std::size_t>(v) % routes.size()],
                            mobility::BusParams{}),
                        routing::create_router(proto));
      }
    }
    return world;
  };

  // Pass 1: live movement, recording positions each second.
  geo::Trace trace;
  auto live = build_world(false, trace);
  for (int second = 0; second < static_cast<int>(duration); ++second) {
    for (int v = 0; v < nodes; ++v) {
      trace.samples.push_back({static_cast<double>(second), v, live->position_of(v)});
    }
    live->run(1.0);
  }
  const auto live_contacts = live->contact_events();

  // Pass 2: replay.
  trace.sort();
  auto replay = build_world(true, trace);
  replay->run(duration);
  const auto replay_contacts = replay->contact_events();

  ASSERT_GT(live_contacts, 0);
  ASSERT_GT(replay_contacts, 0);
  const double ratio = static_cast<double>(replay_contacts) /
                       static_cast<double>(live_contacts);
  EXPECT_GT(ratio, 0.5) << "replay lost too many contacts";
  EXPECT_LT(ratio, 2.0) << "replay invented too many contacts";
}

}  // namespace
}  // namespace dtn::harness
