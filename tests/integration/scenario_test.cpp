// Integration: the bus and community scenarios end-to-end at reduced scale.
#include "harness/scenario.hpp"

#include <gtest/gtest.h>

namespace dtn::harness {
namespace {

BusScenarioParams small_bus(const std::string& protocol, std::uint64_t seed = 7) {
  BusScenarioParams p;
  p.node_count = 24;
  p.duration_s = 2000.0;
  p.seed = seed;
  p.map.rows = 8;
  p.map.cols = 10;
  p.map.block_m = 150.0;
  p.map.districts = 3;
  p.map.routes_per_district = 2;
  p.protocol.name = protocol;
  p.protocol.copies = 6;
  return p;
}

TEST(BusScenario, ProducesContactsAndTraffic) {
  const ScenarioResult r = run_bus_scenario(small_bus("Epidemic"));
  EXPECT_GT(r.contact_events, 0);
  EXPECT_GT(r.metrics.created(), 0);
  EXPECT_EQ(r.protocol, "Epidemic");
  EXPECT_EQ(r.node_count, 24);
}

TEST(BusScenario, EpidemicDeliversSomething) {
  const ScenarioResult r = run_bus_scenario(small_bus("Epidemic"));
  EXPECT_GT(r.metrics.delivered(), 0);
  EXPECT_GT(r.metrics.delivery_ratio(), 0.0);
  EXPECT_LE(r.metrics.delivery_ratio(), 1.0);
}

TEST(BusScenario, EerRunsAndDelivers) {
  const ScenarioResult r = run_bus_scenario(small_bus("EER"));
  EXPECT_GT(r.metrics.delivered(), 0);
  EXPECT_GT(r.metrics.goodput(), 0.0);
}

TEST(BusScenario, CrRunsAndDelivers) {
  const ScenarioResult r = run_bus_scenario(small_bus("CR"));
  EXPECT_GT(r.metrics.delivered(), 0);
}

TEST(BusScenario, CommunitiesMatchRouteDistricts) {
  geo::DowntownParams mp;
  mp.districts = 3;
  mp.routes_per_district = 2;
  mp.seed = 5;
  const geo::BusNetwork net = geo::generate_downtown(mp);
  const core::CommunityTable table = bus_scenario_communities(net, 12);
  EXPECT_EQ(table.node_count(), 12);
  for (int v = 0; v < 12; ++v) {
    const auto& route = net.routes[static_cast<std::size_t>(v) % net.routes.size()];
    EXPECT_EQ(table.community_of(v), route.district);
  }
}

TEST(BusScenario, TrafficStopsBeforeTtlWindowEnds) {
  BusScenarioParams p = small_bus("DirectDelivery");
  p.traffic.ttl = 600.0;
  p.duration_s = 1500.0;
  const ScenarioResult r = run_bus_scenario(p);
  // Expected message count ~ (1500 - 600) / 30 = 30.
  EXPECT_LE(r.metrics.created(), 40);
  EXPECT_GT(r.metrics.created(), 20);
}

TEST(CommunityScenario, RunsWithCr) {
  CommunityScenarioParams p;
  p.node_count = 20;
  p.communities = 4;
  p.duration_s = 1500.0;
  p.world_size_m = 600.0;
  p.world.radio_range = 30.0;
  p.protocol.name = "CR";
  p.protocol.copies = 4;
  p.seed = 3;
  const ScenarioResult r = run_community_scenario(p);
  EXPECT_GT(r.contact_events, 0);
  EXPECT_GT(r.metrics.created(), 0);
}

TEST(CommunityScenario, IntraCommunityContactsDominate) {
  // Verify the mobility substrate produces the community contact asymmetry
  // CR assumes: count contacts within vs across districts directly.
  CommunityScenarioParams p;
  p.node_count = 16;
  p.communities = 4;
  p.duration_s = 1200.0;
  p.traffic.ttl = 600.0;  // full_ttl_window needs ttl < duration
  p.world_size_m = 800.0;
  p.home_prob = 0.9;
  p.world.radio_range = 25.0;
  p.protocol.name = "Epidemic";
  const ScenarioResult r = run_community_scenario(p);
  EXPECT_GT(r.contact_events, 10);
}

}  // namespace
}  // namespace dtn::harness
