// Cross-run World reuse differential: the PR-3 reuse paths must be
// observably inert for EVERY protocol in the repository.
//
//  - reset()+rebuild (ScenarioRunner): one World re-used across a
//    12-protocol x 2-seed community-scenario grid, each run compared
//    bit-for-bit against a fresh World, in the style of the PR-2 buffer
//    differential.
//  - reseed(): the same node set restarted under a new seed — exercises
//    Router::reset() of every stateful protocol (PRoPHET tables, MaxProp
//    likelihoods/acks, EER/CR histories + MI matrices + MEMD caches, EBR
//    windows, focus timers, delegation levels) plus in-place re-init of
//    movement lanes, buffers, traffic, and metrics.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "routing/factory.hpp"
#include "sim/world.hpp"

namespace dtn::harness {
namespace {

CommunityScenarioParams community_base(const std::string& protocol,
                                       std::uint64_t seed) {
  CommunityScenarioParams p;
  p.node_count = 24;
  p.communities = 3;
  p.world_size_m = 900.0;
  p.duration_s = 1500.0;
  p.seed = seed;
  p.traffic.ttl = 600.0;
  p.protocol.name = protocol;
  p.protocol.copies = 6;
  return p;
}

void expect_same_run(const ScenarioResult& a, const ScenarioResult& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.metrics.created(), b.metrics.created());
  EXPECT_EQ(a.metrics.delivered(), b.metrics.delivered());
  EXPECT_EQ(a.metrics.relayed(), b.metrics.relayed());
  EXPECT_EQ(a.metrics.transfers_started(), b.metrics.transfers_started());
  EXPECT_EQ(a.metrics.transfers_aborted(), b.metrics.transfers_aborted());
  EXPECT_EQ(a.metrics.dropped(), b.metrics.dropped());
  EXPECT_EQ(a.metrics.expired(), b.metrics.expired());
  EXPECT_EQ(a.metrics.control_bytes(), b.metrics.control_bytes());
  EXPECT_EQ(a.contact_events, b.contact_events);
  EXPECT_EQ(a.metrics.latency_mean(), b.metrics.latency_mean());
  EXPECT_EQ(a.metrics.goodput(), b.metrics.goodput());
  EXPECT_EQ(a.metrics.hop_count_mean(), b.metrics.hop_count_mean());
}

TEST(WorldReuse, RebuiltWorldMatchesFreshAcrossAllProtocolsAndSeeds) {
  ScenarioRunner runner;  // ONE world for all 12 protocols x 2 seeds
  for (const std::string& protocol : routing::known_protocols()) {
    for (const std::uint64_t seed : {11ull, 12ull}) {
      const CommunityScenarioParams params = community_base(protocol, seed);
      const ScenarioResult fresh = run_community_scenario(params);
      const ScenarioResult reused = runner.run(params);
      expect_same_run(fresh, reused,
                      protocol + "/seed=" + std::to_string(seed));
    }
  }
}

/// Builds the community scenario directly on `world` (fresh or reused via
/// reset()); mirrors run_community_scenario so reseed() can be exercised
/// on a structure that is seed-independent.
void build_community_world(sim::World& world, const CommunityScenarioParams& params,
                           bool add_traffic = true) {
  const int l = params.communities;
  const double band = params.world_size_m / static_cast<double>(l);
  std::vector<int> cid(static_cast<std::size_t>(params.node_count));
  for (int v = 0; v < params.node_count; ++v) cid[static_cast<std::size_t>(v)] = v % l;
  auto communities = std::make_shared<const core::CommunityTable>(cid);
  routing::ProtocolConfig protocol = params.protocol;
  protocol.communities = communities;
  for (int v = 0; v < params.node_count; ++v) {
    const int c = cid[static_cast<std::size_t>(v)];
    mobility::CommunityMovementParams mp;
    mp.world_min = {0.0, 0.0};
    mp.world_max = {params.world_size_m, params.world_size_m};
    mp.home_min = {band * c, 0.0};
    mp.home_max = {band * (c + 1), params.world_size_m};
    mp.home_prob = params.home_prob;
    world.add_node(mp, routing::create_router(protocol));
  }
  if (!add_traffic) return;
  sim::TrafficParams traffic = params.traffic;
  traffic.stop = params.duration_s - traffic.ttl;
  world.set_traffic(traffic);
}

TEST(WorldReuse, ReseedMatchesFreshBuildAcrossAllProtocols) {
  for (const std::string& protocol : routing::known_protocols()) {
    SCOPED_TRACE(protocol);
    const CommunityScenarioParams first = community_base(protocol, 21);
    const CommunityScenarioParams second = community_base(protocol, 22);

    // Reference: two fresh worlds.
    const ScenarioResult fresh_a = run_community_scenario(first);
    const ScenarioResult fresh_b = run_community_scenario(second);

    // Reused: one world, built once, reseeded between the runs — same
    // router INSTANCES carried across, cleared only by Router::reset().
    sim::WorldConfig config = first.world;
    config.seed = first.seed;
    sim::World world(config);
    build_community_world(world, first);
    world.run(first.duration_s);
    EXPECT_EQ(world.metrics().created(), fresh_a.metrics.created());
    EXPECT_EQ(world.metrics().delivered(), fresh_a.metrics.delivered());
    EXPECT_EQ(world.metrics().relayed(), fresh_a.metrics.relayed());
    EXPECT_EQ(world.contact_events(), fresh_a.contact_events);
    EXPECT_EQ(world.metrics().latency_mean(), fresh_a.metrics.latency_mean());

    world.reseed(second.seed);
    world.run(second.duration_s);
    EXPECT_EQ(world.metrics().created(), fresh_b.metrics.created());
    EXPECT_EQ(world.metrics().delivered(), fresh_b.metrics.delivered());
    EXPECT_EQ(world.metrics().relayed(), fresh_b.metrics.relayed());
    EXPECT_EQ(world.metrics().dropped(), fresh_b.metrics.dropped());
    EXPECT_EQ(world.metrics().expired(), fresh_b.metrics.expired());
    EXPECT_EQ(world.metrics().control_bytes(), fresh_b.metrics.control_bytes());
    EXPECT_EQ(world.contact_events(), fresh_b.contact_events);
    EXPECT_EQ(world.metrics().latency_mean(), fresh_b.metrics.latency_mean());
    EXPECT_EQ(world.metrics().goodput(), fresh_b.metrics.goodput());
  }
}

TEST(WorldReuse, ReseedToSameSeedReproducesTheRun) {
  const CommunityScenarioParams params = community_base("EER", 31);
  sim::WorldConfig config = params.world;
  config.seed = params.seed;
  sim::World world(config);
  build_community_world(world, params);
  // Per-group buckets ride along: reseed() keeps the node set, so the
  // installed map must survive it (counters re-zeroed); a structure-
  // changing reset() must uninstall it.
  std::vector<int> node_group(static_cast<std::size_t>(params.node_count));
  for (int v = 0; v < params.node_count; ++v) {
    node_group[static_cast<std::size_t>(v)] = v % 2;
  }
  world.metrics().set_groups(node_group, 2);
  world.run(params.duration_s);
  const auto created = world.metrics().created();
  const auto delivered = world.metrics().delivered();
  const auto relayed = world.metrics().relayed();
  const auto contacts = world.contact_events();
  const double latency = world.metrics().latency_mean();
  ASSERT_TRUE(world.metrics().has_groups());
  const auto g0_created = world.metrics().group_created(0);
  const auto g1_created = world.metrics().group_created(1);
  EXPECT_EQ(g0_created + g1_created, created);

  world.reseed(params.seed);
  world.run(params.duration_s);
  EXPECT_EQ(world.metrics().created(), created);
  EXPECT_EQ(world.metrics().delivered(), delivered);
  EXPECT_EQ(world.metrics().relayed(), relayed);
  EXPECT_EQ(world.contact_events(), contacts);
  EXPECT_EQ(world.metrics().latency_mean(), latency);
  ASSERT_TRUE(world.metrics().has_groups());
  EXPECT_EQ(world.metrics().group_created(0), g0_created);
  EXPECT_EQ(world.metrics().group_created(1), g1_created);

  world.reset(config);
  EXPECT_FALSE(world.metrics().has_groups());
}

TEST(WorldReuse, ReseedDirectlyAfterShrinkingRebuildFinalizesFirst) {
  // reseed() must self-heal a pending rebuild (like run()/step() do): a
  // reset()+add_node rebuild to FEWER nodes followed immediately by
  // reseed() — no run in between — must trim the surplus slots, not index
  // the cleared movement lanes out of bounds.
  CommunityScenarioParams big = community_base("Epidemic", 51);
  big.node_count = 30;
  CommunityScenarioParams small = big;
  small.node_count = 12;

  sim::WorldConfig config = big.world;
  config.seed = big.seed;
  sim::World world(config);
  build_community_world(world, big);
  world.run(big.duration_s);

  sim::WorldConfig small_config = small.world;
  small_config.seed = small.seed;
  world.reset(small_config);
  // No set_traffic yet, so the rebuild (12 of 30 slots) is still pending
  // when reseed() runs.
  build_community_world(world, small, /*add_traffic=*/false);
  world.reseed(52);
  sim::TrafficParams traffic = small.traffic;
  traffic.stop = small.duration_s - traffic.ttl;
  world.set_traffic(traffic);  // derives from config_.seed == 52
  world.run(small.duration_s);

  CommunityScenarioParams fresh_params = small;
  fresh_params.seed = 52;
  const ScenarioResult fresh = run_community_scenario(fresh_params);
  EXPECT_EQ(world.node_count(), 12);
  EXPECT_EQ(world.metrics().created(), fresh.metrics.created());
  EXPECT_EQ(world.metrics().delivered(), fresh.metrics.delivered());
  EXPECT_EQ(world.metrics().relayed(), fresh.metrics.relayed());
  EXPECT_EQ(world.contact_events(), fresh.contact_events);
}

TEST(WorldReuse, RebuildAcrossDifferentNodeCountsAndBufferSizes) {
  // Shrinking and growing rebuilds (including a buffer-capacity change)
  // must still match fresh worlds exactly.
  ScenarioRunner runner;
  for (const int nodes : {30, 12, 40}) {
    for (const std::int64_t buffer : {std::int64_t{1} << 20, std::int64_t{128} * 1024}) {
      CommunityScenarioParams params = community_base("Epidemic", 41);
      params.node_count = nodes;
      params.world.buffer_bytes = buffer;
      const ScenarioResult fresh = run_community_scenario(params);
      const ScenarioResult reused = runner.run(params);
      expect_same_run(fresh, reused,
                      "n=" + std::to_string(nodes) + "/buf=" + std::to_string(buffer));
    }
  }
}

}  // namespace
}  // namespace dtn::harness
