// Bit-for-bit reproducibility: identical seeds give identical runs,
// different seeds give different runs, across protocols.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace dtn::harness {
namespace {

BusScenarioParams base(const std::string& protocol, std::uint64_t seed) {
  BusScenarioParams p;
  p.node_count = 20;
  p.duration_s = 1500.0;
  p.seed = seed;
  p.map.rows = 6;
  p.map.cols = 8;
  p.map.districts = 2;
  p.map.routes_per_district = 2;
  p.protocol.name = protocol;
  p.protocol.copies = 6;
  return p;
}

class DeterminismTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismTest, SameSeedSameMetrics) {
  const auto a = run_bus_scenario(base(GetParam(), 11));
  const auto b = run_bus_scenario(base(GetParam(), 11));
  EXPECT_EQ(a.metrics.created(), b.metrics.created());
  EXPECT_EQ(a.metrics.delivered(), b.metrics.delivered());
  EXPECT_EQ(a.metrics.relayed(), b.metrics.relayed());
  EXPECT_EQ(a.metrics.dropped(), b.metrics.dropped());
  EXPECT_EQ(a.contact_events, b.contact_events);
  EXPECT_DOUBLE_EQ(a.metrics.latency_mean(), b.metrics.latency_mean());
  EXPECT_EQ(a.metrics.control_bytes(), b.metrics.control_bytes());
}

TEST_P(DeterminismTest, DifferentSeedDifferentRun) {
  const auto a = run_bus_scenario(base(GetParam(), 11));
  const auto b = run_bus_scenario(base(GetParam(), 12));
  // Contact structure differs with the seed (map + traffic + movement).
  EXPECT_NE(a.contact_events, b.contact_events);
}

INSTANTIATE_TEST_SUITE_P(Protocols, DeterminismTest,
                         ::testing::Values("Epidemic", "SprayAndWait", "EBR", "EER",
                                           "CR", "MaxProp"));

}  // namespace
}  // namespace dtn::harness
