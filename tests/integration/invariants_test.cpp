// Cross-protocol invariants on full simulation runs: the accounting
// identities the metrics must satisfy no matter the protocol.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace dtn::harness {
namespace {

BusScenarioParams scenario(const std::string& protocol) {
  BusScenarioParams p;
  p.node_count = 24;
  p.duration_s = 2000.0;
  p.seed = 21;
  p.map.rows = 8;
  p.map.cols = 10;
  p.map.districts = 3;
  p.map.routes_per_district = 2;
  p.protocol.name = protocol;
  p.protocol.copies = 6;
  return p;
}

class InvariantsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(InvariantsTest, MetricsIdentitiesHold) {
  const ScenarioResult r = run_bus_scenario(scenario(GetParam()));
  const sim::Metrics& m = r.metrics;

  EXPECT_GE(m.created(), 0);
  EXPECT_LE(m.delivered(), m.created()) << "can't deliver the ungenerated";
  EXPECT_GE(m.delivery_ratio(), 0.0);
  EXPECT_LE(m.delivery_ratio(), 1.0);
  EXPECT_GE(m.goodput(), 0.0);
  EXPECT_LE(m.goodput(), 1.0 + 1e-12)
      << "every delivery is a completed relay, so goodput <= 1";
  EXPECT_LE(m.relayed(), m.transfers_started());
  EXPECT_LE(m.transfers_aborted(), m.transfers_started());

  if (m.delivered() > 0) {
    // Latency within (0, TTL]: deliveries past TTL never count.
    EXPECT_GT(m.latency_stats().min(), 0.0);
    EXPECT_LE(m.latency_stats().max(), 1200.0 + 1e-9);
    EXPECT_GE(m.hop_count_mean(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, InvariantsTest,
                         ::testing::Values("Epidemic", "DirectDelivery", "SprayAndWait",
                                           "SprayAndFocus", "EBR", "MaxProp", "PRoPHET",
                                           "EER", "CR"));

TEST(Invariants, DirectDeliveryGoodputIsOne) {
  const ScenarioResult r = run_bus_scenario(scenario("DirectDelivery"));
  if (r.metrics.relayed() > 0) {
    // Every relay of DirectDelivery IS a delivery attempt to the
    // destination; duplicates are impossible with a single copy.
    EXPECT_DOUBLE_EQ(r.metrics.goodput(), 1.0);
  }
}

TEST(Invariants, EpidemicDeliversAtLeastAsMuchAsDirect) {
  const auto direct = run_bus_scenario(scenario("DirectDelivery"));
  const auto epidemic = run_bus_scenario(scenario("Epidemic"));
  EXPECT_GE(epidemic.metrics.delivered(), direct.metrics.delivered());
}

TEST(Invariants, QuotaProtocolsRelayLessThanEpidemic) {
  const auto epidemic = run_bus_scenario(scenario("Epidemic"));
  const auto snw = run_bus_scenario(scenario("SprayAndWait"));
  const auto eer = run_bus_scenario(scenario("EER"));
  EXPECT_LT(snw.metrics.relayed(), epidemic.metrics.relayed());
  EXPECT_LT(eer.metrics.relayed(), epidemic.metrics.relayed());
}

}  // namespace
}  // namespace dtn::harness
