// Harness sweep runner: grid execution, aggregation, and table rendering.
#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace dtn::harness {
namespace {

SweepOptions tiny_sweep() {
  SweepOptions opt;
  opt.protocols = {"DirectDelivery", "Epidemic"};
  opt.node_counts = {12, 20};
  opt.seeds = 2;
  opt.seed_base = 77;
  opt.base.duration_s = 1200.0;
  opt.base.traffic.ttl = 600.0;
  opt.base.map.rows = 6;
  opt.base.map.cols = 8;
  opt.base.map.districts = 2;
  opt.base.map.routes_per_district = 2;
  return opt;
}

TEST(Sweep, ProducesOnePointPerProtocolNodeCount) {
  const auto results = run_sweep(tiny_sweep());
  ASSERT_EQ(results.size(), 4u);
  for (const auto& p : results) {
    EXPECT_EQ(p.delivery_ratio.count(), 2u) << "one sample per seed";
    EXPECT_EQ(p.goodput.count(), 2u);
  }
}

TEST(Sweep, ProgressCallbackFiresPerRun) {
  SweepOptions opt = tiny_sweep();
  std::atomic<int> calls{0};
  opt.progress = [&calls](const std::string&) { calls.fetch_add(1); };
  run_sweep(opt);
  EXPECT_EQ(calls.load(), 2 * 2 * 2);  // protocols * node counts * seeds
}

TEST(Sweep, OrderFollowsInputs) {
  const auto results = run_sweep(tiny_sweep());
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].protocol, "DirectDelivery");
  EXPECT_EQ(results[0].node_count, 12);
  EXPECT_EQ(results[1].node_count, 20);
  EXPECT_EQ(results[2].protocol, "Epidemic");
}

TEST(Sweep, EpidemicDominatesDirectDeliveryOnDeliveries) {
  const auto results = run_sweep(tiny_sweep());
  // Aggregate over node counts: epidemic's flooding can't deliver less.
  double direct = 0.0;
  double epidemic = 0.0;
  for (const auto& p : results) {
    (p.protocol == "Epidemic" ? epidemic : direct) += p.delivery_ratio.mean();
  }
  EXPECT_GE(epidemic + 1e-9, direct);
}

TEST(Sweep, MetricTableLayout) {
  const auto results = run_sweep(tiny_sweep());
  const auto table = metric_table(results, Metric::kDeliveryRatio);
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("nodes"), std::string::npos);
  EXPECT_NE(rendered.find("DirectDelivery"), std::string::npos);
  EXPECT_NE(rendered.find("Epidemic"), std::string::npos);
  EXPECT_NE(rendered.find("12"), std::string::npos);
  EXPECT_NE(rendered.find("20"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Sweep, MetricAccessorsCoverAllMetrics) {
  const auto results = run_sweep(tiny_sweep());
  for (const auto metric : {Metric::kDeliveryRatio, Metric::kLatency, Metric::kGoodput,
                            Metric::kControlMb, Metric::kRelayed}) {
    EXPECT_FALSE(metric_name(metric).empty());
    EXPECT_GE(metric_value(results[0], metric), 0.0);
  }
}

TEST(Sweep, ParallelAndSerialAgree) {
  SweepOptions opt = tiny_sweep();
  opt.threads = 1;
  const auto serial = run_sweep(opt);
  opt.threads = 4;
  const auto parallel = run_sweep(opt);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].delivery_ratio.mean(),
                     parallel[i].delivery_ratio.mean());
    EXPECT_DOUBLE_EQ(serial[i].goodput.mean(), parallel[i].goodput.mean());
  }
}

}  // namespace
}  // namespace dtn::harness
