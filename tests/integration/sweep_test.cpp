// Harness sweep runner: grid execution, aggregation, and table rendering.
#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace dtn::harness {
namespace {

SweepOptions tiny_sweep() {
  SweepOptions opt;
  opt.protocols = {"DirectDelivery", "Epidemic"};
  opt.node_counts = {12, 20};
  opt.seeds = 2;
  opt.seed_base = 77;
  opt.base.duration_s = 1200.0;
  opt.base.traffic.ttl = 600.0;
  opt.base.map.rows = 6;
  opt.base.map.cols = 8;
  opt.base.map.districts = 2;
  opt.base.map.routes_per_district = 2;
  return opt;
}

TEST(Sweep, ProducesOnePointPerProtocolNodeCount) {
  const auto results = run_sweep(tiny_sweep());
  ASSERT_EQ(results.size(), 4u);
  for (const auto& p : results) {
    EXPECT_EQ(p.delivery_ratio.count(), 2u) << "one sample per seed";
    EXPECT_EQ(p.goodput.count(), 2u);
  }
}

TEST(Sweep, ProgressCallbackFiresPerRun) {
  SweepOptions opt = tiny_sweep();
  std::atomic<int> calls{0};
  opt.progress = [&calls](const std::string&) { calls.fetch_add(1); };
  run_sweep(opt);
  EXPECT_EQ(calls.load(), 2 * 2 * 2);  // protocols * node counts * seeds
}

TEST(Sweep, OrderFollowsInputs) {
  const auto results = run_sweep(tiny_sweep());
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].protocol, "DirectDelivery");
  EXPECT_EQ(results[0].node_count, 12);
  EXPECT_EQ(results[1].node_count, 20);
  EXPECT_EQ(results[2].protocol, "Epidemic");
}

TEST(Sweep, EpidemicDominatesDirectDeliveryOnDeliveries) {
  const auto results = run_sweep(tiny_sweep());
  // Aggregate over node counts: epidemic's flooding can't deliver less.
  double direct = 0.0;
  double epidemic = 0.0;
  for (const auto& p : results) {
    (p.protocol == "Epidemic" ? epidemic : direct) += p.delivery_ratio.mean();
  }
  EXPECT_GE(epidemic + 1e-9, direct);
}

TEST(Sweep, MetricTableLayout) {
  const auto results = run_sweep(tiny_sweep());
  const auto table = metric_table(results, Metric::kDeliveryRatio);
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("nodes"), std::string::npos);
  EXPECT_NE(rendered.find("DirectDelivery"), std::string::npos);
  EXPECT_NE(rendered.find("Epidemic"), std::string::npos);
  EXPECT_NE(rendered.find("12"), std::string::npos);
  EXPECT_NE(rendered.find("20"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Sweep, MetricAccessorsCoverAllMetrics) {
  const auto results = run_sweep(tiny_sweep());
  for (const auto metric : {Metric::kDeliveryRatio, Metric::kLatency, Metric::kGoodput,
                            Metric::kControlMb, Metric::kRelayed}) {
    EXPECT_FALSE(metric_name(metric).empty());
    EXPECT_GE(metric_value(results[0], metric), 0.0);
  }
}

TEST(Sweep, ParallelAndSerialAgree) {
  SweepOptions opt = tiny_sweep();
  opt.threads = 1;
  const auto serial = run_sweep(opt);
  opt.threads = 4;
  const auto parallel = run_sweep(opt);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].delivery_ratio.mean(),
                     parallel[i].delivery_ratio.mean());
    EXPECT_DOUBLE_EQ(serial[i].goodput.mean(), parallel[i].goodput.mean());
  }
}

/// Requires every aggregate of every point to be EXACTLY equal (same bits,
/// same sample counts) between two sweeps.
void expect_identical_results(const std::vector<PointResult>& a,
                              const std::vector<PointResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].protocol + "/n=" + std::to_string(a[i].node_count));
    EXPECT_EQ(a[i].protocol, b[i].protocol);
    EXPECT_EQ(a[i].node_count, b[i].node_count);
    EXPECT_EQ(a[i].delivery_ratio.count(), b[i].delivery_ratio.count());
    for (const auto metric : {Metric::kDeliveryRatio, Metric::kLatency,
                              Metric::kGoodput, Metric::kControlMb, Metric::kRelayed}) {
      EXPECT_EQ(metric_value(a[i], metric), metric_value(b[i], metric))
          << metric_name(metric);
    }
    EXPECT_EQ(a[i].contacts.mean(), b[i].contacts.mean());
    EXPECT_EQ(a[i].delivery_ratio.stddev(), b[i].delivery_ratio.stddev());
  }
}

TEST(Sweep, AggregatesBitIdenticalAcrossThreadCounts) {
  // The reused engine folds per-task samples in task order after the loop,
  // so aggregates cannot depend on worker count or completion order.
  SweepOptions opt = tiny_sweep();
  opt.seeds = 3;
  opt.threads = 1;
  const auto one = run_sweep(opt);
  opt.threads = 4;
  const auto four = run_sweep(opt);
  opt.threads = 0;  // hardware concurrency
  const auto hw = run_sweep(opt);
  expect_identical_results(one, four);
  expect_identical_results(one, hw);
}

TEST(Sweep, LegacyEngineProducesBitIdenticalAggregates) {
  // Fresh-world legacy execution vs reused-world chunked execution: the
  // world-reuse path must be observably inert. Single-threaded so the
  // legacy mutex merge runs in task order too (its accumulation order is
  // completion order, which multi-threaded scheduling would perturb).
  SweepOptions opt = tiny_sweep();
  opt.threads = 1;
  opt.exec = SweepOptions::Exec::kLegacy;
  const auto legacy = run_sweep(opt);
  opt.exec = SweepOptions::Exec::kReused;
  const auto reused = run_sweep(opt);
  expect_identical_results(legacy, reused);
}

TEST(Sweep, ProgressFiresPerRunOnLegacyEngineToo) {
  SweepOptions opt = tiny_sweep();
  opt.exec = SweepOptions::Exec::kLegacy;
  std::atomic<int> calls{0};
  opt.progress = [&calls](const std::string&) { calls.fetch_add(1); };
  run_sweep(opt);
  EXPECT_EQ(calls.load(), 2 * 2 * 2);
}

TEST(Sweep, ScenarioRunnerReuseMatchesFreshWorlds) {
  // One runner executing a protocol/node-count/seed mix back to back must
  // reproduce fresh-world runs bit for bit (World::reset contract at the
  // harness level; the 12-protocol sweep lives in world_reuse_test).
  SweepOptions opt = tiny_sweep();
  ScenarioRunner runner;
  for (const auto& protocol : opt.protocols) {
    for (const int nodes : opt.node_counts) {
      for (int s = 0; s < opt.seeds; ++s) {
        BusScenarioParams params = opt.base;
        params.protocol.name = protocol;
        params.node_count = nodes;
        params.seed = opt.seed_base + static_cast<std::uint64_t>(s);
        const ScenarioResult fresh = run_bus_scenario(params);
        const ScenarioResult reused = runner.run(params);
        SCOPED_TRACE(protocol + "/n=" + std::to_string(nodes) +
                     "/seed=" + std::to_string(params.seed));
        EXPECT_EQ(fresh.metrics.created(), reused.metrics.created());
        EXPECT_EQ(fresh.metrics.delivered(), reused.metrics.delivered());
        EXPECT_EQ(fresh.metrics.relayed(), reused.metrics.relayed());
        EXPECT_EQ(fresh.metrics.dropped(), reused.metrics.dropped());
        EXPECT_EQ(fresh.metrics.control_bytes(), reused.metrics.control_bytes());
        EXPECT_EQ(fresh.contact_events, reused.contact_events);
        EXPECT_EQ(fresh.metrics.latency_mean(), reused.metrics.latency_mean());
      }
    }
  }
}

}  // namespace
}  // namespace dtn::harness
