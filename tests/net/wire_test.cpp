// Properties of the %DTNW1 wire framing (net/wire.hpp) — the transport
// integrity layer under the multi-host campaign fabric — plus a loopback
// smoke of the blocking socket wrappers (net/socket.hpp). The framing
// discipline mirrors the sweep journal's (%DTNJ1: length + CRC-32), but
// the recovery posture is the opposite: a journal salvages its longest
// valid prefix, while a TCP stream latches corrupt — there is no
// resynchronization point inside a byte stream.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"

namespace {

using dtn::net::FrameDecoder;
using dtn::net::Message;
using dtn::net::MessageType;

const std::vector<MessageType> kAllTypes = {
    MessageType::kHello,   MessageType::kAssign, MessageType::kProgress,
    MessageType::kJournal, MessageType::kDone,   MessageType::kError,
};

// Payloads chosen to attack the framing: empty, binary with NULs and
// newlines, an embedded frame magic, and a header-shaped line.
const std::vector<std::string> kPayloads = {
    "",
    "plain text",
    std::string("\x00\x01\xff\n\r\x1f binary", 12),
    "%DTNW1 hello 5 00000000\nnested magic",
    "progress 3 4096",
    std::string(100000, 'x'),
};

TEST(WireFrame, RoundTripsEveryTypeAndPayload) {
  for (MessageType type : kAllTypes) {
    for (const std::string& payload : kPayloads) {
      const std::string frame = dtn::net::encode_frame(type, payload);
      FrameDecoder decoder;
      decoder.feed(frame.data(), frame.size());
      Message msg;
      ASSERT_EQ(decoder.next(&msg), FrameDecoder::Result::kMessage);
      EXPECT_EQ(msg.type, type);
      EXPECT_EQ(msg.payload, payload);
      EXPECT_EQ(decoder.next(&msg), FrameDecoder::Result::kNeedMore);
      EXPECT_FALSE(decoder.corrupt());
    }
  }
}

TEST(WireFrame, ByteAtATimeFeedYieldsTheSameMessages) {
  std::string stream;
  for (MessageType type : kAllTypes) {
    stream += dtn::net::encode_frame(type, "payload for " +
                                               std::string(message_type_token(type)));
  }
  FrameDecoder decoder;
  std::vector<Message> got;
  for (char byte : stream) {
    decoder.feed(&byte, 1);
    Message msg;
    while (decoder.next(&msg) == FrameDecoder::Result::kMessage) {
      got.push_back(msg);
    }
    ASSERT_FALSE(decoder.corrupt());
  }
  ASSERT_EQ(got.size(), kAllTypes.size());
  for (std::size_t i = 0; i < kAllTypes.size(); ++i) {
    EXPECT_EQ(got[i].type, kAllTypes[i]);
    EXPECT_EQ(got[i].payload,
              "payload for " + std::string(message_type_token(kAllTypes[i])));
  }
}

TEST(WireFrame, EveryStrictPrefixNeedsMore) {
  const std::string frame =
      dtn::net::encode_frame(MessageType::kAssign, "partial delivery");
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(frame.data(), cut);
    Message msg;
    EXPECT_EQ(decoder.next(&msg), FrameDecoder::Result::kNeedMore)
        << "prefix of " << cut << " bytes decoded early";
    EXPECT_FALSE(decoder.corrupt());
    EXPECT_EQ(decoder.pending(), cut);
  }
}

// The core integrity property: no single-byte flip anywhere in a frame
// may decode as a DIFFERENT valid message. Either the CRC/len/grammar
// catches it (corrupt) or — for flips confined to the payload of a frame
// whose CRC happens to still match, which CRC-32 makes impossible for
// single flips — the message would have to be identical.
TEST(WireFrame, SingleByteFlipsNeverYieldADifferentMessage) {
  const std::string payload = "determinism is the correctness anchor";
  const std::string frame = dtn::net::encode_frame(MessageType::kDone, payload);
  for (std::size_t at = 0; at < frame.size(); ++at) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = frame;
      mutated[at] = static_cast<char>(mutated[at] ^ (1 << bit));
      FrameDecoder decoder;
      decoder.feed(mutated.data(), mutated.size());
      Message msg;
      const FrameDecoder::Result result = decoder.next(&msg);
      if (result == FrameDecoder::Result::kMessage) {
        EXPECT_EQ(msg.type, MessageType::kDone)
            << "flip at byte " << at << " bit " << bit;
        EXPECT_EQ(msg.payload, payload)
            << "flip at byte " << at << " bit " << bit;
      } else {
        // kNeedMore is acceptable too: a flip inside the length field can
        // legally promise more bytes than were sent. What is NOT
        // acceptable is a different decoded message, checked above.
        SUCCEED();
      }
    }
  }
}

TEST(WireFrame, CorruptionLatches) {
  FrameDecoder decoder;
  const std::string garbage = "not a frame at all\n";
  decoder.feed(garbage.data(), garbage.size());
  Message msg;
  EXPECT_EQ(decoder.next(&msg), FrameDecoder::Result::kCorrupt);
  EXPECT_TRUE(decoder.corrupt());
  EXPECT_FALSE(decoder.corrupt_reason().empty());
  // Even a pristine frame afterwards must not resurrect the stream.
  const std::string fine = dtn::net::encode_frame(MessageType::kHello, "hi");
  decoder.feed(fine.data(), fine.size());
  EXPECT_EQ(decoder.next(&msg), FrameDecoder::Result::kCorrupt);
}

TEST(WireFrame, OversizedLengthIsCorruptNotAllocation) {
  // A length just past the cap must be rejected from the header alone —
  // long before any 256 MiB buffer is reserved.
  const std::string header = "%DTNW1 hello 268435457 00000000\n";
  FrameDecoder decoder;
  decoder.feed(header.data(), header.size());
  Message msg;
  EXPECT_EQ(decoder.next(&msg), FrameDecoder::Result::kCorrupt);
}

TEST(WireFrame, UnknownTypeTokenIsCorrupt) {
  const std::string good = dtn::net::encode_frame(MessageType::kHello, "x");
  std::string bad = good;
  bad.replace(bad.find("hello"), 5, "nohel");
  FrameDecoder decoder;
  bad.resize(bad.size());
  decoder.feed(bad.data(), bad.size());
  Message msg;
  EXPECT_EQ(decoder.next(&msg), FrameDecoder::Result::kCorrupt);
}

// ---- socket smoke -----------------------------------------------------------

TEST(Socket, LoopbackSendRecvAndAcceptTimeout) {
  std::string error;
  dtn::net::Listener listener = dtn::net::Listener::open("127.0.0.1", 0, &error);
  ASSERT_TRUE(listener.is_open()) << error;
  ASSERT_GT(listener.port(), 0);

  // No pending connection: accept must time out quietly (closed stream,
  // empty error), not report a failure.
  dtn::net::Stream none = listener.accept(10, &error);
  EXPECT_FALSE(none.open());
  EXPECT_TRUE(error.empty()) << error;

  std::thread client([port = listener.port()] {
    std::string cerr_text;
    dtn::net::Stream conn =
        dtn::net::Stream::connect("127.0.0.1", port, 2000, &cerr_text);
    ASSERT_TRUE(conn.open()) << cerr_text;
    ASSERT_TRUE(dtn::net::send_message(conn, MessageType::kHello, "ping"));
    dtn::net::FrameDecoder decoder;
    dtn::net::Message msg;
    ASSERT_EQ(dtn::net::recv_message(conn, decoder, 2000, &msg, &cerr_text),
              dtn::net::WireRecvStatus::kMessage)
        << cerr_text;
    EXPECT_EQ(msg.type, MessageType::kDone);
    EXPECT_EQ(msg.payload, "pong");
  });

  dtn::net::Stream server = listener.accept(2000, &error);
  ASSERT_TRUE(server.open()) << error;
  EXPECT_NE(server.peer(), "?");
  dtn::net::FrameDecoder decoder;
  dtn::net::Message msg;
  ASSERT_EQ(dtn::net::recv_message(server, decoder, 2000, &msg, &error),
            dtn::net::WireRecvStatus::kMessage)
      << error;
  EXPECT_EQ(msg.type, MessageType::kHello);
  EXPECT_EQ(msg.payload, "ping");
  ASSERT_TRUE(dtn::net::send_message(server, MessageType::kDone, "pong"));
  client.join();

  // Client side closed: the server must see a clean EOF, not corruption.
  EXPECT_EQ(dtn::net::recv_message(server, decoder, 2000, &msg, &error),
            dtn::net::WireRecvStatus::kEof);
}

TEST(Socket, ConnectToClosedPortFails) {
  std::string error;
  // Open then immediately close a listener to obtain a port that is very
  // likely unbound.
  int dead_port = 0;
  {
    dtn::net::Listener listener = dtn::net::Listener::open("127.0.0.1", 0, &error);
    ASSERT_TRUE(listener.is_open()) << error;
    dead_port = listener.port();
  }
  dtn::net::Stream conn =
      dtn::net::Stream::connect("127.0.0.1", dead_port, 1000, &error);
  EXPECT_FALSE(conn.open());
  EXPECT_FALSE(error.empty());
}

}  // namespace
