// End-to-end loopback acceptance of the multi-host campaign fabric: real
// `dtnsim serve` daemons (fork/exec'd from the build's own binary), a
// real `dtnsim sweep --hosts` driver, real TCP on 127.0.0.1.
//
// The properties proven here are the fabric's contract:
//   1. a two-daemon campaign produces aggregates BYTE-IDENTICAL to the
//      single-process run, modulo the documented volatile `"exec` lines;
//   2. SIGKILLing a daemon still converges (the driver reassigns the dead
//      daemon's shard to a surviving host) with identical bytes;
//   3. killing EVERY daemon degrades to exit 1 with received journals
//      kept, and a later `--resume` against restarted daemons closes
//      exactly the gap — same bytes again;
//   4. a daemon refuses an ASSIGN whose campaign does not match the HELLO
//      fingerprint digest (foreign campaign), loudly, with an ERROR frame.
//
// Compiled only when CMake bakes in DTNSIM_BINARY (the dtnsim tool path).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/remote.hpp"
#include "harness/spec_io.hpp"
#include "harness/sweep.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "util/subprocess.hpp"

#ifndef DTNSIM_BINARY
#error "serve_loopback_test needs -DDTNSIM_BINARY=\"...\" from CMake"
#endif
#ifndef DTNSIM_FIXTURE_DIR
#error "serve_loopback_test needs -DDTNSIM_FIXTURE_DIR=\"...\" from CMake"
#endif

namespace {

using namespace dtn;

const char* const kFixture = DTNSIM_FIXTURE_DIR "/resume.cfg";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Drops every line containing `"exec` — the documented volatile-metadata
/// filter of the dtnsim-sweep/1 JSON schema (wall_ms, resumed, origin).
std::string filter_exec_lines(const std::string& text) {
  std::string kept;
  std::size_t at = 0;
  while (at < text.size()) {
    std::size_t nl = text.find('\n', at);
    if (nl == std::string::npos) nl = text.size() - 1;
    const std::string line = text.substr(at, nl - at + 1);
    if (line.find("\"exec") == std::string::npos) kept += line;
    at = nl + 1;
  }
  return kept;
}

/// One `dtnsim serve` daemon on an ephemeral loopback port.
struct Daemon {
  util::Subprocess proc;
  int port = 0;

  bool start(const std::string& scratch, const std::string& port_file) {
    std::remove(port_file.c_str());
    std::string error;
    if (!proc.spawn({DTNSIM_BINARY, "serve", "--port", "0", "--bind",
                     "127.0.0.1", "--scratch", scratch, "--port-file",
                     port_file},
                    /*discard_stdout=*/true, &error)) {
      ADD_FAILURE() << "cannot spawn daemon: " << error;
      return false;
    }
    // The daemon publishes its bound port via rename; poll for it.
    for (int tries = 0; tries < 250; ++tries) {
      const std::string text = read_file(port_file);
      if (!text.empty()) {
        port = std::stoi(text);
        return port > 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "daemon never published its port";
    return false;
  }

  void stop() {
    proc.kill_hard();
    proc.wait();
  }
};

int run_driver(const std::vector<std::string>& extra_args) {
  std::vector<std::string> argv = {
      DTNSIM_BINARY, "sweep",  kFixture, "--axis", "protocol.copies=2,4",
      "--seeds",     "2",      "--quiet"};
  argv.insert(argv.end(), extra_args.begin(), extra_args.end());
  util::Subprocess driver;
  std::string error;
  if (!driver.spawn(argv, /*discard_stdout=*/true, &error)) {
    ADD_FAILURE() << "cannot spawn driver: " << error;
    return -1;
  }
  const util::ProcessStatus status = driver.wait();
  return status.exited ? status.exit_code : -status.term_signal;
}

std::string hosts_arg(const std::vector<const Daemon*>& daemons) {
  std::string joined;
  for (const Daemon* d : daemons) {
    if (!joined.empty()) joined += ",";
    joined += "127.0.0.1:" + std::to_string(d->port);
  }
  return joined;
}

class ServeLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "serve_loopback/";
    // Scrub state left by previous invocations: the campaign fingerprint
    // deliberately ignores the binary's version, so a daemon pointed at a
    // stale scratch dir would --resume metric bits computed by an OLDER
    // build and the byte-identity assertions would compare across builds.
    std::error_code scrub_error;
    std::filesystem::remove_all(dir_, scrub_error);
    std::filesystem::create_directories(dir_);
    std::remove((dir_ + "clean.json").c_str());
    ASSERT_EQ(run_driver({"--out", dir_ + "clean.json"}), 0);
    clean_ = filter_exec_lines(read_file(dir_ + "clean.json"));
    ASSERT_FALSE(clean_.empty());
  }

  std::string dir_;
  std::string clean_;  ///< single-process reference, volatile lines dropped
};

TEST_F(ServeLoopbackTest, TwoDaemonCampaignMatchesSingleProcessBytes) {
  Daemon a, b;
  ASSERT_TRUE(a.start(dir_ + "s_a", dir_ + "p_a"));
  ASSERT_TRUE(b.start(dir_ + "s_b", dir_ + "p_b"));
  const std::string out = dir_ + "multi.json";
  EXPECT_EQ(run_driver({"--out", out, "--hosts", hosts_arg({&a, &b})}), 0);
  EXPECT_EQ(filter_exec_lines(read_file(out)), clean_);
  // Origins are per-shard remote endpoints, on the volatile lines only.
  const std::string raw = read_file(out);
  EXPECT_NE(raw.find("\"origin\": \"127.0.0.1:"), std::string::npos);
  a.stop();
  b.stop();
}

TEST_F(ServeLoopbackTest, SigkilledDaemonShardIsReassigned) {
  Daemon a, b;
  ASSERT_TRUE(a.start(dir_ + "s_a2", dir_ + "p_a2"));
  ASSERT_TRUE(b.start(dir_ + "s_b2", dir_ + "p_b2"));
  const std::string out = dir_ + "killed.json";
  const std::string hosts = hosts_arg({&a, &b});

  // Kill daemon `a` shortly after the campaign starts. Wherever the kill
  // lands — before the connect, mid-shard, or after its shard completed —
  // the driver must converge to the same bytes: failover is allowed to
  // change WHO computes, never WHAT.
  std::thread killer([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    a.stop();
  });
  EXPECT_EQ(run_driver({"--out", out, "--hosts", hosts}), 0);
  killer.join();
  EXPECT_EQ(filter_exec_lines(read_file(out)), clean_);
  b.stop();
}

TEST_F(ServeLoopbackTest, AllDaemonsDeadDegradesThenResumeConverges) {
  Daemon a, b;
  ASSERT_TRUE(a.start(dir_ + "s_a3", dir_ + "p_a3"));
  ASSERT_TRUE(b.start(dir_ + "s_b3", dir_ + "p_b3"));
  const std::string hosts = hosts_arg({&a, &b});
  a.stop();
  b.stop();  // every daemon dead before the campaign starts

  const std::string out = dir_ + "degraded.json";
  // Exhausted retries must degrade: exit 1, journals kept for --resume.
  EXPECT_EQ(run_driver({"--out", out, "--hosts", hosts, "--worker-retries",
                        "1"}),
            1);
  // Degradation still publishes (all points failed-with-reason) and keeps
  // the shard work dir as the resume anchor.
  EXPECT_NE(read_file(out).find("\"status\": \"failed\""), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(out + ".journal.shards"));

  // Fresh daemons (new ports), resume the same campaign: the gap — here
  // everything — is recomputed and the bytes converge.
  Daemon c, d;
  ASSERT_TRUE(c.start(dir_ + "s_c3", dir_ + "p_c3"));
  ASSERT_TRUE(d.start(dir_ + "s_d3", dir_ + "p_d3"));
  EXPECT_EQ(run_driver({"--out", out, "--hosts", hosts_arg({&c, &d}),
                        "--resume"}),
            0);
  EXPECT_EQ(filter_exec_lines(read_file(out)), clean_);
  c.stop();
  d.stop();
}

TEST_F(ServeLoopbackTest, ForeignFingerprintAssignIsRefused) {
  Daemon a;
  ASSERT_TRUE(a.start(dir_ + "s_a4", dir_ + "p_a4"));

  // Speak the protocol by hand: a HELLO advertising one campaign's digest,
  // then an ASSIGN carrying a DIFFERENT campaign.
  std::string error;
  net::Stream conn = net::Stream::connect("127.0.0.1", a.port, 5000, &error);
  ASSERT_TRUE(conn.open()) << error;
  const std::string hello =
      harness::serialize_sweep_hello("a fingerprint of some other campaign");
  ASSERT_TRUE(net::send_message(conn, net::MessageType::kHello, hello));
  net::FrameDecoder decoder;
  net::Message msg;
  ASSERT_EQ(net::recv_message(conn, decoder, 5000, &msg, &error),
            net::WireRecvStatus::kMessage)
      << error;
  ASSERT_EQ(msg.type, net::MessageType::kHello);  // echo ack

  harness::SpecSweepOptions options;
  options.base = harness::load_spec(kFixture);
  harness::SweepAxis axis;
  axis.key = "protocol.copies";
  axis.values = {"2", "4"};
  options.axes.push_back(axis);
  options.seeds = 2;
  options.seed_base = 7;
  options.shard_index = 0;
  options.shard_count = 1;
  ASSERT_TRUE(net::send_message(conn, net::MessageType::kAssign,
                                harness::serialize_sweep_assignment(options)));
  ASSERT_EQ(net::recv_message(conn, decoder, 5000, &msg, &error),
            net::WireRecvStatus::kMessage)
      << error;
  EXPECT_EQ(msg.type, net::MessageType::kError);
  EXPECT_NE(msg.payload.find("fingerprint mismatch"), std::string::npos)
      << msg.payload;

  // The refusal must not kill the daemon: a well-matched campaign on a
  // fresh connection still gets served (HELLO echo proves liveness).
  net::Stream again = net::Stream::connect("127.0.0.1", a.port, 5000, &error);
  ASSERT_TRUE(again.open()) << error;
  const std::string fingerprint = harness::sweep_campaign_fingerprint(options);
  ASSERT_TRUE(net::send_message(again, net::MessageType::kHello,
                                harness::serialize_sweep_hello(fingerprint)));
  net::FrameDecoder decoder2;
  ASSERT_EQ(net::recv_message(again, decoder2, 5000, &msg, &error),
            net::WireRecvStatus::kMessage)
      << error;
  EXPECT_EQ(msg.type, net::MessageType::kHello);
  a.stop();
}

}  // namespace
