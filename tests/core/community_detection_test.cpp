#include "core/community_detection.hpp"

#include <gtest/gtest.h>

namespace dtn::core {
namespace {

TEST(ContactCountGraph, RecordsSymmetrically) {
  ContactCountGraph g(4);
  g.record(0, 1);
  g.record(1, 0);
  g.record(0, 1, 3);
  EXPECT_EQ(g.count(0, 1), 5);
  EXPECT_EQ(g.count(1, 0), 5);
  EXPECT_EQ(g.count(2, 3), 0);
}

TEST(ContactCountGraph, SelfContactsIgnored) {
  ContactCountGraph g(3);
  g.record(1, 1, 10);
  EXPECT_EQ(g.count(1, 1), 0);
}

TEST(DetectCommunities, TwoCliquesSeparate) {
  // Nodes {0,1,2} tightly connected, {3,4} tightly connected, weak bridge.
  ContactCountGraph g(5);
  for (const auto& [a, b] : {std::pair{0, 1}, {0, 2}, {1, 2}, {3, 4}}) {
    g.record(a, b, 10);
  }
  g.record(2, 3, 1);  // below threshold
  DetectionParams params;
  params.familiar_threshold = 3;
  const CommunityTable table = detect_communities(g, params);
  EXPECT_EQ(table.community_count(), 2);
  EXPECT_TRUE(table.same_community(0, 1));
  EXPECT_TRUE(table.same_community(0, 2));
  EXPECT_TRUE(table.same_community(3, 4));
  EXPECT_FALSE(table.same_community(2, 3));
}

TEST(DetectCommunities, StrongBridgeMerges) {
  ContactCountGraph g(4);
  g.record(0, 1, 10);
  g.record(2, 3, 10);
  g.record(1, 2, 10);  // strong bridge: all one community
  const CommunityTable table = detect_communities(g, DetectionParams{3, 0.5});
  EXPECT_EQ(table.community_count(), 1);
}

TEST(DetectCommunities, IsolatedNodesAreSingletons) {
  ContactCountGraph g(3);
  g.record(0, 1, 10);
  const CommunityTable table = detect_communities(g, DetectionParams{3, 0.5});
  EXPECT_EQ(table.community_count(), 2);
  EXPECT_TRUE(table.same_community(0, 1));
  EXPECT_FALSE(table.same_community(0, 2));
  EXPECT_EQ(table.members(table.community_of(2)).size(), 1u);
}

TEST(DetectCommunities, DenseCommunityIds) {
  ContactCountGraph g(6);
  g.record(4, 5, 10);
  const CommunityTable table = detect_communities(g, DetectionParams{3, 0.5});
  // Ids must be dense 0..k-1 regardless of which nodes are grouped.
  for (int v = 0; v < 6; ++v) {
    EXPECT_GE(table.community_of(v), 0);
    EXPECT_LT(table.community_of(v), table.community_count());
  }
}

TEST(CommunityDetector, FamiliarAfterThresholdContacts) {
  CommunityDetector d(0, DetectionParams{3, 0.5});
  d.record_contact(1);
  d.record_contact(1);
  EXPECT_FALSE(d.is_familiar(1));
  d.record_contact(1);
  EXPECT_TRUE(d.is_familiar(1));
  EXPECT_TRUE(d.local_community().count(1) > 0);
}

TEST(CommunityDetector, CommunityAlwaysContainsSelf) {
  const CommunityDetector d(7, DetectionParams{});
  EXPECT_TRUE(d.local_community().count(7) > 0);
}

TEST(CommunityDetector, SimpleAdmissionRule) {
  DetectionParams params{2, 0.5};
  CommunityDetector a(0, params);
  CommunityDetector b(1, params);
  // Both become familiar with node 2 (shared friend).
  for (int k = 0; k < 2; ++k) {
    a.record_contact(2);
    b.record_contact(2);
  }
  // b's familiar set = {2}; a's community = {0, 2}: overlap 1/1 > 0.5 ->
  // admit b into a's community and absorb b's community {1, 2}.
  a.merge_on_contact(b);
  EXPECT_TRUE(a.local_community().count(1) > 0);
  EXPECT_TRUE(a.local_community().count(2) > 0);
}

TEST(CommunityDetector, NoAdmissionWithoutOverlap) {
  DetectionParams params{2, 0.5};
  CommunityDetector a(0, params);
  CommunityDetector b(1, params);
  for (int k = 0; k < 2; ++k) {
    a.record_contact(2);
    b.record_contact(3);  // disjoint familiar sets
  }
  a.merge_on_contact(b);
  EXPECT_FALSE(a.local_community().count(1) > 0);
}

TEST(CommunityDetector, OnlineAgreesWithOfflineOnSeparatedGroups) {
  // Two groups meeting internally many times; detectors run pairwise.
  DetectionParams params{3, 0.5};
  std::vector<CommunityDetector> detectors;
  for (NodeIdx v = 0; v < 6; ++v) detectors.emplace_back(v, params);
  ContactCountGraph graph(6);
  auto meet = [&](NodeIdx a, NodeIdx b) {
    detectors[static_cast<std::size_t>(a)].record_contact(b);
    detectors[static_cast<std::size_t>(b)].record_contact(a);
    detectors[static_cast<std::size_t>(a)].merge_on_contact(
        detectors[static_cast<std::size_t>(b)]);
    detectors[static_cast<std::size_t>(b)].merge_on_contact(
        detectors[static_cast<std::size_t>(a)]);
    graph.record(a, b);
  };
  for (int round = 0; round < 5; ++round) {
    meet(0, 1);
    meet(1, 2);
    meet(0, 2);
    meet(3, 4);
    meet(4, 5);
    meet(3, 5);
  }
  const CommunityTable offline = detect_communities(graph, params);
  EXPECT_EQ(offline.community_count(), 2);
  // Online local communities match the offline components.
  for (NodeIdx v = 0; v < 3; ++v) {
    EXPECT_EQ(detectors[static_cast<std::size_t>(v)].local_community(),
              (std::set<NodeIdx>{0, 1, 2}))
        << "node " << v;
  }
  for (NodeIdx v = 3; v < 6; ++v) {
    EXPECT_EQ(detectors[static_cast<std::size_t>(v)].local_community(),
              (std::set<NodeIdx>{3, 4, 5}))
        << "node " << v;
  }
}

}  // namespace
}  // namespace dtn::core
