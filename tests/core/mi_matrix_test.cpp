#include "core/mi_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dtn::core {
namespace {

TEST(MiMatrix, InitialState) {
  const MiMatrix mi(4);
  EXPECT_EQ(mi.size(), 4);
  for (NodeIdx i = 0; i < 4; ++i) {
    for (NodeIdx j = 0; j < 4; ++j) {
      if (i == j) {
        EXPECT_DOUBLE_EQ(mi.get(i, j), 0.0);
      } else {
        EXPECT_TRUE(std::isinf(mi.get(i, j)));
      }
    }
  }
}

TEST(MiMatrix, SetEntryStampsRow) {
  MiMatrix mi(3);
  mi.set_entry(0, 1, 42.0, 100.0);
  EXPECT_DOUBLE_EQ(mi.get(0, 1), 42.0);
  EXPECT_DOUBLE_EQ(mi.row_time(0), 100.0);
  EXPECT_TRUE(std::isinf(mi.get(1, 0)));  // asymmetric until u_1 updates
}

TEST(MiMatrix, DiagonalImmutable) {
  MiMatrix mi(3);
  mi.set_entry(1, 1, 99.0, 5.0);
  EXPECT_DOUBLE_EQ(mi.get(1, 1), 0.0);
}

TEST(MiMatrix, RowTimeKeepsMax) {
  MiMatrix mi(3);
  mi.set_entry(0, 1, 10.0, 100.0);
  mi.set_entry(0, 2, 20.0, 50.0);  // older stamp must not regress row time
  EXPECT_DOUBLE_EQ(mi.row_time(0), 100.0);
}

TEST(MiMatrix, MergeTakesFresherRows) {
  MiMatrix a(3);
  MiMatrix b(3);
  a.set_entry(0, 1, 11.0, 10.0);
  b.set_entry(0, 1, 22.0, 20.0);  // b's row 0 is fresher
  b.set_entry(1, 2, 33.0, 5.0);
  const int copied = a.merge_from(b);
  EXPECT_EQ(copied, 2);  // rows 0 and 1
  EXPECT_DOUBLE_EQ(a.get(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(a.get(1, 2), 33.0);
}

TEST(MiMatrix, MergeSkipsStalerRows) {
  MiMatrix a(3);
  MiMatrix b(3);
  a.set_entry(0, 1, 11.0, 100.0);
  b.set_entry(0, 1, 22.0, 50.0);
  EXPECT_EQ(a.merge_from(b), 0);
  EXPECT_DOUBLE_EQ(a.get(0, 1), 11.0);
}

TEST(MiMatrix, BidirectionalMergeConverges) {
  MiMatrix a(4);
  MiMatrix b(4);
  a.set_entry(0, 1, 10.0, 1.0);
  a.set_entry(2, 3, 30.0, 3.0);
  b.set_entry(1, 2, 20.0, 2.0);
  a.merge_from(b);
  b.merge_from(a);
  for (NodeIdx i = 0; i < 4; ++i) {
    for (NodeIdx j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(a.get(i, j), b.get(i, j)) << i << "," << j;
    }
    EXPECT_DOUBLE_EQ(a.row_time(i), b.row_time(i));
  }
}

TEST(MiMatrix, MergeIsIdempotent) {
  MiMatrix a(3);
  MiMatrix b(3);
  b.set_entry(1, 0, 44.0, 9.0);
  a.merge_from(b);
  EXPECT_EQ(a.merge_from(b), 0);  // second merge copies nothing
}

TEST(MiMatrix, VersionBumpsOnMutation) {
  MiMatrix a(3);
  const auto v0 = a.version();
  a.set_entry(0, 1, 5.0, 1.0);
  EXPECT_GT(a.version(), v0);
  MiMatrix b(3);
  b.set_entry(1, 2, 6.0, 2.0);
  const auto v1 = a.version();
  a.merge_from(b);
  EXPECT_GT(a.version(), v1);
  const auto v2 = a.version();
  a.merge_from(b);  // no-op merge must not bump
  EXPECT_EQ(a.version(), v2);
}

TEST(MiMatrix, RowBytes) {
  const MiMatrix mi(10);
  EXPECT_EQ(mi.row_bytes(), 10 * 8 + 8);
}

TEST(MiMatrix, ThreeWayGossipPropagatesRows) {
  // a knows row 0, c knows row 2; b relays between them.
  MiMatrix a(3);
  MiMatrix b(3);
  MiMatrix c(3);
  a.set_entry(0, 1, 10.0, 1.0);
  c.set_entry(2, 1, 20.0, 1.0);
  b.merge_from(a);
  c.merge_from(b);
  EXPECT_DOUBLE_EQ(c.get(0, 1), 10.0);  // a's row reached c through b
}

}  // namespace
}  // namespace dtn::core
