#include "core/community.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dtn::core {
namespace {

TEST(CommunityTable, BasicMembership) {
  const CommunityTable t({0, 1, 0, 2, 1});
  EXPECT_EQ(t.node_count(), 5);
  EXPECT_EQ(t.community_count(), 3);
  EXPECT_EQ(t.community_of(0), 0);
  EXPECT_EQ(t.community_of(3), 2);
  EXPECT_EQ(t.members(0), (std::vector<NodeIdx>{0, 2}));
  EXPECT_EQ(t.members(1), (std::vector<NodeIdx>{1, 4}));
  EXPECT_EQ(t.members(2), (std::vector<NodeIdx>{3}));
}

TEST(CommunityTable, SameCommunity) {
  const CommunityTable t({0, 1, 0});
  EXPECT_TRUE(t.same_community(0, 2));
  EXPECT_FALSE(t.same_community(0, 1));
  EXPECT_TRUE(t.same_community(1, 1));
}

TEST(CommunityTable, RejectsNegativeIds) {
  EXPECT_THROW(CommunityTable({0, -1}), std::invalid_argument);
}

TEST(CommunityTable, EmptyTable) {
  const CommunityTable t{std::vector<int>{}};
  EXPECT_EQ(t.node_count(), 0);
  EXPECT_EQ(t.community_count(), 0);
}

TEST(CommunityTable, SingleCommunity) {
  const CommunityTable t({0, 0, 0});
  EXPECT_EQ(t.community_count(), 1);
  EXPECT_EQ(t.members(0).size(), 3u);
}

TEST(CommunityTable, MembersPartitionNodes) {
  const CommunityTable t({2, 0, 1, 2, 1, 0, 0});
  std::size_t total = 0;
  for (int c = 0; c < t.community_count(); ++c) {
    for (const NodeIdx v : t.members(c)) {
      EXPECT_EQ(t.community_of(v), c);
    }
    total += t.members(c).size();
  }
  EXPECT_EQ(total, 7u);
}

TEST(CommunityTable, OutOfRangeAccessThrows) {
  const CommunityTable t({0, 1});
  EXPECT_THROW((void)t.community_of(5), std::out_of_range);
  EXPECT_THROW((void)t.members(7), std::out_of_range);
}

}  // namespace
}  // namespace dtn::core
