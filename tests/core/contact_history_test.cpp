#include "core/contact_history.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dtn::core {
namespace {

TEST(ContactHistory, FirstContactRecordsNoInterval) {
  ContactHistory h(8);
  h.record_contact(1, 100.0);
  const PairHistory* ph = h.pair(1);
  ASSERT_NE(ph, nullptr);
  EXPECT_TRUE(ph->met);
  EXPECT_TRUE(ph->intervals.empty());
  EXPECT_DOUBLE_EQ(ph->last_contact, 100.0);
}

TEST(ContactHistory, IntervalsAccumulate) {
  ContactHistory h(8);
  h.record_contact(1, 10.0);
  h.record_contact(1, 25.0);
  h.record_contact(1, 55.0);
  const PairHistory* ph = h.pair(1);
  ASSERT_NE(ph, nullptr);
  ASSERT_EQ(ph->intervals.size(), 2u);
  EXPECT_DOUBLE_EQ(ph->intervals[0], 15.0);
  EXPECT_DOUBLE_EQ(ph->intervals[1], 30.0);
  EXPECT_DOUBLE_EQ(ph->average_interval(), 22.5);
}

TEST(ContactHistory, WindowEvictsOldest) {
  ContactHistory h(3);
  double t = 0.0;
  for (int i = 1; i <= 5; ++i) {
    t += i * 10.0;  // intervals 20, 30, 40, 50 after the first contact
    h.record_contact(1, t);
  }
  const PairHistory* ph = h.pair(1);
  ASSERT_EQ(ph->intervals.size(), 3u);
  EXPECT_DOUBLE_EQ(ph->intervals[0], 30.0);
  EXPECT_DOUBLE_EQ(ph->intervals[2], 50.0);
}

TEST(ContactHistory, CoincidentContactIgnored) {
  ContactHistory h(8);
  h.record_contact(1, 10.0);
  h.record_contact(1, 10.0);  // same instant
  EXPECT_TRUE(h.pair(1)->intervals.empty());
  h.record_contact(1, 5.0);  // out of order
  EXPECT_TRUE(h.pair(1)->intervals.empty());
  EXPECT_DOUBLE_EQ(h.pair(1)->last_contact, 10.0);
}

TEST(ContactHistory, SeparatePeersIndependent) {
  ContactHistory h(8);
  h.record_contact(1, 0.0);
  h.record_contact(2, 5.0);
  h.record_contact(1, 10.0);
  EXPECT_EQ(h.pair(1)->intervals.size(), 1u);
  EXPECT_TRUE(h.pair(2)->intervals.empty());
  EXPECT_EQ(h.pair_count(), 2u);
}

TEST(ContactHistory, UnknownPeer) {
  ContactHistory h(8);
  EXPECT_EQ(h.pair(99), nullptr);
  EXPECT_TRUE(std::isinf(h.elapsed_since_contact(99, 100.0)));
}

TEST(ContactHistory, ElapsedSinceContact) {
  ContactHistory h(8);
  h.record_contact(3, 40.0);
  EXPECT_DOUBLE_EQ(h.elapsed_since_contact(3, 100.0), 60.0);
}

TEST(ContactHistory, KnownPeersLists) {
  ContactHistory h(8);
  h.record_contact(5, 1.0);
  h.record_contact(9, 2.0);
  auto peers = h.known_peers();
  std::sort(peers.begin(), peers.end());
  EXPECT_EQ(peers, (std::vector<NodeIdx>{5, 9}));
}

TEST(ContactHistory, SortedIntervalsCacheTracksUpdates) {
  ContactHistory h(8);
  h.record_contact(1, 0.0);
  h.record_contact(1, 50.0);
  h.record_contact(1, 60.0);  // intervals: 50, 10
  const auto& sorted1 = h.pair(1)->sorted_intervals();
  ASSERT_EQ(sorted1.size(), 2u);
  EXPECT_DOUBLE_EQ(sorted1[0], 10.0);
  EXPECT_DOUBLE_EQ(sorted1[1], 50.0);
  h.record_contact(1, 65.0);  // interval 5 added
  const auto& sorted2 = h.pair(1)->sorted_intervals();
  ASSERT_EQ(sorted2.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted2[0], 5.0);
}

TEST(ContactHistory, ZeroCapacityClampsToOne) {
  ContactHistory h(0);
  EXPECT_EQ(h.window_capacity(), 1u);
  h.record_contact(1, 0.0);
  h.record_contact(1, 10.0);
  h.record_contact(1, 30.0);
  EXPECT_EQ(h.pair(1)->intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(h.pair(1)->intervals[0], 20.0);
}

}  // namespace
}  // namespace dtn::core
