#include "core/md_builder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/estimators.hpp"

namespace dtn::core {
namespace {

TEST(MdBuilder, OwnRowUsesTheorem2ForeignRowsUseMi) {
  const NodeIdx n = 3;
  MiMatrix mi(n);
  mi.set_entry(1, 2, 77.0, 1.0);
  mi.set_entry(0, 1, 500.0, 1.0);  // will be overridden by Theorem 2 row

  ContactHistory h(8);
  h.record_contact(1, 0.0);
  h.record_contact(1, 100.0);  // interval {100}, t0 = 100

  // At t = 130 (elapsed 30): EMD = 100 - 30 = 70 for own row entry (0,1).
  const auto md = build_md(mi, h, 0, 130.0);
  EXPECT_NEAR(md[0 * n + 1], 70.0, 1e-12);
  EXPECT_DOUBLE_EQ(md[1 * n + 2], 77.0);
  EXPECT_TRUE(std::isinf(md[0 * n + 2]));  // never met node 2
  EXPECT_DOUBLE_EQ(md[0 * n + 0], 0.0);
  EXPECT_DOUBLE_EQ(md[2 * n + 2], 0.0);
}

TEST(MdBuilder, MemdUsesTwoHopPathWhenCheaper) {
  const NodeIdx n = 3;
  MiMatrix mi(n);
  mi.set_entry(1, 2, 10.0, 1.0);  // relay 1 meets destination 2 often

  ContactHistory h(8);
  // Own history: meet node 1 every 20 s; node 2 every 1000 s.
  h.record_contact(1, 0.0);
  h.record_contact(1, 20.0);
  h.record_contact(2, 0.0);
  h.record_contact(2, 1000.0);

  const auto md = build_md(mi, h, 0, 1000.0);
  const auto r = dijkstra_dense(md, n, 0);
  // Via node 1: EMD(0,1) + I(1,2) = 20 + 10 = 30 beats direct 1000.
  EXPECT_NEAR(r.dist[2], 30.0, 1e-9);
}

TEST(MdBuilder, IntraSubIndexRestrictsToMembers) {
  const CommunityTable table({0, 0, 0, 1});  // community 0 = {0,1,2}
  MiMatrix mi(4);
  mi.set_entry(1, 2, 40.0, 1.0);
  mi.set_entry(1, 3, 5.0, 1.0);  // edge to outsider 3 must not appear

  ContactHistory h(8);
  h.record_contact(1, 0.0);
  h.record_contact(1, 30.0);

  const auto md = build_md_intra(mi, h, table, 0, 0, 30.0);
  const auto m = static_cast<NodeIdx>(table.members(0).size());
  ASSERT_EQ(m, 3);
  // Sub-index order is {0,1,2}. Own row entry (0 -> 1) from Theorem 2:
  // interval {30}, elapsed 0 -> 30.
  EXPECT_NEAR(md[0 * m + 1], 30.0, 1e-12);
  EXPECT_DOUBLE_EQ(md[1 * m + 2], 40.0);
  // No path can use node 3; matrix simply has no such index.
  EXPECT_EQ(md.size(), static_cast<std::size_t>(m) * static_cast<std::size_t>(m));
}

TEST(MemdCache, ReturnsSameAsDirectComputation) {
  const NodeIdx n = 4;
  MiMatrix mi(n);
  mi.set_entry(1, 2, 15.0, 1.0);
  mi.set_entry(2, 3, 25.0, 1.0);
  ContactHistory h(8);
  h.record_contact(1, 0.0);
  h.record_contact(1, 10.0);

  MemdCache cache;
  const double via_cache = cache.memd(mi, h, 0, 3, 10.0);
  const auto md = build_md(mi, h, 0, 10.0);
  const auto direct = dijkstra_dense(md, n, 0);
  EXPECT_NEAR(via_cache, direct.dist[3], 1e-12);
}

TEST(MemdCache, InvalidatesOnMiChange) {
  const NodeIdx n = 3;
  MiMatrix mi(n);
  ContactHistory h(8);
  h.record_contact(1, 0.0);
  h.record_contact(1, 10.0);

  MemdCache cache;
  const double before = cache.memd(mi, h, 0, 2, 10.0);
  EXPECT_TRUE(std::isinf(before));
  mi.set_entry(1, 2, 5.0, 11.0);  // now 0 -> 1 -> 2 exists
  const double after = cache.memd(mi, h, 0, 2, 10.0);
  EXPECT_FALSE(std::isinf(after));
}

TEST(MemdCache, InvalidatesWhenTimeBucketAdvances) {
  const NodeIdx n = 2;
  MiMatrix mi(n);
  ContactHistory h(8);
  h.record_contact(1, 0.0);
  h.record_contact(1, 100.0);  // interval {100}, t0=100

  MemdCache cache(1.0);
  const double at_100 = cache.memd(mi, h, 0, 1, 100.0);
  const double at_150 = cache.memd(mi, h, 0, 1, 150.0);
  EXPECT_NEAR(at_100, 100.0, 1e-9);
  EXPECT_NEAR(at_150, 50.0, 1e-9);  // Theorem 2: elapsed time subtracts
}

TEST(MemdCache, SelfDistanceZero) {
  MiMatrix mi(3);
  ContactHistory h(8);
  MemdCache cache;
  EXPECT_DOUBLE_EQ(cache.memd(mi, h, 1, 1, 0.0), 0.0);
}

}  // namespace
}  // namespace dtn::core
