#include "core/dijkstra.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace dtn::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> matrix(NodeIdx n, std::initializer_list<std::tuple<int, int, double>> edges,
                           bool symmetric = true) {
  std::vector<double> m(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), kInf);
  for (NodeIdx i = 0; i < n; ++i) m[static_cast<std::size_t>(i) * n + i] = 0.0;
  for (const auto& [a, b, w] : edges) {
    m[static_cast<std::size_t>(a) * n + b] = w;
    if (symmetric) m[static_cast<std::size_t>(b) * n + a] = w;
  }
  return m;
}

TEST(Dijkstra, TrivialSelfDistance) {
  const auto m = matrix(2, {{0, 1, 5.0}});
  const auto r = dijkstra_dense(m, 2, 0);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(r.dist[1], 5.0);
}

TEST(Dijkstra, PrefersMultiHopWhenCheaper) {
  // 0-1 = 10 direct; 0-2-1 = 3 + 4 = 7.
  const auto m = matrix(3, {{0, 1, 10.0}, {0, 2, 3.0}, {2, 1, 4.0}});
  const auto r = dijkstra_dense(m, 3, 0);
  EXPECT_DOUBLE_EQ(r.dist[1], 7.0);
  EXPECT_EQ(extract_path(r, 0, 1), (std::vector<NodeIdx>{0, 2, 1}));
}

TEST(Dijkstra, UnreachableStaysInfinite) {
  const auto m = matrix(3, {{0, 1, 1.0}});
  const auto r = dijkstra_dense(m, 3, 0);
  EXPECT_TRUE(std::isinf(r.dist[2]));
  EXPECT_FALSE(r.reachable(2));
  EXPECT_TRUE(extract_path(r, 0, 2).empty());
}

TEST(Dijkstra, AsymmetricEdges) {
  // Directed: 0->1 cheap, 1->0 expensive.
  auto m = matrix(2, {}, false);
  m[0 * 2 + 1] = 1.0;
  m[1 * 2 + 0] = 100.0;
  const auto fwd = dijkstra_dense(m, 2, 0);
  const auto bwd = dijkstra_dense(m, 2, 1);
  EXPECT_DOUBLE_EQ(fwd.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(bwd.dist[0], 100.0);
}

TEST(Dijkstra, NegativeWeightsClampedToZero) {
  auto m = matrix(2, {{0, 1, -5.0}});
  const auto r = dijkstra_dense(m, 2, 0);
  EXPECT_DOUBLE_EQ(r.dist[1], 0.0);
}

TEST(Dijkstra, PathExtractionEndpoints) {
  const auto m = matrix(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  const auto r = dijkstra_dense(m, 4, 0);
  EXPECT_EQ(extract_path(r, 0, 0), (std::vector<NodeIdx>{0}));
  EXPECT_EQ(extract_path(r, 0, 3), (std::vector<NodeIdx>{0, 1, 2, 3}));
}

// Floyd-Warshall reference for the property test.
std::vector<double> floyd_warshall(std::vector<double> m, NodeIdx n) {
  for (NodeIdx k = 0; k < n; ++k) {
    for (NodeIdx i = 0; i < n; ++i) {
      for (NodeIdx j = 0; j < n; ++j) {
        const double via = m[static_cast<std::size_t>(i) * n + k] +
                           m[static_cast<std::size_t>(k) * n + j];
        double& cur = m[static_cast<std::size_t>(i) * n + j];
        if (via < cur) cur = via;
      }
    }
  }
  return m;
}

class DijkstraRandomGraphTest : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraRandomGraphTest, MatchesFloydWarshall) {
  const NodeIdx n = static_cast<NodeIdx>(GetParam());
  util::Pcg32 rng(55, static_cast<std::uint64_t>(n));
  std::vector<double> m(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), kInf);
  for (NodeIdx i = 0; i < n; ++i) {
    m[static_cast<std::size_t>(i) * n + i] = 0.0;
    for (NodeIdx j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.35)) {
        m[static_cast<std::size_t>(i) * n + j] = rng.uniform(1.0, 100.0);
      }
    }
  }
  const auto reference = floyd_warshall(m, n);
  for (NodeIdx src = 0; src < n; ++src) {
    const auto r = dijkstra_dense(m, n, src);
    for (NodeIdx v = 0; v < n; ++v) {
      const double expected = reference[static_cast<std::size_t>(src) * n + v];
      if (std::isinf(expected)) {
        EXPECT_TRUE(std::isinf(r.dist[static_cast<std::size_t>(v)]));
      } else {
        EXPECT_NEAR(r.dist[static_cast<std::size_t>(v)], expected, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DijkstraRandomGraphTest, ::testing::Values(4, 8, 16, 32));

TEST(Dijkstra, PathCostsMatchDistances) {
  const NodeIdx n = 12;
  util::Pcg32 rng(99, 1);
  std::vector<double> m(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), kInf);
  for (NodeIdx i = 0; i < n; ++i) {
    m[static_cast<std::size_t>(i) * n + i] = 0.0;
    for (NodeIdx j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.5)) {
        m[static_cast<std::size_t>(i) * n + j] = rng.uniform(1.0, 50.0);
      }
    }
  }
  const auto r = dijkstra_dense(m, n, 0);
  for (NodeIdx v = 1; v < n; ++v) {
    const auto path = extract_path(r, 0, v);
    if (path.empty()) continue;
    double cost = 0.0;
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      cost += m[static_cast<std::size_t>(path[k]) * n + path[k + 1]];
    }
    EXPECT_NEAR(cost, r.dist[static_cast<std::size_t>(v)], 1e-9);
  }
}

}  // namespace
}  // namespace dtn::core
