// Tests for Theorems 1, 2 and 4 plus the documented edge-case fallbacks.
#include "core/estimators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace dtn::core {
namespace {

// ---------- Theorem 1: conditional meeting probability ----------

TEST(CondProbability, PaperDefinitionOnKnownWindow) {
  // Window {10, 20, 30, 40}, elapsed 15: M = {20,30,40} (m=3).
  // tau = 20 -> M_tau = {20, 30} (intervals <= 35), so P = 2/3.
  const std::vector<double> w{10, 20, 30, 40};
  EXPECT_NEAR(conditional_meet_probability(w, 15.0, 20.0), 2.0 / 3.0, 1e-12);
}

TEST(CondProbability, CountsMatchDefinition) {
  const std::vector<double> w{10, 20, 30, 40};
  const CondCounts c = conditional_counts(w, 15.0, 20.0);
  EXPECT_EQ(c.m, 3);
  EXPECT_EQ(c.m_tau, 2);
}

TEST(CondProbability, ZeroWhenTauCoversNothing) {
  const std::vector<double> w{100, 200};
  EXPECT_DOUBLE_EQ(conditional_meet_probability(w, 0.0, 50.0), 0.0);
}

TEST(CondProbability, OneWhenTauCoversAll) {
  const std::vector<double> w{10, 20, 30};
  EXPECT_DOUBLE_EQ(conditional_meet_probability(w, 0.0, 1000.0), 1.0);
}

TEST(CondProbability, EmptyWindowIsZero) {
  EXPECT_DOUBLE_EQ(conditional_meet_probability({}, 0.0, 100.0), 0.0);
}

TEST(CondProbability, NonPositiveTauIsZero) {
  const std::vector<double> w{10, 20};
  EXPECT_DOUBLE_EQ(conditional_meet_probability(w, 5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(conditional_meet_probability(w, 5.0, -1.0), 0.0);
}

TEST(CondProbability, OverdueFallbackUsesUnconditional) {
  // elapsed 50 exceeds every interval: fallback = fraction <= tau.
  const std::vector<double> w{10, 20, 30, 40};
  EXPECT_NEAR(conditional_meet_probability(w, 50.0, 25.0), 0.5, 1e-12);
  EXPECT_NEAR(conditional_meet_probability(w, 50.0, 5.0), 0.0, 1e-12);
  EXPECT_NEAR(conditional_meet_probability(w, 50.0, 100.0), 1.0, 1e-12);
}

TEST(CondProbability, SortedVariantMatchesLinear) {
  util::Pcg32 rng(1234, 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> w;
    const int n = static_cast<int>(rng.uniform_int(1, 24));
    for (int i = 0; i < n; ++i) w.push_back(rng.uniform(1.0, 500.0));
    std::vector<double> sorted = w;
    std::sort(sorted.begin(), sorted.end());
    const double elapsed = rng.uniform(0.0, 600.0);
    const double tau = rng.uniform(0.0, 600.0);
    EXPECT_NEAR(conditional_meet_probability(w, elapsed, tau),
                conditional_meet_probability_sorted(sorted, elapsed, tau), 1e-12)
        << "trial " << trial;
  }
}

class CondProbabilityPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CondProbabilityPropertyTest, InUnitIntervalAndMonotoneInTau) {
  const auto [elapsed, tau] = GetParam();
  const std::vector<double> w{5, 17, 40, 40, 90, 120, 300};
  const double p = conditional_meet_probability(w, elapsed, tau);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  // Monotone non-decreasing in tau.
  const double p2 = conditional_meet_probability(w, elapsed, tau + 25.0);
  EXPECT_GE(p2, p - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CondProbabilityPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 10.0, 45.0, 150.0, 500.0),
                       ::testing::Values(1.0, 30.0, 100.0, 400.0)));

// ---------- Theorem 2: expected meeting delay ----------

TEST(Emd, PaperExamplePeriodicContacts) {
  // Periodic meetings every 100 s; at elapsed 50 the expected residual
  // delay is 50 (the paper's Sec. III-B1 motivating example).
  const std::vector<double> w{100, 100, 100, 100};
  EXPECT_NEAR(expected_meeting_delay(w, 50.0), 50.0, 1e-12);
}

TEST(Emd, ZeroElapsedGivesMeanOfWindow) {
  const std::vector<double> w{10, 20, 30};
  EXPECT_NEAR(expected_meeting_delay(w, 0.0), 20.0, 1e-12);
}

TEST(Emd, ConditionsOnSurvivingIntervals) {
  // elapsed 25: only {30, 40} survive; EMD = 35 - 25 = 10.
  const std::vector<double> w{10, 20, 30, 40};
  EXPECT_NEAR(expected_meeting_delay(w, 25.0), 10.0, 1e-12);
}

TEST(Emd, EmptyWindowIsInfinite) {
  EXPECT_TRUE(std::isinf(expected_meeting_delay({}, 0.0)));
}

TEST(Emd, OverdueFallbackIsUnconditionalMean) {
  const std::vector<double> w{10, 20, 30};
  EXPECT_NEAR(expected_meeting_delay(w, 100.0), 20.0, 1e-12);
}

TEST(Emd, NeverNegative) {
  util::Pcg32 rng(77, 3);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<double> w;
    const int n = static_cast<int>(rng.uniform_int(1, 16));
    for (int i = 0; i < n; ++i) w.push_back(rng.uniform(0.1, 400.0));
    const double elapsed = rng.uniform(0.0, 800.0);
    EXPECT_GE(expected_meeting_delay(w, elapsed), 0.0);
  }
}

TEST(Emd, DecreasesAsElapsedGrowsWithinPeriodicWindow) {
  const std::vector<double> w{100, 100, 100};
  double prev = expected_meeting_delay(w, 0.0);
  for (double e = 10.0; e < 100.0; e += 10.0) {
    const double cur = expected_meeting_delay(w, e);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

// ---------- Theorem 1 summation over peers (EEV) ----------

ContactHistory make_history(std::initializer_list<std::pair<int, std::vector<double>>>
                                peers_and_times) {
  ContactHistory h(32);
  for (const auto& [peer, times] : peers_and_times) {
    for (const double t : times) h.record_contact(peer, t);
  }
  return h;
}

TEST(Eev, SumsPerPeerProbabilities) {
  // Peer 1: contacts at 0,100,200 -> intervals {100,100}, t0=200.
  // Peer 2: contacts at 0,50,100  -> intervals {50,50},   t0=100.
  const ContactHistory h =
      make_history({{1, {0, 100, 200}}, {2, {0, 50, 100}}});
  // At t=200, tau=120: peer1 elapsed 0 -> P=1 (both intervals <=120);
  // peer2 elapsed 100 -> overdue (both intervals <= 100 are not > 100)...
  // intervals {50,50}, elapsed=100: none > 100 -> fallback: both <= 120 -> 1.
  const double eev = expected_encounter_value(h, 200.0, 120.0);
  EXPECT_NEAR(eev, 2.0, 1e-12);
}

TEST(Eev, BoundedByPeerCount) {
  util::Pcg32 rng(5, 9);
  ContactHistory h(16);
  for (int peer = 1; peer <= 10; ++peer) {
    double t = 0.0;
    for (int k = 0; k < 8; ++k) {
      t += rng.uniform(1.0, 100.0);
      h.record_contact(peer, t);
    }
  }
  for (const double tau : {1.0, 50.0, 500.0, 5000.0}) {
    const double eev = expected_encounter_value(h, 400.0, tau);
    EXPECT_GE(eev, 0.0);
    EXPECT_LE(eev, 10.0);
  }
}

TEST(Eev, EmptyHistoryIsZero) {
  const ContactHistory h(8);
  EXPECT_DOUBLE_EQ(expected_encounter_value(h, 100.0, 100.0), 0.0);
}

TEST(Eev, MonotoneInTau) {
  const ContactHistory h =
      make_history({{1, {0, 30, 90, 180}}, {2, {0, 70, 140}}, {3, {0, 400}}});
  double prev = 0.0;
  for (const double tau : {10.0, 50.0, 100.0, 200.0, 500.0}) {
    const double eev = expected_encounter_value(h, 180.0, tau);
    EXPECT_GE(eev, prev - 1e-12);
    prev = eev;
  }
}

TEST(EevIntra, RestrictsToOwnCommunity) {
  const CommunityTable table({0, 0, 1, 1});  // nodes 0,1 in c0; 2,3 in c1
  ContactHistory h(8);
  for (const int peer : {1, 2, 3}) {
    h.record_contact(peer, 0.0);
    h.record_contact(peer, 100.0);
    h.record_contact(peer, 200.0);
  }
  const double full = expected_encounter_value(h, 200.0, 150.0);
  const double intra = expected_encounter_value_intra(h, table, 0, 200.0, 150.0);
  EXPECT_NEAR(full, 3.0, 1e-12);
  EXPECT_NEAR(intra, 1.0, 1e-12);  // only peer 1 shares community 0
}

// ---------- Theorem 4: ENEC ----------

TEST(Enec, SingleForeignMemberEqualsPairProbability) {
  const CommunityTable table({0, 1});
  ContactHistory h(8);
  h.record_contact(1, 0.0);
  h.record_contact(1, 100.0);
  h.record_contact(1, 200.0);  // intervals {100,100}, t0=200
  const double p =
      conditional_meet_probability(std::vector<double>{100, 100}, 0.0, 50.0);
  const double enec = expected_encountering_communities(h, table, 0, 200.0, 50.0);
  EXPECT_NEAR(enec, p, 1e-12);
}

TEST(Enec, ComplementProductAcrossMembers) {
  // Community 1 = {1, 2}; node meets both with known probabilities.
  const CommunityTable table({0, 1, 1});
  ContactHistory h(8);
  // Peer 1: intervals {100}, elapsed 0, tau 100 -> P = 1.
  h.record_contact(1, 100.0);
  h.record_contact(1, 200.0);
  // Peer 2: intervals {50, 150}, elapsed 0 at t=200 requires t0=200.
  h.record_contact(2, 0.0);
  h.record_contact(2, 50.0);
  h.record_contact(2, 200.0);
  // tau=100 at t=200: peer1 P = 1 -> community probability = 1 regardless.
  const double enec = expected_encountering_communities(h, table, 0, 200.0, 100.0);
  EXPECT_NEAR(enec, 1.0, 1e-12);
}

TEST(Enec, ExcludesOwnCommunity) {
  const CommunityTable table({0, 0, 1});
  ContactHistory h(8);
  // Only contacts with same-community peer 1.
  h.record_contact(1, 0.0);
  h.record_contact(1, 10.0);
  h.record_contact(1, 20.0);
  EXPECT_DOUBLE_EQ(expected_encountering_communities(h, table, 0, 20.0, 100.0), 0.0);
}

TEST(Enec, BoundedByForeignCommunityCount) {
  const CommunityTable table({0, 1, 1, 2, 2, 3});
  util::Pcg32 rng(31, 7);
  ContactHistory h(16);
  for (int peer = 1; peer <= 5; ++peer) {
    double t = 0.0;
    for (int k = 0; k < 6; ++k) {
      t += rng.uniform(1.0, 60.0);
      h.record_contact(peer, t);
    }
  }
  for (const double tau : {5.0, 50.0, 500.0}) {
    const double enec = expected_encountering_communities(h, table, 0, 300.0, tau);
    EXPECT_GE(enec, 0.0);
    EXPECT_LE(enec, 3.0);  // communities 1, 2, 3
  }
}

TEST(CommunityProbability, NeverMetCommunityIsZero) {
  const CommunityTable table({0, 1, 1});
  const ContactHistory h(8);
  EXPECT_DOUBLE_EQ(community_meet_probability(h, table, 1, 100.0, 100.0), 0.0);
}

TEST(CommunityProbability, AtLeastMaxMemberProbability) {
  const CommunityTable table({0, 1, 1});
  ContactHistory h(8);
  h.record_contact(1, 0.0);
  h.record_contact(1, 40.0);
  h.record_contact(1, 80.0);
  h.record_contact(2, 0.0);
  h.record_contact(2, 100.0);
  const double t = 80.0;
  const double tau = 60.0;
  const double p1 = conditional_meet_probability(std::vector<double>{40, 40},
                                                 t - 80.0, tau);
  const double pc = community_meet_probability(h, table, 1, t, tau);
  EXPECT_GE(pc, p1 - 1e-12);
  EXPECT_LE(pc, 1.0);
}

}  // namespace
}  // namespace dtn::core
