#include "routing/factory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace dtn::routing {
namespace {

TEST(Factory, KnownProtocolsAllConstruct) {
  auto communities = std::make_shared<const core::CommunityTable>(
      std::vector<int>{0, 0, 1, 1});
  for (const auto& name : known_protocols()) {
    ProtocolConfig config;
    config.name = name;
    config.communities = communities;
    const auto router = create_router(config);
    ASSERT_NE(router, nullptr) << name;
    EXPECT_EQ(router->name(), name == "SprayAndFocus" ? "SprayAndFocus" : name);
  }
}

TEST(Factory, UnknownProtocolThrows) {
  ProtocolConfig config;
  config.name = "NoSuchProtocol";
  EXPECT_THROW(create_router(config), std::invalid_argument);
}

TEST(Factory, CrRequiresCommunities) {
  ProtocolConfig config;
  config.name = "CR";
  config.communities = nullptr;
  EXPECT_THROW(create_router(config), std::invalid_argument);
}

TEST(Factory, CopiesPropagateToQuotaProtocols) {
  for (const std::string name : {"EER", "EBR", "SprayAndWait", "SprayAndFocus"}) {
    ProtocolConfig config;
    config.name = name;
    config.copies = 7;
    const auto router = create_router(config);
    EXPECT_EQ(router->initial_replicas(), 7) << name;
  }
}

TEST(Factory, NonQuotaProtocolsUseSingleCopy) {
  for (const std::string name : {"Epidemic", "MaxProp", "DirectDelivery", "PRoPHET"}) {
    ProtocolConfig config;
    config.name = name;
    config.copies = 7;  // must be ignored
    const auto router = create_router(config);
    EXPECT_EQ(router->initial_replicas(), 1) << name;
  }
}

TEST(Factory, RegisteredProtocolIsCreatableAndListed) {
  class NullRouter final : public sim::Router {
   public:
    [[nodiscard]] std::string name() const override { return "Null"; }
  };
  EXPECT_FALSE(is_known_protocol("NullTest"));
  register_protocol("NullTest", [](const ProtocolConfig&) {
    return std::make_unique<NullRouter>();
  });
  EXPECT_TRUE(is_known_protocol("NullTest"));
  ProtocolConfig config;
  config.name = "NullTest";
  const auto router = create_router(config);
  ASSERT_NE(router, nullptr);
  EXPECT_EQ(router->name(), "Null");
  // Built-ins keep their Figure-2-first ordering; extensions append after
  // them (not necessarily last — other tests mutate the global registry).
  const auto names = known_protocols();
  EXPECT_EQ(names.front(), "EER");
  const auto it = std::find(names.begin(), names.end(), "NullTest");
  ASSERT_NE(it, names.end());
  EXPECT_GE(it - names.begin(), 12) << "extension listed among the built-ins";
}

TEST(Factory, RegisteringExistingNameReplacesFactory) {
  class StandInRouter final : public sim::Router {
   public:
    [[nodiscard]] std::string name() const override { return "StandIn"; }
  };
  const auto count_before = known_protocols().size();
  register_protocol("ReplaceTest", [](const ProtocolConfig&) {
    return std::make_unique<StandInRouter>();
  });
  register_protocol("ReplaceTest", [](const ProtocolConfig&) {
    return std::make_unique<StandInRouter>();
  });
  EXPECT_EQ(known_protocols().size(), count_before + 1);
}

TEST(Factory, Figure2LineupIsAvailable) {
  const auto names = known_protocols();
  for (const std::string required :
       {"EER", "CR", "EBR", "MaxProp", "SprayAndWait", "SprayAndFocus"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required;
  }
}

}  // namespace
}  // namespace dtn::routing
