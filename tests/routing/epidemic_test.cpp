#include "routing/epidemic.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../test_support.hpp"

namespace dtn::routing {
namespace {

using test::make_message;
using test::pinned;
using test::test_world_config;

TEST(Epidemic, DirectDeliveryOnContact) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.add_node(pinned({5.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 1));
  world.run(2.0);
  EXPECT_EQ(world.metrics().delivered(), 1);
}

TEST(Epidemic, FloodsAlongChain) {
  // 0 -- 1 -- 2 (0 and 2 out of range of each other).
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.add_node(pinned({8.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.add_node(pinned({16.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(3.0);
  EXPECT_EQ(world.metrics().delivered(), 1);
  // The source retains its copy (replication); the relay dropped its copy
  // after successfully handing the message to the destination.
  EXPECT_TRUE(world.buffer_of(0).has(0));
}

TEST(Epidemic, SenderKeepsCopyAfterReplication) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.add_node(pinned({5.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.add_node(pinned({2000.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 2));  // dst unreachable
  world.run(2.0);
  EXPECT_TRUE(world.buffer_of(0).has(0));
  EXPECT_TRUE(world.buffer_of(1).has(0));
}

TEST(Epidemic, NoDuplicateSendsToHolder) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.add_node(pinned({5.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.add_node(pinned({2000.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(5.0);
  // Exactly one relay: 0 -> 1. No ping-pong copies back to 0.
  EXPECT_EQ(world.metrics().relayed(), 1);
}

TEST(Epidemic, ExpiredMessagesNotSent) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.add_node(pinned({5.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.inject_message(make_message(0, 0, 1, 0.0, /*ttl=*/0.05));
  world.run(2.0);  // contact forms after expiry
  EXPECT_EQ(world.metrics().delivered(), 0);
}

TEST(Epidemic, NewMessagePushedToActiveContacts) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.add_node(pinned({5.0, 0.0}), std::make_unique<EpidemicRouter>());
  world.step();  // contact up happens before the message exists
  world.inject_message(make_message(0, 0, 1));
  world.run(1.0);
  EXPECT_EQ(world.metrics().delivered(), 1);
}

}  // namespace
}  // namespace dtn::routing
