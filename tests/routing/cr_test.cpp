// CR protocol tests: Algorithms 2-4 in scripted worlds with predefined
// communities.
#include "routing/cr.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../test_support.hpp"

namespace dtn::routing {
namespace {

using test::make_message;
using test::pinned;
using test::scripted;
using test::test_world_config;

std::shared_ptr<const core::CommunityTable> communities(std::vector<int> cid) {
  return std::make_shared<const core::CommunityTable>(std::move(cid));
}

std::unique_ptr<CrRouter> cr(std::shared_ptr<const core::CommunityTable> table,
                             int copies = 10, double alpha = 0.28) {
  CrParams p;
  p.copies = copies;
  p.alpha = alpha;
  return std::make_unique<CrRouter>(p, std::move(table));
}

TEST(Cr, HandsAllReplicasToDestinationCommunityMember) {
  // Node 0 (community 0) holds a message for node 2 (community 1); node 1
  // is also community 1 -> receives ALL replicas (Algorithm 3 line 2).
  auto table = communities({0, 1, 1});
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), cr(table, 10));
  world.add_node(pinned({5.0, 0.0}), cr(table, 10));
  world.add_node(pinned({2000.0, 0.0}), cr(table, 10));
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  EXPECT_FALSE(world.buffer_of(0).has(0));  // gave everything away
  ASSERT_TRUE(world.buffer_of(1).has(0));
  EXPECT_EQ(world.buffer_of(1).find(0)->replicas, 10);
}

TEST(Cr, DirectDeliveryBeatsCommunityLogic) {
  auto table = communities({0, 1});
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), cr(table));
  world.add_node(pinned({5.0, 0.0}), cr(table));
  world.step();
  world.inject_message(make_message(0, 0, 1));
  world.run(2.0);
  EXPECT_EQ(world.metrics().delivered(), 1);
}

TEST(Cr, InterCommunitySplitWhenNeitherInDestinationCommunity) {
  // Nodes 0, 1 in community 0; destination 2 in community 1 (far away).
  // Fresh contact, both ENECs zero -> degenerate half split.
  auto table = communities({0, 0, 1});
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), cr(table, 10));
  world.add_node(pinned({5.0, 0.0}), cr(table, 10));
  world.add_node(pinned({2000.0, 0.0}), cr(table, 10));
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  ASSERT_TRUE(world.buffer_of(1).has(0));
  EXPECT_EQ(world.buffer_of(1).find(0)->replicas, 5);
  EXPECT_EQ(world.buffer_of(0).find(0)->replicas, 5);
}

TEST(Cr, IntraCommunityOnlyBetweenSameCommunity) {
  // Source is IN the destination community; encounter is outside it:
  // Algorithm 4 line 1 forbids handing the message out.
  auto table = communities({0, 1, 0});
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), cr(table, 10));
  world.add_node(pinned({5.0, 0.0}), cr(table, 10));   // community 1
  world.add_node(pinned({2000.0, 0.0}), cr(table, 10));  // dst, community 0
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  EXPECT_FALSE(world.buffer_of(1).has(0));
  EXPECT_TRUE(world.buffer_of(0).has(0));
}

TEST(Cr, IntraCommunitySplitBetweenMembers) {
  auto table = communities({0, 0, 0});
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), cr(table, 10));
  world.add_node(pinned({5.0, 0.0}), cr(table, 10));
  world.add_node(pinned({2000.0, 0.0}), cr(table, 10));  // dst in same community
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  ASSERT_TRUE(world.buffer_of(1).has(0));
  EXPECT_EQ(world.buffer_of(1).find(0)->replicas, 5);  // degenerate half split
}

TEST(Cr, SingleReplicaInterForwardsToBetterCommunityFinder) {
  // Node 1 periodically visits the destination community (node 3 in c1);
  // node 0 never does. P_0c < P_1c -> forward the single copy.
  auto table = communities({0, 0, 1, 1});
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), cr(table, 1));
  std::vector<std::pair<double, geo::Vec2>> kf;
  for (int k = 0; k < 8; ++k) {
    kf.push_back({k * 60.0, {5.0, 0.0}});
    kf.push_back({k * 60.0 + 15.0, {5.0, 0.0}});
    kf.push_back({k * 60.0 + 30.0, {400.0, 0.0}});
    kf.push_back({k * 60.0 + 45.0, {400.0, 0.0}});
  }
  kf.push_back({480.0, {5.0, 0.0}});
  kf.push_back({700.0, {5.0, 0.0}});
  world.add_node(scripted(std::move(kf)), cr(table, 1));
  world.add_node(pinned({5000.0, 0.0}), cr(table, 1));  // destination, c1, far
  world.add_node(pinned({405.0, 0.0}), cr(table, 1));   // c1 member node 1 visits
  world.run(470.0);
  world.inject_message(make_message(0, 0, 2));
  world.run(120.0);
  EXPECT_TRUE(world.buffer_of(1).has(0) || world.metrics().delivered() == 1);
  EXPECT_FALSE(world.buffer_of(0).has(0));
}

TEST(Cr, SingleReplicaNotForwardedToEqualFinder) {
  auto table = communities({0, 0, 1});
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), cr(table, 1));
  world.add_node(pinned({5.0, 0.0}), cr(table, 1));
  world.add_node(pinned({2000.0, 0.0}), cr(table, 1));
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  // Both P_ic = P_jc = 0: strict inequality fails, copy stays.
  EXPECT_TRUE(world.buffer_of(0).has(0));
  EXPECT_FALSE(world.buffer_of(1).has(0));
}

TEST(Cr, EstimatorAccessorsConsistent) {
  auto table = communities({0, 0, 1, 1});
  sim::World world(test_world_config());
  auto router0 = cr(table);
  CrRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  std::vector<std::pair<double, geo::Vec2>> kf;
  for (int k = 0; k < 6; ++k) {
    kf.push_back({k * 50.0, {5.0, 0.0}});
    kf.push_back({k * 50.0 + 10.0, {5.0, 0.0}});
    kf.push_back({k * 50.0 + 20.0, {100.0, 0.0}});
    kf.push_back({k * 50.0 + 40.0, {100.0, 0.0}});
  }
  world.add_node(scripted(std::move(kf)), cr(table));  // community 0 peer
  world.add_node(pinned({104.0, 0.0}), cr(table));     // community 1, met by 1? no: by 1's far point
  world.add_node(pinned({5000.0, 0.0}), cr(table));
  world.run(320.0);
  EXPECT_EQ(r0->community(), 0);
  // Node 0 only ever meets node 1 (community 0): ENEC over foreign
  // communities is 0, intra EEV is positive.
  EXPECT_DOUBLE_EQ(r0->enec(world.now(), 100.0), 0.0);
  EXPECT_GT(r0->intra_eev(world.now(), 100.0), 0.0);
  EXPECT_DOUBLE_EQ(r0->community_probability(1, world.now(), 100.0), 0.0);
}

TEST(Cr, IntraMemdRoutesThroughCommunityRelay) {
  // Community 0 = {0, 1, 2}: node 1 shuttles between 0 and 2. After history
  // builds, node 0's single copy for 2 should move to node 1 (lower MEMD').
  auto table = communities({0, 0, 0});
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), cr(table, 1));
  std::vector<std::pair<double, geo::Vec2>> kf;
  for (int k = 0; k < 8; ++k) {
    kf.push_back({k * 60.0, {5.0, 0.0}});
    kf.push_back({k * 60.0 + 15.0, {5.0, 0.0}});
    kf.push_back({k * 60.0 + 30.0, {300.0, 0.0}});
    kf.push_back({k * 60.0 + 45.0, {300.0, 0.0}});
  }
  kf.push_back({480.0, {5.0, 0.0}});
  kf.push_back({700.0, {5.0, 0.0}});
  world.add_node(scripted(std::move(kf)), cr(table, 1));
  world.add_node(pinned({305.0, 0.0}), cr(table, 1));
  world.run(470.0);
  world.inject_message(make_message(0, 0, 2));
  world.run(150.0);
  EXPECT_TRUE(world.metrics().delivered() == 1 || world.buffer_of(1).has(0));
}

TEST(Cr, ControlOverheadLowerThanEerStyleFullExchange) {
  // Same-community contacts exchange only community-sized MI rows; the
  // charged control bytes must stay below a full n-sized exchange would be.
  auto table = communities({0, 0, 1, 1, 1, 1, 1, 1});
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), cr(table));
  world.add_node(pinned({5.0, 0.0}), cr(table));
  for (int i = 2; i < 8; ++i) {
    world.add_node(pinned({3000.0 + i * 50.0, 0.0}), cr(table));
  }
  world.step();
  world.step();
  // Community 0 has 2 members: each exchanged row charges 2*8+8 = 24 bytes
  // (vs 8*8+8 = 72 for a full row). Bound: summary vectors (0 messages) +
  // at most 2 rows each way.
  EXPECT_LE(world.metrics().control_bytes(), 2 * 2 * 24 + 64);
}

}  // namespace
}  // namespace dtn::routing
