// Tests for the extension baselines: MEED, FirstContact, Delegation.
#include <gtest/gtest.h>

#include <memory>

#include "../test_support.hpp"
#include "routing/delegation.hpp"
#include "routing/first_contact.hpp"
#include "routing/meed.hpp"

namespace dtn::routing {
namespace {

using test::make_message;
using test::pinned;
using test::scripted;
using test::test_world_config;

std::vector<std::pair<double, geo::Vec2>> oscillate(geo::Vec2 near, geo::Vec2 far,
                                                    double period, double dwell,
                                                    int cycles) {
  std::vector<std::pair<double, geo::Vec2>> kf;
  for (int k = 0; k < cycles; ++k) {
    const double t0 = k * period;
    kf.push_back({t0, near});
    kf.push_back({t0 + dwell, near});
    kf.push_back({t0 + dwell + 1.0, far});
    kf.push_back({t0 + period - 1.0, far});
  }
  kf.push_back({cycles * period, near});
  return kf;
}

// ---------- FirstContact ----------

TEST(FirstContact, HandsSingleCopyToFirstEncounter) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<FirstContactRouter>());
  world.add_node(pinned({5.0, 0.0}), std::make_unique<FirstContactRouter>());
  world.add_node(pinned({2000.0, 0.0}), std::make_unique<FirstContactRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  EXPECT_FALSE(world.buffer_of(0).has(0));  // single copy moved
  EXPECT_TRUE(world.buffer_of(1).has(0));
}

TEST(FirstContact, DeliversDirectly) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<FirstContactRouter>());
  world.add_node(pinned({5.0, 0.0}), std::make_unique<FirstContactRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 1));
  world.run(2.0);
  EXPECT_EQ(world.metrics().delivered(), 1);
}

TEST(FirstContact, SingleCopyInvariantAcrossNetwork) {
  sim::World world(test_world_config());
  for (int i = 0; i < 4; ++i) {
    world.add_node(pinned({i * 8.0, 0.0}), std::make_unique<FirstContactRouter>());
  }
  world.add_node(pinned({5000.0, 0.0}), std::make_unique<FirstContactRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 4));
  world.run(5.0);
  int holders = 0;
  for (sim::NodeIdx v = 0; v < 5; ++v) {
    if (world.buffer_of(v).has(0)) ++holders;
  }
  EXPECT_EQ(holders, 1);  // never replicated
}

// ---------- MEED ----------

TEST(Meed, ForwardsTowardLowerExpectedDelay) {
  // Node 1 meets the destination (2) periodically; node 0 only meets 1.
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<MeedRouter>(MeedParams{}));
  world.add_node(scripted(oscillate({300.0, 0.0}, {5.0, 0.0}, 60.0, 20.0, 8)),
                 std::make_unique<MeedRouter>(MeedParams{}));
  world.add_node(pinned({305.0, 0.0}), std::make_unique<MeedRouter>(MeedParams{}));
  world.run(420.0);
  world.inject_message(make_message(0, 0, 2));
  world.run(150.0);
  EXPECT_TRUE(world.metrics().delivered() == 1 || world.buffer_of(1).has(0));
  EXPECT_FALSE(world.buffer_of(0).has(0));
}

TEST(Meed, HoldsWhenPeerHasNoPath) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<MeedRouter>(MeedParams{}));
  world.add_node(pinned({5.0, 0.0}), std::make_unique<MeedRouter>(MeedParams{}));
  world.add_node(pinned({2000.0, 0.0}), std::make_unique<MeedRouter>(MeedParams{}));
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  // Neither side can reach node 2 (both EEDs infinite): the copy stays.
  EXPECT_TRUE(world.buffer_of(0).has(0));
  EXPECT_FALSE(world.buffer_of(1).has(0));
}

TEST(Meed, EedUsesAverageIntervalsNotConditioning) {
  sim::World world(test_world_config());
  auto router0 = std::make_unique<MeedRouter>(MeedParams{});
  MeedRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(scripted(oscillate({5.0, 0.0}, {100.0, 0.0}, 50.0, 10.0, 8)),
                 std::make_unique<MeedRouter>(MeedParams{}));
  world.run(420.0);
  // MEED's estimate is the average interval (~50 s), NOT conditioned on
  // elapsed time — querying at different times gives the same value.
  const double now_estimate = r0->eed(1);
  EXPECT_NEAR(now_estimate, 50.0, 10.0);
}

TEST(Meed, ChargesLinkStateOverhead) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<MeedRouter>(MeedParams{}));
  world.add_node(pinned({5.0, 0.0}), std::make_unique<MeedRouter>(MeedParams{}));
  world.step();
  EXPECT_GT(world.metrics().control_bytes(), 0);
}

// ---------- Delegation ----------

TEST(Delegation, ReplicatesOnlyToHigherQuality) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<DelegationRouter>());
  // Node 1 met the destination recently -> higher quality.
  world.add_node(scripted({{0.0, {105.0, 0.0}},
                           {10.0, {105.0, 0.0}},
                           {20.0, {5.0, 0.0}},
                           {400.0, {5.0, 0.0}}}),
                 std::make_unique<DelegationRouter>());
  world.add_node(pinned({110.0, 0.0}), std::make_unique<DelegationRouter>());
  world.run(15.0);
  world.inject_message(make_message(0, 0, 2));
  world.run(30.0);
  EXPECT_TRUE(world.buffer_of(1).has(0));
  EXPECT_TRUE(world.buffer_of(0).has(0));  // replication: source keeps its copy
}

TEST(Delegation, NoForwardToEqualQuality) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<DelegationRouter>());
  world.add_node(pinned({5.0, 0.0}), std::make_unique<DelegationRouter>());
  world.add_node(pinned({2000.0, 0.0}), std::make_unique<DelegationRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  EXPECT_FALSE(world.buffer_of(1).has(0));  // both qualities are -inf
}

TEST(Delegation, LevelRatchetsUp) {
  // After delegating to a good peer, an equally good later peer must NOT
  // receive a copy (the level already matched its quality).
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<DelegationRouter>());
  // Peers 1 and 2 both met destination 3 at t~10, then visit node 0 in turn.
  world.add_node(scripted({{0.0, {205.0, 0.0}},
                           {10.0, {205.0, 0.0}},
                           {30.0, {5.0, 0.0}},
                           {60.0, {5.0, 0.0}},
                           {70.0, {400.0, 400.0}},
                           {500.0, {400.0, 400.0}}}),
                 std::make_unique<DelegationRouter>());
  world.add_node(scripted({{0.0, {210.0, 0.0}},
                           {10.0, {210.0, 0.0}},
                           {100.0, {5.0, 0.0}},
                           {500.0, {5.0, 0.0}}}),
                 std::make_unique<DelegationRouter>());
  world.add_node(pinned({207.0, 0.0}), std::make_unique<DelegationRouter>());
  world.run(20.0);  // peers 1,2 meet destination 3
  world.inject_message(make_message(0, 0, 3));
  world.run(55.0);  // peer 1 visits: delegation happens, level = ~t of 1&3 meeting
  const bool delegated_to_1 = world.buffer_of(1).has(0);
  world.run(60.0);  // peer 2 visits with similar (not higher) quality
  EXPECT_TRUE(delegated_to_1);
  // Peer 2's quality (last met 3 at ~t<=20) is older than peer 1's level
  // set at the same era; since it is not strictly greater, no new copy.
  EXPECT_FALSE(world.buffer_of(2).has(0));
}

}  // namespace
}  // namespace dtn::routing
