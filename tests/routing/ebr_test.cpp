#include "routing/ebr.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../test_support.hpp"

namespace dtn::routing {
namespace {

using test::make_message;
using test::pinned;
using test::scripted;
using test::test_world_config;

std::unique_ptr<EbrRouter> ebr(int copies = 10) {
  EbrParams p;
  p.copies = copies;
  return std::make_unique<EbrRouter>(p);
}

TEST(Ebr, InitialEncounterValueZero) {
  EbrRouter r(EbrParams{});
  EXPECT_DOUBLE_EQ(r.encounter_value(), 0.0);
}

TEST(Ebr, EvGrowsWithContacts) {
  // Node 0 pinned; node 1 oscillates in/out of range creating contacts.
  sim::World world(test_world_config());
  auto router0 = ebr();
  EbrRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  std::vector<std::pair<double, geo::Vec2>> keyframes;
  for (int k = 0; k < 10; ++k) {
    keyframes.push_back({k * 40.0, {5.0, 0.0}});
    keyframes.push_back({k * 40.0 + 20.0, {50.0, 0.0}});
  }
  world.add_node(scripted(std::move(keyframes)), ebr());
  world.run(400.0);
  EXPECT_GT(r0->encounter_value(), 0.0);
}

TEST(Ebr, EvDecaysWithoutContacts) {
  sim::World world(test_world_config());
  auto router0 = ebr();
  EbrRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  // A few contacts early, then isolation.
  std::vector<std::pair<double, geo::Vec2>> keyframes;
  for (int k = 0; k < 4; ++k) {
    keyframes.push_back({k * 40.0, {5.0, 0.0}});
    keyframes.push_back({k * 40.0 + 20.0, {50.0, 0.0}});
  }
  keyframes.push_back({2000.0, {50.0, 0.0}});
  world.add_node(scripted(std::move(keyframes)), ebr());
  world.run(200.0);
  const double ev_active = r0->encounter_value();
  world.run(1800.0);  // long quiet period: EWMA decays toward 0
  EXPECT_LT(r0->encounter_value(), ev_active);
}

TEST(Ebr, SplitsProportionallyToEv) {
  // Node 1 has high EV (frequent contacts with node 3); node 0 has none.
  // When 0 meets 1, nearly all replicas should go to 1.
  sim::World world(test_world_config());
  world.add_node(scripted({{0.0, {1000.0, 0.0}},
                           {300.0, {1000.0, 0.0}},
                           {310.0, {5.0, 0.0}},
                           {2000.0, {5.0, 0.0}}}),
                 ebr(10));
  std::vector<std::pair<double, geo::Vec2>> busy;  // oscillates near node 3
  for (int k = 0; k < 15; ++k) {
    busy.push_back({k * 20.0, {1000.0, 500.0}});
    busy.push_back({k * 20.0 + 10.0, {1000.0, 540.0}});
  }
  busy.push_back({310.0, {0.0, 0.0}});
  busy.push_back({2000.0, {0.0, 0.0}});
  world.add_node(scripted(std::move(busy)), ebr(10));
  world.add_node(pinned({1000.0, 505.0}), ebr(10));        // contact partner for 1
  world.add_node(pinned({-3000.0, 0.0}), ebr(10));         // unreachable destination
  world.run(305.0);
  world.inject_message(make_message(0, 0, 3));
  world.run(100.0);  // nodes 0 and 1 meet around t=310
  const auto* at0 = world.buffer_of(0).find(0);
  const auto* at1 = world.buffer_of(1).find(0);
  ASSERT_NE(at1, nullptr);
  // EV_1 >> EV_0 = 0: floor(10 * EV1/(EV1+EV0)) hands over the full quota
  // (EBR's ratio rule), so node 0 may retain nothing at all.
  const int r0_replicas = at0 != nullptr ? at0->replicas : 0;
  EXPECT_GE(at1->replicas, 7);
  EXPECT_EQ(r0_replicas + at1->replicas, 10);
}

TEST(Ebr, WaitPhaseDeliversOnlyDirect) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), ebr(1));
  world.add_node(pinned({5.0, 0.0}), ebr(1));
  world.add_node(pinned({2000.0, 0.0}), ebr(1));
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  EXPECT_TRUE(world.buffer_of(0).has(0));
  EXPECT_FALSE(world.buffer_of(1).has(0));
  world.inject_message(make_message(1, 0, 1));
  world.run(2.0);
  EXPECT_EQ(world.metrics().delivered(), 1);  // direct delivery still works
}

TEST(Ebr, EvenSplitWhenBothEvZero) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), ebr(10));
  world.add_node(pinned({5.0, 0.0}), ebr(10));
  world.add_node(pinned({2000.0, 0.0}), ebr(10));
  world.step();  // first-ever contact: both EVs still 0 until window rolls
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  const auto* at1 = world.buffer_of(1).find(0);
  ASSERT_NE(at1, nullptr);
  EXPECT_EQ(at1->replicas, 5);
}

}  // namespace
}  // namespace dtn::routing
