#include "routing/prophet.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../test_support.hpp"

namespace dtn::routing {
namespace {

using test::make_message;
using test::pinned;
using test::scripted;
using test::test_world_config;

std::unique_ptr<ProphetRouter> prophet() {
  return std::make_unique<ProphetRouter>(ProphetParams{});
}

TEST(Prophet, EncounterRaisesPredictability) {
  sim::World world(test_world_config());
  auto router0 = prophet();
  ProphetRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(pinned({5.0, 0.0}), prophet());
  EXPECT_DOUBLE_EQ(r0->predictability(1), 0.0);
  world.step();
  EXPECT_NEAR(r0->predictability(1), 0.75, 1e-9);
}

TEST(Prophet, AgingDecaysPredictability) {
  sim::World world(test_world_config());
  auto router0 = prophet();
  ProphetRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(scripted({{0.0, {5.0, 0.0}}, {1.0, {5.0, 0.0}}, {2.0, {500.0, 0.0}},
                           {300.0, {500.0, 0.0}}, {301.0, {5.0, 0.0}},
                           {600.0, {5.0, 0.0}}}),
                 prophet());
  world.run(2.0);
  const double fresh = r0->predictability(1);
  world.run(300.0);  // second contact ages then re-boosts
  // The aging between contacts happened: value after the gap but before the
  // boost would be fresh * gamma^(dt/unit) < fresh. After re-encounter it
  // exceeds the aged value again.
  EXPECT_GT(r0->predictability(1), 0.0);
  EXPECT_GE(fresh, 0.75 - 1e-9);
}

TEST(Prophet, TransitivityLearnsTwoHopPath) {
  // 0 meets 1, and 1 has high predictability to 2: node 0 gains P(2) > 0
  // through transitivity without ever meeting 2.
  sim::World world(test_world_config());
  auto router0 = prophet();
  ProphetRouter* r0 = router0.get();
  world.add_node(scripted({{0.0, {1000.0, 0.0}},
                           {50.0, {1000.0, 0.0}},
                           {60.0, {5.0, 0.0}},
                           {300.0, {5.0, 0.0}}}),
                 std::move(router0));
  // Node 1 near node 2 early, then near node 0's later position.
  world.add_node(scripted({{0.0, {0.0, 0.0}},
                           {40.0, {0.0, 0.0}},
                           {55.0, {0.0, 0.0}},
                           {300.0, {0.0, 0.0}}}),
                 prophet());
  world.add_node(scripted({{0.0, {5.0, 0.0}},
                           {30.0, {5.0, 0.0}},
                           {40.0, {800.0, 800.0}},
                           {300.0, {800.0, 800.0}}}),
                 prophet());
  world.run(300.0);
  EXPECT_GT(r0->predictability(2), 0.0);
  EXPECT_LT(r0->predictability(2), 0.75);  // transitive, weaker than direct
}

TEST(Prophet, ForwardsToBetterCandidate) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), prophet());
  // Node 1 oscillates between destination 2 and node 0, gaining P(2).
  world.add_node(scripted({{0.0, {105.0, 0.0}},
                           {10.0, {105.0, 0.0}},
                           {20.0, {5.0, 0.0}},
                           {400.0, {5.0, 0.0}}}),
                 prophet());
  world.add_node(pinned({110.0, 0.0}), prophet());
  world.run(15.0);
  world.inject_message(make_message(0, 0, 2));
  world.run(30.0);
  // Node 1 had met 2; node 0 never did: replicate to node 1.
  EXPECT_TRUE(world.buffer_of(1).has(0));
  EXPECT_TRUE(world.buffer_of(0).has(0));  // replication keeps the source copy
}

TEST(Prophet, DoesNotForwardToWorseCandidate) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), prophet());
  world.add_node(pinned({5.0, 0.0}), prophet());
  world.add_node(pinned({2000.0, 0.0}), prophet());
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  // Both have P(2) = 0: strict inequality fails, no transfer.
  EXPECT_FALSE(world.buffer_of(1).has(0));
}

TEST(Prophet, DirectDeliveryAlways) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), prophet());
  world.add_node(pinned({5.0, 0.0}), prophet());
  world.step();
  world.inject_message(make_message(0, 0, 1));
  world.run(2.0);
  EXPECT_EQ(world.metrics().delivered(), 1);
}

}  // namespace
}  // namespace dtn::routing
