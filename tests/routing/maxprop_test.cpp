#include "routing/maxprop.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "../test_support.hpp"

namespace dtn::routing {
namespace {

using test::make_message;
using test::pinned;
using test::test_world_config;

std::unique_ptr<MaxPropRouter> maxprop(int hop_threshold = 3) {
  return std::make_unique<MaxPropRouter>(MaxPropParams{hop_threshold});
}

TEST(MaxProp, LikelihoodsNormalizedAfterMeetings) {
  sim::World world(test_world_config());
  auto router0 = maxprop();
  MaxPropRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(pinned({5.0, 0.0}), maxprop());
  world.add_node(pinned({2000.0, 0.0}), maxprop());
  world.step();
  const auto& f = r0->own_likelihoods();
  ASSERT_EQ(f.size(), 3u);
  double sum = 0.0;
  for (std::size_t j = 0; j < f.size(); ++j) {
    if (j != 0) sum += f[j];
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Met node 1, so its likelihood dominates the unmet node 2.
  EXPECT_GT(f[1], f[2]);
}

TEST(MaxProp, CostPrefersLikelyPath) {
  sim::World world(test_world_config());
  auto router0 = maxprop();
  MaxPropRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(pinned({5.0, 0.0}), maxprop());
  world.add_node(pinned({2000.0, 0.0}), maxprop());
  world.step();
  // Cost to the met node is below cost to the unmet node.
  EXPECT_LT(r0->cost_to(1), r0->cost_to(2));
}

TEST(MaxProp, RepeatedMeetingsRaiseLikelihood) {
  sim::World world(test_world_config());
  auto router0 = maxprop();
  MaxPropRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(pinned({5.0, 0.0}), maxprop());
  world.add_node(pinned({2000.0, 0.0}), maxprop());
  world.step();
  const double after_one = r0->own_likelihoods()[1];
  EXPECT_GT(after_one, 0.4);  // 1/(n-1)=0.5 prior, +1 then normalize
}

TEST(MaxProp, ReplicatesEverythingOnContact) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), maxprop());
  world.add_node(pinned({5.0, 0.0}), maxprop());
  world.add_node(pinned({2000.0, 0.0}), maxprop());
  world.step();
  for (sim::MsgId id = 0; id < 3; ++id) {
    world.inject_message(make_message(id, 0, 2));
  }
  world.run(3.0);
  for (sim::MsgId id = 0; id < 3; ++id) {
    EXPECT_TRUE(world.buffer_of(0).has(id));
    EXPECT_TRUE(world.buffer_of(1).has(id));
  }
}

TEST(MaxProp, DeliveryTriggersAckPurge) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), maxprop());
  world.add_node(pinned({5.0, 0.0}), maxprop());
  world.add_node(pinned({10.0, 0.0}), maxprop());  // in range of node 1 only
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(5.0);
  EXPECT_EQ(world.metrics().delivered(), 1);
  // After delivery, acks purge the copies at both relays.
  EXPECT_FALSE(world.buffer_of(0).has(0));
  EXPECT_FALSE(world.buffer_of(1).has(0));
}

TEST(MaxProp, DropVictimPrefersHighHopHighCost) {
  sim::World world(test_world_config());
  auto router0 = maxprop(/*hop_threshold=*/2);
  MaxPropRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(pinned({5000.0, 0.0}), maxprop());
  sim::Buffer buf(1 << 20);
  sim::StoredMessage low_hop;
  low_hop.msg = make_message(1, 0, 1);
  low_hop.hop_count = 0;
  sim::StoredMessage high_hop;
  high_hop.msg = make_message(2, 0, 1);
  high_hop.hop_count = 5;
  buf.insert(low_hop);
  buf.insert(high_hop);
  EXPECT_EQ(r0->choose_drop_victim(buf), 2);
}

TEST(MaxProp, DropFallsBackToMaxHopsWhenAllBelowThreshold) {
  sim::World world(test_world_config());
  auto router0 = maxprop(/*hop_threshold=*/10);
  MaxPropRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(pinned({5000.0, 0.0}), maxprop());
  sim::Buffer buf(1 << 20);
  for (int h = 0; h < 3; ++h) {
    sim::StoredMessage sm;
    sm.msg = make_message(h, 0, 1);
    sm.hop_count = h;
    buf.insert(sm);
  }
  EXPECT_EQ(r0->choose_drop_victim(buf), 2);
}

TEST(MaxProp, UnknownDestinationCostInfinite) {
  sim::World world(test_world_config());
  auto router0 = maxprop();
  MaxPropRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(pinned({5000.0, 0.0}), maxprop());
  world.step();  // no contacts at all
  // Never exchanged vectors: only own row exists; node 1 reachable at the
  // prior likelihood, still finite; a node id beyond the vector is +inf.
  EXPECT_TRUE(std::isinf(r0->cost_to(99)) || r0->cost_to(99) > 1e17);
}

}  // namespace
}  // namespace dtn::routing
