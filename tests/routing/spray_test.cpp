#include <gtest/gtest.h>

#include <memory>

#include "../test_support.hpp"
#include "routing/spray_and_focus.hpp"
#include "routing/spray_and_wait.hpp"

namespace dtn::routing {
namespace {

using test::make_message;
using test::pinned;
using test::scripted;
using test::test_world_config;

std::unique_ptr<SprayAndWaitRouter> snw(int copies, bool binary = true) {
  return std::make_unique<SprayAndWaitRouter>(SprayAndWaitParams{copies, binary});
}

TEST(SprayAndWait, BinarySplitHandsOverHalf) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), snw(10));
  world.add_node(pinned({5.0, 0.0}), snw(10));
  world.add_node(pinned({2000.0, 0.0}), snw(10));  // unreachable destination
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  ASSERT_TRUE(world.buffer_of(0).has(0));
  ASSERT_TRUE(world.buffer_of(1).has(0));
  EXPECT_EQ(world.buffer_of(0).find(0)->replicas, 5);
  EXPECT_EQ(world.buffer_of(1).find(0)->replicas, 5);
}

TEST(SprayAndWait, SourceModeHandsOverOne) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), snw(10, /*binary=*/false));
  world.add_node(pinned({5.0, 0.0}), snw(10, false));
  world.add_node(pinned({2000.0, 0.0}), snw(10, false));
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  EXPECT_EQ(world.buffer_of(0).find(0)->replicas, 9);
  EXPECT_EQ(world.buffer_of(1).find(0)->replicas, 1);
}

TEST(SprayAndWait, WaitPhaseHoldsSingleCopy) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), snw(1));
  world.add_node(pinned({5.0, 0.0}), snw(1));
  world.add_node(pinned({2000.0, 0.0}), snw(1));
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  // One replica: never handed to a non-destination relay.
  EXPECT_TRUE(world.buffer_of(0).has(0));
  EXPECT_FALSE(world.buffer_of(1).has(0));
  EXPECT_EQ(world.metrics().relayed(), 0);
}

TEST(SprayAndWait, DeliversDirectlyInWaitPhase) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), snw(1));
  world.add_node(pinned({5.0, 0.0}), snw(1));
  world.step();
  world.inject_message(make_message(0, 0, 1));
  world.run(2.0);
  EXPECT_EQ(world.metrics().delivered(), 1);
}

TEST(SprayAndWait, QuotaConservedAcrossSpray) {
  sim::World world(test_world_config());
  for (int i = 0; i < 4; ++i) {
    world.add_node(pinned({i * 8.0, 0.0}), snw(8));
  }
  world.add_node(pinned({5000.0, 0.0}), snw(8));  // destination, unreachable
  world.step();
  world.inject_message(make_message(0, 0, 4));
  world.run(5.0);
  int total = 0;
  for (sim::NodeIdx v = 0; v < 5; ++v) {
    const auto* sm = world.buffer_of(v).find(0);
    if (sm != nullptr) total += sm->replicas;
  }
  EXPECT_EQ(total, 8);
}

TEST(SprayAndFocus, ForwardsSingleCopyTowardFresherTimer) {
  // Node 1 met the destination (2) recently; node 0 holds the last copy and
  // should hand it to node 1 in the focus phase.
  sim::World world(test_world_config());
  auto r0 = std::make_unique<SprayAndFocusRouter>(SprayAndFocusParams{1, true, 60.0, 1.0});
  auto r1 = std::make_unique<SprayAndFocusRouter>(SprayAndFocusParams{1, true, 60.0, 1.0});
  auto r2 = std::make_unique<SprayAndFocusRouter>(SprayAndFocusParams{1, true, 60.0, 1.0});
  world.add_node(pinned({0.0, 0.0}), std::move(r0));
  // Node 1 visits destination 2 early, then returns near node 0.
  world.add_node(scripted({{0.0, {100.0, 0.0}},
                           {10.0, {100.0, 0.0}},
                           {20.0, {5.0, 0.0}},
                           {1000.0, {5.0, 0.0}}}),
                 std::move(r1));
  world.add_node(pinned({105.0, 0.0}), std::move(r2));
  world.run(15.0);  // node 1 in contact with 2 at start
  world.inject_message(make_message(0, 0, 2));
  world.run(15.0);  // node 1 arrives at node 0; focus forwarding happens
  EXPECT_TRUE(world.buffer_of(1).has(0));
  EXPECT_FALSE(world.buffer_of(0).has(0));
}

TEST(SprayAndFocus, DoesNotForwardToWorseTimer) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}),
                 std::make_unique<SprayAndFocusRouter>(SprayAndFocusParams{1}));
  world.add_node(pinned({5.0, 0.0}),
                 std::make_unique<SprayAndFocusRouter>(SprayAndFocusParams{1}));
  world.add_node(pinned({2000.0, 0.0}),
                 std::make_unique<SprayAndFocusRouter>(SprayAndFocusParams{1}));
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  // Neither node ever met the destination: timers equal (-inf), no forward.
  EXPECT_TRUE(world.buffer_of(0).has(0));
  EXPECT_FALSE(world.buffer_of(1).has(0));
}

TEST(SprayAndFocus, SprayPhaseStillSplits) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}),
                 std::make_unique<SprayAndFocusRouter>(SprayAndFocusParams{10}));
  world.add_node(pinned({5.0, 0.0}),
                 std::make_unique<SprayAndFocusRouter>(SprayAndFocusParams{10}));
  world.add_node(pinned({2000.0, 0.0}),
                 std::make_unique<SprayAndFocusRouter>(SprayAndFocusParams{10}));
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  EXPECT_EQ(world.buffer_of(0).find(0)->replicas, 5);
  EXPECT_EQ(world.buffer_of(1).find(0)->replicas, 5);
}

}  // namespace
}  // namespace dtn::routing
