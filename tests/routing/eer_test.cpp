// EER protocol tests: Algorithm 1 behaviour end-to-end in scripted worlds.
#include "routing/eer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "../test_support.hpp"

namespace dtn::routing {
namespace {

using test::make_message;
using test::pinned;
using test::scripted;
using test::test_world_config;

std::unique_ptr<EerRouter> eer(int copies = 10, double alpha = 0.28) {
  EerParams p;
  p.copies = copies;
  p.alpha = alpha;
  return std::make_unique<EerRouter>(p);
}

/// Keyframes oscillating between `near` and `far` with the given period;
/// the node sits at `near` for `dwell` seconds each period.
std::vector<std::pair<double, geo::Vec2>> oscillate(geo::Vec2 near, geo::Vec2 far,
                                                    double period, double dwell,
                                                    int cycles) {
  std::vector<std::pair<double, geo::Vec2>> kf;
  for (int k = 0; k < cycles; ++k) {
    const double t0 = k * period;
    kf.push_back({t0, near});
    kf.push_back({t0 + dwell, near});
    kf.push_back({t0 + dwell + 1.0, far});
    kf.push_back({t0 + period - 1.0, far});
  }
  kf.push_back({cycles * period, near});
  return kf;
}

TEST(Eer, InitialReplicasIsLambda) {
  EXPECT_EQ(eer(6)->initial_replicas(), 6);
  EXPECT_EQ(eer(12)->initial_replicas(), 12);
}

TEST(Eer, HistoryBuildsFromContacts) {
  sim::World world(test_world_config());
  auto router0 = eer();
  EerRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(scripted(oscillate({5.0, 0.0}, {100.0, 0.0}, 40.0, 10.0, 5)), eer());
  world.run(200.0);
  const core::PairHistory* ph = r0->history().pair(1);
  ASSERT_NE(ph, nullptr);
  EXPECT_GE(ph->intervals.size(), 3u);
  // Contacts recur every ~40 s.
  EXPECT_NEAR(ph->average_interval(), 40.0, 5.0);
}

TEST(Eer, EevReflectsContactRate) {
  sim::World world(test_world_config());
  auto router0 = eer();
  EerRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(scripted(oscillate({5.0, 0.0}, {100.0, 0.0}, 40.0, 10.0, 8)), eer());
  world.run(330.0);
  // τ = 60 comfortably covers the ~40 s meeting interval: expect EEV near 1.
  EXPECT_GT(r0->eev(world.now(), 60.0), 0.5);
  // τ = 1 s covers almost nothing.
  EXPECT_LT(r0->eev(world.now(), 1.0), 0.5);
}

TEST(Eer, MiExchangeConvergesOnContact) {
  sim::World world(test_world_config());
  auto router0 = eer();
  auto router1 = eer();
  EerRouter* r0 = router0.get();
  EerRouter* r1 = router1.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(scripted(oscillate({5.0, 0.0}, {100.0, 0.0}, 40.0, 10.0, 5)),
                 std::move(router1));
  world.run(200.0);
  // Both have their own rows; after merges each sees the other's row.
  EXPECT_LT(r0->mi().get(1, 0), core::MiMatrix::kUnknown);
  EXPECT_LT(r1->mi().get(0, 1), core::MiMatrix::kUnknown);
  // r0's view of row 1 may lag by the final contact (the merge runs before
  // the peer refreshes its own row within the same contact): near-equal.
  EXPECT_NEAR(r0->mi().get(1, 0), r1->mi().get(1, 0), 1.0);
}

TEST(Eer, MultiReplicaSplitFavorsBusierNode) {
  // Node 1 meets many partners (high EEV); node 0 is isolated apart from
  // the rendezvous. Splitting 10 replicas should give node 1 the majority.
  sim::World world(test_world_config());
  world.add_node(scripted({{0.0, {-1000.0, 0.0}},
                           {398.0, {-1000.0, 0.0}},
                           {400.0, {5.0, 0.0}},
                           {600.0, {5.0, 0.0}}}),
                 eer(10));
  // Node 1 oscillates among nodes 2 and 3 frequently, then waits at origin.
  std::vector<std::pair<double, geo::Vec2>> kf;
  for (int k = 0; k < 10; ++k) {
    kf.push_back({k * 30.0, {500.0, 0.0}});
    kf.push_back({k * 30.0 + 10.0, {500.0, 0.0}});
    kf.push_back({k * 30.0 + 15.0, {560.0, 0.0}});
    kf.push_back({k * 30.0 + 25.0, {560.0, 0.0}});
  }
  kf.push_back({330.0, {0.0, 0.0}});
  kf.push_back({600.0, {0.0, 0.0}});
  world.add_node(scripted(std::move(kf)), eer(10));
  world.add_node(pinned({505.0, 0.0}), eer(10));
  world.add_node(pinned({565.0, 0.0}), eer(10));
  world.add_node(pinned({-5000.0, 0.0}), eer(10));  // unreachable destination

  world.run(399.0);
  world.inject_message(make_message(0, 0, 4));
  world.run(100.0);  // nodes 0 and 1 in contact around t=400

  const auto* at0 = world.buffer_of(0).find(0);
  const auto* at1 = world.buffer_of(1).find(0);
  ASSERT_NE(at1, nullptr);
  const int r1_replicas = at1->replicas;
  const int r0_replicas = at0 != nullptr ? at0->replicas : 0;
  EXPECT_EQ(r0_replicas + r1_replicas, 10);
  EXPECT_GT(r1_replicas, r0_replicas);
}

TEST(Eer, DegenerateSplitIsBinaryHalf) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), eer(10));
  world.add_node(pinned({5.0, 0.0}), eer(10));
  world.add_node(pinned({2000.0, 0.0}), eer(10));
  world.step();  // first-ever contact: no intervals -> EEVs both 0
  world.inject_message(make_message(0, 0, 2));
  world.run(2.0);
  const auto* at1 = world.buffer_of(1).find(0);
  ASSERT_NE(at1, nullptr);
  EXPECT_EQ(at1->replicas, 5);
  EXPECT_EQ(world.buffer_of(0).find(0)->replicas, 5);
}

TEST(Eer, DirectDeliveryOnContactWithDestination) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), eer(10));
  world.add_node(pinned({5.0, 0.0}), eer(10));
  world.step();
  world.inject_message(make_message(0, 0, 1));
  world.run(2.0);
  EXPECT_EQ(world.metrics().delivered(), 1);
}

TEST(Eer, SingleReplicaForwardsToLowerMemd) {
  // Node 1 meets the destination (2) periodically; node 0 never does.
  // With a single replica, MEMD(0,2)=inf > MEMD(1,2) -> forward to 1.
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), eer(1));
  world.add_node(scripted(oscillate({300.0, 0.0}, {5.0, 0.0}, 60.0, 20.0, 8)), eer(1));
  world.add_node(pinned({305.0, 0.0}), eer(1));
  world.run(420.0);
  world.inject_message(make_message(0, 0, 2));
  world.run(120.0);
  // The copy must have left node 0 toward node 1 (or already delivered).
  const bool delivered = world.metrics().delivered() == 1;
  EXPECT_TRUE(delivered || world.buffer_of(1).has(0));
  EXPECT_FALSE(world.buffer_of(0).has(0));
}

TEST(Eer, SingleReplicaHeldWhenPeerIsWorse) {
  // Node 0 meets the destination periodically; node 1 never does. The
  // single copy must stay at node 0 when they meet.
  sim::World world(test_world_config());
  world.add_node(scripted(oscillate({300.0, 0.0}, {5.0, 0.0}, 60.0, 20.0, 8)), eer(1));
  world.add_node(pinned({0.0, 0.0}), eer(1));
  world.add_node(pinned({305.0, 0.0}), eer(1));
  world.run(420.0);
  // Inject at node 0 while it is away from the destination.
  world.inject_message(make_message(0, 0, 2));
  world.run(200.0);
  EXPECT_FALSE(world.buffer_of(1).has(0));
}

TEST(Eer, MemdDropsWithElapsedTimeForPeriodicPair) {
  sim::World world(test_world_config());
  auto router0 = eer();
  EerRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(scripted(oscillate({5.0, 0.0}, {100.0, 0.0}, 50.0, 10.0, 8)), eer());
  world.run(420.0);
  const double t = world.now();
  const double memd_now = r0->memd(1, t);
  const double memd_later = r0->memd(1, t + 20.0);
  EXPECT_LT(memd_later, memd_now + 1e-9);
}

TEST(Eer, NoRedistributionWhenPeerAlreadyHolds) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), eer(10));
  world.add_node(pinned({5.0, 0.0}), eer(10));
  world.add_node(pinned({2000.0, 0.0}), eer(10));
  world.step();
  world.inject_message(make_message(0, 0, 2));
  world.run(3.0);
  const long long relays_after_split = world.metrics().relayed();
  world.run(10.0);  // same contact persists: no further exchanges
  EXPECT_EQ(world.metrics().relayed(), relays_after_split);
}

TEST(Eer, ControlOverheadCharged) {
  sim::World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), eer());
  world.add_node(pinned({5.0, 0.0}), eer());
  world.step();
  EXPECT_GT(world.metrics().control_bytes(), 0);
}

}  // namespace
}  // namespace dtn::routing
