#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "../test_support.hpp"

namespace dtn::sim {
namespace {

using test::make_message;

TEST(Metrics, FreshMetricsAreZero) {
  const Metrics m;
  EXPECT_EQ(m.created(), 0);
  EXPECT_EQ(m.delivered(), 0);
  EXPECT_EQ(m.relayed(), 0);
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.goodput(), 0.0);
  EXPECT_DOUBLE_EQ(m.latency_mean(), 0.0);
}

TEST(Metrics, DeliveryRatio) {
  Metrics m;
  for (MsgId id = 0; id < 4; ++id) m.on_created(make_message(id, 0, 1));
  m.on_delivered(make_message(0, 0, 1, 0.0), 10.0, 1);
  m.on_delivered(make_message(1, 0, 1, 0.0), 20.0, 2);
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.5);
}

TEST(Metrics, DuplicateDeliveryIgnored) {
  Metrics m;
  m.on_created(make_message(0, 0, 1));
  m.on_delivered(make_message(0, 0, 1, 0.0), 10.0, 1);
  m.on_delivered(make_message(0, 0, 1, 0.0), 99.0, 5);
  EXPECT_EQ(m.delivered(), 1);
  EXPECT_DOUBLE_EQ(m.latency_mean(), 10.0);  // first arrival's latency kept
  EXPECT_TRUE(m.is_delivered(0));
  EXPECT_FALSE(m.is_delivered(1));
}

TEST(Metrics, LatencyIsDeliveryMinusCreation) {
  Metrics m;
  m.on_created(make_message(0, 0, 1, 100.0));
  m.on_delivered(make_message(0, 0, 1, 100.0), 250.0, 3);
  EXPECT_DOUBLE_EQ(m.latency_mean(), 150.0);
  EXPECT_DOUBLE_EQ(m.hop_count_mean(), 3.0);
}

TEST(Metrics, GoodputIsDeliveredOverRelayed) {
  Metrics m;
  m.on_created(make_message(0, 0, 1));
  for (int i = 0; i < 10; ++i) m.on_relayed();
  m.on_delivered(make_message(0, 0, 1, 0.0), 5.0, 1);
  EXPECT_DOUBLE_EQ(m.goodput(), 0.1);
}

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  m.on_transfer_started();
  m.on_transfer_started();
  m.on_transfer_aborted();
  m.on_dropped();
  m.on_expired();
  m.add_control_bytes(512);
  m.add_control_bytes(488);
  EXPECT_EQ(m.transfers_started(), 2);
  EXPECT_EQ(m.transfers_aborted(), 1);
  EXPECT_EQ(m.dropped(), 1);
  EXPECT_EQ(m.expired(), 1);
  EXPECT_EQ(m.control_bytes(), 1000);
}

TEST(Metrics, LatencyStatsExposeSpread) {
  Metrics m;
  for (MsgId id = 0; id < 3; ++id) {
    m.on_created(make_message(id, 0, 1));
    m.on_delivered(make_message(id, 0, 1, 0.0), 10.0 * (id + 1), 1);
  }
  EXPECT_DOUBLE_EQ(m.latency_stats().min(), 10.0);
  EXPECT_DOUBLE_EQ(m.latency_stats().max(), 30.0);
  EXPECT_DOUBLE_EQ(m.latency_stats().mean(), 20.0);
}

}  // namespace
}  // namespace dtn::sim
