// Invariants of the incremental contact-layer engine: the per-node
// adjacency index must always agree with ground-truth geometry under random
// link churn, the reusable-scratch SpatialGrid APIs must match their
// allocating predecessors, and the legacy (full-rescan) and incremental
// detection paths must produce bit-identical simulations.
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "geo/spatial_grid.hpp"
#include "harness/scenario.hpp"
#include "mobility/random_waypoint.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace dtn::sim {
namespace {

using test::RecordingRouter;

mobility::MovementModelPtr roaming(double area) {
  mobility::RandomWaypointParams params;
  params.world_min = {0.0, 0.0};
  params.world_max = {area, area};
  params.speed_min = 2.0;
  params.speed_max = 12.0;
  return std::make_unique<mobility::RandomWaypoint>(params);
}

TEST(ContactLayerTest, AdjacencyMatchesGeometryUnderChurn) {
  WorldConfig config;
  config.seed = 99;
  World world(config);
  constexpr int kNodes = 24;
  std::vector<RecordingRouter*> routers;
  for (int i = 0; i < kNodes; ++i) {
    auto router = std::make_unique<RecordingRouter>();
    routers.push_back(router.get());
    // 45 m square with 10 m radio range: dense enough that links form and
    // break every few steps.
    world.add_node(roaming(45.0), std::move(router));
  }

  for (int s = 0; s < 600; ++s) {
    world.step();
    const double r2 = config.radio_range * config.radio_range;
    std::size_t pair_count = 0;
    for (NodeIdx a = 0; a < kNodes; ++a) {
      std::vector<NodeIdx> expected;
      for (NodeIdx b = 0; b < kNodes; ++b) {
        if (a == b) continue;
        const bool near =
            world.position_of(a).distance2_to(world.position_of(b)) <= r2;
        ASSERT_EQ(world.in_contact(a, b), near)
            << "step " << s << " pair (" << a << "," << b << ")";
        ASSERT_EQ(world.in_contact(a, b), world.in_contact(b, a));
        if (near) expected.push_back(b);
      }
      pair_count += expected.size();
      // contacts_of must be exactly the geometric neighbor set, ascending.
      ASSERT_EQ(world.contacts_of(a), expected) << "step " << s << " node " << a;
    }
    ASSERT_EQ(world.active_connection_count(), pair_count / 2);
  }
  EXPECT_GT(world.contact_events(), 0);
  // Churn actually happened: someone saw a link drop.
  bool any_down = false;
  for (const auto* r : routers) any_down |= !r->contacts_down.empty();
  EXPECT_TRUE(any_down);
}

TEST(ContactLayerTest, ContactCallbacksMirrorAdjacencyTransitions) {
  // Two scripted nodes crossing in and out of range: the adjacency index
  // must flip exactly when the up/down callbacks fire.
  WorldConfig config;
  World world(config);
  auto r0 = std::make_unique<RecordingRouter>();
  RecordingRouter* rec = r0.get();
  world.add_node(test::pinned({0.0, 0.0}), std::move(r0));
  world.add_node(test::scripted({{0.0, {30.0, 0.0}},
                                 {10.0, {0.0, 0.0}},
                                 {20.0, {30.0, 0.0}}}),
                 std::make_unique<RecordingRouter>());
  world.run(20.0);
  ASSERT_EQ(rec->contacts_up.size(), 1u);
  ASSERT_EQ(rec->contacts_down.size(), 1u);
  EXPECT_FALSE(world.in_contact(0, 1));
  EXPECT_TRUE(world.contacts_of(0).empty());
}

TEST(ContactLayerTest, AllPairsIntoMatchesAllPairsOnRandomClouds) {
  util::Pcg32 rng(2026, 7);
  geo::SpatialGrid grid(10.0);
  std::vector<std::pair<std::int32_t, std::int32_t>> scratch;
  for (int round = 0; round < 20; ++round) {
    grid.clear();
    const int n = 20 + static_cast<int>(rng.next_u32() % 180);
    for (int i = 0; i < n; ++i) {
      grid.insert(i, {rng.next_double() * 120.0, rng.next_double() * 120.0});
    }
    auto baseline = grid.all_pairs(10.0);
    grid.all_pairs_into(10.0, scratch);
    std::sort(baseline.begin(), baseline.end());
    std::sort(scratch.begin(), scratch.end());
    ASSERT_EQ(scratch, baseline) << "round " << round;
  }
}

TEST(ContactLayerTest, QueryIntoMatchesQuery) {
  util::Pcg32 rng(7, 11);
  geo::SpatialGrid grid(5.0);
  for (int i = 0; i < 200; ++i) {
    grid.insert(i, {rng.next_double() * 80.0, rng.next_double() * 80.0});
  }
  std::vector<std::int32_t> scratch;
  for (int q = 0; q < 50; ++q) {
    const geo::Vec2 pos{rng.next_double() * 80.0, rng.next_double() * 80.0};
    auto baseline = grid.query(pos, 12.5, q);
    grid.query_into(pos, 12.5, scratch, q);
    std::sort(baseline.begin(), baseline.end());
    std::sort(scratch.begin(), scratch.end());
    ASSERT_EQ(scratch, baseline) << "query " << q;
  }
}

TEST(ContactLayerTest, StaleCellsArePruned) {
  geo::SpatialGrid grid(10.0);
  // Occupy a 10x10 block of distinct cells once.
  for (int i = 0; i < 100; ++i) {
    grid.insert(i, {static_cast<double>(i % 10) * 10.0 + 5.0,
                    static_cast<double>(i / 10) * 10.0 + 5.0});
  }
  ASSERT_GE(grid.cell_count(), 100u);
  // Then rebuild from a single far-away cell for a long time: the stale
  // cells must eventually be dropped instead of accumulating forever.
  const int rebuilds = static_cast<int>(geo::SpatialGrid::kPruneAfter) * 2 + 10;
  for (int s = 0; s < rebuilds; ++s) {
    grid.clear();
    grid.insert(0, {5000.0, 5000.0});
  }
  EXPECT_LE(grid.cell_count(), 4u);
}

TEST(ContactLayerTest, LegacyAndIncrementalPathsAreBitIdentical) {
  for (const char* proto : {"Epidemic", "EER"}) {
    harness::BusScenarioParams p;
    p.node_count = 16;
    p.duration_s = 900.0;
    p.traffic.ttl = 300.0;  // full_ttl_window needs ttl < duration
    p.seed = 5;
    p.map.rows = 5;
    p.map.cols = 6;
    p.map.districts = 2;
    p.map.routes_per_district = 2;
    p.protocol.name = proto;
    p.protocol.copies = 6;
    p.world.legacy_contact_path = false;
    const auto fast = harness::run_bus_scenario(p);
    p.world.legacy_contact_path = true;
    const auto legacy = harness::run_bus_scenario(p);
    EXPECT_EQ(fast.metrics.created(), legacy.metrics.created()) << proto;
    EXPECT_EQ(fast.metrics.delivered(), legacy.metrics.delivered()) << proto;
    EXPECT_EQ(fast.metrics.relayed(), legacy.metrics.relayed()) << proto;
    EXPECT_EQ(fast.metrics.dropped(), legacy.metrics.dropped()) << proto;
    EXPECT_EQ(fast.metrics.expired(), legacy.metrics.expired()) << proto;
    EXPECT_EQ(fast.metrics.transfers_aborted(), legacy.metrics.transfers_aborted())
        << proto;
    EXPECT_EQ(fast.metrics.control_bytes(), legacy.metrics.control_bytes()) << proto;
    EXPECT_EQ(fast.contact_events, legacy.contact_events) << proto;
    EXPECT_DOUBLE_EQ(fast.metrics.latency_mean(), legacy.metrics.latency_mean())
        << proto;
  }
}

}  // namespace
}  // namespace dtn::sim
