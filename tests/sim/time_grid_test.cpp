// The floating-point time grid, pinned. The fixed-dt loop derives sim time
// from the integer step index (now = k * dt) and sizes runs with a
// tolerance-aware step count, so none of the classic accumulation bugs can
// come back:
//   - duration 600 at dt 0.1 must be exactly 6000 steps, never 6001
//     (600/0.1 rounds to 6000.000000000001 in binary, and a bare ceil
//     manufactured a phantom step);
//   - now() must be bitwise equal to step_count() * dt at every step, with
//     no drift against sweep or traffic boundaries;
//   - the TTL sweep at interval 1.0 with dt 0.1 must fire at step 10
//     (t = 1.0), not step 11 (the accumulated 0.1-sum overshoots 1.0).
#include "sim/world.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "../test_support.hpp"

namespace dtn::sim {
namespace {

using test::RecordingRouter;
using test::pinned;
using test::test_world_config;

TEST(TimeGrid, CanonicalPaperGridHasNoPhantomStep) {
  // THE motivating case: update interval 0.1 s over 600 s (paper Sec. V-A)
  // must be exactly 6000 steps on every platform, however 600/0.1 rounds.
  EXPECT_EQ(World::step_count_for(600.0, 0.1), 6000);
  // The phantom-step hazard is real: a duration computed as 3 * 0.1
  // (what callers actually do) divided back by 0.1 gives
  // 3.0000000000000004, so a bare ceil manufactures a 4th step.
  const double three_steps = 3 * 0.1;
  EXPECT_EQ(static_cast<std::int64_t>(std::ceil(three_steps / 0.1)), 4);
  EXPECT_EQ(World::step_count_for(three_steps, 0.1), 3);
}

TEST(TimeGrid, AwkwardExactRatios) {
  // Every (k * dt, dt) pair whose quotient is not exact in binary.
  EXPECT_EQ(World::step_count_for(0.9, 0.3), 3);
  EXPECT_EQ(World::step_count_for(0.3, 0.1), 3);
  EXPECT_EQ(World::step_count_for(0.7, 0.1), 7);
  EXPECT_EQ(World::step_count_for(1.0, 1.0 / 3.0), 3);
  EXPECT_EQ(World::step_count_for(8000.0, 0.1), 80000);
  EXPECT_EQ(World::step_count_for(86400.0, 0.1), 864000);
  EXPECT_EQ(World::step_count_for(1.0, 0.001), 1000);
  EXPECT_EQ(World::step_count_for(600.0, 0.05), 12000);
}

TEST(TimeGrid, FractionalRatiosRoundUp) {
  // Genuinely fractional ratios still cover the duration: ceil, not round.
  EXPECT_EQ(World::step_count_for(1.05, 0.5), 3);
  EXPECT_EQ(World::step_count_for(0.25, 0.1), 3);
  EXPECT_EQ(World::step_count_for(10.0, 3.0), 4);
}

TEST(TimeGrid, DegenerateInputsYieldZeroSteps) {
  EXPECT_EQ(World::step_count_for(0.0, 0.1), 0);
  EXPECT_EQ(World::step_count_for(-5.0, 0.1), 0);
  EXPECT_EQ(World::step_count_for(10.0, 0.0), 0);
  EXPECT_EQ(World::step_count_for(10.0, -0.1), 0);
}

TEST(TimeGrid, PropertySweepOverAwkwardPairs) {
  // For every dt in a bank of awkward binary values and every integer step
  // count k, step_count_for(k * dt, dt) must return exactly k — the
  // round-trip property the tolerance exists for. (k * dt is computed in
  // double, so this is precisely the caller's situation: a duration that
  // SHOULD be k steps but whose quotient wobbles at the last bit.)
  const double dts[] = {0.1,  0.2,  0.3,  0.05, 0.025, 0.7,
                        1.0 / 3.0, 0.9, 1.5,  2.5,  0.001};
  for (const double dt : dts) {
    for (const std::int64_t k :
         {std::int64_t{1}, std::int64_t{2}, std::int64_t{3}, std::int64_t{7},
          std::int64_t{10}, std::int64_t{100}, std::int64_t{999},
          std::int64_t{6000}, std::int64_t{86400}, std::int64_t{1000000}}) {
      const double duration = static_cast<double>(k) * dt;
      EXPECT_EQ(World::step_count_for(duration, dt), k)
          << "dt=" << dt << " k=" << k;
    }
  }
}

TEST(TimeGrid, NowIsDerivedFromStepIndexBitwise) {
  WorldConfig config = test_world_config();
  World world(config);
  world.add_node(pinned({0.0, 0.0}), std::make_unique<RecordingRouter>());
  double prev = -1.0;
  for (int i = 1; i <= 1000; ++i) {
    world.step();
    EXPECT_EQ(world.step_count(), i);
    // Bitwise: now() is i * dt by construction, not an accumulated sum.
    EXPECT_EQ(world.now(), static_cast<double>(i) * config.step_dt);
    EXPECT_GT(world.now(), prev);
    prev = world.now();
  }
}

TEST(TimeGrid, RunLandsExactlyOnTheGrid) {
  WorldConfig config = test_world_config();
  World world(config);
  world.add_node(pinned({0.0, 0.0}), std::make_unique<RecordingRouter>());
  world.run(600.0);
  EXPECT_EQ(world.step_count(), 6000);
  EXPECT_EQ(world.now(), 6000.0 * config.step_dt);
  // Continuing with a second run() stays on the same grid.
  world.run(0.5);
  EXPECT_EQ(world.step_count(), 6005);
  EXPECT_EQ(world.now(), 6005.0 * config.step_dt);
}

/// Counts on_tick callbacks, which World emits once per TTL sweep.
class TickCountingRouter : public RecordingRouter {
 public:
  void on_tick(double now) override { tick_times.push_back(now); }
  void reset() override { tick_times.clear(); }
  std::vector<double> tick_times;
};

TEST(TimeGrid, SweepFiresOnTheBoundaryStepNotAfterIt) {
  WorldConfig config = test_world_config();
  config.ttl_sweep_interval = 1.0;  // boundary every 10 steps at dt = 0.1
  World world(config);
  auto router = std::make_unique<TickCountingRouter>();
  TickCountingRouter* r = router.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router));

  for (int i = 0; i < 9; ++i) world.step();
  EXPECT_TRUE(r->tick_times.empty());  // t = 0.9: not yet
  world.step();                        // step 10, t = 1.0 exactly
  ASSERT_EQ(r->tick_times.size(), 1u)
      << "sweep must fire at step 10 (t = 1.0), not drift to step 11";
  EXPECT_EQ(r->tick_times[0], 1.0);

  // Long haul: every boundary hit exactly once, at its exact grid time.
  for (int i = 10; i < 1000; ++i) world.step();
  ASSERT_EQ(r->tick_times.size(), 100u);
  for (std::size_t s = 0; s < r->tick_times.size(); ++s) {
    EXPECT_EQ(r->tick_times[s], static_cast<double>(s + 1) * 1.0);
  }
}

TEST(TimeGrid, SweepCountMatchesAcrossReseed) {
  // sweeps_done_ is per-run state: a reseeded world must fire the same
  // sweep schedule as a fresh one.
  WorldConfig config = test_world_config();
  config.ttl_sweep_interval = 1.0;
  World world(config);
  auto router = std::make_unique<TickCountingRouter>();
  TickCountingRouter* r = router.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router));
  world.run(10.0);
  ASSERT_EQ(r->tick_times.size(), 10u);
  world.reseed(2);
  EXPECT_TRUE(r->tick_times.empty());  // Router::reset() cleared the log
  world.run(10.0);
  EXPECT_EQ(r->tick_times.size(), 10u);
  EXPECT_EQ(r->tick_times.front(), 1.0);
  EXPECT_EQ(r->tick_times.back(), 10.0);
}

}  // namespace
}  // namespace dtn::sim
