#include "sim/world.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../test_support.hpp"

namespace dtn::sim {
namespace {

using test::RecordingRouter;
using test::make_message;
using test::pinned;
using test::scripted;
using test::test_world_config;

struct TwoNodeWorld {
  std::unique_ptr<World> world;
  RecordingRouter* r0 = nullptr;
  RecordingRouter* r1 = nullptr;
};

TwoNodeWorld make_two_pinned(double distance, WorldConfig config = test_world_config()) {
  TwoNodeWorld w;
  w.world = std::make_unique<World>(config);
  auto router0 = std::make_unique<RecordingRouter>();
  auto router1 = std::make_unique<RecordingRouter>();
  w.r0 = router0.get();
  w.r1 = router1.get();
  w.world->add_node(pinned({0.0, 0.0}), std::move(router0));
  w.world->add_node(pinned({distance, 0.0}), std::move(router1));
  return w;
}

TEST(World, ContactUpWhenWithinRange) {
  auto w = make_two_pinned(5.0);
  w.world->step();
  ASSERT_EQ(w.r0->contacts_up.size(), 1u);
  EXPECT_EQ(w.r0->contacts_up[0], 1);
  ASSERT_EQ(w.r1->contacts_up.size(), 1u);
  EXPECT_EQ(w.r1->contacts_up[0], 0);
  EXPECT_TRUE(w.world->in_contact(0, 1));
  EXPECT_EQ(w.world->contacts_of(0), (std::vector<NodeIdx>{1}));
  EXPECT_EQ(w.world->contact_events(), 1);
}

TEST(World, NoContactBeyondRange) {
  auto w = make_two_pinned(15.0);
  w.world->run(1.0);
  EXPECT_TRUE(w.r0->contacts_up.empty());
  EXPECT_FALSE(w.world->in_contact(0, 1));
}

TEST(World, ContactAtExactRangeBoundary) {
  auto w = make_two_pinned(10.0);  // exactly the radio range: in contact
  w.world->step();
  EXPECT_TRUE(w.world->in_contact(0, 1));
}

TEST(World, ContactDownWhenNodesSeparate) {
  WorldConfig config = test_world_config();
  World world(config);
  auto router0 = std::make_unique<RecordingRouter>();
  auto router1 = std::make_unique<RecordingRouter>();
  RecordingRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(scripted({{0.0, {5.0, 0.0}}, {5.0, {5.0, 0.0}}, {6.0, {100.0, 0.0}}}),
                 std::move(router1));
  world.run(10.0);
  ASSERT_EQ(r0->contacts_up.size(), 1u);
  ASSERT_EQ(r0->contacts_down.size(), 1u);
  EXPECT_EQ(r0->contacts_down[0], 1);
  EXPECT_FALSE(world.in_contact(0, 1));
}

TEST(World, MessageInjectionStoresAtSource) {
  auto w = make_two_pinned(5.0);
  w.world->inject_message(make_message(0, 0, 1));
  EXPECT_TRUE(w.world->buffer_of(0).has(0));
  EXPECT_EQ(w.r0->created, (std::vector<MsgId>{0}));
  EXPECT_EQ(w.world->metrics().created(), 1);
}

TEST(World, TransferDeliversToDestination) {
  auto w = make_two_pinned(5.0);
  w.world->step();  // contact up
  w.world->inject_message(make_message(0, 0, 1));
  ASSERT_TRUE(w.r0->send_copy(1, 0, 1, 0));
  // 25 KB at 2 Mbps = 25600 / 25000 bytes-per-step -> 2 steps.
  w.world->step();
  EXPECT_EQ(w.world->metrics().delivered(), 0);
  w.world->step();
  EXPECT_EQ(w.world->metrics().delivered(), 1);
  EXPECT_EQ(w.world->metrics().relayed(), 1);
  EXPECT_NEAR(w.world->metrics().latency_mean(), 0.3, 1e-9);
  ASSERT_EQ(w.r0->successes.size(), 1u);
  EXPECT_TRUE(w.r0->successes[0].delivered);
  EXPECT_EQ(w.r0->delivered_ids, (std::vector<MsgId>{0}));
  EXPECT_EQ(w.r1->delivered_ids, (std::vector<MsgId>{0}));
  // Sender copy removed after delivery; destination does not store.
  EXPECT_FALSE(w.world->buffer_of(0).has(0));
  EXPECT_FALSE(w.world->buffer_of(1).has(0));
}

TEST(World, DuplicateArrivalMergesReplicas) {
  WorldConfig config = test_world_config();
  World world(config);
  auto router0 = std::make_unique<RecordingRouter>(8);
  RecordingRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(pinned({5.0, 0.0}), std::make_unique<RecordingRouter>());
  world.add_node(pinned({2000.0, 0.0}), std::make_unique<RecordingRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 2));
  ASSERT_TRUE(r0->send_copy(1, 0, 2, 2));
  world.run(1.0);  // first copy lands: peer holds 2 replicas
  ASSERT_TRUE(world.buffer_of(1).has(0));
  EXPECT_EQ(world.buffer_of(1).find(0)->replicas, 2);
  // Second hand-over of 3 more replicas merges into the existing copy.
  ASSERT_TRUE(r0->send_copy(1, 0, 3, 3));
  world.run(1.0);
  EXPECT_EQ(world.buffer_of(1).find(0)->replicas, 5);
  EXPECT_EQ(world.buffer_of(0).find(0)->replicas, 3);  // 8 - 2 - 3
}

TEST(World, ThreeNodeRelayChain) {
  WorldConfig config = test_world_config();
  World world(config);
  auto router0 = std::make_unique<RecordingRouter>(4);
  auto router1 = std::make_unique<RecordingRouter>();
  auto router2 = std::make_unique<RecordingRouter>();
  RecordingRouter* r0 = router0.get();
  RecordingRouter* r1 = router1.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(pinned({5.0, 0.0}), std::move(router1));
  world.add_node(pinned({1000.0, 0.0}), std::move(router2));  // unreachable dst
  world.step();
  world.inject_message(make_message(0, 0, 2));
  ASSERT_TRUE(r0->send_copy(1, 0, 2, 2));  // hand 2 of 4 replicas to relay
  world.step();
  world.step();
  // Receiver stored the copy with 2 replicas; sender kept 2.
  ASSERT_TRUE(world.buffer_of(1).has(0));
  EXPECT_EQ(world.buffer_of(1).find(0)->replicas, 2);
  EXPECT_EQ(world.buffer_of(1).find(0)->hop_count, 1);
  ASSERT_TRUE(world.buffer_of(0).has(0));
  EXPECT_EQ(world.buffer_of(0).find(0)->replicas, 2);
  ASSERT_EQ(r1->received.size(), 1u);
  EXPECT_EQ(r1->received[0].from, 0);
  EXPECT_EQ(world.metrics().delivered(), 0);
}

TEST(World, ForwardRemovesSenderCopy) {
  auto w = make_two_pinned(5.0);
  // Third node as destination, out of range.
  // (re-build world with 3 nodes)
  WorldConfig config = test_world_config();
  World world(config);
  auto router0 = std::make_unique<RecordingRouter>();
  auto router1 = std::make_unique<RecordingRouter>();
  RecordingRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(pinned({5.0, 0.0}), std::move(router1));
  world.add_node(pinned({1000.0, 0.0}), std::make_unique<RecordingRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 2));
  ASSERT_TRUE(r0->send_copy(1, 0, 1, 1));  // forward single copy
  world.step();
  world.step();
  EXPECT_FALSE(world.buffer_of(0).has(0));
  EXPECT_TRUE(world.buffer_of(1).has(0));
}

TEST(World, TransferRefusals) {
  auto w = make_two_pinned(5.0);
  w.world->inject_message(make_message(0, 0, 1));
  // Not in contact yet (no step taken).
  EXPECT_FALSE(w.r0->send_copy(1, 0, 1, 0));
  w.world->step();
  EXPECT_FALSE(w.r0->send_copy(1, 99, 1, 0));  // unknown message
  EXPECT_FALSE(w.r0->send_copy(0, 0, 1, 0));   // self
  EXPECT_FALSE(w.r0->send_copy(1, 0, 0, 0));   // zero replicas
  EXPECT_FALSE(w.r0->send_copy(1, 0, 1, 5));   // deduct exceeds held replicas
  EXPECT_TRUE(w.r0->send_copy(1, 0, 1, 0));
  EXPECT_FALSE(w.r0->send_copy(1, 0, 1, 0));   // duplicate on same connection
}

TEST(World, PeerHasSeesQueuedTransfers) {
  auto w = make_two_pinned(5.0);
  w.world->step();
  w.world->inject_message(make_message(0, 0, 1));
  w.world->inject_message(make_message(1, 0, 1));
  EXPECT_FALSE(w.world->peer_has(1, 1));
  // Queue message 1 toward peer: peer_has must now report it.
  ASSERT_TRUE(w.r0->send_copy(1, 1, 1, 0));
  EXPECT_TRUE(w.world->peer_has(1, 1));
}

TEST(World, AbortOnContactBreak) {
  WorldConfig config = test_world_config();
  config.bitrate_bps = 1000.0;  // 25 KB would take ~205 s
  World world(config);
  auto router0 = std::make_unique<RecordingRouter>();
  RecordingRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(scripted({{0.0, {5.0, 0.0}}, {2.0, {5.0, 0.0}}, {3.0, {500.0, 0.0}}}),
                 std::make_unique<RecordingRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 1));
  ASSERT_TRUE(r0->send_copy(1, 0, 1, 0));
  world.run(5.0);
  EXPECT_EQ(world.metrics().transfers_aborted(), 1);
  EXPECT_EQ(world.metrics().delivered(), 0);
  EXPECT_TRUE(world.buffer_of(0).has(0));  // sender keeps its copy
}

TEST(World, HalfDuplexSerializesTransfers) {
  auto w = make_two_pinned(5.0);
  w.world->step();
  w.world->inject_message(make_message(0, 0, 1));
  w.world->inject_message(make_message(1, 0, 1));
  ASSERT_TRUE(w.r0->send_copy(1, 0, 1, 0));
  ASSERT_TRUE(w.r0->send_copy(1, 1, 1, 0));
  // 25 KB = 25600 B; 25000 B/step at 2 Mbps. Serialized on one half-duplex
  // link: msg 1 completes during step 2, msg 2 during step 3 (the leftover
  // step-2 budget flows to it).
  w.world->step();
  EXPECT_EQ(w.world->metrics().delivered(), 0);
  w.world->step();
  EXPECT_EQ(w.world->metrics().delivered(), 1);
  w.world->step();
  EXPECT_EQ(w.world->metrics().delivered(), 2);
}

TEST(World, TtlExpiryRemovesCopies) {
  auto w = make_two_pinned(50.0);  // never in contact
  Message m = make_message(0, 0, 1, 0.0, 20.0);
  w.world->inject_message(m);
  EXPECT_TRUE(w.world->buffer_of(0).has(0));
  w.world->run(35.0);  // sweep interval 10 s: expiry processed by t<=30
  EXPECT_FALSE(w.world->buffer_of(0).has(0));
  EXPECT_GE(w.world->metrics().expired(), 1);
}

TEST(World, LateDeliveryDoesNotCount) {
  WorldConfig config = test_world_config();
  config.ttl_sweep_interval = 1e9;  // disable sweeps; test delivery-time check
  World world(config);
  auto router0 = std::make_unique<RecordingRouter>();
  RecordingRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(pinned({5.0, 0.0}), std::make_unique<RecordingRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 1, 0.0, /*ttl=*/0.15));
  ASSERT_TRUE(r0->send_copy(1, 0, 1, 0));
  world.run(1.0);  // completes at t=0.3 > expiry 0.15
  EXPECT_EQ(world.metrics().delivered(), 0);
}

TEST(World, BufferOverflowEvictsOldest) {
  WorldConfig config = test_world_config();
  config.buffer_bytes = 60 * 1024;  // fits two 25 KB messages
  World world(config);
  world.add_node(pinned({0.0, 0.0}), std::make_unique<RecordingRouter>());
  world.add_node(pinned({500.0, 0.0}), std::make_unique<RecordingRouter>());
  world.inject_message(make_message(0, 0, 1));
  world.inject_message(make_message(1, 0, 1));
  world.inject_message(make_message(2, 0, 1));  // evicts message 0
  EXPECT_FALSE(world.buffer_of(0).has(0));
  EXPECT_TRUE(world.buffer_of(0).has(1));
  EXPECT_TRUE(world.buffer_of(0).has(2));
  EXPECT_EQ(world.metrics().dropped(), 1);
}

TEST(World, OversizedMessageRejected) {
  WorldConfig config = test_world_config();
  config.buffer_bytes = 10 * 1024;
  World world(config);
  world.add_node(pinned({0.0, 0.0}), std::make_unique<RecordingRouter>());
  world.add_node(pinned({500.0, 0.0}), std::make_unique<RecordingRouter>());
  world.inject_message(make_message(0, 0, 1));  // 25 KB > 10 KB capacity
  EXPECT_FALSE(world.buffer_of(0).has(0));
  EXPECT_EQ(world.metrics().dropped(), 1);
  EXPECT_EQ(world.metrics().created(), 1);  // still counts as generated
}

TEST(World, TrafficGeneratorCreatesMessages) {
  WorldConfig config = test_world_config();
  World world(config);
  for (int i = 0; i < 4; ++i) {
    world.add_node(pinned({i * 500.0, 0.0}), std::make_unique<RecordingRouter>());
  }
  TrafficParams traffic;
  traffic.interval_min = 10.0;
  traffic.interval_max = 10.0;
  world.set_traffic(traffic);
  world.run(100.0);
  // Creations at t = 10, 20, ... — 9 or 10 depending on the boundary step.
  EXPECT_GE(world.metrics().created(), 9);
  EXPECT_LE(world.metrics().created(), 10);
}

TEST(World, QuotaConservedAcrossSplit) {
  WorldConfig config = test_world_config();
  World world(config);
  auto router0 = std::make_unique<RecordingRouter>(10);
  RecordingRouter* r0 = router0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(router0));
  world.add_node(pinned({5.0, 0.0}), std::make_unique<RecordingRouter>());
  world.add_node(pinned({2000.0, 0.0}), std::make_unique<RecordingRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 2));
  ASSERT_TRUE(r0->send_copy(1, 0, 4, 4));
  world.run(1.0);
  const int total = world.buffer_of(0).find(0)->replicas +
                    world.buffer_of(1).find(0)->replicas;
  EXPECT_EQ(total, 10);
}

}  // namespace
}  // namespace dtn::sim
