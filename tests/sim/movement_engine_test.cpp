// SoA movement kernel vs the legacy per-object models: bit-identical
// trajectories. The MovementEngine promises the exact arithmetic and the
// exact RNG stream consumption of RandomWaypoint / CommunityMovement /
// BusMovement (mobility/movement_engine.hpp header contract) — these tests
// drive both paths from the same derived stream, step for step, and
// compare positions with exact double equality. Any reordering of draws,
// refactoring of the step arithmetic, or segment-cache bug in
// point_at_hinted shows up as a first-divergence step index.
#include "mobility/movement_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "geo/polyline.hpp"
#include "mobility/bus_movement.hpp"
#include "mobility/community_movement.hpp"
#include "mobility/random_waypoint.hpp"
#include "util/rng.hpp"

namespace dtn::mobility {
namespace {

constexpr double kDt = 0.1;

util::Pcg32 stream(std::uint64_t node) {
  return util::derive_stream(12345, node, util::StreamPurpose::kMovement);
}

/// Steps `model` and the engine's node 0 in lockstep and requires exactly
/// equal positions at every step.
void expect_lockstep(MovementEngine& engine, MovementModel& model, int steps) {
  ASSERT_EQ(engine.positions().at(0), model.position()) << "diverged at init";
  double t = 0.0;
  for (int i = 0; i < steps; ++i) {
    engine.step_all(t, kDt);
    model.step(t, kDt);
    t += kDt;
    const geo::Vec2 got = engine.positions()[0];
    const geo::Vec2 want = model.position();
    ASSERT_EQ(got.x, want.x) << "x diverged at step " << i;
    ASSERT_EQ(got.y, want.y) << "y diverged at step " << i;
  }
}

TEST(MovementEngine, RandomWaypointLaneMatchesLegacyModelExactly) {
  RandomWaypointParams p;
  p.world_max = {400.0, 300.0};
  p.speed_min = 2.0;
  p.speed_max = 14.0;
  p.pause_min = 1.0;
  p.pause_max = 20.0;
  MovementEngine engine;
  ASSERT_EQ(engine.add_waypoint(p), 0);
  engine.init_node(0, stream(0), 0.0);
  RandomWaypoint model(p);
  model.init(stream(0), 0.0);
  // Long enough to cross hundreds of waypoint events.
  expect_lockstep(engine, model, 20000);
}

TEST(MovementEngine, CommunityLaneMatchesLegacyModelExactly) {
  CommunityMovementParams p;
  p.world_max = {2000.0, 2000.0};
  p.home_min = {500.0, 0.0};
  p.home_max = {1000.0, 2000.0};
  p.home_prob = 0.85;
  MovementEngine engine;
  ASSERT_EQ(engine.add_community(p), 0);
  engine.init_node(0, stream(3), 0.0);
  CommunityMovement model(p);
  model.init(stream(3), 0.0);
  expect_lockstep(engine, model, 20000);
}

TEST(MovementEngine, CommunityDegenerateHomeProbConsumesNoBernoulliDraw) {
  // bernoulli(p) skips the stream draw for p <= 0 and p >= 1; the lane's
  // batched block must match that draw count exactly.
  for (const double prob : {0.0, 1.0}) {
    CommunityMovementParams p;
    p.home_prob = prob;
    p.home_min = {100.0, 100.0};
    p.home_max = {900.0, 900.0};
    MovementEngine engine;
    ASSERT_EQ(engine.add_community(p), 0);
    engine.init_node(0, stream(5), 0.0);
    CommunityMovement model(p);
    model.init(stream(5), 0.0);
    expect_lockstep(engine, model, 5000);
  }
}

std::shared_ptr<const geo::Polyline> loop_route() {
  std::vector<geo::Vec2> pts{{0.0, 0.0},   {700.0, 40.0}, {900.0, 500.0},
                             {400.0, 800.0}, {-100.0, 450.0}};
  return std::make_shared<const geo::Polyline>(pts, /*closed=*/true);
}

TEST(MovementEngine, BusLaneMatchesLegacyModelExactly) {
  const auto route = loop_route();
  BusParams p;  // paper speeds, 600 m stops
  p.stop_spacing = 321.0;  // not a divisor of the loop: stops precess
  MovementEngine engine;
  ASSERT_EQ(engine.add_bus(route, p), 0);
  engine.init_node(0, stream(7), 0.0);
  BusMovement model(route, p);
  model.init(stream(7), 0.0);
  // Many loop wraps: exercises the point_at_hinted wrap fallback.
  expect_lockstep(engine, model, 30000);
}

TEST(MovementEngine, MixedLanesKeepPerNodeStreamsIndependent) {
  // One node per lane kind; each engine node must reproduce its own model
  // regardless of the others stepping in the same step_all call.
  RandomWaypointParams rw;
  rw.world_max = {300.0, 300.0};
  CommunityMovementParams cm;
  cm.home_max = {200.0, 200.0};
  const auto route = loop_route();
  BusParams bus;

  MovementEngine engine;
  ASSERT_EQ(engine.add_bus(route, bus), 0);
  ASSERT_EQ(engine.add_waypoint(rw), 1);
  ASSERT_EQ(engine.add_community(cm), 2);
  for (int v = 0; v < 3; ++v) engine.init_node(v, stream(static_cast<std::uint64_t>(v)), 0.0);

  BusMovement bus_model(route, bus);
  bus_model.init(stream(0), 0.0);
  RandomWaypoint rw_model(rw);
  rw_model.init(stream(1), 0.0);
  CommunityMovement cm_model(cm);
  cm_model.init(stream(2), 0.0);

  double t = 0.0;
  for (int i = 0; i < 8000; ++i) {
    engine.step_all(t, kDt);
    bus_model.step(t, kDt);
    rw_model.step(t, kDt);
    cm_model.step(t, kDt);
    t += kDt;
    ASSERT_EQ(engine.positions()[0], bus_model.position()) << "bus step " << i;
    ASSERT_EQ(engine.positions()[1], rw_model.position()) << "waypoint step " << i;
    ASSERT_EQ(engine.positions()[2], cm_model.position()) << "community step " << i;
  }
}

TEST(MovementEngine, CustomLaneStepsArbitraryModels) {
  MovementEngine engine;
  ASSERT_EQ(engine.add_custom(std::make_unique<Stationary>(geo::Vec2{3.0, 4.0})), 0);
  engine.init_node(0, stream(0), 0.0);
  engine.step_all(0.0, kDt);
  EXPECT_EQ(engine.positions()[0], (geo::Vec2{3.0, 4.0}));
}

TEST(MovementEngine, AddSniffsKnownModelTypesIntoLanes) {
  // add(model) must route known types into the SoA lanes — verified
  // behaviorally: the engine's trajectory equals the model's.
  RandomWaypointParams p;
  p.world_max = {250.0, 250.0};
  MovementEngine engine;
  ASSERT_EQ(engine.add(std::make_unique<RandomWaypoint>(p)), 0);
  engine.init_node(0, stream(9), 0.0);
  RandomWaypoint model(p);
  model.init(stream(9), 0.0);
  expect_lockstep(engine, model, 5000);
}

TEST(MovementEngine, ClearRetainsLanesForReuse) {
  RandomWaypointParams p;
  p.world_max = {100.0, 100.0};
  MovementEngine engine;
  engine.add_waypoint(p);
  engine.init_node(0, stream(1), 0.0);
  engine.step_all(0.0, kDt);
  engine.clear();
  EXPECT_EQ(engine.size(), 0u);
  // Re-register and verify the trajectory is that of a fresh engine.
  ASSERT_EQ(engine.add_waypoint(p), 0);
  engine.init_node(0, stream(2), 0.0);
  RandomWaypoint model(p);
  model.init(stream(2), 0.0);
  expect_lockstep(engine, model, 3000);
}

TEST(MovementEngine, ReinitRestartsTrajectoryInPlace) {
  // init_node() twice == World::reseed semantics: second trajectory must
  // equal a fresh model under the second stream.
  const auto route = loop_route();
  BusParams p;
  MovementEngine engine;
  engine.add_bus(route, p);
  engine.init_node(0, stream(1), 0.0);
  for (int i = 0; i < 500; ++i) engine.step_all(i * kDt, kDt);
  engine.init_node(0, stream(2), 0.0);
  BusMovement model(route, p);
  model.init(stream(2), 0.0);
  expect_lockstep(engine, model, 5000);
}

}  // namespace
}  // namespace dtn::mobility
