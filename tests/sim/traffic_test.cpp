#include "sim/traffic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace dtn::sim {
namespace {

TrafficParams params(double lo = 25.0, double hi = 35.0) {
  TrafficParams p;
  p.interval_min = lo;
  p.interval_max = hi;
  p.ttl = 1200.0;
  p.size_bytes = 25 * 1024;
  return p;
}

TEST(Traffic, IntervalsWithinBounds) {
  TrafficGenerator gen(params(), util::Pcg32(1, 1), 10);
  double prev = 0.0;
  for (MsgId id = 0; id < 200; ++id) {
    const double t = gen.next_time();
    EXPECT_GE(t - prev, 25.0 - 1e-9);
    EXPECT_LE(t - prev, 35.0 + 1e-9);
    const Message m = gen.pop(id);
    EXPECT_DOUBLE_EQ(m.created, t);
    prev = t;
  }
}

TEST(Traffic, SrcAndDstDistinctAndInRange) {
  TrafficGenerator gen(params(), util::Pcg32(2, 2), 7);
  for (MsgId id = 0; id < 500; ++id) {
    const Message m = gen.pop(id);
    EXPECT_NE(m.src, m.dst);
    EXPECT_GE(m.src, 0);
    EXPECT_LT(m.src, 7);
    EXPECT_GE(m.dst, 0);
    EXPECT_LT(m.dst, 7);
  }
}

TEST(Traffic, AllPairsEventuallyDrawn) {
  TrafficGenerator gen(params(), util::Pcg32(3, 3), 4);
  std::set<std::pair<NodeIdx, NodeIdx>> seen;
  for (MsgId id = 0; id < 2000; ++id) {
    const Message m = gen.pop(id);
    seen.insert({m.src, m.dst});
  }
  EXPECT_EQ(seen.size(), 12u);  // 4 * 3 ordered pairs
}

TEST(Traffic, StopsAtStopTime) {
  TrafficParams p = params();
  p.stop = 100.0;
  TrafficGenerator gen(p, util::Pcg32(4, 4), 10);
  int generated = 0;
  while (!std::isinf(gen.next_time())) {
    EXPECT_LE(gen.next_time(), 100.0);
    gen.pop(generated++);
  }
  EXPECT_GT(generated, 0);
  EXPECT_LE(generated, 4);  // at most floor(100 / 25) messages
}

TEST(Traffic, StartDelaysFirstMessage) {
  TrafficParams p = params();
  p.start = 500.0;
  TrafficGenerator gen(p, util::Pcg32(5, 5), 10);
  EXPECT_GE(gen.next_time(), 525.0 - 1e-9);
}

TEST(Traffic, FewerThanTwoNodesGeneratesNothing) {
  TrafficGenerator gen(params(), util::Pcg32(6, 6), 1);
  EXPECT_TRUE(std::isinf(gen.next_time()));
}

TEST(Traffic, MessageCarriesConfiguredSizeAndTtl) {
  TrafficParams p = params();
  p.size_bytes = 10 * 1024;
  p.ttl = 600.0;
  TrafficGenerator gen(p, util::Pcg32(7, 7), 5);
  const Message m = gen.pop(0);
  EXPECT_EQ(m.size_bytes, 10 * 1024);
  EXPECT_DOUBLE_EQ(m.ttl, 600.0);
}

TEST(Traffic, DeterministicForSameStream) {
  TrafficGenerator a(params(), util::Pcg32(8, 8), 20);
  TrafficGenerator b(params(), util::Pcg32(8, 8), 20);
  for (MsgId id = 0; id < 100; ++id) {
    const Message ma = a.pop(id);
    const Message mb = b.pop(id);
    EXPECT_DOUBLE_EQ(ma.created, mb.created);
    EXPECT_EQ(ma.src, mb.src);
    EXPECT_EQ(ma.dst, mb.dst);
  }
}

}  // namespace
}  // namespace dtn::sim
