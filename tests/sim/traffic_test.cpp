#include "sim/traffic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

namespace dtn::sim {
namespace {

TrafficParams params(double lo = 25.0, double hi = 35.0) {
  TrafficParams p;
  p.interval_min = lo;
  p.interval_max = hi;
  p.ttl = 1200.0;
  p.size_bytes = 25 * 1024;
  return p;
}

TrafficMatrixEntry entry(NodeIdx src_first, NodeIdx src_count, NodeIdx dst_first,
                         NodeIdx dst_count, double lo = 25.0, double hi = 35.0,
                         double weight = 1.0) {
  TrafficMatrixEntry e;
  e.src_first = src_first;
  e.src_count = src_count;
  e.dst_first = dst_first;
  e.dst_count = dst_count;
  e.interval_min = lo;
  e.interval_max = hi;
  e.weight = weight;
  return e;
}

TEST(Traffic, IntervalsWithinBounds) {
  TrafficGenerator gen(params(), 1, 10);
  double prev = 0.0;
  for (MsgId id = 0; id < 200; ++id) {
    const double t = gen.next_time();
    EXPECT_GE(t - prev, 25.0 - 1e-9);
    EXPECT_LE(t - prev, 35.0 + 1e-9);
    const Message m = gen.pop(id);
    EXPECT_DOUBLE_EQ(m.created, t);
    prev = t;
  }
}

TEST(Traffic, SrcAndDstDistinctAndInRange) {
  TrafficGenerator gen(params(), 2, 7);
  for (MsgId id = 0; id < 500; ++id) {
    const Message m = gen.pop(id);
    EXPECT_NE(m.src, m.dst);
    EXPECT_GE(m.src, 0);
    EXPECT_LT(m.src, 7);
    EXPECT_GE(m.dst, 0);
    EXPECT_LT(m.dst, 7);
  }
}

TEST(Traffic, AllPairsEventuallyDrawn) {
  TrafficGenerator gen(params(), 3, 4);
  std::set<std::pair<NodeIdx, NodeIdx>> seen;
  for (MsgId id = 0; id < 2000; ++id) {
    const Message m = gen.pop(id);
    seen.insert({m.src, m.dst});
  }
  EXPECT_EQ(seen.size(), 12u);  // 4 * 3 ordered pairs
}

TEST(Traffic, StopsAtStopTime) {
  TrafficParams p = params();
  p.stop = 100.0;
  TrafficGenerator gen(p, 4, 10);
  int generated = 0;
  while (!std::isinf(gen.next_time())) {
    EXPECT_LE(gen.next_time(), 100.0);
    gen.pop(generated++);
  }
  EXPECT_GT(generated, 0);
  EXPECT_LE(generated, 4);  // at most floor(100 / 25) messages
}

// Pins the boundary contract documented in traffic.hpp: `stop` is
// INCLUSIVE. With a degenerate interval the schedule lands exactly on
// stop, and that message must still be generated.
TEST(Traffic, StopBoundaryIsInclusive) {
  TrafficParams p = params(10.0, 10.0);  // uniform(10, 10) == exactly 10
  p.stop = 100.0;
  TrafficGenerator gen(p, 4, 10);
  int generated = 0;
  double last = 0.0;
  while (!std::isinf(gen.next_time())) {
    last = gen.pop(generated++).created;
  }
  EXPECT_EQ(generated, 10);   // 10, 20, ..., 100
  EXPECT_EQ(last, 100.0);     // created == stop is generated, bit-exactly
}

TEST(Traffic, StartDelaysFirstMessage) {
  TrafficParams p = params();
  p.start = 500.0;
  TrafficGenerator gen(p, 5, 10);
  EXPECT_GE(gen.next_time(), 525.0 - 1e-9);
}

TEST(Traffic, FewerThanTwoNodesGeneratesNothing) {
  TrafficGenerator gen(params(), 6, 1);
  EXPECT_TRUE(std::isinf(gen.next_time()));
}

TEST(Traffic, MessageCarriesConfiguredSizeAndTtl) {
  TrafficParams p = params();
  p.size_bytes = 10 * 1024;
  p.ttl = 600.0;
  TrafficGenerator gen(p, 7, 5);
  const Message m = gen.pop(0);
  EXPECT_EQ(m.size_bytes, 10 * 1024);
  EXPECT_DOUBLE_EQ(m.ttl, 600.0);
}

TEST(Traffic, DeterministicForSameSeed) {
  TrafficGenerator a(params(), 8, 20);
  TrafficGenerator b(params(), 8, 20);
  for (MsgId id = 0; id < 100; ++id) {
    const Message ma = a.pop(id);
    const Message mb = b.pop(id);
    EXPECT_DOUBLE_EQ(ma.created, mb.created);
    EXPECT_EQ(ma.src, mb.src);
    EXPECT_EQ(ma.dst, mb.dst);
  }
}

// reset() must be indistinguishable from constructing fresh with the same
// arguments — this is the World's cross-seed reuse contract, exercised
// here with a non-trivial workload (matrix + on-off) and across a
// capacity change (2 entries -> 1).
TEST(Traffic, ResetMatchesFreshConstruction) {
  TrafficParams busy = params(5.0, 15.0);
  busy.profile = TrafficProfile::kOnOff;
  busy.on_s = 40.0;
  busy.off_s = 20.0;
  busy.matrix = {entry(0, 4, 4, 6, 5.0, 15.0), entry(4, 6, 0, 4, 8.0, 12.0, 2.0)};
  busy.stop = 5000.0;

  TrafficGenerator reused(busy, 42, 10);
  for (MsgId id = 0; id < 50; ++id) reused.pop(id);  // dirty the state

  TrafficParams plain = params();
  plain.stop = 4000.0;
  reused.reset(plain, 7, 12);
  TrafficGenerator fresh(plain, 7, 12);
  for (MsgId id = 0; id < 100; ++id) {
    ASSERT_DOUBLE_EQ(reused.next_time(), fresh.next_time());
    const Message mr = reused.pop(id);
    const Message mf = fresh.pop(id);
    ASSERT_DOUBLE_EQ(mr.created, mf.created);
    ASSERT_EQ(mr.src, mf.src);
    ASSERT_EQ(mr.dst, mf.dst);
    ASSERT_EQ(mr.size_bytes, mf.size_bytes);
  }
}

// An explicit single entry covering the whole network IS the implicit
// degenerate entry (both are stream index 0) — bit-identical schedules.
TEST(Traffic, ExplicitWholeNetworkEntryMatchesImplicit) {
  TrafficParams implicit = params();
  TrafficParams explicit_p = params();
  explicit_p.matrix = {entry(0, 9, 0, 9)};
  explicit_p.matrix[0].size_bytes = explicit_p.size_bytes;
  TrafficGenerator a(implicit, 11, 9);
  TrafficGenerator b(explicit_p, 11, 9);
  for (MsgId id = 0; id < 300; ++id) {
    const Message ma = a.pop(id);
    const Message mb = b.pop(id);
    ASSERT_EQ(ma.created, mb.created);  // bit-exact, not just close
    ASSERT_EQ(ma.src, mb.src);
    ASSERT_EQ(ma.dst, mb.dst);
  }
}

TEST(Traffic, MatrixRestrictsSrcAndDstRanges) {
  TrafficParams p = params();
  p.matrix = {entry(0, 3, 5, 4)};
  TrafficGenerator gen(p, 12, 10);
  for (MsgId id = 0; id < 500; ++id) {
    const Message m = gen.pop(id);
    EXPECT_GE(m.src, 0);
    EXPECT_LT(m.src, 3);
    EXPECT_GE(m.dst, 5);
    EXPECT_LT(m.dst, 9);
  }
}

TEST(Traffic, OverlappingRangesNeverDrawSrcEqualsDst) {
  TrafficParams p = params();
  p.matrix = {entry(2, 5, 0, 10)};  // dst range contains the src range
  TrafficGenerator gen(p, 13, 10);
  for (MsgId id = 0; id < 1000; ++id) {
    const Message m = gen.pop(id);
    EXPECT_NE(m.src, m.dst);
    EXPECT_GE(m.src, 2);
    EXPECT_LT(m.src, 7);
    EXPECT_GE(m.dst, 0);
    EXPECT_LT(m.dst, 10);
  }
}

TEST(Traffic, FixedDestinationInsideSrcRangeExcludesItselfFromSrc) {
  TrafficParams p = params();
  p.matrix = {entry(0, 4, 2, 1)};  // everyone -> node 2
  TrafficGenerator gen(p, 14, 4);
  std::set<NodeIdx> srcs;
  for (MsgId id = 0; id < 300; ++id) {
    const Message m = gen.pop(id);
    EXPECT_EQ(m.dst, 2);
    EXPECT_NE(m.src, 2);
    srcs.insert(m.src);
  }
  EXPECT_EQ(srcs, (std::set<NodeIdx>{0, 1, 3}));
}

TEST(Traffic, SingleSrcSingleDstSameNodeIsDead) {
  TrafficParams p = params();
  p.matrix = {entry(3, 1, 3, 1)};
  TrafficGenerator gen(p, 15, 10);
  EXPECT_TRUE(std::isinf(gen.next_time()));
}

// weight w divides drawn intervals by w, so a weight-3 entry delivers
// three times the messages of a weight-1 entry with the same interval.
TEST(Traffic, WeightScalesEntryRate) {
  TrafficParams p = params(10.0, 10.0);
  p.stop = 10000.0;
  p.matrix = {entry(0, 2, 2, 2, 10.0, 10.0, 1.0),
              entry(4, 2, 6, 2, 10.0, 10.0, 3.0)};
  TrafficGenerator gen(p, 16, 8);
  int slow = 0;
  int fast = 0;
  while (!std::isinf(gen.next_time())) {
    const Message m = gen.pop(slow + fast);
    (m.src < 2 ? slow : fast) += 1;
  }
  EXPECT_EQ(slow, 1000);        // 10000 / 10 (exact in binary)
  EXPECT_NEAR(fast, 3000, 1);   // 10000 / (10 / 3), +-1 for fp accumulation
}

// Two entries landing on the same timestamp pop in entry-index order —
// the deterministic tie-break the cross-thread bit-identity relies on.
TEST(Traffic, SimultaneousEntriesPopInIndexOrder) {
  TrafficParams p = params(10.0, 10.0);
  p.stop = 25.0;
  p.matrix = {entry(0, 2, 2, 2, 10.0, 10.0), entry(4, 2, 6, 2, 10.0, 10.0)};
  TrafficGenerator gen(p, 17, 8);
  const Message m0 = gen.pop(0);
  const Message m1 = gen.pop(1);
  const Message m2 = gen.pop(2);
  const Message m3 = gen.pop(3);
  EXPECT_EQ(m0.created, 10.0);
  EXPECT_LT(m0.src, 2);  // entry 0 first
  EXPECT_EQ(m1.created, 10.0);
  EXPECT_GE(m1.src, 4);  // then entry 1
  EXPECT_EQ(m2.created, 20.0);
  EXPECT_LT(m2.src, 2);
  EXPECT_EQ(m3.created, 20.0);
  EXPECT_GE(m3.src, 4);
}

// Entry streams are derived from (seed, entry index): appending a second
// entry must not perturb the first entry's schedule in any way.
TEST(Traffic, AppendingAnEntryDoesNotPerturbExistingStreams) {
  TrafficParams one = params();
  one.matrix = {entry(0, 2, 2, 2)};
  TrafficParams two = one;
  two.matrix.push_back(entry(4, 2, 6, 2, 3.0, 7.0));
  TrafficGenerator a(one, 18, 8);
  TrafficGenerator b(two, 18, 8);
  std::vector<Message> from_a;
  for (MsgId id = 0; id < 100; ++id) from_a.push_back(a.pop(id));
  std::vector<Message> from_b;
  for (MsgId id = 0; from_b.size() < 100; ++id) {
    const Message m = b.pop(id);
    if (m.src < 2) from_b.push_back(m);  // entry 0's range
  }
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(from_a[i].created, from_b[i].created);
    ASSERT_EQ(from_a[i].src, from_b[i].src);
    ASSERT_EQ(from_a[i].dst, from_b[i].dst);
  }
}

TEST(Traffic, OnOffGeneratesOnlyInsideOnWindows) {
  TrafficParams p = params(5.0, 15.0);
  p.profile = TrafficProfile::kOnOff;
  p.on_s = 100.0;
  p.off_s = 50.0;
  p.phase_s = 30.0;
  p.stop = 6000.0;
  TrafficGenerator gen(p, 19, 10);
  int generated = 0;
  while (!std::isinf(gen.next_time())) {
    const Message m = gen.pop(generated++);
    double local = std::fmod(m.created - p.phase_s, p.on_s + p.off_s);
    if (local < 0.0) local += p.on_s + p.off_s;
    EXPECT_LT(local, p.on_s + 1e-9) << "created " << m.created << " in off window";
  }
  EXPECT_GT(generated, 100);
}

TEST(Traffic, DiurnalConcentratesTrafficAtMidPeriod) {
  TrafficParams p = params(1.0, 1.0);
  p.profile = TrafficProfile::kDiurnal;
  p.period_s = 1000.0;
  p.stop = 10000.0;
  TrafficGenerator gen(p, 20, 10);
  int peak = 0;    // middle half of each period: intensity >= 0.5
  int trough = 0;  // outer half: intensity < 0.5
  while (!std::isinf(gen.next_time())) {
    const Message m = gen.pop(peak + trough);
    const double local = std::fmod(m.created, p.period_s);
    (local >= 250.0 && local < 750.0 ? peak : trough) += 1;
  }
  EXPECT_GT(peak + trough, 1000);
  EXPECT_GT(peak, 2 * trough);
}

TEST(Traffic, TraceReplaysVerbatimWithDefaults) {
  auto trace = std::make_shared<std::vector<TraceMessage>>();
  trace->push_back({5.0, 0, 1, 1000, 300.0});
  trace->push_back({7.5, 2, 3, 0, 0.0});  // size/ttl fall back to params
  TrafficParams p = params();
  p.profile = TrafficProfile::kTrace;
  p.trace = trace;
  TrafficGenerator gen(p, 21, 4);
  EXPECT_DOUBLE_EQ(gen.next_time(), 5.0);
  const Message m0 = gen.pop(0);
  EXPECT_DOUBLE_EQ(m0.created, 5.0);
  EXPECT_EQ(m0.src, 0);
  EXPECT_EQ(m0.dst, 1);
  EXPECT_EQ(m0.size_bytes, 1000);
  EXPECT_DOUBLE_EQ(m0.ttl, 300.0);
  const Message m1 = gen.pop(1);
  EXPECT_DOUBLE_EQ(m1.created, 7.5);
  EXPECT_EQ(m1.size_bytes, 25 * 1024);
  EXPECT_DOUBLE_EQ(m1.ttl, 1200.0);
  EXPECT_TRUE(std::isinf(gen.next_time()));
}

TEST(Traffic, TraceHonorsStartStopWindow) {
  auto trace = std::make_shared<std::vector<TraceMessage>>();
  for (const double t : {1.0, 5.0, 10.0, 15.0}) trace->push_back({t, 0, 1, 0, 0.0});
  TrafficParams p = params();
  p.profile = TrafficProfile::kTrace;
  p.trace = trace;
  p.start = 2.0;
  p.stop = 10.0;  // inclusive: the t == 10 entry is still replayed
  TrafficGenerator gen(p, 22, 4);
  EXPECT_DOUBLE_EQ(gen.pop(0).created, 5.0);
  EXPECT_DOUBLE_EQ(gen.pop(1).created, 10.0);
  EXPECT_TRUE(std::isinf(gen.next_time()));
}

}  // namespace
}  // namespace dtn::sim
