// Allocation-regression guard for the PR-won hot paths: the incremental
// contact layer (PR 1), the slab message store (PR 2), and the cross-run
// reuse + chunked-dispatch engine (PR 3).
// A replaced global operator new counts heap allocations inside tight
// measurement windows (no gtest machinery runs while counting):
//   - steady-state Buffer churn (insert/erase/evict/expire at a fixed
//     high-water count) must perform exactly zero allocations;
//   - a warmed-up traffic-free World::step loop must stay at ~0
//     allocations/step (residual: rare spatial-grid cell discovery);
//   - a warmed-up traffic-bearing epidemic workload with buffer pressure
//     must stay far below one allocation/step (residual: per-delivery
//     metrics bookkeeping and rare container growth);
//   - World::reseed() of a warmed world must perform exactly zero
//     allocations, and a whole reused-world seed (reseed + full re-run)
//     must stay at ~0 allocations/step;
//   - a ThreadPool::parallel_for dispatch on the warm shared pool must
//     perform zero allocations on the coordinating thread (no per-task
//     std::function, no futures, no queue nodes).
// If someone reintroduces a per-step vector return, a per-transfer hash
// node, a per-insert list node, a per-task heap closure, or a per-seed
// world rebuild, this test fails.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "mobility/random_waypoint.hpp"
#include "routing/epidemic.hpp"
#include "sim/buffer.hpp"
#include "sim/world.hpp"
#include "util/thread_pool.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
bool g_count_allocs = false;

}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs) g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dtn::sim {
namespace {

using test::make_message;

StoredMessage stored(MsgId id, double created, double ttl = 1200.0) {
  StoredMessage sm;
  sm.msg = make_message(id, 0, 1, created, ttl, 25);
  sm.received_at = created;
  return sm;
}

std::uint64_t counted(const std::function<void()>& body) {
  g_allocs.store(0);
  g_count_allocs = true;
  body();
  g_count_allocs = false;
  return g_allocs.load();
}

TEST(AllocRegression, BufferSteadyChurnIsAllocationFree) {
  Buffer buf(1 << 20);  // 40 x 25 KB high-water
  MsgId next = 0;
  double now = 0.0;
  // Warm to the high-water count so slab and index reach their final size.
  while (buf.fits(stored(next, now).msg)) buf.insert(stored(next++, now));
  std::vector<MsgId> scratch;
  scratch.reserve(64);
  // Steady-state churn: oldest-first eviction + insert + periodic expiry
  // sweeps + in-place updates, exactly zero heap traffic.
  const std::uint64_t allocs = counted([&] {
    for (int i = 0; i < 20000; ++i) {
      now += 0.5;
      buf.erase(buf.oldest());
      buf.insert(stored(next++, now, 50.0 + (i % 700)));
      buf.find(next - 1)->replicas += 1;
      if ((i & 15) == 0) {
        buf.expired_into(now, scratch);
        for (const MsgId id : scratch) buf.erase(id);
      }
    }
  });
  EXPECT_EQ(allocs, 0u) << "slab Buffer churn must not heap-allocate";
}

TEST(AllocRegression, ContactLayerStepLoopStaysAllocationFree) {
  WorldConfig config;
  config.seed = 9;
  World world(config);
  mobility::RandomWaypointParams move;
  move.world_min = {0.0, 0.0};
  const double side = std::sqrt(120.0 * 150);  // 120 m^2/node at n=150
  move.world_max = {side, side};
  move.speed_min = 2.0;
  move.speed_max = 14.0;
  for (int i = 0; i < 150; ++i) {
    world.add_node(std::make_unique<mobility::RandomWaypoint>(move),
                   std::make_unique<routing::EpidemicRouter>());
  }
  // Warm-up long enough for the roaming nodes to discover every grid cell.
  for (int i = 0; i < 4000; ++i) world.step();
  constexpr int kSteps = 1000;
  const std::uint64_t allocs = counted([&] {
    for (int i = 0; i < kSteps; ++i) world.step();
  });
  EXPECT_LT(static_cast<double>(allocs) / kSteps, 0.5)
      << "traffic-free step loop regressed to allocating";
}

TEST(AllocRegression, BufferPressureWorkloadStaysNearZeroAllocs) {
  WorldConfig config;
  config.seed = 17;
  config.buffer_bytes = 110 * 1024;  // 4 messages: constant forced drops
  World world(config);
  mobility::RandomWaypointParams move;
  move.world_min = {0.0, 0.0};
  const double side = std::sqrt(120.0 * 100);
  move.world_max = {side, side};
  move.speed_min = 2.0;
  move.speed_max = 14.0;
  for (int i = 0; i < 100; ++i) {
    world.add_node(std::make_unique<mobility::RandomWaypoint>(move),
                   std::make_unique<routing::EpidemicRouter>());
  }
  TrafficParams traffic;  // 25 KB packets
  traffic.interval_min = 2.0;  // fast enough to keep every buffer full
  traffic.interval_max = 4.0;
  world.set_traffic(traffic);
  for (int i = 0; i < 4000; ++i) world.step();
  ASSERT_GT(world.metrics().dropped(), 0) << "workload must exercise eviction";
  constexpr int kSteps = 2000;
  const std::uint64_t allocs = counted([&] {
    for (int i = 0; i < kSteps; ++i) world.step();
  });
  // Residual: per-delivery metrics map/accumulator inserts and rare vector
  // growth. The seed store allocated on every insert and every queued
  // transfer — orders of magnitude above this bound.
  EXPECT_LT(static_cast<double>(allocs) / kSteps, 0.5)
      << "traffic-bearing buffer path regressed to allocating";
}

TEST(AllocRegression, ReusedWorldSeedIsNearAllocationFree) {
  // A reseeded run must ride entirely on retained capacity: slab buffers,
  // grid cells, adjacency/connection pools, movement lanes, metrics
  // buckets, traffic generator — the campaign-sweep steady state.
  WorldConfig config;
  config.seed = 23;
  World world(config);
  mobility::RandomWaypointParams move;
  move.world_min = {0.0, 0.0};
  const double side = std::sqrt(120.0 * 120);
  move.world_max = {side, side};
  move.speed_min = 2.0;
  move.speed_max = 14.0;
  for (int i = 0; i < 120; ++i) {
    world.add_node(move, std::make_unique<routing::EpidemicRouter>());
  }
  TrafficParams traffic;
  traffic.interval_min = 2.0;
  traffic.interval_max = 4.0;
  world.set_traffic(traffic);
  // Warm seed: reach the allocation high-water mark (slabs, cells, maps),
  // then one throwaway reseed cycle — the first reuse may pay one-time
  // capacity growth (e.g. the connection free-list reaching pool size).
  for (int i = 0; i < 4000; ++i) world.step();
  world.reseed(24);
  for (int i = 0; i < 500; ++i) world.step();

  // A steady-state reseed must be exactly allocation-free.
  const std::uint64_t reseed_allocs = counted([&] { world.reseed(25); });
  EXPECT_EQ(reseed_allocs, 0u) << "World::reseed() must recycle, not allocate";

  // A full reused-world seed (the steps after the reseed) stays at ~0
  // allocs/step. Residual: first-delivery metrics nodes (the map was
  // cleared) and rare container growth past the previous high-water mark.
  constexpr int kSteps = 3000;
  const std::uint64_t run_allocs = counted([&] {
    for (int i = 0; i < kSteps; ++i) world.step();
  });
  EXPECT_LT(static_cast<double>(run_allocs) / kSteps, 0.5)
      << "reused-world seed regressed to allocating";
}

TEST(AllocRegression, MatrixWorkloadReseedIsAllocationFree) {
  // The multi-schedule generator (matrix entries + on-off profile) must
  // keep World::reseed()'s zero-allocation contract: params_ copy-assign
  // reuses vector capacity, schedules/heap resize to the same size.
  WorldConfig config;
  config.seed = 31;
  World world(config);
  mobility::RandomWaypointParams move;
  move.world_min = {0.0, 0.0};
  const double side = std::sqrt(120.0 * 60);
  move.world_max = {side, side};
  move.speed_min = 2.0;
  move.speed_max = 14.0;
  for (int i = 0; i < 60; ++i) {
    world.add_node(move, std::make_unique<routing::EpidemicRouter>());
  }
  TrafficParams traffic;
  traffic.interval_min = 2.0;
  traffic.interval_max = 4.0;
  traffic.profile = TrafficProfile::kOnOff;
  traffic.on_s = 60.0;
  traffic.off_s = 30.0;
  TrafficMatrixEntry flow;
  flow.src_count = 30;
  flow.dst_first = 30;
  flow.dst_count = 30;
  flow.interval_min = 2.0;
  flow.interval_max = 4.0;
  flow.weight = 2.0;
  TrafficMatrixEntry back = flow;
  back.src_first = 30;
  back.dst_first = 0;
  back.weight = 1.0;
  traffic.matrix = {flow, back};
  world.set_traffic(traffic);
  for (int i = 0; i < 2000; ++i) world.step();
  world.reseed(32);
  for (int i = 0; i < 500; ++i) world.step();

  const std::uint64_t reseed_allocs = counted([&] { world.reseed(33); });
  EXPECT_EQ(reseed_allocs, 0u)
      << "matrix-workload World::reseed() must recycle, not allocate";
}

TEST(AllocRegression, ParallelForDispatchIsAllocationFree) {
  // Chunked atomic-counter dispatch: one stack job, no per-task heap
  // closures/futures. Warm the shared pool first (thread creation), build
  // the std::function outside the window, then count a whole dispatch.
  auto& pool = util::ThreadPool::shared();
  std::atomic<std::uint64_t> sum{0};
  const std::function<void(std::size_t, std::size_t)> body =
      [&sum](std::size_t, std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      };
  pool.parallel_for(1000, 4, body);  // warm-up: workers exist afterwards
  sum.store(0);
  const std::uint64_t allocs = counted([&] { pool.parallel_for(1000, 4, body); });
  EXPECT_EQ(sum.load(), 1000ull * 999ull / 2ull);
  EXPECT_EQ(allocs, 0u) << "parallel_for dispatch must not heap-allocate";
}

}  // namespace
}  // namespace dtn::sim
