// Property/fuzz test for the slab Buffer: randomized churn (insert, erase,
// oldest-first eviction, expiry sweeps, slot recycling far past the
// high-water wraparound) with the structural invariants re-checked at every
// probe point:
//   - used() == sum of stored size_bytes, count() == live copies,
//   - iteration order == insertion (reception) order,
//   - index and slab agree in both directions (find/handle_of/contains),
//   - oldest()/newest() are the ends of the order chain,
//   - handles stay pinned to their message across unrelated erases and
//     inserts (including slab growth),
//   - the slab never grows past the high-water live count (recycling).
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "sim/buffer.hpp"
#include "util/rng.hpp"

namespace dtn::sim {
namespace {

using test::make_message;

struct ShadowEntry {
  MsgId id;
  std::int64_t size_bytes;
  int replicas;
  Buffer::Handle handle;
};

class BufferPropertyTest : public ::testing::Test {
 protected:
  static constexpr std::int64_t kCapacity = 200 * 1024;

  Buffer buf_{kCapacity};
  std::vector<ShadowEntry> shadow_;  // insertion order
  util::Pcg32 rng_{77, 5};
  MsgId next_id_ = 0;
  double now_ = 0.0;
  std::size_t high_water_ = 0;

  void check_invariants() {
    ASSERT_EQ(buf_.count(), shadow_.size());
    ASSERT_EQ(buf_.empty(), shadow_.empty());
    std::int64_t bytes = 0;
    for (const auto& e : shadow_) bytes += e.size_bytes;
    ASSERT_EQ(buf_.used(), bytes);
    ASSERT_LE(buf_.used(), kCapacity);
    ASSERT_EQ(buf_.free_bytes(), kCapacity - bytes);

    // Iteration order == insertion order; iterator handles == index handles.
    auto it = buf_.begin();
    for (const auto& e : shadow_) {
      ASSERT_NE(it, buf_.end());
      ASSERT_EQ(it->msg.id, e.id);
      ASSERT_EQ(it->replicas, e.replicas);
      ASSERT_EQ(it.handle(), e.handle);
      ++it;
    }
    ASSERT_EQ(it, buf_.end());

    // Handle-chain walk must visit the same sequence.
    Buffer::Handle h = buf_.front_handle();
    for (const auto& e : shadow_) {
      ASSERT_EQ(h, e.handle);
      ASSERT_EQ(buf_.get(h).msg.id, e.id);
      h = buf_.next_handle(h);
    }
    ASSERT_EQ(h, Buffer::kNoHandle);

    // Index <-> slab consistency, both directions.
    for (const auto& e : shadow_) {
      ASSERT_TRUE(buf_.contains(e.id));
      ASSERT_EQ(buf_.handle_of(e.id), e.handle);
      const StoredMessage* sm = buf_.find(e.id);
      ASSERT_NE(sm, nullptr);
      ASSERT_EQ(sm, &buf_.get(e.handle));
      ASSERT_EQ(sm->msg.id, e.id);
    }
    ASSERT_FALSE(buf_.contains(next_id_));      // never inserted
    ASSERT_EQ(buf_.find(next_id_ + 7), nullptr);
    ASSERT_EQ(buf_.handle_of(-2), Buffer::kNoHandle);

    ASSERT_EQ(buf_.oldest(),
              shadow_.empty() ? Buffer::kInvalidMsg : shadow_.front().id);
    ASSERT_EQ(buf_.newest(),
              shadow_.empty() ? Buffer::kInvalidMsg : shadow_.back().id);

    // Recycling: the slab never outgrows the high-water live count
    // (high_water_ is maintained by insert_one).
    ASSERT_LE(buf_.slot_capacity(), high_water_);
  }

  void insert_one() {
    StoredMessage sm;
    sm.msg = make_message(next_id_, 0, 1, now_, 10.0 + rng_.next_double() * 300.0,
                          1 + static_cast<std::int64_t>(rng_.next_u32() % 30));
    sm.replicas = 1 + static_cast<int>(rng_.next_u32() % 12);
    sm.received_at = now_;
    while (!buf_.fits(sm.msg) && !shadow_.empty()) erase_at(0);  // evict oldest
    if (!buf_.fits(sm.msg)) return;
    const MsgId id = next_id_++;
    const std::int64_t size = sm.msg.size_bytes;
    const int replicas = sm.replicas;
    buf_.insert(std::move(sm));
    shadow_.push_back({id, size, replicas, buf_.handle_of(id)});
    high_water_ = std::max(high_water_, shadow_.size());
  }

  void erase_at(std::size_t pos) {
    ASSERT_TRUE(buf_.erase(shadow_[pos].id));
    shadow_.erase(shadow_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
};

TEST_F(BufferPropertyTest, InvariantsHoldUnderRandomizedChurn) {
  for (int op = 0; op < 30000; ++op) {
    now_ += rng_.next_double();
    switch (rng_.next_u32() % 7) {
      case 0:
      case 1:
      case 2:
        insert_one();
        break;
      case 3: {  // erase a random live copy
        if (shadow_.empty()) break;
        erase_at(static_cast<std::size_t>(rng_.next_u32()) % shadow_.size());
        break;
      }
      case 4: {  // absent-id erase must be a no-op
        ASSERT_FALSE(buf_.erase(next_id_ + 50));
        break;
      }
      case 5: {  // expiry sweep
        std::vector<MsgId> expired;
        buf_.expired_into(now_, expired);
        for (const MsgId id : expired) {
          const auto at = std::find_if(shadow_.begin(), shadow_.end(),
                                       [&](const ShadowEntry& e) { return e.id == id; });
          ASSERT_NE(at, shadow_.end());
          erase_at(static_cast<std::size_t>(at - shadow_.begin()));
        }
        break;
      }
      case 6: {  // in-place mutation through the handle
        if (shadow_.empty()) break;
        auto& e = shadow_[static_cast<std::size_t>(rng_.next_u32()) % shadow_.size()];
        e.replicas += 1;
        buf_.get(e.handle).replicas += 1;
        break;
      }
    }
    if ((op & 31) == 0) {
      check_invariants();
      if (::testing::Test::HasFatalFailure()) FAIL() << "invariant broke at op " << op;
    }
  }
  check_invariants();
  // The churn must have recycled slots far past the wraparound point:
  // thousands of ids flowed through a slab of a few dozen slots.
  EXPECT_GT(next_id_, 10000);
  EXPECT_LE(buf_.slot_capacity(), 250u);
}

TEST_F(BufferPropertyTest, HandlesSurviveUnrelatedChurn) {
  // Pin one message, then churn hard enough to recycle every other slot
  // multiple times and to grow the slab (insert-driven reallocation): the
  // pinned handle must keep resolving to the same id with its payload
  // untouched, and erasing unrelated ids must never move it.
  insert_one();
  ASSERT_FALSE(shadow_.empty());
  const ShadowEntry pinned = shadow_.front();
  buf_.get(pinned.handle).hop_count = 42;
  for (int round = 0; round < 5000; ++round) {
    now_ += rng_.next_double();
    if (rng_.next_u32() % 2 == 0) {
      insert_one();
    } else if (shadow_.size() > 1) {
      // Erase any entry except the pinned one.
      const std::size_t pos =
          1 + static_cast<std::size_t>(rng_.next_u32()) % (shadow_.size() - 1);
      erase_at(pos);
    }
    // Keep the buffer from filling so oldest-first eviction (which would
    // legitimately remove the pinned entry) never triggers.
    while (buf_.used() > kCapacity / 2 && shadow_.size() > 1) {
      erase_at(shadow_.size() - 1);
    }
    ASSERT_EQ(buf_.handle_of(pinned.id), pinned.handle);
    ASSERT_EQ(buf_.get(pinned.handle).msg.id, pinned.id);
    ASSERT_EQ(buf_.get(pinned.handle).hop_count, 42);
    ASSERT_EQ(buf_.oldest(), pinned.id);  // still the front of the order
  }
  EXPECT_GT(next_id_, 1000);
}

}  // namespace
}  // namespace dtn::sim
