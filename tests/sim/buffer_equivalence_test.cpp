// Differential proof that the slab Buffer is observably identical to the
// seed's list+map store (same pattern as contact_layer_test's legacy vs
// incremental check):
//  1. a reference implementation — a verbatim re-creation of the seed's
//     std::list + unordered_map Buffer — lives inside this test and is
//     driven through the exact same randomized insert / erase / evict /
//     expire / mutate sequences as the production slab Buffer and as the
//     in-binary legacy_store mode, with the full observable state compared
//     after every operation;
//  2. full bus-scenario runs across all 12 protocols x 2 seeds, with
//     WorldConfig::legacy_buffer_path off vs on, must produce bit-identical
//     metrics — the store swap may not perturb a single simulation outcome.
#include <algorithm>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "harness/scenario.hpp"
#include "routing/factory.hpp"
#include "sim/buffer.hpp"
#include "util/rng.hpp"

namespace dtn::sim {
namespace {

using test::make_message;

/// The seed's Buffer, reproduced verbatim as the differential oracle.
class ReferenceBuffer {
 public:
  explicit ReferenceBuffer(std::int64_t capacity_bytes) : capacity_(capacity_bytes) {}

  [[nodiscard]] std::int64_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t count() const noexcept { return index_.size(); }
  [[nodiscard]] bool has(MsgId id) const { return index_.count(id) > 0; }
  [[nodiscard]] bool fits(const Message& m) const noexcept {
    return m.size_bytes <= capacity_ - used_;
  }
  [[nodiscard]] StoredMessage* find(MsgId id) {
    const auto it = index_.find(id);
    return it == index_.end() ? nullptr : &*it->second;
  }
  void insert(StoredMessage sm) {
    used_ += sm.msg.size_bytes;
    const MsgId id = sm.msg.id;
    store_.push_back(std::move(sm));
    index_.emplace(id, std::prev(store_.end()));
  }
  bool erase(MsgId id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    used_ -= it->second->msg.size_bytes;
    store_.erase(it->second);
    index_.erase(it);
    return true;
  }
  [[nodiscard]] MsgId oldest() const {
    return store_.empty() ? Buffer::kInvalidMsg : store_.front().msg.id;
  }
  [[nodiscard]] std::vector<MsgId> expired_ids(double t) const {
    std::vector<MsgId> out;
    for (const auto& sm : store_) {
      if (sm.msg.expired_at(t)) out.push_back(sm.msg.id);
    }
    return out;
  }
  [[nodiscard]] const std::list<StoredMessage>& messages() const noexcept {
    return store_;
  }

 private:
  std::int64_t capacity_;
  std::int64_t used_ = 0;
  std::list<StoredMessage> store_;
  std::unordered_map<MsgId, std::list<StoredMessage>::iterator> index_;
};

/// Full observable-state comparison: counters, byte accounting, membership,
/// insertion order, per-copy payload, oldest, and the expiry scan.
void expect_equivalent(const Buffer& buf, const ReferenceBuffer& ref, double now) {
  ASSERT_EQ(buf.count(), ref.count());
  ASSERT_EQ(buf.used(), ref.used());
  ASSERT_EQ(buf.oldest(), ref.oldest());
  auto it = buf.begin();
  for (const StoredMessage& expected : ref.messages()) {
    ASSERT_NE(it, buf.end());
    ASSERT_EQ(it->msg.id, expected.msg.id);
    ASSERT_EQ(it->msg.size_bytes, expected.msg.size_bytes);
    ASSERT_EQ(it->replicas, expected.replicas);
    ASSERT_EQ(it->hop_count, expected.hop_count);
    ASSERT_EQ(it->received_at, expected.received_at);
    ASSERT_TRUE(buf.contains(expected.msg.id));
    ++it;
  }
  ASSERT_EQ(it, buf.end());
  std::vector<MsgId> expired;
  buf.expired_into(now, expired);
  ASSERT_EQ(expired, ref.expired_ids(now));
}

StoredMessage random_stored(util::Pcg32& rng, MsgId id, double now) {
  StoredMessage sm;
  // Sizes 1-40 KB against a 256 KB capacity: a few dozen live messages,
  // constant slot recycling, frequent full-buffer evictions.
  sm.msg = make_message(id, 0, 1, now, 20.0 + rng.next_double() * 200.0,
                        1 + static_cast<std::int64_t>(rng.next_u32() % 40));
  sm.replicas = 1 + static_cast<int>(rng.next_u32() % 16);
  sm.hop_count = static_cast<int>(rng.next_u32() % 8);
  sm.received_at = now;
  return sm;
}

TEST(BufferEquivalence, RandomChurnMatchesReferenceStore) {
  for (const bool legacy_mode : {false, true}) {
    util::Pcg32 rng(2026, legacy_mode ? 31 : 30);
    constexpr std::int64_t kCapacity = 256 * 1024;
    Buffer buf(kCapacity, legacy_mode);
    ReferenceBuffer ref(kCapacity);
    std::vector<MsgId> live;  // ids currently stored, insertion order
    MsgId next_id = 0;
    double now = 0.0;
    for (int op = 0; op < 40000; ++op) {
      now += rng.next_double() * 2.0;
      switch (rng.next_u32() % 6) {
        case 0:
        case 1: {  // insert, evicting oldest-first like World::make_room
          StoredMessage sm = random_stored(rng, next_id++, now);
          while (!buf.fits(sm.msg) && !live.empty()) {
            const MsgId victim = buf.oldest();
            ASSERT_TRUE(buf.erase(victim));
            ASSERT_TRUE(ref.erase(victim));
            live.erase(std::find(live.begin(), live.end(), victim));
          }
          if (buf.fits(sm.msg)) {
            live.push_back(sm.msg.id);
            ref.insert(sm);
            buf.insert(std::move(sm));
          }
          break;
        }
        case 2: {  // erase a random live id
          if (live.empty()) break;
          const std::size_t pick =
              static_cast<std::size_t>(rng.next_u32()) % live.size();
          const MsgId id = live[pick];
          ASSERT_TRUE(buf.erase(id));
          ASSERT_TRUE(ref.erase(id));
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
          break;
        }
        case 3: {  // erase an id that was never stored / already gone
          const MsgId id = next_id + static_cast<MsgId>(rng.next_u32() % 100);
          ASSERT_EQ(buf.erase(id + 1000000), ref.erase(id + 1000000));
          break;
        }
        case 4: {  // expiry sweep, exactly like World::sweep_expired
          std::vector<MsgId> expired;
          buf.expired_into(now, expired);
          for (const MsgId id : expired) {
            ASSERT_TRUE(buf.erase(id));
            ASSERT_TRUE(ref.erase(id));
            live.erase(std::find(live.begin(), live.end(), id));
          }
          break;
        }
        case 5: {  // in-place replica update through find()
          if (live.empty()) break;
          const MsgId id = live[static_cast<std::size_t>(rng.next_u32()) % live.size()];
          const int delta = static_cast<int>(rng.next_u32() % 5);
          buf.find(id)->replicas += delta;
          ref.find(id)->replicas += delta;
          break;
        }
      }
      if ((op & 63) == 0 || op > 39900) {
        expect_equivalent(buf, ref, now);
        if (::testing::Test::HasFatalFailure()) {
          FAIL() << "diverged at op " << op << " (legacy_mode=" << legacy_mode << ")";
        }
      }
    }
    expect_equivalent(buf, ref, now);
  }
}

TEST(BufferEquivalence, WorldRunsBitIdenticalAcrossAllProtocols) {
  // The store swap must not change a single metric of a full simulation:
  // same traffic, same contacts, same drops, same deliveries, for every
  // protocol's buffer-usage pattern (MaxProp's ranked drop victims, spray
  // in-place replica updates, CR/EER/MEED scans, ...). A small buffer
  // forces the eviction path; two seeds vary map, mobility, and traffic.
  std::int64_t total_dropped = 0;
  std::int64_t total_expired = 0;
  for (const std::string& proto : routing::known_protocols()) {
    for (const std::uint64_t seed : {3u, 11u}) {
      harness::BusScenarioParams p;
      p.node_count = 14;
      p.duration_s = 600.0;
      p.seed = seed;
      p.map.rows = 5;
      p.map.cols = 6;
      p.map.districts = 2;
      p.map.routes_per_district = 2;
      p.protocol.name = proto;
      p.protocol.copies = 6;
      p.traffic.interval_min = 6.0;  // dense traffic against tiny buffers
      p.traffic.interval_max = 10.0;
      p.traffic.ttl = 200.0;         // expiry sweeps fire inside the run
      p.full_ttl_window = false;     // keep generating until the end
      p.world.buffer_bytes = 100 * 1024;  // 4 messages: constant eviction
      p.world.legacy_buffer_path = false;
      const auto slab = harness::run_bus_scenario(p);
      p.world.legacy_buffer_path = true;
      const auto legacy = harness::run_bus_scenario(p);
      // Anti-vacuity: the workload must actually exercise the store.
      ASSERT_GT(slab.metrics.created(), 0) << proto << " seed " << seed;
      total_dropped += slab.metrics.dropped();
      total_expired += slab.metrics.expired();
      ASSERT_EQ(slab.metrics.created(), legacy.metrics.created())
          << proto << " seed " << seed;
      ASSERT_EQ(slab.metrics.delivered(), legacy.metrics.delivered())
          << proto << " seed " << seed;
      ASSERT_EQ(slab.metrics.relayed(), legacy.metrics.relayed())
          << proto << " seed " << seed;
      ASSERT_EQ(slab.metrics.dropped(), legacy.metrics.dropped())
          << proto << " seed " << seed;
      ASSERT_EQ(slab.metrics.expired(), legacy.metrics.expired())
          << proto << " seed " << seed;
      ASSERT_EQ(slab.metrics.transfers_aborted(), legacy.metrics.transfers_aborted())
          << proto << " seed " << seed;
      ASSERT_EQ(slab.metrics.control_bytes(), legacy.metrics.control_bytes())
          << proto << " seed " << seed;
      ASSERT_EQ(slab.contact_events, legacy.contact_events) << proto << " seed " << seed;
      ASSERT_DOUBLE_EQ(slab.metrics.latency_mean(), legacy.metrics.latency_mean())
          << proto << " seed " << seed;
      ASSERT_DOUBLE_EQ(slab.metrics.hop_count_mean(), legacy.metrics.hop_count_mean())
          << proto << " seed " << seed;
    }
  }
  // Across the suite the eviction and expiry paths must both have fired,
  // or the differential proved nothing about drop-victim / sweep parity.
  EXPECT_GT(total_dropped, 0);
  EXPECT_GT(total_expired, 0);
}

}  // namespace
}  // namespace dtn::sim
