// Edge cases of the simulation kernel beyond the basic world_test coverage:
// three-way contacts, churn, router-driven eviction, and metric accounting
// under stress.
#include <gtest/gtest.h>

#include <memory>

#include "../test_support.hpp"
#include "sim/world.hpp"

namespace dtn::sim {
namespace {

using test::RecordingRouter;
using test::make_message;
using test::pinned;
using test::scripted;
using test::test_world_config;

TEST(WorldEdge, TriangleContactsAllPairsUp) {
  World world(test_world_config());
  std::vector<RecordingRouter*> routers;
  for (int i = 0; i < 3; ++i) {
    auto r = std::make_unique<RecordingRouter>();
    routers.push_back(r.get());
    world.add_node(pinned({i * 6.0, 0.0}), std::move(r));
  }
  world.step();
  // 0-1 and 1-2 in range (6 m), 0-2 also in range (12 m > 10 m? no).
  EXPECT_TRUE(world.in_contact(0, 1));
  EXPECT_TRUE(world.in_contact(1, 2));
  EXPECT_FALSE(world.in_contact(0, 2));
  EXPECT_EQ(routers[1]->contacts_up.size(), 2u);
}

TEST(WorldEdge, RapidChurnCountsEachContactEvent) {
  World world(test_world_config());
  auto r0 = std::make_unique<RecordingRouter>();
  RecordingRouter* router0 = r0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(r0));
  // Node oscillates in/out of range 3 times.
  std::vector<std::pair<double, geo::Vec2>> kf;
  for (int k = 0; k < 3; ++k) {
    kf.push_back({k * 20.0, {5.0, 0.0}});
    kf.push_back({k * 20.0 + 8.0, {5.0, 0.0}});
    kf.push_back({k * 20.0 + 10.0, {50.0, 0.0}});
    kf.push_back({k * 20.0 + 18.0, {50.0, 0.0}});
  }
  world.add_node(scripted(std::move(kf)), std::make_unique<RecordingRouter>());
  world.run(60.0);
  EXPECT_EQ(world.contact_events(), 3);
  EXPECT_EQ(router0->contacts_up.size(), 3u);
  EXPECT_GE(router0->contacts_down.size(), 2u);
}

TEST(WorldEdge, SelfMessageNeverCreated) {
  // The traffic generator never picks src == dst; injecting one manually is
  // the caller's responsibility, but the kernel must not crash on it.
  World world(test_world_config());
  world.add_node(pinned({0.0, 0.0}), std::make_unique<RecordingRouter>());
  world.add_node(pinned({500.0, 0.0}), std::make_unique<RecordingRouter>());
  Message m = make_message(0, 0, 0);
  world.inject_message(m);
  world.run(1.0);
  EXPECT_EQ(world.metrics().created(), 1);
  EXPECT_EQ(world.metrics().delivered(), 0);  // no self-delivery shortcut
}

TEST(WorldEdge, EvictionConsultsOwnerRouter) {
  // A router whose drop victim is always the NEWEST message (instead of the
  // default oldest) must be honored by make_room.
  class DropNewestRouter final : public Router {
   public:
    [[nodiscard]] std::string name() const override { return "DropNewest"; }
    [[nodiscard]] MsgId choose_drop_victim(const Buffer& buffer) const override {
      return buffer.newest();
    }
  };
  WorldConfig config = test_world_config();
  config.buffer_bytes = 60 * 1024;  // two 25 KB messages
  World world(config);
  world.add_node(pinned({0.0, 0.0}), std::make_unique<DropNewestRouter>());
  world.add_node(pinned({500.0, 0.0}), std::make_unique<RecordingRouter>());
  world.inject_message(make_message(0, 0, 1));
  world.inject_message(make_message(1, 0, 1));
  world.inject_message(make_message(2, 0, 1));
  // Victim = newest stored (1), then 2 is admitted.
  EXPECT_TRUE(world.buffer_of(0).has(0));
  EXPECT_FALSE(world.buffer_of(0).has(1));
  EXPECT_TRUE(world.buffer_of(0).has(2));
}

TEST(WorldEdge, ZeroTtlMessageExpiresImmediately) {
  World world(test_world_config());
  auto r0 = std::make_unique<RecordingRouter>();
  RecordingRouter* router0 = r0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(r0));
  world.add_node(pinned({5.0, 0.0}), std::make_unique<RecordingRouter>());
  world.step();
  world.inject_message(make_message(0, 0, 1, /*created=*/0.0, /*ttl=*/0.0));
  EXPECT_FALSE(router0->send_copy(1, 0, 1, 0));  // refused: already expired
  world.run(1.0);
  EXPECT_EQ(world.metrics().delivered(), 0);
}

TEST(WorldEdge, ManyNodesNoContactsIsStable) {
  World world(test_world_config());
  for (int i = 0; i < 50; ++i) {
    world.add_node(pinned({i * 100.0, 0.0}), std::make_unique<RecordingRouter>());
  }
  TrafficParams traffic;
  traffic.interval_min = traffic.interval_max = 5.0;
  world.set_traffic(traffic);
  world.run(200.0);
  EXPECT_EQ(world.contact_events(), 0);
  EXPECT_GT(world.metrics().created(), 0);
  EXPECT_EQ(world.metrics().delivered(), 0);
  EXPECT_EQ(world.metrics().relayed(), 0);
}

TEST(WorldEdge, ReusedMessageIdRefusedBySecondInsert) {
  // Buffer::insert asserts uniqueness; the kernel path that could hit it
  // (duplicate arrival) merges replicas instead. Verify the merge branch
  // fires when the same id is sent over two distinct connections.
  World world(test_world_config());
  auto r0 = std::make_unique<RecordingRouter>(10);
  auto r1 = std::make_unique<RecordingRouter>(10);
  RecordingRouter* router0 = r0.get();
  RecordingRouter* router1 = r1.get();
  world.add_node(pinned({0.0, 0.0}), std::move(r0));
  world.add_node(pinned({9.0, 0.0}), std::move(r1));
  world.add_node(pinned({4.5, 5.0}), std::make_unique<RecordingRouter>());
  world.add_node(pinned({5000.0, 0.0}), std::make_unique<RecordingRouter>());
  world.step();
  // Node 2 is in range of both 0 and 1. Give both a share of message 0,
  // then have both forward to node 2.
  world.inject_message(make_message(0, 0, 3));
  ASSERT_TRUE(router0->send_copy(1, 0, 4, 4));
  world.run(1.0);
  ASSERT_TRUE(router0->send_copy(2, 0, 2, 2));
  ASSERT_TRUE(router1->send_copy(2, 0, 3, 3));
  world.run(1.0);
  ASSERT_TRUE(world.buffer_of(2).has(0));
  EXPECT_EQ(world.buffer_of(2).find(0)->replicas, 5);  // 2 + 3 merged
}

TEST(WorldEdge, MetricsLatencyWithinTtlUnderChurn) {
  WorldConfig config = test_world_config();
  World world(config);
  auto r0 = std::make_unique<RecordingRouter>();
  RecordingRouter* router0 = r0.get();
  world.add_node(pinned({0.0, 0.0}), std::move(r0));
  // Peer arrives late; delivery latency is dominated by the waiting time.
  world.add_node(scripted({{0.0, {100.0, 0.0}}, {50.0, {100.0, 0.0}},
                           {60.0, {5.0, 0.0}}, {200.0, {5.0, 0.0}}}),
                 std::make_unique<RecordingRouter>());
  world.run(1.0);
  world.inject_message(make_message(0, 0, 1, /*created=*/1.0, /*ttl=*/1200.0));
  world.run(70.0);
  ASSERT_TRUE(world.in_contact(0, 1));
  ASSERT_TRUE(router0->send_copy(1, 0, 1, 0));
  world.run(5.0);
  ASSERT_EQ(world.metrics().delivered(), 1);
  EXPECT_GT(world.metrics().latency_mean(), 55.0);
  EXPECT_LT(world.metrics().latency_mean(), 80.0);
}

}  // namespace
}  // namespace dtn::sim
